#!/usr/bin/env bash
# CI gate: formatting, vet, build, race-enabled tests, then the
# serial-vs-parallel benchmark pair recorded to BENCH_parallel.json.
# The race detector is the correctness gate for the concurrent pipeline.
#
# Usage: scripts/ci.sh [--no-bench]
#   BENCHTIME overrides the benchmark duration (default 3x iterations).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "files need gofmt:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

# The registry is hammered from the worker pool in production; run its
# concurrency test explicitly so a future -race exclusion of ./... can't
# silently drop it.
echo "== telemetry race test =="
go test -race -run 'TestRegistryUnderForEach' ./internal/telemetry

echo "== telemetry smoke run =="
metrics_out=$(mktemp)
trap 'rm -f "$metrics_out"' EXIT
go run ./cmd/isum -benchmark tpch -n 60 -k 8 -trace -metrics-out "$metrics_out" >/dev/null
go run ./scripts/metricscheck \
    -require cost/whatif/calls \
    -require core/greedy/rounds \
    "$metrics_out"

if [ "${1:-}" = "--no-bench" ]; then
    echo "CI OK (benchmarks skipped)"
    exit 0
fi

echo "== parallel benchmarks =="
bench_out=$(mktemp)
trap 'rm -f "$bench_out" "$metrics_out"' EXIT
go test -bench '^(BenchmarkCompress|BenchmarkTune)$' -benchmem \
    -benchtime "${BENCHTIME:-3x}" -run '^$' . | tee "$bench_out"
go run ./scripts/benchjson <"$bench_out" >BENCH_parallel.json
echo "wrote BENCH_parallel.json"

echo "CI OK"
