#!/usr/bin/env bash
# CI gate: formatting, vet, build, race-enabled tests, then the
# serial-vs-parallel benchmark pair recorded to BENCH_parallel.json
# (plus the elide=off/elide=on pair recorded to BENCH_whatif.json).
# The race detector is the correctness gate for the concurrent pipeline.
#
# Usage: scripts/ci.sh [--no-bench]
#   BENCHTIME overrides the benchmark duration (default 3x iterations).
#   WHATIF_BENCHTIME overrides the elision benchmark duration (default 1x).
#   FUZZTIME overrides the fuzz smoke duration (default 10s).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "files need gofmt:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

# Project-specific invariants beyond what vet knows: the five syntactic
# analyzers (determinism, ctx hygiene, concurrency, telemetry, anytime)
# plus the four dataflow ones (alloc, durability, locksafety,
# errhygiene — DESIGN.md §15). The baseline makes CI fail on NEW
# findings only — and on baselined findings that disappeared, so the
# file tracks reality (regenerate with -write-baseline). lint.sarif is
# the machine-readable artifact for CI annotation. The second run fails
# on stale //lint:allow directives; they are never baseline-eligible,
# so the escape hatch cannot rot silently.
echo "== isumlint =="
go run ./cmd/isumlint -baseline .lintbaseline -sarif lint.sarif ./...
go run ./cmd/isumlint -prune-allows ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

# The registry is hammered from the worker pool in production; run its
# concurrency test explicitly so a future -race exclusion of ./... can't
# silently drop it.
echo "== telemetry race test =="
go test -race -run 'TestRegistryUnderForEach' ./internal/telemetry

echo "== telemetry smoke run =="
metrics_out=$(mktemp)
trap 'rm -f "$metrics_out"' EXIT
# -shards 2 -cons exercises the sharded + hash-consed path so its
# counters (shard/*, workload/templates/*) appear in the export.
go run ./cmd/isum -benchmark tpch -n 60 -k 8 -shards 2 -cons -trace -metrics-out "$metrics_out" >/dev/null
# -names-from closes the code/export loop: every literal metric name
# registered by internal/cost and internal/shard must actually appear in
# the smoke export.
go run ./scripts/metricscheck \
    -require cost/whatif/calls \
    -require core/greedy/rounds \
    -require shard/runs \
    -require shard/merge_ops \
    -require workload/templates/consed \
    -require workload/templates/deduped \
    -names-from internal/cost \
    -names-from internal/shard \
    "$metrics_out"

echo "== debug-server smoke =="
# Live observability plane (DESIGN.md §13): start a sharded compression
# with -debug-addr on a kernel-chosen port, recover the address from the
# "debug server listening" log line, scrape /healthz and /metrics
# mid-run, validate the exposition with metricscheck, and assert the
# process still exits cleanly afterwards.
dbg_dir=$(mktemp -d)
trap 'rm -rf "$dbg_dir"; rm -f "$metrics_out"' EXIT
go build -o "$dbg_dir/" ./cmd/isum ./scripts/metricscheck
"$dbg_dir/isum" -benchmark scalem -n 20000 -k 12 -shards 4 -cons \
    -debug-addr 127.0.0.1:0 -progress \
    >/dev/null 2>"$dbg_dir/stderr.log" &
dbg_pid=$!
dbg_addr=""
for _ in $(seq 1 100); do
    dbg_addr=$(sed -n 's/.*msg="debug server listening" addr=\([0-9.:]*\).*/\1/p' "$dbg_dir/stderr.log" | head -n1)
    [ -n "$dbg_addr" ] && break
    kill -0 "$dbg_pid" 2>/dev/null || { echo "isum exited before the debug server came up" >&2; cat "$dbg_dir/stderr.log" >&2; exit 1; }
    sleep 0.1
done
if [ -z "$dbg_addr" ]; then
    echo "never saw the debug-server listen line" >&2; cat "$dbg_dir/stderr.log" >&2; exit 1
fi
# Mid-run scrapes race the pipeline: a counter registers on first use, so
# retry until the required families have appeared (or the run ends, in
# which case the loop fails fast and we report the last error).
scrape_ok=""
for _ in $(seq 1 200); do
    if "$dbg_dir/metricscheck" \
        -healthz "http://$dbg_addr/healthz" \
        -scrape "http://$dbg_addr/metrics" \
        -require cost/whatif/calls \
        >/dev/null 2>"$dbg_dir/scrape.err"; then
        scrape_ok=1
        break
    fi
    kill -0 "$dbg_pid" 2>/dev/null || break
    sleep 0.05
done
if [ -z "$scrape_ok" ]; then
    echo "mid-run scrape never passed metricscheck:" >&2
    cat "$dbg_dir/scrape.err" >&2
    exit 1
fi
wait "$dbg_pid" || { rc=$?; echo "isum exited $rc under the debug server" >&2; cat "$dbg_dir/stderr.log" >&2; exit "$rc"; }
grep -q 'msg=progress' "$dbg_dir/stderr.log" || {
    echo "-progress produced no progress lines" >&2; cat "$dbg_dir/stderr.log" >&2; exit 1
}

echo "== failure-model smoke =="
fm_dir=$(mktemp -d)
trap 'rm -rf "$fm_dir" "$dbg_dir"; rm -f "$metrics_out"' EXIT
go build -o "$fm_dir/" ./cmd/isum ./cmd/tune

# Chaos determinism (DESIGN.md §9): a seeded fault-injected run with
# enough retries must produce output byte-identical to the fault-free run.
"$fm_dir/isum" -benchmark tpch -n 100 -k 10 -out "$fm_dir/plain.json" >/dev/null
"$fm_dir/isum" -benchmark tpch -n 100 -k 10 \
    -retries 5 -chaos 'seed=42,errors=0.3' -out "$fm_dir/chaos.json" >/dev/null
cmp "$fm_dir/plain.json" "$fm_dir/chaos.json"

# Anytime partials: an unmeetable deadline exits with the partial code (3).
rc=0
"$fm_dir/isum" -benchmark tpch -n 100 -k 10 -timeout 1ns >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "expected partial exit code 3 under -timeout 1ns, got $rc" >&2
    exit 1
fi

# Tuning under chaos: the recommendation must match the fault-free run
# exactly; only the elapsed-time figure may differ.
strip_elapsed() { sed -E 's/ in [0-9.]+(ns|us|µs|ms|s|m)+ / /'; }
"$fm_dir/tune" -benchmark tpch -in "$fm_dir/plain.json" -max-indexes 5 \
    | strip_elapsed >"$fm_dir/tune_plain.txt"
"$fm_dir/tune" -benchmark tpch -in "$fm_dir/plain.json" -max-indexes 5 \
    -retries 6 -chaos 'seed=7,errors=0.1' \
    | strip_elapsed >"$fm_dir/tune_chaos.txt"
cmp "$fm_dir/tune_plain.txt" "$fm_dir/tune_chaos.txt"

echo "== what-if elision smoke =="
# Elision telemetry end to end (DESIGN.md §16): all three cost/elide/*
# counters must report positive values from a real tune. A duplicate-heavy
# workload — the same two statements repeated 60 times — tuned at
# -parallelism 4 forces concurrent identical plan computations, and the
# injected what-if latency keeps each computation in flight long enough
# for its duplicates to pile onto the singleflight (without it a
# single-core runner finishes each plan before the next duplicate
# starts, and the waits counter legitimately reads zero).
{
    echo '['
    for _ in $(seq 1 60); do
        echo '  {"sql": "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_shipdate >= '\''1995-03-01'\'' AND l_quantity < 24", "cost": 1},'
        echo '  {"sql": "SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderdate >= '\''1995-03-01'\'' AND o_totalprice > 1000", "cost": 1},'
    done
    echo '  {"sql": "SELECT c_custkey FROM customer WHERE c_acctbal > 100", "cost": 1}'
    echo ']'
} >"$fm_dir/dup.json"
"$fm_dir/tune" -benchmark tpch -in "$fm_dir/dup.json" -max-indexes 2 \
    -parallelism 4 -chaos 'seed=1,latency=1,delay=200us' \
    -metrics-out "$fm_dir/elide_metrics.json" >/dev/null
go run ./scripts/metricscheck \
    -require cost/elide/hits \
    -require cost/elide/bound_prunes \
    -require cost/elide/singleflight_waits \
    "$fm_dir/elide_metrics.json"

echo "== durability smoke =="
# Crash recovery end to end (DESIGN.md §14). Baseline: an uninterrupted
# durable session, with its metrics export validated against every
# literal durable/* name in the code.
du_dir=$(mktemp -d)
trap 'rm -rf "$du_dir" "$fm_dir" "$dbg_dir"; rm -f "$metrics_out"' EXIT
go build -o "$du_dir/" ./cmd/isum ./cmd/inspect ./scripts/metricscheck
"$du_dir/isum" -benchmark tpch -n 473 -k 8 -wal-dir "$du_dir/wA" -snapshot-every 3 \
    -metrics-out "$du_dir/durable_metrics.json" -out "$du_dir/a.json" >/dev/null 2>&1
"$du_dir/metricscheck" \
    -require durable/wal/appended \
    -require durable/snapshot/written \
    -names-from internal/durable \
    "$du_dir/durable_metrics.json"

# Real SIGKILL against a second session. Wherever the kill lands (mid-run
# or after completion), the recovery report must be clean and
# deterministic — two inspect runs print byte-identical reports — and a
# restart with the same -wal-dir resumes after the recovered prefix and
# converges on the baseline output.
"$du_dir/isum" -benchmark tpch -n 473 -k 8 -wal-dir "$du_dir/wB" -snapshot-every 3 \
    -out "$du_dir/b_partial.json" >/dev/null 2>&1 &
du_pid=$!
sleep 0.15
kill -9 "$du_pid" 2>/dev/null || true
wait "$du_pid" 2>/dev/null || true
"$du_dir/inspect" -benchmark tpch -k 8 -wal-dir "$du_dir/wB" 2>/dev/null >"$du_dir/rep1.txt"
"$du_dir/inspect" -benchmark tpch -k 8 -wal-dir "$du_dir/wB" 2>/dev/null >"$du_dir/rep2.txt"
cmp "$du_dir/rep1.txt" "$du_dir/rep2.txt"
grep -q 'recovered state' "$du_dir/rep1.txt"
"$du_dir/isum" -benchmark tpch -n 473 -k 8 -wal-dir "$du_dir/wB" -snapshot-every 3 \
    -out "$du_dir/b.json" >/dev/null 2>&1
cmp "$du_dir/a.json" "$du_dir/b.json"

# Deterministic torn tail: with snapshots off the whole session lives in
# the WAL; truncating the segment mid-record forces recovery to detect
# the torn record by checksum, skip it, replay the good prefix, and
# repair the tail on the next open — which then converges again.
"$du_dir/isum" -benchmark tpch -n 473 -k 8 -wal-dir "$du_dir/wC" -snapshot-every 0 \
    -out /dev/null >/dev/null 2>&1
seg=$(ls "$du_dir/wC"/wal-*.log | sort | tail -n1)
truncate -s $(($(wc -c <"$seg") - 7)) "$seg"
"$du_dir/inspect" -benchmark tpch -k 8 -wal-dir "$du_dir/wC" 2>/dev/null >"$du_dir/rep3.txt"
grep -q '1 corrupt skipped' "$du_dir/rep3.txt"
"$du_dir/isum" -benchmark tpch -n 473 -k 8 -wal-dir "$du_dir/wC" -snapshot-every 3 \
    -out "$du_dir/c.json" >/dev/null 2>&1
cmp "$du_dir/a.json" "$du_dir/c.json"

echo "== fuzz smoke =="
go test -fuzz 'FuzzSplitStatements' -fuzztime "${FUZZTIME:-10s}" -run '^$' ./internal/workload
go test -fuzz 'FuzzParse' -fuzztime "${FUZZTIME:-10s}" -run '^$' ./internal/sqlparser
go test -fuzz 'FuzzSparseVecOps' -fuzztime "${FUZZTIME:-10s}" -run '^$' ./internal/features
go test -fuzz 'FuzzCostBounds' -fuzztime "${FUZZTIME:-10s}" -run '^$' ./internal/cost
go test -fuzz 'FuzzWALReplay' -fuzztime "${FUZZTIME:-10s}" -run '^$' ./internal/durable
go test -fuzz 'FuzzSnapshotDecode' -fuzztime "${FUZZTIME:-10s}" -run '^$' ./internal/durable

if [ "${1:-}" = "--no-bench" ]; then
    echo "CI OK (benchmarks skipped)"
    exit 0
fi

echo "== lint benchmark =="
# Analyzer wall time over the whole module (load + type-check + all nine
# analyzers, cold per iteration). Single-threaded by nature, so it runs
# before the multi-core gate below.
lint_out=$(mktemp)
trap 'rm -f "$lint_out" "$metrics_out"; rm -rf "$fm_dir" "$dbg_dir" "$du_dir"' EXIT
go test -bench '^BenchmarkLintModule$' -benchmem \
    -benchtime "${LINT_BENCHTIME:-1x}" -run '^$' ./internal/analysis | tee "$lint_out"
go run ./scripts/benchjson <"$lint_out" >BENCH_lint.json
echo "wrote BENCH_lint.json"

echo "== what-if elision benchmark =="
# The elide=off/elide=on pair runs the advisor at Parallelism 1 on
# fresh optimizers, so the recorded call_reductions figure (fraction of
# what-if optimizer calls elision avoids; target >= 0.30) is meaningful
# on any runner and records before the multi-core gate below.
whatif_out=$(mktemp)
trap 'rm -f "$whatif_out" "$lint_out" "$metrics_out"; rm -rf "$fm_dir" "$dbg_dir" "$du_dir"' EXIT
go test -bench '^BenchmarkTuneElided$' -benchmem \
    -benchtime "${WHATIF_BENCHTIME:-1x}" -run '^$' . | tee "$whatif_out"
go run ./scripts/benchjson <"$whatif_out" >BENCH_whatif.json
echo "wrote BENCH_whatif.json"

# The recorded parallel/sharded numbers are only meaningful on a
# multi-core runner: at GOMAXPROCS=1 every parallelism=max / workers=4
# variant silently degenerates to the serial path and the speedup figures
# read ~1.0x. Refuse to record that unless explicitly overridden (set
# ALLOW_SINGLE_CORE_BENCH=1 to record single-core numbers; benchjson
# stamps the report's gomaxprocs and note so they cannot be mistaken for
# multi-core results).
maxprocs=$(go run ./scripts/printmaxprocs)
if [ "$maxprocs" -lt 2 ] && [ -z "${ALLOW_SINGLE_CORE_BENCH:-}" ]; then
    echo "benchmark step requires GOMAXPROCS >= 2 (got $maxprocs);" >&2
    echo "set ALLOW_SINGLE_CORE_BENCH=1 to record single-core numbers anyway" >&2
    exit 1
fi

echo "== parallel benchmarks =="
bench_out=$(mktemp)
trap 'rm -f "$bench_out" "$whatif_out" "$lint_out" "$metrics_out"; rm -rf "$fm_dir" "$dbg_dir" "$du_dir"' EXIT
go test -bench '^(BenchmarkCompress|BenchmarkTune)$' -benchmem \
    -benchtime "${BENCHTIME:-3x}" -run '^$' . | tee "$bench_out"
go run ./scripts/benchjson <"$bench_out" >BENCH_parallel.json
echo "wrote BENCH_parallel.json"

echo "== sharded-scale benchmarks =="
# One iteration by default: the cons=off baseline runs the greedy loop
# over all 10^5 per-query states and takes tens of seconds per op.
shard_out=$(mktemp)
trap 'rm -f "$bench_out" "$shard_out" "$whatif_out" "$lint_out" "$metrics_out"; rm -rf "$fm_dir" "$dbg_dir" "$du_dir"' EXIT
go test -bench '^(BenchmarkCompressSharded|BenchmarkCompressConsed)$' -benchmem \
    -benchtime "${SHARD_BENCHTIME:-1x}" -run '^$' -timeout 30m . | tee "$shard_out"
go run ./scripts/benchjson <"$shard_out" >BENCH_shard.json
echo "wrote BENCH_shard.json"

echo "== vector benchmarks =="
vec_out=$(mktemp)
trap 'rm -f "$bench_out" "$vec_out" "$whatif_out" "$lint_out" "$metrics_out"; rm -rf "$fm_dir" "$dbg_dir" "$du_dir"' EXIT
go test -bench '^(BenchmarkJaccard|BenchmarkSummaryDelta)$' -benchmem \
    -benchtime "${BENCHTIME:-3x}" -run '^$' \
    ./internal/features ./internal/core | tee "$vec_out"
go run ./scripts/benchjson <"$vec_out" >BENCH_vectors.json
echo "wrote BENCH_vectors.json"

echo "CI OK"
