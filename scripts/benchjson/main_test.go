package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
cpu: Test CPU
BenchmarkCompress/parallelism=1-8   	      10	 100000000 ns/op
BenchmarkCompress/parallelism=max-8 	      40	  25000000 ns/op
BenchmarkTune/parallelism=1-8       	       5	 200000000 ns/op
BenchmarkTune/parallelism=max-8     	      10	 100000000 ns/op
BenchmarkCompressSharded/workers=1-8	       3	 600000000 ns/op
BenchmarkCompressSharded/workers=4-8	       9	 200000000 ns/op
BenchmarkCompressConsed/cons=off-8  	       1	8000000000 ns/op
BenchmarkCompressConsed/cons=on-8   	      20	 100000000 ns/op
BenchmarkTuneElided/elide=off-8     	       2	2000000000 ns/op	         0 elided/op	     80000 whatif-calls/op
BenchmarkTuneElided/elide=on-8      	       4	1000000000 ns/op	     42000 elided/op	     40000 whatif-calls/op
PASS
`

func TestRun(t *testing.T) {
	var out, warn bytes.Buffer
	if err := run(strings.NewReader(benchOutput), &out, &warn); err != nil {
		t.Fatal(err)
	}
	if warn.Len() != 0 {
		t.Errorf("unexpected warnings: %s", warn.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 10 {
		t.Fatalf("parsed %d benchmarks, want 10", len(rep.Benchmarks))
	}
	if rep.Gomaxprocs != 8 {
		t.Errorf("gomaxprocs = %d, want 8", rep.Gomaxprocs)
	}
	if got := rep.Speedups["BenchmarkCompress"]; got != 4 {
		t.Errorf("BenchmarkCompress speedup = %v, want 4", got)
	}
	if got := rep.Speedups["BenchmarkTune"]; got != 2 {
		t.Errorf("BenchmarkTune speedup = %v, want 2", got)
	}
	if got := rep.Speedups["BenchmarkCompressSharded"]; got != 3 {
		t.Errorf("BenchmarkCompressSharded speedup = %v, want 3", got)
	}
	if got := rep.Speedups["BenchmarkCompressConsed"]; got != 80 {
		t.Errorf("BenchmarkCompressConsed speedup = %v, want 80", got)
	}
	if got := rep.Speedups["BenchmarkTuneElided"]; got != 2 {
		t.Errorf("BenchmarkTuneElided speedup = %v, want 2", got)
	}
	if got := rep.CallReductions["BenchmarkTuneElided"]; got != 0.5 {
		t.Errorf("BenchmarkTuneElided call reduction = %v, want 0.5", got)
	}
	var elided *result
	for i := range rep.Benchmarks {
		if rep.Benchmarks[i].Name == "BenchmarkTuneElided/elide=on" {
			elided = &rep.Benchmarks[i]
		}
	}
	if elided == nil {
		t.Fatal("elide=on variant missing from benchmarks")
	}
	if got := elided.Metrics["whatif-calls/op"]; got != 40000 {
		t.Errorf("whatif-calls/op metric = %v, want 40000", got)
	}
	if got := elided.Metrics["elided/op"]; got != 42000 {
		t.Errorf("elided/op metric = %v, want 42000", got)
	}
}

func TestRunWarnsOnUnparsedLines(t *testing.T) {
	in := benchOutput + "BenchmarkBroken/parallelism=1-8 garbage fields here\n"
	var out, warn bytes.Buffer
	if err := run(strings.NewReader(in), &out, &warn); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warn.String(), "BenchmarkBroken") {
		t.Errorf("warning does not name the skipped line: %q", warn.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 10 {
		t.Errorf("parsed %d benchmarks, want the 10 valid ones", len(rep.Benchmarks))
	}
}

func TestRunFailsOnZeroBenchmarks(t *testing.T) {
	var out, warn bytes.Buffer
	err := run(strings.NewReader("PASS\nok  	isum	1.0s\n"), &out, &warn)
	if err == nil {
		t.Fatal("run accepted input with zero benchmarks")
	}
	if out.Len() != 0 {
		t.Errorf("wrote a report despite the error: %s", out.String())
	}
}
