// Command benchjson converts `go test -bench` output on stdin to a JSON
// report on stdout, pairing each benchmark's baseline and optimised
// variants into a speedup figure. Recognised pairs, per benchmark base
// name: parallelism=1 vs parallelism=max, workers=1 vs workers=4,
// cons=off vs cons=on, and elide=off vs elide=on. scripts/ci.sh uses it
// to write BENCH_parallel.json, BENCH_shard.json and BENCH_whatif.json so
// the perf trajectories of the parallel, sharded and elided pipelines are
// tracked in-repo.
//
// Custom b.ReportMetric units ("*/op" beyond the standard three) are kept
// per benchmark under "metrics"; for elide pairs reporting
// "whatif-calls/op", the report also carries call_reductions — the
// fraction of what-if optimizer calls the elided variant avoided.
//
// Benchmark lines that fail to parse are reported on stderr instead of
// being dropped silently, and an input containing zero parseable
// benchmarks is an error — a CI bench step that produced nothing must
// fail, not write an empty report.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric units
}

// report is the whole document.
type report struct {
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Gomaxprocs int                `json:"gomaxprocs"`
	Benchmarks []result           `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
	// CallReductions maps a benchmark base name to the fraction of
	// what-if optimizer calls its elide=on variant avoided versus
	// elide=off (from the custom whatif-calls/op metric).
	CallReductions map[string]float64 `json:"call_reductions,omitempty"`
	Note           string             `json:"note"`
}

func main() {
	if err := run(os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run converts bench output on in to the JSON report on out, warning on
// warn about Benchmark lines it could not parse. It returns an error when
// reading or encoding fails, or when no benchmark parsed at all.
func run(in io.Reader, out, warn io.Writer) error {
	rep := report{Gomaxprocs: 1, Speedups: map[string]float64{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, procs, ok := parseLine(line)
			if !ok {
				fmt.Fprintf(warn, "benchjson: skipping unparsed benchmark line: %q\n", line)
				continue
			}
			rep.Benchmarks = append(rep.Benchmarks, r)
			if procs > rep.Gomaxprocs {
				rep.Gomaxprocs = procs
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return errors.New("no benchmark lines parsed; refusing to write an empty report")
	}

	// Pair each base's baseline variant with its optimised counterpart:
	// parallelism=1/parallelism=max, workers=1/workers=4, cons=off/cons=on.
	serial := map[string]float64{}
	parallel := map[string]float64{}
	callsOff := map[string]float64{}
	callsOn := map[string]float64{}
	for _, r := range rep.Benchmarks {
		base, variant, ok := strings.Cut(r.Name, "/")
		if !ok {
			continue
		}
		switch variant {
		case "parallelism=1", "workers=1", "cons=off", "elide=off":
			serial[base] = r.NsPerOp
			if c, ok := r.Metrics["whatif-calls/op"]; ok {
				callsOff[base] = c
			}
		case "parallelism=max", "workers=4", "cons=on", "elide=on":
			parallel[base] = r.NsPerOp
			if c, ok := r.Metrics["whatif-calls/op"]; ok {
				callsOn[base] = c
			}
		}
	}
	for base, s := range serial {
		if p, ok := parallel[base]; ok && p > 0 {
			rep.Speedups[base] = s / p
		}
	}
	for base, off := range callsOff {
		if on, ok := callsOn[base]; ok && off > 0 {
			if rep.CallReductions == nil {
				rep.CallReductions = map[string]float64{}
			}
			rep.CallReductions[base] = 1 - on/off
		}
	}
	if rep.Gomaxprocs <= 1 {
		rep.Note = "single-core runner: parallelism=max/workers=4 degenerate to the serial path, those speedups are ~1.0x by construction (cons=off/cons=on and elide=off/elide=on pairs are unaffected); the parallel speedup targets apply to GOMAXPROCS >= 2"
	} else {
		rep.Note = "speedup = baseline ns/op (parallelism=1, workers=1, cons=off, elide=off) divided by optimised ns/op (parallelism=max, workers=4, cons=on, elide=on); call_reductions = fraction of what-if optimizer calls avoided by elide=on"
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseLine parses one "BenchmarkX/sub-N  iters  123 ns/op [456 B/op 7
// allocs/op]" line; the -N suffix (present when GOMAXPROCS > 1) is
// stripped and returned.
func parseLine(line string) (result, int, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, 0, false
	}
	name := fields[0]
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = n
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, 0, false
	}
	r := result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if strings.HasSuffix(unit, "/op") {
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
	}
	return r, procs, r.NsPerOp > 0
}
