package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// The OpenMetrics/Prometheus text exposition subset the debug server
// emits (internal/telemetry/openmetrics.go): # HELP/# TYPE comment lines
// per family, bare and {le="..."}-labelled samples, a mandatory # EOF
// terminator. parseOpenMetrics validates structure — legal identifiers,
// TYPE-before-samples, known types, parseable values, nothing after
// # EOF — and returns the per-sample values for the require checks.

// legalMetricName is the Prometheus metric-name charset. Sample names
// may additionally carry the _total/_bucket/_sum/_count suffixes of
// their family.
var legalMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// sampleLine splits a sample into name, optional label block, and value.
var sampleLine = regexp.MustCompile(`^([^\s{]+)(\{[^}]*\})? (\S+)$`)

type omFamily struct {
	typ     string // counter, gauge, histogram
	samples int
}

type omExposition struct {
	families map[string]*omFamily
	// values maps full sample keys — "name_total", "name", or
	// `name_bucket{le="+Inf"}` — to their parsed values.
	values map[string]float64
}

// parseOpenMetrics reads one exposition document and validates it.
func parseOpenMetrics(r io.Reader) (*omExposition, error) {
	ex := &omExposition{families: map[string]*omFamily{}, values: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	sawEOF := false
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if sawEOF {
			return nil, fmt.Errorf("line %d: content after # EOF", n)
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", n, err)
			}
			if !legalMetricName.MatchString(name) {
				return nil, fmt.Errorf("line %d: illegal metric name %q", n, name)
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "histogram":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", n, rest)
				}
				if f := ex.families[name]; f != nil && f.typ != "" {
					return nil, fmt.Errorf("line %d: duplicate # TYPE for %q", n, name)
				}
				fam := ex.family(name)
				if fam.samples > 0 {
					return nil, fmt.Errorf("line %d: # TYPE %s after its samples", n, name)
				}
				fam.typ = rest
			}
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("line %d: malformed sample %q", n, line)
		}
		name, labels, value := m[1], m[2], m[3]
		if !legalMetricName.MatchString(name) {
			return nil, fmt.Errorf("line %d: illegal sample name %q", n, name)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: unparseable value %q: %w", n, value, err)
		}
		fam := ex.family(familyOf(name, ex.families))
		if fam.typ == "" {
			return nil, fmt.Errorf("line %d: sample %q before its # TYPE", n, name)
		}
		fam.samples++
		ex.values[name+labels] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("missing # EOF terminator")
	}
	for name, f := range ex.families {
		if f.samples == 0 {
			return nil, fmt.Errorf("family %q declared but has no samples", name)
		}
	}
	return ex, nil
}

// parseComment splits a "# HELP name text" / "# TYPE name type" line.
func parseComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind, name = fields[1], fields[2]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", fmt.Errorf("unknown comment kind %q", kind)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	if kind == "TYPE" && rest == "" {
		return "", "", "", fmt.Errorf("# TYPE %s missing a type", name)
	}
	return kind, name, rest, nil
}

func (ex *omExposition) family(name string) *omFamily {
	f := ex.families[name]
	if f == nil {
		f = &omFamily{}
		ex.families[name] = f
	}
	return f
}

// familyOf strips the exposition suffix a sample name carries relative
// to its declared family: histogram samples end in _bucket/_sum/_count,
// counter samples in _total. The declared families map disambiguates a
// literal family name that happens to end in a suffix.
func familyOf(sample string, declared map[string]*omFamily) string {
	if _, ok := declared[sample]; ok {
		return sample
	}
	for _, suf := range []string{"_total", "_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suf); ok {
			if _, ok := declared[base]; ok {
				return base
			}
		}
	}
	return sample
}

// counterValue returns the exposition value of the registry counter name
// (area/sub/name form), resolving the OpenMetrics rename and _total
// suffix. The bool reports presence.
func (ex *omExposition) counterValue(regName string, toOM func(string) string) (float64, bool) {
	v, ok := ex.values[toOM(regName)+"_total"]
	return v, ok
}
