// Command metricscheck validates a telemetry JSON export (the
// -metrics-out file written by the cmd binaries; schema in
// internal/telemetry/export.go). scripts/ci.sh uses it to fail the smoke
// run when the export is empty or malformed.
//
// Usage:
//
//	metricscheck [-require counter/name]... [-names-from pkg-dir]... metrics.json
//
// It checks that the file is valid JSON with version 1, that at least one
// counter and one span were recorded, and that every -require'd counter
// exists with a positive value.
//
// -names-from closes the loop between code and export: it parses the Go
// files of the given package directory (go/ast, no build step), extracts
// every string literal passed as the name argument to a
// Counter/Gauge/Histogram registration, and fails when a code-emitted
// name is absent from the export. Names built at runtime
// (fmt.Sprintf sharded counters) are invisible to the literal scan and
// are not checked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// export mirrors the subset of internal/telemetry's JSON schema the
// checks need.
type export struct {
	Version    int         `json:"version"`
	Counters   []counter   `json:"counters"`
	Gauges     []gauge     `json:"gauges"`
	Histograms []histogram `json:"histograms"`
	Spans      []span      `json:"spans"`
}

type counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type gauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type histogram struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
}

type span struct {
	Name       string `json:"name"`
	DurationNs int64  `json:"duration_ns"`
	Children   []span `json:"children"`
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint(*m) }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var require, namesFrom multiFlag
	flag.Var(&require, "require", "counter that must exist with a positive value (repeatable)")
	flag.Var(&namesFrom, "names-from", "package dir whose literal Counter/Gauge/Histogram names must all appear in the export (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-require counter]... [-names-from pkg-dir]... metrics.json")
		os.Exit(2)
	}
	if err := check(flag.Arg(0), require, namesFrom); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
	fmt.Printf("metricscheck: %s OK\n", flag.Arg(0))
}

func check(path string, require, namesFrom []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var ex export
	if err := json.Unmarshal(data, &ex); err != nil {
		return fmt.Errorf("%s: malformed export: %w", path, err)
	}
	if ex.Version != 1 {
		return fmt.Errorf("%s: version %d, want 1", path, ex.Version)
	}
	if len(ex.Counters) == 0 {
		return fmt.Errorf("%s: empty export: no counters recorded", path)
	}
	if len(ex.Spans) == 0 {
		return fmt.Errorf("%s: empty export: no spans recorded", path)
	}
	values := map[string]int64{}
	for _, c := range ex.Counters {
		values[c.Name] = c.Value
	}
	for _, name := range require {
		v, ok := values[name]
		if !ok {
			return fmt.Errorf("%s: required counter %q missing", path, name)
		}
		if v <= 0 {
			return fmt.Errorf("%s: required counter %q is %d, want > 0", path, name, v)
		}
	}
	exported := map[string]bool{}
	for _, c := range ex.Counters {
		exported[c.Name] = true
	}
	for _, g := range ex.Gauges {
		exported[g.Name] = true
	}
	for _, h := range ex.Histograms {
		exported[h.Name] = true
	}
	for _, dir := range namesFrom {
		names, err := literalMetricNames(dir)
		if err != nil {
			return fmt.Errorf("-names-from %s: %w", dir, err)
		}
		if len(names) == 0 {
			return fmt.Errorf("-names-from %s: no literal metric names found; wrong directory?", dir)
		}
		var missing []string
		for _, name := range names {
			if !exported[name] {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("%s: metric names registered by %s missing from the export: %s",
				path, dir, strings.Join(missing, ", "))
		}
	}
	return nil
}

// literalMetricNames parses the non-test Go files in dir and returns the
// sorted, deduplicated string literals passed as the first argument to
// any Counter/Gauge/Histogram call. Pure syntax — no type checking — so
// it costs nothing and cannot fail on build issues; the trade-off is
// that runtime-built names are invisible.
func literalMetricNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Counter", "Gauge", "Histogram":
			default:
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			if s, err := strconv.Unquote(lit.Value); err == nil {
				seen[s] = true
			}
			return true
		})
	}
	names := make([]string, 0, len(seen))
	for s := range seen {
		names = append(names, s)
	}
	sort.Strings(names)
	return names, nil
}
