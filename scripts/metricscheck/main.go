// Command metricscheck validates a telemetry JSON export (the
// -metrics-out file written by the cmd binaries; schema in
// internal/telemetry/export.go). scripts/ci.sh uses it to fail the smoke
// run when the export is empty or malformed.
//
// Usage:
//
//	metricscheck [-require counter/name]... metrics.json
//
// It checks that the file is valid JSON with version 1, that at least one
// counter and one span were recorded, and that every -require'd counter
// exists with a positive value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// export mirrors the subset of internal/telemetry's JSON schema the
// checks need.
type export struct {
	Version  int       `json:"version"`
	Counters []counter `json:"counters"`
	Spans    []span    `json:"spans"`
}

type counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type span struct {
	Name          string `json:"name"`
	DurationNanos int64  `json:"duration_nanos"`
	Children      []span `json:"children"`
}

// multiFlag collects repeated -require values.
type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint(*m) }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var require multiFlag
	flag.Var(&require, "require", "counter that must exist with a positive value (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-require counter]... metrics.json")
		os.Exit(2)
	}
	if err := check(flag.Arg(0), require); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
	fmt.Printf("metricscheck: %s OK\n", flag.Arg(0))
}

func check(path string, require []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var ex export
	if err := json.Unmarshal(data, &ex); err != nil {
		return fmt.Errorf("%s: malformed export: %w", path, err)
	}
	if ex.Version != 1 {
		return fmt.Errorf("%s: version %d, want 1", path, ex.Version)
	}
	if len(ex.Counters) == 0 {
		return fmt.Errorf("%s: empty export: no counters recorded", path)
	}
	if len(ex.Spans) == 0 {
		return fmt.Errorf("%s: empty export: no spans recorded", path)
	}
	values := map[string]int64{}
	for _, c := range ex.Counters {
		values[c.Name] = c.Value
	}
	for _, name := range require {
		v, ok := values[name]
		if !ok {
			return fmt.Errorf("%s: required counter %q missing", path, name)
		}
		if v <= 0 {
			return fmt.Errorf("%s: required counter %q is %d, want > 0", path, name, v)
		}
	}
	return nil
}
