// Command metricscheck validates telemetry exports: the JSON file written
// by the cmd binaries' -metrics-out (schema in
// internal/telemetry/export.go) and the OpenMetrics/Prometheus text
// exposition served by their -debug-addr /metrics endpoint.
// scripts/ci.sh uses it to fail the smoke runs when an export is empty,
// malformed, or missing counters the pipeline must have bumped.
//
// Usage:
//
//	metricscheck [-require counter/name]... [-names-from pkg-dir]... \
//	    [-openmetrics file|-] [-scrape url] [-healthz url] [metrics.json]
//
// The JSON checks: valid version-1 schema, at least one counter and one
// span, every -require'd counter present with a positive value.
//
// The OpenMetrics checks (-openmetrics reads a file or stdin, -scrape
// fetches a live /metrics endpoint): the document parses (legal
// Prometheus identifiers, # TYPE before samples, known types, # EOF
// terminator), and every -require'd counter appears in exposition form —
// the area/sub/name → area_sub_name mapping plus the _total suffix —
// with a positive value. -healthz fetches a liveness endpoint and
// expects 200 "ok".
//
// When both a JSON export and an exposition are given they must come
// from the same registry dump: every JSON counter name is required to
// appear as an exposition family.
//
// -names-from closes the loop between code and export: it parses the Go
// files of the given package directory (go/ast, no build step), extracts
// every string literal passed as the name argument to a
// Counter/Gauge/Histogram registration, and fails when a code-emitted
// name is absent from the JSON export. Names built at runtime
// (fmt.Sprintf sharded counters) are invisible to the literal scan and
// are not checked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"isum/internal/telemetry"
)

// export mirrors the subset of internal/telemetry's JSON schema the
// checks need.
type export struct {
	Version    int         `json:"version"`
	Counters   []counter   `json:"counters"`
	Gauges     []gauge     `json:"gauges"`
	Histograms []histogram `json:"histograms"`
	Spans      []span      `json:"spans"`
}

type counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type gauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type histogram struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
}

type span struct {
	Name       string `json:"name"`
	DurationNs int64  `json:"duration_ns"`
	Children   []span `json:"children"`
}

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint(*m) }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var require, namesFrom multiFlag
	flag.Var(&require, "require", "counter that must exist with a positive value (repeatable)")
	flag.Var(&namesFrom, "names-from", "package dir whose literal Counter/Gauge/Histogram names must all appear in the export (repeatable)")
	openmetrics := flag.String("openmetrics", "", "OpenMetrics exposition file to validate ('-' reads stdin)")
	scrape := flag.String("scrape", "", "URL of a live /metrics endpoint to fetch and validate as OpenMetrics")
	healthz := flag.String("healthz", "", "URL of a /healthz endpoint that must answer 200 ok")
	flag.Parse()
	if flag.NArg() > 1 ||
		(flag.NArg() == 0 && *openmetrics == "" && *scrape == "" && *healthz == "") {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-require counter]... [-names-from pkg-dir]... [-openmetrics file|-] [-scrape url] [-healthz url] [metrics.json]")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), require, namesFrom, *openmetrics, *scrape, *healthz); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
	fmt.Println("metricscheck: OK")
}

func run(jsonPath string, require, namesFrom []string, openmetrics, scrape, healthz string) error {
	if healthz != "" {
		if err := checkHealthz(healthz); err != nil {
			return err
		}
	}
	var jsonEx *export
	if jsonPath != "" {
		ex, err := checkJSON(jsonPath, require, namesFrom)
		if err != nil {
			return err
		}
		jsonEx = ex
	}
	var om *omExposition
	switch {
	case openmetrics != "" && scrape != "":
		return fmt.Errorf("-openmetrics and -scrape are mutually exclusive")
	case openmetrics != "":
		ex, err := checkExpositionFile(openmetrics, require)
		if err != nil {
			return err
		}
		om = ex
	case scrape != "":
		ex, err := checkExpositionURL(scrape, require)
		if err != nil {
			return err
		}
		om = ex
	}
	if jsonEx != nil && om != nil {
		return crossCheck(jsonEx, om)
	}
	return nil
}

func checkJSON(path string, require, namesFrom []string) (*export, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ex export
	if err := json.Unmarshal(data, &ex); err != nil {
		return nil, fmt.Errorf("%s: malformed export: %w", path, err)
	}
	if ex.Version != 1 {
		return nil, fmt.Errorf("%s: version %d, want 1", path, ex.Version)
	}
	if len(ex.Counters) == 0 {
		return nil, fmt.Errorf("%s: empty export: no counters recorded", path)
	}
	if len(ex.Spans) == 0 {
		return nil, fmt.Errorf("%s: empty export: no spans recorded", path)
	}
	values := map[string]int64{}
	for _, c := range ex.Counters {
		values[c.Name] = c.Value
	}
	for _, name := range require {
		v, ok := values[name]
		if !ok {
			return nil, fmt.Errorf("%s: required counter %q missing", path, name)
		}
		if v <= 0 {
			return nil, fmt.Errorf("%s: required counter %q is %d, want > 0", path, name, v)
		}
	}
	exported := map[string]bool{}
	for _, c := range ex.Counters {
		exported[c.Name] = true
	}
	for _, g := range ex.Gauges {
		exported[g.Name] = true
	}
	for _, h := range ex.Histograms {
		exported[h.Name] = true
	}
	for _, dir := range namesFrom {
		names, err := literalMetricNames(dir)
		if err != nil {
			return nil, fmt.Errorf("-names-from %s: %w", dir, err)
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("-names-from %s: no literal metric names found; wrong directory?", dir)
		}
		var missing []string
		for _, name := range names {
			if !exported[name] {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			return nil, fmt.Errorf("%s: metric names registered by %s missing from the export: %s",
				path, dir, strings.Join(missing, ", "))
		}
	}
	return &ex, nil
}

// checkExposition validates a parsed OpenMetrics document against the
// require list: each area/sub/name counter must appear under its
// exposition name (telemetry.MetricName + _total) with a positive value.
func checkExposition(r io.Reader, source string, require []string) (*omExposition, error) {
	om, err := parseOpenMetrics(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", source, err)
	}
	if len(om.values) == 0 {
		return nil, fmt.Errorf("%s: empty exposition: no samples", source)
	}
	for _, name := range require {
		v, ok := om.counterValue(name, telemetry.MetricName)
		if !ok {
			return nil, fmt.Errorf("%s: required counter %q (%s_total) missing from exposition",
				source, name, telemetry.MetricName(name))
		}
		if v <= 0 {
			return nil, fmt.Errorf("%s: required counter %q is %g, want > 0", source, name, v)
		}
	}
	return om, nil
}

func checkExpositionFile(path string, require []string) (*omExposition, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
		path = "stdin"
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return checkExposition(r, path, require)
}

func checkExpositionURL(url string, require []string) (*omExposition, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %s", url, resp.Status)
	}
	return checkExposition(resp.Body, url, require)
}

func checkHealthz(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %s", url, resp.Status)
	}
	if strings.TrimSpace(string(body)) != "ok" {
		return fmt.Errorf("%s: body %q, want \"ok\"", url, strings.TrimSpace(string(body)))
	}
	return nil
}

// crossCheck requires every JSON counter to appear as an exposition
// family under its OpenMetrics name — valid only when both documents
// dump the same registry state (e.g. -metrics-out plus a post-run
// scrape of the same process).
func crossCheck(jsonEx *export, om *omExposition) error {
	var missing []string
	for _, c := range jsonEx.Counters {
		if _, ok := om.families[telemetry.MetricName(c.Name)]; !ok {
			missing = append(missing, c.Name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("JSON counters missing from the exposition: %s", strings.Join(missing, ", "))
	}
	return nil
}

// literalMetricNames parses the non-test Go files in dir and returns the
// sorted, deduplicated string literals passed as the first argument to
// any Counter/Gauge/Histogram call. Pure syntax — no type checking — so
// it costs nothing and cannot fail on build issues; the trade-off is
// that runtime-built names are invisible.
func literalMetricNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Counter", "Gauge", "Histogram":
			default:
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			if s, err := strconv.Unquote(lit.Value); err == nil {
				seen[s] = true
			}
			return true
		})
	}
	names := make([]string, 0, len(seen))
	for s := range seen {
		names = append(names, s)
	}
	sort.Strings(names)
	return names, nil
}
