package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"isum/internal/telemetry"
)

const validExposition = `# HELP core_greedy_rounds isum counter core/greedy/rounds
# TYPE core_greedy_rounds counter
core_greedy_rounds_total 12
# HELP features_intern_size isum gauge features/intern/size
# TYPE features_intern_size gauge
features_intern_size 33
# HELP core_greedy_argmax_nanos isum histogram core/greedy/argmax_nanos
# TYPE core_greedy_argmax_nanos histogram
core_greedy_argmax_nanos_bucket{le="1000"} 0
core_greedy_argmax_nanos_bucket{le="+Inf"} 3
core_greedy_argmax_nanos_sum 4500
core_greedy_argmax_nanos_count 3
# EOF
`

func TestParseOpenMetricsValid(t *testing.T) {
	om, err := parseOpenMetrics(strings.NewReader(validExposition))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(om.families); got != 3 {
		t.Fatalf("families = %d, want 3", got)
	}
	if v, ok := om.counterValue("core/greedy/rounds", telemetry.MetricName); !ok || v != 12 {
		t.Fatalf("core/greedy/rounds = %v, %v; want 12, true", v, ok)
	}
	if om.values[`core_greedy_argmax_nanos_bucket{le="+Inf"}`] != 3 {
		t.Fatal("histogram +Inf bucket not captured")
	}
}

func TestParseOpenMetricsRejects(t *testing.T) {
	cases := []struct{ name, body, want string }{
		{"missing EOF", "# TYPE x counter\nx_total 1\n", "# EOF"},
		{"content after EOF", "# TYPE x counter\nx_total 1\n# EOF\nx_total 2\n", "after # EOF"},
		{"illegal name", "# TYPE 0bad counter\n0bad_total 1\n# EOF\n", "illegal metric name"},
		{"unknown type", "# TYPE x summary\nx 1\n# EOF\n", "unknown metric type"},
		{"sample before TYPE", "x_total 1\n# TYPE x counter\n# EOF\n", "before its # TYPE"},
		{"bad value", "# TYPE x counter\nx_total banana\n# EOF\n", "unparseable value"},
		{"duplicate TYPE", "# TYPE x counter\n# TYPE x gauge\nx 1\n# EOF\n", "duplicate # TYPE"},
		{"no samples", "# TYPE x counter\n# EOF\n", "no samples"},
		{"malformed comment", "# NOPE x counter\n# EOF\n", "unknown comment kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOpenMetrics(strings.NewReader(tc.body))
			if err == nil {
				t.Fatal("parser accepted bad exposition")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckExpositionRequire(t *testing.T) {
	if _, err := checkExposition(strings.NewReader(validExposition), "t",
		[]string{"core/greedy/rounds"}); err != nil {
		t.Fatal(err)
	}
	_, err := checkExposition(strings.NewReader(validExposition), "t",
		[]string{"shard/runs"})
	if err == nil || !strings.Contains(err.Error(), "shard_runs_total") {
		t.Fatalf("missing-require error = %v, want mention of shard_runs_total", err)
	}
	zero := "# TYPE z counter\nz_total 0\n# EOF\n"
	if _, err := checkExposition(strings.NewReader(zero), "t", []string{"z"}); err == nil {
		t.Fatal("accepted a zero-valued required counter")
	}
}

// TestRegistryRoundTrip pins the encoder/validator pair: whatever the
// registry emits must parse clean and cross-check against its own JSON
// export.
func TestRegistryRoundTrip(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("core/greedy/rounds").Add(5)
	reg.Gauge("features/intern/size").Set(12)
	reg.Histogram("core/greedy/argmax_nanos", nil).Observe(5e3)
	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	om, err := checkExposition(strings.NewReader(sb.String()), "roundtrip",
		[]string{"core/greedy/rounds"})
	if err != nil {
		t.Fatalf("registry's own exposition failed validation: %v\n%s", err, sb.String())
	}
	var jb strings.Builder
	if err := reg.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	ex, err := checkJSONBytes([]byte(jb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := crossCheck(ex, om); err != nil {
		t.Fatalf("cross-check failed on same-registry dumps: %v", err)
	}
}

// checkJSONBytes is the test-side shim over the export schema so the
// round-trip test need not write a temp file.
func checkJSONBytes(data []byte) (*export, error) {
	var ex export
	if err := json.Unmarshal(data, &ex); err != nil {
		return nil, err
	}
	return &ex, nil
}

func TestCrossCheckMissing(t *testing.T) {
	om, err := parseOpenMetrics(strings.NewReader(validExposition))
	if err != nil {
		t.Fatal(err)
	}
	ex := &export{Counters: []counter{{Name: "shard/runs", Value: 3}}}
	err = crossCheck(ex, om)
	if err == nil || !strings.Contains(err.Error(), "shard/runs") {
		t.Fatalf("crossCheck = %v, want missing shard/runs", err)
	}
}

func TestCheckHealthz(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte("ok\n"))
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()
	if err := checkHealthz(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	if err := checkHealthz(srv.URL + "/nope"); err == nil {
		t.Fatal("accepted a 404 healthz")
	}
}

func TestCheckExpositionURL(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("cost/whatif/calls").Add(7)
	srv := httptest.NewServer(telemetry.Handler(reg, nil))
	defer srv.Close()
	if _, err := checkExpositionURL(srv.URL+"/metrics", []string{"cost/whatif/calls"}); err != nil {
		t.Fatal(err)
	}
	if _, err := checkExpositionURL(srv.URL+"/metrics", []string{"never/registered/name"}); err == nil {
		t.Fatal("accepted a scrape missing a required counter")
	}
}
