package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const validExport = `{
  "version": 1,
  "counters": [{"name": "cost/whatif/calls", "value": 42}],
  "gauges": [],
  "histograms": [],
  "spans": [{"name": "core/compress", "duration_nanos": 1000, "children": []}]
}`

func TestCheckValid(t *testing.T) {
	path := write(t, validExport)
	if err := check(path, []string{"cost/whatif/calls"}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejects(t *testing.T) {
	cases := []struct {
		name, body string
		require    []string
		want       string
	}{
		{"malformed", "{not json", nil, "malformed"},
		{"wrong version", `{"version": 2, "counters": [{"name": "x", "value": 1}], "spans": [{"name": "s"}]}`, nil, "version"},
		{"no counters", `{"version": 1, "counters": [], "spans": [{"name": "s"}]}`, nil, "no counters"},
		{"no spans", `{"version": 1, "counters": [{"name": "x", "value": 1}], "spans": []}`, nil, "no spans"},
		{"missing required", validExport, []string{"core/greedy/rounds"}, "missing"},
		{"zero required", `{"version": 1, "counters": [{"name": "x", "value": 0}], "spans": [{"name": "s"}]}`, []string{"x"}, "want > 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := check(write(t, tc.body), tc.require)
			if err == nil {
				t.Fatal("check accepted bad export")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
