package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const validExport = `{
  "version": 1,
  "counters": [{"name": "cost/whatif/calls", "value": 42}],
  "gauges": [],
  "histograms": [],
  "spans": [{"name": "core/compress", "duration_nanos": 1000, "children": []}]
}`

func TestCheckValid(t *testing.T) {
	path := write(t, validExport)
	if _, err := checkJSON(path, []string{"cost/whatif/calls"}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejects(t *testing.T) {
	cases := []struct {
		name, body string
		require    []string
		want       string
	}{
		{"malformed", "{not json", nil, "malformed"},
		{"wrong version", `{"version": 2, "counters": [{"name": "x", "value": 1}], "spans": [{"name": "s"}]}`, nil, "version"},
		{"no counters", `{"version": 1, "counters": [], "spans": [{"name": "s"}]}`, nil, "no counters"},
		{"no spans", `{"version": 1, "counters": [{"name": "x", "value": 1}], "spans": []}`, nil, "no spans"},
		{"missing required", validExport, []string{"core/greedy/rounds"}, "missing"},
		{"zero required", `{"version": 1, "counters": [{"name": "x", "value": 0}], "spans": [{"name": "s"}]}`, []string{"x"}, "want > 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := checkJSON(write(t, tc.body), tc.require, nil)
			if err == nil {
				t.Fatal("check accepted bad export")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// writePkg lays down a tiny package whose literal metric registrations
// the -names-from scan should extract (and whose Sprintf-built and
// test-file names it should ignore).
func writePkg(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	src := `package p

import "fmt"

type reg struct{}

func (reg) Counter(name string) int   { return 0 }
func (reg) Gauge(name string) int     { return 0 }
func (reg) Histogram(name string) int { return 0 }

func register(r reg, i int) {
	r.Counter("cost/whatif/calls")
	r.Gauge("core/compress/k")
	r.Histogram("core/greedy/argmax_nanos")
	r.Counter(fmt.Sprintf("cost/cache/shard%02d/hits", i)) // runtime-built: not scanned
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	testSrc := "package p\n\nfunc testOnly(r reg) { r.Counter(\"test/only/name\") }\n"
	if err := os.WriteFile(filepath.Join(dir, "p_test.go"), []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestLiteralMetricNames(t *testing.T) {
	names, err := literalMetricNames(writePkg(t))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"core/compress/k", "core/greedy/argmax_nanos", "cost/whatif/calls"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestNamesFrom(t *testing.T) {
	dir := writePkg(t)
	full := `{
  "version": 1,
  "counters": [{"name": "cost/whatif/calls", "value": 42}],
  "gauges": [{"name": "core/compress/k", "value": 8}],
  "histograms": [{"name": "core/greedy/argmax_nanos", "count": 3}],
  "spans": [{"name": "core/compress", "duration_ns": 1000}]
}`
	if _, err := checkJSON(write(t, full), nil, []string{dir}); err != nil {
		t.Fatal(err)
	}
	_, err := checkJSON(write(t, validExport), nil, []string{dir})
	if err == nil {
		t.Fatal("check accepted an export missing registered names")
	}
	for _, name := range []string{"core/compress/k", "core/greedy/argmax_nanos"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list missing name %q", err, name)
		}
	}
	if strings.Contains(err.Error(), "cost/whatif/calls") {
		t.Errorf("error %q lists a name the export does have", err)
	}
	if _, err := checkJSON(write(t, full), nil, []string{t.TempDir()}); err == nil {
		t.Fatal("check accepted a -names-from dir with no metric names")
	}
}
