// Command printmaxprocs prints the effective GOMAXPROCS (honouring the
// environment override) and exits. scripts/ci.sh uses it to gate the
// benchmark steps: parallel speedup figures recorded at GOMAXPROCS=1 are
// serial runs in disguise.
package main

import (
	"fmt"
	"runtime"
)

func main() {
	fmt.Println(runtime.GOMAXPROCS(0))
}
