package isum_test

import (
	"fmt"

	"isum"
)

// ExampleCompress shows the standard pipeline: build a workload with costs,
// compress it, tune the compressed workload, evaluate on the original.
func ExampleCompress() {
	gen := isum.TPCH(1)
	w, _ := gen.Workload(44, 1)
	o := isum.NewOptimizer(gen.Cat)
	o.FillCosts(w)

	cw, res := isum.Compress(w, 4)
	fmt.Println("selected", len(res.Indices), "queries from", w.Len())

	opts := isum.DefaultAdvisorOptions()
	opts.MaxIndexes = 8
	tuned := isum.Tune(o, cw, opts)
	pct, _, _ := isum.Evaluate(o, w, tuned.Config)
	fmt.Println("improved:", pct > 0)
	// Output:
	// selected 4 queries from 44
	// improved: true
}

// ExampleNewWorkload builds a workload over a user-defined catalog.
func ExampleNewWorkload() {
	cat := isum.NewCatalog()
	t := isum.NewCatalogTable("items", 50000)
	t.AddColumn(&isum.Column{Name: "id", DistinctCount: 50000, Min: 1, Max: 50000})
	t.AddColumn(&isum.Column{Name: "price", DistinctCount: 900, Min: 0, Max: 100})
	cat.AddTable(t)

	w, err := isum.NewWorkload(cat, []string{
		"SELECT price FROM items WHERE id = 7",
	})
	fmt.Println(err == nil, w.Len())
	// Output: true 1
}

// ExampleNewIncremental processes a stream in batches with a bounded pool.
func ExampleNewIncremental() {
	gen := isum.TPCH(1)
	w, _ := gen.Workload(40, 1)
	isum.NewOptimizer(gen.Cat).FillCosts(w)

	ic := isum.NewIncremental(gen.Cat, isum.DefaultOptions(), 5)
	ic.Observe(w.Queries[:20])
	ic.Observe(w.Queries[20:])
	fmt.Println(ic.Pool().Len(), ic.Seen())
	// Output: 5 40
}
