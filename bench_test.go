package isum_test

// One benchmark per table and figure of the paper's evaluation (Section 8),
// each regenerating the corresponding result via the experiments harness in
// fast mode, plus micro-benchmarks for the hot paths (parsing, feature
// extraction, weighted Jaccard, what-if costing, greedy compression,
// advisor tuning).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Individual figures: go test -bench=BenchmarkFig9a

import (
	"io"
	"testing"

	"isum/internal/advisor"
	"isum/internal/benchmarks"
	"isum/internal/core"
	"isum/internal/cost"
	"isum/internal/experiments"
	"isum/internal/features"
	"isum/internal/index"
	"isum/internal/sqlparser"
	"isum/internal/workload"
)

// runExperiment drives one registered experiment per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(experiments.FastConfig())
		if err := experiments.Run(env, id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- one bench per paper table/figure ----

func BenchmarkFig2_TuningScalability(b *testing.B)    { runExperiment(b, "fig2") }
func BenchmarkFig3_CompressionImpact(b *testing.B)    { runExperiment(b, "fig3") }
func BenchmarkFig5_UtilityCorrelation(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig6_BenefitCorrelation(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7_SimilarityMeasures(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8_SummaryFeatures(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkFig9a_CompressedSizeSweep(b *testing.B) { runExperiment(b, "fig9a") }
func BenchmarkFig9b_ConfigSizeSweep(b *testing.B)     { runExperiment(b, "fig9b") }
func BenchmarkFig10_StorageBudget(b *testing.B)       { runExperiment(b, "fig10") }
func BenchmarkFig11_AlgorithmEfficiency(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12_WorkloadSensitivity(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13_UpdateStrategies(b *testing.B)    { runExperiment(b, "fig13") }
func BenchmarkFig14_WeighingStrategies(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFig15_DexterAdvisor(b *testing.B)       { runExperiment(b, "fig15") }
func BenchmarkTable2_WorkloadSummary(b *testing.B)    { runExperiment(b, "table2") }
func BenchmarkTable3_EstimatorCorrelation(b *testing.B) {
	runExperiment(b, "table3")
}

// Implementation-ablation extras (DESIGN.md §5).

func BenchmarkExtraNormAblation(b *testing.B)    { runExperiment(b, "extra-norm") }
func BenchmarkExtraAdvisorAblation(b *testing.B) { runExperiment(b, "extra-advisor") }
func BenchmarkExtraIncremental(b *testing.B)     { runExperiment(b, "extra-incremental") }

// ---- micro-benchmarks of the hot paths ----

func benchWorkload(b *testing.B, n int) (*workload.Workload, *cost.Optimizer) {
	b.Helper()
	gen := benchmarks.TPCH(10)
	w, err := gen.Workload(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	o := cost.NewOptimizer(gen.Cat)
	o.FillCosts(w)
	return w, o
}

func BenchmarkParseTPCHQuery(b *testing.B) {
	gen := benchmarks.TPCH(1)
	w, err := gen.Workload(22, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.Parse(w.Queries[i%22].Text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeQuery(b *testing.B) {
	gen := benchmarks.TPCH(1)
	w, err := gen.Workload(22, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.Queries[i%22]
		if _, err := workload.Analyze(gen.Cat, q.Stmt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	gen := benchmarks.TPCH(1)
	w, err := gen.Workload(22, 1)
	if err != nil {
		b.Fatal(err)
	}
	ex := features.NewExtractor(gen.Cat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Features(w.Queries[i%22])
	}
}

func BenchmarkWeightedJaccard(b *testing.B) {
	gen := benchmarks.TPCH(1)
	w, _ := gen.Workload(22, 1)
	ex := features.NewExtractor(gen.Cat)
	vecs := make([]features.Vector, w.Len())
	for i, q := range w.Queries {
		vecs[i] = ex.Features(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.WeightedJaccard(vecs[i%22], vecs[(i+7)%22])
	}
}

func BenchmarkWhatIfCost(b *testing.B) {
	w, o := benchWorkload(b, 22)
	cfg := index.NewConfiguration(
		index.New("lineitem", "l_shipdate").WithIncludes("l_extendedprice", "l_discount"),
		index.New("lineitem", "l_orderkey"),
		index.New("orders", "o_orderdate").WithIncludes("o_custkey"),
		index.New("customer", "c_mktsegment"),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Cost(w.Queries[i%22], cfg)
	}
}

func BenchmarkCompressSummary(b *testing.B) {
	w, _ := benchWorkload(b, 110)
	comp := core.New(core.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp.Compress(w, 10)
	}
}

func BenchmarkCompressAllPairs(b *testing.B) {
	w, _ := benchWorkload(b, 110)
	opts := core.DefaultOptions()
	opts.Algorithm = core.AllPairs
	comp := core.New(opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp.Compress(w, 10)
	}
}

func BenchmarkAdvisorTune(b *testing.B) {
	w, o := benchWorkload(b, 44)
	opts := advisor.DefaultOptions()
	opts.MaxIndexes = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		advisor.New(o, opts).Tune(w)
	}
}
