package isum_test

// Serial-vs-parallel benchmarks over a 1k-query TPC-H workload. These are
// the perf-trajectory pair tracked in BENCH_parallel.json (written by
// scripts/ci.sh): on a multi-core runner the parallelism=max variants
// should beat parallelism=1 by ≥ 1.5×; on a single-core runner they
// degenerate to the same serial path and show parity.
//
// Run just this pair with:
//
//	go test -bench '^(BenchmarkCompress|BenchmarkTune)$' -benchmem

import (
	"runtime"
	"testing"

	"isum/internal/advisor"
	"isum/internal/core"
	"isum/internal/cost"
)

func benchParallelism(b *testing.B) map[string]int {
	b.Helper()
	return map[string]int{
		"parallelism=1":   1,
		"parallelism=max": runtime.GOMAXPROCS(0),
	}
}

func BenchmarkCompress(b *testing.B) {
	w, _ := benchWorkload(b, 1000)
	for name, p := range benchParallelism(b) {
		opts := core.DefaultOptions()
		opts.Parallelism = p
		comp := core.New(opts)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				comp.Compress(w, 30)
			}
		})
	}
}

func BenchmarkTune(b *testing.B) {
	w, o := benchWorkload(b, 1000)
	copts := core.DefaultOptions()
	cw, _ := core.New(copts).CompressedWorkload(w, 32)
	for name, p := range benchParallelism(b) {
		opts := advisor.DefaultOptions()
		opts.MaxIndexes = 10
		opts.Parallelism = p
		// Elision off: this pair isolates the parallel speedup; the
		// elided-vs-not comparison lives in BenchmarkTuneElided.
		opts.Elide = false
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Fresh optimizer per iteration: every run pays the same
				// all-miss what-if costs, so the two variants compare
				// compute, not cache hit rates.
				oi := cost.NewOptimizer(o.Catalog())
				oi.SetElision(false)
				advisor.New(oi, opts).Tune(cw)
			}
		})
	}
}

// BenchmarkTuneElided is the what-if elision trajectory pair tracked in
// BENCH_whatif.json: the same tuning run with elision off and on. Both
// variants recommend the identical configuration (pinned by
// TestElisionDoesNotChangeOutput); the elided one answers part of the
// probes from memoized atomic costs and bound pruning instead of fresh
// optimizer calls. Each variant reports whatif-calls/op (real calls the
// optimizer served per tune) and elided/op (probes answered without one).
//
// Run just this pair with:
//
//	go test -bench '^BenchmarkTuneElided$' -benchmem
func BenchmarkTuneElided(b *testing.B) {
	w, o := benchWorkload(b, 1000)
	copts := core.DefaultOptions()
	cw, _ := core.New(copts).CompressedWorkload(w, 32)
	for _, v := range []struct {
		name  string
		elide bool
	}{
		{"elide=off", false},
		{"elide=on", true},
	} {
		opts := advisor.DefaultOptions()
		opts.MaxIndexes = 10
		opts.Parallelism = 1
		opts.Elide = v.elide
		b.Run(v.name, func(b *testing.B) {
			var calls, elided int64
			for i := 0; i < b.N; i++ {
				// Fresh optimizer per iteration: cold caches and a cold
				// memo, so the variants compare one full tune each.
				oi := cost.NewOptimizer(o.Catalog())
				oi.SetElision(v.elide)
				res := advisor.New(oi, opts).Tune(cw)
				calls += res.OptimizerCalls
				hits, _, _ := oi.ElideStats()
				elided += hits
			}
			b.ReportMetric(float64(calls)/float64(b.N), "whatif-calls/op")
			b.ReportMetric(float64(elided)/float64(b.N), "elided/op")
		})
	}
}
