package isum_test

// Serial-vs-parallel benchmarks over a 1k-query TPC-H workload. These are
// the perf-trajectory pair tracked in BENCH_parallel.json (written by
// scripts/ci.sh): on a multi-core runner the parallelism=max variants
// should beat parallelism=1 by ≥ 1.5×; on a single-core runner they
// degenerate to the same serial path and show parity.
//
// Run just this pair with:
//
//	go test -bench '^(BenchmarkCompress|BenchmarkTune)$' -benchmem

import (
	"runtime"
	"testing"

	"isum/internal/advisor"
	"isum/internal/core"
	"isum/internal/cost"
)

func benchParallelism(b *testing.B) map[string]int {
	b.Helper()
	return map[string]int{
		"parallelism=1":   1,
		"parallelism=max": runtime.GOMAXPROCS(0),
	}
}

func BenchmarkCompress(b *testing.B) {
	w, _ := benchWorkload(b, 1000)
	for name, p := range benchParallelism(b) {
		opts := core.DefaultOptions()
		opts.Parallelism = p
		comp := core.New(opts)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				comp.Compress(w, 30)
			}
		})
	}
}

func BenchmarkTune(b *testing.B) {
	w, o := benchWorkload(b, 1000)
	copts := core.DefaultOptions()
	cw, _ := core.New(copts).CompressedWorkload(w, 32)
	for name, p := range benchParallelism(b) {
		opts := advisor.DefaultOptions()
		opts.MaxIndexes = 10
		opts.Parallelism = p
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Fresh optimizer per iteration: every run pays the same
				// all-miss what-if costs, so the two variants compare
				// compute, not cache hit rates.
				advisor.New(cost.NewOptimizer(o.Catalog()), opts).Tune(cw)
			}
		})
	}
}
