// Package isum is a from-scratch reproduction of "ISUM: Efficiently
// Compressing Large and Complex Workloads for Scalable Index Tuning"
// (SIGMOD 2022): a workload-compression library for index tuning, together
// with every substrate the paper depends on — a SQL parser, a statistics
// catalog, a cost-based "what-if" optimizer, DTA- and DEXTER-style index
// advisors, and the TPC-H / TPC-DS / DSB / Real-M evaluation workloads.
//
// This root package is the public façade: it re-exports the library's main
// types and provides one-call helpers for the common pipeline
//
//	workload  →  Compress  →  Tune  →  Evaluate
//
// Every stage of the pipeline is parallel by default: feature extraction,
// greedy benefit scans, advisor candidate selection/enumeration, and
// workload costing fan their work across GOMAXPROCS workers over a sharded
// what-if cost cache. The CompressorOptions.Parallelism and
// AdvisorOptions.Parallelism knobs bound the worker count (0 = GOMAXPROCS,
// 1 = serial); results are identical at any setting — see DESIGN.md,
// "Concurrency model".
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// architecture and the paper-experiment index.
package isum

import (
	"context"
	"io"

	"isum/internal/advisor"
	"isum/internal/benchmarks"
	"isum/internal/catalog"
	"isum/internal/core"
	"isum/internal/cost"
	"isum/internal/durable"
	"isum/internal/faults"
	"isum/internal/index"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

// Re-exported core types. The implementation lives under internal/; these
// aliases are the supported public names.
type (
	// Catalog holds schema metadata and optimizer statistics.
	Catalog = catalog.Catalog
	// Table is one base table with statistics.
	Table = catalog.Table
	// Column is one column with statistics.
	Column = catalog.Column
	// Workload is an analysed SQL workload with costs.
	Workload = workload.Workload
	// Query is one workload query.
	Query = workload.Query
	// Index is a (hypothetical) secondary index definition.
	Index = index.Index
	// Configuration is a set of indexes.
	Configuration = index.Configuration
	// Optimizer is the cost-based what-if optimizer.
	Optimizer = cost.Optimizer
	// Compressor runs ISUM workload compression.
	Compressor = core.Compressor
	// CompressionResult reports selected queries, weights, and timings.
	CompressionResult = core.Result
	// CompressorOptions configure ISUM (algorithm, utility mode, update and
	// weighing strategies, feature weighting).
	CompressorOptions = core.Options
	// Advisor is an index advisor over the what-if optimizer.
	Advisor = advisor.Advisor
	// AdvisorOptions configure a tuning run (mode, index count, storage).
	AdvisorOptions = advisor.Options
	// TuningResult reports a tuning run.
	TuningResult = advisor.Result
	// BenchmarkGenerator produces evaluation workloads (TPC-H, TPC-DS, DSB,
	// Real-M).
	BenchmarkGenerator = benchmarks.Generator
	// IncrementalCompressor maintains a bounded compressed pool over a
	// query stream (Section 10 extension).
	IncrementalCompressor = core.Incremental
	// Plan is the optimizer's per-query access-path explanation.
	Plan = cost.Plan
	// WorkloadReport is the DTA-style per-query improvement drill-down.
	WorkloadReport = advisor.WorkloadReport
	// Telemetry is the metrics registry + phase tracer threaded through the
	// pipeline (CompressorOptions.Telemetry, AdvisorOptions.Telemetry,
	// NewOptimizerWithTelemetry). A nil *Telemetry disables instrumentation
	// at zero cost — see DESIGN.md §8.
	Telemetry = telemetry.Registry
	// TelemetrySpan is one timed phase in the trace tree.
	TelemetrySpan = telemetry.Span
	// ProgressEvent is one streaming update from a running compression or
	// tuning phase (CompressorOptions.Progress, AdvisorOptions.Progress —
	// DESIGN.md §13).
	ProgressEvent = telemetry.ProgressEvent
	// ProgressFunc receives progress events; it must be safe for
	// concurrent use and nil disables the bus at zero cost.
	ProgressFunc = telemetry.ProgressFunc
	// ProgressTracker folds progress events into the snapshot served by
	// the debug server's /progress endpoint.
	ProgressTracker = telemetry.Tracker
	// DebugServer is the live debug HTTP server (/metrics in OpenMetrics
	// form, /healthz, /progress, /debug/pprof).
	DebugServer = telemetry.Server
)

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return catalog.New() }

// NewCatalogTable returns an empty table with the given name and row
// count, ready to receive columns and be added to a catalog.
func NewCatalogTable(name string, rows int64) *Table { return catalog.NewTable(name, rows) }

// NewWorkload parses and analyses SQL strings against a catalog. Fill the
// costs with Optimizer.FillCosts or load them from your query store.
func NewWorkload(cat *Catalog, sqls []string) (*Workload, error) {
	return workload.New(cat, sqls)
}

// LoadWorkload reads a JSON query log (text + optimizer-estimated costs,
// the Section 2.2 contract) and analyses it against the catalog.
func LoadWorkload(cat *Catalog, r io.Reader) (*Workload, error) {
	return workload.Load(cat, r)
}

// LoadSQLScript reads a semicolon-separated SQL script (comments allowed)
// and analyses it against the catalog; costs are left zero.
func LoadSQLScript(cat *Catalog, r io.Reader) (*Workload, error) {
	return workload.LoadSQLScript(cat, r)
}

// LoadCatalog reads a catalog (schema + statistics) from its JSON export —
// the "tune with production stats on a test server" workflow.
func LoadCatalog(r io.Reader) (*Catalog, error) { return catalog.LoadJSON(r) }

// LoadConfiguration reads an index configuration from its JSON export.
func LoadConfiguration(r io.Reader) (*Configuration, error) {
	return index.LoadConfigurationJSON(r)
}

// NewOptimizer returns a what-if optimizer over a catalog.
func NewOptimizer(cat *Catalog) *Optimizer { return cost.NewOptimizer(cat) }

// NewTelemetry returns an empty telemetry registry. Pass it to
// NewOptimizerWithTelemetry and the Telemetry fields of
// CompressorOptions/AdvisorOptions, then export with its WriteJSON,
// WriteText, or WriteTrace methods.
func NewTelemetry() *Telemetry { return telemetry.New() }

// NewOptimizerWithTelemetry returns a what-if optimizer whose call, plan,
// and per-shard cache counters register in reg (nil reg behaves like
// NewOptimizer).
func NewOptimizerWithTelemetry(cat *Catalog, reg *Telemetry) *Optimizer {
	return cost.NewOptimizerWithTelemetry(cat, cost.DefaultParams(), reg)
}

// NewProgressTracker returns an empty progress tracker; wire its Observe
// method into CompressorOptions.Progress / AdvisorOptions.Progress and
// serve it with ServeDebug to watch a run live.
func NewProgressTracker() *ProgressTracker { return telemetry.NewTracker() }

// ServeDebug starts the live debug HTTP server on addr (port 0 picks a
// free port — read it back from Addr): GET /metrics serves reg in
// OpenMetrics/Prometheus text exposition form, /healthz liveness,
// /progress the tracker's JSON snapshot, and /debug/pprof the runtime
// profiles. Either argument may be nil. Close the server to release the
// port and its goroutine — see DESIGN.md §13.
func ServeDebug(addr string, reg *Telemetry, tr *ProgressTracker) (*DebugServer, error) {
	return telemetry.Serve(addr, reg, tr)
}

// DefaultOptions returns ISUM's default configuration (rule-based weights,
// summary-features algorithm).
func DefaultOptions() CompressorOptions { return core.DefaultOptions() }

// ISUMSOptions returns the statistics-based ISUM-S variant.
func ISUMSOptions() CompressorOptions { return core.ISUMSOptions() }

// NewCompressor returns an ISUM compressor.
func NewCompressor(opts CompressorOptions) *Compressor { return core.New(opts) }

// Compress selects k weighted queries from w using the default ISUM
// configuration and returns the compressed workload ready for tuning.
func Compress(w *Workload, k int) (*Workload, *CompressionResult) {
	return core.New(core.DefaultOptions()).CompressedWorkload(w, k)
}

// DefaultAdvisorOptions returns DTA-style tuning options.
func DefaultAdvisorOptions() AdvisorOptions { return advisor.DefaultOptions() }

// DexterAdvisorOptions returns DEXTER-style tuning options.
func DexterAdvisorOptions() AdvisorOptions { return advisor.DexterOptions() }

// Tune runs the advisor on a (typically compressed, weighted) workload.
func Tune(o *Optimizer, w *Workload, opts AdvisorOptions) *TuningResult {
	return advisor.New(o, opts).Tune(w)
}

// Evaluate returns the improvement % of cfg on w — the paper's metric
// (C(W) − C_I(W)) / C(W) × 100 — with the before/after costs. The
// per-query what-if calls fan out across every core; the sums reduce in
// input order, so the result matches a serial evaluation exactly.
func Evaluate(o *Optimizer, w *Workload, cfg *Configuration) (pct, before, after float64) {
	return advisor.EvaluateImprovement(o, w, cfg)
}

// NewIncremental returns an incremental compressor keeping at most k
// weighted representatives across Observe calls.
func NewIncremental(cat *Catalog, opts CompressorOptions, k int) *IncrementalCompressor {
	return core.NewIncremental(cat, opts, k)
}

// Explain returns the optimizer's access-path choices for q under cfg.
func Explain(o *Optimizer, q *Query, cfg *Configuration) *Plan {
	return o.Explain(q, cfg)
}

// Report computes the per-query improvement drill-down of cfg on w — the
// reporting contract commercial advisors expose (Section 10).
func Report(o *Optimizer, w *Workload, cfg *Configuration) *WorkloadReport {
	return advisor.Report(o, w, cfg)
}

// Failure model (DESIGN.md §9). The context-taking pipeline entry points
// implement the anytime contract: on cancellation or deadline expiry they
// return the best-so-far result with Partial set rather than an error;
// the error is reserved for real failures (retry-exhausted what-if calls,
// contained worker panics).
type (
	// RetryPolicy bounds the retries around transient what-if failures
	// (Optimizer.SetRetryPolicy).
	RetryPolicy = cost.RetryPolicy
	// FaultConfig sets deterministic fault-injection rates for chaos runs.
	FaultConfig = faults.Config
	// FaultInjector is the seeded deterministic injector
	// (Optimizer.SetInjector); same seed → same faults, so with retries a
	// chaos run reproduces the fault-free output exactly.
	FaultInjector = faults.Injector
)

// ErrFaultInjected marks a transient what-if failure produced by the fault
// harness; retry-exhausted errors wrap it.
var ErrFaultInjected = faults.ErrInjected

// NewFaultInjector returns a deterministic seeded injector.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faults.NewInjector(cfg) }

// ParseChaosSpec parses a chaos spec like "seed=42,errors=0.3,delay=200us".
func ParseChaosSpec(spec string) (FaultConfig, error) { return faults.ParseSpec(spec) }

// DefaultRetryPolicy returns the standard what-if retry policy.
func DefaultRetryPolicy() RetryPolicy { return cost.DefaultRetryPolicy() }

// IsCancellation reports whether err is a context cancellation or deadline
// expiry — the "partial result" outcomes, as opposed to real failures.
func IsCancellation(err error) bool { return faults.IsCancellation(err) }

// CompressContext is Compress with the anytime contract: on cancellation
// the returned workload holds the best-so-far weighted selection and the
// result has Partial set.
func CompressContext(ctx context.Context, w *Workload, k int) (*Workload, *CompressionResult, error) {
	return core.New(core.DefaultOptions()).CompressedWorkloadContext(ctx, w, k)
}

// TuneContext is Tune with the anytime contract: on cancellation the
// result holds the best configuration found so far with Partial set.
func TuneContext(ctx context.Context, o *Optimizer, w *Workload, opts AdvisorOptions) (*TuningResult, error) {
	return advisor.New(o, opts).TuneContext(ctx, w)
}

// EvaluateContext is Evaluate with cancellation and failure reporting.
func EvaluateContext(ctx context.Context, o *Optimizer, w *Workload, cfg *Configuration) (pct, before, after float64, err error) {
	return advisor.EvaluateImprovementContext(ctx, o, w, cfg, 0)
}

// Durable workload store (DESIGN.md §14). A DurableStore is an
// IncrementalCompressor whose observed batches are written ahead to a
// checksummed log with periodic state snapshots, so a tuning session
// survives process death: reopen the directory and continue where the
// log ends.
type (
	// DurableStore is the persistent incremental-compression session.
	DurableStore = durable.Store
	// DurableOptions configure the store (directory, catalog, compressor
	// options, pool size, fsync policy, snapshot cadence).
	DurableOptions = durable.Options
	// RecoveryInfo reports what crash recovery found and replayed.
	RecoveryInfo = durable.RecoveryInfo
)

// OpenDurable opens (creating or recovering) a durable store directory
// for appending. Corrupt or torn log tails are detected by checksum,
// repaired, and skipped — recovery returns the last-good state, never an
// error for corruption.
func OpenDurable(ctx context.Context, opts DurableOptions) (*DurableStore, *RecoveryInfo, error) {
	return durable.Open(ctx, opts)
}

// Recover rebuilds the compression state from a durable store directory
// read-only — inspection without touching the log. It honours the
// anytime contract: cancellation yields a valid partial state.
func Recover(ctx context.Context, opts DurableOptions) (*IncrementalCompressor, *RecoveryInfo, error) {
	return durable.Recover(ctx, opts)
}

// TPCH, TPCDS, DSB, and RealM return the paper's evaluation workload
// generators (DESIGN.md §1 documents the synthetic substitutions).
func TPCH(sf float64) *BenchmarkGenerator  { return benchmarks.TPCH(sf) }
func TPCDS(sf float64) *BenchmarkGenerator { return benchmarks.TPCDS(sf) }
func DSB(sf float64) *BenchmarkGenerator   { return benchmarks.DSB(sf) }
func RealM(seed int64) *BenchmarkGenerator { return benchmarks.RealM(seed) }
