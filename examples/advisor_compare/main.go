// Advisor comparison: tune the same ISUM-compressed workload with the
// DTA-style and DEXTER-style advisors and compare recommendations — the
// generalisation experiment of Section 8.3.
//
//	go run ./examples/advisor_compare
package main

import (
	"fmt"
	"log"

	"isum/internal/advisor"
	"isum/internal/benchmarks"
	"isum/internal/core"
	"isum/internal/cost"
)

func main() {
	gen := benchmarks.DSB(10)
	w, err := gen.Workload(208, 1)
	if err != nil {
		log.Fatal(err)
	}
	o := cost.NewOptimizer(gen.Cat)
	o.FillCosts(w)

	compressed, _ := core.New(core.ISUMSOptions()).CompressedWorkload(w, 12)
	fmt.Printf("DSB workload: %d queries compressed to %d\n\n", w.Len(), compressed.Len())

	for _, mode := range []struct {
		name string
		opts advisor.Options
	}{
		{"DTA-style", func() advisor.Options {
			op := advisor.DefaultOptions()
			op.MaxIndexes = 15
			op.StorageBudget = 3 * gen.Cat.TotalSizeBytes()
			return op
		}()},
		{"DEXTER-style", advisor.DexterOptions()},
	} {
		res := advisor.New(o, mode.opts).Tune(compressed)
		pct, _, _ := advisor.EvaluateImprovement(o, w, res.Config)
		fmt.Printf("%s advisor: %d indexes, %d optimizer calls, %v\n",
			mode.name, res.Config.Len(), res.OptimizerCalls, res.Elapsed)
		for _, ix := range res.Config.Indexes() {
			fmt.Println("   ", ix)
		}
		fmt.Printf("  improvement on full workload: %.1f%%\n\n", pct)
	}
}
