// Custom workload: build your own catalog and SQL workload, compare
// compression algorithms on it, and inspect ISUM's query features.
//
// This is the path a user takes to apply ISUM to their own system: define
// schema + statistics, hand over the query log with costs, compress.
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"

	"isum/internal/advisor"
	"isum/internal/catalog"
	"isum/internal/compress"
	"isum/internal/core"
	"isum/internal/cost"
	"isum/internal/features"
	"isum/internal/storage"
	"isum/internal/workload"
)

// buildCatalog declares the schema with value *distributions*; the storage
// package samples them, builds histograms, and estimates distinct counts —
// the statistics a real engine's ANALYZE would produce.
func buildCatalog() *catalog.Catalog {
	cat := catalog.New()
	dmin, _ := workload.ParseDateDays("2023-01-01")
	dmax, _ := workload.ParseDateDays("2024-12-31")

	must := func(_ *catalog.Table, err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(storage.Populate(cat, storage.TableSpec{
		Name: "users", Rows: 2_000_000,
		Columns: []storage.ColumnSpec{
			{Name: "id", Type: catalog.TypeInt, Dist: &storage.Sequential{}},
			{Name: "country", Type: catalog.TypeString, Dist: storage.Categorical{K: 120, Skew: 1}},
			{Name: "signup_score", Type: catalog.TypeInt, Dist: storage.Normal{Mean: 50, Std: 18}},
		},
	}, 1))
	must(storage.Populate(cat, storage.TableSpec{
		Name: "events", Rows: 80_000_000,
		Columns: []storage.ColumnSpec{
			{Name: "id", Type: catalog.TypeInt, Dist: &storage.Sequential{}},
			{Name: "user_id", Type: catalog.TypeInt, Dist: storage.Zipf{N: 2_000_000, S: 1.3}},
			{Name: "kind", Type: catalog.TypeString, Dist: storage.Categorical{K: 40, Skew: 1.5}},
			{Name: "amount", Type: catalog.TypeDecimal, Dist: storage.Zipf{N: 10_000, S: 1.1}},
			{Name: "occurred_at", Type: catalog.TypeDate, Dist: storage.Uniform{Min: dmin, Max: dmax}},
		},
	}, 2))
	return cat
}

func main() {
	cat := buildCatalog()

	// A mixed OLTP/analytics log. In production you would harvest this from
	// your query store together with the optimizer-estimated costs; here we
	// let the built-in what-if optimizer fill the costs.
	var sqls []string
	for day := 1; day <= 12; day++ {
		sqls = append(sqls, fmt.Sprintf(
			"SELECT amount FROM events WHERE user_id = %d AND occurred_at >= '2024-%02d-01'", day*777, day))
	}
	for score := 90; score < 96; score++ {
		sqls = append(sqls, fmt.Sprintf(
			"SELECT id FROM users WHERE signup_score > %d AND country = 'DE'", score))
	}
	for m := 1; m <= 6; m++ {
		sqls = append(sqls, fmt.Sprintf(
			`SELECT u.country, SUM(e.amount) FROM users u, events e
			 WHERE u.id = e.user_id AND e.kind = 'purchase' AND e.occurred_at >= '2024-%02d-01'
			 GROUP BY u.country ORDER BY u.country`, m))
	}

	w, err := workload.New(cat, sqls)
	if err != nil {
		log.Fatal(err)
	}
	o := cost.NewOptimizer(cat)
	o.FillCosts(w)

	// Peek at ISUM's featurization of one query.
	ex := features.NewExtractor(cat)
	fmt.Println("features of the join query:")
	for key, wgt := range ex.Features(w.Queries[len(sqls)-1]) {
		fmt.Printf("  %-22s %.3f\n", key, wgt)
	}

	// Compare compressors at k=5.
	k := 5
	aopts := advisor.DefaultOptions()
	aopts.MaxIndexes = 8
	compressors := []compress.Compressor{
		&compress.Uniform{Seed: 3},
		&compress.CostTopK{},
		&compress.GSUM{},
		core.New(core.DefaultOptions()),
	}
	fmt.Printf("\nimprovement on the full %d-query workload after tuning %d selected queries:\n", w.Len(), k)
	for _, c := range compressors {
		res := c.Compress(w, k)
		cw := w.WeightedSubset(res.Indices, res.Weights)
		tuned := advisor.New(o, aopts).Tune(cw)
		pct, _, _ := advisor.EvaluateImprovement(o, w, tuned.Config)
		fmt.Printf("  %-10s %.1f%%  (picked %v)\n", c.Name(), pct, res.Indices)
	}
}
