// Quickstart: compress a TPC-H workload with ISUM, tune the compressed
// workload, and measure the improvement on the full workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"isum/internal/advisor"
	"isum/internal/benchmarks"
	"isum/internal/core"
	"isum/internal/cost"
)

func main() {
	// 1. A workload: 220 TPC-H query instances (22 templates × 10 parameter
	// bindings) over the sf=10 catalog, with optimizer-estimated costs —
	// exactly the input contract of the paper (Section 2.2).
	gen := benchmarks.TPCH(10)
	w, err := gen.Workload(220, 1)
	if err != nil {
		log.Fatal(err)
	}
	optimizer := cost.NewOptimizer(gen.Cat)
	optimizer.FillCosts(w)
	fmt.Printf("input workload: %d queries, %d templates, total cost %.0f\n",
		w.Len(), w.NumTemplates(), w.TotalCost())

	// 2. Compress to 16 queries with ISUM (linear-time summary-features
	// algorithm, rule-based weights, template-aware weighing).
	compressor := core.New(core.DefaultOptions())
	compressed, res := compressor.CompressedWorkload(w, 16)
	fmt.Printf("compressed to %d queries in %v\n", compressed.Len(), res.Elapsed)
	for i, idx := range res.Indices {
		fmt.Printf("  picked query #%-3d (weight %.3f): %.60s...\n",
			idx, res.Weights[i], w.Queries[idx].Text)
	}

	// 3. Tune the compressed workload with the DTA-style advisor.
	opts := advisor.DefaultOptions()
	opts.MaxIndexes = 20
	opts.StorageBudget = 3 * gen.Cat.TotalSizeBytes()
	tuned := advisor.New(optimizer, opts).Tune(compressed)
	fmt.Printf("\nrecommended %d indexes (%d optimizer calls, %v):\n",
		tuned.Config.Len(), tuned.OptimizerCalls, tuned.Elapsed)
	for _, ix := range tuned.Config.Indexes() {
		fmt.Println("  ", ix)
	}

	// 4. Evaluate on the FULL workload — the paper's metric.
	pct, base, final := advisor.EvaluateImprovement(optimizer, w, tuned.Config)
	fmt.Printf("\nfull-workload improvement: %.1f%% (cost %.0f -> %.0f)\n", pct, base, final)
}
