// Incremental compression: process a query log in arrival batches and keep
// a bounded compressed workload across batches — a working sketch of the
// future-work direction in Section 10 (ISUM over incrementally consumed
// workloads, e.g. under a tuner time budget).
//
// Strategy: maintain a running pool of at most poolSize queries; on each
// batch, append the new arrivals and recompress the pool to k queries. The
// weights absorb the represented mass, so tuning the pool approximates
// tuning everything seen so far.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"

	"isum/internal/advisor"
	"isum/internal/benchmarks"
	"isum/internal/core"
	"isum/internal/cost"
	"isum/internal/workload"
)

func main() {
	const (
		batchSize = 64
		batches   = 5
		k         = 12 // compressed pool size carried between batches
	)

	gen := benchmarks.TPCDS(10)
	full, err := gen.Workload(batchSize*batches, 1)
	if err != nil {
		log.Fatal(err)
	}
	o := cost.NewOptimizer(gen.Cat)
	o.FillCosts(full)

	aopts := advisor.DefaultOptions()
	aopts.MaxIndexes = 15
	aopts.StorageBudget = 3 * gen.Cat.TotalSizeBytes()

	// The library's incremental compressor keeps a bounded pool of weighted
	// representatives across batches.
	ic := core.NewIncremental(gen.Cat, core.DefaultOptions(), k)
	seen := &workload.Workload{Catalog: gen.Cat}

	for b := 0; b < batches; b++ {
		batch := full.Queries[b*batchSize : (b+1)*batchSize]
		seen.Queries = append(seen.Queries, batch...)
		res := ic.Observe(batch)

		// Tune the pool and evaluate against everything seen so far.
		tuned := advisor.New(o, aopts).Tune(ic.Pool())
		pct, _, _ := advisor.EvaluateImprovement(o, seen, tuned.Config)
		fmt.Printf("batch %d: seen %3d queries, pool %2d, compression %v, improvement on seen: %.1f%%\n",
			b+1, seen.Len(), ic.Pool().Len(), res.Elapsed.Round(1000), pct)
	}

	// Reference: one-shot compression of the entire workload.
	res := core.New(core.DefaultOptions()).Compress(full, k)
	cw := full.WeightedSubset(res.Indices, res.Weights)
	tuned := advisor.New(o, aopts).Tune(cw)
	pct, _, _ := advisor.EvaluateImprovement(o, full, tuned.Config)
	fmt.Printf("\none-shot reference (same k=%d): %.1f%%\n", k, pct)
}
