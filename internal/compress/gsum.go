package compress

import (
	"math"
	"sort"
	"time"

	"isum/internal/core"
	"isum/internal/features"
	"isum/internal/workload"
)

// GSUM implements the coverage + representativity greedy of Deep et al.
// [20]: queries are featurised indexing-agnostically (every referenced
// column, unweighted), and the summary S maximises
//
//	α·coverage(S) + (1−α)·representativity(S)
//
// where coverage is the fraction of workload features present in S and
// representativity is one minus the total-variation distance between the
// feature distributions of S and W. As the paper notes (Sections 1, 9),
// GSUM is agnostic both to which columns matter for indexing and to the
// queries' improvement potential — the two gaps ISUM targets.
type GSUM struct {
	// Alpha balances coverage against representativity (default 0.5).
	Alpha float64
}

// Name implements Compressor.
func (g *GSUM) Name() string { return "GSUM" }

// Compress implements Compressor.
func (g *GSUM) Compress(w *workload.Workload, k int) *core.Result {
	start := time.Now() //lint:allow determinism Result.Elapsed timing only; greedy scoring never reads the clock
	n := w.Len()
	k = clampK(k, n)
	alpha := g.Alpha
	if alpha == 0 {
		alpha = 0.5
	}

	// Indexing-agnostic featurisation: every column referenced anywhere.
	feats := make([]map[string]bool, n)
	workloadFreq := map[string]float64{}
	var totalFeats float64
	for i, q := range w.Queries {
		f := map[string]bool{}
		if q.Info != nil {
			for _, c := range q.Info.FilterColumns() {
				f[c.Key()] = true
			}
			for _, c := range q.Info.JoinColumns() {
				f[c.Key()] = true
			}
			for _, c := range q.Info.GroupByColumns() {
				f[c.Key()] = true
			}
			for _, c := range q.Info.OrderByColumns() {
				f[c.Key()] = true
			}
			for _, blk := range q.Info.Blocks {
				for _, c := range blk.Projected {
					f[c.Key()] = true
				}
			}
		}
		feats[i] = f
		for key := range f {
			workloadFreq[key]++
			totalFeats++
		}
	}
	if totalFeats == 0 {
		// Degenerate workload (no analysable columns): fall back to prefix.
		res := &core.Result{}
		for i := 0; i < k; i++ {
			res.Indices = append(res.Indices, i)
		}
		res.Weights = uniformWeights(k)
		res.Elapsed = time.Since(start)
		return res
	}
	for key := range workloadFreq {
		workloadFreq[key] /= totalFeats
	}

	selected := make([]bool, n)
	covered := map[string]bool{}
	sumFreq := map[string]float64{}
	var sumTotal float64
	res := &core.Result{}

	score := func(i int) float64 {
		// Marginal coverage.
		newCov := 0
		for key := range feats[i] {
			if !covered[key] {
				newCov++
			}
		}
		coverage := float64(len(covered)+newCov) / float64(len(workloadFreq))
		// Representativity: 1 − total variation distance between the
		// candidate summary's feature distribution and the workload's.
		total := sumTotal + float64(len(feats[i]))
		if total == 0 {
			return alpha * coverage
		}
		// Accumulate the per-feature deviations canonically: a float sum
		// in map-iteration order would drift by an ulp from run to run
		// (the features.DetSum bug class caught by isumlint).
		terms := make([]float64, 0, len(workloadFreq))
		for key, wf := range workloadFreq {
			sf := sumFreq[key]
			if feats[i][key] {
				sf++
			}
			terms = append(terms, math.Abs(sf/total-wf))
		}
		tv := features.DetSum(terms)
		rep := 1 - tv/2
		return alpha*coverage + (1-alpha)*rep
	}

	for len(res.Indices) < k {
		bestI, bestS := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if selected[i] {
				continue
			}
			if s := score(i); s > bestS {
				bestS, bestI = s, i
			}
		}
		if bestI < 0 {
			break
		}
		selected[bestI] = true
		res.Indices = append(res.Indices, bestI)
		for key := range feats[bestI] {
			covered[key] = true
			sumFreq[key]++
			sumTotal++
		}
	}
	sort.Ints(res.Indices)
	res.Weights = uniformWeights(len(res.Indices))
	res.Elapsed = time.Since(start)
	return res
}
