package compress

import (
	"math"
	"math/rand"
	"time"

	"isum/internal/core"
	"isum/internal/features"
	"isum/internal/workload"
)

// KMedoid implements the clustering-based compression of Chaudhuri et al.
// [11], adapted (as in the paper's Section 8 evaluation) to use weighted
// Jaccard over ISUM's query features as the distance, since the original
// distance function is undefined across templates. It seeds k random
// medoids, alternates assignment and medoid refitting until convergence or
// MaxIterations, and returns the medoids weighted by cluster cost share.
type KMedoid struct {
	Seed          int64
	MaxIterations int
}

// Name implements Compressor.
func (m *KMedoid) Name() string { return "k-medoid" }

// Compress implements Compressor.
func (m *KMedoid) Compress(w *workload.Workload, k int) *core.Result {
	start := time.Now() //lint:allow determinism Result.Elapsed timing only; medoid selection never reads the clock
	n := w.Len()
	k = clampK(k, n)
	if k == 0 {
		return &core.Result{Elapsed: time.Since(start)}
	}
	maxIter := m.MaxIterations
	if maxIter == 0 {
		maxIter = 20
	}
	seed := m.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	states := core.BuildStates(w, core.DefaultOptions())
	vecs := make([]features.SparseVec, n)
	for i, s := range states {
		vecs[i] = s.OrigVec
	}
	dist := func(a, b int) float64 { return 1 - vecs[a].WeightedJaccard(vecs[b]) }

	medoids := rng.Perm(n)[:k]
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		// Assignment.
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for ci, med := range medoids {
				if d := dist(i, med); d < bestD {
					bestD, best = d, ci
				}
			}
			assign[i] = best
		}
		// Refit each medoid to the member minimising intra-cluster distance.
		changed := false
		for ci := range medoids {
			var members []int
			for i := 0; i < n; i++ {
				if assign[i] == ci {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				continue
			}
			bestM, bestSum := medoids[ci], math.Inf(1)
			for _, cand := range members {
				var sum float64
				for _, other := range members {
					sum += dist(cand, other)
				}
				if sum < bestSum {
					bestSum, bestM = sum, cand
				}
			}
			if bestM != medoids[ci] {
				medoids[ci] = bestM
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Weights: each medoid carries its cluster's share of workload cost.
	clusterCost := make([]float64, k)
	var total float64
	for i := 0; i < n; i++ {
		clusterCost[assign[i]] += w.Queries[i].Cost
		total += w.Queries[i].Cost
	}
	res := &core.Result{}
	seen := map[int]bool{}
	for ci, med := range medoids {
		if seen[med] {
			continue // duplicate medoid (possible with duplicate queries)
		}
		seen[med] = true
		res.Indices = append(res.Indices, med)
		wt := 1.0 / float64(k)
		if total > 0 {
			wt = clusterCost[ci] / total
		}
		res.Weights = append(res.Weights, wt)
	}
	res.Elapsed = time.Since(start)
	return res
}
