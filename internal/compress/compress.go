// Package compress provides the workload-compression baselines the paper
// evaluates against (Section 8): uniform sampling, cost top-k, stratified
// template sampling, GSUM [20], and k-medoid clustering [11] — all behind a
// common Compressor interface that ISUM (internal/core) also satisfies.
package compress

import (
	"isum/internal/core"
	"isum/internal/workload"
)

// Compressor selects k queries (with weights) from a workload.
type Compressor interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Compress selects up to k queries from w.
	Compress(w *workload.Workload, k int) *core.Result
}

// ISUMAdapter wraps core.Compressor to satisfy Compressor (it already does;
// this alias keeps call sites uniform).
type ISUMAdapter = core.Compressor

// uniformWeights returns 1/n weights.
func uniformWeights(n int) []float64 {
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = 1.0 / float64(n)
	}
	return out
}

// clampK bounds k to [0, n].
func clampK(k, n int) int {
	if k < 0 {
		return 0
	}
	if k > n {
		return n
	}
	return k
}
