package compress

import (
	"math/rand"
	"sort"
	"time"

	"isum/internal/core"
	"isum/internal/workload"
)

// Uniform samples k queries uniformly at random without replacement.
type Uniform struct {
	// Seed makes runs reproducible; 0 means a fixed default seed.
	Seed int64
}

// Name implements Compressor.
func (u *Uniform) Name() string { return "Uniform" }

// Compress implements Compressor.
func (u *Uniform) Compress(w *workload.Workload, k int) *core.Result {
	start := time.Now() //lint:allow determinism Result.Elapsed timing only; selection never reads the clock
	n := w.Len()
	k = clampK(k, n)
	rng := rand.New(rand.NewSource(u.seed()))
	perm := rng.Perm(n)
	res := &core.Result{Indices: perm[:k], Weights: uniformWeights(k)}
	sort.Ints(res.Indices)
	res.Elapsed = time.Since(start)
	return res
}

func (u *Uniform) seed() int64 {
	if u.Seed == 0 {
		return 1
	}
	return u.Seed
}

// CostTopK selects the k queries with the highest optimizer-estimated
// costs, weighted by cost share.
type CostTopK struct{}

// Name implements Compressor.
func (c *CostTopK) Name() string { return "Cost" }

// Compress implements Compressor.
func (c *CostTopK) Compress(w *workload.Workload, k int) *core.Result {
	start := time.Now() //lint:allow determinism Result.Elapsed timing only; selection never reads the clock
	n := w.Len()
	k = clampK(k, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return w.Queries[idx[a]].Cost > w.Queries[idx[b]].Cost
	})
	sel := idx[:k]
	var total float64
	for _, i := range sel {
		total += w.Queries[i].Cost
	}
	weights := make([]float64, k)
	for j, i := range sel {
		if total > 0 {
			weights[j] = w.Queries[i].Cost / total
		} else {
			weights[j] = 1.0 / float64(k)
		}
	}
	return &core.Result{Indices: sel, Weights: weights, Elapsed: time.Since(start)}
}

// Stratified clusters queries by template and samples round-robin from each
// cluster, weighting picks by their cluster's share of the workload.
type Stratified struct {
	Seed int64
}

// Name implements Compressor.
func (s *Stratified) Name() string { return "Stratified" }

// Compress implements Compressor.
func (s *Stratified) Compress(w *workload.Workload, k int) *core.Result {
	start := time.Now() //lint:allow determinism Result.Elapsed timing only; selection never reads the clock
	n := w.Len()
	k = clampK(k, n)
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	// Group by template, deterministic cluster order (largest first, then
	// lexicographic).
	byTemplate := map[string][]int{}
	for i, q := range w.Queries {
		byTemplate[q.TemplateID] = append(byTemplate[q.TemplateID], i)
	}
	type cluster struct {
		tid     string
		members []int
	}
	clusters := make([]cluster, 0, len(byTemplate))
	for tid, members := range byTemplate {
		clusters = append(clusters, cluster{tid, members})
	}
	sort.Slice(clusters, func(i, j int) bool {
		if len(clusters[i].members) != len(clusters[j].members) {
			return len(clusters[i].members) > len(clusters[j].members)
		}
		return clusters[i].tid < clusters[j].tid
	})
	// Shuffle within each cluster so the per-cluster sample is uniform.
	for _, c := range clusters {
		rng.Shuffle(len(c.members), func(a, b int) {
			c.members[a], c.members[b] = c.members[b], c.members[a]
		})
	}

	res := &core.Result{}
	var weights []float64
	taken := make([]int, len(clusters))
	for len(res.Indices) < k {
		progressed := false
		for ci := range clusters {
			if len(res.Indices) >= k {
				break
			}
			if taken[ci] < len(clusters[ci].members) {
				pick := clusters[ci].members[taken[ci]]
				taken[ci]++
				res.Indices = append(res.Indices, pick)
				weights = append(weights, float64(len(clusters[ci].members)))
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	var total float64
	for _, wt := range weights {
		total += wt
	}
	for i := range weights {
		weights[i] /= total
	}
	res.Weights = weights
	res.Elapsed = time.Since(start)
	return res
}
