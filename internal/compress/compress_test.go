package compress

import (
	"fmt"
	"math"
	"testing"

	"isum/internal/catalog"
	"isum/internal/core"
	"isum/internal/cost"
	"isum/internal/workload"
)

func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	o := catalog.NewTable("orders", 1000000)
	o.AddColumn(&catalog.Column{Name: "o_orderkey", Type: catalog.TypeInt, DistinctCount: 1000000, Min: 1, Max: 1000000,
		Hist: catalog.SyntheticHistogram(1, 1000000, 1000000, 1000000, 40, 0)})
	o.AddColumn(&catalog.Column{Name: "o_custkey", Type: catalog.TypeInt, DistinctCount: 100000, Min: 1, Max: 100000,
		Hist: catalog.SyntheticHistogram(1, 100000, 1000000, 100000, 40, 0)})
	o.AddColumn(&catalog.Column{Name: "o_totalprice", Type: catalog.TypeDecimal, DistinctCount: 900000, Min: 1, Max: 500000,
		Hist: catalog.SyntheticHistogram(1, 500000, 1000000, 900000, 40, 0)})
	cat.AddTable(o)
	c := catalog.NewTable("customer", 100000)
	c.AddColumn(&catalog.Column{Name: "c_custkey", Type: catalog.TypeInt, DistinctCount: 100000, Min: 1, Max: 100000,
		Hist: catalog.SyntheticHistogram(1, 100000, 100000, 100000, 20, 0)})
	c.AddColumn(&catalog.Column{Name: "c_nationkey", Type: catalog.TypeInt, DistinctCount: 25, Min: 0, Max: 24,
		Hist: catalog.SyntheticHistogram(0, 24, 100000, 25, 25, 0)})
	cat.AddTable(c)
	return cat
}

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	cat := testCatalog()
	var sqls []string
	for i := 0; i < 10; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT o_totalprice FROM orders WHERE o_orderkey = %d", i+1))
	}
	for i := 0; i < 6; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT c_custkey FROM customer WHERE c_nationkey = %d", i))
	}
	for i := 0; i < 4; i++ {
		sqls = append(sqls, fmt.Sprintf(
			"SELECT o_totalprice FROM customer, orders WHERE c_custkey = o_custkey AND c_nationkey = %d", i))
	}
	w, err := workload.New(cat, sqls)
	if err != nil {
		t.Fatal(err)
	}
	cost.NewOptimizer(cat).FillCosts(w)
	return w
}

// checkResult validates the common contract of every compressor.
func checkResult(t *testing.T, name string, w *workload.Workload, res *core.Result, k int) {
	t.Helper()
	if len(res.Indices) != k {
		t.Fatalf("%s: selected %d, want %d", name, len(res.Indices), k)
	}
	if len(res.Weights) != len(res.Indices) {
		t.Fatalf("%s: weights/indices mismatch", name)
	}
	seen := map[int]bool{}
	var sum float64
	for i, idx := range res.Indices {
		if idx < 0 || idx >= w.Len() {
			t.Fatalf("%s: index %d out of range", name, idx)
		}
		if seen[idx] {
			t.Fatalf("%s: duplicate index %d", name, idx)
		}
		seen[idx] = true
		if res.Weights[i] < 0 {
			t.Fatalf("%s: negative weight", name)
		}
		sum += res.Weights[i]
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("%s: weights sum to %f", name, sum)
	}
}

func allCompressors() []Compressor {
	return []Compressor{
		&Uniform{Seed: 7},
		&CostTopK{},
		&Stratified{Seed: 7},
		&GSUM{},
		&KMedoid{Seed: 7},
		core.New(core.DefaultOptions()),
		core.New(core.ISUMSOptions()),
	}
}

func TestAllCompressorsContract(t *testing.T) {
	w := testWorkload(t)
	for _, c := range allCompressors() {
		for _, k := range []int{1, 3, 5} {
			res := c.Compress(w, k)
			checkResult(t, c.Name(), w, res, k)
		}
	}
}

func TestCompressorsDeterministic(t *testing.T) {
	w := testWorkload(t)
	for _, c := range allCompressors() {
		a := c.Compress(w, 4)
		b := c.Compress(w, 4)
		if fmt.Sprint(a.Indices) != fmt.Sprint(b.Indices) {
			t.Fatalf("%s: non-deterministic: %v vs %v", c.Name(), a.Indices, b.Indices)
		}
	}
}

func TestCostTopKOrdering(t *testing.T) {
	w := testWorkload(t)
	res := (&CostTopK{}).Compress(w, 3)
	minSel := math.Inf(1)
	for _, idx := range res.Indices {
		if c := w.Queries[idx].Cost; c < minSel {
			minSel = c
		}
	}
	for i, q := range w.Queries {
		picked := false
		for _, idx := range res.Indices {
			if idx == i {
				picked = true
			}
		}
		if !picked && q.Cost > minSel+1e-9 {
			t.Fatalf("query %d (cost %f) outranks a pick (min %f)", i, q.Cost, minSel)
		}
	}
}

func TestStratifiedCoversTemplates(t *testing.T) {
	w := testWorkload(t) // 3 templates
	res := (&Stratified{Seed: 3}).Compress(w, 3)
	templates := map[string]bool{}
	for _, idx := range res.Indices {
		templates[w.Queries[idx].TemplateID] = true
	}
	if len(templates) != 3 {
		t.Fatalf("stratified picked %d templates, want 3: %v", len(templates), res.Indices)
	}
}

func TestGSUMCoversFeatures(t *testing.T) {
	w := testWorkload(t)
	res := (&GSUM{}).Compress(w, 3)
	// With 3 distinct query shapes, GSUM's coverage term should force picks
	// across shapes.
	templates := map[string]bool{}
	for _, idx := range res.Indices {
		templates[w.Queries[idx].TemplateID] = true
	}
	if len(templates) < 2 {
		t.Fatalf("GSUM collapsed to one template: %v", res.Indices)
	}
}

func TestKMedoidClusters(t *testing.T) {
	w := testWorkload(t)
	res := (&KMedoid{Seed: 11}).Compress(w, 3)
	if len(res.Indices) == 0 || len(res.Indices) > 3 {
		t.Fatalf("k-medoid picks = %v", res.Indices)
	}
	// Weights reflect cluster cost shares and sum to ~1 when no medoids
	// collapsed.
	var sum float64
	for _, wt := range res.Weights {
		sum += wt
	}
	if sum <= 0 || sum > 1+1e-9 {
		t.Fatalf("weights sum = %f", sum)
	}
}

func TestUniformSeedVariation(t *testing.T) {
	w := testWorkload(t)
	a := (&Uniform{Seed: 1}).Compress(w, 5)
	b := (&Uniform{Seed: 2}).Compress(w, 5)
	if fmt.Sprint(a.Indices) == fmt.Sprint(b.Indices) {
		t.Log("different seeds produced identical samples (possible but unlikely)")
	}
}

func TestKGreaterThanN(t *testing.T) {
	w := testWorkload(t)
	for _, c := range allCompressors() {
		res := c.Compress(w, w.Len()+10)
		if len(res.Indices) > w.Len() {
			t.Fatalf("%s: selected more than n", c.Name())
		}
	}
}

func TestEmptyWorkload(t *testing.T) {
	w := &workload.Workload{Catalog: testCatalog()}
	for _, c := range allCompressors() {
		res := c.Compress(w, 3)
		if len(res.Indices) != 0 {
			t.Fatalf("%s: selected from empty workload", c.Name())
		}
	}
}

func TestGSUMAlphaExtremes(t *testing.T) {
	w := testWorkload(t)
	coverageOnly := (&GSUM{Alpha: 0.999}).Compress(w, 3)
	repOnly := (&GSUM{Alpha: 0.001}).Compress(w, 3)
	checkResult(t, "GSUM-coverage", w, coverageOnly, 3)
	checkResult(t, "GSUM-rep", w, repOnly, 3)
	// Pure coverage must span templates.
	templates := map[string]bool{}
	for _, idx := range coverageOnly.Indices {
		templates[w.Queries[idx].TemplateID] = true
	}
	if len(templates) < 2 {
		t.Fatalf("coverage-heavy GSUM collapsed: %v", coverageOnly.Indices)
	}
}

func TestKMedoidIterationCap(t *testing.T) {
	w := testWorkload(t)
	capped := (&KMedoid{Seed: 5, MaxIterations: 1}).Compress(w, 3)
	free := (&KMedoid{Seed: 5, MaxIterations: 50}).Compress(w, 3)
	if len(capped.Indices) == 0 || len(free.Indices) == 0 {
		t.Fatal("k-medoid produced nothing")
	}
	// Both valid results; iteration cap is about time, not validity.
	for _, res := range []*core.Result{capped, free} {
		for _, idx := range res.Indices {
			if idx < 0 || idx >= w.Len() {
				t.Fatal("index out of range")
			}
		}
	}
}
