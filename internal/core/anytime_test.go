package core

import (
	"context"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// countdownCtx is a context that reports cancellation after a fixed number
// of Err checks — a deterministic way to stop the pipeline mid-run without
// depending on wall-clock timing. Once the budget is spent it stays
// cancelled forever (cancellation is monotone, like a real context).
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
	done      chan struct{}
	once      sync.Once
}

func newCountdownCtx(budget int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background(), done: make(chan struct{})}
	c.remaining.Store(budget)
	return c
}

func (c *countdownCtx) expire() { c.once.Do(func() { close(c.done) }) }

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		c.expire()
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} {
	if c.remaining.Load() < 0 {
		c.expire()
	}
	return c.done
}

func TestCompressContextAlreadyCancelled(t *testing.T) {
	w := testWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := New(DefaultOptions()).CompressContext(ctx, w, 3)
	if err != nil {
		t.Fatalf("cancellation must not be an error: %v", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("want empty Partial result, got %+v", res)
	}
	if len(res.Indices) != 0 {
		t.Fatalf("already-cancelled ctx selected %d queries", len(res.Indices))
	}
}

// TestCompressContextAnytime sweeps cancellation budgets over the whole
// run and pins the anytime contract at every cut point: never an error,
// never a nil result, a Partial flag on truncated runs, and weights that
// stay parallel and normalised for whatever prefix was selected.
func TestCompressContextAnytime(t *testing.T) {
	w := testWorkload(t)
	opts := DefaultOptions()
	opts.Parallelism = 1
	const k = 5

	full := New(opts).Compress(w, k)
	if full.Partial {
		t.Fatal("background compress must not be partial")
	}

	sawMidRun := false
	for budget := int64(0); budget <= 4096; budget += 16 {
		res, err := New(opts).CompressContext(newCountdownCtx(budget), w, k)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if res == nil {
			t.Fatalf("budget %d: nil result", budget)
		}
		if len(res.Weights) != len(res.Indices) {
			t.Fatalf("budget %d: %d weights for %d indices", budget, len(res.Weights), len(res.Indices))
		}
		if !res.Partial && len(res.Indices) != len(full.Indices) {
			t.Fatalf("budget %d: non-partial result with %d of %d selections", budget, len(res.Indices), len(full.Indices))
		}
		if res.Partial && len(res.Indices) > 0 {
			sawMidRun = true
		}
		// A partial prefix must agree with the full run's selection order,
		// and its weights must renormalise to 1.
		var sum float64
		for i, idx := range res.Indices {
			if i < len(full.Indices) && idx != full.Indices[i] {
				t.Fatalf("budget %d: selection %d is query %d, full run picked %d", budget, i, idx, full.Indices[i])
			}
			sum += res.Weights[i]
		}
		if len(res.Indices) > 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("budget %d: weights sum to %v", budget, sum)
		}
	}
	if !sawMidRun {
		t.Fatal("no budget produced a non-empty partial selection; the sweep is not exercising mid-run cancellation")
	}
}

func TestCompressContextEquivalence(t *testing.T) {
	w := testWorkload(t)
	for _, k := range []int{1, 3, 16, 100} {
		compat := New(DefaultOptions()).Compress(w, k)
		ctxRes, err := New(DefaultOptions()).CompressContext(context.Background(), w, k)
		if err != nil {
			t.Fatal(err)
		}
		if ctxRes.Partial {
			t.Fatalf("k=%d: background run marked partial", k)
		}
		if !reflect.DeepEqual(compat.Indices, ctxRes.Indices) || !reflect.DeepEqual(compat.Weights, ctxRes.Weights) {
			t.Fatalf("k=%d: Compress and CompressContext diverge:\n%v %v\n%v %v",
				k, compat.Indices, compat.Weights, ctxRes.Indices, ctxRes.Weights)
		}
	}
}

func TestCompressedWorkloadContextPartial(t *testing.T) {
	w := testWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cw, res, err := New(DefaultOptions()).CompressedWorkloadContext(ctx, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("want partial result")
	}
	if cw == nil || cw.Len() != len(res.Indices) {
		t.Fatalf("materialised workload does not match the partial selection: %v vs %d indices", cw, len(res.Indices))
	}
}
