package core

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"isum/internal/parallel"
	"isum/internal/shard"
	"isum/internal/telemetry"
)

// shardOverSelect is the per-shard over-selection factor: each shard
// nominates up to shardOverSelect*k candidates for the cross-shard
// refinement pool, bounding every shard's greedy at shardOverSelect*k
// rounds. Within-shard greedy ranks against shard-local summaries, so a
// query the global greedy wants can sit below rank k in its shard; the
// slack keeps the refinement pool a superset of the global selection in
// practice (pinned by the sharded-vs-unsharded oracle test), though no
// finite factor can guarantee it for adversarial workloads — coverage
// gaps cost selection fidelity (bounded by the 1%-benefit test), never
// determinism.
const shardOverSelect = 3

// selectSharded is the sharded greedy driver (DESIGN.md §12). The states
// are partitioned by a stable hash of TemplateID (shard.Partition, so
// every instance of a template lands in one shard), each shard runs an
// independent greedy selection of up to k winners, and a cross-shard
// refinement pass re-runs greedy selection with candidacy restricted to
// the union of shard winners — against summary features merged over the
// whole workload in fixed shard order.
//
// Determinism: the partition is a pure function of the template IDs;
// shards mutate disjoint state sets, so the fan-out is race-free and its
// scheduling cannot change any shard's output; the candidate pool is
// sorted by workload position and the merged summary is folded shard 0,
// 1, 2, ... regardless of completion order. The refinement loop then
// reuses greedyLoop's serial index-ordered argmax. The result is
// byte-reproducible at any Parallelism and any GOMAXPROCS.
//
// Anytime: cancellation during the fan-out or refinement degrades to a
// merged best-so-far — refinement selections first, then per-shard
// winners round-robin in fixed shard order — with res.Partial set,
// mirroring the unsharded contract.
func (c *Compressor) selectSharded(ctx context.Context, states []*QueryState, k int, res *Result) error {
	reg := c.opts.Telemetry
	parts := shard.Partition(len(states), c.opts.Shards, func(i int) string {
		return states[i].Query.TemplateID
	})
	workers := parallel.Workers(c.opts.Parallelism)

	// Fan the shards out across the worker pool. Each shard compresses its
	// own state subset with a single-partition sub-compressor: inner
	// parallelism 1 (the shards are the unit of parallelism — nesting
	// would oversubscribe the pool) and no telemetry registry (spans must
	// only start from the orchestration goroutine; per-shard stats go
	// through shard.RecordRun's atomic counters instead). Shard results
	// carry global state positions: selectGreedy records QueryState.Index,
	// which partitioning does not rewrite.
	fsp := reg.Start("core/shard-fanout")
	fsp.SetAttr("shards", len(parts))
	fsp.SetAttr("workers", workers)
	sub := *c
	sub.opts.Shards = 0
	sub.opts.Parallelism = 1
	sub.opts.Telemetry = nil
	// Like spans, per-round progress stays off inside shard workers — the
	// fan-out reports shard completions instead (one event per finished
	// shard, emitted from the workers; ProgressFunc is concurrency-safe by
	// contract).
	sub.opts.Progress = nil
	progress := c.opts.Progress
	var shardsDone atomic.Int64
	shardRes := make([]*Result, len(parts))
	shardErr := make([]error, len(parts))
	ferr := parallel.ForEach(ctx, workers, len(parts), func(s int) {
		part := parts[s]
		r := &Result{}
		shardRes[s] = r
		if len(part) == 0 {
			return
		}
		shardStates := make([]*QueryState, len(part))
		for j, i := range part {
			shardStates[j] = states[i]
		}
		kS := shardOverSelect * k
		if kS > len(part) {
			kS = len(part)
		}
		begin := time.Now() //lint:allow determinism shard/compress_nanos histogram only; selection never reads the clock
		shardErr[s] = sub.selectGreedy(ctx, shardStates, kS, r)
		shard.RecordRun(float64(time.Since(begin).Nanoseconds()))
		if progress != nil {
			progress(telemetry.ProgressEvent{
				Phase: "core/shard-fanout", Done: int(shardsDone.Add(1)),
				Total: len(parts), Shards: len(parts),
			})
		}
	})
	fsp.End()
	if ferr != nil && !isCancel(ferr) {
		return ferr
	}
	cancelled := ferr != nil
	for _, e := range shardErr {
		if e != nil && !isCancel(e) {
			return e // contained worker panic, reported in fixed shard order
		}
	}

	// Candidate pool: the union of shard winners (disjoint by
	// construction), in canonical workload-position order.
	var pool []int
	for _, r := range shardRes {
		if r == nil {
			cancelled = true // shard never ran before cancellation
			continue
		}
		if r.Partial {
			cancelled = true
		}
		pool = append(pool, r.Indices...)
	}
	sort.Ints(pool)

	msp := reg.Start("core/shard-merge")
	defer msp.End()
	msp.SetAttr("candidates", len(pool))

	// The shard loops mutated their states in place; restore originals so
	// refinement starts from the same universe the unsharded path sees.
	// If cancellation lands mid-restore the states are unusable for
	// refinement (weighing only reads Orig fields, so it is unaffected)
	// and we fall through to the round-robin fill.
	rerr := parallel.ForEach(ctx, workers, len(states), func(i int) {
		st := states[i]
		st.Vec.Release()
		st.Vec = st.OrigVec.Clone()
		st.Utility = st.OrigUtility
		st.Selected = false
	})
	if rerr != nil {
		if !isCancel(rerr) {
			return rerr
		}
		cancelled = true
	}

	if rerr == nil && len(pool) > 0 {
		// Merged summary: per-shard summaries over original contributions,
		// combined with the fused vector kernels in fixed shard order —
		// byte-identical no matter how the fan-out was scheduled.
		var ss *SummaryState
		if c.opts.Algorithm != AllPairs {
			merged := &SummaryState{}
			for s, part := range parts {
				shardSum := &SummaryState{}
				for _, i := range part {
					st := states[i]
					shardSum.V.AddScaled(st.OrigVec, st.OrigUtility)
					shardSum.TotalUtility += st.OrigUtility
				}
				merged.V.Add(shardSum.V)
				merged.TotalUtility += shardSum.TotalUtility
				shardSum.V.Release()
				progress.Emit(telemetry.ProgressEvent{
					Phase: "core/shard-merge", Done: s + 1,
					Total: len(parts), Shards: len(parts),
				})
			}
			shard.RecordMergeOps(len(parts))
			ss = merged
		}

		// Bounded cross-shard refinement: at most k greedy rounds, argmax
		// restricted to the pool, update sweeps spanning all states.
		eligible := make([]bool, len(states))
		for _, i := range pool {
			eligible[i] = true
		}
		refine := &Result{}
		if err := c.greedyLoop(ctx, states, k, refine, ss, eligible); err != nil {
			return err
		}
		shard.RecordRefineRounds(refine.Rounds)
		msp.SetAttr("refine_rounds", refine.Rounds)
		res.Indices = refine.Indices
		res.SelectionBenefits = refine.SelectionBenefits
		res.Rounds = refine.Rounds
		if refine.Partial {
			cancelled = true
		}
	}

	// Anytime fill: top up a short (cancelled) selection with per-shard
	// winners, round-robin over rounds then shards so the order is fixed.
	// Their benefits are the shard-local conditional benefits.
	if cancelled && len(res.Indices) < k {
		chosen := make(map[int]bool, len(res.Indices))
		for _, i := range res.Indices {
			chosen[i] = true
		}
	fill:
		for r := 0; ; r++ {
			any := false
			for _, sr := range shardRes {
				if sr == nil || r >= len(sr.Indices) {
					continue
				}
				any = true
				idx := sr.Indices[r]
				if chosen[idx] {
					continue
				}
				chosen[idx] = true
				res.Indices = append(res.Indices, idx)
				res.SelectionBenefits = append(res.SelectionBenefits, sr.SelectionBenefits[r])
				if len(res.Indices) >= k {
					break fill
				}
			}
			if !any {
				break
			}
		}
	}
	res.Partial = cancelled
	return nil
}
