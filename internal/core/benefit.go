package core

import "isum/internal/features"

// Influence returns F_qi(qj) = S(qi, qj) · U(qj), the reduction in qj's
// utility when qi is selected for tuning (Definition 3).
//
//lint:hotpath
func Influence(qi, qj *QueryState) float64 {
	if qi == qj {
		return 0
	}
	return qi.Similarity(qj) * qj.Utility
}

// BenefitAllPairs returns the conditional benefit of qi against the current
// states (Definition 10, computed as in Algorithm 1): its discounted
// utility plus its influence over every unselected query.
//
//lint:hotpath
func BenefitAllPairs(qi *QueryState, states []*QueryState) float64 {
	b := qi.Utility
	for _, qj := range states {
		if qj == qi || qj.Selected {
			continue
		}
		b += Influence(qi, qj)
	}
	return b
}

// SummaryState carries the workload-level summary features and total
// utility over the unselected queries, for the linear-time benefit.
type SummaryState struct {
	V            features.SparseVec
	TotalUtility float64
}

// BuildSummary computes the summary features V (Definition 11) and total
// utility over the unselected queries.
func BuildSummary(states []*QueryState) *SummaryState {
	ss := &SummaryState{}
	for _, s := range states {
		if s.Selected {
			continue
		}
		ss.V.AddScaled(s.Vec, s.Utility)
		ss.TotalUtility += s.Utility
	}
	return ss
}

// RemoveSelected subtracts a just-selected query's contribution
// (Utility·Vec at selection time) from the summary — the first half of the
// incremental maintenance that replaces the per-round BuildSummary rebuild.
//
//lint:hotpath
func (ss *SummaryState) RemoveSelected(q *QueryState) {
	ss.V.AddScaled(q.Vec, -q.Utility)
	ss.TotalUtility -= q.Utility
}

// ApplyDelta folds one unselected query's contribution delta (produced by
// the post-selection update sweep) into the summary. Deltas must be applied
// in query-index order for bit-identical summaries across runs.
//
//lint:hotpath
func (ss *SummaryState) ApplyDelta(util float64, vec features.SparseVec) {
	ss.V.Add(vec)
	ss.TotalUtility += util
}

// BenefitSummary returns qi's benefit against the summary (Algorithm 3):
// its utility plus S(qi, V′) where V′ excludes qi's own contribution,
// computed by the fused merge-join kernel (no temporary summary copy).
//
//lint:hotpath
func BenefitSummary(qi *QueryState, ss *SummaryState) float64 {
	return qi.Utility + features.SummarySimilarity(qi.Vec, ss.V, qi.Utility, ss.TotalUtility)
}

// InfluenceOnWorkload returns F_qs(W) = Σ_j S(qs,qj)·U(qj), the all-pairs
// influence of qs over the unselected queries — used to validate the
// summary approximation (Theorem 3 / Fig. 8a).
//
//lint:hotpath
func InfluenceOnWorkload(qs *QueryState, states []*QueryState) float64 {
	var f float64
	for _, qj := range states {
		if qj == qs || qj.Selected {
			continue
		}
		f += Influence(qs, qj)
	}
	return f
}

// InfluenceOnSummary returns F_qs(V) = S(qs, V′), the summary-feature
// estimate of the same quantity.
//
//lint:hotpath
func InfluenceOnSummary(qs *QueryState, ss *SummaryState) float64 {
	return features.SummarySimilarity(qs.Vec, ss.V, qs.Utility, ss.TotalUtility)
}
