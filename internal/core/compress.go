package core

import (
	"context"
	"errors"
	"math"
	"time"

	"isum/internal/parallel"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

// Result is the output of workload compression: the selected query indices
// (in selection order), their weights, and diagnostics.
type Result struct {
	// Indices are positions into the input workload, in selection order.
	Indices []int
	// Weights are the queries' weights (parallel to Indices), normalised to
	// sum to 1 when weighing is enabled.
	Weights []float64
	// SelectionBenefits are the conditional benefits at selection time.
	SelectionBenefits []float64
	// Elapsed is the wall-clock compression time.
	Elapsed time.Duration

	// Partial marks an anytime result: the context was cancelled (or its
	// deadline expired) before k queries were selected, and Indices hold
	// the best-so-far prefix — every entry is a completed greedy selection,
	// weighed as usual. False means the run finished.
	Partial bool
	// Rounds is the number of greedy rounds completed: selections plus
	// feature-reset rounds (Algorithm 2, line 12). A Partial result stopped
	// after exactly Rounds rounds.
	Rounds int
}

// Compressor runs ISUM workload compression.
type Compressor struct {
	opts Options
}

// New returns a compressor with the given options.
func New(opts Options) *Compressor { return &Compressor{opts: opts} }

// Options returns the compressor's options.
func (c *Compressor) Options() Options { return c.opts }

// Name identifies the configured variant.
func (c *Compressor) Name() string {
	switch {
	case c.opts.Algorithm == AllPairs:
		return "ISUM-AllPairs"
	case !c.opts.UseTableWeight:
		return "ISUM-NoTable"
	case c.opts.Utility == UtilityCostSelectivity:
		return "ISUM-S"
	default:
		return "ISUM"
	}
}

// Compress selects k queries from w (Problem 1) and weighs them. For k ≥
// n every query is selected with weight 1/n.
func (c *Compressor) Compress(w *workload.Workload, k int) *Result {
	res, err := c.CompressContext(context.Background(), w, k)
	if err != nil {
		panic(err)
	}
	return res
}

// CompressContext is Compress with the anytime contract (DESIGN.md §9):
// when ctx is cancelled or its deadline expires, the greedy loop stops at
// its next round boundary and the queries selected so far are weighed and
// returned as a valid Result with Partial set — never a panic, never nil.
// An already-cancelled ctx yields an empty Partial result. The error is
// reserved for real failures (a contained worker panic); cancellation is
// not an error.
func (c *Compressor) CompressContext(ctx context.Context, w *workload.Workload, k int) (*Result, error) {
	start := time.Now() //lint:allow determinism Result.Elapsed timing only; greedy selection never reads the clock
	reg := c.opts.Telemetry
	root := reg.Start("core/compress")
	defer root.End()
	root.SetAttr("variant", c.Name())

	res := &Result{}
	n := w.Len()
	if n == 0 || k <= 0 {
		res.Elapsed = time.Since(start)
		return res, nil
	}
	if k > n {
		k = n
	}
	if reg != nil {
		root.SetAttr("n", n)
		root.SetAttr("k", k)
	}

	states, repIdx, err := c.buildUniverse(ctx, w)
	if err != nil {
		if isCancel(err) {
			res.Partial = true
			res.Elapsed = time.Since(start)
			return res, nil
		}
		return nil, err
	}
	// Template hash-consing may have collapsed the universe below k.
	if k > len(states) {
		k = len(states)
	}
	if c.opts.Shards > 1 {
		sh := reg.Start("core/select-sharded")
		err = c.selectSharded(ctx, states, k, res)
		sh.SetAttr("selected", len(res.Indices))
		sh.End()
	} else {
		sg := reg.Start("core/select-greedy")
		err = c.selectGreedy(ctx, states, k, res)
		sg.SetAttr("selected", len(res.Indices))
		sg.End()
	}
	if err != nil {
		return nil, err
	}
	sw := reg.Start("core/weigh")
	res.Weights = c.weigh(w, states, res)
	sw.End()
	c.opts.Progress.Emit(telemetry.ProgressEvent{
		Phase:  "core/weigh",
		Done:   len(res.Indices),
		Total:  len(res.Indices),
		Shards: c.opts.Shards,
	})
	if repIdx != nil {
		// Consed indices are template-state positions; translate back to
		// workload positions (each template's representative instance).
		for i, g := range res.Indices {
			res.Indices[i] = repIdx[g]
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// buildUniverse builds the selection universe: one state per query, or —
// with ConsTemplates — one state per distinct template plus the mapping
// from template-state position back to the representative query's
// workload position (nil when consing is off, i.e. states are already in
// workload positions).
func (c *Compressor) buildUniverse(ctx context.Context, w *workload.Workload) ([]*QueryState, []int, error) {
	if c.opts.ConsTemplates {
		return BuildConsedStatesContext(ctx, w, c.opts)
	}
	states, err := BuildStatesContext(ctx, w, c.opts)
	return states, nil, err
}

// CompressedWorkload runs Compress and materialises the weighted compressed
// workload ready for the tuner.
func (c *Compressor) CompressedWorkload(w *workload.Workload, k int) (*workload.Workload, *Result) {
	res := c.Compress(w, k)
	return w.WeightedSubset(res.Indices, res.Weights), res
}

// CompressedWorkloadContext is CompressedWorkload under the anytime
// contract: on cancellation the materialised workload holds the Partial
// result's selections (possibly empty), and the error mirrors
// CompressContext's.
func (c *Compressor) CompressedWorkloadContext(ctx context.Context, w *workload.Workload, k int) (*workload.Workload, *Result, error) {
	res, err := c.CompressContext(ctx, w, k)
	if err != nil {
		return nil, nil, err
	}
	return w.WeightedSubset(res.Indices, res.Weights), res, nil
}

// isCancel reports whether err stems from context cancellation or deadline
// expiry — the anytime outcomes, as opposed to real failures.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// selectGreedy runs the configured greedy algorithm, appending selections
// to res. It returns a non-nil error only for real failures (contained
// worker panics); cancellation sets res.Partial and returns nil, leaving
// res.Indices the completed-selection prefix.
//
// The benefit scan and the post-selection update sweep fan out across
// c.opts.Parallelism workers: benefits are computed into an index-ordered
// slice and the argmax (with its epsilon tie-break) runs serially over it,
// so the selection is identical to the serial path at any worker count.
// The summary features are maintained incrementally (RemoveSelected +
// per-query ApplyDelta, applied in index order) instead of rebuilt O(n)
// every round; Options.RebuildSummary restores the literal rebuild.
//
// Cancellation is observed at round boundaries and inside the parallel
// sweeps. A benefit scan cut short discards the round (no selection from
// partial benefits); an update sweep cut short keeps the round's selection
// — it was already decided — and abandons the state updates, which only
// feed rounds that will never run.
func (c *Compressor) selectGreedy(ctx context.Context, states []*QueryState, k int, res *Result) error {
	var ss *SummaryState
	if c.opts.Algorithm != AllPairs {
		ss = BuildSummary(states)
	}
	return c.greedyLoop(ctx, states, k, res, ss, nil)
}

// greedyLoop is the greedy round engine behind both the single-partition
// path (selectGreedy) and the sharded refinement pass (selectSharded). ss
// is the starting summary over the unselected states (nil only for
// AllPairs); eligible, when non-nil, restricts *selection* to the marked
// positions while the post-selection update sweep still maintains every
// state — this is what lets the cross-shard refinement re-rank the
// per-shard winners against summaries spanning the whole workload. When
// the eligible candidates are exhausted but ineligible live states
// remain, the loop returns with fewer than k selections rather than
// resetting features that are not actually spent.
func (c *Compressor) greedyLoop(ctx context.Context, states []*QueryState, k int, res *Result, ss *SummaryState, eligible []bool) error {
	workers := parallel.Workers(c.opts.Parallelism)
	summary := c.opts.Algorithm != AllPairs
	incremental := summary && !c.opts.RebuildSummary

	// Telemetry handles (all nil-safe; resolved once, not per round). The
	// disabled path costs a pointer check per round and never calls
	// time.Now.
	reg := c.opts.Telemetry
	var argmaxNanos, updateNanos *telemetry.Histogram
	var rounds, resets *telemetry.Counter
	if reg != nil {
		argmaxNanos = reg.Histogram("core/greedy/argmax_nanos", telemetry.DurationBuckets)
		updateNanos = reg.Histogram("core/greedy/update_nanos", telemetry.DurationBuckets)
		rounds = reg.Counter("core/greedy/rounds")
		resets = reg.Counter("core/greedy/feature_resets")
	}

	// live counts unselected states whose vectors still carry weight, so
	// the all-exhausted check is a counter read instead of an O(n) scan
	// every round. Selections and emptying updates decrement it;
	// feature resets recount it.
	live := countLive(states)
	progress := c.opts.Progress
	var benefitSum float64
	ineligible := math.Inf(-1)
	for len(res.Indices) < k {
		if ctx.Err() != nil {
			res.Partial = true
			return nil
		}
		rsp := reg.Start("core/greedy/round")
		rounds.Inc()
		if summary && c.opts.RebuildSummary {
			ss = BuildSummary(states)
		}
		var tArgmax time.Time
		if reg != nil {
			tArgmax = time.Now() //lint:allow determinism argmax_nanos histogram only; benefits never read the clock
		}
		benefits, err := parallel.Map(ctx, workers, len(states), func(i int) float64 {
			s := states[i]
			if eligible != nil && !eligible[i] {
				return ineligible
			}
			if s.Selected || s.Vec.AllZero() {
				return ineligible
			}
			if c.opts.Algorithm == AllPairs {
				return BenefitAllPairs(s, states)
			}
			return BenefitSummary(s, ss)
		})
		if err != nil {
			rsp.SetAttr("outcome", "cancelled")
			rsp.End()
			if isCancel(err) {
				res.Partial = true
				return nil
			}
			return err
		}

		// benefitEps breaks near-ties deterministically. SparseVec kernels
		// accumulate in ascending-ID order, so benefits are bit-identical
		// across runs and worker counts; the tolerance is kept so the
		// selection is also stable across representation changes (the map
		// oracle, future kernel reorderings) that only move the last ulps.
		const benefitEps = 1e-9
		var best *QueryState
		bestBenefit := -1.0
		for i, b := range benefits {
			if b > bestBenefit+benefitEps {
				bestBenefit, best = b, states[i]
			}
		}
		if reg != nil {
			argmaxNanos.Observe(float64(time.Since(tArgmax).Nanoseconds()))
		}

		if best == nil {
			// Every remaining query has zero-weight features: reset to the
			// original features (Algorithm 2, line 12) and retry; if reset
			// does nothing we are out of selectable queries.
			var didReset bool
			didReset, live = resetIfAllZero(states, live)
			if !didReset || allSelected(states) {
				rsp.SetAttr("outcome", "exhausted")
				rsp.End()
				return nil
			}
			resets.Inc()
			if incremental {
				ss = BuildSummary(states)
			}
			res.Rounds++
			rsp.SetAttr("outcome", "feature-reset")
			rsp.End()
			continue
		}

		best.Selected = true
		live-- // best was eligible, so it was counted live
		res.Indices = append(res.Indices, best.Index)
		res.SelectionBenefits = append(res.SelectionBenefits, bestBenefit)
		res.Rounds++
		if progress != nil {
			benefitSum += bestBenefit
			progress(telemetry.ProgressEvent{
				Phase:   "core/greedy",
				Round:   res.Rounds,
				Done:    len(res.Indices),
				Total:   k,
				Benefit: benefitSum,
				Shards:  c.opts.Shards,
			})
		}
		if reg != nil {
			rsp.SetAttr("selected", best.Index)
			rsp.SetAttr("benefit", bestBenefit)
		}
		var tUpdate time.Time
		if reg != nil {
			tUpdate = time.Now() //lint:allow determinism update_nanos histogram only; summary updates never read the clock
		}
		if incremental {
			ss.RemoveSelected(best)
		}
		updates, err := parallel.Map(ctx, workers, len(states), func(i int) updateResult {
			s := states[i]
			if s.Selected {
				return updateResult{}
			}
			return applyUpdateWithDelta(best, s, c.opts.Update, incremental)
		})
		if err != nil {
			rsp.SetAttr("outcome", "cancelled")
			rsp.End()
			if isCancel(err) {
				res.Partial = true
				return nil
			}
			return err
		}
		for i := range updates {
			u := &updates[i]
			if u.hasDelta {
				if incremental {
					ss.ApplyDelta(u.util, u.vec)
				}
				u.vec.Release()
			}
			if u.emptied {
				live--
			}
		}
		if reg != nil {
			updateNanos.Observe(float64(time.Since(tUpdate).Nanoseconds()))
		}
		rsp.End()
	}
	return nil
}

func allSelected(states []*QueryState) bool {
	for _, s := range states {
		if !s.Selected {
			return false
		}
	}
	return true
}
