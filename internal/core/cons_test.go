package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"isum/internal/benchmarks"
	"isum/internal/cost"
)

// TestConsedIdentityOnDistinctTemplates pins that on a workload with no
// repeated templates, template hash-consing is a no-op: the consed
// pipeline produces byte-identical output — indices, weights, benefits,
// rounds — to the plain per-query pipeline (one state per query either
// way, same interner batch, same utilities).
func TestConsedIdentityOnDistinctTemplates(t *testing.T) {
	// 60 Real-M queries cycle 456 templates round-robin: all distinct.
	w := generatorWorkload(t, "realm", 60)
	if w.NumTemplates() != w.Len() {
		t.Fatalf("want distinct templates, got %d templates over %d queries", w.NumTemplates(), w.Len())
	}
	const k = 12
	plain := New(DefaultOptions()).Compress(w, k)
	for _, par := range []int{1, 4} {
		opts := DefaultOptions()
		opts.ConsTemplates = true
		opts.Parallelism = par
		got := New(opts).Compress(w, k)
		if !reflect.DeepEqual(got.Indices, plain.Indices) {
			t.Fatalf("parallelism=%d: selection diverged:\n got %v\nwant %v", par, got.Indices, plain.Indices)
		}
		for i := range got.Indices {
			if math.Float64bits(got.Weights[i]) != math.Float64bits(plain.Weights[i]) {
				t.Fatalf("parallelism=%d: weight %d: got %v, plain %v", par, i, got.Weights[i], plain.Weights[i])
			}
			if math.Float64bits(got.SelectionBenefits[i]) != math.Float64bits(plain.SelectionBenefits[i]) {
				t.Fatalf("parallelism=%d: benefit %d: got %v, plain %v", par, i, got.SelectionBenefits[i], plain.SelectionBenefits[i])
			}
		}
		if got.Rounds != plain.Rounds {
			t.Fatalf("parallelism=%d: rounds: got %d, plain %d", par, got.Rounds, plain.Rounds)
		}
	}
}

// TestConsedStatesPoolUtilities pins the consed state builder directly:
// one state per template, representatives are first instances, and each
// state's utility is the sum of its instances' normalised utilities
// (Algorithm 4's pooling applied before selection), summing to 1 overall.
func TestConsedStatesPoolUtilities(t *testing.T) {
	gen := benchmarks.TPCH(10)
	const instances = 3
	w, err := gen.WorkloadPerTemplate(instances, 1)
	if err != nil {
		t.Fatal(err)
	}
	cost.NewOptimizer(gen.Cat).FillCosts(w)

	nTmpl := w.NumTemplates()
	if nTmpl >= w.Len() {
		t.Fatalf("duplicated workload has %d templates over %d queries", nTmpl, w.Len())
	}
	states, repIdx, err := BuildConsedStatesContext(context.Background(), w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != nTmpl || len(repIdx) != nTmpl {
		t.Fatalf("got %d states, %d reps; want %d", len(states), len(repIdx), nTmpl)
	}

	// Per-query utilities from the plain builder, for comparison.
	plain, err := BuildStatesContext(context.Background(), w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	perTemplate := map[string]float64{}
	firstInstance := map[string]int{}
	for i, q := range w.Queries {
		perTemplate[q.TemplateID] += plain[i].Utility
		if _, ok := firstInstance[q.TemplateID]; !ok {
			firstInstance[q.TemplateID] = i
		}
	}

	var total float64
	for g, st := range states {
		if st.Index != g {
			t.Fatalf("state %d has Index %d", g, st.Index)
		}
		rep := repIdx[g]
		if want := firstInstance[st.Query.TemplateID]; rep != want {
			t.Fatalf("template %s: representative %d, want first instance %d", st.Query.TemplateID, rep, want)
		}
		if w.Queries[rep] != st.Query {
			t.Fatalf("state %d: Query is not the representative instance", g)
		}
		if want := perTemplate[st.Query.TemplateID]; math.Abs(st.Utility-want) > 1e-12 {
			t.Fatalf("template %s: pooled utility %v, want instance sum %v", st.Query.TemplateID, st.Utility, want)
		}
		if st.Utility != st.OrigUtility {
			t.Fatalf("state %d: Utility %v != OrigUtility %v", g, st.Utility, st.OrigUtility)
		}
		total += st.Utility
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("pooled utilities sum to %v, want 1", total)
	}
}

// TestConsedCompressOnDuplicates pins the end-to-end consed pipeline on a
// duplicate-heavy workload: indices are representative workload positions
// (one per distinct selected template), weights normalise, and — since
// duplicates add no new templates — the selected template set matches the
// plain pipeline run on one instance of each template.
func TestConsedCompressOnDuplicates(t *testing.T) {
	gen := benchmarks.TPCH(10)
	const instances = 8
	w, err := gen.WorkloadPerTemplate(instances, 1)
	if err != nil {
		t.Fatal(err)
	}
	cost.NewOptimizer(gen.Cat).FillCosts(w)

	const k = 8
	opts := DefaultOptions()
	opts.ConsTemplates = true
	res := New(opts).Compress(w, k)
	if res.Partial {
		t.Fatal("background consed compress must not be partial")
	}
	if len(res.Indices) != k {
		t.Fatalf("selected %d, want %d", len(res.Indices), k)
	}
	seenTmpl := map[string]bool{}
	for _, idx := range res.Indices {
		q := w.Queries[idx]
		if idx%instances != 0 {
			t.Fatalf("index %d is not a template representative (first instance)", idx)
		}
		if seenTmpl[q.TemplateID] {
			t.Fatalf("template %s selected twice", q.TemplateID)
		}
		seenTmpl[q.TemplateID] = true
	}
	var sum float64
	for _, wt := range res.Weights {
		sum += wt
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}

	// Uniform duplication scales every template's pooled utility by the
	// same factor, so consed selection on the duplicated workload must
	// match plain selection on the deduplicated one template-for-template.
	dedup, err := gen.WorkloadPerTemplate(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cost.NewOptimizer(gen.Cat).FillCosts(dedup)
	base := New(DefaultOptions()).Compress(dedup, k)
	var baseTmpl, consTmpl []string
	for _, idx := range base.Indices {
		baseTmpl = append(baseTmpl, dedup.Queries[idx].TemplateID)
	}
	for _, idx := range res.Indices {
		consTmpl = append(consTmpl, w.Queries[idx].TemplateID)
	}
	if !reflect.DeepEqual(consTmpl, baseTmpl) {
		t.Fatalf("consed selection on duplicated workload diverged from plain selection on deduplicated one:\n got %v\nwant %v", consTmpl, baseTmpl)
	}
}

// TestConsedSharded pins that consing composes with sharding: the
// combined path still selects representative positions deterministically
// and matches the consed-unsharded selection.
func TestConsedSharded(t *testing.T) {
	w := generatorWorkload(t, "tpcds", 60)
	const k = 12
	copts := DefaultOptions()
	copts.ConsTemplates = true
	base := New(copts).Compress(w, k)
	for _, shards := range []int{2, 4} {
		opts := copts
		opts.Shards = shards
		opts.Parallelism = 4
		got := New(opts).Compress(w, k)
		if !reflect.DeepEqual(got.Indices, base.Indices) {
			t.Fatalf("shards=%d: selection diverged:\n got %v\nwant %v", shards, got.Indices, base.Indices)
		}
		for i := range got.Weights {
			if math.Float64bits(got.Weights[i]) != math.Float64bits(base.Weights[i]) {
				t.Fatalf("shards=%d: weight %d: got %v, want %v", shards, i, got.Weights[i], base.Weights[i])
			}
		}
	}
}
