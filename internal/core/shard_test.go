package core

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"isum/internal/benchmarks"
	"isum/internal/cost"
	"isum/internal/faults"
)

// relClose reports whether a and b agree to within rel relative tolerance
// (absolute for tiny magnitudes).
func relClose(a, b, rel float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1e-12 {
		return d < 1e-12
	}
	return d/m <= rel
}

// TestShardedMatchesUnsharded pins the sharded path's fidelity contract
// (DESIGN.md §12): on every generator, shard counts 1, 2 and 8, and
// parallelism 1 and 4 all select the same indices in the same order over
// the same number of rounds as the single-partition path, with bitwise
// identical weights. Selection benefits are compared within 1e-9 relative
// tolerance: the merged summary folds per shard rather than per state, so
// the floating-point sums associate differently at the last ulps (the
// benefitEps argmax tie-break absorbs exactly this).
func TestShardedMatchesUnsharded(t *testing.T) {
	const n, k = 60, 12
	for _, genName := range []string{"tpch", "tpcds", "dsb", "realm"} {
		w := generatorWorkload(t, genName, n)
		base := New(DefaultOptions()).Compress(w, k)
		if len(base.Indices) == 0 {
			t.Fatalf("%s: unsharded baseline selected nothing", genName)
		}
		for _, shards := range []int{1, 2, 8} {
			for _, par := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/shards=%d/parallelism=%d", genName, shards, par), func(t *testing.T) {
					opts := DefaultOptions()
					opts.Shards = shards
					opts.Parallelism = par
					got := New(opts).Compress(w, k)
					if got.Partial {
						t.Fatal("background sharded compress must not be partial")
					}
					if !reflect.DeepEqual(got.Indices, base.Indices) {
						t.Fatalf("selection diverged:\n got %v\nwant %v", got.Indices, base.Indices)
					}
					for i := range got.Indices {
						if got.Weights[i] != base.Weights[i] {
							t.Fatalf("weight %d: got %x (%v), unsharded %x (%v)", i,
								math.Float64bits(got.Weights[i]), got.Weights[i],
								math.Float64bits(base.Weights[i]), base.Weights[i])
						}
						if !relClose(got.SelectionBenefits[i], base.SelectionBenefits[i], 1e-9) {
							t.Fatalf("benefit %d: got %v, unsharded %v", i,
								got.SelectionBenefits[i], base.SelectionBenefits[i])
						}
					}
					if got.Rounds != base.Rounds {
						t.Fatalf("rounds: got %d, unsharded %d", got.Rounds, base.Rounds)
					}
				})
			}
		}
	}
}

// TestShardedDeterministicAcrossParallelism pins byte-reproducibility of
// the sharded path itself: the same shard count must produce bit-identical
// results (indices, weights, benefits) no matter how many workers execute
// the fan-out — the fixed-order merge is what the determinism argument
// rests on.
func TestShardedDeterministicAcrossParallelism(t *testing.T) {
	w := generatorWorkload(t, "tpcds", 80)
	opts := DefaultOptions()
	opts.Shards = 4
	opts.Parallelism = 1
	ref := New(opts).Compress(w, 16)
	for _, par := range []int{2, 4, 8} {
		o := opts
		o.Parallelism = par
		got := New(o).Compress(w, 16)
		if len(got.Indices) != len(ref.Indices) {
			t.Fatalf("parallelism=%d: %d selections vs %d", par, len(got.Indices), len(ref.Indices))
		}
		for i := range got.Indices {
			if got.Indices[i] != ref.Indices[i] ||
				math.Float64bits(got.Weights[i]) != math.Float64bits(ref.Weights[i]) ||
				math.Float64bits(got.SelectionBenefits[i]) != math.Float64bits(ref.SelectionBenefits[i]) {
				t.Fatalf("parallelism=%d diverged at %d: got (%d, %x, %x) want (%d, %x, %x)",
					par, i, got.Indices[i], math.Float64bits(got.Weights[i]), math.Float64bits(got.SelectionBenefits[i]),
					ref.Indices[i], math.Float64bits(ref.Weights[i]), math.Float64bits(ref.SelectionBenefits[i]))
			}
		}
	}
}

// TestShardedBenefitWithinOnePercent is the quality acceptance pin at a
// paper-scale operating point: total selection benefit of the sharded
// path stays within 1% of the unsharded selection.
func TestShardedBenefitWithinOnePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale workload")
	}
	w := generatorWorkload(t, "realm", 400)
	const k = 20
	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	base := New(DefaultOptions()).Compress(w, k)
	opts := DefaultOptions()
	opts.Shards = 8
	opts.Parallelism = 4
	got := New(opts).Compress(w, k)
	bb, gb := sum(base.SelectionBenefits), sum(got.SelectionBenefits)
	if bb <= 0 {
		t.Fatalf("unsharded total benefit %v", bb)
	}
	if math.Abs(gb-bb)/bb > 0.01 {
		t.Fatalf("sharded total benefit %v deviates more than 1%% from unsharded %v", gb, bb)
	}
}

// TestShardedAnytime sweeps deterministic cancellation budgets over the
// sharded pipeline and pins the anytime contract (DESIGN.md §9): never an
// error, never nil, Partial set on truncated runs, indices unique and in
// range, weights parallel and normalised for whatever was selected.
func TestShardedAnytime(t *testing.T) {
	w := generatorWorkload(t, "tpch", 40)
	opts := DefaultOptions()
	opts.Shards = 4
	opts.Parallelism = 1
	const k = 8

	full := New(opts).Compress(w, k)
	if full.Partial {
		t.Fatal("background sharded compress must not be partial")
	}
	if len(full.Indices) != k {
		t.Fatalf("full run selected %d, want %d", len(full.Indices), k)
	}

	sawMidRun := false
	for budget := int64(0); budget <= 4096; budget += 16 {
		res, err := New(opts).CompressContext(newCountdownCtx(budget), w, k)
		if err != nil {
			t.Fatalf("budget %d: cancellation must not be an error: %v", budget, err)
		}
		if res == nil {
			t.Fatalf("budget %d: nil result", budget)
		}
		if !res.Partial && len(res.Indices) != k {
			t.Fatalf("budget %d: non-partial result with %d selections", budget, len(res.Indices))
		}
		if res.Partial && len(res.Indices) > 0 && len(res.Indices) < k {
			sawMidRun = true
		}
		seen := make(map[int]bool, len(res.Indices))
		for _, idx := range res.Indices {
			if idx < 0 || idx >= w.Len() {
				t.Fatalf("budget %d: index %d out of range", budget, idx)
			}
			if seen[idx] {
				t.Fatalf("budget %d: duplicate index %d in %v", budget, idx, res.Indices)
			}
			seen[idx] = true
		}
		if len(res.Weights) != len(res.Indices) || len(res.SelectionBenefits) != len(res.Indices) {
			t.Fatalf("budget %d: weights/benefits not parallel to indices (%d, %d, %d)",
				budget, len(res.Indices), len(res.Weights), len(res.SelectionBenefits))
		}
		if len(res.Weights) > 0 {
			var sum float64
			for _, wt := range res.Weights {
				if wt < 0 {
					t.Fatalf("budget %d: negative weight %v", budget, wt)
				}
				sum += wt
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("budget %d: weights sum to %v", budget, sum)
			}
		}
	}
	if !sawMidRun {
		t.Fatal("budget sweep never produced a non-empty partial prefix — cut points not exercised")
	}
}

// TestShardedChaosByteIdentical runs the full pipeline — chaotic cost
// filling with retries, then sharded compression — and pins that the
// result is byte-identical to the fault-free run: injected faults absorbed
// by retry must not leak into shard selection.
func TestShardedChaosByteIdentical(t *testing.T) {
	gen := benchmarks.TPCDS(10)
	build := func(chaos bool) *Result {
		w, err := gen.Workload(80, 1)
		if err != nil {
			t.Fatal(err)
		}
		o := cost.NewOptimizer(gen.Cat)
		if chaos {
			o.SetInjector(faults.NewInjector(faults.Config{Seed: 42, ErrorRate: 0.3}))
			o.SetRetryPolicy(cost.RetryPolicy{
				MaxAttempts: 30, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond,
			})
		}
		if err := o.FillCostsCtx(context.Background(), w, 1); err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.Shards = 4
		opts.Parallelism = 4
		return New(opts).Compress(w, 16)
	}
	plain := build(false)
	chaotic := build(true)
	if len(plain.Indices) != len(chaotic.Indices) {
		t.Fatalf("chaos changed selection count: %d vs %d", len(chaotic.Indices), len(plain.Indices))
	}
	for i := range plain.Indices {
		if plain.Indices[i] != chaotic.Indices[i] ||
			math.Float64bits(plain.Weights[i]) != math.Float64bits(chaotic.Weights[i]) ||
			math.Float64bits(plain.SelectionBenefits[i]) != math.Float64bits(chaotic.SelectionBenefits[i]) {
			t.Fatalf("chaos run diverged at %d: (%d, %x, %x) vs (%d, %x, %x)", i,
				chaotic.Indices[i], math.Float64bits(chaotic.Weights[i]), math.Float64bits(chaotic.SelectionBenefits[i]),
				plain.Indices[i], math.Float64bits(plain.Weights[i]), math.Float64bits(plain.SelectionBenefits[i]))
		}
	}
}
