package core

import (
	"isum/internal/features"
	"isum/internal/workload"
)

// weigh assigns weights to the selected queries per the configured strategy
// (Section 7) and returns them parallel to res.Indices.
func (c *Compressor) weigh(w *workload.Workload, states []*QueryState, res *Result) []float64 {
	k := len(res.Indices)
	if k == 0 {
		return nil
	}
	switch c.opts.Weighing {
	case WeighNone:
		out := make([]float64, k)
		for i := range out {
			out[i] = 1.0 / float64(k)
		}
		return out
	case WeighSelectionBenefit:
		return normalizeWeights(res.SelectionBenefits)
	default:
		return c.recalibrate(w, states, res, c.opts.Weighing == WeighTemplateRecalibrated)
	}
}

// recalibrate implements Algorithm 5 (with Algorithm 4's template-based
// utility pooling when useTemplates is set): the selected queries' benefits
// are recomputed greedily against summary features built from the
// *unselected* remainder only, so selection-order bias disappears.
func (c *Compressor) recalibrate(w *workload.Workload, states []*QueryState, res *Result, useTemplates bool) []float64 {
	selectedSet := map[int]bool{}
	for _, idx := range res.Indices {
		selectedSet[idx] = true
	}

	// Per-query recalibrated utility for the selected queries, and the set
	// of unselected queries forming W_u.
	utility := map[int]float64{}
	excluded := map[int]bool{} // unselected queries removed from W_u
	if useTemplates {
		// Algorithm 4: pool utilities per template.
		freq := map[string]int{}
		for _, idx := range res.Indices {
			freq[states[idx].Query.TemplateID]++
		}
		totalU := map[string]float64{}
		for _, s := range states {
			tid := s.Query.TemplateID
			if freq[tid] > 0 {
				totalU[tid] += s.OrigUtility
				if !selectedSet[s.Index] {
					excluded[s.Index] = true // same template: represented already
				}
			}
		}
		for _, idx := range res.Indices {
			tid := states[idx].Query.TemplateID
			utility[idx] = totalU[tid] / float64(freq[tid])
		}
	} else {
		for _, idx := range res.Indices {
			utility[idx] = states[idx].OrigUtility
		}
	}

	// Fresh working copies of the unselected remainder (W_u).
	type uState struct {
		vec  features.SparseVec
		util float64
	}
	var wu []*uState
	for _, s := range states {
		if selectedSet[s.Index] || excluded[s.Index] {
			continue
		}
		wu = append(wu, &uState{vec: s.OrigVec.Clone(), util: s.OrigUtility})
	}

	remaining := append([]int{}, res.Indices...)
	benefit := map[int]float64{}
	total := 0.0
	for len(remaining) > 0 {
		// Summary features over the current W_u.
		var summary features.SparseVec
		for _, u := range wu {
			summary.AddScaled(u.vec, u.util)
		}
		bestPos, bestB := -1, -1.0
		for pos, idx := range remaining {
			b := utility[idx] + states[idx].OrigVec.WeightedJaccard(summary)
			if b > bestB+1e-9 { // epsilon tie-break, see selectGreedy
				bestB, bestPos = b, pos
			}
		}
		summary.Release()
		idx := remaining[bestPos]
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
		benefit[idx] = bestB
		total += bestB
		// Update W_u with the chosen query: discount utilities and remove
		// covered features, as during selection.
		chosenVec := states[idx].OrigVec
		for _, u := range wu {
			sim := chosenVec.WeightedJaccard(u.vec)
			u.util -= u.util * sim
			u.vec.ZeroShared(chosenVec)
		}
	}

	out := make([]float64, len(res.Indices))
	for i, idx := range res.Indices {
		if total > 0 {
			out[i] = benefit[idx] / total
		} else {
			out[i] = 1.0 / float64(len(res.Indices))
		}
	}
	return out
}

// normalizeWeights scales weights to sum to 1, defaulting to uniform when
// the input is degenerate.
func normalizeWeights(in []float64) []float64 {
	out := make([]float64, len(in))
	var total float64
	for _, v := range in {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		for i := range out {
			out[i] = 1.0 / float64(len(in))
		}
		return out
	}
	for i, v := range in {
		if v < 0 {
			v = 0
		}
		out[i] = v / total
	}
	return out
}
