package core

import (
	"context"
	"fmt"
	"testing"

	"isum/internal/cost"
	"isum/internal/workload"
)

func TestIncrementalPoolBounded(t *testing.T) {
	w := testWorkload(t)
	ic := NewIncremental(w.Catalog, DefaultOptions(), 4)
	for i := 0; i < w.Len(); i += 4 {
		end := i + 4
		if end > w.Len() {
			end = w.Len()
		}
		res := ic.Observe(w.Queries[i:end])
		if ic.Pool().Len() > 4 {
			t.Fatalf("pool exceeded bound: %d", ic.Pool().Len())
		}
		if len(res.Indices) != ic.Pool().Len() {
			t.Fatal("result/pool mismatch")
		}
	}
	if ic.Seen() != w.Len() {
		t.Fatalf("seen = %d, want %d", ic.Seen(), w.Len())
	}
	if ic.Pool().Len() != 4 {
		t.Fatalf("final pool = %d", ic.Pool().Len())
	}
}

func TestIncrementalCoversClustersEventually(t *testing.T) {
	// Feed clusters one at a time; the final pool must represent all three,
	// even the ones observed early.
	w := testWorkload(t)
	ic := NewIncremental(w.Catalog, DefaultOptions(), 3)
	ic.Observe(w.Queries[0:6])   // cluster A
	ic.Observe(w.Queries[6:12])  // cluster B
	ic.Observe(w.Queries[12:16]) // cluster C

	tables := map[string]bool{}
	for _, q := range ic.Pool().Queries {
		for _, t := range q.Info.Tables {
			tables[t] = true
		}
	}
	if len(tables) < 2 {
		t.Fatalf("pool lost earlier clusters: tables = %v", tables)
	}
}

func TestIncrementalWeightsAccumulate(t *testing.T) {
	// Many instances of one template across batches: the surviving
	// representative should carry large weight relative to a singleton.
	cat := testCatalog()
	var sqls []string
	for i := 0; i < 12; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT o_totalprice FROM orders WHERE o_orderkey = %d", i+1))
	}
	sqls = append(sqls, "SELECT c_custkey FROM customer WHERE c_nationkey = 3")
	w, err := workload.New(cat, sqls)
	if err != nil {
		t.Fatal(err)
	}
	cost.NewOptimizer(cat).FillCosts(w)

	ic := NewIncremental(cat, DefaultOptions(), 2)
	ic.Observe(w.Queries[0:6])
	ic.Observe(w.Queries[6:13])
	pool := ic.Pool()
	if pool.Len() != 2 {
		t.Fatalf("pool = %d", pool.Len())
	}
	var wTemplate, wSingleton float64
	for _, q := range pool.Queries {
		if q.Info.Tables[0] == "orders" {
			wTemplate = q.Weight
		} else {
			wSingleton = q.Weight
		}
	}
	if wTemplate <= wSingleton {
		t.Fatalf("template representative should dominate: %f vs %f", wTemplate, wSingleton)
	}
}

// ObserveContext honours the anytime contract: cancellation yields a
// valid Partial result, never an error, and a cancellation that struck
// before any selection keeps the previous pool intact.
func TestObserveContextAnytime(t *testing.T) {
	w := testWorkload(t)
	ic := NewIncremental(w.Catalog, DefaultOptions(), 3)
	ic.Observe(w.Queries[0:6])
	before := ic.Pool()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ic.ObserveContext(ctx, w.Queries[6:12])
	if err != nil {
		t.Fatalf("cancellation must not be an error: %v", err)
	}
	if !res.Partial {
		t.Fatal("cancelled recompression should be marked Partial")
	}
	if ic.Seen() != 12 {
		t.Fatalf("seen = %d: the batch was observed even if not folded", ic.Seen())
	}
	if len(res.Indices) == 0 && ic.Pool() != before {
		t.Fatal("empty partial selection must keep the previous pool")
	}

	// An uncancelled ObserveContext matches Observe exactly.
	res2, err := ic.ObserveContext(context.Background(), w.Queries[12:16])
	if err != nil || res2.Partial {
		t.Fatalf("clean fold: %v partial=%v", err, res2.Partial)
	}
	if ic.Pool().Len() > 3 {
		t.Fatalf("pool exceeded bound: %d", ic.Pool().Len())
	}
}

func TestIncrementalDegenerateK(t *testing.T) {
	w := testWorkload(t)
	ic := NewIncremental(w.Catalog, DefaultOptions(), 0) // clamps to 1
	ic.Observe(w.Queries[:3])
	if ic.Pool().Len() != 1 {
		t.Fatalf("pool = %d", ic.Pool().Len())
	}
	// Empty batch is a no-op recompression.
	ic.Observe(nil)
	if ic.Pool().Len() != 1 {
		t.Fatal("empty batch should keep the pool")
	}
}
