package core

import (
	"context"
	"sync/atomic"

	"isum/internal/features"
	"isum/internal/parallel"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

// BuildConsedStatesContext is the template hash-consing state builder
// (DESIGN.md §12): instead of one state per query it builds one state per
// distinct template, so all instances of a template share one feature
// extraction and one SparseVec. The returned repIdx maps each template
// state's position to its representative query's workload position (the
// template's first instance).
//
// Instances of one template differ only in literal bindings, so their
// feature vectors are identical up to selectivity estimates of the bound
// literals; the representative's extraction stands in for the group. The
// group state's utility is the *sum* of its instances' normalised
// utilities U(q) = Δ(q)/ΣΔ — Algorithm 4's template-based utility pooling
// applied before selection instead of after — so a template selected by
// the greedy loop carries the combined weight of every query it
// represents. ΣΔ still ranges over all queries and is reduced serially in
// query-index order, making utilities bit-identical at any parallelism.
//
// On a workload with no repeated templates this is BuildStatesContext
// with extra bookkeeping; on template-heavy million-query workloads it
// collapses the greedy universe by orders of magnitude.
func BuildConsedStatesContext(ctx context.Context, w *workload.Workload, opts Options) ([]*QueryState, []int, error) {
	sp := opts.Telemetry.Start("core/build-consed-states")
	defer sp.End()
	groups := w.TemplateGroups()
	sp.SetAttr("queries", w.Len())
	sp.SetAttr("templates", len(groups))

	workers := parallel.Workers(opts.Parallelism)
	deltas, err := parallel.Map(ctx, workers, w.Len(), func(i int) float64 {
		return delta(w.Queries[i], opts.Utility)
	})
	if err != nil {
		return nil, nil, err
	}
	var totalDelta float64
	for _, d := range deltas {
		totalDelta += d
	}

	ex := opts.extractor(w.Catalog)
	in := opts.Interner
	if in == nil {
		in = features.NewInterner()
	}
	vecs := make([]features.Vector, len(groups))
	var built atomic.Int64 // progress stride counter; workers emit, so Progress must be concurrency-safe
	err = parallel.ForEach(ctx, workers, len(groups), func(g int) {
		vecs[g] = ex.Features(w.Queries[groups[g].Indices[0]])
		if opts.Progress != nil {
			if d := built.Add(1); d%progressStride == 0 {
				opts.Progress(telemetry.ProgressEvent{
					Phase: "core/build-consed-states", Done: int(d), Total: len(groups),
				})
			}
		}
	})
	if err != nil {
		return nil, nil, err
	}
	opts.Progress.Emit(telemetry.ProgressEvent{
		Phase: "core/build-consed-states", Done: len(groups), Total: len(groups),
	})
	in.AddVectors(vecs)
	sp.SetAttr("features", in.Len())

	states := make([]*QueryState, len(groups))
	repIdx := make([]int, len(groups))
	err = parallel.ForEach(ctx, workers, len(groups), func(g int) {
		rep := groups[g].Indices[0]
		repIdx[g] = rep
		sv := in.FromMap(vecs[g])
		states[g] = &QueryState{
			Index:    g,
			Query:    w.Queries[rep],
			Vec:      sv.Clone(),
			OrigVec:  sv,
			Interner: in,
		}
	})
	if err != nil {
		return nil, nil, err
	}
	for g, grp := range groups {
		var u float64
		if totalDelta > 0 {
			for _, i := range grp.Indices {
				u += deltas[i] / totalDelta
			}
		}
		states[g].Utility = u
		states[g].OrigUtility = u
	}
	workload.RecordConsed(len(groups), w.Len()-len(groups))
	return states, repIdx, nil
}
