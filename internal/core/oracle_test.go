package core

import (
	"fmt"
	"math"
	"testing"

	"isum/internal/benchmarks"
	"isum/internal/cost"
	"isum/internal/features"
	"isum/internal/workload"
)

// This file retains the pre-SparseVec map implementation of the whole
// compression pipeline as a reference oracle and pins the production
// pipeline to it byte-for-byte: same selected indices, bitwise-equal
// weights and selection benefits, on all four workload generators, at
// parallelism 1 and >1. Similarities are computed with the Ref* kernels
// (ascending interned-ID accumulation, the canonical order); everything
// else is the literal map code the production path used before interning.

// oracleState mirrors QueryState with map-shaped vectors.
type oracleState struct {
	idx      int
	q        *workload.Query
	vec      features.Vector
	orig     features.Vector
	util     float64
	origUtil float64
	selected bool
}

type oracleSummary struct {
	v     features.Vector
	total float64
}

type oracleDelta struct {
	util float64
	vec  features.Vector
}

func oracleBuildStates(w *workload.Workload, opts Options) ([]*oracleState, *features.Interner) {
	ex := opts.extractor(w.Catalog)
	states := make([]*oracleState, len(w.Queries))
	deltas := make([]float64, len(w.Queries))
	vecs := make([]features.Vector, len(w.Queries))
	for i, q := range w.Queries {
		deltas[i] = delta(q, opts.Utility)
		vecs[i] = ex.Features(q)
	}
	// Same single-batch dictionary construction as BuildStatesContext, so
	// oracle and production agree on the canonical (ascending-ID) order.
	in := features.NewInterner()
	in.AddVectors(vecs)
	var totalDelta float64
	for _, d := range deltas {
		totalDelta += d
	}
	for i := range w.Queries {
		s := &oracleState{idx: i, q: w.Queries[i], vec: vecs[i].Clone(), orig: vecs[i]}
		if totalDelta > 0 {
			s.util = deltas[i] / totalDelta
		}
		s.origUtil = s.util
		states[i] = s
	}
	return states, in
}

func oracleApplyUpdate(sel, q *oracleState, strategy UpdateStrategy, in *features.Interner) {
	if strategy == UpdateNone {
		return
	}
	sim := features.RefWeightedJaccard(sel.vec, q.vec, in)
	q.util -= q.util * sim
	if q.util < 0 {
		q.util = 0
	}
	switch strategy {
	case UpdateWeightSubtract:
		q.vec.SubClamped(sel.vec.Clone().Scale(sim))
	case UpdateFeatureRemove:
		q.vec.ZeroShared(sel.vec)
	}
}

// oracleApplyUpdateWithDelta is the literal pre-SparseVec touched-map
// delta computation.
func oracleApplyUpdateWithDelta(sel, q *oracleState, strategy UpdateStrategy, track bool, in *features.Interner) *oracleDelta {
	if !track {
		oracleApplyUpdate(sel, q, strategy, in)
		return nil
	}
	if strategy == UpdateNone {
		return nil
	}
	oldUtil := q.util
	touched := make(map[string]float64, len(sel.vec))
	for k := range sel.vec {
		touched[k] = q.vec[k]
	}
	oracleApplyUpdate(sel, q, strategy, in)
	newUtil := q.util

	d := &oracleDelta{util: newUtil - oldUtil, vec: features.Vector{}}
	for k, oldW := range touched {
		if dd := newUtil*q.vec[k] - oldUtil*oldW; dd != 0 {
			d.vec[k] = dd
		}
	}
	if newUtil != oldUtil {
		for k, w := range q.vec {
			if _, ok := touched[k]; ok {
				continue
			}
			if dd := (newUtil - oldUtil) * w; dd != 0 {
				d.vec[k] = dd
			}
		}
	}
	if d.util == 0 && len(d.vec) == 0 {
		return nil
	}
	return d
}

func oracleBuildSummary(states []*oracleState) *oracleSummary {
	ss := &oracleSummary{v: features.Vector{}}
	for _, s := range states {
		if s.selected {
			continue
		}
		ss.v.AddScaled(s.vec, s.util)
		ss.total += s.util
	}
	return ss
}

func oracleResetIfAllZero(states []*oracleState) bool {
	for _, s := range states {
		if !s.selected && !s.vec.AllZero() {
			return false
		}
	}
	any := false
	for _, s := range states {
		if !s.selected {
			s.vec = s.orig.Clone()
			any = true
		}
	}
	return any
}

func oracleAllSelected(states []*oracleState) bool {
	for _, s := range states {
		if !s.selected {
			return false
		}
	}
	return true
}

func oracleCompress(w *workload.Workload, k int, opts Options) *Result {
	res := &Result{}
	n := w.Len()
	if n == 0 || k <= 0 {
		return res
	}
	if k > n {
		k = n
	}
	states, in := oracleBuildStates(w, opts)
	summary := opts.Algorithm != AllPairs
	incremental := summary && !opts.RebuildSummary
	var ss *oracleSummary
	if summary {
		ss = oracleBuildSummary(states)
	}
	for len(res.Indices) < k {
		if summary && opts.RebuildSummary {
			ss = oracleBuildSummary(states)
		}
		benefits := make([]float64, n)
		for i, s := range states {
			if s.selected || s.vec.AllZero() {
				benefits[i] = math.Inf(-1)
				continue
			}
			if opts.Algorithm == AllPairs {
				b := s.util
				for _, qj := range states {
					if qj == s || qj.selected {
						continue
					}
					b += features.RefWeightedJaccard(s.vec, qj.vec, in) * qj.util
				}
				benefits[i] = b
			} else {
				benefits[i] = s.util + features.RefSummarySimilarity(s.vec, ss.v, s.util, ss.total, in)
			}
		}
		const benefitEps = 1e-9
		var best *oracleState
		bestBenefit := -1.0
		for i, b := range benefits {
			if b > bestBenefit+benefitEps {
				bestBenefit, best = b, states[i]
			}
		}
		if best == nil {
			if !oracleResetIfAllZero(states) || oracleAllSelected(states) {
				break
			}
			if incremental {
				ss = oracleBuildSummary(states)
			}
			res.Rounds++
			continue
		}
		best.selected = true
		res.Indices = append(res.Indices, best.idx)
		res.SelectionBenefits = append(res.SelectionBenefits, bestBenefit)
		res.Rounds++
		if incremental {
			ss.v.AddScaled(best.vec, -best.util)
			ss.total -= best.util
		}
		for _, s := range states {
			if s.selected {
				continue
			}
			d := oracleApplyUpdateWithDelta(best, s, opts.Update, incremental, in)
			if incremental && d != nil {
				for dk, dw := range d.vec {
					ss.v[dk] += dw
				}
				ss.total += d.util
			}
		}
	}
	res.Weights = oracleWeigh(states, res, opts, in)
	return res
}

func oracleWeigh(states []*oracleState, res *Result, opts Options, in *features.Interner) []float64 {
	k := len(res.Indices)
	if k == 0 {
		return nil
	}
	switch opts.Weighing {
	case WeighNone:
		out := make([]float64, k)
		for i := range out {
			out[i] = 1.0 / float64(k)
		}
		return out
	case WeighSelectionBenefit:
		return normalizeWeights(res.SelectionBenefits)
	default:
		return oracleRecalibrate(states, res, opts.Weighing == WeighTemplateRecalibrated, in)
	}
}

func oracleRecalibrate(states []*oracleState, res *Result, useTemplates bool, in *features.Interner) []float64 {
	selectedSet := map[int]bool{}
	for _, idx := range res.Indices {
		selectedSet[idx] = true
	}
	utility := map[int]float64{}
	excluded := map[int]bool{}
	if useTemplates {
		freq := map[string]int{}
		for _, idx := range res.Indices {
			freq[states[idx].q.TemplateID]++
		}
		totalU := map[string]float64{}
		for _, s := range states {
			tid := s.q.TemplateID
			if freq[tid] > 0 {
				totalU[tid] += s.origUtil
				if !selectedSet[s.idx] {
					excluded[s.idx] = true
				}
			}
		}
		for _, idx := range res.Indices {
			tid := states[idx].q.TemplateID
			utility[idx] = totalU[tid] / float64(freq[tid])
		}
	} else {
		for _, idx := range res.Indices {
			utility[idx] = states[idx].origUtil
		}
	}

	type uState struct {
		vec  features.Vector
		util float64
	}
	var wu []*uState
	for _, s := range states {
		if selectedSet[s.idx] || excluded[s.idx] {
			continue
		}
		wu = append(wu, &uState{vec: s.orig.Clone(), util: s.origUtil})
	}

	remaining := append([]int{}, res.Indices...)
	benefit := map[int]float64{}
	total := 0.0
	for len(remaining) > 0 {
		summary := features.Vector{}
		for _, u := range wu {
			summary.AddScaled(u.vec, u.util)
		}
		bestPos, bestB := -1, -1.0
		for pos, idx := range remaining {
			b := utility[idx] + features.RefWeightedJaccard(states[idx].orig, summary, in)
			if b > bestB+1e-9 {
				bestB, bestPos = b, pos
			}
		}
		idx := remaining[bestPos]
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
		benefit[idx] = bestB
		total += bestB
		chosenVec := states[idx].orig
		for _, u := range wu {
			sim := features.RefWeightedJaccard(chosenVec, u.vec, in)
			u.util -= u.util * sim
			u.vec.ZeroShared(chosenVec)
		}
	}

	out := make([]float64, len(res.Indices))
	for i, idx := range res.Indices {
		if total > 0 {
			out[i] = benefit[idx] / total
		} else {
			out[i] = 1.0 / float64(len(res.Indices))
		}
	}
	return out
}

// generatorWorkload builds an n-query workload with costs from one of the
// four paper-style generators.
func generatorWorkload(t testing.TB, name string, n int) *workload.Workload {
	t.Helper()
	var gen *benchmarks.Generator
	switch name {
	case "tpch":
		gen = benchmarks.TPCH(10)
	case "tpcds":
		gen = benchmarks.TPCDS(10)
	case "dsb":
		gen = benchmarks.DSB(10)
	case "realm":
		gen = benchmarks.RealM(7)
	default:
		t.Fatalf("unknown generator %q", name)
	}
	w, err := gen.Workload(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	cost.NewOptimizer(gen.Cat).FillCosts(w)
	return w
}

// TestSparseVecPipelineMatchesMapOracle pins the tentpole's invariant:
// the SparseVec production pipeline and the retained map oracle produce
// byte-identical compression output — indices, weights, selection
// benefits, round counts — on all four generators, at parallelism 1 and
// at parallelism 4.
func TestSparseVecPipelineMatchesMapOracle(t *testing.T) {
	type variant struct {
		name string
		opts Options
	}
	base := []variant{{"default", DefaultOptions()}}
	tpchExtra := []variant{
		{"weight-subtract", withUpdate(DefaultOptions(), UpdateWeightSubtract)},
		{"utility-only", withUpdate(DefaultOptions(), UpdateUtilityOnly)},
		{"isum-s", ISUMSOptions()},
		{"allpairs", func() Options { o := DefaultOptions(); o.Algorithm = AllPairs; return o }()},
		{"rebuild-summary", func() Options { o := DefaultOptions(); o.RebuildSummary = true; return o }()},
		{"weigh-selection", func() Options { o := DefaultOptions(); o.Weighing = WeighSelectionBenefit; return o }()},
	}
	const n, k = 60, 12
	for _, genName := range []string{"tpch", "tpcds", "dsb", "realm"} {
		variants := base
		if genName == "tpch" {
			variants = append(variants, tpchExtra...)
		}
		w := generatorWorkload(t, genName, n)
		for _, v := range variants {
			want := oracleCompress(w, k, v.opts)
			for _, par := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%s/parallelism=%d", genName, v.name, par), func(t *testing.T) {
					opts := v.opts
					opts.Parallelism = par
					got := New(opts).Compress(w, k)
					if len(got.Indices) != len(want.Indices) {
						t.Fatalf("selected %d queries, oracle %d", len(got.Indices), len(want.Indices))
					}
					for i := range got.Indices {
						if got.Indices[i] != want.Indices[i] {
							t.Fatalf("selection diverged at %d: got %v, oracle %v", i, got.Indices, want.Indices)
						}
						if got.Weights[i] != want.Weights[i] {
							t.Fatalf("weight %d: got %x (%v), oracle %x (%v)", i,
								math.Float64bits(got.Weights[i]), got.Weights[i],
								math.Float64bits(want.Weights[i]), want.Weights[i])
						}
						if got.SelectionBenefits[i] != want.SelectionBenefits[i] {
							t.Fatalf("benefit %d: got %x (%v), oracle %x (%v)", i,
								math.Float64bits(got.SelectionBenefits[i]), got.SelectionBenefits[i],
								math.Float64bits(want.SelectionBenefits[i]), want.SelectionBenefits[i])
						}
					}
					if got.Rounds != want.Rounds {
						t.Fatalf("rounds: got %d, oracle %d", got.Rounds, want.Rounds)
					}
				})
			}
		}
	}
}
