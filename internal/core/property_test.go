package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"isum/internal/cost"
	"isum/internal/workload"
)

// randomWorkload builds a random sub-workload of the shared test workload.
func randomWorkload(t *testing.T, rng *rand.Rand, minLen int) *workload.Workload {
	t.Helper()
	base := testWorkload(t)
	n := minLen + rng.Intn(base.Len()-minLen+1)
	perm := rng.Perm(base.Len())[:n]
	return base.Subset(perm)
}

// TestTheorem3Bound checks the summary-feature approximation bound of
// Theorem 3:
//
//	R/(n·U_L) ≤ F(V)/F(W) ≤ 1/(n·R·U_S)
//
// with R the smallest ratio between two values of the same feature, and
// U_S/U_L the min/max utilities over the workload.
func TestTheorem3Bound(t *testing.T) {
	w := testWorkload(t)
	states := BuildStates(w, DefaultOptions())
	ss := BuildSummary(states)
	n := float64(len(states))

	// R: the smallest cross-query ratio of weights for any shared feature;
	// U_S, U_L over positive utilities.
	minW := map[uint32]float64{}
	maxW := map[uint32]float64{}
	for _, s := range states {
		s.Vec.Each(func(k uint32, v float64) {
			if v <= 0 {
				return
			}
			if cur, ok := minW[k]; !ok || v < cur {
				minW[k] = v
			}
			if cur, ok := maxW[k]; !ok || v > cur {
				maxW[k] = v
			}
		})
	}
	R := math.Inf(1)
	for k := range minW {
		if r := minW[k] / maxW[k]; r < R {
			R = r
		}
	}
	uS, uL := math.Inf(1), 0.0
	for _, s := range states {
		if s.Utility <= 0 {
			continue
		}
		if s.Utility < uS {
			uS = s.Utility
		}
		if s.Utility > uL {
			uL = s.Utility
		}
	}
	lower := R / (n * uL)
	upper := 1 / (n * R * uS)

	for _, s := range states {
		fw := InfluenceOnWorkload(s, states)
		if fw <= 0 {
			continue
		}
		ratio := InfluenceOnSummary(s, ss) / fw
		if ratio < lower*(1-1e-9) || ratio > upper*(1+1e-9) {
			t.Fatalf("query %d: ratio %f outside Theorem-3 bounds [%f, %f]",
				s.Index, ratio, lower, upper)
		}
	}
}

// TestSubmodularityConditionC1 checks condition C1 of Theorem 2: the
// conditional influence of an unselected query z over another unselected
// query decreases (weakly) as more queries are selected, under the default
// feature-remove updates.
func TestSubmodularityConditionC1(t *testing.T) {
	w := testWorkload(t)
	opts := DefaultOptions()

	// Influence of z on q' after selecting the given prefix.
	influenceAfter := func(prefix []int, z, qp int) float64 {
		states := BuildStates(w, opts)
		for _, sel := range prefix {
			states[sel].Selected = true
			for _, s := range states {
				if !s.Selected {
					applyUpdate(states[sel], s, opts.Update)
				}
			}
		}
		return Influence(states[z], states[qp])
	}

	z, qp := 13, 14 // two join-cluster queries, never in the prefixes below
	small := influenceAfter([]int{0}, z, qp)
	large := influenceAfter([]int{0, 6, 1}, z, qp)
	if large > small+1e-9 {
		t.Fatalf("C1 violated: influence grew from %f to %f after selecting more", small, large)
	}
}

// TestUtilityMonotoneUnderUpdates verifies utilities never increase and
// never go negative through any update sequence.
func TestUtilityMonotoneUnderUpdates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := testWorkload(t)
		states := BuildStates(w, DefaultOptions())
		for step := 0; step < 5; step++ {
			sel := states[rng.Intn(len(states))]
			before := map[int]float64{}
			for _, s := range states {
				before[s.Index] = s.Utility
			}
			for _, s := range states {
				if s != sel {
					applyUpdate(sel, s, UpdateFeatureRemove)
				}
			}
			for _, s := range states {
				if s == sel {
					continue
				}
				if s.Utility > before[s.Index]+1e-12 || s.Utility < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestCompressContractQuick fuzzes the Compress contract over random
// sub-workloads, k values, and option combinations.
func TestCompressContractQuick(t *testing.T) {
	f := func(seed int64, kRaw uint8, alg, upd, wgh uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWorkload(t, rng, 2)
		k := int(kRaw)%w.Len() + 1

		opts := DefaultOptions()
		if alg%2 == 1 {
			opts.Algorithm = AllPairs
		}
		opts.Update = UpdateStrategy(upd % 4)
		opts.Weighing = WeighStrategy(wgh % 4)

		res := New(opts).Compress(w, k)
		if len(res.Indices) != k || len(res.Weights) != k {
			return false
		}
		seen := map[int]bool{}
		var sum float64
		for i, idx := range res.Indices {
			if idx < 0 || idx >= w.Len() || seen[idx] {
				return false
			}
			seen[idx] = true
			if res.Weights[i] < 0 {
				return false
			}
			sum += res.Weights[i]
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSummaryMatchesManualSum cross-checks BuildSummary against a direct
// computation of Definition 11.
func TestSummaryMatchesManualSum(t *testing.T) {
	w := testWorkload(t)
	states := BuildStates(w, DefaultOptions())
	ss := BuildSummary(states)
	manual := map[uint32]float64{}
	for _, s := range states {
		s.Vec.Each(func(k uint32, v float64) {
			manual[k] += v * s.Utility
		})
	}
	if len(manual) != ss.V.Len() {
		t.Fatalf("support mismatch: %d vs %d", len(manual), ss.V.Len())
	}
	for k, v := range manual {
		got, _ := ss.V.Get(k)
		if math.Abs(got-v) > 1e-9 {
			t.Fatalf("summary[%d] = %f, want %f", k, got, v)
		}
	}
}

// TestCompressedWorkloadMaterialisation checks CompressedWorkload carries
// weights and copies queries.
func TestCompressedWorkloadMaterialisation(t *testing.T) {
	w := testWorkload(t)
	cw, res := New(DefaultOptions()).CompressedWorkload(w, 3)
	if cw.Len() != 3 {
		t.Fatalf("len = %d", cw.Len())
	}
	for i, q := range cw.Queries {
		if math.Abs(q.Weight-res.Weights[i]) > 1e-12 {
			t.Fatal("weights not materialised")
		}
	}
	// Mutating the compressed copy must not touch the original.
	cw.Queries[0].Weight = 99
	for _, q := range w.Queries {
		if q.Weight == 99 {
			t.Fatal("compressed workload aliases input queries")
		}
	}
}

// TestAllPairsVsSummaryBenefitCorrelated sanity-checks that the two benefit
// computations rank queries similarly (Spearman-ish check via top pick).
func TestAllPairsVsSummaryBenefitCorrelated(t *testing.T) {
	w := testWorkload(t)
	states := BuildStates(w, DefaultOptions())
	ss := BuildSummary(states)
	ap := make([]float64, len(states))
	sum := make([]float64, len(states))
	for i, s := range states {
		ap[i] = BenefitAllPairs(s, states)
		sum[i] = BenefitSummary(s, ss)
	}
	// Exact agreement is not expected (Fig. 8 reports 0.83 vs 0.87 against
	// ground truth); require a clearly positive correlation between the two
	// estimators.
	if r := pearson(ap, sum); r < 0.3 {
		t.Fatalf("all-pairs and summary benefits barely correlated: r=%f\nap=%v\nsum=%v", r, ap, sum)
	}
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

func init() {
	// Silence unused-import lint for cost used by testWorkload in core_test.
	_ = cost.SeqPageCost
	_ = fmt.Sprint
}
