package core

import (
	"math"
	"testing"

	"isum/internal/telemetry"
)

// TestTelemetryDoesNotChangeOutput pins the observability contract: a
// compression run with a live registry selects the same queries with the
// same weights and benefits as the uninstrumented run, for both greedy
// algorithms.
func TestTelemetryDoesNotChangeOutput(t *testing.T) {
	w := testWorkload(t)
	for _, algo := range []Algorithm{SummaryFeatures, AllPairs} {
		plain := DefaultOptions()
		plain.Algorithm = algo
		instr := plain
		instr.Telemetry = telemetry.New()

		base := New(plain).Compress(w, 5)
		traced := New(instr).Compress(w, 5)

		if len(base.Indices) != len(traced.Indices) {
			t.Fatalf("algorithm %v: selected %d vs %d queries", algo, len(base.Indices), len(traced.Indices))
		}
		for i := range base.Indices {
			if base.Indices[i] != traced.Indices[i] {
				t.Errorf("algorithm %v: index %d differs: %d vs %d", algo, i, base.Indices[i], traced.Indices[i])
			}
			if math.Abs(base.Weights[i]-traced.Weights[i]) > 1e-12 {
				t.Errorf("algorithm %v: weight %d differs: %v vs %v", algo, i, base.Weights[i], traced.Weights[i])
			}
			if math.Abs(base.SelectionBenefits[i]-traced.SelectionBenefits[i]) > 1e-12 {
				t.Errorf("algorithm %v: benefit %d differs: %v vs %v", algo, i, base.SelectionBenefits[i], traced.SelectionBenefits[i])
			}
		}

		// The instrumented run must actually have recorded its phases.
		reg := instr.Telemetry
		if got := reg.Counter("core/greedy/rounds").Value(); got == 0 {
			t.Errorf("algorithm %v: no greedy rounds recorded", algo)
		}
		if len(reg.Spans()) == 0 {
			t.Errorf("algorithm %v: no spans recorded", algo)
		}
	}
}
