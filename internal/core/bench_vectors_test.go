package core

import (
	"testing"

	"isum/internal/features"
)

// BenchmarkSummaryDelta measures one greedy-round update sweep — apply
// the selected query's update to every other query and compute its
// incremental summary delta — on a TPC-H workload. impl=map is the
// retained pre-SparseVec touched-map implementation (the oracle);
// impl=sparse is the production merge-join path. BENCH_vectors.json is
// generated from this benchmark.
func BenchmarkSummaryDelta(b *testing.B) {
	const n = 64
	w := generatorWorkload(b, "tpch", n)
	opts := DefaultOptions()

	b.Run("impl=map", func(b *testing.B) {
		states, in := oracleBuildStates(w, opts)
		sel := states[0]
		sel.selected = true
		snap := make([]features.Vector, len(states))
		utils := make([]float64, len(states))
		for i, s := range states {
			snap[i] = s.vec.Clone()
			utils[i] = s.util
		}
		b.ReportAllocs()
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			for _, s := range states[1:] {
				_ = oracleApplyUpdateWithDelta(sel, s, opts.Update, true, in)
			}
			b.StopTimer()
			for i, s := range states[1:] {
				s.vec = snap[i+1].Clone()
				s.util = utils[i+1]
			}
			b.StartTimer()
		}
	})

	b.Run("impl=sparse", func(b *testing.B) {
		states := BuildStates(w, opts)
		sel := states[0]
		sel.Selected = true
		snap := make([]features.SparseVec, len(states))
		utils := make([]float64, len(states))
		for i, s := range states {
			snap[i] = s.Vec.Clone()
			utils[i] = s.Utility
		}
		b.ReportAllocs()
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			for _, s := range states[1:] {
				r := applyUpdateWithDelta(sel, s, opts.Update, true)
				if r.hasDelta {
					r.vec.Release()
				}
			}
			b.StopTimer()
			for i, s := range states[1:] {
				s.Vec.Release()
				s.Vec = snap[i+1].Clone()
				s.Utility = utils[i+1]
			}
			b.StartTimer()
		}
	})
}
