// Package core implements ISUM, the paper's contribution: estimating the
// workload-improvement potential of query subsets via utility + influence
// (Section 4), the all-pairs greedy algorithm (Section 5), the linear-time
// summary-feature algorithm (Section 6), and compressed-workload weighing
// (Section 7).
package core

import (
	"isum/internal/catalog"
	"isum/internal/features"
	"isum/internal/telemetry"
)

// Algorithm selects the greedy driver.
type Algorithm int

const (
	// SummaryFeatures is the O(k·n) algorithm of Section 6 (Algorithm 3) —
	// ISUM's default.
	SummaryFeatures Algorithm = iota
	// AllPairs is the O(k·n²) algorithm of Section 5 (Algorithms 1–2).
	AllPairs
)

// UtilityMode selects how Δ(q), the estimated reduction in cost, is
// computed (Section 4.1).
type UtilityMode int

const (
	// UtilityCostOnly uses Δ(q) = C(q): the query cost as a proxy, shown in
	// Fig. 5a to correlate strongly with actual reductions. Used when
	// statistics are unavailable; pairs with rule-based features (ISUM).
	UtilityCostOnly UtilityMode = iota
	// UtilityCostSelectivity uses Δ(q) = (1 − Sel(q))·C(q) with Sel the
	// average filter/join selectivity (Fig. 5b); pairs with stats-based
	// features (ISUM-S).
	UtilityCostSelectivity
)

// UpdateStrategy selects how unselected queries are updated after each
// greedy selection (Section 4.3, evaluated in Fig. 13).
type UpdateStrategy int

const (
	// UpdateFeatureRemove updates the utility and zeroes the features the
	// selected query covers — the paper's best-performing strategy and the
	// default.
	UpdateFeatureRemove UpdateStrategy = iota
	// UpdateWeightSubtract updates the utility and subtracts the selected
	// query's feature weights.
	UpdateWeightSubtract
	// UpdateUtilityOnly updates only the utility.
	UpdateUtilityOnly
	// UpdateNone performs no updates (ablation baseline).
	UpdateNone
)

// WeighStrategy selects how the selected queries are weighted before being
// handed to the tuner (Section 7, evaluated in Fig. 14).
type WeighStrategy int

const (
	// WeighTemplateRecalibrated applies template-based utility pooling
	// (Algorithm 4) followed by recalibrated benefits (Algorithm 5) — the
	// default.
	WeighTemplateRecalibrated WeighStrategy = iota
	// WeighRecalibrated recomputes benefits of the selected queries against
	// the unselected remainder without template pooling.
	WeighRecalibrated
	// WeighSelectionBenefit reuses the conditional benefits observed during
	// greedy selection.
	WeighSelectionBenefit
	// WeighNone assigns uniform weights.
	WeighNone
)

// Options configure a Compressor.
type Options struct {
	Algorithm Algorithm
	Utility   UtilityMode
	Update    UpdateStrategy
	Weighing  WeighStrategy
	// FeatureMode selects rule-based (ISUM) or stats-based (ISUM-S) column
	// weights.
	FeatureMode features.WeightMode
	// Norm selects the per-query weight normalisation (NormMax default;
	// NormMinMaxPaper is the paper-literal variant — see DESIGN.md §5).
	Norm features.NormMode
	// UseTableWeight multiplies feature weights by table size
	// (ISUM-NoTable disables it; Fig. 10).
	UseTableWeight bool
	// Parallelism bounds the worker goroutines used on the hot paths
	// (feature extraction, benefit scans, post-selection update sweeps).
	// 0 uses GOMAXPROCS; 1 forces the serial reference path. Selection is
	// identical at any setting: benefits are computed in parallel but
	// reduced serially in query order (see DESIGN.md, "Concurrency model").
	Parallelism int
	// Shards, when > 1, runs sharded compression (DESIGN.md §12): the
	// query states are partitioned by a stable hash of TemplateID, each
	// shard is compressed independently (shards fan out across the
	// Parallelism workers), and the per-shard winners are re-ranked by a
	// cross-shard refinement pass against the merged shard summaries.
	// Shard summaries are merged in fixed shard order and refinement
	// candidates are sorted by workload position, so the output is
	// byte-reproducible at any Parallelism. 0 or 1 disables sharding and
	// keeps the exact single-partition path.
	Shards int
	// ConsTemplates enables template hash-consing (DESIGN.md §12): queries
	// are interned by TemplateID before the greedy loop, so all instances
	// of one template share one feature extraction and one state whose
	// utility is the sum over the instances (Algorithm 4's pooling applied
	// up front). Result.Indices refer to each template's first instance.
	// This collapses template-heavy million-query workloads by orders of
	// magnitude; on workloads with no repeated templates it is the
	// identity. Off by default: consing changes selection granularity from
	// queries to templates, so per-instance selection semantics (and k ≥ n
	// meaning "every query") only hold with it disabled.
	ConsTemplates bool
	// Interner, when non-nil, is the feature dictionary BuildStates interns
	// extracted vectors into, letting callers keep feature IDs stable
	// across repeated compressions of overlapping workloads (the
	// incremental pool does this). nil — the default — builds a fresh
	// workload-scoped dictionary per BuildStates call. A shared Interner is
	// mutated by BuildStates, so compressions sharing one must not run
	// concurrently.
	Interner *features.Interner
	// RebuildSummary forces the summary features to be rebuilt from
	// scratch every greedy round (the literal Algorithm 3 reading) instead
	// of being maintained incrementally. Debug/validation knob: the
	// incremental path is algebraically identical and O(rounds) cheaper.
	RebuildSummary bool
	// Telemetry receives the compressor's metrics and phase spans
	// (core/build-states, per-round core/greedy spans with argmax and
	// update timings — see DESIGN.md §8). nil, the default, disables
	// instrumentation: the no-op path is a pointer check and allocates
	// nothing, and compression output is identical either way.
	Telemetry *telemetry.Registry
	// Progress, when non-nil, receives streaming progress events while
	// the compression runs (DESIGN.md §13): per state-building stride
	// ("core/build-states"), per greedy selection ("core/greedy", with
	// round, k-so-far, and cumulative benefit), per completed shard
	// ("core/shard-fanout") and per summary fold ("core/shard-merge")
	// on the sharded path, and after weighing ("core/weigh"). The
	// function must be safe for concurrent use — shard and build
	// sweeps emit from worker goroutines. Events are observational
	// only: compression output is byte-identical with or without a
	// Progress sink (pinned by TestProgressDoesNotChangeOutput), and
	// nil costs a pointer check per emission site.
	Progress telemetry.ProgressFunc
}

// DefaultOptions returns ISUM's default configuration: summary features,
// rule-based weights, cost-only utility, feature-remove updates, template
// weighing.
func DefaultOptions() Options {
	return Options{
		Algorithm:      SummaryFeatures,
		Utility:        UtilityCostOnly,
		Update:         UpdateFeatureRemove,
		Weighing:       WeighTemplateRecalibrated,
		FeatureMode:    features.RuleBased,
		UseTableWeight: true,
	}
}

// ISUMSOptions returns the ISUM-S variant: statistics-based feature weights
// and selectivity-aware utility.
func ISUMSOptions() Options {
	o := DefaultOptions()
	o.FeatureMode = features.StatsBased
	o.Utility = UtilityCostSelectivity
	return o
}

// NoTableOptions returns the ISUM-NoTable ablation of Fig. 10: stats-based
// weights without the table-size factor.
func NoTableOptions() Options {
	o := ISUMSOptions()
	o.UseTableWeight = false
	return o
}

func (o Options) extractor(cat *catalog.Catalog) *features.Extractor {
	return &features.Extractor{
		Cat:            cat,
		Mode:           o.FeatureMode,
		Norm:           o.Norm,
		UseTableWeight: o.UseTableWeight,
	}
}
