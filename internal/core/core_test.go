package core

import (
	"fmt"
	"math"
	"testing"

	"isum/internal/catalog"
	"isum/internal/cost"
	"isum/internal/features"
	"isum/internal/workload"
)

// testCatalog builds a small catalog with two tables.
func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	o := catalog.NewTable("orders", 1000000)
	o.AddColumn(&catalog.Column{Name: "o_orderkey", Type: catalog.TypeInt, DistinctCount: 1000000, Min: 1, Max: 1000000,
		Hist: catalog.SyntheticHistogram(1, 1000000, 1000000, 1000000, 40, 0)})
	o.AddColumn(&catalog.Column{Name: "o_custkey", Type: catalog.TypeInt, DistinctCount: 100000, Min: 1, Max: 100000,
		Hist: catalog.SyntheticHistogram(1, 100000, 1000000, 100000, 40, 0)})
	o.AddColumn(&catalog.Column{Name: "o_totalprice", Type: catalog.TypeDecimal, DistinctCount: 900000, Min: 1, Max: 500000,
		Hist: catalog.SyntheticHistogram(1, 500000, 1000000, 900000, 40, 0)})
	cat.AddTable(o)
	c := catalog.NewTable("customer", 100000)
	c.AddColumn(&catalog.Column{Name: "c_custkey", Type: catalog.TypeInt, DistinctCount: 100000, Min: 1, Max: 100000,
		Hist: catalog.SyntheticHistogram(1, 100000, 100000, 100000, 20, 0)})
	c.AddColumn(&catalog.Column{Name: "c_nationkey", Type: catalog.TypeInt, DistinctCount: 25, Min: 0, Max: 24,
		Hist: catalog.SyntheticHistogram(0, 24, 100000, 25, 25, 0)})
	cat.AddTable(c)
	return cat
}

// testWorkload builds a workload with 3 distinct "clusters" of queries plus
// cost skew, so compression choices are meaningful.
func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	cat := testCatalog()
	var sqls []string
	// Cluster A: selective orders lookups (high cost reduction potential).
	for i := 0; i < 6; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT o_totalprice FROM orders WHERE o_orderkey = %d", 100+i))
	}
	// Cluster B: customer filters.
	for i := 0; i < 6; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT c_custkey FROM customer WHERE c_nationkey = %d", i))
	}
	// Cluster C: joins.
	for i := 0; i < 4; i++ {
		sqls = append(sqls, fmt.Sprintf(
			"SELECT o_totalprice FROM customer, orders WHERE c_custkey = o_custkey AND c_nationkey = %d", i))
	}
	w, err := workload.New(cat, sqls)
	if err != nil {
		t.Fatal(err)
	}
	o := cost.NewOptimizer(cat)
	o.FillCosts(w)
	return w
}

func TestBuildStatesUtilities(t *testing.T) {
	w := testWorkload(t)
	states := BuildStates(w, DefaultOptions())
	var sum float64
	for _, s := range states {
		if s.Utility < 0 {
			t.Fatalf("negative utility: %+v", s)
		}
		sum += s.Utility
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("utilities sum to %f, want 1", sum)
	}
	// Cost-only utility must be proportional to cost.
	for _, s := range states {
		want := s.Query.Cost / w.TotalCost()
		if math.Abs(s.Utility-want) > 1e-9 {
			t.Fatalf("utility %f != cost share %f", s.Utility, want)
		}
	}
}

func TestUtilityModes(t *testing.T) {
	w := testWorkload(t)
	costOnly := BuildStates(w, DefaultOptions())
	stats := BuildStates(w, ISUMSOptions())
	// Both normalise to 1, but the distributions must differ because
	// selectivities differ across queries.
	diff := 0.0
	for i := range costOnly {
		diff += math.Abs(costOnly[i].Utility - stats[i].Utility)
	}
	if diff < 1e-6 {
		t.Fatal("selectivity-aware utility should differ from cost-only")
	}
}

func TestInfluenceAndBenefit(t *testing.T) {
	w := testWorkload(t)
	states := BuildStates(w, DefaultOptions())
	// Same-template queries are highly similar: influence ≈ utility.
	f01 := Influence(states[0], states[1])
	if math.Abs(f01-states[1].Utility) > 1e-9 {
		t.Fatalf("same-template influence = %f, want %f", f01, states[1].Utility)
	}
	// Cross-cluster influence should be much smaller.
	f06 := Influence(states[0], states[6])
	if f06 >= f01 {
		t.Fatalf("cross-cluster influence %f >= same-template %f", f06, f01)
	}
	if Influence(states[0], states[0]) != 0 {
		t.Fatal("self influence must be 0")
	}
	// Benefit = utility + total influence ≥ utility.
	b := BenefitAllPairs(states[0], states)
	if b < states[0].Utility {
		t.Fatalf("benefit %f below utility %f", b, states[0].Utility)
	}
}

func TestSummaryApproximatesAllPairs(t *testing.T) {
	w := testWorkload(t)
	states := BuildStates(w, DefaultOptions())
	ss := BuildSummary(states)
	// Fig. 8a: for most queries the ratio F(V)/F(W) is within a small
	// constant factor.
	within := 0
	for _, s := range states {
		fw := InfluenceOnWorkload(s, states)
		fv := InfluenceOnSummary(s, ss)
		if fw <= 0 {
			continue
		}
		ratio := fv / fw
		if ratio > 0.1 && ratio < 10 {
			within++
		}
	}
	if within < len(states)*7/10 {
		t.Fatalf("only %d/%d queries within 10x summary error", within, len(states))
	}
}

func TestCompressSelectsAcrossClusters(t *testing.T) {
	w := testWorkload(t)
	c := New(DefaultOptions())
	res := c.Compress(w, 3)
	if len(res.Indices) != 3 {
		t.Fatalf("selected %d queries", len(res.Indices))
	}
	// The three picks should span the three clusters (A: 0-5, B: 6-11, C: 12-15):
	// picking duplicates from one cluster wastes the budget.
	clusters := map[int]bool{}
	for _, idx := range res.Indices {
		switch {
		case idx < 6:
			clusters[0] = true
		case idx < 12:
			clusters[1] = true
		default:
			clusters[2] = true
		}
	}
	if len(clusters) != 3 {
		t.Fatalf("selections %v span only %d clusters", res.Indices, len(clusters))
	}
}

func TestCompressAllPairsAgreesRoughly(t *testing.T) {
	w := testWorkload(t)
	sum := New(DefaultOptions()).Compress(w, 3)
	apOpts := DefaultOptions()
	apOpts.Algorithm = AllPairs
	ap := New(apOpts).Compress(w, 3)
	if len(ap.Indices) != 3 || len(sum.Indices) != 3 {
		t.Fatal("selection sizes wrong")
	}
	// Both should cover multiple clusters; exact picks may differ.
	cluster := func(idx int) int {
		switch {
		case idx < 6:
			return 0
		case idx < 12:
			return 1
		default:
			return 2
		}
	}
	apClusters := map[int]bool{}
	for _, i := range ap.Indices {
		apClusters[cluster(i)] = true
	}
	if len(apClusters) < 2 {
		t.Fatalf("all-pairs collapsed to one cluster: %v", ap.Indices)
	}
}

func TestCompressEdgeCases(t *testing.T) {
	w := testWorkload(t)
	c := New(DefaultOptions())
	if res := c.Compress(w, 0); len(res.Indices) != 0 {
		t.Fatal("k=0 should select nothing")
	}
	if res := c.Compress(w, 1000); len(res.Indices) != w.Len() {
		t.Fatalf("k>n should select all: %d", len(res.Indices))
	}
	empty := &workload.Workload{Catalog: w.Catalog}
	if res := c.Compress(empty, 5); len(res.Indices) != 0 {
		t.Fatal("empty workload should select nothing")
	}
}

func TestCompressDeterministic(t *testing.T) {
	w := testWorkload(t)
	c := New(DefaultOptions())
	a := c.Compress(w, 5)
	b := c.Compress(w, 5)
	if fmt.Sprint(a.Indices) != fmt.Sprint(b.Indices) {
		t.Fatalf("non-deterministic selection: %v vs %v", a.Indices, b.Indices)
	}
}

func TestWeightsNormalised(t *testing.T) {
	w := testWorkload(t)
	for _, strat := range []WeighStrategy{
		WeighNone, WeighSelectionBenefit, WeighRecalibrated, WeighTemplateRecalibrated,
	} {
		opts := DefaultOptions()
		opts.Weighing = strat
		res := New(opts).Compress(w, 4)
		if len(res.Weights) != len(res.Indices) {
			t.Fatalf("strategy %d: weights %d != indices %d", strat, len(res.Weights), len(res.Indices))
		}
		var sum float64
		for _, wt := range res.Weights {
			if wt < 0 {
				t.Fatalf("strategy %d: negative weight", strat)
			}
			sum += wt
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("strategy %d: weights sum to %f", strat, sum)
		}
	}
}

func TestTemplateWeighingPoolsUtility(t *testing.T) {
	// A selected instance representing many same-template instances should
	// get more weight than a singleton.
	cat := testCatalog()
	var sqls []string
	for i := 0; i < 10; i++ { // 10 instances of one template
		sqls = append(sqls, fmt.Sprintf("SELECT o_totalprice FROM orders WHERE o_orderkey = %d", i+1))
	}
	sqls = append(sqls, "SELECT c_custkey FROM customer WHERE c_nationkey = 3") // singleton
	w, err := workload.New(cat, sqls)
	if err != nil {
		t.Fatal(err)
	}
	cost.NewOptimizer(cat).FillCosts(w)

	res := New(DefaultOptions()).Compress(w, 2)
	if len(res.Indices) != 2 {
		t.Fatal("need 2 selections")
	}
	var wTemplate, wSingleton float64
	for i, idx := range res.Indices {
		if idx < 10 {
			wTemplate = res.Weights[i]
		} else {
			wSingleton = res.Weights[i]
		}
	}
	if wTemplate == 0 || wSingleton == 0 {
		t.Fatalf("expected one pick per cluster: %v", res.Indices)
	}
	if wTemplate <= wSingleton {
		t.Fatalf("template representative should outweigh singleton: %f <= %f", wTemplate, wSingleton)
	}
}

func TestUpdateStrategies(t *testing.T) {
	w := testWorkload(t)
	states := BuildStates(w, DefaultOptions())
	sel, other := states[0], states[1] // same template: similarity 1
	u0 := other.Utility

	applyUpdate(sel, other, UpdateNone)
	if other.Utility != u0 {
		t.Fatal("UpdateNone must not change utility")
	}

	applyUpdate(sel, other, UpdateUtilityOnly)
	if other.Utility >= u0 {
		t.Fatal("utility should shrink")
	}
	if other.Vec.Len() != other.OrigVec.Len() {
		t.Fatal("UtilityOnly must not touch features")
	}

	applyUpdate(sel, other, UpdateFeatureRemove)
	if !other.Vec.AllZero() {
		t.Fatalf("identical query should be fully covered: %v", other.Vec)
	}

	s2 := states[2]
	applyUpdate(sel, s2, UpdateWeightSubtract)
	if s2.Vec.Sum() >= s2.OrigVec.Sum() {
		t.Fatal("WeightSubtract should reduce feature mass")
	}
}

func TestFeatureResetKeepsSelecting(t *testing.T) {
	// With only 2 templates, feature-remove exhausts features quickly; the
	// reset (Algorithm 2 line 12) must still let us select k=6 queries.
	cat := testCatalog()
	var sqls []string
	for i := 0; i < 8; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT o_totalprice FROM orders WHERE o_orderkey = %d", i+1))
	}
	for i := 0; i < 8; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT c_custkey FROM customer WHERE c_nationkey = %d", i))
	}
	w, err := workload.New(cat, sqls)
	if err != nil {
		t.Fatal(err)
	}
	cost.NewOptimizer(cat).FillCosts(w)
	res := New(DefaultOptions()).Compress(w, 6)
	if len(res.Indices) != 6 {
		t.Fatalf("selected %d, want 6", len(res.Indices))
	}
	seen := map[int]bool{}
	for _, idx := range res.Indices {
		if seen[idx] {
			t.Fatalf("duplicate selection %d", idx)
		}
		seen[idx] = true
	}
}

func TestGreedyMonotoneBenefit(t *testing.T) {
	// The conditional benefit of successive picks should not increase when
	// updates are enabled (submodularity intuition, Theorem 2).
	w := testWorkload(t)
	res := New(DefaultOptions()).Compress(w, 6)
	for i := 1; i < len(res.SelectionBenefits); i++ {
		if res.SelectionBenefits[i] > res.SelectionBenefits[i-1]+0.3 {
			t.Fatalf("benefit jumped: %v", res.SelectionBenefits)
		}
	}
}

func TestVariantNames(t *testing.T) {
	if New(DefaultOptions()).Name() != "ISUM" {
		t.Fatal("default name")
	}
	if New(ISUMSOptions()).Name() != "ISUM-S" {
		t.Fatal("isum-s name")
	}
	if New(NoTableOptions()).Name() != "ISUM-NoTable" {
		t.Fatal("notable name")
	}
	ap := DefaultOptions()
	ap.Algorithm = AllPairs
	if New(ap).Name() != "ISUM-AllPairs" {
		t.Fatal("allpairs name")
	}
}

func TestExtractorModesMatchOptions(t *testing.T) {
	w := testWorkload(t)
	rule := BuildStates(w, DefaultOptions())
	statsOpts := ISUMSOptions()
	stats := BuildStates(w, statsOpts)
	// Feature supports agree, weights differ in general.
	if rule[12].Vec.Len() != stats[12].Vec.Len() {
		t.Fatalf("supports differ: %v vs %v", rule[12].Vec, stats[12].Vec)
	}
	_ = features.StatsBased
}

func TestCompressorOptionsAccessor(t *testing.T) {
	opts := ISUMSOptions()
	c := New(opts)
	if c.Options().Utility != UtilityCostSelectivity {
		t.Fatal("options accessor broken")
	}
}
