package core

import (
	"math"
	"testing"
)

// TestIncrementalSummaryMatchesRebuild drives greedy rounds by hand,
// maintaining the summary incrementally (RemoveSelected + ApplyDelta, the
// default path) while also rebuilding it from scratch each round, and
// asserts the two agree. Agreement is within float tolerance, not
// bit-exact: subtracting a contribution is not the bitwise inverse of
// never having added it, which is exactly the noise the selection loop's
// epsilon tie-break absorbs.
func TestIncrementalSummaryMatchesRebuild(t *testing.T) {
	for name, opts := range map[string]Options{
		"feature-remove":  DefaultOptions(),
		"weight-subtract": withUpdate(DefaultOptions(), UpdateWeightSubtract),
		"utility-only":    withUpdate(DefaultOptions(), UpdateUtilityOnly),
		"isum-s":          ISUMSOptions(),
	} {
		t.Run(name, func(t *testing.T) {
			w := testWorkload(t)
			states := BuildStates(w, opts)
			inc := BuildSummary(states)

			for round := 0; round < 8; round++ {
				rebuilt := BuildSummary(states)
				if d := math.Abs(rebuilt.TotalUtility - inc.TotalUtility); d > 1e-9 {
					t.Fatalf("round %d: total utility drifted by %g (inc %v, rebuilt %v)",
						round, d, inc.TotalUtility, rebuilt.TotalUtility)
				}
				rebuilt.V.Each(func(k uint32, want float64) {
					got, _ := inc.V.Get(k)
					if d := math.Abs(got - want); d > 1e-9 {
						t.Fatalf("round %d: V[%d] drifted by %g (inc %v, rebuilt %v)",
							round, k, d, got, want)
					}
				})
				// Residue entries the incremental summary keeps at ~0 must
				// actually be ~0.
				inc.V.Each(func(k uint32, got float64) {
					if _, ok := rebuilt.V.Get(k); !ok && math.Abs(got) > 1e-9 {
						t.Fatalf("round %d: incremental residue V[%d] = %v", round, k, got)
					}
				})

				// Select the benefit argmax, as selectGreedy would.
				best := -1
				bestB := -1.0
				for i, s := range states {
					if s.Selected || s.Vec.AllZero() {
						continue
					}
					if b := BenefitSummary(s, rebuilt); b > bestB+1e-9 {
						bestB, best = b, i
					}
				}
				if best < 0 {
					break
				}
				sel := states[best]
				sel.Selected = true
				inc.RemoveSelected(sel)
				for _, s := range states {
					if s.Selected {
						continue
					}
					if r := applyUpdateWithDelta(sel, s, opts.Update, true); r.hasDelta {
						inc.ApplyDelta(r.util, r.vec)
						r.vec.Release()
					}
				}
			}
		})
	}
}

// TestRebuildSummaryFlagEquivalence checks the debug flag end to end: the
// incremental default and the per-round rebuild select the same queries
// with the same weights.
func TestRebuildSummaryFlagEquivalence(t *testing.T) {
	w := testWorkload(t)
	incOpts := DefaultOptions()
	rebOpts := DefaultOptions()
	rebOpts.RebuildSummary = true

	for _, k := range []int{1, 4, 8, 16} {
		incRes := New(incOpts).Compress(w, k)
		rebRes := New(rebOpts).Compress(w, k)
		if len(incRes.Indices) != len(rebRes.Indices) {
			t.Fatalf("k=%d: selected %d vs %d queries", k, len(incRes.Indices), len(rebRes.Indices))
		}
		for i := range incRes.Indices {
			if incRes.Indices[i] != rebRes.Indices[i] {
				t.Fatalf("k=%d: selection diverged at position %d: %v vs %v",
					k, i, incRes.Indices, rebRes.Indices)
			}
			if d := math.Abs(incRes.Weights[i] - rebRes.Weights[i]); d > 1e-9 {
				t.Fatalf("k=%d: weight %d drifted by %g", k, i, d)
			}
			if d := math.Abs(incRes.SelectionBenefits[i] - rebRes.SelectionBenefits[i]); d > 1e-9 {
				t.Fatalf("k=%d: selection benefit %d drifted by %g", k, i, d)
			}
		}
	}
}

func withUpdate(o Options, u UpdateStrategy) Options {
	o.Update = u
	return o
}
