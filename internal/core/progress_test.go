package core

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"isum/internal/telemetry"
)

// eventLog is a concurrency-safe ProgressFunc that records every event —
// the shard fan-out and build sweeps emit from worker goroutines.
type eventLog struct {
	mu     sync.Mutex
	events []telemetry.ProgressEvent
}

func (l *eventLog) observe(e telemetry.ProgressEvent) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) phases() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := map[string]int{}
	for _, e := range l.events {
		m[e.Phase]++
	}
	return m
}

// TestProgressDoesNotChangeOutput pins the observer contract from
// Options.Progress: wiring a progress sink must leave the selection
// bitwise identical — indices, weights, and benefits — on the plain,
// sharded, and template-consed paths, while actually delivering events
// for the phases each path runs.
func TestProgressDoesNotChangeOutput(t *testing.T) {
	w := generatorWorkload(t, "tpcds", 80)
	const k = 16
	cases := []struct {
		name       string
		configure  func(*Options)
		wantPhases []string
	}{
		{
			name:       "plain",
			configure:  func(o *Options) {},
			wantPhases: []string{"core/build-states", "core/greedy", "core/weigh"},
		},
		{
			name:       "sharded",
			configure:  func(o *Options) { o.Shards = 4; o.Parallelism = 4 },
			wantPhases: []string{"core/build-states", "core/shard-fanout", "core/shard-merge", "core/weigh"},
		},
		{
			name:       "consed",
			configure:  func(o *Options) { o.ConsTemplates = true },
			wantPhases: []string{"core/build-consed-states", "core/greedy", "core/weigh"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			tc.configure(&opts)
			base := New(opts).Compress(w, k)

			withProgress := opts
			log := &eventLog{}
			withProgress.Progress = log.observe
			got := New(withProgress).Compress(w, k)

			if len(base.Indices) == 0 {
				t.Fatal("baseline selected nothing")
			}
			if len(got.Indices) != len(base.Indices) {
				t.Fatalf("selection count %d vs %d", len(got.Indices), len(base.Indices))
			}
			for i := range got.Indices {
				if got.Indices[i] != base.Indices[i] ||
					math.Float64bits(got.Weights[i]) != math.Float64bits(base.Weights[i]) ||
					math.Float64bits(got.SelectionBenefits[i]) != math.Float64bits(base.SelectionBenefits[i]) {
					t.Fatalf("progress changed the output at %d: got (%d, %x, %x) want (%d, %x, %x)",
						i, got.Indices[i], math.Float64bits(got.Weights[i]), math.Float64bits(got.SelectionBenefits[i]),
						base.Indices[i], math.Float64bits(base.Weights[i]), math.Float64bits(base.SelectionBenefits[i]))
				}
			}
			if got.Rounds != base.Rounds {
				t.Fatalf("rounds %d vs %d", got.Rounds, base.Rounds)
			}
			phases := log.phases()
			if len(log.events) == 0 {
				t.Fatal("no progress events delivered")
			}
			for _, p := range tc.wantPhases {
				if phases[p] == 0 {
					t.Errorf("no events for phase %q (saw %v)", p, phases)
				}
			}
		})
	}
}

// TestProgressGreedyEventShape: greedy-round events carry a monotonic
// round counter, k-so-far, and a non-decreasing cumulative benefit.
func TestProgressGreedyEventShape(t *testing.T) {
	w := generatorWorkload(t, "tpch", 60)
	opts := DefaultOptions()
	log := &eventLog{}
	opts.Progress = log.observe
	res := New(opts).Compress(w, 12)

	var greedy []telemetry.ProgressEvent
	for _, e := range log.events {
		if e.Phase == "core/greedy" {
			greedy = append(greedy, e)
		}
	}
	if len(greedy) != res.Rounds {
		t.Fatalf("%d greedy events, want one per round (%d)", len(greedy), res.Rounds)
	}
	prevBenefit := 0.0
	for i, e := range greedy {
		if e.Round != i+1 {
			t.Errorf("event %d round = %d, want %d", i, e.Round, i+1)
		}
		if e.Done != i+1 {
			t.Errorf("event %d done (k-so-far) = %d, want %d", i, e.Done, i+1)
		}
		if e.Total != 12 {
			t.Errorf("event %d total = %d, want 12", i, e.Total)
		}
		if e.Benefit < prevBenefit {
			t.Errorf("event %d benefit %v < previous %v (must be cumulative)", i, e.Benefit, prevBenefit)
		}
		prevBenefit = e.Benefit
	}
}

// TestDebugServerUnderShardedCompression is the -race hammer: a live
// debug server is scraped continuously while a sharded, parallel,
// progress-instrumented compression runs against the same registry and
// tracker. Any unsynchronised access between the HTTP handlers and the
// worker pool trips the race detector.
func TestDebugServerUnderShardedCompression(t *testing.T) {
	w := generatorWorkload(t, "tpcds", 120)
	reg := telemetry.New()
	tr := telemetry.NewTracker()
	srv, err := telemetry.Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrapeErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/progress", "/healthz"} {
				resp, err := http.Get("http://" + srv.Addr() + path)
				if err != nil {
					select {
					case scrapeErr <- err:
					default:
					}
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err == nil && path == "/metrics" && !strings.HasSuffix(string(body), "# EOF\n") {
					err = fmt.Errorf("mid-run /metrics not terminated: %q", string(body))
				}
				if err != nil {
					select {
					case scrapeErr <- err:
					default:
					}
					return
				}
			}
		}
	}()

	opts := DefaultOptions()
	opts.Shards = 4
	opts.Parallelism = 4
	opts.Telemetry = reg
	opts.Progress = tr.Observe
	res := New(opts).Compress(w, 16)
	close(stop)
	wg.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatalf("scrape failed during compression: %v", err)
	default:
	}
	if len(res.Indices) == 0 {
		t.Fatal("compression under scrape selected nothing")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
