package core

import (
	"isum/internal/catalog"
	"isum/internal/features"
	"isum/internal/workload"
)

// Incremental maintains a bounded compressed pool over a query stream — the
// future-work direction of Section 10, where the tuner consumes queries
// incrementally (e.g. under a time budget) and ISUM cannot pre-process the
// whole input.
//
// On each Observe call, the new arrivals join the current pool of weighted
// representatives and the union is recompressed to the pool size. Carried
// representatives keep their accumulated weights, so their utilities keep
// reflecting the workload mass they stand for. Tuning Pool() at any time
// approximates tuning everything observed so far.
type Incremental struct {
	comp *Compressor
	k    int
	cat  *catalog.Catalog
	pool *workload.Workload
	seen int
}

// NewIncremental returns an incremental compressor keeping at most k
// representatives.
func NewIncremental(cat *catalog.Catalog, opts Options, k int) *Incremental {
	if k < 1 {
		k = 1
	}
	if opts.Interner == nil {
		// One dictionary across every recompression: carried representatives
		// keep stable feature IDs, and the intern table only grows by each
		// batch's genuinely new columns.
		opts.Interner = features.NewInterner()
	}
	return &Incremental{
		comp: New(opts),
		k:    k,
		cat:  cat,
		pool: &workload.Workload{Catalog: cat},
	}
}

// Observe folds a batch of queries (with costs filled) into the pool and
// returns the compression result of the recompression step.
func (ic *Incremental) Observe(batch []*workload.Query) *Result {
	ic.seen += len(batch)
	cand := &workload.Workload{Catalog: ic.cat}
	cand.Queries = append(cand.Queries, ic.pool.Queries...)
	cand.Queries = append(cand.Queries, batch...)
	res := ic.comp.Compress(cand, ic.k)
	ic.pool = cand.WeightedSubset(res.Indices, res.Weights)
	return res
}

// Pool returns the current compressed workload (copies are returned by
// construction; callers may weigh or tune it freely).
func (ic *Incremental) Pool() *workload.Workload { return ic.pool }

// Seen returns the number of queries observed so far.
func (ic *Incremental) Seen() int { return ic.seen }
