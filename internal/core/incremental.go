package core

import (
	"context"

	"isum/internal/catalog"
	"isum/internal/features"
	"isum/internal/workload"
)

// Incremental maintains a bounded compressed pool over a query stream — the
// future-work direction of Section 10, where the tuner consumes queries
// incrementally (e.g. under a time budget) and ISUM cannot pre-process the
// whole input.
//
// On each Observe call, the new arrivals join the current pool of weighted
// representatives and the union is recompressed to the pool size. Carried
// representatives keep their accumulated weights, so their utilities keep
// reflecting the workload mass they stand for. Tuning Pool() at any time
// approximates tuning everything observed so far.
type Incremental struct {
	comp *Compressor
	k    int
	cat  *catalog.Catalog
	pool *workload.Workload
	seen int
}

// NewIncremental returns an incremental compressor keeping at most k
// representatives.
func NewIncremental(cat *catalog.Catalog, opts Options, k int) *Incremental {
	if k < 1 {
		k = 1
	}
	if opts.Interner == nil {
		// One dictionary across every recompression: carried representatives
		// keep stable feature IDs, and the intern table only grows by each
		// batch's genuinely new columns.
		opts.Interner = features.NewInterner()
	}
	return &Incremental{
		comp: New(opts),
		k:    k,
		cat:  cat,
		pool: &workload.Workload{Catalog: cat},
	}
}

// RestoreIncremental returns an incremental compressor whose pool and
// seen count are restored from previously captured state (e.g. a durable
// snapshot). pool may be nil for an empty pool; it is adopted as-is, so
// callers hand over ownership. To reproduce a never-crashed run exactly,
// opts.Interner must also be restored to the dictionary the original run
// had built (internal/durable snapshots it for this reason).
func RestoreIncremental(cat *catalog.Catalog, opts Options, k int, pool *workload.Workload, seen int) *Incremental {
	ic := NewIncremental(cat, opts, k)
	if pool != nil {
		pool.Catalog = cat
		ic.pool = pool
	}
	if seen > 0 {
		ic.seen = seen
	}
	return ic
}

// Observe folds a batch of queries (with costs filled) into the pool and
// returns the compression result of the recompression step.
func (ic *Incremental) Observe(batch []*workload.Query) *Result {
	res, err := ic.ObserveContext(context.Background(), batch)
	if err != nil {
		panic(err)
	}
	return res
}

// ObserveContext is Observe with the anytime contract (DESIGN.md §9):
// when ctx is cancelled or its deadline expires mid-recompression, the
// best-so-far selection over pool ∪ batch becomes the new pool — a valid
// weighted compressed workload, never an error — and the returned Result
// has Partial set. When cancellation strikes before any selection was
// made, the previous pool is kept unchanged (the batch still counts as
// seen: it was observed, merely not folded into a new selection). The
// error is reserved for real failures (contained worker panics), which
// leave the pool and seen count untouched.
func (ic *Incremental) ObserveContext(ctx context.Context, batch []*workload.Query) (*Result, error) {
	cand := &workload.Workload{Catalog: ic.cat}
	cand.Queries = append(cand.Queries, ic.pool.Queries...)
	cand.Queries = append(cand.Queries, batch...)
	res, err := ic.comp.CompressContext(ctx, cand, ic.k)
	if err != nil {
		return nil, err
	}
	ic.seen += len(batch)
	if res.Partial && len(res.Indices) == 0 {
		return res, nil
	}
	ic.pool = cand.WeightedSubset(res.Indices, res.Weights)
	return res, nil
}

// Pool returns the current compressed workload (copies are returned by
// construction; callers may weigh or tune it freely).
func (ic *Incremental) Pool() *workload.Workload { return ic.pool }

// Seen returns the number of queries observed so far.
func (ic *Incremental) Seen() int { return ic.seen }
