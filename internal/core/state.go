package core

import (
	"context"

	"isum/internal/features"
	"isum/internal/parallel"
	"isum/internal/workload"
)

// QueryState is the mutable per-query state of a greedy run: the current
// (possibly updated) feature vector and utility, plus the originals for
// resets and weighing.
type QueryState struct {
	// Index is the query's position in the input workload.
	Index int
	// Query is the underlying workload query.
	Query *workload.Query

	// Vec is the current feature vector; mutated by update strategies.
	Vec features.Vector
	// Utility is the current (discounted) normalised utility U(q).
	Utility float64

	// OrigVec and OrigUtility are the values before any updates.
	OrigVec     features.Vector
	OrigUtility float64

	// Selected marks membership in the compressed workload.
	Selected bool
}

// Similarity returns the weighted-Jaccard similarity between two query
// states' current features.
func (s *QueryState) Similarity(t *QueryState) float64 {
	return features.WeightedJaccard(s.Vec, t.Vec)
}

// delta computes Δ(q) under the utility mode.
func delta(q *workload.Query, mode UtilityMode) float64 {
	switch mode {
	case UtilityCostSelectivity:
		sel := 1.0
		if q.Info != nil {
			sel = q.Info.AvgFilterJoinSelectivity()
		}
		return (1 - sel) * q.Cost
	default:
		return q.Cost
	}
}

// BuildStates computes the initial per-query states for a workload:
// feature vectors via the configured extractor and normalised utilities
// U(q) = Δ(q)/ΣΔ (Definition 2). Feature extraction and Δ computation fan
// out across opts.Parallelism workers; ΣΔ is reduced serially in query
// order, so utilities are bit-identical at any parallelism.
func BuildStates(w *workload.Workload, opts Options) []*QueryState {
	states, err := BuildStatesContext(context.Background(), w, opts)
	if err != nil {
		panic(err)
	}
	return states
}

// BuildStatesContext is BuildStates with cancellation: a cancelled ctx
// aborts the feature-extraction sweep and returns the context's error
// (states built so far are discarded — partially built states are not
// meaningful), and a contained worker panic surfaces as a *PanicError.
func BuildStatesContext(ctx context.Context, w *workload.Workload, opts Options) ([]*QueryState, error) {
	sp := opts.Telemetry.Start("core/build-states")
	defer sp.End()
	sp.SetAttr("n", len(w.Queries))

	ex := opts.extractor(w.Catalog)
	states := make([]*QueryState, len(w.Queries))
	deltas := make([]float64, len(w.Queries))
	err := parallel.ForEach(ctx, parallel.Workers(opts.Parallelism), len(w.Queries), func(i int) {
		q := w.Queries[i]
		deltas[i] = delta(q, opts.Utility)
		vec := ex.Features(q)
		states[i] = &QueryState{
			Index:   i,
			Query:   q,
			Vec:     vec.Clone(),
			OrigVec: vec,
		}
	})
	if err != nil {
		return nil, err
	}
	var totalDelta float64
	for _, d := range deltas {
		totalDelta += d
	}
	for i, s := range states {
		if totalDelta > 0 {
			s.Utility = deltas[i] / totalDelta
		}
		s.OrigUtility = s.Utility
	}
	return states, nil
}

// applyUpdate updates an unselected query's state given a newly selected
// query (Section 4.3): the utility always shrinks by the influence
// F_qs(q) = S(qs,q)·U(q); the features change per the strategy.
func applyUpdate(sel, q *QueryState, strategy UpdateStrategy) {
	if strategy == UpdateNone {
		return
	}
	sim := sel.Similarity(q)
	q.Utility -= q.Utility * sim
	if q.Utility < 0 {
		q.Utility = 0
	}
	switch strategy {
	case UpdateWeightSubtract:
		// Reduce q's feature weights by the selected query's weights,
		// scaled by similarity (option 1 in Section 4.3).
		q.Vec.SubClamped(sel.Vec.Clone().Scale(sim))
	case UpdateFeatureRemove:
		// Zero the columns covered by the selected query (option 2).
		q.Vec.ZeroShared(sel.Vec)
	}
}

// summaryDelta is the change one applyUpdate call makes to a query's
// contribution (Utility·Vec) to the workload summary, recorded so the
// summary can be maintained incrementally instead of rebuilt each round.
type summaryDelta struct {
	util float64
	vec  features.Vector
}

// applyUpdateWithDelta runs applyUpdate and, when track is set, returns the
// contribution delta (nil when nothing changed). Safe to call concurrently
// for distinct q: it reads sel and mutates only q.
func applyUpdateWithDelta(sel, q *QueryState, strategy UpdateStrategy, track bool) *summaryDelta {
	if !track {
		applyUpdate(sel, q, strategy)
		return nil
	}
	if strategy == UpdateNone {
		return nil
	}
	oldUtil := q.Utility
	// Snapshot the only entries applyUpdate can change: keys of sel.Vec.
	touched := make(map[string]float64, len(sel.Vec))
	for k := range sel.Vec {
		touched[k] = q.Vec[k]
	}
	applyUpdate(sel, q, strategy)
	newUtil := q.Utility

	d := &summaryDelta{util: newUtil - oldUtil, vec: features.Vector{}}
	for k, oldW := range touched {
		if dd := newUtil*q.Vec[k] - oldUtil*oldW; dd != 0 {
			d.vec[k] = dd
		}
	}
	if newUtil != oldUtil {
		// A utility change rescales every untouched entry too.
		for k, w := range q.Vec {
			if _, ok := touched[k]; ok {
				continue
			}
			if dd := (newUtil - oldUtil) * w; dd != 0 {
				d.vec[k] = dd
			}
		}
	}
	if d.util == 0 && len(d.vec) == 0 {
		return nil
	}
	return d
}

// resetIfAllZero restores original features for unselected queries when
// every remaining query's features are exhausted (Algorithm 2, line 12).
// Returns whether a reset happened.
func resetIfAllZero(states []*QueryState) bool {
	for _, s := range states {
		if !s.Selected && !s.Vec.AllZero() {
			return false
		}
	}
	any := false
	for _, s := range states {
		if !s.Selected {
			s.Vec = s.OrigVec.Clone()
			any = true
		}
	}
	return any
}
