package core

import (
	"context"
	"sync"
	"sync/atomic"

	"isum/internal/features"
	"isum/internal/parallel"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

// progressStride is how many per-query units a worker sweep completes
// between progress emissions — coarse enough that emission cost is
// invisible next to feature extraction, fine enough for a live rate.
const progressStride = 1024

// QueryState is the mutable per-query state of a greedy run: the current
// (possibly updated) feature vector and utility, plus the originals for
// resets and weighing.
type QueryState struct {
	// Index is the query's position in the input workload.
	Index int
	// Query is the underlying workload query.
	Query *workload.Query

	// Vec is the current feature vector; mutated by update strategies.
	Vec features.SparseVec
	// Utility is the current (discounted) normalised utility U(q).
	Utility float64

	// OrigVec and OrigUtility are the values before any updates.
	OrigVec     features.SparseVec
	OrigUtility float64

	// Selected marks membership in the compressed workload.
	Selected bool

	// Interner is the workload-scoped feature dictionary shared by every
	// state built in the same BuildStates call; it maps the IDs in
	// Vec/OrigVec back to "table.column" keys.
	Interner *features.Interner
}

// Similarity returns the weighted-Jaccard similarity between two query
// states' current features.
//
//lint:hotpath
func (s *QueryState) Similarity(t *QueryState) float64 {
	return s.Vec.WeightedJaccard(t.Vec)
}

// delta computes Δ(q) under the utility mode.
func delta(q *workload.Query, mode UtilityMode) float64 {
	switch mode {
	case UtilityCostSelectivity:
		sel := 1.0
		if q.Info != nil {
			sel = q.Info.AvgFilterJoinSelectivity()
		}
		return (1 - sel) * q.Cost
	default:
		return q.Cost
	}
}

// BuildStates computes the initial per-query states for a workload:
// feature vectors via the configured extractor and normalised utilities
// U(q) = Δ(q)/ΣΔ (Definition 2). Feature extraction and Δ computation fan
// out across opts.Parallelism workers; ΣΔ is reduced serially in query
// order, so utilities are bit-identical at any parallelism.
func BuildStates(w *workload.Workload, opts Options) []*QueryState {
	states, err := BuildStatesContext(context.Background(), w, opts)
	if err != nil {
		panic(err)
	}
	return states
}

// BuildStatesContext is BuildStates with cancellation: a cancelled ctx
// aborts the feature-extraction sweep and returns the context's error
// (states built so far are discarded — partially built states are not
// meaningful), and a contained worker panic surfaces as a *PanicError.
//
// Extraction produces map-shaped vectors; their keys are interned into
// the workload dictionary (opts.Interner if set, else a fresh one) in a
// single serial batch, and the vectors are converted to sorted SparseVec
// form in a second parallel sweep. Batch interning is what makes IDs —
// and so every downstream merge-join — reproducible across runs.
func BuildStatesContext(ctx context.Context, w *workload.Workload, opts Options) ([]*QueryState, error) {
	sp := opts.Telemetry.Start("core/build-states")
	defer sp.End()
	sp.SetAttr("n", len(w.Queries))

	ex := opts.extractor(w.Catalog)
	in := opts.Interner
	if in == nil {
		in = features.NewInterner()
	}
	states := make([]*QueryState, len(w.Queries))
	deltas := make([]float64, len(w.Queries))
	vecs := make([]features.Vector, len(w.Queries))
	workers := parallel.Workers(opts.Parallelism)
	var built atomic.Int64 // progress stride counter; workers emit, so Progress must be concurrency-safe
	err := parallel.ForEach(ctx, workers, len(w.Queries), func(i int) {
		q := w.Queries[i]
		deltas[i] = delta(q, opts.Utility)
		vecs[i] = ex.Features(q)
		if opts.Progress != nil {
			if d := built.Add(1); d%progressStride == 0 {
				opts.Progress(telemetry.ProgressEvent{
					Phase: "core/build-states", Done: int(d), Total: len(w.Queries),
				})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	opts.Progress.Emit(telemetry.ProgressEvent{
		Phase: "core/build-states", Done: len(w.Queries), Total: len(w.Queries),
	})
	in.AddVectors(vecs)
	sp.SetAttr("features", in.Len())
	err = parallel.ForEach(ctx, workers, len(w.Queries), func(i int) {
		sv := in.FromMap(vecs[i])
		states[i] = &QueryState{
			Index:    i,
			Query:    w.Queries[i],
			Vec:      sv.Clone(),
			OrigVec:  sv,
			Interner: in,
		}
	})
	if err != nil {
		return nil, err
	}
	var totalDelta float64
	for _, d := range deltas {
		totalDelta += d
	}
	for i, s := range states {
		if totalDelta > 0 {
			s.Utility = deltas[i] / totalDelta
		}
		s.OrigUtility = s.Utility
	}
	return states, nil
}

// applyUpdate updates an unselected query's state given a newly selected
// query (Section 4.3): the utility always shrinks by the influence
// F_qs(q) = S(qs,q)·U(q); the features change per the strategy.
//
//lint:hotpath
func applyUpdate(sel, q *QueryState, strategy UpdateStrategy) {
	if strategy == UpdateNone {
		return
	}
	sim := sel.Similarity(q)
	q.Utility -= q.Utility * sim
	if q.Utility < 0 {
		q.Utility = 0
	}
	switch strategy {
	case UpdateWeightSubtract:
		// Reduce q's feature weights by the selected query's weights,
		// scaled by similarity (option 1 in Section 4.3). The fused
		// kernel subtracts sel's weights scaled by sim in place — no
		// Clone().Scale(sim) temporary.
		q.Vec.SubClampedScaled(sel.Vec, sim)
	case UpdateFeatureRemove:
		// Zero the columns covered by the selected query (option 2).
		q.Vec.ZeroShared(sel.Vec)
	}
}

// updateResult is what one applyUpdateWithDelta call reports back to the
// greedy loop: the query's summary-contribution delta (when tracked and
// non-empty) and whether the update exhausted the query's features (so
// the loop can maintain its live-vector count without rescanning).
type updateResult struct {
	// util and vec are the change to the query's contribution
	// (Utility·Vec) to the workload summary; vec owns pooled storage and
	// must be Released after folding. Only meaningful when hasDelta.
	util     float64
	vec      features.SparseVec
	hasDelta bool
	// emptied is set when the update took the vector from live
	// (some weight > 0) to exhausted.
	emptied bool
}

// sharedScratch pools the pre-update weight snapshots taken by
// applyUpdateWithDelta.
var sharedScratch = sync.Pool{New: func() any { return new([]float64) }}

// applyUpdateWithDelta runs applyUpdate and, when track is set, computes
// the contribution delta with the merge-join kernels: the only entries an
// update can change are the IDs of sel.Vec, so it snapshots q's weights
// at those IDs, applies the update, and diffs. Safe to call concurrently
// for distinct q: it reads sel and mutates only q.
//
//lint:hotpath
func applyUpdateWithDelta(sel, q *QueryState, strategy UpdateStrategy, track bool) updateResult {
	if strategy == UpdateNone {
		return updateResult{}
	}
	wasLive := !q.Vec.AllZero()
	if !track {
		applyUpdate(sel, q, strategy)
		return updateResult{emptied: wasLive && q.Vec.AllZero()}
	}
	oldUtil := q.Utility
	buf := sharedScratch.Get().(*[]float64)
	shared := q.Vec.SharedWeights(sel.Vec, (*buf)[:0])
	applyUpdate(sel, q, strategy)
	newUtil := q.Utility
	d := features.UpdateDelta(q.Vec, sel.Vec, shared, oldUtil, newUtil)
	*buf = shared[:0]
	sharedScratch.Put(buf)

	res := updateResult{emptied: wasLive && q.Vec.AllZero()}
	if newUtil-oldUtil == 0 && d.Len() == 0 {
		d.Release()
		return res
	}
	res.util = newUtil - oldUtil
	res.vec = d
	res.hasDelta = true
	return res
}

// resetIfAllZero restores original features for unselected queries when
// every remaining query's features are exhausted (Algorithm 2, line 12).
// live is the greedy loop's maintained count of unselected states with
// non-exhausted vectors, so the common case is a counter check instead
// of an O(n) scan. Returns whether a reset happened and the new live
// count.
func resetIfAllZero(states []*QueryState, live int) (bool, int) {
	if live > 0 {
		return false, live
	}
	any := false
	n := 0
	for _, s := range states {
		if s.Selected {
			continue
		}
		s.Vec.Release()
		s.Vec = s.OrigVec.Clone()
		any = true
		if !s.Vec.AllZero() {
			n++
		}
	}
	return any, n
}

// countLive returns the number of unselected states whose vectors still
// carry weight — the initial value for the greedy loop's live counter.
func countLive(states []*QueryState) int {
	n := 0
	for _, s := range states {
		if !s.Selected && !s.Vec.AllZero() {
			n++
		}
	}
	return n
}
