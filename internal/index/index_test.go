package index

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"isum/internal/catalog"
)

func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	t := catalog.NewTable("orders", 100000)
	t.AddColumn(&catalog.Column{Name: "o_orderkey", Type: catalog.TypeInt, DistinctCount: 100000})
	t.AddColumn(&catalog.Column{Name: "o_custkey", Type: catalog.TypeInt, DistinctCount: 10000})
	t.AddColumn(&catalog.Column{Name: "o_orderdate", Type: catalog.TypeDate, DistinctCount: 2400})
	t.AddColumn(&catalog.Column{Name: "o_comment", Type: catalog.TypeString})
	cat.AddTable(t)
	return cat
}

func TestIndexID(t *testing.T) {
	a := New("Orders", "O_CustKey", "o_orderdate")
	b := New("orders", "o_custkey", "O_ORDERDATE")
	if a.ID() != b.ID() {
		t.Fatalf("IDs should be case-insensitive: %q vs %q", a.ID(), b.ID())
	}
	c := New("orders", "o_orderdate", "o_custkey")
	if a.ID() == c.ID() {
		t.Fatal("key order must matter")
	}
	d := a.WithIncludes("o_comment")
	e := a.WithIncludes("O_COMMENT")
	if d.ID() != e.ID() {
		t.Fatal("include order/case should not matter")
	}
	if !strings.Contains(d.ID(), "include") {
		t.Fatalf("ID should mention includes: %q", d.ID())
	}
}

func TestWithIncludesDedup(t *testing.T) {
	ix := New("orders", "o_custkey").WithIncludes("o_custkey", "o_comment", "o_comment")
	if len(ix.Includes) != 1 || ix.Includes[0] != "o_comment" {
		t.Fatalf("includes = %v", ix.Includes)
	}
}

func TestHasKeyPrefixAndCovers(t *testing.T) {
	ix := New("orders", "o_custkey", "o_orderdate").WithIncludes("o_comment")
	if !ix.HasKeyPrefix([]string{"O_CUSTKEY"}) {
		t.Fatal("single prefix failed")
	}
	if !ix.HasKeyPrefix([]string{"o_custkey", "o_orderdate"}) {
		t.Fatal("full prefix failed")
	}
	if ix.HasKeyPrefix([]string{"o_orderdate"}) {
		t.Fatal("non-leading column is not a prefix")
	}
	if ix.HasKeyPrefix([]string{"o_custkey", "o_orderdate", "o_comment"}) {
		t.Fatal("over-long prefix should fail")
	}
	if !ix.Covers([]string{"o_comment", "o_custkey"}) {
		t.Fatal("covers failed")
	}
	if ix.Covers([]string{"o_orderkey"}) {
		t.Fatal("covers should fail for absent column")
	}
}

func TestIndexSizeBytes(t *testing.T) {
	cat := testCatalog()
	small := New("orders", "o_custkey")
	big := New("orders", "o_custkey").WithIncludes("o_comment", "o_orderdate")
	if small.SizeBytes(cat) <= 0 {
		t.Fatal("size must be positive")
	}
	if big.SizeBytes(cat) <= small.SizeBytes(cat) {
		t.Fatal("wider index must be larger")
	}
	if New("missing", "x").SizeBytes(cat) != 0 {
		t.Fatal("unknown table should size 0")
	}
}

func TestIndexValidate(t *testing.T) {
	cat := testCatalog()
	if err := New("orders", "o_custkey").Validate(cat); err != nil {
		t.Fatal(err)
	}
	if err := New("orders").Validate(cat); err == nil {
		t.Fatal("no keys should fail")
	}
	if err := New("nope", "x").Validate(cat); err == nil {
		t.Fatal("unknown table should fail")
	}
	if err := New("orders", "nope").Validate(cat); err == nil {
		t.Fatal("unknown column should fail")
	}
	if err := New("orders", "o_custkey", "o_custkey").Validate(cat); err == nil {
		t.Fatal("duplicate column should fail")
	}
}

func TestConfigurationBasics(t *testing.T) {
	cfg := NewConfiguration()
	a := New("orders", "o_custkey")
	b := New("orders", "o_orderdate")
	if !cfg.Add(a) || !cfg.Add(b) {
		t.Fatal("adds should succeed")
	}
	if cfg.Add(New("ORDERS", "O_CUSTKEY")) {
		t.Fatal("duplicate add should fail")
	}
	if cfg.Len() != 2 {
		t.Fatalf("len = %d", cfg.Len())
	}
	if !cfg.Contains(a) {
		t.Fatal("contains failed")
	}
	if got := len(cfg.ForTable("orders")); got != 2 {
		t.Fatalf("for-table = %d", got)
	}
	if !cfg.Remove(a) || cfg.Remove(a) {
		t.Fatal("remove semantics broken")
	}
	if cfg.Len() != 1 {
		t.Fatalf("len after remove = %d", cfg.Len())
	}
}

func TestConfigurationCloneIsolation(t *testing.T) {
	cfg := NewConfiguration(New("orders", "o_custkey"))
	cl := cfg.Clone()
	cl.Add(New("orders", "o_orderdate"))
	if cfg.Len() != 1 || cl.Len() != 2 {
		t.Fatal("clone not isolated")
	}
	w := cfg.With(New("orders", "o_orderdate"))
	if cfg.Len() != 1 || w.Len() != 2 {
		t.Fatal("With not isolated")
	}
}

func TestConfigurationUnionAndFingerprint(t *testing.T) {
	a := NewConfiguration(New("orders", "o_custkey"))
	b := NewConfiguration(New("orders", "o_orderdate"), New("orders", "o_custkey"))
	u := a.Union(b)
	if u.Len() != 2 {
		t.Fatalf("union len = %d", u.Len())
	}
	u2 := b.Union(a)
	if u.Fingerprint() != u2.Fingerprint() {
		t.Fatal("fingerprint should be order-independent")
	}
	if NewConfiguration().Fingerprint() != "" {
		t.Fatal("empty fingerprint should be empty string")
	}
}

func TestNilConfigurationSafe(t *testing.T) {
	var c *Configuration
	if c.Len() != 0 || c.Contains(New("t", "x")) || c.ForTable("t") != nil {
		t.Fatal("nil configuration should behave as empty")
	}
	if c.SizeBytes(testCatalog()) != 0 {
		t.Fatal("nil size should be 0")
	}
	if got := c.Clone().Len(); got != 0 {
		t.Fatalf("nil clone len = %d", got)
	}
}

// Property: ID is a total identity — equal IDs imply Covers-equivalence on
// key sets.
func TestIndexIDProperty(t *testing.T) {
	f := func(ks1, ks2 []byte) bool {
		mk := func(ks []byte) Index {
			keys := make([]string, 0, len(ks)%5+1)
			for i := 0; i <= len(ks)%5 && i < len(ks); i++ {
				keys = append(keys, string('a'+ks[i]%26))
			}
			if len(keys) == 0 {
				keys = []string{"a"}
			}
			return New("t", keys...)
		}
		a, b := mk(ks1), mk(ks2)
		if a.ID() == b.ID() {
			return a.Covers(b.Keys) && b.Covers(a.Keys)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexesDeterministicOrder(t *testing.T) {
	cfg := NewConfiguration(
		New("b", "y"), New("a", "x"), New("c", "z"),
	)
	first := cfg.Indexes()
	for i := 0; i < 5; i++ {
		again := cfg.Indexes()
		for j := range first {
			if first[j].ID() != again[j].ID() {
				t.Fatal("index order not deterministic")
			}
		}
	}
}

func TestIndexStringAndLeadingKey(t *testing.T) {
	ix := New("orders", "o_custkey", "o_orderdate").WithIncludes("o_comment")
	s := ix.String()
	if !strings.Contains(s, "orders") || !strings.Contains(s, "INCLUDE") {
		t.Fatalf("string = %q", s)
	}
	if ix.LeadingKey() != "o_custkey" {
		t.Fatalf("leading = %q", ix.LeadingKey())
	}
	if New("t").LeadingKey() != "" {
		t.Fatal("empty index leading key")
	}
}

func TestConfigurationSizeBytes(t *testing.T) {
	cat := testCatalog()
	cfg := NewConfiguration(
		New("orders", "o_custkey"),
		New("orders", "o_orderdate").WithIncludes("o_comment"),
	)
	var want int64
	for _, ix := range cfg.Indexes() {
		want += ix.SizeBytes(cat)
	}
	if got := cfg.SizeBytes(cat); got != want || got <= 0 {
		t.Fatalf("size = %d, want %d", got, want)
	}
}

func TestConfigurationJSONRoundTrip(t *testing.T) {
	cfg := NewConfiguration(
		New("orders", "o_custkey", "o_orderdate").WithIncludes("o_comment"),
		New("orders", "o_orderkey"),
	)
	var buf bytes.Buffer
	if err := cfg.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfigurationJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != cfg.Fingerprint() {
		t.Fatalf("fingerprints differ:\n%s\n%s", got.Fingerprint(), cfg.Fingerprint())
	}
}

func TestLoadConfigurationJSONErrors(t *testing.T) {
	if _, err := LoadConfigurationJSON(strings.NewReader("[{bad")); err == nil {
		t.Fatal("bad JSON should fail")
	}
	if _, err := LoadConfigurationJSON(strings.NewReader(`[{"table":"","keys":[]}]`)); err == nil {
		t.Fatal("missing table/keys should fail")
	}
}
