package index

import (
	"encoding/json"
	"fmt"
	"io"
)

type jsonIndex struct {
	Table    string   `json:"table"`
	Keys     []string `json:"keys"`
	Includes []string `json:"includes,omitempty"`
}

// SaveJSON writes the configuration as a JSON array of index definitions,
// in deterministic order.
func (c *Configuration) SaveJSON(w io.Writer) error {
	out := make([]jsonIndex, 0, c.Len())
	for _, ix := range c.Indexes() {
		out = append(out, jsonIndex{Table: ix.Table, Keys: ix.Keys, Includes: ix.Includes})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// LoadConfigurationJSON reads a configuration written by SaveJSON.
func LoadConfigurationJSON(r io.Reader) (*Configuration, error) {
	var in []jsonIndex
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("index: decoding configuration JSON: %w", err)
	}
	cfg := NewConfiguration()
	for i, ji := range in {
		if ji.Table == "" || len(ji.Keys) == 0 {
			return nil, fmt.Errorf("index: entry %d: table and keys are required", i)
		}
		cfg.Add(New(ji.Table, ji.Keys...).WithIncludes(ji.Includes...))
	}
	return cfg, nil
}
