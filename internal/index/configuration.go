package index

import (
	"sort"
	"strings"

	"isum/internal/catalog"
)

// Configuration is a set of indexes — the unit the advisor enumerates over
// and the what-if optimizer costs against. The zero value is an empty
// configuration (base tables only).
type Configuration struct {
	byID    map[string]Index
	byTable map[string][]Index
}

// NewConfiguration returns a configuration containing the given indexes
// (duplicates by ID collapse).
func NewConfiguration(indexes ...Index) *Configuration {
	c := &Configuration{
		byID:    make(map[string]Index),
		byTable: make(map[string][]Index),
	}
	for _, ix := range indexes {
		c.Add(ix)
	}
	return c
}

// Add inserts an index; returns false if an identical index was present.
func (c *Configuration) Add(ix Index) bool {
	id := ix.ID()
	if _, ok := c.byID[id]; ok {
		return false
	}
	c.byID[id] = ix
	tk := strings.ToLower(ix.Table)
	c.byTable[tk] = append(c.byTable[tk], ix)
	return true
}

// Remove deletes an index by identity; returns whether it was present.
func (c *Configuration) Remove(ix Index) bool {
	id := ix.ID()
	if _, ok := c.byID[id]; !ok {
		return false
	}
	delete(c.byID, id)
	tk := strings.ToLower(ix.Table)
	list := c.byTable[tk]
	for i := range list {
		if list[i].ID() == id {
			c.byTable[tk] = append(list[:i], list[i+1:]...)
			break
		}
	}
	return true
}

// Contains reports whether an identical index is present.
func (c *Configuration) Contains(ix Index) bool {
	if c == nil {
		return false
	}
	_, ok := c.byID[ix.ID()]
	return ok
}

// ForTable returns the indexes on the named table.
func (c *Configuration) ForTable(table string) []Index {
	if c == nil {
		return nil
	}
	return c.byTable[strings.ToLower(table)]
}

// Len returns the number of indexes.
func (c *Configuration) Len() int {
	if c == nil {
		return 0
	}
	return len(c.byID)
}

// Indexes returns all indexes in deterministic (ID-sorted) order.
func (c *Configuration) Indexes() []Index {
	if c == nil {
		return nil
	}
	ids := make([]string, 0, len(c.byID))
	for id := range c.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Index, len(ids))
	for i, id := range ids {
		out[i] = c.byID[id]
	}
	return out
}

// Clone returns a deep copy.
func (c *Configuration) Clone() *Configuration {
	out := NewConfiguration()
	if c == nil {
		return out
	}
	for _, ix := range c.byID {
		out.Add(ix)
	}
	return out
}

// Union returns a new configuration containing indexes from both.
func (c *Configuration) Union(other *Configuration) *Configuration {
	out := c.Clone()
	if other != nil {
		for _, ix := range other.byID {
			out.Add(ix)
		}
	}
	return out
}

// With returns a copy with ix added (convenient for what-if probing).
func (c *Configuration) With(ix Index) *Configuration {
	out := c.Clone()
	out.Add(ix)
	return out
}

// SizeBytes estimates the total on-disk size of the configuration.
func (c *Configuration) SizeBytes(cat *catalog.Catalog) int64 {
	if c == nil {
		return 0
	}
	var n int64
	for _, ix := range c.byID {
		n += ix.SizeBytes(cat)
	}
	return n
}

// Fingerprint returns a canonical string identifying the configuration,
// suitable as a cache key for what-if costing.
func (c *Configuration) Fingerprint() string {
	if c == nil || len(c.byID) == 0 {
		return ""
	}
	ids := make([]string, 0, len(c.byID))
	for id := range c.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return strings.Join(ids, ";")
}
