// Package index defines physical index structures: single index definitions
// (key columns plus included columns), size estimation against a catalog,
// and Configuration — the set-of-indexes type exchanged between the what-if
// optimizer (internal/cost) and the index advisor (internal/advisor).
package index

import (
	"fmt"
	"sort"
	"strings"

	"isum/internal/catalog"
)

// Index is a (hypothetical or materialised) secondary B-tree index: an
// ordered list of key columns over one table, with optional included
// (non-key) columns that make the index covering for more queries.
type Index struct {
	Table    string
	Keys     []string // ordered key columns
	Includes []string // unordered included columns
}

// New returns an index on table with the given key columns.
func New(table string, keys ...string) Index {
	return Index{Table: table, Keys: keys}
}

// WithIncludes returns a copy of the index with included columns attached
// (deduplicated against the keys).
func (ix Index) WithIncludes(cols ...string) Index {
	keySet := make(map[string]bool, len(ix.Keys))
	for _, k := range ix.Keys {
		keySet[strings.ToLower(k)] = true
	}
	out := Index{Table: ix.Table, Keys: ix.Keys}
	seen := map[string]bool{}
	for _, c := range cols {
		lc := strings.ToLower(c)
		if keySet[lc] || seen[lc] {
			continue
		}
		seen[lc] = true
		out.Includes = append(out.Includes, c)
	}
	sort.Strings(out.Includes)
	return out
}

// ID returns a canonical identifier for the index: key order matters,
// include order does not. Two indexes with equal IDs are interchangeable.
func (ix Index) ID() string {
	var sb strings.Builder
	sb.WriteString(strings.ToLower(ix.Table))
	sb.WriteString("(")
	for i, k := range ix.Keys {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(strings.ToLower(k))
	}
	sb.WriteString(")")
	if len(ix.Includes) > 0 {
		inc := make([]string, len(ix.Includes))
		for i, c := range ix.Includes {
			inc[i] = strings.ToLower(c)
		}
		sort.Strings(inc)
		sb.WriteString(" include(")
		sb.WriteString(strings.Join(inc, ","))
		sb.WriteString(")")
	}
	return sb.String()
}

// String renders the index as a CREATE INDEX-like description.
func (ix Index) String() string {
	s := fmt.Sprintf("IDX %s(%s)", ix.Table, strings.Join(ix.Keys, ", "))
	if len(ix.Includes) > 0 {
		s += fmt.Sprintf(" INCLUDE(%s)", strings.Join(ix.Includes, ", "))
	}
	return s
}

// LeadingKey returns the first key column, or "".
func (ix Index) LeadingKey() string {
	if len(ix.Keys) == 0 {
		return ""
	}
	return ix.Keys[0]
}

// HasKeyPrefix reports whether cols is a prefix (in order, case-insensitive)
// of the index keys.
func (ix Index) HasKeyPrefix(cols []string) bool {
	if len(cols) > len(ix.Keys) {
		return false
	}
	for i, c := range cols {
		if !strings.EqualFold(c, ix.Keys[i]) {
			return false
		}
	}
	return true
}

// Covers reports whether every column in cols appears in the index (key or
// include), i.e. the index can answer a query touching only cols without a
// base-table lookup.
func (ix Index) Covers(cols []string) bool {
	have := make(map[string]bool, len(ix.Keys)+len(ix.Includes))
	for _, k := range ix.Keys {
		have[strings.ToLower(k)] = true
	}
	for _, c := range ix.Includes {
		have[strings.ToLower(c)] = true
	}
	for _, c := range cols {
		if !have[strings.ToLower(c)] {
			return false
		}
	}
	return true
}

// AllColumns returns keys followed by includes.
func (ix Index) AllColumns() []string {
	out := make([]string, 0, len(ix.Keys)+len(ix.Includes))
	out = append(out, ix.Keys...)
	out = append(out, ix.Includes...)
	return out
}

// SizeBytes estimates the on-disk size of the index given the catalog: leaf
// pages holding (key + include + rowid) entries for every table row, plus a
// small interior overhead.
func (ix Index) SizeBytes(cat *catalog.Catalog) int64 {
	t := cat.Table(ix.Table)
	if t == nil {
		return 0
	}
	entry := 8 // rowid
	for _, name := range ix.AllColumns() {
		if c := t.Column(name); c != nil {
			entry += c.Width()
		} else {
			entry += 8
		}
	}
	perPage := catalog.PageSizeBytes / entry
	if perPage < 1 {
		perPage = 1
	}
	leaf := t.RowCount / int64(perPage)
	if leaf < 1 {
		leaf = 1
	}
	// ~0.5% interior-node overhead, at least one page.
	interior := leaf/200 + 1
	return (leaf + interior) * catalog.PageSizeBytes
}

// Validate checks that the index references existing columns of an existing
// table and has at least one key.
func (ix Index) Validate(cat *catalog.Catalog) error {
	if len(ix.Keys) == 0 {
		return fmt.Errorf("index: no key columns on table %q", ix.Table)
	}
	t := cat.Table(ix.Table)
	if t == nil {
		return fmt.Errorf("index: unknown table %q", ix.Table)
	}
	seen := map[string]bool{}
	for _, c := range ix.AllColumns() {
		lc := strings.ToLower(c)
		if t.Column(c) == nil {
			return fmt.Errorf("index: unknown column %s.%s", ix.Table, c)
		}
		if seen[lc] {
			return fmt.Errorf("index: duplicate column %s.%s", ix.Table, c)
		}
		seen[lc] = true
	}
	return nil
}
