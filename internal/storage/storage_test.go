package storage

import (
	"math"
	"math/rand"
	"testing"

	"isum/internal/catalog"
)

func TestPopulateBasic(t *testing.T) {
	cat := catalog.New()
	tbl, err := Populate(cat, TableSpec{
		Name: "users",
		Rows: 1_000_000,
		Columns: []ColumnSpec{
			{Name: "id", Type: catalog.TypeInt, Dist: &Sequential{}},
			{Name: "age", Type: catalog.TypeInt, Dist: Uniform{18, 90}},
			{Name: "score", Type: catalog.TypeFloat, Dist: Normal{50, 10}, NullFraction: 0.1},
			{Name: "plan", Type: catalog.TypeInt, Dist: Categorical{K: 4, Skew: 1}},
		},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Table("users") != tbl {
		t.Fatal("table not registered")
	}
	if errs := cat.Validate(); len(errs) > 0 {
		t.Fatalf("catalog invalid: %v", errs)
	}
	id := tbl.Column("id")
	if id.DistinctCount < 900_000 {
		t.Fatalf("sequential column should be near-unique: %d", id.DistinctCount)
	}
	plan := tbl.Column("plan")
	if plan.DistinctCount > 10 {
		t.Fatalf("categorical distinct = %d, want ~4", plan.DistinctCount)
	}
	if tbl.Column("score").NullFraction != 0.1 {
		t.Fatal("null fraction lost")
	}
	if got := tbl.Column("age").Hist.TotalRows(); got != 1_000_000 {
		t.Fatalf("histogram not scaled: %d", got)
	}
}

func TestPopulateErrors(t *testing.T) {
	cat := catalog.New()
	if _, err := Populate(cat, TableSpec{Name: "x", Rows: -1,
		Columns: []ColumnSpec{{Name: "a", Dist: Uniform{0, 1}}}}, 1); err == nil {
		t.Fatal("negative rows should fail")
	}
	if _, err := Populate(cat, TableSpec{Name: "x", Rows: 10}, 1); err == nil {
		t.Fatal("no columns should fail")
	}
	if _, err := Populate(cat, TableSpec{Name: "x", Rows: 10,
		Columns: []ColumnSpec{{Name: "a"}}}, 1); err == nil {
		t.Fatal("nil distribution should fail")
	}
}

func TestUniformSelectivityAccuracy(t *testing.T) {
	cat := catalog.New()
	tbl, err := Populate(cat, TableSpec{
		Name: "t", Rows: 500_000, SampleSize: 20_000,
		Columns: []ColumnSpec{{Name: "v", Type: catalog.TypeFloat, Dist: Uniform{0, 1000}}},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := tbl.Column("v")
	got := c.RangeSelectivity(0, 250, true, true)
	if math.Abs(got-0.25) > 0.03 {
		t.Fatalf("quartile selectivity = %f, want ~0.25", got)
	}
}

func TestZipfSkewVisibleInHistogram(t *testing.T) {
	cat := catalog.New()
	tbl, err := Populate(cat, TableSpec{
		Name: "t", Rows: 1_000_000, SampleSize: 30_000,
		Columns: []ColumnSpec{{Name: "v", Type: catalog.TypeInt, Dist: Zipf{N: 10_000, S: 1.5}}},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := tbl.Column("v")
	low := c.RangeSelectivity(1, 10, true, true)
	high := c.RangeSelectivity(5000, 10_000, true, true)
	if low <= high {
		t.Fatalf("zipf should concentrate at low ranks: low=%f high=%f", low, high)
	}
}

func TestEstimateDistinct(t *testing.T) {
	// All singletons → near-unique: scales with table.
	if got := EstimateDistinct(1000, 1000, 1000, 1_000_000); got < 900_000 {
		t.Fatalf("unique column underestimated: %d", got)
	}
	// No singletons → domain exhausted: stays at sample distinct.
	if got := EstimateDistinct(1000, 5, 0, 1_000_000); got != 5 {
		t.Fatalf("exhausted domain = %d, want 5", got)
	}
	// Full table sampled → exact.
	if got := EstimateDistinct(100, 37, 10, 100); got != 37 {
		t.Fatalf("full sample = %d", got)
	}
	if EstimateDistinct(0, 0, 0, 100) != 0 {
		t.Fatal("empty sample")
	}
	// Clamp at table rows.
	if got := EstimateDistinct(10, 10, 10, 20); got > 20 {
		t.Fatalf("clamp failed: %d", got)
	}
}

func TestScaleHistogram(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	h := catalog.BuildHistogram(vals, 10)
	ScaleHistogram(h, 1_000_000)
	if h.TotalRows() != 1_000_000 {
		t.Fatalf("rows = %d", h.TotalRows())
	}
	var sum int64
	for _, b := range h.Buckets {
		sum += b.RowCount
	}
	if sum != 1_000_000 {
		t.Fatalf("bucket sum = %d", sum)
	}
	// Shape preserved: mid-range still ~50%.
	mid := h.RangeFraction(250, 750, true, true)
	if math.Abs(mid-0.5) > 0.05 {
		t.Fatalf("shape lost: %f", mid)
	}
	ScaleHistogram(nil, 5) // must not panic
}

// Regression: a negative rounding residue used to be pushed into the last
// bucket and clamped at zero, silently dropping rows so the bucket sums no
// longer equalled h.Rows. The residue must be drained across the tail
// buckets instead, keeping Σ RowCount == h.Rows == totalRows exactly.
func TestScaleHistogramNegativeResidue(t *testing.T) {
	// Rows disagrees with the bucket sums (101 vs 50) — the shape a
	// hand-built or previously mis-scaled histogram can carry — so the
	// scale factor over-scales and acc overshoots totalRows by more than
	// the last bucket holds.
	h := &catalog.Histogram{
		Min: 0,
		Buckets: []catalog.Bucket{
			{UpperBound: 10, RowCount: 50, Distinct: 10},
			{UpperBound: 20, RowCount: 50, Distinct: 10},
			{UpperBound: 30, RowCount: 1, Distinct: 1},
		},
		Rows: 50,
	}
	ScaleHistogram(h, 25)
	if h.Rows != 25 {
		t.Fatalf("Rows = %d, want 25", h.Rows)
	}
	var sum int64
	for i, b := range h.Buckets {
		if b.RowCount < 0 {
			t.Fatalf("bucket %d negative: %d", i, b.RowCount)
		}
		if b.Distinct > b.RowCount {
			t.Fatalf("bucket %d distinct %d > rows %d", i, b.Distinct, b.RowCount)
		}
		sum += b.RowCount
	}
	if sum != 25 {
		t.Fatalf("bucket sum = %d, want 25 (rows were dropped)", sum)
	}
}

// Property: scaling any consistent histogram preserves Σ RowCount ==
// totalRows, with no negative buckets, at any target size.
func TestScaleHistogramSumInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		nb := 1 + rng.Intn(8)
		h := &catalog.Histogram{}
		var rows int64
		for i := 0; i < nb; i++ {
			rc := int64(1 + rng.Intn(5000))
			rows += rc
			h.Buckets = append(h.Buckets, catalog.Bucket{
				UpperBound: float64(10 * (i + 1)),
				RowCount:   rc,
				Distinct:   1 + rc/2,
			})
		}
		h.Rows = rows
		total := int64(1 + rng.Intn(100_000))
		ScaleHistogram(h, total)
		var sum int64
		for i, b := range h.Buckets {
			if b.RowCount < 0 {
				t.Fatalf("trial %d: bucket %d negative: %d", trial, i, b.RowCount)
			}
			sum += b.RowCount
		}
		if sum != total {
			t.Fatalf("trial %d: bucket sum %d != totalRows %d", trial, sum, total)
		}
	}
}

func TestDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform{10, 20}
	for i := 0; i < 100; i++ {
		v := u.Sample(rng)
		if v < 10 || v > 20 {
			t.Fatalf("uniform out of range: %f", v)
		}
	}
	z := Zipf{N: 100, S: 1.2}
	for i := 0; i < 100; i++ {
		v := z.Sample(rng)
		if v < 1 || v > 100 {
			t.Fatalf("zipf out of range: %f", v)
		}
	}
	// Degenerate zipf params are clamped, not panicking.
	bad := Zipf{N: 0, S: 0}
	_ = bad.Sample(rng)

	seq := &Sequential{}
	if seq.Sample(rng) != 1 || seq.Sample(rng) != 2 {
		t.Fatal("sequential broken")
	}

	c := Categorical{K: 3}
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		seen[c.Sample(rng)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("categorical coverage = %d", len(seen))
	}
	if (Categorical{K: 0}).Sample(rng) != 0 {
		t.Fatal("degenerate categorical")
	}
	skewed := Categorical{K: 5, Skew: 2}
	counts := map[float64]int{}
	for i := 0; i < 2000; i++ {
		counts[skewed.Sample(rng)]++
	}
	if counts[0] <= counts[4] {
		t.Fatalf("skew not visible: %v", counts)
	}
}

func TestPopulateDeterministic(t *testing.T) {
	build := func() *catalog.Table {
		cat := catalog.New()
		tbl, err := Populate(cat, TableSpec{
			Name: "t", Rows: 10_000,
			Columns: []ColumnSpec{{Name: "v", Type: catalog.TypeInt, Dist: Uniform{0, 100}}},
		}, 42)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	a, b := build(), build()
	if a.Column("v").DistinctCount != b.Column("v").DistinctCount {
		t.Fatal("same seed should give identical statistics")
	}
}
