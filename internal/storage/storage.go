// Package storage grounds catalog statistics in actual value
// distributions: it draws per-column samples from declared distributions
// (uniform, zipf, normal, sequential, categorical), builds equi-depth
// histograms from the samples, scales them to full table cardinality, and
// estimates distinct counts — producing the statistics objects a real
// engine's ANALYZE would, without materialising the table.
//
// The benchmark generators use closed-form synthetic histograms for speed;
// this package is the higher-fidelity path for user-defined catalogs (see
// examples/custom_workload) and for testing the estimation stack against
// known ground truth.
package storage

import (
	"fmt"
	"math"
	"math/rand"

	"isum/internal/catalog"
)

// Distribution generates column values.
type Distribution interface {
	// Sample draws one value.
	Sample(rng *rand.Rand) float64
}

// Uniform draws uniformly from [Min, Max].
type Uniform struct{ Min, Max float64 }

// Sample implements Distribution.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Min + rng.Float64()*(u.Max-u.Min)
}

// Zipf draws ranks 1..N with zipfian skew S ≥ 1 (larger = more skew toward
// rank 1).
type Zipf struct {
	N uint64
	S float64
}

// Sample implements Distribution.
func (z Zipf) Sample(rng *rand.Rand) float64 {
	s := z.S
	if s <= 1 {
		s = 1.01
	}
	n := z.N
	if n < 2 {
		n = 2
	}
	zf := rand.NewZipf(rng, s, 1, n-1)
	return float64(zf.Uint64() + 1)
}

// Normal draws from a normal distribution.
type Normal struct{ Mean, Std float64 }

// Sample implements Distribution.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mean + rng.NormFloat64()*n.Std
}

// Sequential emits 1, 2, 3, ... — a surrogate key.
type Sequential struct{ next float64 }

// Sample implements Distribution.
func (s *Sequential) Sample(*rand.Rand) float64 {
	s.next++
	return s.next
}

// Categorical draws one of K category codes (0..K-1) with optional skew
// (geometric-ish weighting when Skew > 0).
type Categorical struct {
	K    int
	Skew float64
}

// Sample implements Distribution.
func (c Categorical) Sample(rng *rand.Rand) float64 {
	k := c.K
	if k < 1 {
		k = 1
	}
	if c.Skew <= 0 {
		return float64(rng.Intn(k))
	}
	// Weight category i by (i+1)^-skew.
	var total float64
	for i := 0; i < k; i++ {
		total += math.Pow(float64(i+1), -c.Skew)
	}
	u := rng.Float64() * total
	for i := 0; i < k; i++ {
		u -= math.Pow(float64(i+1), -c.Skew)
		if u <= 0 {
			return float64(i)
		}
	}
	return float64(k - 1)
}

// ColumnSpec declares one column's type and value distribution.
type ColumnSpec struct {
	Name         string
	Type         catalog.ColumnType
	Dist         Distribution
	NullFraction float64
	AvgWidth     int
}

// TableSpec declares a table to populate.
type TableSpec struct {
	Name string
	Rows int64
	// SampleSize bounds the number of values drawn per column (default
	// 10_000, capped at Rows).
	SampleSize int
	Columns    []ColumnSpec
}

// Populate builds the table's statistics by sampling each column's
// distribution, adds the table to the catalog, and returns it.
func Populate(cat *catalog.Catalog, spec TableSpec, seed int64) (*catalog.Table, error) {
	if spec.Rows < 0 {
		return nil, fmt.Errorf("storage: table %s: negative row count", spec.Name)
	}
	if len(spec.Columns) == 0 {
		return nil, fmt.Errorf("storage: table %s: no columns", spec.Name)
	}
	n := spec.SampleSize
	if n == 0 {
		n = 10_000
	}
	if int64(n) > spec.Rows {
		n = int(spec.Rows)
	}
	t := catalog.NewTable(spec.Name, spec.Rows)
	rng := rand.New(rand.NewSource(seed))
	for _, cs := range spec.Columns {
		if cs.Dist == nil {
			return nil, fmt.Errorf("storage: column %s.%s: nil distribution", spec.Name, cs.Name)
		}
		col := &catalog.Column{
			Name:         cs.Name,
			Type:         cs.Type,
			NullFraction: clamp01(cs.NullFraction),
			AvgWidth:     cs.AvgWidth,
		}
		if n > 0 {
			values := make([]float64, n)
			for i := range values {
				values[i] = cs.Dist.Sample(rng)
			}
			attach(col, values, spec.Rows)
		}
		t.AddColumn(col)
	}
	cat.AddTable(t)
	return t, nil
}

// attach fills a column's statistics from a sample of values, scaled to
// tableRows.
func attach(col *catalog.Column, values []float64, tableRows int64) {
	minV, maxV := values[0], values[0]
	distinct := map[float64]int{}
	for _, v := range values {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
		distinct[v]++
	}
	col.Min, col.Max = minV, maxV
	col.DistinctCount = EstimateDistinct(len(values), len(distinct), countSingletons(distinct), tableRows)

	buckets := 40
	if len(values) < buckets {
		buckets = len(values)
	}
	h := catalog.BuildHistogram(values, buckets)
	ScaleHistogram(h, tableRows)
	col.Hist = h
}

func countSingletons(freq map[float64]int) int {
	n := 0
	for _, c := range freq {
		if c == 1 {
			n++
		}
	}
	return n
}

// EstimateDistinct scales a sample's distinct count to the full table using
// the Chao1-style estimator: when many sampled values are singletons the
// column is likely near-unique and the distinct count scales with the
// table; when few are, the sample has already seen most of the domain.
func EstimateDistinct(sampleSize, sampleDistinct, singletons int, tableRows int64) int64 {
	if sampleSize == 0 {
		return 0
	}
	if int64(sampleSize) >= tableRows {
		return int64(sampleDistinct)
	}
	singletonFrac := float64(singletons) / float64(sampleDistinct)
	// Linear interpolation between "domain exhausted" (keep sampleDistinct)
	// and "near-unique" (scale by rows/sample).
	scale := 1 + singletonFrac*(float64(tableRows)/float64(sampleSize)-1)
	est := int64(float64(sampleDistinct) * scale)
	if est > tableRows {
		est = tableRows
	}
	if est < 1 {
		est = 1
	}
	return est
}

// ScaleHistogram rescales a sample-built histogram to represent totalRows,
// preserving bucket shape.
func ScaleHistogram(h *catalog.Histogram, totalRows int64) {
	if h == nil || h.Rows == 0 || totalRows == h.Rows {
		return
	}
	factor := float64(totalRows) / float64(h.Rows)
	var acc int64
	for i := range h.Buckets {
		h.Buckets[i].RowCount = int64(float64(h.Buckets[i].RowCount) * factor)
		if h.Buckets[i].Distinct > h.Buckets[i].RowCount {
			h.Buckets[i].Distinct = h.Buckets[i].RowCount
		}
		acc += h.Buckets[i].RowCount
	}
	// Distribute the rounding residue so bucket sums equal totalRows
	// exactly. A positive residue (truncation undershoot, the common case)
	// goes to the last bucket. A negative residue — possible when the
	// input histogram's Rows disagrees with its bucket sums, so factor
	// over-scales — is drained from the tail buckets backwards, each
	// giving what it has; clamping the last bucket alone would silently
	// drop rows and leave the sums disagreeing with h.Rows.
	if len(h.Buckets) > 0 && acc != totalRows {
		d := totalRows - acc
		if d > 0 {
			h.Buckets[len(h.Buckets)-1].RowCount += d
		} else {
			for i := len(h.Buckets) - 1; i >= 0 && d < 0; i-- {
				b := &h.Buckets[i]
				take := -d
				if take > b.RowCount {
					take = b.RowCount
				}
				b.RowCount -= take
				if b.Distinct > b.RowCount {
					b.Distinct = b.RowCount
				}
				d += take
			}
		}
	}
	h.Rows = totalRows
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
