package faults_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"isum/internal/catalog"
	"isum/internal/cost"
	"isum/internal/faults"
	"isum/internal/parallel"
	"isum/internal/workload"
)

func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	o := catalog.NewTable("orders", 1500000)
	o.AddColumn(&catalog.Column{Name: "o_orderkey", Type: catalog.TypeInt, DistinctCount: 1500000, Min: 1, Max: 6000000,
		Hist: catalog.SyntheticHistogram(1, 6000000, 1500000, 1500000, 50, 0)})
	o.AddColumn(&catalog.Column{Name: "o_custkey", Type: catalog.TypeInt, DistinctCount: 100000, Min: 1, Max: 150000,
		Hist: catalog.SyntheticHistogram(1, 150000, 1500000, 100000, 50, 0)})
	o.AddColumn(&catalog.Column{Name: "o_totalprice", Type: catalog.TypeDecimal, DistinctCount: 1400000, Min: 800, Max: 600000,
		Hist: catalog.SyntheticHistogram(800, 600000, 1500000, 1400000, 50, 0)})
	cat.AddTable(o)
	c := catalog.NewTable("customer", 150000)
	c.AddColumn(&catalog.Column{Name: "c_custkey", Type: catalog.TypeInt, DistinctCount: 150000, Min: 1, Max: 150000,
		Hist: catalog.SyntheticHistogram(1, 150000, 150000, 150000, 20, 0)})
	c.AddColumn(&catalog.Column{Name: "c_nationkey", Type: catalog.TypeInt, DistinctCount: 25, Min: 0, Max: 24,
		Hist: catalog.SyntheticHistogram(0, 24, 150000, 25, 25, 0)})
	cat.AddTable(c)
	return cat
}

func testWorkload(t *testing.T, cat *catalog.Catalog) *workload.Workload {
	t.Helper()
	w, err := workload.New(cat, []string{
		"SELECT o_orderkey FROM orders WHERE o_custkey = 42",
		"SELECT o_totalprice FROM orders WHERE o_totalprice > 100000 ORDER BY o_totalprice",
		"SELECT c_custkey FROM customer WHERE c_nationkey = 7",
		"SELECT o_orderkey FROM orders, customer WHERE o_custkey = c_custkey AND c_nationkey = 3",
		"SELECT o_custkey FROM orders WHERE o_orderkey < 1000",
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// fastRetry keeps the backoff sleeps out of test wall-clock time.
func fastRetry(attempts int) cost.RetryPolicy {
	return cost.RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

// TestRetryAbsorbsTransientErrors pins the central chaos guarantee: with
// enough retry attempts, a seeded error-injecting run produces costs
// bit-identical to the fault-free run.
func TestRetryAbsorbsTransientErrors(t *testing.T) {
	cat := testCatalog()
	w1 := testWorkload(t, cat)
	w2 := testWorkload(t, cat)

	plain := cost.NewOptimizer(cat)
	if err := plain.FillCostsCtx(context.Background(), w1, 1); err != nil {
		t.Fatal(err)
	}

	chaotic := cost.NewOptimizer(cat)
	chaotic.SetInjector(faults.NewInjector(faults.Config{Seed: 5, ErrorRate: 0.4}))
	chaotic.SetRetryPolicy(fastRetry(30))
	if err := chaotic.FillCostsCtx(context.Background(), w2, 0); err != nil {
		t.Fatal(err)
	}

	for i := range w1.Queries {
		if w1.Queries[i].Cost != w2.Queries[i].Cost {
			t.Fatalf("query %d: chaos cost %v != fault-free cost %v", i, w2.Queries[i].Cost, w1.Queries[i].Cost)
		}
	}
	retries, exhausted, cancelled := chaotic.FaultStats()
	if retries == 0 {
		t.Fatal("error rate 0.4 fired no retries — injector not consulted?")
	}
	if exhausted != 0 || cancelled != 0 {
		t.Fatalf("exhausted=%d cancelled=%d", exhausted, cancelled)
	}
}

// TestRetryExhaustion: with ErrorRate 1 every attempt fails, so the
// optimizer must surface a real error (wrapping ErrInjected), not a
// cancellation.
func TestRetryExhaustion(t *testing.T) {
	cat := testCatalog()
	w := testWorkload(t, cat)
	o := cost.NewOptimizer(cat)
	o.SetInjector(faults.NewInjector(faults.Config{Seed: 1, ErrorRate: 1}))
	o.SetRetryPolicy(fastRetry(3))

	err := o.FillCostsCtx(context.Background(), w, 1)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if faults.IsCancellation(err) {
		t.Fatal("retry exhaustion must not look like a cancellation")
	}
	for _, q := range w.Queries {
		if q.Cost != 0 {
			t.Fatal("failed FillCostsCtx must leave the workload untouched")
		}
	}
	_, exhausted, _ := o.FaultStats()
	if exhausted == 0 {
		t.Fatal("exhausted counter did not fire")
	}
}

// TestPanicContainment: an injected panic inside a worker must come back
// as a *parallel.PanicError from the pool, not crash the process.
func TestPanicContainment(t *testing.T) {
	cat := testCatalog()
	w := testWorkload(t, cat)
	o := cost.NewOptimizer(cat)
	o.SetInjector(faults.NewInjector(faults.Config{Seed: 2, PanicRate: 1}))

	_, err := o.WorkloadCostCtx(context.Background(), w, nil, 0)
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *parallel.PanicError, got %T: %v", err, err)
	}
}

func TestFlagsPolicyAndInjector(t *testing.T) {
	var f faults.Flags
	if got, def := f.Policy().MaxAttempts, cost.DefaultRetryPolicy().MaxAttempts; got != def {
		t.Fatalf("zero Flags policy = %d attempts, want default %d", got, def)
	}
	f.Retries = 7
	if got := f.Policy().MaxAttempts; got != 7 {
		t.Fatalf("Retries=7 → MaxAttempts %d", got)
	}

	if inj, err := f.BuildInjector(nil); inj != nil || err != nil {
		t.Fatalf("no -chaos must yield (nil, nil), got (%v, %v)", inj, err)
	}
	f.Chaos = "seed=3,errors=0.5"
	inj, err := f.BuildInjector(nil)
	if err != nil || inj == nil {
		t.Fatalf("BuildInjector: (%v, %v)", inj, err)
	}
	f.Chaos = "frobs=1"
	if _, err := f.BuildInjector(nil); err == nil {
		t.Fatal("bad spec must error")
	}

	f.Timeout = time.Hour
	ctx, cancel := f.Context()
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("-timeout must set a deadline")
	}
	f.Timeout = 0
	ctx2, cancel2 := f.Context()
	defer cancel2()
	if _, ok := ctx2.Deadline(); ok {
		t.Fatal("no -timeout must mean no deadline")
	}
}
