package faults

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"

	"isum/internal/vfs"
)

func writeAll(t *testing.T, fs vfs.FS, name string, chunks [][]byte) (persisted int, errs int) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, c := range chunks {
		n, err := f.Write(c)
		persisted += n
		if err != nil {
			errs++
		}
	}
	return persisted, errs
}

// Same seed, same operation sequence → identical faults, byte for byte.
func TestFaultyFSDeterministic(t *testing.T) {
	run := func(dir string) (int, int, int64) {
		ffs := NewFaultyFS(nil, FSConfig{Seed: 9, ShortWriteRate: 0.4, SyncErrorRate: 0.4}, nil)
		chunks := [][]byte{
			bytes.Repeat([]byte("a"), 100),
			bytes.Repeat([]byte("b"), 57),
			bytes.Repeat([]byte("c"), 9),
			bytes.Repeat([]byte("d"), 200),
		}
		persisted, errs := writeAll(t, ffs, filepath.Join(dir, "f.log"), chunks)
		f, err := ffs.Create(filepath.Join(dir, "g.log"))
		if err != nil {
			t.Fatal(err)
		}
		syncErrs := 0
		for i := 0; i < 6; i++ {
			if err := f.Sync(); err != nil {
				syncErrs++
			}
		}
		f.Close()
		return persisted + syncErrs*1000, errs, ffs.Written()
	}
	a1, a2, a3 := run(t.TempDir())
	b1, b2, b3 := run(t.TempDir())
	if a1 != b1 || a2 != b2 || a3 != b3 {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", a1, a2, a3, b1, b2, b3)
	}
	if a2 == 0 {
		t.Fatal("short-write rate 0.4 over 4 writes never fired")
	}
}

// A short write persists a strict prefix and reports ErrInjectedIO; the
// bytes on disk match what the handle reported.
func TestFaultyFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultyFS(nil, FSConfig{Seed: 2, ShortWriteRate: 1}, nil)
	name := filepath.Join(dir, "w.log")
	f, err := ffs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 64)
	n, werr := f.Write(payload)
	f.Close()
	if werr == nil || !errors.Is(werr, ErrInjectedIO) {
		t.Fatalf("want ErrInjectedIO, got %v", werr)
	}
	if n >= len(payload) {
		t.Fatalf("short write persisted %d/%d", n, len(payload))
	}
	rc, err := (vfs.OSFS{}).Open(name)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if len(data) != n {
		t.Fatalf("disk has %d bytes, handle reported %d", len(data), n)
	}
	if ffs.Written() != int64(n) {
		t.Fatalf("Written() = %d, want %d", ffs.Written(), n)
	}
}

// The crash horizon truncates the final write and fails everything after.
func TestFaultyFSCrashHorizon(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultyFS(nil, FSConfig{WriteLimit: 10}, nil)
	f, err := ffs.Create(filepath.Join(dir, "c.log"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("pre-horizon write: %d, %v", n, err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if n != 2 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("horizon write: %d, %v (want 2, ErrCrashed)", n, err)
	}
	if !ffs.Crashed() {
		t.Fatal("not crashed after horizon")
	}
	if _, err := f.Write([]byte("z")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	f.Close()
	if _, err := ffs.Create(filepath.Join(dir, "d.log")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	if err := ffs.Rename(filepath.Join(dir, "c.log"), filepath.Join(dir, "e.log")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
}

// Bit flips corrupt reads deterministically without touching the file.
func TestFaultyFSBitFlips(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "r.log")
	clean := vfs.OSFS{}
	f, err := clean.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	orig := bytes.Repeat([]byte{0x00}, 4096)
	if _, err := f.Write(orig); err != nil {
		t.Fatal(err)
	}
	f.Close()

	read := func(seed int64) []byte {
		ffs := NewFaultyFS(nil, FSConfig{Seed: seed, FlipBitRate: 0.5}, nil)
		rc, err := ffs.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		data, err := io.ReadAll(rc)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := read(5)
	if bytes.Equal(a, orig) {
		t.Fatal("flip rate 0.5 never flipped a bit across a 4k read")
	}
	if !bytes.Equal(a, read(5)) {
		t.Fatal("same seed produced different flips")
	}
	// The file itself is untouched.
	rc, _ := clean.Open(name)
	data, _ := io.ReadAll(rc)
	rc.Close()
	if !bytes.Equal(data, orig) {
		t.Fatal("flipping reader wrote to the file")
	}
}

func TestParseFSSpec(t *testing.T) {
	cfg, err := ParseFSSpec("seed=7,shortwrites=0.1,syncerrors=0.2,bitflips=0.3,writelimit=4096")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.ShortWriteRate != 0.1 || cfg.SyncErrorRate != 0.2 ||
		cfg.FlipBitRate != 0.3 || cfg.WriteLimit != 4096 {
		t.Fatalf("parsed %+v", cfg)
	}
	for _, bad := range []string{"", "shortwrites=2", "writelimit=-1", "nope=1", "seed"} {
		if _, err := ParseFSSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
