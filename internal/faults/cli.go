package faults

import (
	"context"
	"flag"
	"fmt"
	"time"

	"isum/internal/cost"
	"isum/internal/telemetry"
)

// Exit codes shared by every cmd/ binary (DESIGN.md §9). ExitPartial is 3,
// not 2, because the flag package reserves 2 for usage errors.
const (
	// ExitComplete: the pipeline ran to completion.
	ExitComplete = 0
	// ExitFailed: a real failure — bad input, I/O error, or a what-if
	// failure that survived the retry policy.
	ExitFailed = 1
	// ExitPartial: the deadline (or a cancellation) cut the run short and
	// a best-so-far Partial result was produced.
	ExitPartial = 3
)

// Flags is the failure-model CLI surface shared by every cmd/ binary:
//
//	-timeout=<duration>  deadline for the whole run (0 = none); on expiry
//	                     the pipeline returns its best-so-far Partial
//	                     result and the binary exits with code 3
//	-retries=<n>         what-if retry attempts for transient failures
//	-chaos=<spec>        deterministic fault injection on the what-if
//	                     interface, e.g. seed=42,errors=0.3,delay=200us
//
// Register the flags, derive the run context with Context, and Apply the
// retry policy + injector to each optimizer before use.
type Flags struct {
	Timeout time.Duration
	Retries int
	Chaos   string
}

// Register installs the three flags on fs (use flag.CommandLine in main).
func (f *Flags) Register(fs *flag.FlagSet) {
	def := cost.DefaultRetryPolicy()
	fs.DurationVar(&f.Timeout, "timeout", 0,
		"deadline for the run (e.g. 30s); on expiry exit with the partial code carrying the best-so-far result (0 = no deadline)")
	fs.IntVar(&f.Retries, "retries", def.MaxAttempts,
		"attempts per what-if plan under transient failures (1 = no retry)")
	fs.StringVar(&f.Chaos, "chaos", "",
		"inject deterministic what-if faults: seed=N,errors=R,panics=R,latency=R,delay=D")
}

// Context returns the run context: Background, bounded by -timeout when
// one was given. Callers defer cancel.
func (f *Flags) Context() (context.Context, context.CancelFunc) {
	if f.Timeout > 0 {
		return context.WithTimeout(context.Background(), f.Timeout)
	}
	return context.WithCancel(context.Background())
}

// Policy returns the retry policy implied by -retries.
func (f *Flags) Policy() cost.RetryPolicy {
	p := cost.DefaultRetryPolicy()
	if f.Retries > 0 {
		p.MaxAttempts = f.Retries
	}
	return p
}

// BuildInjector parses the -chaos spec into an injector whose counters live
// in reg. It returns (nil, nil) when no chaos was requested.
func (f *Flags) BuildInjector(reg *telemetry.Registry) (cost.Injector, error) {
	if f.Chaos == "" {
		return nil, nil
	}
	cfg, err := ParseSpec(f.Chaos)
	if err != nil {
		return nil, fmt.Errorf("-chaos: %w", err)
	}
	return NewInjectorWithTelemetry(cfg, reg), nil
}

// Apply configures o with the -retries policy and, when -chaos was given,
// a deterministic injector registered in o's telemetry registry.
func (f *Flags) Apply(o *cost.Optimizer) error {
	o.SetRetryPolicy(f.Policy())
	inj, err := f.BuildInjector(o.Telemetry())
	if err != nil {
		return err
	}
	if inj != nil {
		o.SetInjector(inj)
	}
	return nil
}
