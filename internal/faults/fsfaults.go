package faults

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"isum/internal/telemetry"
	"isum/internal/vfs"
)

// Filesystem fault injection for the durable store (DESIGN.md §14). A
// FaultyFS wraps any vfs.FS and injects the failure modes a real
// disk and kernel produce — short writes, fsync errors, bit-flipped
// reads, and a hard crash horizon after a byte budget — so the WAL and
// snapshot recovery paths are driven by tests through the exact code
// the production store runs. Like the what-if injector, every decision
// is a pure function of (seed, file name, per-file operation index),
// never of time or call interleaving, so a chaos schedule replays
// identically run after run.

// ErrInjectedIO marks a transient filesystem failure produced by the
// harness (short write, fsync error).
var ErrInjectedIO = errors.New("faults: injected I/O failure")

// ErrCrashed marks the crash horizon: the simulated process died and no
// further writes reach the disk. Every write-side operation fails with
// it once the budget is exhausted, mimicking a SIGKILL mid-write.
var ErrCrashed = errors.New("faults: injected crash")

// FSConfig sets the filesystem injection rates.
type FSConfig struct {
	// Seed keys every decision; same seed + same operation sequence →
	// same faults.
	Seed int64
	// ShortWriteRate is the probability a Write persists only a prefix
	// (at least one byte short) and then fails with ErrInjectedIO.
	ShortWriteRate float64
	// SyncErrorRate is the probability a Sync or SyncDir fails with
	// ErrInjectedIO after doing nothing.
	SyncErrorRate float64
	// FlipBitRate is the probability a read-side operation flips one
	// deterministic bit in the bytes it returns — silent corruption the
	// checksums must catch.
	FlipBitRate float64
	// WriteLimit, when > 0, is the crash horizon: after this many bytes
	// have been written across all files, the final write is truncated
	// at the horizon (a torn record) and every later write-side call
	// fails with ErrCrashed.
	WriteLimit int64
}

// FaultyFS wraps a vfs.FS with deterministic fault injection. Safe
// for concurrent use; per-file operation counters are the only mutable
// state and are mutex-guarded.
type FaultyFS struct {
	base vfs.FS
	cfg  FSConfig

	mu      sync.Mutex
	ops     map[string]uint64 // per-file operation index
	written int64             // total bytes written (crash horizon)
	crashed bool

	shortWrites *telemetry.Counter // faults/fs/short_writes
	syncErrors  *telemetry.Counter // faults/fs/sync_errors
	bitFlips    *telemetry.Counter // faults/fs/bit_flips
	crashes     *telemetry.Counter // faults/fs/crashes
}

// NewFaultyFS wraps base (nil = the real filesystem) with injection
// configured by cfg, registering the faults/fs/* counters in reg (nil
// gives the injector a private registry).
func NewFaultyFS(base vfs.FS, cfg FSConfig, reg *telemetry.Registry) *FaultyFS {
	if base == nil {
		base = vfs.OSFS{}
	}
	if reg == nil {
		reg = telemetry.New()
	}
	return &FaultyFS{
		base:        base,
		cfg:         cfg,
		ops:         make(map[string]uint64),
		shortWrites: reg.Counter("faults/fs/short_writes"),
		syncErrors:  reg.Counter("faults/fs/sync_errors"),
		bitFlips:    reg.Counter("faults/fs/bit_flips"),
		crashes:     reg.Counter("faults/fs/crashes"),
	}
}

// Crashed reports whether the crash horizon has been reached.
func (f *FaultyFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Written reports the total bytes written so far.
func (f *FaultyFS) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// nextOp atomically returns the operation index for name and advances it.
func (f *FaultyFS) nextOp(name string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.ops[name]
	f.ops[name] = n + 1
	return n
}

// roll returns a uniform [0, 1) decision value for (file, op index, kind).
func (f *FaultyFS) roll(name string, op uint64, salt uint64) float64 {
	h := hash64(uint64(f.cfg.Seed) ^ salt)
	h = hashString(h, filepath.Base(name))
	h = hash64(h ^ op)
	return float64(h>>11) / (1 << 53)
}

// Per-kind decision streams, disjoint from the what-if salts.
const (
	saltShortWrite uint64 = 0xd6e8feb86659fd93
	saltSyncError  uint64 = 0xa5a5a5a5a5a5a5a5
	saltBitFlip    uint64 = 0xc2b2ae3d27d4eb4f
)

// checkCrashed fails write-side calls after the horizon.
func (f *FaultyFS) checkCrashed() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("%w (after %d bytes)", ErrCrashed, f.written)
	}
	return nil
}

// Create implements vfs.FS.
func (f *FaultyFS) Create(name string) (vfs.File, error) {
	if err := f.checkCrashed(); err != nil {
		return nil, err
	}
	base, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, name: name, base: base}, nil
}

// Open implements vfs.FS; reads pass through a bit-flipping reader
// when FlipBitRate is set.
func (f *FaultyFS) Open(name string) (io.ReadCloser, error) {
	rc, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	if f.cfg.FlipBitRate <= 0 {
		return rc, nil
	}
	return &flippingReader{fs: f, name: name, base: rc}, nil
}

// ReadDir implements vfs.FS.
func (f *FaultyFS) ReadDir(dir string) ([]string, error) { return f.base.ReadDir(dir) }

// Rename implements vfs.FS; it is a metadata write, so it respects
// the crash horizon.
func (f *FaultyFS) Rename(oldname, newname string) error {
	if err := f.checkCrashed(); err != nil {
		return err
	}
	return f.base.Rename(oldname, newname)
}

// Remove implements vfs.FS.
func (f *FaultyFS) Remove(name string) error {
	if err := f.checkCrashed(); err != nil {
		return err
	}
	return f.base.Remove(name)
}

// MkdirAll implements vfs.FS.
func (f *FaultyFS) MkdirAll(dir string) error {
	if err := f.checkCrashed(); err != nil {
		return err
	}
	return f.base.MkdirAll(dir)
}

// SyncDir implements vfs.FS.
func (f *FaultyFS) SyncDir(dir string) error {
	if err := f.checkCrashed(); err != nil {
		return err
	}
	op := f.nextOp(dir + "/")
	if f.cfg.SyncErrorRate > 0 && f.roll(dir+"/", op, saltSyncError) < f.cfg.SyncErrorRate {
		f.syncErrors.Inc()
		return fmt.Errorf("%w: syncdir %s (op %d)", ErrInjectedIO, filepath.Base(dir), op)
	}
	return f.base.SyncDir(dir)
}

// faultyFile injects write-side faults on one handle.
type faultyFile struct {
	fs   *FaultyFS
	name string
	base vfs.File
}

// Write implements vfs.File. Under the crash horizon the write is
// truncated at the horizon byte — a torn record, exactly what a dead
// kernel leaves — and the handle reports ErrCrashed. A short-write fault
// persists a deterministic prefix and reports ErrInjectedIO.
func (f *faultyFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	if f.fs.crashed {
		written := f.fs.written
		f.fs.mu.Unlock()
		return 0, fmt.Errorf("%w (after %d bytes)", ErrCrashed, written)
	}
	limit := len(p)
	crashing := false
	if f.fs.cfg.WriteLimit > 0 && f.fs.written+int64(len(p)) > f.fs.cfg.WriteLimit {
		limit = int(f.fs.cfg.WriteLimit - f.fs.written)
		if limit < 0 {
			limit = 0
		}
		crashing = true
		f.fs.crashed = true
	}
	f.fs.written += int64(limit)
	f.fs.mu.Unlock()

	if crashing {
		f.fs.crashes.Inc()
		if limit > 0 {
			if _, err := f.base.Write(p[:limit]); err != nil {
				return 0, err
			}
		}
		return limit, fmt.Errorf("%w (write truncated at byte %d)", ErrCrashed, limit)
	}

	op := f.fs.nextOp(f.name)
	if f.fs.cfg.ShortWriteRate > 0 && f.fs.roll(f.name, op, saltShortWrite) < f.fs.cfg.ShortWriteRate && len(p) > 0 {
		// Persist a deterministic strict prefix.
		n := int(f.fs.roll(f.name, op, saltShortWrite^saltBitFlip) * float64(len(p)))
		if n >= len(p) {
			n = len(p) - 1
		}
		f.fs.shortWrites.Inc()
		if n > 0 {
			if _, err := f.base.Write(p[:n]); err != nil {
				return 0, err
			}
		}
		f.fs.mu.Lock()
		f.fs.written -= int64(len(p) - n)
		f.fs.mu.Unlock()
		return n, fmt.Errorf("%w: short write %d/%d on %s (op %d)", ErrInjectedIO, n, len(p), filepath.Base(f.name), op)
	}
	return f.base.Write(p)
}

// Sync implements vfs.File.
func (f *faultyFile) Sync() error {
	if err := f.fs.checkCrashed(); err != nil {
		return err
	}
	op := f.fs.nextOp(f.name + "#sync")
	if f.fs.cfg.SyncErrorRate > 0 && f.fs.roll(f.name, op, saltSyncError) < f.fs.cfg.SyncErrorRate {
		f.fs.syncErrors.Inc()
		return fmt.Errorf("%w: fsync %s (op %d)", ErrInjectedIO, filepath.Base(f.name), op)
	}
	return f.base.Sync()
}

// Close implements vfs.File. Close always reaches the base handle so
// chaos tests never leak file descriptors.
func (f *faultyFile) Close() error { return f.base.Close() }

// flippingReader flips one deterministic bit per faulted read call —
// silent corruption for the checksums to catch.
type flippingReader struct {
	fs   *FaultyFS
	name string
	base io.ReadCloser
}

func (r *flippingReader) Read(p []byte) (int, error) {
	n, err := r.base.Read(p)
	if n > 0 {
		op := r.fs.nextOp(r.name + "#read")
		if roll := r.fs.roll(r.name, op, saltBitFlip); roll < r.fs.cfg.FlipBitRate {
			// Pick the victim bit from a second roll on the same stream.
			pos := int(r.fs.roll(r.name, op, saltBitFlip^saltShortWrite) * float64(n*8))
			if pos >= n*8 {
				pos = n*8 - 1
			}
			p[pos/8] ^= 1 << (pos % 8)
			r.fs.bitFlips.Inc()
		}
	}
	return n, err
}

func (r *flippingReader) Close() error { return r.base.Close() }

// ParseFSSpec parses a filesystem chaos spec of comma-separated
// key=value pairs:
//
//	seed=42,shortwrites=0.05,syncerrors=0.05,bitflips=0.01,writelimit=4096
//
// Unknown keys are errors; omitted rates default to zero and an omitted
// seed to 1.
func ParseFSSpec(spec string) (FSConfig, error) {
	cfg := FSConfig{Seed: 1}
	if spec == "" {
		return cfg, fmt.Errorf("faults: empty fs chaos spec")
	}
	err := parseKVSpec(spec, func(key, val string) error {
		switch key {
		case "seed":
			n, perr := parseInt64(val)
			if perr != nil {
				return fmt.Errorf("bad seed %q", val)
			}
			cfg.Seed = n
		case "shortwrites", "syncerrors", "bitflips":
			r, perr := parseRate(val)
			if perr != nil {
				return fmt.Errorf("%s rate %q must be in [0,1]", key, val)
			}
			switch key {
			case "shortwrites":
				cfg.ShortWriteRate = r
			case "syncerrors":
				cfg.SyncErrorRate = r
			case "bitflips":
				cfg.FlipBitRate = r
			}
		case "writelimit":
			n, perr := parseInt64(val)
			if perr != nil || n < 0 {
				return fmt.Errorf("bad writelimit %q", val)
			}
			cfg.WriteLimit = n
		default:
			return fmt.Errorf("unknown key %q (want seed/shortwrites/syncerrors/bitflips/writelimit)", key)
		}
		return nil
	})
	return cfg, err
}

// parseKVSpec walks a comma-separated key=value spec, calling set for
// each pair; errors are wrapped with the spec for context.
func parseKVSpec(spec string, set func(key, val string) error) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("faults: fs chaos spec %q: expected key=value, got %q", spec, part)
		}
		if err := set(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
			return fmt.Errorf("faults: fs chaos spec: %w", err)
		}
	}
	return nil
}

func parseInt64(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }

func parseRate(s string) (float64, error) {
	r, err := strconv.ParseFloat(s, 64)
	if err != nil || r < 0 || r > 1 {
		return 0, fmt.Errorf("rate out of range")
	}
	return r, nil
}
