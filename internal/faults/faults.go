// Package faults is the deterministic fault-injection harness for the
// what-if interface (DESIGN.md §9). An Injector wraps cost.Optimizer's
// plan computation and injects transient errors, added latency, and
// panics at configured rates. Every decision is a pure function of
// (seed, query text, configuration fingerprint, attempt) — never of
// wall-clock time, scheduling, or call order — so a chaos run is
// reproducible at any worker count: the same seed yields the same
// faults, and with retries enabled the pipeline output is byte-identical
// to the fault-free run (transient errors are absorbed, the recomputed
// costs are the same pure values).
package faults

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"isum/internal/telemetry"
)

// ErrInjected marks a transient what-if failure produced by the harness.
// Errors returned by PlanFault wrap it, so retry-exhausted errors from
// cost.Optimizer satisfy errors.Is(err, faults.ErrInjected).
var ErrInjected = errors.New("faults: injected what-if failure")

// Config sets the injection rates. Rates are probabilities in [0, 1],
// evaluated independently per plan attempt.
type Config struct {
	// Seed keys every injection decision; two injectors with the same
	// Seed and rates fault identically.
	Seed int64
	// ErrorRate is the probability a plan attempt fails with ErrInjected.
	ErrorRate float64
	// PanicRate is the probability a plan attempt panics (contained by
	// the worker pool as a *parallel.PanicError).
	PanicRate float64
	// LatencyRate is the probability a plan attempt sleeps for Latency
	// before proceeding.
	LatencyRate float64
	// Latency is the injected delay (default 1ms when a rate is set).
	Latency time.Duration
}

// Injector implements cost.Injector with deterministic seeded decisions.
// Safe for concurrent use: it is immutable after construction apart from
// atomic telemetry counters.
type Injector struct {
	cfg    Config
	errors *telemetry.Counter // faults/injected/errors
	panics *telemetry.Counter // faults/injected/panics
	delays *telemetry.Counter // faults/injected/delays
}

// NewInjector returns an injector with a private telemetry registry.
func NewInjector(cfg Config) *Injector {
	return NewInjectorWithTelemetry(cfg, nil)
}

// NewInjectorWithTelemetry registers the faults/injected/* counters in
// reg (nil gives the injector a private registry), so chaos runs report
// how many faults actually fired.
func NewInjectorWithTelemetry(cfg Config, reg *telemetry.Registry) *Injector {
	if reg == nil {
		reg = telemetry.New()
	}
	if cfg.Latency <= 0 {
		cfg.Latency = time.Millisecond
	}
	return &Injector{
		cfg:    cfg,
		errors: reg.Counter("faults/injected/errors"),
		panics: reg.Counter("faults/injected/panics"),
		delays: reg.Counter("faults/injected/delays"),
	}
}

// Config returns the injector's configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// Stats reports how many faults of each kind have fired.
func (inj *Injector) Stats() (errs, panics, delays int64) {
	return inj.errors.Value(), inj.panics.Value(), inj.delays.Value()
}

// PlanFault implements cost.Injector. It is called once per plan attempt
// on the what-if interface; the decision depends only on the identifying
// triple and the seed. Order of evaluation: panic, then latency, then
// error — so a latency-injected attempt can still fail.
func (inj *Injector) PlanFault(queryText, configFingerprint string, attempt int) error {
	if inj.cfg.PanicRate > 0 && inj.roll(queryText, configFingerprint, attempt, saltPanic) < inj.cfg.PanicRate {
		inj.panics.Inc()
		panic(fmt.Sprintf("faults: injected panic (seed %d, attempt %d)", inj.cfg.Seed, attempt))
	}
	if inj.cfg.LatencyRate > 0 && inj.roll(queryText, configFingerprint, attempt, saltDelay) < inj.cfg.LatencyRate {
		inj.delays.Inc()
		time.Sleep(inj.cfg.Latency)
	}
	if inj.cfg.ErrorRate > 0 && inj.roll(queryText, configFingerprint, attempt, saltError) < inj.cfg.ErrorRate {
		inj.errors.Inc()
		return fmt.Errorf("%w (seed %d, attempt %d)", ErrInjected, inj.cfg.Seed, attempt)
	}
	return nil
}

// Salts separate the per-kind decision streams so e.g. the error and
// latency decisions for the same attempt are independent.
const (
	saltError uint64 = 0x9e3779b97f4a7c15
	saltPanic uint64 = 0xbf58476d1ce4e5b9
	saltDelay uint64 = 0x94d049bb133111eb
)

// roll returns a uniform value in [0, 1) derived from the decision key.
func (inj *Injector) roll(queryText, configFingerprint string, attempt int, salt uint64) float64 {
	h := hash64(uint64(inj.cfg.Seed) ^ salt)
	h = hashString(h, queryText)
	h = hashString(h, configFingerprint)
	h = hash64(h ^ uint64(attempt))
	// 53 high bits → exact float64 in [0, 1).
	return float64(h>>11) / (1 << 53)
}

// hashString folds s into the running hash (FNV-1a step + finalizer).
func hashString(h uint64, s string) uint64 {
	const prime64 = 1099511628211
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return hash64(h)
}

// hash64 is the splitmix64 finalizer — a cheap, well-mixed bijection.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ParseSpec parses a chaos spec of comma-separated key=value pairs:
//
//	seed=42,errors=0.3,panics=0.01,latency=0.1,delay=200us
//
// Unknown keys are errors; omitted rates default to zero (no injection of
// that kind), an omitted seed defaults to 1, and an omitted delay to 1ms.
func ParseSpec(spec string) (Config, error) {
	cfg := Config{Seed: 1}
	if strings.TrimSpace(spec) == "" {
		return cfg, fmt.Errorf("faults: empty chaos spec")
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("faults: chaos spec %q: expected key=value, got %q", spec, part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("faults: chaos spec: bad seed %q: %w", val, err)
			}
			cfg.Seed = n
		case "errors", "panics", "latency":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r > 1 {
				return cfg, fmt.Errorf("faults: chaos spec: %s rate %q must be in [0,1]", key, val)
			}
			switch key {
			case "errors":
				cfg.ErrorRate = r
			case "panics":
				cfg.PanicRate = r
			case "latency":
				cfg.LatencyRate = r
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return cfg, fmt.Errorf("faults: chaos spec: bad delay %q", val)
			}
			cfg.Latency = d
		default:
			return cfg, fmt.Errorf("faults: chaos spec: unknown key %q (want seed/errors/panics/latency/delay)", key)
		}
	}
	return cfg, nil
}

// IsCancellation reports whether err is a context cancellation or
// deadline expiry — the "partial result" outcomes, as opposed to real
// failures.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
