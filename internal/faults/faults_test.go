package faults

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRollDeterministicAcrossInstances(t *testing.T) {
	cfg := Config{Seed: 42, ErrorRate: 0.5}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for attempt := 0; attempt < 20; attempt++ {
		ea := a.PlanFault("SELECT 1", "cfg", attempt)
		eb := b.PlanFault("SELECT 1", "cfg", attempt)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("attempt %d: decisions diverge: %v vs %v", attempt, ea, eb)
		}
	}
}

func TestRollVariesWithAttemptAndKey(t *testing.T) {
	inj := NewInjector(Config{Seed: 1, ErrorRate: 0.5})
	varies := func(probe func(i int) bool) bool {
		first := probe(0)
		for i := 1; i < 64; i++ {
			if probe(i) != first {
				return true
			}
		}
		return false
	}
	if !varies(func(i int) bool { return inj.PlanFault("q", "c", i) != nil }) {
		t.Fatal("decision never varies with attempt — retries could not absorb faults")
	}
	if !varies(func(i int) bool { return inj.PlanFault(strings.Repeat("x", i+1), "c", 0) != nil }) {
		t.Fatal("decision never varies with query text")
	}
	if !varies(func(i int) bool { return inj.PlanFault("q", strings.Repeat("y", i+1), 0) != nil }) {
		t.Fatal("decision never varies with config fingerprint")
	}
}

func TestRateExtremes(t *testing.T) {
	always := NewInjector(Config{Seed: 9, ErrorRate: 1})
	never := NewInjector(Config{Seed: 9})
	for i := 0; i < 32; i++ {
		if err := always.PlanFault("q", "c", i); !errors.Is(err, ErrInjected) {
			t.Fatalf("rate 1 must always inject, got %v", err)
		}
		if err := never.PlanFault("q", "c", i); err != nil {
			t.Fatalf("rate 0 must never inject, got %v", err)
		}
	}
	errs, panics, delays := always.Stats()
	if errs != 32 || panics != 0 || delays != 0 {
		t.Fatalf("stats = %d/%d/%d", errs, panics, delays)
	}
}

func TestPanicInjection(t *testing.T) {
	inj := NewInjector(Config{Seed: 3, PanicRate: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected injected panic")
		}
		if _, panics, _ := inj.Stats(); panics != 1 {
			t.Fatalf("panic counter = %d", panics)
		}
	}()
	inj.PlanFault("q", "c", 0)
}

func TestLatencyInjection(t *testing.T) {
	inj := NewInjector(Config{Seed: 3, LatencyRate: 1, Latency: time.Microsecond})
	if err := inj.PlanFault("q", "c", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, delays := inj.Stats(); delays != 1 {
		t.Fatalf("delay counter = %d", delays)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42,errors=0.3,panics=0.01,latency=0.1,delay=200us")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 42, ErrorRate: 0.3, PanicRate: 0.01, LatencyRate: 0.1, Latency: 200 * time.Microsecond}
	if cfg != want {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg, err := ParseSpec("errors=1"); err != nil || cfg.Seed != 1 {
		t.Fatalf("default seed: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{"", "errors", "errors=2", "errors=-0.1", "seed=x", "delay=-1s", "frobs=1", "errors=0.1,,frobs=2"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q should be rejected", bad)
		}
	}
}

func TestIsCancellation(t *testing.T) {
	if !IsCancellation(context.Canceled) || !IsCancellation(context.DeadlineExceeded) {
		t.Fatal("context errors are cancellations")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !IsCancellation(ctx.Err()) {
		t.Fatal("cancelled ctx")
	}
	if IsCancellation(ErrInjected) || IsCancellation(nil) {
		t.Fatal("non-cancellation misclassified")
	}
}
