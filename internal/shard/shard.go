// Package shard deterministically partitions workloads for sharded
// compression (DESIGN.md §12). The partition is a pure function of each
// item's key — a stable FNV-1a hash, independent of item order, shard
// scheduling, or GOMAXPROCS — so a sharded run always sees the same
// shards and a fixed-order merge of their outputs is byte-reproducible.
package shard

import (
	"sync/atomic"

	"isum/internal/telemetry"
)

// fnv-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash returns the stable 64-bit FNV-1a hash of key used by Partition.
// Exported so callers (CLIs, tests) can report which shard a template
// lands in without re-deriving the partition.
func Hash(key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return h
}

// Partition assigns each of n items to one of `shards` partitions by the
// stable hash of its key and returns the per-shard index lists, each in
// ascending index order. Items with equal keys (e.g. instances of one
// query template) always land in the same shard, so per-shard greedy
// selection sees every instance of the templates it owns. Shards may
// come back empty; shards <= 1 puts everything in a single partition.
func Partition(n, shards int, key func(i int) string) [][]int {
	if shards < 1 {
		shards = 1
	}
	parts := make([][]int, shards)
	if shards == 1 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		parts[0] = all
		return parts
	}
	for i := 0; i < n; i++ {
		s := int(Hash(key(i)) % uint64(shards))
		parts[s] = append(parts[s], i)
	}
	return parts
}

// shardMetrics are the package's registered telemetry handles; nil when
// telemetry is disabled (the default), so the record helpers cost one
// atomic pointer load.
type shardMetrics struct {
	runs         *telemetry.Counter   // shard/runs: per-shard greedy compressions executed
	mergeOps     *telemetry.Counter   // shard/merge_ops: shard summaries folded into the merged summary
	refineRounds *telemetry.Counter   // shard/refine_rounds: cross-shard refinement rounds
	compressNs   *telemetry.Histogram // shard/compress_nanos: wall time of one shard's compression
}

var stel atomic.Pointer[shardMetrics]

// SetTelemetry registers the package's metrics on reg; nil disables
// them. Call once at startup, alongside parallel.SetTelemetry.
func SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		stel.Store(nil)
		return
	}
	stel.Store(&shardMetrics{
		runs:         reg.Counter("shard/runs"),
		mergeOps:     reg.Counter("shard/merge_ops"),
		refineRounds: reg.Counter("shard/refine_rounds"),
		compressNs:   reg.Histogram("shard/compress_nanos", telemetry.DurationBuckets),
	})
}

// RecordRun reports one per-shard compression taking ns nanoseconds.
// Safe to call from worker goroutines (counters and histograms are
// atomic); no-op while telemetry is disabled.
func RecordRun(ns float64) {
	if m := stel.Load(); m != nil {
		m.runs.Inc()
		m.compressNs.Observe(ns)
	}
}

// RecordMergeOps reports n shard-summary merge operations.
func RecordMergeOps(n int) {
	if m := stel.Load(); m != nil {
		m.mergeOps.Add(int64(n))
	}
}

// RecordRefineRounds reports n cross-shard refinement rounds.
func RecordRefineRounds(n int) {
	if m := stel.Load(); m != nil {
		m.refineRounds.Add(int64(n))
	}
}
