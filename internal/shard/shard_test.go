package shard

import (
	"fmt"
	"reflect"
	"testing"

	"isum/internal/telemetry"
)

func TestHashStable(t *testing.T) {
	// FNV-1a reference values must never change: the partition (and with
	// it every sharded result) is derived from them.
	cases := map[string]uint64{
		"":     14695981039346656037,
		"a":    0xaf63dc4c8601ec8c,
		"tmpl": Hash("tmpl"),
	}
	for k, want := range cases {
		if got := Hash(k); got != want {
			t.Fatalf("Hash(%q) = %#x, want %#x", k, got, want)
		}
	}
	if Hash("tmpl") == Hash("tmpl2") {
		t.Fatal("distinct keys collided in the test vectors")
	}
}

func TestPartitionSingleShard(t *testing.T) {
	for _, shards := range []int{-3, 0, 1} {
		parts := Partition(5, shards, func(i int) string { return fmt.Sprint(i) })
		if len(parts) != 1 {
			t.Fatalf("shards=%d: got %d partitions", shards, len(parts))
		}
		if !reflect.DeepEqual(parts[0], []int{0, 1, 2, 3, 4}) {
			t.Fatalf("shards=%d: got %v", shards, parts[0])
		}
	}
}

func TestPartitionDeterministicAndComplete(t *testing.T) {
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("template-%d", i%17)
	}
	key := func(i int) string { return keys[i] }

	first := Partition(len(keys), 8, key)
	if !reflect.DeepEqual(Partition(len(keys), 8, key), first) {
		t.Fatal("partition is not deterministic")
	}

	seen := make(map[int]int)
	for s, part := range first {
		last := -1
		for _, i := range part {
			if i <= last {
				t.Fatalf("shard %d not in ascending order: %v", s, part)
			}
			last = i
			seen[i]++
		}
	}
	if len(seen) != len(keys) {
		t.Fatalf("partition covers %d of %d items", len(seen), len(keys))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("item %d assigned %d times", i, n)
		}
	}
}

func TestPartitionGroupsEqualKeys(t *testing.T) {
	// All instances of a template must land in the same shard, for every
	// shard count.
	keys := []string{"a", "b", "a", "c", "b", "a", "c", "c", "b"}
	for _, shards := range []int{2, 3, 8, 64} {
		parts := Partition(len(keys), shards, func(i int) string { return keys[i] })
		byKey := map[string]int{}
		for s, part := range parts {
			for _, i := range part {
				if prev, ok := byKey[keys[i]]; ok && prev != s {
					t.Fatalf("shards=%d: key %q split across shards %d and %d", shards, keys[i], prev, s)
				}
				byKey[keys[i]] = s
			}
		}
	}
}

func TestPartitionAllowsEmptyShards(t *testing.T) {
	// One distinct key, many shards: everything lands in one shard and
	// the rest stay empty (and present).
	parts := Partition(6, 16, func(int) string { return "only" })
	if len(parts) != 16 {
		t.Fatalf("got %d partitions, want 16", len(parts))
	}
	nonEmpty := 0
	for _, p := range parts {
		if len(p) > 0 {
			nonEmpty++
			if len(p) != 6 {
				t.Fatalf("owning shard has %d items, want 6", len(p))
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("%d non-empty shards, want 1", nonEmpty)
	}
}

func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.New()
	SetTelemetry(reg)
	defer SetTelemetry(nil)

	RecordRun(1500)
	RecordRun(2500)
	RecordMergeOps(4)
	RecordRefineRounds(7)

	snap := reg.Snapshot()
	wantCounters := map[string]int64{
		"shard/runs":          2,
		"shard/merge_ops":     4,
		"shard/refine_rounds": 7,
	}
	for name, want := range wantCounters {
		got, ok := snap.Counters[name]
		if !ok {
			t.Fatalf("counter %s not registered", name)
		}
		if got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	hv, ok := snap.Histograms["shard/compress_nanos"]
	if !ok {
		t.Fatal("histogram shard/compress_nanos not registered")
	}
	if hv.Count != 2 {
		t.Fatalf("shard/compress_nanos observed %d, want 2", hv.Count)
	}

	// Disabled telemetry must be a no-op, not a panic.
	SetTelemetry(nil)
	RecordRun(1)
	RecordMergeOps(1)
	RecordRefineRounds(1)
}
