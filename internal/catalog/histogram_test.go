package catalog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildHistogramBasic(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	h := BuildHistogram(vals, 5)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.TotalRows() != 10 {
		t.Fatalf("rows = %d", h.TotalRows())
	}
	if h.Min != 1 || h.MaxValue() != 10 {
		t.Fatalf("domain = [%f,%f]", h.Min, h.MaxValue())
	}
}

func TestBuildHistogramEmptyAndSingle(t *testing.T) {
	h := BuildHistogram(nil, 4)
	if h.TotalRows() != 0 || h.EqFraction(1) != 0 || h.LessFraction(1, true) != 0 {
		t.Fatal("empty histogram should estimate 0")
	}
	h = BuildHistogram([]float64{42}, 4)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := h.EqFraction(42); got != 1 {
		t.Fatalf("single-value eq = %f, want 1", got)
	}
}

func TestBuildHistogramDuplicatesDontStraddle(t *testing.T) {
	// 100 copies of value 5 among other values: equality estimate should be
	// close to the true fraction.
	var vals []float64
	for i := 0; i < 100; i++ {
		vals = append(vals, 5)
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, float64(10+i))
	}
	h := BuildHistogram(vals, 10)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	got := h.EqFraction(5)
	if math.Abs(got-0.5) > 0.2 {
		t.Fatalf("eq(5) = %f, want ~0.5", got)
	}
}

func TestEqFractionOutsideDomain(t *testing.T) {
	h := BuildHistogram([]float64{1, 2, 3}, 2)
	if h.EqFraction(-5) != 0 {
		t.Fatal("below-domain eq should be 0")
	}
	if h.EqFraction(100) != 0 {
		t.Fatal("above-domain eq should be 0")
	}
}

func TestLessFractionMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
	}
	h := BuildHistogram(vals, 20)
	prev := -1.0
	for v := -400.0; v <= 400; v += 10 {
		f := h.LessFraction(v, false)
		if f < prev-1e-9 {
			t.Fatalf("LessFraction not monotone at %f: %f < %f", v, f, prev)
		}
		if f < 0 || f > 1 {
			t.Fatalf("LessFraction out of range: %f", f)
		}
		prev = f
	}
	if got := h.LessFraction(1e9, false); got != 1 {
		t.Fatalf("beyond max should be 1, got %f", got)
	}
}

func TestRangeFraction(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	h := BuildHistogram(vals, 50)
	got := h.RangeFraction(100, 199, true, true)
	if math.Abs(got-0.1) > 0.03 {
		t.Fatalf("range fraction = %f, want ~0.1", got)
	}
	if h.RangeFraction(500, 100, true, true) != 0 {
		t.Fatal("inverted range should be 0")
	}
	full := h.RangeFraction(0, 999, true, true)
	if math.Abs(full-1) > 0.02 {
		t.Fatalf("full range = %f, want ~1", full)
	}
}

func TestSyntheticHistogram(t *testing.T) {
	h := SyntheticHistogram(0, 1000, 100000, 5000, 20, 0)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.TotalRows() != 100000 {
		t.Fatalf("rows = %d", h.TotalRows())
	}
	mid := h.RangeFraction(250, 750, true, true)
	if math.Abs(mid-0.5) > 0.1 {
		t.Fatalf("uniform mid-range = %f, want ~0.5", mid)
	}
}

func TestSyntheticHistogramSkew(t *testing.T) {
	h := SyntheticHistogram(0, 1000, 100000, 5000, 20, 1.2)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	low := h.RangeFraction(0, 100, true, true)
	high := h.RangeFraction(900, 1000, true, true)
	if low <= high {
		t.Fatalf("skewed histogram should concentrate low: low=%f high=%f", low, high)
	}
}

func TestSyntheticHistogramDegenerate(t *testing.T) {
	if h := SyntheticHistogram(0, 10, 0, 5, 4, 0); h.TotalRows() != 0 {
		t.Fatal("zero-row synthetic should be empty")
	}
	h := SyntheticHistogram(0, 10, 10, 100, 4, 0) // distinct > rows clamps
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any value set and bucket count, the histogram validates and
// range over the full domain accounts for ~all rows.
func TestHistogramPropertyQuick(t *testing.T) {
	f := func(raw []int16, nb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		h := BuildHistogram(vals, int(nb%30)+1)
		if err := h.Validate(); err != nil {
			return false
		}
		full := h.RangeFraction(h.Min, h.MaxValue(), true, true)
		return full > 0.95 && full <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: EqFraction sums over all distinct values to ~1.
func TestEqFractionSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = float64(rng.Intn(50))
	}
	h := BuildHistogram(vals, 8)
	sum := 0.0
	for v := 0; v < 50; v++ {
		sum += h.EqFraction(float64(v))
	}
	if math.Abs(sum-1) > 0.05 {
		t.Fatalf("eq fractions sum to %f, want ~1", sum)
	}
}

// Property: SyntheticHistogram always validates, for any parameter combo —
// including buckets > rows and heavy rounding (regression: nation with 25
// rows and 40 buckets produced a negative distinct count).
func TestSyntheticHistogramAlwaysValid(t *testing.T) {
	f := func(rowsRaw, distinctRaw uint16, buckets uint8, skewRaw uint8) bool {
		rows := int64(rowsRaw)
		distinct := int64(distinctRaw)
		skew := float64(skewRaw) / 64
		h := SyntheticHistogram(0, 1000, rows, distinct, int(buckets), skew)
		return h.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticHistogramTinyTable(t *testing.T) {
	h := SyntheticHistogram(0, 24, 25, 25, 40, 0) // the nation regression
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.TotalRows() != 25 {
		t.Fatalf("rows = %d", h.TotalRows())
	}
}
