package catalog

import (
	"sort"
	"testing"
)

func TestCatalogAggregates(t *testing.T) {
	cat := New()
	a := NewTable("alpha", 1000)
	a.AddColumn(&Column{Name: "x", Type: TypeInt})
	b := NewTable("beta", 3000)
	b.AddColumn(&Column{Name: "y", Type: TypeInt})
	cat.AddTable(a)
	cat.AddTable(b)

	if cat.NumTables() != 2 {
		t.Fatalf("num tables = %d", cat.NumTables())
	}
	if cat.TotalRows() != 4000 {
		t.Fatalf("total rows = %d", cat.TotalRows())
	}
	wantSize := a.SizeBytes() + b.SizeBytes()
	if cat.TotalSizeBytes() != wantSize {
		t.Fatalf("total size = %d, want %d", cat.TotalSizeBytes(), wantSize)
	}
	names := cat.SortedTableNames()
	if !sort.StringsAreSorted(names) || len(names) != 2 {
		t.Fatalf("sorted names = %v", names)
	}
	// Re-adding a table keeps the count stable.
	cat.AddTable(NewTable("ALPHA", 500))
	if cat.NumTables() != 2 {
		t.Fatal("replacement changed table count")
	}
	if cat.Table("alpha").RowCount != 500 {
		t.Fatal("replacement did not take effect")
	}
	if len(cat.Tables()) != 2 {
		t.Fatal("Tables() should dedupe replacements")
	}
}
