package catalog

import (
	"math"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("orders", 10000)
	t.AddColumn(&Column{Name: "o_orderkey", Type: TypeInt, DistinctCount: 10000, Min: 1, Max: 10000})
	t.AddColumn(&Column{Name: "o_custkey", Type: TypeInt, DistinctCount: 1000, Min: 1, Max: 1000})
	t.AddColumn(&Column{Name: "o_totalprice", Type: TypeDecimal, DistinctCount: 8000, Min: 1, Max: 500000})
	t.AddColumn(&Column{Name: "o_comment", Type: TypeString, DistinctCount: 9500})
	return t
}

func TestTableColumnLookupCaseInsensitive(t *testing.T) {
	tbl := sampleTable()
	if tbl.Column("O_ORDERKEY") == nil {
		t.Fatal("case-insensitive lookup failed")
	}
	if tbl.Column("nope") != nil {
		t.Fatal("unexpected column")
	}
}

func TestAddColumnReplacesDuplicate(t *testing.T) {
	tbl := sampleTable()
	n := len(tbl.Columns())
	tbl.AddColumn(&Column{Name: "o_custkey", Type: TypeInt, DistinctCount: 2000})
	if len(tbl.Columns()) != n {
		t.Fatalf("duplicate add changed column count: %d != %d", len(tbl.Columns()), n)
	}
	if tbl.Column("o_custkey").DistinctCount != 2000 {
		t.Fatal("replacement did not take effect")
	}
}

func TestPageCountAndSize(t *testing.T) {
	tbl := sampleTable()
	if tbl.RowWidth() <= 0 {
		t.Fatal("row width must be positive")
	}
	if tbl.PageCount() < 1 {
		t.Fatal("page count must be at least 1")
	}
	if tbl.SizeBytes() != tbl.PageCount()*PageSizeBytes {
		t.Fatal("size mismatch")
	}
	empty := NewTable("empty", 0)
	if empty.PageCount() != 1 {
		t.Fatalf("empty table should occupy one page, got %d", empty.PageCount())
	}
}

func TestCatalogResolveColumn(t *testing.T) {
	cat := New()
	cat.AddTable(sampleTable())
	cust := NewTable("customer", 1000)
	cust.AddColumn(&Column{Name: "c_custkey", Type: TypeInt, DistinctCount: 1000})
	cust.AddColumn(&Column{Name: "o_custkey", Type: TypeInt, DistinctCount: 1000}) // ambiguous with orders
	cat.AddTable(cust)

	if _, err := cat.ResolveColumn("orders.o_orderkey"); err != nil {
		t.Fatalf("qualified resolve failed: %v", err)
	}
	if _, err := cat.ResolveColumn("c_custkey"); err != nil {
		t.Fatalf("unqualified unique resolve failed: %v", err)
	}
	if _, err := cat.ResolveColumn("o_custkey"); err == nil {
		t.Fatal("expected ambiguity error")
	} else if !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("expected ambiguous error, got %v", err)
	}
	if _, err := cat.ResolveColumn("nope.nope"); err == nil {
		t.Fatal("expected unknown-table error")
	}
	if _, err := cat.ResolveColumn("missing_col"); err == nil {
		t.Fatal("expected unknown-column error")
	}
}

func TestTableWeightSumsToOne(t *testing.T) {
	cat := New()
	a := NewTable("a", 900)
	a.AddColumn(&Column{Name: "x", Type: TypeInt})
	b := NewTable("b", 100)
	b.AddColumn(&Column{Name: "y", Type: TypeInt})
	cat.AddTable(a)
	cat.AddTable(b)
	wa, wb := cat.TableWeight("a"), cat.TableWeight("b")
	if math.Abs(wa-0.9) > 1e-12 || math.Abs(wb-0.1) > 1e-12 {
		t.Fatalf("weights wrong: %f %f", wa, wb)
	}
	if cat.TableWeight("missing") != 0 {
		t.Fatal("missing table should weigh 0")
	}
}

func TestCatalogValidate(t *testing.T) {
	cat := New()
	bad := NewTable("bad", 10)
	bad.AddColumn(&Column{Name: "x", Type: TypeInt, DistinctCount: 100}) // distinct > rows
	bad.AddColumn(&Column{Name: "y", Type: TypeInt, NullFraction: 1.5})
	bad.AddColumn(&Column{Name: "z", Type: TypeInt, Min: 10, Max: 1})
	cat.AddTable(bad)
	cat.AddTable(NewTable("nocols", 5))
	errs := cat.Validate()
	if len(errs) != 4 {
		t.Fatalf("expected 4 validation errors, got %d: %v", len(errs), errs)
	}
}

func TestDensity(t *testing.T) {
	c := &Column{Name: "x", DistinctCount: 200}
	if got := c.Density(); math.Abs(got-0.005) > 1e-12 {
		t.Fatalf("density = %f, want 0.005", got)
	}
	unknown := &Column{Name: "y"}
	if unknown.Density() != 1 {
		t.Fatal("unknown distinct count should give density 1")
	}
}

func TestColumnTypeStringsAndWidths(t *testing.T) {
	types := []ColumnType{TypeInt, TypeFloat, TypeDecimal, TypeString, TypeDate, TypeBool}
	seen := map[string]bool{}
	for _, ct := range types {
		s := ct.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate type name %q", s)
		}
		seen[s] = true
		if ct.ByteWidth() <= 0 {
			t.Fatalf("type %s has non-positive width", s)
		}
	}
	if !strings.Contains(ColumnType(99).String(), "ColumnType") {
		t.Fatal("unknown type should stringify defensively")
	}
}

func TestQualifiedName(t *testing.T) {
	tbl := sampleTable()
	c := tbl.Column("o_custkey")
	if c.QualifiedName() != "orders.o_custkey" {
		t.Fatalf("got %q", c.QualifiedName())
	}
	loose := &Column{Name: "solo"}
	if loose.QualifiedName() != "solo" {
		t.Fatalf("got %q", loose.QualifiedName())
	}
	if c.Table() != tbl {
		t.Fatal("table backref broken")
	}
}
