package catalog

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCatalogJSONRoundTrip(t *testing.T) {
	cat := New()
	tb := NewTable("orders", 10000)
	tb.AddColumn(&Column{Name: "o_orderkey", Type: TypeInt, DistinctCount: 10000, Min: 1, Max: 10000})
	tb.AddColumn(&Column{Name: "o_comment", Type: TypeString, AvgWidth: 49, DistinctCount: 9000, NullFraction: 0.01})
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = float64(i % 100)
	}
	tb.AddColumn(&Column{Name: "o_price", Type: TypeDecimal, DistinctCount: 100, Min: 0, Max: 99,
		Hist: BuildHistogram(vals, 10)})
	cat.AddTable(tb)

	var buf bytes.Buffer
	if err := cat.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gt := got.Table("orders")
	if gt == nil || gt.RowCount != 10000 || len(gt.Columns()) != 3 {
		t.Fatalf("table lost: %+v", gt)
	}
	c := gt.Column("o_comment")
	if c.Type != TypeString || c.AvgWidth != 49 || c.NullFraction != 0.01 {
		t.Fatalf("column lost: %+v", c)
	}
	// Histogram must survive and estimate identically.
	orig := cat.Table("orders").Column("o_price")
	loaded := gt.Column("o_price")
	for _, v := range []float64{0, 25, 50, 99} {
		if math.Abs(orig.EqSelectivity(v)-loaded.EqSelectivity(v)) > 1e-12 {
			t.Fatalf("histogram estimates diverge at %f", v)
		}
	}
}

func TestCatalogJSONErrors(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("{bad")); err == nil {
		t.Fatal("bad JSON should fail")
	}
	if _, err := LoadJSON(strings.NewReader(
		`{"tables":[{"name":"t","rows":5,"columns":[{"name":"x","type":"BLOB"}]}]}`)); err == nil {
		t.Fatal("unknown type should fail")
	}
	// Corrupt histogram (bucket rows exceed total) must be rejected.
	if _, err := LoadJSON(strings.NewReader(
		`{"tables":[{"name":"t","rows":5,"columns":[{"name":"x","type":"INT",
		  "histogram":{"min":0,"rows":1,"buckets":[{"upper":1,"rows":5,"distinct":1}]}}]}]}`)); err == nil {
		t.Fatal("invalid histogram should fail")
	}
	// Catalog-level invariants apply after load.
	if _, err := LoadJSON(strings.NewReader(
		`{"tables":[{"name":"t","rows":5,"columns":[{"name":"x","type":"INT","distinct":50}]}]}`)); err == nil {
		t.Fatal("distinct > rows should fail validation")
	}
}
