package catalog

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is an equi-depth (equal-height) histogram over a numeric domain.
// Buckets hold approximately equal row counts; each bucket records its upper
// boundary, row count, and distinct-value count, mirroring the statistics
// objects commercial engines maintain.
type Histogram struct {
	// Buckets in ascending boundary order. Bucket i covers
	// (UpperBound[i-1], UpperBound[i]]; the first bucket's lower edge is Min.
	Buckets []Bucket
	Min     float64
	Rows    int64 // total rows represented (excluding NULLs)
}

// Bucket is one histogram bucket.
type Bucket struct {
	UpperBound float64
	RowCount   int64
	Distinct   int64
}

// BuildHistogram constructs an equi-depth histogram from sorted or unsorted
// values. numBuckets is clamped to [1, len(values)]. The input slice is not
// modified.
func BuildHistogram(values []float64, numBuckets int) *Histogram {
	if len(values) == 0 {
		return &Histogram{}
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)

	if numBuckets < 1 {
		numBuckets = 1
	}
	if numBuckets > len(sorted) {
		numBuckets = len(sorted)
	}
	h := &Histogram{Min: sorted[0], Rows: int64(len(sorted))}
	per := len(sorted) / numBuckets
	rem := len(sorted) % numBuckets
	idx := 0
	for b := 0; b < numBuckets; b++ {
		n := per
		if b < rem {
			n++
		}
		if n == 0 {
			continue
		}
		end := idx + n
		// Extend the bucket so equal values never straddle a boundary:
		// selectivity estimates depend on boundaries separating values.
		for end < len(sorted) && sorted[end] == sorted[end-1] {
			end++
		}
		if end > len(sorted) {
			end = len(sorted)
		}
		seg := sorted[idx:end]
		distinct := int64(1)
		for i := 1; i < len(seg); i++ {
			if seg[i] != seg[i-1] {
				distinct++
			}
		}
		h.Buckets = append(h.Buckets, Bucket{
			UpperBound: seg[len(seg)-1],
			RowCount:   int64(len(seg)),
			Distinct:   distinct,
		})
		idx = end
		if idx >= len(sorted) {
			break
		}
	}
	return h
}

// SyntheticHistogram builds a histogram directly from summary statistics for
// cases where the raw values are not materialised (very large synthetic
// tables). The rows are spread uniformly over numBuckets buckets between min
// and max, with distinct values split proportionally; skew ≥ 0 shifts mass
// toward the low end of the domain (skew 0 is uniform), approximating a
// zipf-like distribution without materialising it.
func SyntheticHistogram(min, max float64, rows, distinct int64, numBuckets int, skew float64) *Histogram {
	if numBuckets < 1 {
		numBuckets = 1
	}
	if rows <= 0 {
		return &Histogram{Min: min}
	}
	if int64(numBuckets) > rows {
		numBuckets = int(rows)
	}
	if distinct < 1 {
		distinct = 1
	}
	if distinct > rows {
		distinct = rows
	}
	h := &Histogram{Min: min, Rows: rows}
	span := max - min
	// Weight of bucket i under the skew: (i+1)^-skew, normalised.
	weights := make([]float64, numBuckets)
	var wsum float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -skew)
		wsum += weights[i]
	}
	rowsLeft, distLeft := rows, distinct
	for i := 0; i < numBuckets; i++ {
		frac := weights[i] / wsum
		rc := int64(math.Round(float64(rows) * frac))
		dc := int64(math.Round(float64(distinct) / float64(numBuckets)))
		if i == numBuckets-1 {
			rc, dc = rowsLeft, distLeft
		}
		if rc > rowsLeft {
			rc = rowsLeft
		}
		if rc < 0 {
			rc = 0
		}
		if dc < 1 && rc > 0 {
			dc = 1
		}
		if dc > rc {
			dc = rc
		}
		if dc > distLeft {
			dc = distLeft
		}
		rowsLeft -= rc
		distLeft -= dc
		ub := min + span*float64(i+1)/float64(numBuckets)
		h.Buckets = append(h.Buckets, Bucket{UpperBound: ub, RowCount: rc, Distinct: dc})
	}
	// Any residue from rounding lands in the final bucket so the histogram
	// accounts for exactly `rows`.
	if rowsLeft > 0 && len(h.Buckets) > 0 {
		lb := &h.Buckets[len(h.Buckets)-1]
		lb.RowCount += rowsLeft
		if lb.Distinct == 0 {
			lb.Distinct = 1
		}
	}
	return h
}

// TotalRows returns the number of rows represented by the histogram.
func (h *Histogram) TotalRows() int64 {
	if h == nil {
		return 0
	}
	return h.Rows
}

// EqFraction estimates the fraction of rows equal to v.
func (h *Histogram) EqFraction(v float64) float64 {
	if h == nil || len(h.Buckets) == 0 || h.Rows == 0 {
		return 0
	}
	lo := h.Min
	for _, b := range h.Buckets {
		if v <= b.UpperBound {
			if v < lo {
				return 0
			}
			if b.Distinct <= 0 || b.RowCount == 0 {
				return 0
			}
			return float64(b.RowCount) / float64(b.Distinct) / float64(h.Rows)
		}
		lo = b.UpperBound
	}
	return 0
}

// LessFraction estimates the fraction of rows with value < v (or <= v when
// inclusive is true) using linear interpolation within buckets.
func (h *Histogram) LessFraction(v float64, inclusive bool) float64 {
	if h == nil || len(h.Buckets) == 0 || h.Rows == 0 {
		return 0
	}
	if v < h.Min || (!inclusive && v == h.Min) {
		return 0
	}
	var acc int64
	lo := h.Min
	for _, b := range h.Buckets {
		if v > b.UpperBound {
			acc += b.RowCount
			lo = b.UpperBound
			continue
		}
		// v falls in this bucket: interpolate.
		width := b.UpperBound - lo
		var frac float64
		if width <= 0 {
			frac = 1
		} else {
			frac = (v - lo) / width
		}
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		within := float64(b.RowCount) * frac
		out := (float64(acc) + within) / float64(h.Rows)
		if inclusive {
			out += h.EqFraction(v)
		}
		if out > 1 {
			out = 1
		}
		return out
	}
	return 1
}

// RangeFraction estimates the fraction of rows in [lo, hi] (inclusive on both
// ends when the flags are set).
func (h *Histogram) RangeFraction(lo, hi float64, loInc, hiInc bool) float64 {
	if h == nil || h.Rows == 0 {
		return 0
	}
	if hi < lo {
		return 0
	}
	upper := h.LessFraction(hi, false)
	if hiInc {
		upper += h.EqFraction(hi)
	}
	lower := h.LessFraction(lo, false)
	if !loInc {
		lower += h.EqFraction(lo)
	}
	f := upper - lower
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}

// MaxValue returns the histogram's upper domain boundary.
func (h *Histogram) MaxValue() float64 {
	if h == nil || len(h.Buckets) == 0 {
		return 0
	}
	return h.Buckets[len(h.Buckets)-1].UpperBound
}

// Validate checks internal invariants: ascending boundaries, non-negative
// counts, and bucket rows summing to Rows.
func (h *Histogram) Validate() error {
	if h == nil {
		return nil
	}
	var sum int64
	prev := h.Min
	for i, b := range h.Buckets {
		if b.UpperBound < prev {
			return fmt.Errorf("histogram: bucket %d boundary %f below previous %f", i, b.UpperBound, prev)
		}
		if b.RowCount < 0 || b.Distinct < 0 {
			return fmt.Errorf("histogram: bucket %d has negative counts", i)
		}
		if b.Distinct > b.RowCount {
			return fmt.Errorf("histogram: bucket %d distinct %d exceeds rows %d", i, b.Distinct, b.RowCount)
		}
		prev = b.UpperBound
		sum += b.RowCount
	}
	if sum != h.Rows {
		return fmt.Errorf("histogram: bucket rows %d != total %d", sum, h.Rows)
	}
	return nil
}
