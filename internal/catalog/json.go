package catalog

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON schema mirrors the statistics a production system would export
// for tuning on a test server (the DTA workflow): tables, columns, and
// histograms, with stable lower-case field names.

type jsonCatalog struct {
	Tables []jsonTable `json:"tables"`
}

type jsonTable struct {
	Name    string       `json:"name"`
	Rows    int64        `json:"rows"`
	Columns []jsonColumn `json:"columns"`
}

type jsonColumn struct {
	Name         string    `json:"name"`
	Type         string    `json:"type"`
	AvgWidth     int       `json:"avg_width,omitempty"`
	Distinct     int64     `json:"distinct,omitempty"`
	NullFraction float64   `json:"null_fraction,omitempty"`
	Min          float64   `json:"min,omitempty"`
	Max          float64   `json:"max,omitempty"`
	Histogram    *jsonHist `json:"histogram,omitempty"`
}

type jsonHist struct {
	Min     float64      `json:"min"`
	Rows    int64        `json:"rows"`
	Buckets []jsonBucket `json:"buckets"`
}

type jsonBucket struct {
	Upper    float64 `json:"upper"`
	Rows     int64   `json:"rows"`
	Distinct int64   `json:"distinct"`
}

var typeNames = map[string]ColumnType{
	"INT": TypeInt, "FLOAT": TypeFloat, "DECIMAL": TypeDecimal,
	"VARCHAR": TypeString, "DATE": TypeDate, "BOOL": TypeBool,
}

// SaveJSON writes the catalog (schema + statistics) as JSON.
func (cat *Catalog) SaveJSON(w io.Writer) error {
	out := jsonCatalog{}
	for _, t := range cat.Tables() {
		jt := jsonTable{Name: t.Name, Rows: t.RowCount}
		for _, c := range t.Columns() {
			jc := jsonColumn{
				Name:         c.Name,
				Type:         c.Type.String(),
				AvgWidth:     c.AvgWidth,
				Distinct:     c.DistinctCount,
				NullFraction: c.NullFraction,
				Min:          c.Min,
				Max:          c.Max,
			}
			if c.Hist != nil && len(c.Hist.Buckets) > 0 {
				jh := &jsonHist{Min: c.Hist.Min, Rows: c.Hist.Rows}
				for _, b := range c.Hist.Buckets {
					jh.Buckets = append(jh.Buckets, jsonBucket{
						Upper: b.UpperBound, Rows: b.RowCount, Distinct: b.Distinct,
					})
				}
				jc.Histogram = jh
			}
			jt.Columns = append(jt.Columns, jc)
		}
		out.Tables = append(out.Tables, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// LoadJSON reads a catalog previously written by SaveJSON (or authored by
// hand / exported from another system). Unknown type names fail loudly.
func LoadJSON(r io.Reader) (*Catalog, error) {
	var in jsonCatalog
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("catalog: decoding JSON: %w", err)
	}
	cat := New()
	for _, jt := range in.Tables {
		t := NewTable(jt.Name, jt.Rows)
		for _, jc := range jt.Columns {
			typ, ok := typeNames[jc.Type]
			if !ok {
				return nil, fmt.Errorf("catalog: table %s column %s: unknown type %q",
					jt.Name, jc.Name, jc.Type)
			}
			c := &Column{
				Name:          jc.Name,
				Type:          typ,
				AvgWidth:      jc.AvgWidth,
				DistinctCount: jc.Distinct,
				NullFraction:  jc.NullFraction,
				Min:           jc.Min,
				Max:           jc.Max,
			}
			if jc.Histogram != nil {
				h := &Histogram{Min: jc.Histogram.Min, Rows: jc.Histogram.Rows}
				for _, jb := range jc.Histogram.Buckets {
					h.Buckets = append(h.Buckets, Bucket{
						UpperBound: jb.Upper, RowCount: jb.Rows, Distinct: jb.Distinct,
					})
				}
				if err := h.Validate(); err != nil {
					return nil, fmt.Errorf("catalog: table %s column %s: %w", jt.Name, jc.Name, err)
				}
				c.Hist = h
			}
			t.AddColumn(c)
		}
		cat.AddTable(t)
	}
	if errs := cat.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("catalog: invalid after load: %w", errs[0])
	}
	return cat, nil
}
