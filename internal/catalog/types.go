// Package catalog models database schema metadata and optimizer statistics.
//
// The catalog is the substrate beneath the cost-based "what-if" optimizer
// (internal/cost) and the feature extraction used by ISUM (internal/features).
// It holds tables, columns, row/page counts, per-column distinct counts,
// null fractions, value domains, and equi-depth histograms, and exposes the
// selectivity and density estimates the paper's statistics-based variant
// (ISUM-S) relies on.
package catalog

import "fmt"

// ColumnType enumerates the logical column types supported by the catalog.
// The cost model only needs enough type information to size rows and to
// interpret predicate constants, so the set is deliberately small.
type ColumnType int

const (
	// TypeInt is a 64-bit integer column.
	TypeInt ColumnType = iota
	// TypeFloat is a 64-bit floating point column.
	TypeFloat
	// TypeDecimal is a fixed-point numeric column (treated as float64).
	TypeDecimal
	// TypeString is a variable-length character column.
	TypeString
	// TypeDate is a date column, stored as days since an epoch.
	TypeDate
	// TypeBool is a boolean column.
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t ColumnType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeDecimal:
		return "DECIMAL"
	case TypeString:
		return "VARCHAR"
	case TypeDate:
		return "DATE"
	case TypeBool:
		return "BOOL"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// ByteWidth returns the average storage width in bytes used for page-count
// and index-size estimation. String widths are an average; callers that know
// better can override Column.AvgWidth.
func (t ColumnType) ByteWidth() int {
	switch t {
	case TypeInt, TypeFloat, TypeDecimal, TypeDate:
		return 8
	case TypeBool:
		return 1
	case TypeString:
		return 24
	default:
		return 8
	}
}
