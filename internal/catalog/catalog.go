package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// PageSizeBytes is the assumed storage page size. The absolute value only
// scales costs uniformly; 8 KiB matches common engines.
const PageSizeBytes = 8192

// Column describes one column of a table together with its optimizer
// statistics.
type Column struct {
	Name     string
	Type     ColumnType
	AvgWidth int // average width in bytes; 0 means ColumnType.ByteWidth()

	// Statistics.
	DistinctCount int64   // number of distinct non-null values
	NullFraction  float64 // fraction of rows that are NULL in [0,1]
	Min, Max      float64 // numeric domain (dates as day numbers, strings hashed)
	Hist          *Histogram

	table *Table
}

// Table returns the table this column belongs to.
func (c *Column) Table() *Table { return c.table }

// QualifiedName returns "table.column".
func (c *Column) QualifiedName() string {
	if c.table == nil {
		return c.Name
	}
	return c.table.Name + "." + c.Name
}

// Width returns the average byte width of the column.
func (c *Column) Width() int {
	if c.AvgWidth > 0 {
		return c.AvgWidth
	}
	return c.Type.ByteWidth()
}

// Density returns 1/DistinctCount, the measure the paper uses to weigh
// group-by and order-by columns (Section 4.2). It is 1 when statistics are
// missing, i.e. an un-analysed column is assumed maximally dense so it never
// receives an inflated index weight.
func (c *Column) Density() float64 {
	if c.DistinctCount <= 0 {
		return 1
	}
	return 1 / float64(c.DistinctCount)
}

// Table describes one base table and its cardinality statistics.
type Table struct {
	Name     string
	RowCount int64

	columns []*Column
	byName  map[string]*Column
}

// NewTable creates an empty table with the given name and row count.
func NewTable(name string, rows int64) *Table {
	return &Table{
		Name:     name,
		RowCount: rows,
		byName:   make(map[string]*Column),
	}
}

// AddColumn appends a column definition and returns it. Adding a duplicate
// name replaces the previous definition (useful when refreshing statistics).
func (t *Table) AddColumn(c *Column) *Column {
	c.table = t
	key := strings.ToLower(c.Name)
	if old, ok := t.byName[key]; ok {
		for i, existing := range t.columns {
			if existing == old {
				t.columns[i] = c
				break
			}
		}
	} else {
		t.columns = append(t.columns, c)
	}
	t.byName[key] = c
	return c
}

// Column returns the named column (case-insensitive) or nil.
func (t *Table) Column(name string) *Column {
	return t.byName[strings.ToLower(name)]
}

// Columns returns the columns in definition order.
func (t *Table) Columns() []*Column { return t.columns }

// RowWidth returns the average row width in bytes.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.columns {
		w += c.Width()
	}
	if w == 0 {
		w = 8
	}
	return w
}

// PageCount estimates the number of heap pages occupied by the table.
func (t *Table) PageCount() int64 {
	rowsPerPage := int64(PageSizeBytes / t.RowWidth())
	if rowsPerPage < 1 {
		rowsPerPage = 1
	}
	pages := t.RowCount / rowsPerPage
	if pages < 1 {
		pages = 1
	}
	return pages
}

// SizeBytes estimates the on-disk size of the table.
func (t *Table) SizeBytes() int64 { return t.PageCount() * PageSizeBytes }

// Catalog is a collection of tables. It is the unit handed to the parser's
// binder, the cost model, and the feature extractor.
type Catalog struct {
	tables map[string]*Table
	order  []string
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// AddTable registers a table, replacing any table with the same
// (case-insensitive) name.
func (cat *Catalog) AddTable(t *Table) *Table {
	key := strings.ToLower(t.Name)
	if _, ok := cat.tables[key]; !ok {
		cat.order = append(cat.order, key)
	}
	cat.tables[key] = t
	return t
}

// Table returns the named table (case-insensitive) or nil.
func (cat *Catalog) Table(name string) *Table {
	return cat.tables[strings.ToLower(name)]
}

// Tables returns all tables in registration order.
func (cat *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(cat.order))
	for _, k := range cat.order {
		out = append(out, cat.tables[k])
	}
	return out
}

// NumTables returns the number of registered tables.
func (cat *Catalog) NumTables() int { return len(cat.tables) }

// TotalRows returns the sum of row counts across tables.
func (cat *Catalog) TotalRows() int64 {
	var n int64
	for _, t := range cat.tables {
		n += t.RowCount
	}
	return n
}

// TotalSizeBytes returns the estimated total base-table size. The paper's
// storage-budget experiments (Fig. 10) express budgets as multiples of this.
func (cat *Catalog) TotalSizeBytes() int64 {
	var n int64
	for _, t := range cat.tables {
		n += t.SizeBytes()
	}
	return n
}

// TableWeight returns n(t)/Σn(t'), the table-size weight w_table from
// Section 4.2 used by both the rule-based and statistics-based column
// weighting schemes.
func (cat *Catalog) TableWeight(name string) float64 {
	t := cat.Table(name)
	if t == nil {
		return 0
	}
	total := cat.TotalRows()
	if total == 0 {
		return 0
	}
	return float64(t.RowCount) / float64(total)
}

// ResolveColumn resolves a possibly-qualified column reference. For
// "t.c" it looks in table t; for a bare "c" it searches all tables and
// returns an error when the name is ambiguous or unknown.
func (cat *Catalog) ResolveColumn(ref string) (*Column, error) {
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		t := cat.Table(ref[:i])
		if t == nil {
			return nil, fmt.Errorf("catalog: unknown table %q in reference %q", ref[:i], ref)
		}
		c := t.Column(ref[i+1:])
		if c == nil {
			return nil, fmt.Errorf("catalog: unknown column %q", ref)
		}
		return c, nil
	}
	var found *Column
	for _, t := range cat.Tables() {
		if c := t.Column(ref); c != nil {
			if found != nil {
				return nil, fmt.Errorf("catalog: ambiguous column %q (in %s and %s)",
					ref, found.table.Name, t.Name)
			}
			found = c
		}
	}
	if found == nil {
		return nil, fmt.Errorf("catalog: unknown column %q", ref)
	}
	return found, nil
}

// Validate performs basic consistency checks and returns all problems found.
func (cat *Catalog) Validate() []error {
	var errs []error
	for _, t := range cat.Tables() {
		if t.RowCount < 0 {
			errs = append(errs, fmt.Errorf("table %s: negative row count %d", t.Name, t.RowCount))
		}
		if len(t.Columns()) == 0 {
			errs = append(errs, fmt.Errorf("table %s: no columns", t.Name))
		}
		for _, c := range t.Columns() {
			if c.DistinctCount > t.RowCount && t.RowCount > 0 {
				errs = append(errs, fmt.Errorf("column %s: distinct count %d exceeds row count %d",
					c.QualifiedName(), c.DistinctCount, t.RowCount))
			}
			if c.NullFraction < 0 || c.NullFraction > 1 {
				errs = append(errs, fmt.Errorf("column %s: null fraction %f out of range",
					c.QualifiedName(), c.NullFraction))
			}
			if c.Min > c.Max {
				errs = append(errs, fmt.Errorf("column %s: min %f > max %f",
					c.QualifiedName(), c.Min, c.Max))
			}
			if err := c.Hist.Validate(); err != nil {
				errs = append(errs, fmt.Errorf("column %s: %w", c.QualifiedName(), err))
			}
		}
	}
	return errs
}

// SortedTableNames returns table names in lexicographic order, useful for
// deterministic reporting.
func (cat *Catalog) SortedTableNames() []string {
	names := make([]string, 0, len(cat.tables))
	for _, t := range cat.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}
