package catalog

import "math"

// Default selectivities used when a column has no histogram, matching the
// classic System-R magic numbers.
const (
	DefaultEqSelectivity    = 0.005
	DefaultRangeSelectivity = 0.33
	DefaultLikeSelectivity  = 0.1
	DefaultInPerValue       = 0.01
)

// EqSelectivity estimates the fraction of rows where the column equals v.
func (c *Column) EqSelectivity(v float64) float64 {
	notNull := 1 - c.NullFraction
	if c.Hist != nil && c.Hist.Rows > 0 {
		return clampSel(c.Hist.EqFraction(v) * notNull)
	}
	if c.DistinctCount > 0 {
		return clampSel(notNull / float64(c.DistinctCount))
	}
	return DefaultEqSelectivity
}

// RangeSelectivity estimates the fraction of rows with lo <= value <= hi
// (inclusivity per the flags). Use math.Inf for open ends.
func (c *Column) RangeSelectivity(lo, hi float64, loInc, hiInc bool) float64 {
	notNull := 1 - c.NullFraction
	if c.Hist != nil && c.Hist.Rows > 0 {
		l, h := lo, hi
		if math.IsInf(l, -1) {
			l = c.Hist.Min
			loInc = true
		}
		if math.IsInf(h, 1) {
			h = c.Hist.MaxValue()
			hiInc = true
		}
		return clampSel(c.Hist.RangeFraction(l, h, loInc, hiInc) * notNull)
	}
	// No histogram: fall back to a uniform-domain estimate when min/max are
	// known, otherwise the default magic number.
	if c.Max > c.Min {
		l, h := lo, hi
		if math.IsInf(l, -1) {
			l = c.Min
		}
		if math.IsInf(h, 1) {
			h = c.Max
		}
		f := (h - l) / (c.Max - c.Min)
		return clampSel(f * notNull)
	}
	return DefaultRangeSelectivity
}

// InSelectivity estimates the fraction of rows matching an IN list of n
// values.
func (c *Column) InSelectivity(n int) float64 {
	if n <= 0 {
		return 0
	}
	if c.DistinctCount > 0 {
		return clampSel(float64(n) / float64(c.DistinctCount) * (1 - c.NullFraction))
	}
	return clampSel(float64(n) * DefaultInPerValue)
}

// NullSelectivity estimates the fraction of rows where the column IS NULL.
func (c *Column) NullSelectivity() float64 { return clampSel(c.NullFraction) }

// JoinSelectivity estimates the selectivity of an equi-join predicate
// a = b over the cross product, using the textbook 1/max(V(a), V(b)).
func JoinSelectivity(a, b *Column) float64 {
	da, db := a.DistinctCount, b.DistinctCount
	if da <= 0 {
		da = 1000
	}
	if db <= 0 {
		db = 1000
	}
	d := da
	if db > d {
		d = db
	}
	return clampSel(1 / float64(d))
}

func clampSel(s float64) float64 {
	if math.IsNaN(s) || s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}
