package catalog

import (
	"math"
	"testing"
)

func statsColumn() *Column {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i % 100) // 100 distinct values, uniform
	}
	return &Column{
		Name:          "x",
		Type:          TypeInt,
		DistinctCount: 100,
		Min:           0,
		Max:           99,
		Hist:          BuildHistogram(vals, 10),
	}
}

func TestEqSelectivityWithHistogram(t *testing.T) {
	c := statsColumn()
	got := c.EqSelectivity(50)
	if math.Abs(got-0.01) > 0.005 {
		t.Fatalf("eq selectivity = %f, want ~0.01", got)
	}
}

func TestEqSelectivityFallbacks(t *testing.T) {
	c := &Column{Name: "x", DistinctCount: 200}
	if got := c.EqSelectivity(1); math.Abs(got-0.005) > 1e-12 {
		t.Fatalf("distinct fallback = %f", got)
	}
	c = &Column{Name: "x"}
	if got := c.EqSelectivity(1); got != DefaultEqSelectivity {
		t.Fatalf("default fallback = %f", got)
	}
}

func TestRangeSelectivityWithHistogram(t *testing.T) {
	c := statsColumn()
	got := c.RangeSelectivity(0, 49, true, true)
	if math.Abs(got-0.5) > 0.1 {
		t.Fatalf("range selectivity = %f, want ~0.5", got)
	}
	// Open-ended ranges.
	ge := c.RangeSelectivity(90, math.Inf(1), true, true)
	if math.Abs(ge-0.1) > 0.05 {
		t.Fatalf(">=90 selectivity = %f, want ~0.1", ge)
	}
	le := c.RangeSelectivity(math.Inf(-1), 9, true, true)
	if math.Abs(le-0.1) > 0.05 {
		t.Fatalf("<=9 selectivity = %f, want ~0.1", le)
	}
}

func TestRangeSelectivityUniformFallback(t *testing.T) {
	c := &Column{Name: "x", Min: 0, Max: 100}
	got := c.RangeSelectivity(0, 25, true, true)
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("uniform fallback = %f, want 0.25", got)
	}
	bare := &Column{Name: "y"}
	if got := bare.RangeSelectivity(0, 10, true, true); got != DefaultRangeSelectivity {
		t.Fatalf("default fallback = %f", got)
	}
}

func TestNullFractionScaling(t *testing.T) {
	c := statsColumn()
	c.NullFraction = 0.5
	got := c.EqSelectivity(50)
	if math.Abs(got-0.005) > 0.003 {
		t.Fatalf("null-scaled eq = %f, want ~0.005", got)
	}
	if got := c.NullSelectivity(); got != 0.5 {
		t.Fatalf("null selectivity = %f", got)
	}
}

func TestInSelectivity(t *testing.T) {
	c := &Column{Name: "x", DistinctCount: 100}
	if got := c.InSelectivity(5); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("in selectivity = %f", got)
	}
	if c.InSelectivity(0) != 0 {
		t.Fatal("empty IN should be 0")
	}
	if c.InSelectivity(1000) != 1 {
		t.Fatal("oversized IN should clamp to 1")
	}
	bare := &Column{Name: "y"}
	if got := bare.InSelectivity(3); math.Abs(got-0.03) > 1e-12 {
		t.Fatalf("default in = %f", got)
	}
}

func TestJoinSelectivity(t *testing.T) {
	a := &Column{Name: "a", DistinctCount: 100}
	b := &Column{Name: "b", DistinctCount: 1000}
	if got := JoinSelectivity(a, b); math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("join selectivity = %f, want 0.001", got)
	}
	// Missing stats fall back to 1/1000.
	u := &Column{Name: "u"}
	if got := JoinSelectivity(u, u); math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("fallback join selectivity = %f", got)
	}
}

func TestClampSel(t *testing.T) {
	if clampSel(-1) != 0 || clampSel(2) != 1 || clampSel(math.NaN()) != 0 {
		t.Fatal("clamp broken")
	}
	if clampSel(0.5) != 0.5 {
		t.Fatal("clamp should pass through in-range values")
	}
}
