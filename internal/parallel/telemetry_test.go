package parallel

import (
	"context"
	"testing"

	"isum/internal/telemetry"
)

// TestSetTelemetry pins the pool metrics: exact task counts at serial and
// parallel worker counts, batch counts, and one queue-wait observation per
// spawned worker (none on the serial path).
func TestSetTelemetry(t *testing.T) {
	reg := telemetry.New()
	SetTelemetry(reg)
	defer SetTelemetry(nil)

	ctx := context.Background()
	ForEach(ctx, 1, 100, func(int) {}) // serial path
	ForEach(ctx, 4, 100, func(int) {}) // pooled path
	Map(ctx, 4, 50, func(i int) int { return i })

	if got := reg.Counter("parallel/pool/tasks").Value(); got != 250 {
		t.Errorf("tasks = %d, want 250", got)
	}
	if got := reg.Counter("parallel/pool/batches").Value(); got != 3 {
		t.Errorf("batches = %d, want 3", got)
	}
	// Two pooled batches × 4 workers observe queue wait; the serial batch
	// spawns no workers.
	waits := reg.Histogram("parallel/pool/queue_wait_nanos", nil).Count()
	if waits != 8 {
		t.Errorf("queue-wait observations = %d, want 8", waits)
	}
}

// TestTelemetryDisabledByDefault pins that without SetTelemetry the pool
// records nothing and a later registry sees no phantom counts.
func TestTelemetryDisabledByDefault(t *testing.T) {
	SetTelemetry(nil)
	ForEach(context.Background(), 4, 100, func(int) {})
	reg := telemetry.New()
	SetTelemetry(reg)
	defer SetTelemetry(nil)
	if got := reg.Counter("parallel/pool/tasks").Value(); got != 0 {
		t.Errorf("tasks = %d, want 0 before any instrumented batch", got)
	}
}
