package parallel

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 5, 97, 1000} {
			hits := make([]int32, n)
			if err := ForEach(ctx, workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			}); err != nil {
				t.Fatalf("workers=%d n=%d: unexpected error: %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestMapPreservesIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		out, err := Map(context.Background(), workers, 500, func(i int) int { return i * i })
		if err != nil {
			t.Fatalf("workers=%d: unexpected error: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapReduceOrderedFold checks the determinism contract: a
// non-associative fold (string concatenation) must produce the identical
// result at every worker count.
func TestMapReduceOrderedFold(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyz"
	want := letters
	for _, workers := range []int{1, 2, 3, 13, 26, 50} {
		got, err := MapReduce(context.Background(), workers, len(letters),
			func(i int) string { return string(letters[i]) },
			"",
			func(acc, v string) string { return acc + v })
		if err != nil {
			t.Fatalf("workers=%d: unexpected error: %v", workers, err)
		}
		if got != want {
			t.Fatalf("workers=%d: %q != %q", workers, got, want)
		}
	}
}

// TestMapReduceFloatSumDeterminism: float sums are order-sensitive; the
// ordered fold must make them identical across worker counts.
func TestMapReduceFloatSumDeterminism(t *testing.T) {
	n := 10000
	vals := make([]float64, n)
	x := 1.0
	for i := range vals {
		x = x*1.0000001 + float64(i%7)*1e-13
		vals[i] = x
	}
	sum := func(workers int) float64 {
		got, err := MapReduce(context.Background(), workers, n,
			func(i int) float64 { return vals[i] },
			0.0,
			func(acc, v float64) float64 { return acc + v })
		if err != nil {
			t.Fatalf("workers=%d: unexpected error: %v", workers, err)
		}
		return got
	}
	want := sum(1)
	for _, workers := range []int{2, 4, 16} {
		if got := sum(workers); got != want {
			t.Fatalf("workers=%d: sum %v != serial %v", workers, got, want)
		}
	}
}

// TestForEachPanicContained pins the failure model: a worker panic is
// returned as a *PanicError — with the payload and a stack — instead of
// crashing the process, at every worker count including the serial path.
func TestForEachPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 100, func(i int) {
			if i == 37 {
				panic("boom")
			}
		})
		if err == nil {
			t.Fatalf("workers=%d: panic was not surfaced as an error", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error is %T, want *PanicError", workers, err)
		}
		if pe.Value != "boom" {
			t.Fatalf("workers=%d: unexpected panic payload: %v", workers, pe.Value)
		}
		if !strings.Contains(err.Error(), "boom") {
			t.Fatalf("workers=%d: Error() should carry the payload: %q", workers, err.Error())
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: missing stack trace", workers)
		}
	}
}

// TestForEachPanicStopsRemainingWork: after a panic the other workers stop
// at their next index instead of running the batch to completion.
func TestForEachPanicStopsRemainingWork(t *testing.T) {
	var ran atomic.Int64
	n := 100000
	err := ForEach(context.Background(), 4, n, func(i int) {
		ran.Add(1)
		if i == 0 {
			panic("early")
		}
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got == int64(n) {
		t.Fatalf("all %d tasks ran despite an early panic", n)
	}
}

func TestForEachAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for _, workers := range []int{1, 4} {
		err := ForEach(ctx, workers, 50, func(i int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran under an already-cancelled context", ran.Load())
	}
}

// TestForEachCancelMidRun: cancelling while the batch runs stops the
// workers before the batch completes and returns ctx.Err().
func TestForEachCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	n := 1 << 20
	err := ForEach(ctx, 4, n, func(i int) {
		if ran.Add(1) == 100 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got == int64(n) {
		t.Fatal("cancellation did not stop the batch early")
	}
}

// TestMapPartialOnCancel: Map under cancellation returns the partially
// filled slice alongside the error; entries that ran hold real results.
func TestMapPartialOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	out, err := Map(ctx, 2, 1<<16, func(i int) int {
		if ran.Add(1) == 10 {
			cancel()
		}
		return i + 1
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != 1<<16 {
		t.Fatalf("partial slice has wrong length %d", len(out))
	}
	filled := 0
	for i, v := range out {
		if v != 0 {
			if v != i+1 {
				t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
			}
			filled++
		}
	}
	if filled == 0 {
		t.Fatal("no entries filled before cancellation")
	}
}

// TestMapReduceErrorReturnsInit: the fold must not run over partial values.
func TestMapReduceErrorReturnsInit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := MapReduce(ctx, 4, 100,
		func(i int) int { return 1 },
		-7,
		func(acc, v int) int { return acc + v })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got != -7 {
		t.Fatalf("on error MapReduce must return init, got %d", got)
	}
}
