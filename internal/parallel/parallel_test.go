package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 5, 97, 1000} {
			hits := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestMapPreservesIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		out := Map(workers, 500, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapReduceOrderedFold checks the determinism contract: a
// non-associative fold (string concatenation) must produce the identical
// result at every worker count.
func TestMapReduceOrderedFold(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyz"
	want := letters
	for _, workers := range []int{1, 2, 3, 13, 26, 50} {
		got := MapReduce(workers, len(letters),
			func(i int) string { return string(letters[i]) },
			"",
			func(acc, v string) string { return acc + v })
		if got != want {
			t.Fatalf("workers=%d: %q != %q", workers, got, want)
		}
	}
}

// TestMapReduceFloatSumDeterminism: float sums are order-sensitive; the
// ordered fold must make them identical across worker counts.
func TestMapReduceFloatSumDeterminism(t *testing.T) {
	n := 10000
	vals := make([]float64, n)
	x := 1.0
	for i := range vals {
		x = x*1.0000001 + float64(i%7)*1e-13
		vals[i] = x
	}
	sum := func(workers int) float64 {
		return MapReduce(workers, n,
			func(i int) float64 { return vals[i] },
			0.0,
			func(acc, v float64) float64 { return acc + v })
	}
	want := sum(1)
	for _, workers := range []int{2, 4, 16} {
		if got := sum(workers); got != want {
			t.Fatalf("workers=%d: sum %v != serial %v", workers, got, want)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}
