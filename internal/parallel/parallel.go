// Package parallel provides the bounded worker-pool primitives behind the
// pipeline's Parallelism knobs. Every helper takes an explicit worker count
// (resolve a user-facing knob with Workers) and degrades to a plain serial
// loop when the count is 1, so `Parallelism: 1` is byte-for-byte the
// pre-parallel code path with zero goroutine overhead.
//
// Determinism contract: the helpers never reduce across workers in
// completion order. Map writes results into an index-addressed slice and
// MapReduce folds that slice in index order, so floating-point reductions
// (weighted sums, argmax with epsilon tie-breaks) are bit-identical at any
// worker count. Callers keep shared state read-only inside fn, or write
// only to their own index i.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"isum/internal/telemetry"
)

// poolMetrics are the package's registered telemetry handles; nil when
// telemetry is disabled (the default), so the hot paths pay one atomic
// pointer load.
type poolMetrics struct {
	tasks     *telemetry.Counter   // parallel/pool/tasks: fn invocations
	batches   *telemetry.Counter   // parallel/pool/batches: ForEach/Map calls
	queueWait *telemetry.Histogram // parallel/pool/queue_wait_nanos: spawn → first task
}

var pool atomic.Pointer[poolMetrics]

// SetTelemetry registers the worker pool's metrics — tasks executed,
// batches dispatched, and a spawn-to-start queue-wait histogram — in reg.
// Pass nil to disable (the default). The setting is process-wide because
// the pool helpers are free functions; CLIs call it once at startup.
func SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		pool.Store(nil)
		return
	}
	pool.Store(&poolMetrics{
		tasks:     reg.Counter("parallel/pool/tasks"),
		batches:   reg.Counter("parallel/pool/batches"),
		queueWait: reg.Histogram("parallel/pool/queue_wait_nanos", telemetry.DurationBuckets),
	})
}

// Workers resolves a parallelism knob: n < 1 means "use every core"
// (GOMAXPROCS), any other value is taken literally.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n), using at most workers
// goroutines. Indices are handed out in contiguous chunks. fn must not
// touch shared mutable state except at its own index. A panic in any fn is
// re-raised on the calling goroutine after all workers stop.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	m := pool.Load()
	if m != nil {
		m.tasks.Add(int64(n))
		m.batches.Inc()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	var spawned time.Time
	if m != nil {
		spawned = time.Now()
	}
	run := func(lo, hi int) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}
		}()
		if m != nil {
			m.queueWait.Observe(float64(time.Since(spawned).Nanoseconds()))
		}
		for i := lo; i < hi; i++ {
			fn(i)
		}
	}
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go run(lo, hi)
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("parallel: worker panicked: %v", panicked))
	}
}

// Map returns [fn(0), fn(1), …, fn(n-1)], computing the entries with at
// most workers goroutines. The result order is always index order,
// regardless of completion order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapReduce computes fn per index in parallel and folds the results
// serially in index order: fold(…fold(fold(init, fn(0)), fn(1))…, fn(n-1)).
// Because the fold is serial and ordered, non-associative reductions
// (floating-point sums, first-wins argmax) give the same answer at any
// worker count.
func MapReduce[T, A any](workers, n int, fn func(i int) T, init A, fold func(acc A, v T) A) A {
	vals := Map(workers, n, fn)
	acc := init
	for _, v := range vals {
		acc = fold(acc, v)
	}
	return acc
}
