// Package parallel provides the bounded worker-pool primitives behind the
// pipeline's Parallelism knobs. Every helper takes a context and an
// explicit worker count (resolve a user-facing knob with Workers) and
// degrades to a plain serial loop when the count is 1, so `Parallelism: 1`
// is byte-for-byte the pre-parallel code path with zero goroutine overhead.
//
// Determinism contract: the helpers never reduce across workers in
// completion order. Map writes results into an index-addressed slice and
// MapReduce folds that slice in index order, so floating-point reductions
// (weighted sums, argmax with epsilon tie-breaks) are bit-identical at any
// worker count. Callers keep shared state read-only inside fn, or write
// only to their own index i.
//
// Failure model (DESIGN.md §9): the pool never crashes the process. A panic
// in any fn stops the remaining work and is returned as a *PanicError; a
// cancelled context stops the workers at their next index and the context's
// error is returned. In both cases the batch's side effects (slots already
// written by Map, indices already visited by ForEach) are a prefix-free
// partial set that callers must discard or explicitly treat as
// best-so-far. With context.Background() and panic-free fns the helpers
// behave exactly like plain loops.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"isum/internal/telemetry"
)

// PanicError is a worker panic contained by the pool and surfaced as an
// error from ForEach/Map/MapReduce instead of crashing the process.
type PanicError struct {
	// Value is the value the worker panicked with.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panicked: %v", e.Value)
}

// poolMetrics are the package's registered telemetry handles; nil when
// telemetry is disabled (the default), so the hot paths pay one atomic
// pointer load.
type poolMetrics struct {
	tasks     *telemetry.Counter   // parallel/pool/tasks: fn invocations
	batches   *telemetry.Counter   // parallel/pool/batches: ForEach/Map calls
	queueWait *telemetry.Histogram // parallel/pool/queue_wait_nanos: spawn → first task
	cancelled *telemetry.Counter   // parallel/pool/cancelled: batches stopped by ctx
	panics    *telemetry.Counter   // parallel/pool/panics: contained worker panics
}

var pool atomic.Pointer[poolMetrics]

// SetTelemetry registers the worker pool's metrics — tasks executed,
// batches dispatched, a spawn-to-start queue-wait histogram, and
// cancelled/panicked batch counters — in reg. Pass nil to disable (the
// default). The setting is process-wide because the pool helpers are free
// functions; CLIs call it once at startup.
func SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		pool.Store(nil)
		return
	}
	pool.Store(&poolMetrics{
		tasks:     reg.Counter("parallel/pool/tasks"),
		batches:   reg.Counter("parallel/pool/batches"),
		queueWait: reg.Histogram("parallel/pool/queue_wait_nanos", telemetry.DurationBuckets),
		cancelled: reg.Counter("parallel/pool/cancelled"),
		panics:    reg.Counter("parallel/pool/panics"),
	})
}

// Workers resolves a parallelism knob: n < 1 means "use every core"
// (GOMAXPROCS), any other value is taken literally.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n), using at most workers
// goroutines. Indices are handed out in contiguous chunks. fn must not
// touch shared mutable state except at its own index.
//
// When ctx is cancelled the workers stop before their next index and
// ctx.Err() is returned; indices already started run to completion. A
// panic in any fn likewise stops the batch and is returned as a
// *PanicError. The nil error therefore guarantees every index was visited
// exactly once.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	m := pool.Load()
	if m != nil {
		m.tasks.Add(int64(n))
		m.batches.Inc()
	}
	done := ctx.Done()
	if done != nil {
		if err := ctx.Err(); err != nil {
			if m != nil {
				m.cancelled.Inc()
			}
			return err
		}
	}
	if workers > n {
		workers = n
	}

	var (
		stop     atomic.Bool // set on cancellation or panic: drain remaining work
		panicMu  sync.Mutex
		panicked *PanicError
	)
	run := func(lo, hi int) {
		defer func() {
			if r := recover(); r != nil {
				stop.Store(true)
				panicMu.Lock()
				if panicked == nil {
					panicked = &PanicError{Value: r, Stack: debug.Stack()}
				}
				panicMu.Unlock()
			}
		}()
		for i := lo; i < hi; i++ {
			if stop.Load() {
				return
			}
			if done != nil {
				select {
				case <-done:
					stop.Store(true)
					return
				default:
				}
			}
			fn(i)
		}
	}

	if workers <= 1 {
		run(0, n)
	} else {
		var wg sync.WaitGroup
		var spawned time.Time
		if m != nil {
			spawned = time.Now() //lint:allow determinism queue-wait histogram only; task results never read the clock
		}
		for w := 0; w < workers; w++ {
			lo := w * n / workers
			hi := (w + 1) * n / workers
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				if m != nil {
					m.queueWait.Observe(float64(time.Since(spawned).Nanoseconds()))
				}
				run(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	if panicked != nil {
		if m != nil {
			m.panics.Inc()
		}
		return panicked
	}
	if done != nil {
		if err := ctx.Err(); err != nil {
			if m != nil {
				m.cancelled.Inc()
			}
			return err
		}
	}
	return nil
}

// Map returns [fn(0), fn(1), …, fn(n-1)], computing the entries with at
// most workers goroutines. The result order is always index order,
// regardless of completion order.
//
// On a non-nil error (cancellation or contained panic) the returned slice
// is partially filled: entries whose fn ran hold its result, the rest hold
// zero values. Callers either discard it or treat the filled entries as a
// best-so-far snapshot (they must then distinguish zero values themselves,
// e.g. by mapping to pointers).
func Map[T any](ctx context.Context, workers, n int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out, err
}

// MapReduce computes fn per index in parallel and folds the results
// serially in index order: fold(…fold(fold(init, fn(0)), fn(1))…, fn(n-1)).
// Because the fold is serial and ordered, non-associative reductions
// (floating-point sums, first-wins argmax) give the same answer at any
// worker count. On error the fold is skipped and init is returned.
func MapReduce[T, A any](ctx context.Context, workers, n int, fn func(i int) T, init A, fold func(acc A, v T) A) (A, error) {
	vals, err := Map(ctx, workers, n, fn)
	if err != nil {
		return init, err
	}
	acc := init
	for _, v := range vals {
		acc = fold(acc, v)
	}
	return acc, nil
}
