// Package telemetry is the pipeline's observability substrate: a
// stdlib-only metrics registry (counters, gauges, fixed-bucket histograms)
// plus a lightweight span/phase tracer, with human-readable text,
// machine-readable JSON, and trace-tree exporters, and runtime/pprof
// profiling helpers for the CLIs.
//
// Metric and span names follow a subsystem/phase/name convention
// (DESIGN.md §8): "cost/whatif/calls", "core/greedy/argmax_nanos",
// "advisor/enumerate/rounds". Keeping the first segment equal to the
// emitting package makes exports self-locating.
//
// Nil-safety: every method is a no-op on a nil *Registry, a nil *Span, and
// the nil metric handles a nil registry returns. Library code threads an
// optional registry through its hot paths unconditionally; when telemetry
// is disabled the whole instrumentation path is a pointer check with zero
// allocation (pinned by TestDisabledTelemetryAllocatesNothing).
//
// Concurrency: metric handles are atomics and safe for concurrent use from
// worker-pool goroutines (see the parallel package's hammer test). Spans
// are structural — Start/End delimit pipeline phases and must be called
// from one goroutine at a time (the orchestration path), never from inside
// worker closures; workers bump metrics, phases own spans.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DurationBuckets are the default histogram boundaries for duration
// observations in nanoseconds: 1µs … 10s, one decade per bucket.
var DurationBuckets = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// Counter is a monotonically increasing (between Resets) int64 metric.
// The zero value is ready to use; all methods are nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter in place, so handles held by callers stay valid.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// Gauge is a last-write-wins float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Reset zeroes the gauge.
func (g *Gauge) Reset() {
	if g == nil {
		return
	}
	g.bits.Store(0)
}

// Histogram counts observations into fixed upper-bound buckets. Bounds are
// immutable after registration; observations above the last bound land in
// an overflow bucket. Count and per-bucket counts are exact under
// concurrency; Sum is maintained with a CAS loop.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds (shared slice; do not mutate).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns the per-bucket counts; the last entry is the
// overflow bucket (observations above the final bound).
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Reset zeroes all buckets, the count, and the sum in place.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
}

// Registry holds named metrics and the span forest of one pipeline run.
// Metric registration is idempotent: the first caller of a name creates
// the metric, later callers get the same handle. All methods are nil-safe.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spanMu sync.Mutex
	roots  []*Span
	active *Span
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (registering on first use) the named counter, or nil on
// a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge, or nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram, or nil
// on a nil registry. The first registration fixes the bucket bounds; later
// calls return the existing histogram regardless of the bounds argument.
// Bounds must be sorted ascending; nil bounds default to DurationBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DurationBuckets
		}
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// counterValues snapshots every counter (for span deltas).
func (r *Registry) counterValues() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// HistogramValues is one histogram's state inside a Snapshot.
type HistogramValues struct {
	Count   int64
	Sum     float64
	Bounds  []float64
	Buckets []int64 // per-bucket counts; last is overflow
}

// Snapshot is a point-in-time copy of every metric, used for before/after
// deltas around an experiment or pipeline phase.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramValues
}

// Snapshot copies the current metric values (nil on a nil registry).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramValues, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramValues{
			Count: h.Count(), Sum: h.Sum(), Bounds: h.bounds, Buckets: h.BucketCounts(),
		}
	}
	return s
}

// Delta returns s − prev: counter and histogram values are subtracted
// (names absent from prev count from zero), gauges are copied from s.
// A nil prev returns a copy of s; a nil s returns nil.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	if s == nil {
		return nil
	}
	d := &Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramValues, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		var base int64
		if prev != nil {
			base = prev.Counters[name]
		}
		d.Counters[name] = v - base
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, hv := range s.Histograms {
		out := HistogramValues{Count: hv.Count, Sum: hv.Sum, Bounds: hv.Bounds,
			Buckets: append([]int64{}, hv.Buckets...)}
		if prev != nil {
			if p, ok := prev.Histograms[name]; ok && len(p.Buckets) == len(out.Buckets) {
				out.Count -= p.Count
				out.Sum -= p.Sum
				for i := range out.Buckets {
					out.Buckets[i] -= p.Buckets[i]
				}
			}
		}
		d.Histograms[name] = out
	}
	return d
}

// Reset zeroes every metric in place (handles held by callers stay valid)
// and drops all recorded spans — the multi-run experiment-harness hook.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
	r.mu.Unlock()
	r.spanMu.Lock()
	r.roots = nil
	r.active = nil
	r.spanMu.Unlock()
}
