package telemetry

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"
)

// Flags is the telemetry CLI surface shared by every cmd/ binary:
//
//	-metrics-out=<file.json>  versioned JSON metrics+span export
//	-trace                    phase tree to stderr on exit
//	-trace-out=<file.json>    Chrome trace-event JSON (Perfetto-loadable)
//	-pprof-dir=<dir>          cpu.pprof + heap.pprof around the run
//	-debug-addr=<host:port>   live debug HTTP server (/metrics, /healthz,
//	                          /progress, /debug/pprof) for the run's duration
//	-progress                 rate-limited progress lines on stderr
//
// Register the flags, Open before the pipeline, defer Close.
type Flags struct {
	MetricsOut string
	Trace      bool
	TraceOut   string
	PprofDir   string
	DebugAddr  string
	Progress   bool
}

// Register installs the flags on fs (use flag.CommandLine in main).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write a JSON metrics + phase-span export to this file")
	fs.BoolVar(&f.Trace, "trace", false,
		"print the phase/span tree (durations, counter deltas) to stderr on exit")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write the span tree as Chrome trace-event JSON (load in Perfetto) to this file")
	fs.StringVar(&f.PprofDir, "pprof-dir", "",
		"write cpu.pprof and heap.pprof covering the run to this directory")
	fs.StringVar(&f.DebugAddr, "debug-addr", "",
		"serve /metrics (OpenMetrics), /healthz, /progress, /debug/pprof on this address while running (port 0 picks a free port)")
	fs.BoolVar(&f.Progress, "progress", false,
		"log rate-limited progress lines (phase, done/total, benefit) to stderr")
}

// Run is one CLI telemetry session. Registry is nil when no collector
// flag was given, keeping the instrumented pipeline on its no-op path;
// likewise Tracker is nil (and ProgressFunc returns nil) unless
// -debug-addr or -progress asked for the progress bus.
type Run struct {
	Registry     *Registry
	Tracker      *Tracker
	flags        *Flags
	log          *slog.Logger
	server       *Server
	stopProfiles func() error
}

// Open starts the session: allocates the registry if any collector flag
// is set, begins profiling if -pprof-dir was given, and launches the
// debug server if -debug-addr was given (logging the bound address so
// scripts can scrape a port-0 server).
func (f *Flags) Open(log *slog.Logger) (*Run, error) {
	run := &Run{flags: f, log: log}
	if f.MetricsOut != "" || f.Trace || f.TraceOut != "" || f.DebugAddr != "" {
		run.Registry = New()
	}
	if f.DebugAddr != "" || f.Progress {
		run.Tracker = NewTracker()
	}
	stop, err := StartProfiles(f.PprofDir)
	if err != nil {
		return nil, err
	}
	run.stopProfiles = stop
	if f.DebugAddr != "" {
		srv, err := Serve(f.DebugAddr, run.Registry, run.Tracker)
		if err != nil {
			_ = stop()
			return nil, fmt.Errorf("telemetry: debug server: %w", err)
		}
		run.server = srv
		log.Info("debug server listening", "addr", srv.Addr())
	}
	return run, nil
}

// ProgressFunc returns the progress sink for core/advisor Options: nil
// when the bus is off, the tracker's ticker (stderr lines + /progress)
// under -progress, or the silent tracker observer under -debug-addr
// alone.
func (r *Run) ProgressFunc() ProgressFunc {
	if r == nil || r.Tracker == nil {
		return nil
	}
	if r.flags.Progress {
		return r.Tracker.Ticker(r.log, time.Second)
	}
	return r.Tracker.Observe
}

// Close finishes the session: shuts the debug server down, stops
// profiling, prints the trace tree to stderr (-trace), and writes the
// JSON (-metrics-out) and trace-event (-trace-out) exports.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	var firstErr error
	if err := r.server.Close(); err != nil {
		firstErr = fmt.Errorf("telemetry: debug server shutdown: %w", err)
	}
	if err := r.stopProfiles(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("telemetry: stopping profiles: %w", err)
	}
	if r.flags.Trace {
		if err := r.Registry.WriteTrace(os.Stderr); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("telemetry: writing trace: %w", err)
		}
	}
	if r.flags.TraceOut != "" {
		if err := writeFile(r.flags.TraceOut, r.Registry.WriteTraceEvents); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("telemetry: writing trace events: %w", err)
		}
	}
	if r.flags.MetricsOut != "" {
		if err := writeFile(r.flags.MetricsOut, r.Registry.WriteJSON); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("telemetry: writing metrics: %w", err)
		}
	}
	return firstErr
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
