package telemetry

import (
	"flag"
	"fmt"
	"os"
)

// Flags is the telemetry CLI surface shared by every cmd/ binary:
//
//	-metrics-out=<file.json>  versioned JSON metrics+span export
//	-trace                    phase tree to stderr on exit
//	-pprof-dir=<dir>          cpu.pprof + heap.pprof around the run
//
// Register the flags, Open before the pipeline, defer Close.
type Flags struct {
	MetricsOut string
	Trace      bool
	PprofDir   string
}

// Register installs the three flags on fs (use flag.CommandLine in main).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write a JSON metrics + phase-span export to this file")
	fs.BoolVar(&f.Trace, "trace", false,
		"print the phase/span tree (durations, counter deltas) to stderr on exit")
	fs.StringVar(&f.PprofDir, "pprof-dir", "",
		"write cpu.pprof and heap.pprof covering the run to this directory")
}

// Run is one CLI telemetry session. Registry is nil when neither
// -metrics-out nor -trace was given, keeping the instrumented pipeline on
// its no-op path.
type Run struct {
	Registry     *Registry
	flags        *Flags
	stopProfiles func() error
}

// Open starts the session: allocates the registry if any collector flag is
// set and begins profiling if -pprof-dir was given.
func (f *Flags) Open() (*Run, error) {
	run := &Run{flags: f}
	if f.MetricsOut != "" || f.Trace {
		run.Registry = New()
	}
	stop, err := StartProfiles(f.PprofDir)
	if err != nil {
		return nil, err
	}
	run.stopProfiles = stop
	return run, nil
}

// Close finishes the session: stops profiling, prints the trace tree to
// stderr (-trace), and writes the JSON export (-metrics-out).
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	var firstErr error
	if err := r.stopProfiles(); err != nil {
		firstErr = fmt.Errorf("telemetry: stopping profiles: %w", err)
	}
	if r.flags.Trace {
		if err := r.Registry.WriteTrace(os.Stderr); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("telemetry: writing trace: %w", err)
		}
	}
	if r.flags.MetricsOut != "" {
		f, err := os.Create(r.flags.MetricsOut)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return firstErr
		}
		if err := r.Registry.WriteJSON(f); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("telemetry: writing metrics: %w", err)
		}
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
