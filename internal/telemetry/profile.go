package telemetry

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts a CPU profile writing to dir/cpu.pprof (creating
// dir) and returns a stop function that ends the CPU profile and writes a
// post-GC heap profile to dir/heap.pprof. The CLIs call it around their
// compress/tune phases (-pprof-dir). An empty dir is a no-op: the returned
// stop function does nothing.
func StartProfiles(dir string) (stop func() error, err error) {
	if dir == "" {
		return func() error { return nil }, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		_ = cpu.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return err
		}
		heap, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			return err
		}
		defer heap.Close()
		runtime.GC() // settle allocations so the heap profile reflects live data
		return pprof.WriteHeapProfile(heap)
	}, nil
}
