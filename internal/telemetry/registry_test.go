package telemetry_test

import (
	"context"
	"strings"
	"testing"

	"isum/internal/parallel"
	"isum/internal/telemetry"
)

// TestRegistryUnderForEach hammers one registry from the worker pool the
// pipeline actually uses and asserts exact totals: counters and histogram
// counts are atomics, so no update may be lost at any worker count.
func TestRegistryUnderForEach(t *testing.T) {
	const (
		workers = 8
		n       = 20000
	)
	reg := telemetry.New()
	ctr := reg.Counter("test/hammer/adds")
	hist := reg.Histogram("test/hammer/values", []float64{10, 100, 1000})
	if err := parallel.ForEach(context.Background(), workers, n, func(i int) {
		ctr.Inc()
		reg.Counter("test/hammer/lookups").Add(2) // exercise concurrent registration
		hist.Observe(float64(i % 2000))
	}); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if got := ctr.Value(); got != n {
		t.Errorf("counter = %d, want %d", got, n)
	}
	if got := reg.Counter("test/hammer/lookups").Value(); got != 2*n {
		t.Errorf("lookup counter = %d, want %d", got, 2*n)
	}
	if got := hist.Count(); got != n {
		t.Errorf("histogram count = %d, want %d", got, n)
	}
	// i%2000 over 20000 iterations: 10 full cycles. Bucket le=10 holds
	// values 0..10 (11 per cycle), le=100 holds 11..100 (90), le=1000 holds
	// 101..1000 (900), overflow holds 1001..1999 (999).
	buckets := hist.BucketCounts()
	want := []int64{110, 900, 9000, 9990}
	for i, w := range want {
		if buckets[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, buckets[i], w)
		}
	}
	var total int64
	for _, b := range buckets {
		total += b
	}
	if total != n {
		t.Errorf("bucket totals = %d, want %d", total, n)
	}
}

func TestSnapshotDeltaReset(t *testing.T) {
	reg := telemetry.New()
	c := reg.Counter("a/b/c")
	g := reg.Gauge("a/b/g")
	h := reg.Histogram("a/b/h", []float64{1, 10})
	c.Add(5)
	g.Set(2.5)
	h.Observe(0.5)
	h.Observe(100)

	before := reg.Snapshot()
	c.Add(7)
	h.Observe(5)
	delta := reg.Snapshot().Delta(before)
	if delta.Counters["a/b/c"] != 7 {
		t.Errorf("counter delta = %d, want 7", delta.Counters["a/b/c"])
	}
	hv := delta.Histograms["a/b/h"]
	if hv.Count != 1 || hv.Buckets[1] != 1 {
		t.Errorf("histogram delta = %+v, want count 1 in bucket le=10", hv)
	}
	if delta.Gauges["a/b/g"] != 2.5 {
		t.Errorf("gauge in delta = %g, want last value 2.5", delta.Gauges["a/b/g"])
	}

	reg.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("Reset left metric residue")
	}
	// Handles registered before Reset must stay live.
	c.Inc()
	if reg.Counter("a/b/c").Value() != 1 {
		t.Error("counter handle detached from registry after Reset")
	}
}

func TestSpanNestingAndDeltas(t *testing.T) {
	reg := telemetry.New()
	calls := reg.Counter("x/y/calls")

	root := reg.Start("root")
	calls.Add(1)
	child := reg.Start("child")
	child.SetAttr("round", 3)
	calls.Add(2)
	child.End()
	calls.Add(4)
	root.End()

	roots := reg.Spans()
	if len(roots) != 1 || roots[0].Name() != "root" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 1 || kids[0].Name() != "child" {
		t.Fatalf("children = %v", kids)
	}
	if d := kids[0].CounterDeltas()["x/y/calls"]; d != 2 {
		t.Errorf("child delta = %d, want 2", d)
	}
	if d := roots[0].CounterDeltas()["x/y/calls"]; d != 7 {
		t.Errorf("root delta = %d, want 7", d)
	}
	// After the stack unwound, new spans are roots again.
	second := reg.Start("second")
	second.End()
	if got := len(reg.Spans()); got != 2 {
		t.Errorf("root spans = %d, want 2", got)
	}

	var sb strings.Builder
	if err := reg.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"root", "  child", "round=3", "x/y/calls +2"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

// TestDisabledTelemetryAllocatesNothing pins the no-op contract: with a
// nil registry the entire instrumentation surface performs zero
// allocations, so the library path costs nothing when telemetry is off.
func TestDisabledTelemetryAllocatesNothing(t *testing.T) {
	var reg *telemetry.Registry
	allocs := testing.AllocsPerRun(1000, func() {
		sp := reg.Start("core/compress")
		sp.SetAttr("k", 10)
		reg.Counter("cost/whatif/calls").Add(1)
		reg.Gauge("g").Set(1)
		reg.Histogram("h", nil).Observe(1)
		reg.Snapshot().Delta(nil)
		sp.End()
		reg.Reset()
	})
	if allocs != 0 {
		t.Errorf("nil-registry path allocates %.1f per run, want 0", allocs)
	}
}
