package telemetry

import (
	"encoding/json"
	"io"
	"log/slog"
	"sync"
	"time"
)

// ProgressEvent is one streaming update from a running pipeline phase —
// the unit of the progress bus (DESIGN.md §13). Producers (core, advisor)
// emit events; consumers (the Tracker behind /progress, the -progress
// stderr ticker) aggregate them. Events carry counts, never derived
// rates: rate and ETA are computed by the consumer against its own clock,
// so emitting is allocation-free and never reads the wall clock.
type ProgressEvent struct {
	// Phase names the emitting pipeline phase in the span convention:
	// "core/build-states", "core/greedy", "core/shard-fanout",
	// "core/shard-merge", "core/weigh", "advisor/candidates",
	// "advisor/enumerate".
	Phase string
	// Round is the greedy/enumeration round count so far (0 when the
	// phase has no round structure).
	Round int
	// Done is the number of phase units completed: queries built,
	// selections made (k-so-far), shards finished, indexes chosen.
	Done int
	// Total is the expected unit count for the phase (0 = unknown).
	Total int
	// Benefit is the cumulative benefit (compression) or weighted gain
	// (tuning) accumulated so far in the phase.
	Benefit float64
	// Shards is the shard fan-out of a sharded compression (0 = unsharded).
	Shards int
}

// ProgressFunc receives progress events. Implementations must be safe
// for concurrent use: the shard fan-out and the build-states sweep emit
// from worker-pool goroutines. A nil ProgressFunc disables the bus.
type ProgressFunc func(ProgressEvent)

// Emit calls the function with the event; a nil ProgressFunc is a no-op
// costing one pointer check and zero allocations (pinned by
// TestNilProgressFuncZeroAlloc).
func (f ProgressFunc) Emit(e ProgressEvent) {
	if f != nil {
		f(e)
	}
}

// Tracker folds progress events into the latest-state snapshot served by
// the debug server's /progress endpoint. It is the canonical
// ProgressFunc sink: wire Tracker.Observe (or Ticker) into
// core/advisor Options.Progress. All methods are safe for concurrent
// use and nil-safe.
type Tracker struct {
	mu  sync.Mutex
	now func() time.Time // test seam; defaults to time.Now

	start  time.Time // first event
	last   ProgressEvent
	events int64

	// phaseStart/phaseDone baseline the current phase's rate: units per
	// second is (last.Done − phaseDone) / (now − phaseStart).
	phaseStart time.Time
	phaseDone  int

	lastLog      time.Time
	lastLogPhase string
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{now: time.Now} //lint:allow determinism progress rates are wall-clock by definition; pipeline output never depends on them
}

// Observe records one event. It is a valid ProgressFunc.
func (t *Tracker) Observe(e ProgressEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	if t.events == 0 {
		t.start = now
	}
	if e.Phase != t.last.Phase {
		t.phaseStart = now
		t.phaseDone = e.Done
	}
	t.last = e
	t.events++
}

// progressJSON is the /progress response shape. Field order is fixed by
// this struct, so the document is deterministic for a fixed tracker
// state.
type progressJSON struct {
	Phase          string  `json:"phase"`
	Round          int     `json:"round"`
	Done           int     `json:"done"`
	Total          int     `json:"total"`
	Benefit        float64 `json:"benefit"`
	Shards         int     `json:"shards"`
	Events         int64   `json:"events"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	RatePerSecond  float64 `json:"rate_per_second"`
	EtaSeconds     float64 `json:"eta_seconds"`
}

// snapshot derives the JSON view under the lock.
func (t *Tracker) snapshot() progressJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := progressJSON{
		Phase:   t.last.Phase,
		Round:   t.last.Round,
		Done:    t.last.Done,
		Total:   t.last.Total,
		Benefit: t.last.Benefit,
		Shards:  t.last.Shards,
		Events:  t.events,
	}
	if t.events == 0 {
		return p
	}
	now := t.now()
	p.ElapsedSeconds = now.Sub(t.start).Seconds()
	if dt := now.Sub(t.phaseStart).Seconds(); dt > 0 {
		if units := t.last.Done - t.phaseDone; units > 0 {
			p.RatePerSecond = float64(units) / dt
		}
	}
	if p.RatePerSecond > 0 && p.Total > p.Done {
		p.EtaSeconds = float64(p.Total-p.Done) / p.RatePerSecond
	}
	return p
}

// WriteJSON writes the current progress snapshot. A nil tracker writes a
// valid all-zero document.
func (t *Tracker) WriteJSON(w io.Writer) error {
	var p progressJSON
	if t != nil {
		p = t.snapshot()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(p)
}

// Ticker returns a ProgressFunc that records into the tracker and logs a
// rate-limited progress line: at most one per interval, plus one on
// every phase transition so short phases stay visible. This is the
// -progress stderr ticker.
func (t *Tracker) Ticker(log *slog.Logger, interval time.Duration) ProgressFunc {
	return func(e ProgressEvent) {
		t.Observe(e)
		t.mu.Lock()
		now := t.now()
		emit := e.Phase != t.lastLogPhase || now.Sub(t.lastLog) >= interval
		if emit {
			t.lastLog = now
			t.lastLogPhase = e.Phase
		}
		t.mu.Unlock()
		if !emit {
			return
		}
		args := []any{"phase", e.Phase, "done", e.Done}
		if e.Total > 0 {
			args = append(args, "total", e.Total)
		}
		if e.Round > 0 {
			args = append(args, "round", e.Round)
		}
		if e.Benefit > 0 {
			args = append(args, "benefit", e.Benefit)
		}
		if e.Shards > 0 {
			args = append(args, "shards", e.Shards)
		}
		log.Info("progress", args...)
	}
}
