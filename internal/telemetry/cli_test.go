package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestNoFlagsNoGoroutines pins the zero-overhead contract from server.go:
// with no telemetry flag set, Open allocates no registry, no tracker, no
// progress sink, and starts no goroutines.
func TestNoFlagsNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	var f Flags
	run, err := f.Open(NewDeterministicLogger(io.Discard))
	if err != nil {
		t.Fatal(err)
	}
	if run.Registry != nil || run.Tracker != nil {
		t.Errorf("no-flags Open allocated Registry=%v Tracker=%v", run.Registry, run.Tracker)
	}
	if run.ProgressFunc() != nil {
		t.Error("no-flags ProgressFunc is non-nil")
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("no-flags Open grew goroutines %d -> %d", before, got)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines after Close %d -> %d", before, got)
	}
}

// TestDebugAddrLifecycle: -debug-addr spins the server up, logs the bound
// address (the line scripts/ci.sh greps for), serves scrapes, and Close
// reaps the serve goroutine.
func TestDebugAddrLifecycle(t *testing.T) {
	var sb strings.Builder
	log := NewDeterministicLogger(&sb)
	f := Flags{DebugAddr: "127.0.0.1:0"}
	run, err := f.Open(log)
	if err != nil {
		t.Fatal(err)
	}
	if run.Registry == nil || run.Tracker == nil || run.server == nil {
		t.Fatal("-debug-addr Open should allocate registry, tracker, and server")
	}
	if !strings.Contains(sb.String(), `msg="debug server listening" addr=127.0.0.1:`) {
		t.Errorf("missing listen log line: %q", sb.String())
	}
	progress := run.ProgressFunc()
	if progress == nil {
		t.Fatal("-debug-addr ProgressFunc is nil")
	}
	progress(ProgressEvent{Phase: "core/greedy", Done: 1, Total: 3})

	addr := run.server.Addr()
	resp, err := http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var p progressJSON
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.Phase != "core/greedy" || p.Done != 1 {
		t.Errorf("/progress = %+v", p)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("debug server still answering after Close")
	}
}

// TestProgressFlagUsesTicker: -progress without -debug-addr keeps the
// registry nil (no collector asked) but still wires a tracker-backed
// ticker that writes progress lines to the logger.
func TestProgressFlagUsesTicker(t *testing.T) {
	var sb strings.Builder
	f := Flags{Progress: true}
	run, err := f.Open(NewDeterministicLogger(&sb))
	if err != nil {
		t.Fatal(err)
	}
	if run.Registry != nil {
		t.Error("-progress alone should not allocate a registry")
	}
	progress := run.ProgressFunc()
	if progress == nil {
		t.Fatal("-progress ProgressFunc is nil")
	}
	progress(ProgressEvent{Phase: "core/build-states", Done: 1024, Total: 4096})
	if !strings.Contains(sb.String(), "msg=progress phase=core/build-states done=1024 total=4096") {
		t.Errorf("ticker line missing: %q", sb.String())
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunCloseWritesExports: -metrics-out and -trace-out land on disk as
// valid documents after Close.
func TestRunCloseWritesExports(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.json")
	f := Flags{MetricsOut: metrics, TraceOut: trace}
	run, err := f.Open(NewDeterministicLogger(io.Discard))
	if err != nil {
		t.Fatal(err)
	}
	run.Registry.Counter("cost/whatif/calls").Add(2)
	sp := run.Registry.Start("core/compress")
	time.Sleep(time.Millisecond)
	sp.End()
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	var ex struct {
		Version  int `json:"version"`
		Counters []struct {
			Name string `json:"name"`
		} `json:"counters"`
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Version != 1 || len(ex.Counters) != 1 || ex.Counters[0].Name != "cost/whatif/calls" {
		t.Errorf("metrics export = %+v", ex)
	}
	var te struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	data, err = os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &te); err != nil {
		t.Fatal(err)
	}
	if len(te.TraceEvents) != 1 || te.TraceEvents[0].Name != "core/compress" {
		t.Errorf("trace export = %+v", te)
	}
}
