package telemetry

import (
	"strings"
	"testing"
)

// TestDeterministicLoggerGolden pins the logfmt shape the CLIs emit
// (minus the time attribute, which the deterministic variant drops so
// tests can compare bytes).
func TestDeterministicLoggerGolden(t *testing.T) {
	var sb strings.Builder
	log := NewDeterministicLogger(&sb)
	log.Info("compressed workload", "variant", "ISUM", "selected", 20, "of", 1000)
	log.Warn("deadline reached; output is the best-so-far selection", "rounds", 7)
	const golden = `level=INFO msg="compressed workload" variant=ISUM selected=20 of=1000
level=WARN msg="deadline reached; output is the best-so-far selection" rounds=7
`
	if sb.String() != golden {
		t.Errorf("log output mismatch\n got: %q\nwant: %q", sb.String(), golden)
	}
}

// TestLoggerIncludesTime: the production logger keeps the timestamp; only
// the deterministic variant strips it.
func TestLoggerIncludesTime(t *testing.T) {
	var sb strings.Builder
	NewLogger(&sb).Info("x")
	if !strings.Contains(sb.String(), "time=") {
		t.Errorf("production logger output lacks time attr: %q", sb.String())
	}
	var db strings.Builder
	NewDeterministicLogger(&db).Info("x")
	if strings.Contains(db.String(), "time=") {
		t.Errorf("deterministic logger output carries time attr: %q", db.String())
	}
}
