package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source for the Tracker's now seam.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestTracker() (*Tracker, *fakeClock) {
	c := &fakeClock{t: time.Unix(1700000000, 0)}
	tr := NewTracker()
	tr.now = c.now
	return tr, c
}

func TestTrackerSnapshotRateAndETA(t *testing.T) {
	tr, clk := newTestTracker()
	tr.Observe(ProgressEvent{Phase: "core/build-states", Done: 0, Total: 1000})
	clk.advance(2 * time.Second)
	tr.Observe(ProgressEvent{Phase: "core/build-states", Done: 200, Total: 1000})

	p := tr.snapshot()
	if p.Phase != "core/build-states" || p.Done != 200 || p.Total != 1000 || p.Events != 2 {
		t.Fatalf("snapshot = %+v", p)
	}
	if p.ElapsedSeconds != 2 {
		t.Errorf("elapsed = %v, want 2", p.ElapsedSeconds)
	}
	// 200 units in 2s → 100/s; 800 remaining → ETA 8s.
	if p.RatePerSecond != 100 {
		t.Errorf("rate = %v, want 100", p.RatePerSecond)
	}
	if p.EtaSeconds != 8 {
		t.Errorf("eta = %v, want 8", p.EtaSeconds)
	}
}

// TestTrackerPhaseChangeResetsRate: the rate baseline restarts per phase,
// so a fast phase does not inflate the next phase's ETA.
func TestTrackerPhaseChangeResetsRate(t *testing.T) {
	tr, clk := newTestTracker()
	tr.Observe(ProgressEvent{Phase: "core/build-states", Done: 5000, Total: 5000})
	clk.advance(1 * time.Second)
	tr.Observe(ProgressEvent{Phase: "core/greedy", Done: 0, Total: 100})
	clk.advance(4 * time.Second)
	tr.Observe(ProgressEvent{Phase: "core/greedy", Done: 8, Total: 100})

	p := tr.snapshot()
	// 8 selections in 4s → 2/s, measured from the greedy phase start only.
	if p.RatePerSecond != 2 {
		t.Errorf("rate = %v, want 2", p.RatePerSecond)
	}
	if p.EtaSeconds != 46 {
		t.Errorf("eta = %v, want 46", p.EtaSeconds)
	}
}

func TestTrackerWriteJSON(t *testing.T) {
	tr, _ := newTestTracker()
	tr.Observe(ProgressEvent{Phase: "core/greedy", Round: 3, Done: 3, Total: 10, Benefit: 1.5, Shards: 4})
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"phase", "round", "done", "total", "benefit", "shards",
		"events", "elapsed_seconds", "rate_per_second", "eta_seconds"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("/progress document missing %q: %s", key, sb.String())
		}
	}
	if doc["phase"] != "core/greedy" || doc["benefit"] != 1.5 {
		t.Errorf("document = %s", sb.String())
	}
}

// TestNilTrackerAndWriteJSON: every entry point tolerates nil — the
// no-flags CLI path passes nil Trackers around freely.
func TestNilTrackerAndWriteJSON(t *testing.T) {
	var tr *Tracker
	tr.Observe(ProgressEvent{Phase: "x"}) // must not panic
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc progressJSON
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc != (progressJSON{}) {
		t.Errorf("nil tracker document = %+v, want zero", doc)
	}
}

// TestNilProgressFuncZeroAlloc pins the disabled-bus contract referenced
// in progress.go: emitting through a nil ProgressFunc allocates nothing,
// so instrumented hot loops cost one nil check when telemetry is off.
func TestNilProgressFuncZeroAlloc(t *testing.T) {
	var f ProgressFunc
	e := ProgressEvent{Phase: "core/greedy", Round: 1, Done: 1, Total: 10}
	allocs := testing.AllocsPerRun(1000, func() {
		f.Emit(e)
	})
	if allocs != 0 {
		t.Errorf("nil ProgressFunc.Emit allocates %v per call, want 0", allocs)
	}
}

// TestTickerRateLimit: the stderr ticker logs at most once per interval
// but always on a phase transition.
func TestTickerRateLimit(t *testing.T) {
	tr, clk := newTestTracker()
	var sb strings.Builder
	log := NewDeterministicLogger(&sb)
	tick := tr.Ticker(log, time.Second)

	tick(ProgressEvent{Phase: "core/build-states", Done: 100, Total: 1000}) // first: phase change
	clk.advance(100 * time.Millisecond)
	tick(ProgressEvent{Phase: "core/build-states", Done: 200, Total: 1000}) // suppressed
	clk.advance(time.Second)
	tick(ProgressEvent{Phase: "core/build-states", Done: 900, Total: 1000})                          // interval elapsed
	tick(ProgressEvent{Phase: "core/greedy", Round: 1, Done: 1, Total: 10, Benefit: 0.5, Shards: 2}) // phase change

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("ticker logged %d lines, want 3:\n%s", len(lines), sb.String())
	}
	if want := "level=INFO msg=progress phase=core/build-states done=100 total=1000"; lines[0] != want {
		t.Errorf("line 0 = %q, want %q", lines[0], want)
	}
	if !strings.Contains(lines[1], "done=900") {
		t.Errorf("line 1 = %q, want the post-interval event", lines[1])
	}
	if want := "level=INFO msg=progress phase=core/greedy done=1 total=10 round=1 benefit=0.5 shards=2"; lines[2] != want {
		t.Errorf("line 2 = %q, want %q", lines[2], want)
	}
	if tr.snapshot().Events != 4 {
		t.Errorf("tracker saw %d events, want all 4 (suppression is log-only)", tr.snapshot().Events)
	}
}
