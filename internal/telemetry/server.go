package telemetry

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Handler returns the debug-plane HTTP handler — the exact surface a
// future cmd/isumd mounts:
//
//	GET /metrics      OpenMetrics/Prometheus text exposition of reg
//	GET /healthz      liveness ("ok")
//	GET /progress     JSON snapshot of the progress Tracker
//	GET /debug/pprof/ net/http/pprof profiles
//
// reg and tr may be nil; the endpoints then serve valid empty documents.
func Handler(reg *Registry, tr *Tracker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteOpenMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug HTTP server bound to one telemetry session.
type Server struct {
	srv  *http.Server
	ln   net.Listener
	errc chan error

	closeOnce sync.Once
	closeErr  error
}

// Serve binds addr (host:port; port 0 picks a free port) and serves the
// debug plane in the background until Close. It exists only behind the
// -debug-addr flag: without the flag no Server is created and the
// process runs zero extra goroutines (pinned by TestNoFlagsNoGoroutines).
func Serve(addr string, reg *Registry, tr *Tracker) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv:  &http.Server{Handler: Handler(reg, tr)},
		ln:   ln,
		errc: make(chan error, 1),
	}
	go func() { //lint:allow concurrency the debug server must accept while the pipeline runs; lifecycle is owned by Serve/Close, not the worker pool
		s.errc <- s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close gracefully shuts the server down, waiting for in-flight scrapes
// (bounded), and reaps the serve goroutine. Nil-safe and idempotent:
// repeated calls return the first shutdown's error.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := s.srv.Shutdown(ctx)
		if serveErr := <-s.errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
			err = serveErr
		}
		s.closeErr = err
	})
	return s.closeErr
}
