package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// ExportVersion is the schema version stamped into JSON exports. Bump it
// on any breaking change to the export shape; downstream tooling
// (scripts/metricscheck, dashboards) keys on it.
const ExportVersion = 1

// The JSON export schema. Field order is fixed by these struct
// definitions and slices are sorted by name, so the export is
// byte-deterministic for deterministic metric values — pinned by the
// golden test in export_test.go.
type jsonExport struct {
	Version    int             `json:"version"`
	Counters   []jsonCounter   `json:"counters"`
	Gauges     []jsonGauge     `json:"gauges"`
	Histograms []jsonHistogram `json:"histograms"`
	Spans      []*jsonSpan     `json:"spans"`
}

type jsonCounter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type jsonGauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type jsonHistogram struct {
	Name     string       `json:"name"`
	Count    int64        `json:"count"`
	Sum      float64      `json:"sum"`
	Buckets  []jsonBucket `json:"buckets"`
	Overflow int64        `json:"overflow"`
}

type jsonBucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

type jsonSpan struct {
	Name          string            `json:"name"`
	DurationNs    int64             `json:"duration_ns"`
	Attrs         map[string]string `json:"attrs,omitempty"`
	CounterDeltas map[string]int64  `json:"counter_deltas,omitempty"`
	Children      []*jsonSpan       `json:"children,omitempty"`
}

func (r *Registry) export() *jsonExport {
	e := &jsonExport{
		Version:    ExportVersion,
		Counters:   []jsonCounter{},
		Gauges:     []jsonGauge{},
		Histograms: []jsonHistogram{},
		Spans:      []*jsonSpan{},
	}
	if r == nil {
		return e
	}
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		e.Counters = append(e.Counters, jsonCounter{Name: name, Value: s.Counters[name]})
	}
	for _, name := range sortedKeys(s.Gauges) {
		e.Gauges = append(e.Gauges, jsonGauge{Name: name, Value: s.Gauges[name]})
	}
	for _, name := range sortedKeys(s.Histograms) {
		hv := s.Histograms[name]
		jh := jsonHistogram{Name: name, Count: hv.Count, Sum: hv.Sum, Buckets: []jsonBucket{}}
		for i, b := range hv.Bounds {
			jh.Buckets = append(jh.Buckets, jsonBucket{LE: b, Count: hv.Buckets[i]})
		}
		jh.Overflow = hv.Buckets[len(hv.Buckets)-1]
		e.Histograms = append(e.Histograms, jh)
	}
	for _, sp := range r.Spans() {
		e.Spans = append(e.Spans, exportSpan(sp))
	}
	return e
}

func exportSpan(sp *Span) *jsonSpan {
	js := &jsonSpan{Name: sp.name, DurationNs: sp.dur.Nanoseconds()}
	if len(sp.attrs) > 0 {
		js.Attrs = make(map[string]string, len(sp.attrs))
		for _, a := range sp.attrs {
			js.Attrs[a.Key] = a.Value
		}
	}
	js.CounterDeltas = sp.deltas
	for _, c := range sp.children {
		js.Children = append(js.Children, exportSpan(c))
	}
	return js
}

// WriteJSON writes the versioned machine-readable export: all metrics
// (sorted by name) and the span forest (in start order). A nil registry
// writes a valid empty export.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.export())
}

// WriteText writes a human-readable metrics dump (sorted by name).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "  %-44s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "  %-44s %.6g\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, name := range sortedKeys(s.Histograms) {
			hv := s.Histograms[name]
			mean := 0.0
			if hv.Count > 0 {
				mean = hv.Sum / float64(hv.Count)
			}
			fmt.Fprintf(w, "  %-44s count %d  mean %.6g\n", name, hv.Count, mean)
		}
	}
	return nil
}

// WriteTrace writes the span forest as an indented phase tree with
// durations, attributes, and per-span counter deltas — the -trace output.
func (r *Registry) WriteTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, sp := range r.Spans() {
		if err := writeTraceSpan(w, sp, 0); err != nil {
			return err
		}
	}
	return nil
}

func writeTraceSpan(w io.Writer, sp *Span, depth int) error {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(sp.name)
	fmt.Fprintf(&b, "  %v", sp.dur.Round(time.Microsecond))
	for _, a := range sp.attrs {
		fmt.Fprintf(&b, "  %s=%s", a.Key, a.Value)
	}
	if len(sp.deltas) > 0 {
		b.WriteString("  [")
		for i, name := range sortedKeys(sp.deltas) {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s %+d", name, sp.deltas[name])
		}
		b.WriteString("]")
	}
	if _, err := fmt.Fprintln(w, b.String()); err != nil {
		return err
	}
	for _, c := range sp.children {
		if err := writeTraceSpan(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
