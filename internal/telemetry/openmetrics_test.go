package telemetry

import (
	"strings"
	"testing"
)

// TestOpenMetricsGolden pins the /metrics exposition byte for byte:
// families sorted by name, # HELP carrying the registry-side name,
// counters with the _total suffix, histograms with cumulative le
// buckets, a # EOF terminator. scripts/metricscheck parses exactly this.
func TestOpenMetricsGolden(t *testing.T) {
	reg := New()
	reg.Counter("cost/whatif/calls").Add(42)
	reg.Counter("advisor/enumerate/rounds").Add(3)
	reg.Gauge("core/compress/k").Set(10)
	h := reg.Histogram("core/greedy/argmax_nanos", []float64{1000, 1000000})
	h.Observe(500)
	h.Observe(2500)
	h.Observe(5e6)

	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	const golden = `# HELP advisor_enumerate_rounds isum counter advisor/enumerate/rounds
# TYPE advisor_enumerate_rounds counter
advisor_enumerate_rounds_total 3
# HELP cost_whatif_calls isum counter cost/whatif/calls
# TYPE cost_whatif_calls counter
cost_whatif_calls_total 42
# HELP core_compress_k isum gauge core/compress/k
# TYPE core_compress_k gauge
core_compress_k 10
# HELP core_greedy_argmax_nanos isum histogram core/greedy/argmax_nanos
# TYPE core_greedy_argmax_nanos histogram
core_greedy_argmax_nanos_bucket{le="1000"} 1
core_greedy_argmax_nanos_bucket{le="1e+06"} 2
core_greedy_argmax_nanos_bucket{le="+Inf"} 3
core_greedy_argmax_nanos_sum 5.003e+06
core_greedy_argmax_nanos_count 3
# EOF
`
	if sb.String() != golden {
		t.Errorf("exposition mismatch\n got:\n%s\nwant:\n%s", sb.String(), golden)
	}
}

// TestOpenMetricsNilRegistry: the disabled path still emits a valid
// (empty) document so a scrape of an idle debug server parses.
func TestOpenMetricsNilRegistry(t *testing.T) {
	var reg *Registry
	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "# EOF\n" {
		t.Errorf("nil registry exposition = %q, want \"# EOF\\n\"", sb.String())
	}
}

func TestMetricName(t *testing.T) {
	cases := map[string]string{
		"cost/whatif/calls":        "cost_whatif_calls",
		"core/build-states/nanos":  "core_build_states_nanos",
		"shard/merge/refine-calls": "shard_merge_refine_calls",
		"plain":                    "plain",
	}
	for in, want := range cases {
		if got := MetricName(in); got != want {
			t.Errorf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
