package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestJSONExportGolden pins the machine-readable export schema — version
// field, key order, sorted metric names, span shape — so downstream
// tooling (scripts/metricscheck, dashboards) can rely on it byte for byte.
// Span durations are forced to fixed values; everything else is
// deterministic by construction.
func TestJSONExportGolden(t *testing.T) {
	reg := New()
	reg.Counter("cost/whatif/calls").Add(42)
	reg.Counter("advisor/enumerate/rounds").Add(3)
	reg.Gauge("core/compress/k").Set(10)
	h := reg.Histogram("core/greedy/argmax_nanos", []float64{1000, 1000000})
	h.Observe(500)
	h.Observe(2500)
	h.Observe(5e6)

	root := reg.Start("core/compress")
	root.SetAttr("variant", "ISUM")
	child := reg.Start("core/greedy/round")
	reg.Counter("cost/whatif/calls").Add(8)
	child.End()
	root.End()
	// Wall-clock durations vary run to run; pin them for the golden.
	root.dur = 2 * time.Millisecond
	child.dur = 1 * time.Millisecond

	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "version": 1,
  "counters": [
    {
      "name": "advisor/enumerate/rounds",
      "value": 3
    },
    {
      "name": "cost/whatif/calls",
      "value": 50
    }
  ],
  "gauges": [
    {
      "name": "core/compress/k",
      "value": 10
    }
  ],
  "histograms": [
    {
      "name": "core/greedy/argmax_nanos",
      "count": 3,
      "sum": 5003000,
      "buckets": [
        {
          "le": 1000,
          "count": 1
        },
        {
          "le": 1000000,
          "count": 1
        }
      ],
      "overflow": 1
    }
  ],
  "spans": [
    {
      "name": "core/compress",
      "duration_ns": 2000000,
      "attrs": {
        "variant": "ISUM"
      },
      "counter_deltas": {
        "cost/whatif/calls": 8
      },
      "children": [
        {
          "name": "core/greedy/round",
          "duration_ns": 1000000,
          "counter_deltas": {
            "cost/whatif/calls": 8
          }
        }
      ]
    }
  ]
}
`
	if sb.String() != golden {
		t.Errorf("JSON export drifted from golden schema.\ngot:\n%s\nwant:\n%s", sb.String(), golden)
	}
}

// TestJSONExportEmpty pins that a nil registry still writes a valid,
// versioned document with empty arrays (not nulls).
func TestJSONExportEmpty(t *testing.T) {
	var reg *Registry
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "version": 1,
  "counters": [],
  "gauges": [],
  "histograms": [],
  "spans": []
}
`
	if sb.String() != golden {
		t.Errorf("empty export = %s, want %s", sb.String(), golden)
	}
}

func TestWriteText(t *testing.T) {
	reg := New()
	reg.Counter("a/b/calls").Add(7)
	reg.Gauge("a/b/gauge").Set(1.5)
	reg.Histogram("a/b/hist", []float64{10}).Observe(4)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a/b/calls", "7", "a/b/gauge", "1.5", "a/b/hist", "count 1", "mean 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("text export missing %q:\n%s", want, out)
		}
	}
}
