package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTraceEventsGolden pins the -trace-out Chrome trace-event document:
// complete ("X") events, microsecond ts relative to the earliest root,
// attrs and Δ-prefixed counter deltas as args, pre-order span flattening.
// Wall-clock fields are forced to fixed values; everything else is
// deterministic (encoding/json sorts the args map).
func TestTraceEventsGolden(t *testing.T) {
	reg := New()
	root := reg.Start("core/compress")
	root.SetAttr("variant", "ISUM")
	child := reg.Start("core/greedy/round")
	reg.Counter("cost/whatif/calls").Add(8)
	child.End()
	root.End()
	base := time.Unix(1700000000, 0)
	root.start, root.dur = base, 2*time.Millisecond
	child.start, child.dur = base.Add(500*time.Microsecond), 1*time.Millisecond

	var sb strings.Builder
	if err := reg.WriteTraceEvents(&sb); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "traceEvents": [
    {
      "name": "core/compress",
      "cat": "core",
      "ph": "X",
      "ts": 0,
      "dur": 2000,
      "pid": 1,
      "tid": 1,
      "args": {
        "variant": "ISUM",
        "Δcost/whatif/calls": "8"
      }
    },
    {
      "name": "core/greedy/round",
      "cat": "core",
      "ph": "X",
      "ts": 500,
      "dur": 1000,
      "pid": 1,
      "tid": 1,
      "args": {
        "Δcost/whatif/calls": "8"
      }
    }
  ]
}
`
	if sb.String() != golden {
		t.Errorf("trace-event export mismatch\n got:\n%s\nwant:\n%s", sb.String(), golden)
	}
}

// TestTraceEventsEmpty: no spans (or a nil registry via the Run path)
// still produce a loadable document.
func TestTraceEventsEmpty(t *testing.T) {
	reg := New()
	var sb strings.Builder
	if err := reg.WriteTraceEvents(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
	if doc.TraceEvents == nil || len(doc.TraceEvents) != 0 {
		t.Errorf("empty export traceEvents = %v, want present and empty", doc.TraceEvents)
	}
}
