package telemetry

import (
	"fmt"
	"time"
)

// Attr is one span attribute. Values are stringified at Set time so the
// exporters are deterministic and allocation stays on the enabled path.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed pipeline phase. Spans nest implicitly: Start on a
// registry parents the new span under the most recently started, not yet
// ended span — the ctx-less equivalent of context-carried tracing, valid
// because phases are delimited from the orchestration goroutine only
// (workers bump metrics, they never open spans). All methods are nil-safe.
type Span struct {
	reg    *Registry
	parent *Span
	name   string
	start  time.Time
	dur    time.Duration
	ended  bool

	attrs    []Attr
	children []*Span

	// startCounters snapshots every registry counter at Start; End folds it
	// into deltas — the per-span counter attribution (e.g. what-if calls
	// issued inside one enumeration round).
	startCounters map[string]int64
	deltas        map[string]int64
}

// Start begins a new span under the currently active span (or as a root).
// Returns nil on a nil registry, so the disabled path costs one check.
func (r *Registry) Start(name string) *Span {
	if r == nil {
		return nil
	}
	sp := &Span{reg: r, name: name, startCounters: r.counterValues()}
	r.spanMu.Lock()
	sp.parent = r.active
	if sp.parent != nil {
		sp.parent.children = append(sp.parent.children, sp)
	} else {
		r.roots = append(r.roots, sp)
	}
	r.active = sp
	r.spanMu.Unlock()
	sp.start = time.Now() //lint:allow determinism spans exist to measure wall-clock; exports carrying durations are excluded from byte-identity checks
	return sp
}

// SetAttr records a key/value attribute on the span.
func (sp *Span) SetAttr(key string, value any) {
	if sp == nil {
		return
	}
	var s string
	switch v := value.(type) {
	case string:
		s = v
	case float64:
		s = fmt.Sprintf("%.6g", v)
	default:
		s = fmt.Sprint(v)
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: s})
}

// End closes the span, fixing its duration and computing the counter
// deltas accumulated while it was open. Ending an already-ended or nil
// span is a no-op.
func (sp *Span) End() {
	if sp == nil || sp.ended {
		return
	}
	sp.dur = time.Since(sp.start)
	sp.ended = true
	end := sp.reg.counterValues()
	for name, v := range end {
		if d := v - sp.startCounters[name]; d != 0 {
			if sp.deltas == nil {
				sp.deltas = make(map[string]int64)
			}
			sp.deltas[name] = d
		}
	}
	sp.startCounters = nil
	sp.reg.spanMu.Lock()
	if sp.reg.active == sp {
		sp.reg.active = sp.parent
	}
	sp.reg.spanMu.Unlock()
}

// Name returns the span's name ("" for nil).
func (sp *Span) Name() string {
	if sp == nil {
		return ""
	}
	return sp.name
}

// Duration returns the span's duration (0 until End, and for nil).
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	return sp.dur
}

// Attrs returns the span's attributes in Set order.
func (sp *Span) Attrs() []Attr {
	if sp == nil {
		return nil
	}
	return sp.attrs
}

// Children returns the nested spans in start order.
func (sp *Span) Children() []*Span {
	if sp == nil {
		return nil
	}
	return sp.children
}

// CounterDeltas returns the non-zero counter changes observed between
// Start and End (nil when none, or before End, or for a nil span).
func (sp *Span) CounterDeltas() map[string]int64 {
	if sp == nil {
		return nil
	}
	return sp.deltas
}

// Spans returns the root spans recorded so far, in start order.
func (r *Registry) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	return append([]*Span{}, r.roots...)
}
