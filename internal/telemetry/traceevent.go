package telemetry

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"
	"time"
)

// Chrome trace-event JSON (the format Perfetto and chrome://tracing
// load): a top-level object with a traceEvents array of complete ("X")
// events. Timestamps and durations are microseconds; ts is measured from
// the earliest root span's start so traces from different runs align at
// zero. encoding/json emits map keys sorted, so for pinned span
// durations the document is byte-deterministic (golden test).
type traceEventExport struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteTraceEvents writes the span forest as Chrome trace-event JSON —
// the -trace-out export. Span attributes and counter deltas become event
// args. A nil registry (or one with no spans) writes a valid empty
// document.
func (r *Registry) WriteTraceEvents(w io.Writer) error {
	e := traceEventExport{TraceEvents: []traceEvent{}}
	roots := r.Spans()
	var epoch time.Time
	for _, sp := range roots {
		if epoch.IsZero() || sp.start.Before(epoch) {
			epoch = sp.start
		}
	}
	for _, sp := range roots {
		appendTraceEvents(&e.TraceEvents, sp, epoch)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

func appendTraceEvents(out *[]traceEvent, sp *Span, epoch time.Time) {
	cat, _, found := strings.Cut(sp.name, "/")
	if !found {
		cat = sp.name
	}
	ev := traceEvent{
		Name: sp.name,
		Cat:  cat,
		Ph:   "X",
		Ts:   sp.start.Sub(epoch).Microseconds(),
		Dur:  sp.dur.Microseconds(),
		Pid:  1,
		Tid:  1,
	}
	if len(sp.attrs) > 0 || len(sp.deltas) > 0 {
		ev.Args = make(map[string]string, len(sp.attrs)+len(sp.deltas))
		for _, a := range sp.attrs {
			ev.Args[a.Key] = a.Value
		}
		for name, d := range sp.deltas {
			ev.Args["Δ"+name] = strconv.FormatInt(d, 10)
		}
	}
	*out = append(*out, ev)
	for _, c := range sp.children {
		appendTraceEvents(out, c, epoch)
	}
}
