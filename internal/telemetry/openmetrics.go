package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MetricName maps a registry name in the repo's area/sub/name convention
// onto a legal Prometheus/OpenMetrics identifier: '/' and '-' become '_'.
// The mapping is injective over names accepted by isumlint's
// MetricNamePattern modulo '-'/'_' (no registered name mixes them), and
// scripts/metricscheck uses this same function to cross-check the JSON
// export against a live /metrics scrape.
func MetricName(name string) string {
	return strings.Map(func(r rune) rune {
		if r == '/' || r == '-' {
			return '_'
		}
		return r
	}, name)
}

// omFloat formats a sample value the way the exposition format expects:
// shortest round-trip representation, integers without an exponent.
func omFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteOpenMetrics writes every metric in the OpenMetrics / Prometheus
// text exposition format: one family per metric, sorted by exposition
// name, each with # HELP (carrying the registry-side name) and # TYPE
// lines, terminated by # EOF. Counters gain the conventional _total
// suffix; histograms are emitted with cumulative le-labelled buckets
// (the registry stores per-bucket counts) plus _sum and _count. The
// output is byte-deterministic for fixed metric values — pinned by the
// golden test. A nil registry writes only the # EOF terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "# EOF\n")
		return err
	}
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		om := MetricName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s isum counter %s\n# TYPE %s counter\n%s_total %d\n",
			om, name, om, om, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		om := MetricName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s isum gauge %s\n# TYPE %s gauge\n%s %s\n",
			om, name, om, om, omFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		hv := s.Histograms[name]
		om := MetricName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s isum histogram %s\n# TYPE %s histogram\n",
			om, name, om); err != nil {
			return err
		}
		var cum int64
		for i, b := range hv.Bounds {
			cum += hv.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", om, omFloat(b), cum); err != nil {
				return err
			}
		}
		cum += hv.Buckets[len(hv.Buckets)-1] // overflow
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			om, cum, om, omFloat(hv.Sum), om, hv.Count); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}
