package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := New()
	reg.Counter("cost/whatif/calls").Add(7)
	tr := NewTracker()
	tr.Observe(ProgressEvent{Phase: "core/greedy", Done: 2, Total: 5})
	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, "cost_whatif_calls_total 7") || !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("/metrics body:\n%s", body)
	}

	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %s %q", resp.Status, body)
	}

	resp, body = get("/progress")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/progress status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/progress content-type = %q", ct)
	}
	var p struct {
		Phase string `json:"phase"`
		Done  int    `json:"done"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress body %q: %v", body, err)
	}
	if p.Phase != "core/greedy" || p.Done != 2 {
		t.Errorf("/progress = %+v", p)
	}

	resp, _ = get("/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %s", resp.Status)
	}
}

// TestHandlerNilBackends: a debug server with no registry and no tracker
// (possible only in library use; the CLI allocates both behind
// -debug-addr) still serves valid empty documents.
func TestHandlerNilBackends(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	for path, want := range map[string]string{"/metrics": "# EOF\n", "/healthz": "ok\n"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != want {
			t.Errorf("%s = %s %q, want 200 %q", path, resp.Status, body, want)
		}
	}
	resp, err := http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc progressJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Errorf("nil-tracker /progress %q: %v", body, err)
	}
}

// TestServeLifecycle: Serve binds port 0, answers scrapes on the reported
// address, and Close shuts down cleanly (double Close included).
func TestServeLifecycle(t *testing.T) {
	reg := New()
	reg.Counter("shard/runs").Add(1)
	s, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.Fatalf("Addr() = %q, want a concrete port", addr)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "shard_runs_total 1") {
		t.Errorf("scrape body:\n%s", body)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still answering after Close")
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil Server Close: %v", err)
	}
	if nilSrv.Addr() != "" {
		t.Errorf("nil Server Addr = %q", nilSrv.Addr())
	}
}
