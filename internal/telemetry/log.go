package telemetry

import (
	"io"
	"log/slog"
)

// NewLogger returns the structured logger the CLIs write diagnostics to
// (logfmt-style key=value text on w, Info level and up). Library
// packages never log directly — isumlint's telemetry analyzer forbids
// bare fmt/os.Stderr output under internal/ — they emit progress events
// and metrics; binaries own the logger.
func NewLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo}))
}

// NewDeterministicLogger returns a logger whose output is byte-stable
// across runs: same handler as NewLogger but with the time attribute
// dropped. Tests golden-pin log output through this.
func NewDeterministicLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: slog.LevelInfo,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}))
}
