package features

import (
	"fmt"
	"sort"
)

// Interner is a workload-scoped dictionary mapping feature keys
// ("table.column") to dense uint32 IDs. It is built once during feature
// extraction and shared by every SparseVec derived from the workload
// (core threads it through Options and QueryState). IDs are assigned in
// batches: each AddVectors/AddKeys call sorts its unseen keys
// lexicographically before appending, so a dictionary built in one batch
// (the common case) numbers keys in lexicographic order, and rebuilding
// it from the same workload reproduces the same IDs. Ascending-ID
// iteration is therefore a canonical order over features, which is what
// lets SparseVec's merge-join kernels produce bit-identical sums across
// runs without any per-call sorting (DESIGN.md §11).
//
// Concurrency: lookups (ID, Key, Len, FromMap) are safe for concurrent
// use once the table is built; AddKeys/AddVectors mutate the table and
// must not race with anything else. Sharing one Interner across repeated
// compressions (Options.Interner, the incremental pool) keeps IDs stable
// but makes those compressions mutually unsafe to run concurrently.
type Interner struct {
	ids  map[string]uint32
	keys []string
}

// NewInterner returns an empty dictionary.
func NewInterner() *Interner {
	return &Interner{ids: map[string]uint32{}}
}

// AddKeys interns every key not yet present, as one batch.
func (in *Interner) AddKeys(keys []string) {
	fresh := make([]string, 0, len(keys))
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if _, ok := in.ids[k]; !ok && !seen[k] {
			seen[k] = true
			fresh = append(fresh, k)
		}
	}
	in.appendSorted(fresh)
}

// AddVectors interns the union of the vectors' keys as one batch.
func (in *Interner) AddVectors(vecs []Vector) {
	var fresh []string
	seen := map[string]bool{}
	for _, v := range vecs {
		for k := range v {
			if _, ok := in.ids[k]; !ok && !seen[k] {
				seen[k] = true
				fresh = append(fresh, k)
			}
		}
	}
	in.appendSorted(fresh)
}

// appendSorted canonicalises a batch of unseen keys — lexicographic
// sort, so batch IDs are independent of collection order — and appends
// them to the table.
func (in *Interner) appendSorted(fresh []string) {
	sort.Strings(fresh)
	for _, k := range fresh {
		in.ids[k] = uint32(len(in.keys))
		in.keys = append(in.keys, k)
	}
	if m := vtel.Load(); m != nil {
		m.internSize.Set(float64(len(in.keys)))
	}
}

// RestoreKeys rebuilds the dictionary with exactly the given keys in ID
// order, bypassing the per-batch lexicographic canonicalisation — the
// recovery hook for dictionaries persisted by internal/durable. IDs were
// originally assigned across many batches, so the full table in ID order
// is generally NOT globally sorted; restoring must reproduce the exact
// assignment or every downstream merge-join would sum in a different
// order. Only an empty interner can be restored into, and duplicate keys
// are rejected (a corrupt snapshot must not silently alias IDs).
func (in *Interner) RestoreKeys(keys []string) error {
	if len(in.keys) > 0 {
		return fmt.Errorf("features: RestoreKeys on a non-empty interner (%d keys)", len(in.keys))
	}
	for i, k := range keys {
		if _, dup := in.ids[k]; dup {
			return fmt.Errorf("features: RestoreKeys: duplicate key %q at ID %d", k, i)
		}
		in.ids[k] = uint32(i)
		in.keys = append(in.keys, k)
	}
	if m := vtel.Load(); m != nil {
		m.internSize.Set(float64(len(in.keys)))
	}
	return nil
}

// ID returns the key's ID and whether the key is interned.
func (in *Interner) ID(key string) (uint32, bool) {
	id, ok := in.ids[key]
	return id, ok
}

// Key returns the key for an ID issued by this interner.
func (in *Interner) Key(id uint32) string { return in.keys[id] }

// Len returns the number of interned keys; valid IDs are [0, Len).
func (in *Interner) Len() int { return len(in.keys) }
