package features

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"isum/internal/catalog"
	"isum/internal/workload"
)

func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	o := catalog.NewTable("orders", 1500000)
	o.AddColumn(&catalog.Column{Name: "o_orderkey", Type: catalog.TypeInt, DistinctCount: 1500000, Min: 1, Max: 6000000})
	o.AddColumn(&catalog.Column{Name: "o_custkey", Type: catalog.TypeInt, DistinctCount: 100000, Min: 1, Max: 150000})
	o.AddColumn(&catalog.Column{Name: "o_orderdate", Type: catalog.TypeDate, DistinctCount: 2400, Min: 8000, Max: 10500})
	o.AddColumn(&catalog.Column{Name: "o_totalprice", Type: catalog.TypeDecimal, DistinctCount: 1400000, Min: 800, Max: 600000})
	cat.AddTable(o)
	c := catalog.NewTable("customer", 150000)
	c.AddColumn(&catalog.Column{Name: "c_custkey", Type: catalog.TypeInt, DistinctCount: 150000, Min: 1, Max: 150000})
	c.AddColumn(&catalog.Column{Name: "c_nationkey", Type: catalog.TypeInt, DistinctCount: 25, Min: 0, Max: 24})
	cat.AddTable(c)
	return cat
}

func q(t *testing.T, cat *catalog.Catalog, sql string) *workload.Query {
	t.Helper()
	qq, err := workload.NewQuery(cat, 0, sql)
	if err != nil {
		t.Fatal(err)
	}
	return qq
}

func TestWeightedJaccardProperties(t *testing.T) {
	a := Vector{"x": 1, "y": 0.5}
	b := Vector{"x": 0.5, "z": 1}
	s := WeightedJaccard(a, b)
	// min: x→0.5; max: x→1, y→0.5, z→1 → 0.5/2.5
	if math.Abs(s-0.2) > 1e-12 {
		t.Fatalf("jaccard = %f, want 0.2", s)
	}
	if WeightedJaccard(a, a) != 1 {
		t.Fatal("self similarity must be 1")
	}
	if WeightedJaccard(a, Vector{}) != 0 || WeightedJaccard(Vector{}, b) != 0 {
		t.Fatal("empty vector similarity must be 0")
	}
}

func TestWeightedJaccardQuickProperties(t *testing.T) {
	gen := func(seed int64) Vector {
		rng := rand.New(rand.NewSource(seed))
		v := Vector{}
		n := rng.Intn(8)
		for i := 0; i < n; i++ {
			v["f"+strconv.Itoa(rng.Intn(10))] = rng.Float64() + 0.01
		}
		return v
	}
	f := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		s := WeightedJaccard(a, b)
		if s < 0 || s > 1 {
			return false
		}
		// Symmetry.
		if math.Abs(s-WeightedJaccard(b, a)) > 1e-12 {
			return false
		}
		// Identity.
		if len(a) > 0 && WeightedJaccard(a, a) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorOps(t *testing.T) {
	v := Vector{"a": 1, "b": 2}
	c := v.Clone()
	c["a"] = 9
	if v["a"] != 1 {
		t.Fatal("clone not isolated")
	}
	if v.Sum() != 3 {
		t.Fatalf("sum = %f", v.Sum())
	}
	v.Scale(2)
	if v["b"] != 4 {
		t.Fatal("scale failed")
	}
	v.AddScaled(Vector{"c": 1}, 0.5)
	if v["c"] != 0.5 {
		t.Fatal("addscaled failed")
	}
	v.SubClamped(Vector{"b": 10, "c": 0.1})
	if _, ok := v["b"]; ok {
		t.Fatal("subclamped should drop non-positive entries")
	}
	if math.Abs(v["c"]-0.4) > 1e-12 {
		t.Fatalf("c = %f", v["c"])
	}
	v.ZeroShared(Vector{"a": 1})
	if _, ok := v["a"]; ok {
		t.Fatal("zeroshared failed")
	}
	if !(Vector{}).AllZero() || (Vector{"x": 1}).AllZero() {
		t.Fatal("allzero broken")
	}
}

func TestExtractFeatureKeys(t *testing.T) {
	cat := testCatalog()
	ex := NewExtractor(cat)
	query := q(t, cat, `SELECT o_totalprice FROM customer, orders
		WHERE c_custkey = o_custkey AND c_nationkey = 7
		GROUP BY o_totalprice ORDER BY o_totalprice`)
	v := ex.Features(query)
	for _, want := range []string{"customer.c_custkey", "orders.o_custkey", "customer.c_nationkey", "orders.o_totalprice"} {
		if v[want] <= 0 {
			t.Fatalf("feature %q missing: %v", want, v)
		}
	}
	if len(v) != 4 {
		t.Fatalf("features = %v", v)
	}
}

func TestRuleWeightsOrdering(t *testing.T) {
	cat := testCatalog()
	ex := NewExtractor(cat)
	ex.UseTableWeight = false // isolate the positional weights
	query := q(t, cat, `SELECT * FROM orders WHERE o_custkey = 5 AND o_orderkey = o_totalprice
		ORDER BY o_orderdate`)
	// o_custkey: filter; o_orderkey/o_totalprice: (non-equi, both ranges);
	// use a cleaner query instead:
	query = q(t, cat, `SELECT o_custkey FROM customer, orders
		WHERE c_custkey = o_custkey AND o_totalprice > 100 ORDER BY o_orderdate`)
	v := ex.Features(query)
	// Selection (o_totalprice) and join (o_custkey) columns should outweigh
	// the order-by column (o_orderdate), per Section 4.2.
	if v["orders.o_orderdate"] >= v["orders.o_totalprice"] {
		t.Fatalf("order-by should weigh less than selection: %v", v)
	}
	if v["orders.o_orderdate"] >= v["orders.o_custkey"] {
		t.Fatalf("order-by should weigh less than join: %v", v)
	}
	if v["orders.o_orderdate"] <= 0 {
		t.Fatalf("order-by column must still be present: %v", v)
	}
}

func TestTableWeightEffect(t *testing.T) {
	cat := testCatalog()
	with := NewExtractor(cat)
	without := NewExtractor(cat)
	without.UseTableWeight = false
	query := q(t, cat, `SELECT 1 FROM customer, orders WHERE c_nationkey = 3 AND o_totalprice > 100`)
	vw := with.Features(query)
	vo := without.Features(query)
	// orders has 10× the rows of customer: with table weighting the orders
	// column must dominate after normalisation.
	if vw["orders.o_totalprice"] <= vw["customer.c_nationkey"] {
		t.Fatalf("table weight should favour large table: %v", vw)
	}
	// Without table weighting both are pure selection columns on their
	// tables with equal positional weight.
	if math.Abs(vo["orders.o_totalprice"]-vo["customer.c_nationkey"]) > 1e-9 {
		t.Fatalf("without table weight they should tie: %v", vo)
	}
}

func TestStatsBasedWeights(t *testing.T) {
	cat := testCatalog()
	ex := NewExtractor(cat)
	ex.Mode = StatsBased
	ex.UseTableWeight = false
	query := q(t, cat, `SELECT 1 FROM orders WHERE o_orderkey = 77 AND o_totalprice > 100`)
	v := ex.Features(query)
	// o_orderkey equality is far more selective than the (unselective)
	// price range, so it should carry more weight.
	if v["orders.o_orderkey"] <= v["orders.o_totalprice"] {
		t.Fatalf("selective filter should weigh more: %v", v)
	}
}

func TestNormalizationModes(t *testing.T) {
	cat := testCatalog()
	ex := NewExtractor(cat)
	query := q(t, cat, `SELECT 1 FROM orders WHERE o_custkey = 5 AND o_totalprice > 100 ORDER BY o_orderdate`)

	v := ex.Features(query)
	var maxW float64
	for _, w := range v {
		if w > maxW {
			maxW = w
		}
	}
	if math.Abs(maxW-1) > 1e-12 {
		t.Fatalf("NormMax should peak at 1: %v", v)
	}

	ex.Norm = NormNone
	raw := ex.Features(query)
	for _, w := range raw {
		if w > 1 {
			t.Fatalf("raw rule weights must be ≤ 1: %v", raw)
		}
	}

	ex.Norm = NormMinMaxPaper
	paper := ex.Features(query)
	if len(paper) != len(v) {
		t.Fatal("paper normalisation changed the support")
	}
}

func TestFeaturesEmptyForNoPredicates(t *testing.T) {
	cat := testCatalog()
	ex := NewExtractor(cat)
	v := ex.Features(q(t, cat, "SELECT 1"))
	if len(v) != 0 {
		t.Fatalf("features = %v", v)
	}
}

func TestSummaryFeatures(t *testing.T) {
	vecs := []Vector{
		{"a": 1, "b": 0.5},
		{"b": 1},
	}
	utils := []float64{0.75, 0.25}
	v := Summary(vecs, utils)
	if math.Abs(v["a"]-0.75) > 1e-12 {
		t.Fatalf("a = %f", v["a"])
	}
	if math.Abs(v["b"]-(0.5*0.75+0.25)) > 1e-12 {
		t.Fatalf("b = %f", v["b"])
	}
}

func TestExcludeFromSummary(t *testing.T) {
	vecs := []Vector{
		{"a": 1, "b": 0.5},
		{"b": 1, "c": 1},
	}
	utils := []float64{0.6, 0.4}
	v := Summary(vecs, utils)
	// Excluding query 0 should leave exactly the summary of query 1 scaled
	// back to total utility 1.
	vExcl := ExcludeFromSummary(v, vecs[0], utils[0], 1.0)
	want := vecs[1].Clone().Scale(utils[1] * (1.0 / 0.4))
	for k, w := range want {
		if math.Abs(vExcl[k]-w) > 1e-9 {
			t.Fatalf("excl[%s] = %f, want %f (full: %v)", k, vExcl[k], w, vExcl)
		}
	}
	if _, ok := vExcl["a"]; ok {
		t.Fatalf("a should vanish: %v", vExcl)
	}
	// Excluding the only query yields empty.
	if got := ExcludeFromSummary(Summary(vecs[:1], utils[:1]), vecs[0], 0.6, 0.6); len(got) != 0 {
		t.Fatalf("sole-query exclusion = %v", got)
	}
}

func TestCandidateIndexIDs(t *testing.T) {
	cat := testCatalog()
	query := q(t, cat, `SELECT o_totalprice FROM customer, orders
		WHERE c_custkey = o_custkey AND o_totalprice > 100 ORDER BY o_orderdate`)
	ids := CandidateIndexIDs(query.Info)
	for _, want := range []string{
		"orders(o_totalprice)",                       // R1
		"orders(o_custkey)",                          // R2
		"orders(o_totalprice,o_custkey)",             // R3
		"orders(o_custkey,o_totalprice)",             // R4
		"orders(o_orderdate,o_totalprice,o_custkey)", // R5
		"orders(o_orderdate,o_custkey,o_totalprice)", // R7
		"customer(c_custkey)",
	} {
		if !ids[want] {
			t.Fatalf("candidate %q missing: %v", want, ids)
		}
	}
}

func TestSetJaccard(t *testing.T) {
	a := map[string]bool{"x": true, "y": true}
	b := map[string]bool{"y": true, "z": true}
	if got := SetJaccard(a, b); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("jaccard = %f", got)
	}
	if SetJaccard(a, map[string]bool{}) != 0 {
		t.Fatal("empty set similarity must be 0")
	}
	if SetJaccard(a, a) != 1 {
		t.Fatal("self similarity must be 1")
	}
}

func TestPlainJaccardVector(t *testing.T) {
	a := Vector{"x": 1, "y": 0.2}
	b := Vector{"y": 5, "z": 3}
	if got := Jaccard(a, b); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("jaccard = %f", got)
	}
	if Jaccard(a, Vector{}) != 0 {
		t.Fatal("empty must be 0")
	}
}

// TestRuleWeightExactValues pins the Table-1 candidate-counting arithmetic
// on a hand-computed example: S=1 selection, J=1 join, O=1 order-by column
// on one table.
//
//	d(t)      = S + J + G + O + 2SJ + 2OSJ + 2GSJ = 1+1+0+1+2+2+0 = 7
//	d(t,sel)  = 1 + 2J + 2OJ + 2GJ                = 1+2+2+0       = 5
//	d(t,join) = 1 + 2S + 2OS + 2GS                = 1+2+2+0       = 5
//	d(t,ob)   = 1 + 2SJ                           = 1+2           = 3
func TestRuleWeightExactValues(t *testing.T) {
	cat := testCatalog()
	ex := NewExtractor(cat)
	ex.UseTableWeight = false
	ex.Norm = NormNone
	query := q(t, cat, `SELECT 1 FROM customer, orders
		WHERE c_custkey = o_custkey AND o_totalprice > 100 ORDER BY o_orderdate`)
	v := ex.Features(query)
	// orders has S=1 (o_totalprice), J=1 (o_custkey), O=1 (o_orderdate).
	checks := map[string]float64{
		"orders.o_totalprice": 5.0 / 7.0,
		"orders.o_custkey":    5.0 / 7.0,
		"orders.o_orderdate":  3.0 / 7.0,
		// customer has only the join column: d(t)=1, d(t,c)=1.
		"customer.c_custkey": 1.0,
	}
	for key, want := range checks {
		if math.Abs(v[key]-want) > 1e-12 {
			t.Errorf("%s = %f, want %f (full: %v)", key, v[key], want, v)
		}
	}
}

// TestRuleWeightGroupOnlyQuery: a query with only group-by columns should
// still featurise (the singleton-rule extension, DESIGN.md §5).
func TestRuleWeightGroupOnlyQuery(t *testing.T) {
	cat := testCatalog()
	ex := NewExtractor(cat)
	ex.UseTableWeight = false
	query := q(t, cat, "SELECT o_orderdate, COUNT(*) FROM orders GROUP BY o_orderdate")
	v := ex.Features(query)
	if math.Abs(v["orders.o_orderdate"]-1) > 1e-12 {
		t.Fatalf("group-only weight = %v", v)
	}
}
