package features

// Summary computes the workload summary features of Definition 11:
// V_c = Σ_i q_ic · U(q_i), the utility-weighted sum of the query feature
// vectors. vecs and utils must be parallel; utilities are expected to be
// normalised (Σ U = 1) but any non-negative weights work.
func Summary(vecs []Vector, utils []float64) Vector {
	out := Vector{}
	for i, v := range vecs {
		if i >= len(utils) {
			break
		}
		out.AddScaled(v, utils[i])
	}
	return out
}

// ExcludeFromSummary computes V′, the summary with query i's own
// contribution removed and the remainder rescaled, per Algorithm 3
// (line 11):
//
//	V′ = (V − q_i·U(q_i)) × totalUtility / (totalUtility − U(q_i))
//
// so that S(q_i, V′) measures q_i's influence on the *other* queries. The
// paper's pseudocode subtracts the unscaled feature vector; we subtract the
// utility-scaled contribution, which is what makes V′ exactly the summary
// of W − {q_i} (the pseudocode's version can go negative). When q_i is the
// only query with utility, V′ is empty.
func ExcludeFromSummary(v Vector, qv Vector, qUtil, totalUtil float64) Vector {
	out := v.Clone()
	scaled := qv.Clone().Scale(qUtil)
	out.SubClamped(scaled)
	reduced := totalUtil - qUtil
	if reduced <= 0 {
		return Vector{}
	}
	out.Scale(totalUtil / reduced)
	return out
}
