package features

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"isum/internal/telemetry"
)

// SparseVec is the hot-path feature-vector representation: parallel
// ids/weights slices sorted ascending by interned feature ID. Every
// kernel below is a merge-join over the sorted IDs, so iteration order —
// and therefore every floating-point sum — is canonical by construction:
// no per-call DetSum sort, no map-iteration randomness. The map-shaped
// Vector stays as the extraction format and as the test-only reference
// oracle; the two accumulation regimes are documented in vector.go and
// DESIGN.md §11.
//
// Weights are non-negative by construction (extraction normalises rule
// and stats weights into [0,1]); SubClamped/SubClampedScaled rely on
// that to shrink in place.
//
// The zero value is an empty vector and is valid for every operation.
// Two SparseVecs must not share backing storage if either is mutated;
// use Clone when a mutable copy is needed.
type SparseVec struct {
	ids []uint32
	ws  []float64
}

// vecMetrics are the package's registered telemetry handles; nil when
// telemetry is disabled (the default), so kernels pay one atomic pointer
// load.
type vecMetrics struct {
	mergeOps   *telemetry.Counter // features/vec/merge_ops: merge-join kernel invocations
	internSize *telemetry.Gauge   // features/intern/size: interned dictionary entries
}

var vtel atomic.Pointer[vecMetrics]

// SetTelemetry registers the package's metrics on reg; nil disables
// them. Call once at startup, alongside parallel.SetTelemetry.
func SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		vtel.Store(nil)
		return
	}
	vtel.Store(&vecMetrics{
		mergeOps:   reg.Counter("features/vec/merge_ops"),
		internSize: reg.Gauge("features/intern/size"),
	})
}

func mergeOp() {
	if m := vtel.Load(); m != nil {
		m.mergeOps.Inc()
	}
}

// vecBuf is the pooled scratch storage behind the grow-capable kernels.
// Kernels that may grow their receiver (AddScaled, UpdateDelta) merge
// into a pooled buffer and swap storage, returning the old arrays to the
// pool; shrink-only kernels (SubClamped, SubClampedScaled, ZeroShared)
// compact in place and never touch the pool.
type vecBuf struct {
	ids []uint32
	ws  []float64
}

// vecBufs is package-level (never passed by value) per the concurrency
// analyzer's sync.Pool rule.
var vecBufs = sync.Pool{New: func() any { return &vecBuf{} }}

// FromMap converts a map vector whose keys are all interned. Entries are
// sorted ascending by ID; a non-interned key is a programming error
// (intern the workload's vectors first) and panics.
func (in *Interner) FromMap(v Vector) SparseVec {
	ids := make([]uint32, 0, len(v))
	ws := make([]float64, 0, len(v))
	for k, w := range v {
		id, ok := in.ids[k]
		if !ok {
			panic("features: FromMap key not interned: " + k)
		}
		ids = append(ids, id)
		ws = append(ws, w)
	}
	sv := SparseVec{ids: ids, ws: ws}
	sv.sortByID()
	return sv
}

// sortByID canonicalises the vector: entries ascending by interned ID.
func (v *SparseVec) sortByID() { sort.Sort((*vecSorter)(v)) }

type vecSorter SparseVec

func (s *vecSorter) Len() int           { return len(s.ids) }
func (s *vecSorter) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *vecSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.ws[i], s.ws[j] = s.ws[j], s.ws[i]
}

// ToMap expands the vector back to map form under the interner that
// issued its IDs. Test and display helper, not a hot path.
func (v SparseVec) ToMap(in *Interner) Vector {
	m := make(Vector, len(v.ids))
	for i, id := range v.ids {
		m[in.Key(id)] = v.ws[i]
	}
	return m
}

// Len returns the number of stored entries (including explicit zeros).
func (v SparseVec) Len() int { return len(v.ids) }

// Get returns the weight stored for id and whether an entry exists.
func (v SparseVec) Get(id uint32) (float64, bool) {
	i := sort.Search(len(v.ids), func(i int) bool { return v.ids[i] >= id })
	if i < len(v.ids) && v.ids[i] == id {
		return v.ws[i], true
	}
	return 0, false
}

// Each calls fn for every entry in ascending-ID (canonical) order.
func (v SparseVec) Each(fn func(id uint32, w float64)) {
	for i := range v.ids {
		fn(v.ids[i], v.ws[i])
	}
}

// Clone returns an independent copy.
func (v SparseVec) Clone() SparseVec {
	if len(v.ids) == 0 {
		return SparseVec{}
	}
	ids := make([]uint32, len(v.ids))
	ws := make([]float64, len(v.ws))
	copy(ids, v.ids)
	copy(ws, v.ws)
	return SparseVec{ids: ids, ws: ws}
}

// AllZero reports whether the vector has no entry with positive weight.
func (v SparseVec) AllZero() bool {
	for _, w := range v.ws {
		if w > 0 {
			return false
		}
	}
	return true
}

// Sum returns the total weight, accumulated in ascending-ID order — the
// canonical order, so no DetSum-style sort is needed (vector.go
// documents the two regimes).
//
//lint:hotpath
func (v SparseVec) Sum() float64 {
	s := 0.0
	for _, w := range v.ws {
		s += w
	}
	return s
}

// Scale multiplies every weight by f in place.
func (v *SparseVec) Scale(f float64) {
	for i := range v.ws {
		v.ws[i] *= f
	}
}

// Release returns the vector's backing storage to the kernel scratch
// pool and empties the vector. Only call it on storage this vector owns
// exclusively (e.g. an UpdateDelta result after folding it in). It
// recycles a pooled holder rather than allocating one, so a
// produce/fold/Release cycle is allocation-free at steady state.
//
//lint:hotpath
func (v *SparseVec) Release() {
	if v.ids == nil && v.ws == nil {
		return
	}
	b := vecBufs.Get().(*vecBuf)
	b.ids, b.ws = v.ids[:0], v.ws[:0]
	vecBufs.Put(b)
	v.ids, v.ws = nil, nil
}

// AddScaled adds f times other into v (union merge). The merge writes
// into a pooled scratch buffer and swaps storage, so a warmed pool makes
// this allocation-free. Matches Vector.AddScaled entry-for-entry:
// existing slots accumulate v + w·f, new slots store w·f, zero results
// are kept.
//
//lint:hotpath
func (v *SparseVec) AddScaled(other SparseVec, f float64) {
	if len(other.ids) == 0 {
		return
	}
	mergeOp()
	b := vecBufs.Get().(*vecBuf)
	ids, ws := b.ids[:0], b.ws[:0]
	i, j := 0, 0
	for i < len(v.ids) && j < len(other.ids) {
		switch {
		case v.ids[i] == other.ids[j]:
			ids = append(ids, v.ids[i])
			ws = append(ws, v.ws[i]+other.ws[j]*f)
			i++
			j++
		case v.ids[i] < other.ids[j]:
			ids = append(ids, v.ids[i])
			ws = append(ws, v.ws[i])
			i++
		default:
			ids = append(ids, other.ids[j])
			ws = append(ws, other.ws[j]*f)
			j++
		}
	}
	ids = append(ids, v.ids[i:]...)
	ws = append(ws, v.ws[i:]...)
	for ; j < len(other.ids); j++ {
		ids = append(ids, other.ids[j])
		ws = append(ws, other.ws[j]*f)
	}
	b.ids, b.ws = v.ids, v.ws
	v.ids, v.ws = ids, ws
	vecBufs.Put(b)
}

// Add adds other into v; equivalent to AddScaled(other, 1) bit-for-bit
// (w·1.0 == w).
//
//lint:hotpath
func (v *SparseVec) Add(other SparseVec) { v.AddScaled(other, 1) }

// SubClamped subtracts other's weights from v's, dropping any entry
// that would become ≤ 0. Shrink-only: compacts in place, no allocation.
//
//lint:hotpath
func (v *SparseVec) SubClamped(other SparseVec) { v.SubClampedScaled(other, 1) }

// SubClampedScaled subtracts f times other's weights from v's, dropping
// any entry that would become ≤ 0 — the fused form of
// Clone().Scale(f) + SubClamped used by the weight-subtract update.
// Requires other's weights (and f) non-negative, which feature vectors
// are by construction; shrink-only, compacts in place.
//
//lint:hotpath
func (v *SparseVec) SubClampedScaled(other SparseVec, f float64) {
	if len(other.ids) == 0 || len(v.ids) == 0 {
		return
	}
	mergeOp()
	w := 0
	j := 0
	for i := 0; i < len(v.ids); i++ {
		id := v.ids[i]
		for j < len(other.ids) && other.ids[j] < id {
			j++
		}
		if j < len(other.ids) && other.ids[j] == id {
			if nw := v.ws[i] - other.ws[j]*f; nw > 0 {
				v.ids[w], v.ws[w] = id, nw
				w++
			}
			j++
		} else {
			v.ids[w], v.ws[w] = id, v.ws[i]
			w++
		}
	}
	v.ids, v.ws = v.ids[:w], v.ws[:w]
}

// ZeroShared removes every entry whose ID carries positive weight in
// other (the feature-remove update). Shrink-only, compacts in place.
//
//lint:hotpath
func (v *SparseVec) ZeroShared(other SparseVec) {
	if len(other.ids) == 0 || len(v.ids) == 0 {
		return
	}
	mergeOp()
	w := 0
	j := 0
	for i := 0; i < len(v.ids); i++ {
		id := v.ids[i]
		for j < len(other.ids) && other.ids[j] < id {
			j++
		}
		if j < len(other.ids) && other.ids[j] == id && other.ws[j] > 0 {
			continue
		}
		v.ids[w], v.ws[w] = id, v.ws[i]
		w++
	}
	v.ids, v.ws = v.ids[:w], v.ws[:w]
}

// WeightedJaccard computes the weighted Jaccard similarity of a and b
// (Definition 6) as a single allocation-free merge: min/max sums
// accumulate over the union in ascending-ID order. Entry-for-entry it
// matches the map reference (RefWeightedJaccard): IDs only in a
// contribute min(aw,0)/max(aw,0), IDs only in b contribute bw to the max
// sum, and either operand being empty short-circuits to 0.
//
//lint:hotpath
func (a SparseVec) WeightedJaccard(b SparseVec) float64 {
	if len(a.ids) == 0 || len(b.ids) == 0 {
		return 0
	}
	mergeOp()
	var minSum, maxSum float64
	i, j := 0, 0
	for i < len(a.ids) && j < len(b.ids) {
		switch {
		case a.ids[i] == b.ids[j]:
			aw, bw := a.ws[i], b.ws[j]
			minSum += math.Min(aw, bw)
			maxSum += math.Max(aw, bw)
			i++
			j++
		case a.ids[i] < b.ids[j]:
			aw := a.ws[i]
			minSum += math.Min(aw, 0)
			maxSum += math.Max(aw, 0)
			i++
		default:
			maxSum += b.ws[j]
			j++
		}
	}
	for ; i < len(a.ids); i++ {
		aw := a.ws[i]
		minSum += math.Min(aw, 0)
		maxSum += math.Max(aw, 0)
	}
	for ; j < len(b.ids); j++ {
		maxSum += b.ws[j]
	}
	if maxSum == 0 {
		return 0
	}
	return minSum / maxSum
}

// Jaccard computes the unweighted Jaccard similarity of the entry sets
// (presence counts, including explicit zero-weight entries), matching
// the map-based Jaccard.
//
//lint:hotpath
func (a SparseVec) Jaccard(b SparseVec) float64 {
	if len(a.ids) == 0 && len(b.ids) == 0 {
		return 0
	}
	mergeOp()
	inter, union := 0, 0
	i, j := 0, 0
	for i < len(a.ids) && j < len(b.ids) {
		switch {
		case a.ids[i] == b.ids[j]:
			inter++
			union++
			i++
			j++
		case a.ids[i] < b.ids[j]:
			union++
			i++
		default:
			union++
			j++
		}
	}
	union += len(a.ids) - i
	union += len(b.ids) - j
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// SummarySimilarity computes S(q, V′) — WeightedJaccard between q and
// the summary v with q's own contribution excluded (Definition 11) — as
// one fused allocation-free merge. It reproduces the staged map path
// (ExcludeFromSummary then WeightedJaccard) bit-for-bit: shared summary
// entries are clamped by nw = vw − qw·qUtil and, when they survive,
// rescaled by totalUtil/(totalUtil−qUtil); summary entries q does not
// touch survive unclamped; a summary left with no surviving entries
// yields 0.
//
//lint:hotpath
func SummarySimilarity(q, v SparseVec, qUtil, totalUtil float64) float64 {
	if len(q.ids) == 0 {
		return 0
	}
	reduced := totalUtil - qUtil
	if reduced <= 0 {
		return 0
	}
	mergeOp()
	scale := totalUtil / reduced
	var minSum, maxSum float64
	survivors := 0
	i, j := 0, 0
	for i < len(q.ids) || j < len(v.ids) {
		switch {
		case j >= len(v.ids) || (i < len(q.ids) && q.ids[i] < v.ids[j]):
			aw := q.ws[i]
			minSum += math.Min(aw, 0)
			maxSum += math.Max(aw, 0)
			i++
		case i >= len(q.ids) || v.ids[j] < q.ids[i]:
			survivors++
			maxSum += v.ws[j] * scale
			j++
		default:
			aw := q.ws[i]
			if nw := v.ws[j] - aw*qUtil; nw > 0 {
				vp := nw * scale
				survivors++
				minSum += math.Min(aw, vp)
				maxSum += math.Max(aw, vp)
			} else {
				minSum += math.Min(aw, 0)
				maxSum += math.Max(aw, 0)
			}
			i++
			j++
		}
	}
	if survivors == 0 || maxSum == 0 {
		return 0
	}
	return minSum / maxSum
}

// SharedWeights appends to dst, parallel to mask's entries, the weight v
// holds at each of mask's IDs (0 when absent) — the pre-update snapshot
// the incremental summary delta needs. Pass a pooled dst[:0] to keep it
// allocation-free.
//
//lint:hotpath
func (v SparseVec) SharedWeights(mask SparseVec, dst []float64) []float64 {
	j := 0
	for i := 0; i < len(mask.ids); i++ {
		for j < len(v.ids) && v.ids[j] < mask.ids[i] {
			j++
		}
		if j < len(v.ids) && v.ids[j] == mask.ids[i] {
			dst = append(dst, v.ws[j])
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// UpdateDelta computes the summary delta for one query after an update:
// cur is the query's post-update vector, mask the selected query's
// vector (exactly the IDs an update can touch), oldShared the pre-update
// weights snapped by SharedWeights, and oldU/newU the utilities around
// the update. Per entry, masked IDs contribute newU·curW − oldU·oldW and
// unmasked IDs (utility-only change) contribute (newU−oldU)·curW — the
// same expressions the map implementation used — with exact zeros
// dropped. The result owns pooled storage; Release it after folding into
// the summary.
//
//lint:hotpath
func UpdateDelta(cur, mask SparseVec, oldShared []float64, oldU, newU float64) SparseVec {
	mergeOp()
	b := vecBufs.Get().(*vecBuf)
	ids, ws := b.ids[:0], b.ws[:0]
	utilChanged := newU != oldU
	i, j := 0, 0
	for i < len(cur.ids) || j < len(mask.ids) {
		switch {
		case j >= len(mask.ids) || (i < len(cur.ids) && cur.ids[i] < mask.ids[j]):
			if utilChanged {
				if dd := (newU - oldU) * cur.ws[i]; dd != 0 {
					ids = append(ids, cur.ids[i])
					ws = append(ws, dd)
				}
			}
			i++
		case i >= len(cur.ids) || mask.ids[j] < cur.ids[i]:
			if dd := -(oldU * oldShared[j]); dd != 0 {
				ids = append(ids, mask.ids[j])
				ws = append(ws, dd)
			}
			j++
		default:
			if dd := newU*cur.ws[i] - oldU*oldShared[j]; dd != 0 {
				ids = append(ids, cur.ids[i])
				ws = append(ws, dd)
			}
			i++
			j++
		}
	}
	b.ids, b.ws = nil, nil
	vecBufs.Put(b)
	return SparseVec{ids: ids, ws: ws}
}
