package features

import "math"

// This file is the map-based reference oracle for the SparseVec kernels:
// straightforward implementations over Vector that accumulate in
// ascending interned-ID order — the same canonical order the merge-join
// kernels use — so oracle and production agree bit-for-bit, not just
// within tolerance. Tests (the fuzz oracle in this package, the pinned
// pipeline-equivalence test in internal/core) are the only intended
// callers; none of this is on a production path.
//
// Note the deliberate difference from the legacy WeightedJaccard above:
// that one canonicalises by sorting the collected min/max values
// (DetSum), which produces a different ulp-level rounding than
// ascending-ID accumulation. The oracle exists precisely to pin the
// ascending-ID regime.

// RefWeightedJaccard is WeightedJaccard over map vectors with
// ascending-ID accumulation. Entry-for-entry it matches
// SparseVec.WeightedJaccard: keys only in a contribute min(aw,0) and
// max(aw,0), keys only in b contribute bw to the max sum, and either
// operand being empty yields 0.
func RefWeightedJaccard(a, b Vector, in *Interner) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var minSum, maxSum float64
	for id := 0; id < in.Len(); id++ {
		k := in.Key(uint32(id))
		aw, aok := a[k]
		bw, bok := b[k]
		switch {
		case aok && bok:
			minSum += math.Min(aw, bw)
			maxSum += math.Max(aw, bw)
		case aok:
			minSum += math.Min(aw, 0)
			maxSum += math.Max(aw, 0)
		case bok:
			maxSum += bw
		}
	}
	if maxSum == 0 {
		return 0
	}
	return minSum / maxSum
}

// RefSummarySimilarity is the staged map computation of S(q, V′)
// (ExcludeFromSummary then Jaccard) with the final similarity summed in
// ascending-ID order; it matches the fused SummarySimilarity bit-for-bit.
func RefSummarySimilarity(q, v Vector, qUtil, totalUtil float64, in *Interner) float64 {
	out := v.Clone()
	out.SubClamped(q.Clone().Scale(qUtil))
	reduced := totalUtil - qUtil
	if reduced <= 0 {
		return 0
	}
	out.Scale(totalUtil / reduced)
	return RefWeightedJaccard(q, out, in)
}

// RefSum sums a map vector in ascending-ID order, matching
// SparseVec.Sum (unlike Vector.Sum, which canonicalises by value via
// DetSum).
func RefSum(v Vector, in *Interner) float64 {
	var s float64
	for id := 0; id < in.Len(); id++ {
		if w, ok := v[in.Key(uint32(id))]; ok {
			s += w
		}
	}
	return s
}
