// Package features implements ISUM's query featurization (Section 4.2):
// indexable-column extraction, rule-based and statistics-based column
// weighting, normalisation, the weighted-Jaccard similarity measure, and
// workload summary features (Definition 11).
//
// Two vector representations coexist, with two determinism regimes
// (DESIGN.md §11):
//
//   - Vector (this file) is the map-shaped cold-path form: extraction
//     output, display, and the test-only reference oracle. Map iteration
//     order is randomized, so any float reduction over a Vector must
//     canonicalise first — DetSum sorts the collected values before
//     summing. Keep using DetSum for map-shaped sums.
//   - SparseVec (sparse.go) is the hot-path form: parallel ids/weights
//     slices sorted ascending by interned ID (intern.go). Merge-join
//     kernels iterate in ascending-ID order, which IS the canonical
//     order, so their sums are bit-identical by construction and need no
//     DetSum-style sort.
package features

import (
	"math"
	"sort"
)

// Vector is a sparse feature vector mapping feature keys ("table.column")
// to non-negative weights. Absent keys are zero.
type Vector map[string]float64

// Clone returns a deep copy of the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for k, w := range v {
		out[k] = w
	}
	return out
}

// AllZero reports whether the vector has no positive weight.
func (v Vector) AllZero() bool {
	for _, w := range v {
		if w > 0 {
			return false
		}
	}
	return true
}

// Sum returns the total weight. The accumulation order is canonicalised so
// the result is bit-identical across runs (map iteration order is not).
func (v Vector) Sum() float64 {
	vals := make([]float64, 0, len(v))
	for _, w := range v {
		vals = append(vals, w)
	}
	return DetSum(vals)
}

// DetSum adds vals in ascending value order (mutating vals). Floating-point
// addition is not associative, so summing in Go's randomised map iteration
// order perturbs the last ulp from run to run; sorting by value first makes
// every sum over the same multiset reproduce the same bits. Exported so
// every package that folds a float over a map can share the one canonical
// accumulation (isumlint's determinism analyzer points here).
func DetSum(vals []float64) float64 {
	sort.Float64s(vals)
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

// Scale multiplies every weight by f in place and returns v.
func (v Vector) Scale(f float64) Vector {
	for k, w := range v {
		v[k] = w * f
	}
	return v
}

// AddScaled adds f·other into v in place and returns v.
func (v Vector) AddScaled(other Vector, f float64) Vector {
	for k, w := range other {
		v[k] += w * f
	}
	return v
}

// SubClamped subtracts other from v in place, clamping at zero, and
// returns v.
func (v Vector) SubClamped(other Vector) Vector {
	for k, w := range other {
		nw := v[k] - w
		if nw <= 0 {
			delete(v, k)
		} else {
			v[k] = nw
		}
	}
	return v
}

// ZeroShared removes from v every feature that has positive weight in
// other — the paper's "feature remove" update strategy (Section 4.3,
// second option), which empirically beats weight subtraction (Fig. 13).
func (v Vector) ZeroShared(other Vector) Vector {
	for k, w := range other {
		if w > 0 {
			delete(v, k)
		}
	}
	return v
}

// WeightedJaccard returns Σ_c min(a_c, b_c) / Σ_c max(a_c, b_c), the
// similarity measure of Section 4.2. It is 0 when either vector is empty
// and always lies in [0, 1]. Both sums accumulate in canonical order (see
// DetSum) so similarities are bit-identical across runs.
func WeightedJaccard(a, b Vector) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	mins := make([]float64, 0, len(a))
	maxs := make([]float64, 0, len(a)+len(b))
	for k, aw := range a {
		bw := b[k]
		mins = append(mins, math.Min(aw, bw))
		maxs = append(maxs, math.Max(aw, bw))
	}
	for k, bw := range b {
		if _, ok := a[k]; !ok {
			maxs = append(maxs, bw)
		}
	}
	maxSum := DetSum(maxs)
	if maxSum == 0 {
		return 0
	}
	return DetSum(mins) / maxSum
}

// Jaccard returns the unweighted Jaccard similarity of the key sets
// (weights ignored), used by the Fig. 7 similarity-measure comparison.
func Jaccard(a, b Vector) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
