package features

import (
	"sort"
	"strings"

	"isum/internal/workload"
)

// CandidateIndexIDs enumerates the syntactically-relevant candidate indexes
// a Table-1-style generator would produce for the query, as canonical ID
// strings. This powers the "similarity using candidate indexes" baseline of
// Section 4.2 / Fig. 7; the advisor package has its own (cost-based)
// candidate selection.
//
// Per table: single-column candidates for every indexable column, plus
// two-column combinations (sel+join, join+sel) and three-column
// combinations led by an order-by/group-by column, mirroring rules R1–R8.
func CandidateIndexIDs(info *workload.Info) map[string]bool {
	type cols struct{ sel, join, group, order []string }
	byTable := map[string]*cols{}
	get := func(t string) *cols {
		c := byTable[t]
		if c == nil {
			c = &cols{}
			byTable[t] = c
		}
		return c
	}
	add := func(list []string, c string) []string {
		for _, x := range list {
			if x == c {
				return list
			}
		}
		return append(list, c)
	}
	for _, f := range info.FilterColumns() {
		tc := get(f.Table)
		tc.sel = add(tc.sel, strings.ToLower(f.Column))
	}
	for _, j := range info.JoinColumns() {
		tc := get(j.Table)
		tc.join = add(tc.join, strings.ToLower(j.Column))
	}
	for _, g := range info.GroupByColumns() {
		tc := get(g.Table)
		tc.group = add(tc.group, strings.ToLower(g.Column))
	}
	for _, o := range info.OrderByColumns() {
		tc := get(o.Table)
		tc.order = add(tc.order, strings.ToLower(o.Column))
	}

	out := map[string]bool{}
	id := func(t string, keys ...string) string {
		return t + "(" + strings.Join(keys, ",") + ")"
	}
	for t, c := range byTable {
		sort.Strings(c.sel)
		sort.Strings(c.join)
		sort.Strings(c.group)
		sort.Strings(c.order)
		for _, s := range c.sel { // R1
			out[id(t, s)] = true
		}
		for _, j := range c.join { // R2
			out[id(t, j)] = true
		}
		for _, g := range c.group {
			out[id(t, g)] = true
		}
		for _, o := range c.order {
			out[id(t, o)] = true
		}
		for _, s := range c.sel {
			for _, j := range c.join {
				if s == j {
					continue
				}
				out[id(t, s, j)] = true // R3
				out[id(t, j, s)] = true // R4
				for _, o := range c.order {
					out[id(t, o, s, j)] = true // R5
					out[id(t, o, j, s)] = true // R7
				}
				for _, g := range c.group {
					out[id(t, g, s, j)] = true // R6
					out[id(t, g, j, s)] = true // R8
				}
			}
		}
	}
	return out
}

// SetJaccard returns |A∩B| / |A∪B| over two string sets.
func SetJaccard(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
