package features

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// synthVecs builds a deterministic pair of map vectors with the given
// entry counts and overlap, plus an interner covering both.
func synthVecs(nA, nB, overlap int) (Vector, Vector, *Interner) {
	a, b := Vector{}, Vector{}
	key := func(i int) string { return fmt.Sprintf("t%02d.c%03d", i%7, i) }
	for i := 0; i < nA; i++ {
		a[key(i)] = 0.1 + float64(i%11)*0.07
	}
	for i := nA - overlap; i < nA-overlap+nB; i++ {
		b[key(i)] = 0.15 + float64(i%13)*0.05
	}
	in := NewInterner()
	in.AddVectors([]Vector{a, b})
	return a, b, in
}

// sameVector fails unless got and want have identical support and
// bitwise-equal weights.
func sameVector(t *testing.T, op string, got, want Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: support %d, want %d\ngot  %v\nwant %v", op, len(got), len(want), got, want)
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok || g != w {
			t.Fatalf("%s: [%s] = %x (%v), want %x (%v)", op, k,
				math.Float64bits(g), g, math.Float64bits(w), w)
		}
	}
}

func TestInternerDeterministicIDs(t *testing.T) {
	a, b, in := synthVecs(12, 9, 4)
	in2 := NewInterner()
	in2.AddVectors([]Vector{b, a}) // different order, same batch
	if in.Len() != in2.Len() {
		t.Fatalf("table sizes differ: %d vs %d", in.Len(), in2.Len())
	}
	for id := 0; id < in.Len(); id++ {
		if in.Key(uint32(id)) != in2.Key(uint32(id)) {
			t.Fatalf("ID %d: %q vs %q", id, in.Key(uint32(id)), in2.Key(uint32(id)))
		}
	}
	// Batch IDs are lexicographic.
	for id := 1; id < in.Len(); id++ {
		if in.Key(uint32(id-1)) >= in.Key(uint32(id)) {
			t.Fatalf("IDs not lexicographic at %d: %q >= %q", id, in.Key(uint32(id-1)), in.Key(uint32(id)))
		}
	}
	// A second batch only appends.
	extra := Vector{"zz.z": 1, a.Clone().firstKey(): 1}
	in.AddVectors([]Vector{extra})
	if id, ok := in.ID("zz.z"); !ok || int(id) != in.Len()-1 {
		t.Fatalf("new key got ID %d (ok=%v), want %d", id, ok, in.Len()-1)
	}
}

// RestoreKeys rebuilds a persisted dictionary in exact ID order — even
// an order AddKeys could never produce — and refuses duplicates or a
// non-empty interner, since either would silently remap feature IDs.
func TestInternerRestoreKeys(t *testing.T) {
	// Cross-batch growth produces IDs that are not globally sorted.
	in := NewInterner()
	in.AddKeys([]string{"m.b", "m.a"})
	in.AddKeys([]string{"a.a", "z.z"})
	var keys []string
	for id := 0; id < in.Len(); id++ {
		keys = append(keys, in.Key(uint32(id)))
	}

	back := NewInterner()
	if err := back.RestoreKeys(keys); err != nil {
		t.Fatal(err)
	}
	if back.Len() != in.Len() {
		t.Fatalf("len %d, want %d", back.Len(), in.Len())
	}
	for id := 0; id < in.Len(); id++ {
		if back.Key(uint32(id)) != in.Key(uint32(id)) {
			t.Fatalf("ID %d: %q, want %q", id, back.Key(uint32(id)), in.Key(uint32(id)))
		}
		if got, ok := back.ID(in.Key(uint32(id))); !ok || got != uint32(id) {
			t.Fatalf("reverse lookup of %q = %d (ok=%v)", in.Key(uint32(id)), got, ok)
		}
	}
	// Growth after restore continues appending, preserving restored IDs.
	back.AddKeys([]string{"new.key"})
	if id, ok := back.ID("new.key"); !ok || int(id) != back.Len()-1 {
		t.Fatalf("post-restore append got ID %d (ok=%v)", id, ok)
	}

	if err := back.RestoreKeys([]string{"x.y"}); err == nil {
		t.Fatal("restore onto a non-empty interner must fail")
	}
	if err := NewInterner().RestoreKeys([]string{"d.d", "d.d"}); err == nil {
		t.Fatal("duplicate keys must fail")
	}
}

// firstKey returns the lexicographically smallest key (test helper).
func (v Vector) firstKey() string {
	best := ""
	for k := range v {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

func TestFromMapRoundTrip(t *testing.T) {
	a, b, in := synthVecs(10, 8, 3)
	for _, v := range []Vector{a, b, {}} {
		sv := in.FromMap(v)
		sameVector(t, "round-trip", sv.ToMap(in), v)
		if sv.Len() != len(v) {
			t.Fatalf("Len = %d, want %d", sv.Len(), len(v))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromMap with un-interned key must panic")
		}
	}()
	in.FromMap(Vector{"not.interned": 1})
}

// TestKernelZeroAlloc pins the tentpole's allocation claim: with warmed
// pools, the similarity and fused update kernels allocate nothing.
func TestKernelZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race instrumentation")
	}
	am, bm, in := synthVecs(24, 20, 10)
	a, b := in.FromMap(am), in.FromMap(bm)

	check := func(name string, fn func()) {
		t.Helper()
		fn() // warm pools and grow targets to final capacity
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}

	check("WeightedJaccard", func() { _ = a.WeightedJaccard(b) })
	check("Jaccard", func() { _ = a.Jaccard(b) })
	check("SummarySimilarity", func() { _ = SummarySimilarity(a, b, 0.25, 1.0) })
	check("Sum", func() { _ = a.Sum() })

	sub := a.Clone()
	check("SubClampedScaled", func() { sub.SubClampedScaled(b, 0.01) })
	zs := a.Clone()
	check("ZeroShared", func() { zs.ZeroShared(b) })
	add := a.Clone()
	check("AddScaled", func() { add.AddScaled(b, 0.001) })

	shared := make([]float64, 0, b.Len())
	check("SharedWeights+UpdateDelta+Release", func() {
		shared = a.SharedWeights(b, shared[:0])
		d := UpdateDelta(a, b, shared, 0.5, 0.25)
		d.Release()
	})
}

// fuzzClean maps arbitrary fuzz floats into a sane non-negative range.
func fuzzClean(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Mod(math.Abs(x), 4)
}

// FuzzSparseVecOps checks every SparseVec kernel against the map-based
// Vector reference oracle: entry-mutating ops must match the map result
// bitwise; similarity kernels must match the ascending-ID Ref* oracles
// bitwise and the legacy DetSum implementations within tolerance.
func FuzzSparseVecOps(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(5), 0.5, 0.25)
	f.Add(int64(42), uint8(0), uint8(9), 1.5, -0.75)
	f.Add(int64(7), uint8(16), uint8(16), 0.0, 2.5)
	f.Fuzz(func(t *testing.T, seed int64, n1, n2 uint8, f1, f2 float64) {
		rng := rand.New(rand.NewSource(seed))
		build := func(n int) Vector {
			v := Vector{}
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("t%d.c%d", rng.Intn(4), rng.Intn(24))
				w := rng.Float64() * 2
				if rng.Intn(8) == 0 {
					w = 0 // explicit zero entries occur in summaries
				}
				v[k] = w
			}
			return v
		}
		a, b := build(int(n1%20)), build(int(n2%20))
		in := NewInterner()
		in.AddVectors([]Vector{a, b})
		sa, sb := in.FromMap(a), in.FromMap(b)

		sameVector(t, "a round-trip", sa.ToMap(in), a)
		sameVector(t, "b round-trip", sb.ToMap(in), b)

		if got, want := sa.AllZero(), a.AllZero(); got != want {
			t.Fatalf("AllZero: %v, want %v", got, want)
		}
		if got, want := sa.Sum(), RefSum(a, in); got != want {
			t.Fatalf("Sum: %v, want %v", got, want)
		}
		if d := math.Abs(sa.Sum() - a.Sum()); d > 1e-9 {
			t.Fatalf("Sum vs DetSum drift %g", d)
		}

		if got, want := sa.WeightedJaccard(sb), RefWeightedJaccard(a, b, in); got != want {
			t.Fatalf("WeightedJaccard: %x, want %x", math.Float64bits(got), math.Float64bits(want))
		}
		if d := math.Abs(sa.WeightedJaccard(sb) - WeightedJaccard(a, b)); d > 1e-9 {
			t.Fatalf("WeightedJaccard vs legacy drift %g", d)
		}
		if got, want := sa.Jaccard(sb), Jaccard(a, b); got != want {
			t.Fatalf("Jaccard: %v, want %v", got, want)
		}

		qUtil, extra := fuzzClean(f1), fuzzClean(f2)
		totalUtil := qUtil + extra
		if got, want := SummarySimilarity(sa, sb, qUtil, totalUtil), RefSummarySimilarity(a, b, qUtil, totalUtil, in); got != want {
			t.Fatalf("SummarySimilarity: %x, want %x", math.Float64bits(got), math.Float64bits(want))
		}
		if reduced := totalUtil - qUtil; reduced > 0 {
			stagedV := b.Clone()
			stagedV.SubClamped(a.Clone().Scale(qUtil))
			stagedV.Scale(totalUtil / reduced)
			staged := WeightedJaccard(a, stagedV)
			if d := math.Abs(SummarySimilarity(sa, sb, qUtil, totalUtil) - staged); d > 1e-9 {
				t.Fatalf("SummarySimilarity vs staged legacy drift %g", d)
			}
		}

		// Entry-mutating kernels: bitwise map equivalence.
		signed := f1
		if math.IsNaN(signed) || math.IsInf(signed, 0) {
			signed = -0.5
		} else {
			signed = math.Mod(signed, 4)
		}
		sv, mv := sa.Clone(), a.Clone()
		sv.AddScaled(sb, signed)
		mv.AddScaled(b, signed)
		sameVector(t, "AddScaled", sv.ToMap(in), mv)

		fpos := fuzzClean(f2)
		sv2, mv2 := sa.Clone(), a.Clone()
		sv2.SubClampedScaled(sb, fpos)
		mv2.SubClamped(b.Clone().Scale(fpos))
		sameVector(t, "SubClampedScaled", sv2.ToMap(in), mv2)

		sv3, mv3 := sa.Clone(), a.Clone()
		sv3.SubClamped(sb)
		mv3.SubClamped(b)
		sameVector(t, "SubClamped", sv3.ToMap(in), mv3)

		sv4, mv4 := sa.Clone(), a.Clone()
		sv4.ZeroShared(sb)
		mv4.ZeroShared(b)
		sameVector(t, "ZeroShared", sv4.ToMap(in), mv4)

		sv5, mv5 := sa.Clone(), a.Clone()
		sv5.Scale(signed)
		mv5.Scale(signed)
		sameVector(t, "Scale", sv5.ToMap(in), mv5)

		// Fused summary delta vs the touched-map reference: mutate a copy
		// the way an update would, then diff.
		oldU, newU := qUtil, extra
		shared := sa.SharedWeights(sb, nil)
		cur := sa.Clone()
		cur.ZeroShared(sb)
		d := UpdateDelta(cur, sb, shared, oldU, newU)
		want := Vector{}
		curM := cur.ToMap(in)
		for k := range b {
			oldW := a[k] // SharedWeights snapshot semantics: 0 when absent
			if dd := newU*curM[k] - oldU*oldW; dd != 0 {
				want[k] = dd
			}
		}
		if newU != oldU {
			for k, w := range curM {
				if _, ok := b[k]; ok {
					continue
				}
				if dd := (newU - oldU) * w; dd != 0 {
					want[k] = dd
				}
			}
		}
		sameVector(t, "UpdateDelta", d.ToMap(in), want)
		d.Release()

		// Get/Each agree with the map.
		sa.Each(func(id uint32, w float64) {
			if got, ok := sa.Get(id); !ok || got != w {
				t.Fatalf("Get(%d) = %v,%v, want %v", id, got, ok, w)
			}
			if a[in.Key(id)] != w {
				t.Fatalf("Each weight mismatch at %d", id)
			}
		})
	})
}

// BenchmarkJaccard compares the map-based WeightedJaccard (DetSum
// canonicalisation, per-call allocations) with the SparseVec merge-join
// kernel on representative vectors: ~24 features per query, ~50%
// overlap. BENCH_vectors.json is generated from this benchmark.
func BenchmarkJaccard(b *testing.B) {
	am, bm, in := synthVecs(24, 24, 12)
	sa, sb := in.FromMap(am), in.FromMap(bm)

	b.Run("impl=map", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += WeightedJaccard(am, bm)
		}
		benchSink = sink
	})
	b.Run("impl=sparse", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += sa.WeightedJaccard(sb)
		}
		benchSink = sink
	})
}

// benchSink defeats dead-code elimination of the benchmarked kernels.
var benchSink float64
