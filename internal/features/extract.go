package features

import (
	"strings"

	"isum/internal/catalog"
	"isum/internal/workload"
)

// WeightMode selects how indexable columns are weighted (Section 4.2).
type WeightMode int

const (
	// RuleBased counts the fraction of Table-1 candidate indexes each
	// column participates in. This is ISUM's default: it needs no column
	// statistics beyond table sizes.
	RuleBased WeightMode = iota
	// StatsBased weighs columns by (1 − s(c)) where s is the predicate
	// selectivity for filter/join columns and the density for
	// group-by/order-by columns — the ISUM-S variant.
	StatsBased
)

// NormMode selects the per-query weight normalisation.
type NormMode int

const (
	// NormMax divides weights by the query's maximum weight, giving values
	// in (0, 1] while preserving ratios. This is the default: the paper's
	// literal min-max denominator is numerically unstable when a query's
	// weights are nearly equal (max − min → 0).
	NormMax NormMode = iota
	// NormMinMaxPaper divides by (max − min) exactly as written in
	// Section 4.2, falling back to NormMax when max = min.
	NormMinMaxPaper
	// NormNone leaves raw weights.
	NormNone
)

// Position is the syntactic role of an indexable column (Definition 5).
type Position int

const (
	// PosFilter marks filter-predicate columns.
	PosFilter Position = iota
	// PosJoin marks join-predicate columns.
	PosJoin
	// PosGroupBy marks GROUP BY columns.
	PosGroupBy
	// PosOrderBy marks ORDER BY columns.
	PosOrderBy
)

// Extractor computes query feature vectors against a catalog.
type Extractor struct {
	Cat  *catalog.Catalog
	Mode WeightMode
	Norm NormMode
	// UseTableWeight multiplies column weights by w_table = n(t)/Σn(t').
	// The ISUM-NoTable ablation (Fig. 10) sets this false.
	UseTableWeight bool
}

// NewExtractor returns a rule-based extractor with table weighting — the
// default ISUM configuration.
func NewExtractor(cat *catalog.Catalog) *Extractor {
	return &Extractor{Cat: cat, Mode: RuleBased, Norm: NormMax, UseTableWeight: true}
}

// columnRole aggregates everything known about one indexable column in one
// query.
type columnRole struct {
	cu        workload.ColumnUse
	positions map[Position]bool
	// minSel is the most selective predicate selectivity observed for the
	// column (filters and joins).
	minSel float64
	hasSel bool
}

// Features returns the query's feature vector (Definition 6): one weight
// per indexable column, normalised per Norm.
func (e *Extractor) Features(q *workload.Query) Vector {
	if q.Info == nil {
		return Vector{}
	}
	roles := e.collectRoles(q.Info)
	if len(roles) == 0 {
		return Vector{}
	}

	// Per-table position counts for the rule-based candidate counting.
	counts := map[string]*positionCounts{}
	for _, r := range roles {
		pc := counts[r.cu.Table]
		if pc == nil {
			pc = &positionCounts{}
			counts[r.cu.Table] = pc
		}
		if r.positions[PosFilter] {
			pc.S++
		}
		if r.positions[PosJoin] {
			pc.J++
		}
		if r.positions[PosGroupBy] {
			pc.G++
		}
		if r.positions[PosOrderBy] {
			pc.O++
		}
	}

	v := make(Vector, len(roles))
	for key, r := range roles {
		var w float64
		switch e.Mode {
		case StatsBased:
			w = e.statsWeight(r)
		default:
			w = e.ruleWeight(r, counts[r.cu.Table])
		}
		if e.UseTableWeight {
			w *= e.Cat.TableWeight(r.cu.Table)
		}
		if w > 0 {
			v[key] = w
		}
	}
	return e.normalize(v)
}

// positionCounts holds per-table counts of columns in each position.
type positionCounts struct{ S, J, G, O int }

// ruleWeight implements the Table-1 candidate-index counting. Each rule
// generates one candidate per choice of one column for each of its
// positions:
//
//	R1 sel (S) · R2 join (J) · R3 sel+join (S·J) · R4 join+sel (J·S)
//	R5 ob+sel+join (O·S·J) · R6 gb+sel+join (G·S·J)
//	R7 ob+join+sel (O·J·S) · R8 gb+join+sel (G·J·S)
//
// plus singleton group-by and order-by candidates (G, O) so that sort- and
// group-only queries still produce non-zero weights (advisors do generate
// bare ordering indexes; without this the paper's formula zeroes such
// queries out). d(t,c)/d(t) then follows Section 4.2: order-by/group-by
// columns participate in fewer candidates than selection or join columns.
func (e *Extractor) ruleWeight(r *columnRole, pc *positionCounts) float64 {
	s, j, g, o := float64(pc.S), float64(pc.J), float64(pc.G), float64(pc.O)
	dt := s + j + g + o + 2*s*j + 2*o*s*j + 2*g*s*j
	if dt == 0 {
		return 0
	}
	var dtc float64
	if r.positions[PosFilter] {
		dtc = max64(dtc, 1+2*j+2*o*j+2*g*j)
	}
	if r.positions[PosJoin] {
		dtc = max64(dtc, 1+2*s+2*o*s+2*g*s)
	}
	if r.positions[PosGroupBy] || r.positions[PosOrderBy] {
		dtc = max64(dtc, 1+2*s*j)
	}
	return dtc / dt
}

// statsWeight implements w(c) = 1 − s(c) with s the best predicate
// selectivity for filter/join columns and the column density for
// group-by/order-by columns.
func (e *Extractor) statsWeight(r *columnRole) float64 {
	s := 1.0
	if (r.positions[PosFilter] || r.positions[PosJoin]) && r.hasSel {
		s = r.minSel
	} else if r.positions[PosGroupBy] || r.positions[PosOrderBy] {
		if t := e.Cat.Table(r.cu.Table); t != nil {
			if c := t.Column(r.cu.Column); c != nil {
				s = c.Density()
			}
		}
	}
	w := 1 - s
	if w < 0.01 {
		w = 0.01 // keep every indexable column minimally present
	}
	return w
}

func (e *Extractor) collectRoles(info *workload.Info) map[string]*columnRole {
	roles := map[string]*columnRole{}
	get := func(cu workload.ColumnUse) *columnRole {
		key := strings.ToLower(cu.Key())
		r := roles[key]
		if r == nil {
			r = &columnRole{cu: cu, positions: map[Position]bool{}}
			roles[key] = r
		}
		return r
	}
	for _, f := range info.Filters {
		r := get(f.ColumnUse)
		r.positions[PosFilter] = true
		if !r.hasSel || f.Selectivity < r.minSel {
			r.minSel, r.hasSel = f.Selectivity, true
		}
	}
	for _, j := range info.Joins {
		for _, cu := range []workload.ColumnUse{j.Left, j.Right} {
			r := get(cu)
			r.positions[PosJoin] = true
			if !r.hasSel || j.Selectivity < r.minSel {
				r.minSel, r.hasSel = j.Selectivity, true
			}
		}
	}
	for _, cu := range info.GroupBy {
		get(cu).positions[PosGroupBy] = true
	}
	for _, cu := range info.OrderBy {
		get(cu).positions[PosOrderBy] = true
	}
	return roles
}

func (e *Extractor) normalize(v Vector) Vector {
	if len(v) == 0 || e.Norm == NormNone {
		return v
	}
	var minW, maxW float64
	first := true
	for _, w := range v {
		if first {
			minW, maxW = w, w
			first = false
			continue
		}
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	if maxW <= 0 {
		return v
	}
	denom := maxW
	if e.Norm == NormMinMaxPaper && maxW > minW {
		denom = maxW - minW
	}
	for k, w := range v {
		v[k] = w / denom
	}
	return v
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
