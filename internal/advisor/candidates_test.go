package advisor

import (
	"strings"
	"testing"

	"isum/internal/cost"
	"isum/internal/index"
	"isum/internal/workload"
)

func TestRolesForQuery(t *testing.T) {
	cat := testCatalog()
	q, err := workload.NewQuery(cat, 0, `SELECT l_extendedprice FROM lineitem, orders
		WHERE l_orderkey = o_orderkey AND l_quantity = 5 AND l_shipdate > '1995-06-01'
		GROUP BY l_suppkey ORDER BY l_extendedprice`)
	if err != nil {
		t.Fatal(err)
	}
	roles := rolesForQuery(q)
	li := roles["lineitem"]
	if li == nil {
		t.Fatal("lineitem roles missing")
	}
	if len(li.eqFilters) != 1 || li.eqFilters[0].col != "l_quantity" {
		t.Fatalf("eq filters = %+v", li.eqFilters)
	}
	if len(li.rngFilters) != 1 || li.rngFilters[0].col != "l_shipdate" {
		t.Fatalf("range filters = %+v", li.rngFilters)
	}
	if len(li.joins) != 1 || li.joins[0] != "l_orderkey" {
		t.Fatalf("joins = %v", li.joins)
	}
	if len(li.groupBy) != 1 || li.groupBy[0] != "l_suppkey" {
		t.Fatalf("groupBy = %v", li.groupBy)
	}
	if len(li.orderBy) != 1 || li.orderBy[0] != "l_extendedprice" {
		t.Fatalf("orderBy = %v", li.orderBy)
	}
	if li.needAll {
		t.Fatal("no star in this query")
	}
	// Needed columns include everything touched.
	for _, want := range []string{"l_quantity", "l_shipdate", "l_orderkey", "l_suppkey", "l_extendedprice"} {
		found := false
		for _, c := range li.needCols {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("needCols missing %s: %v", want, li.needCols)
		}
	}
	or := roles["orders"]
	if or == nil || len(or.joins) != 1 {
		t.Fatalf("orders roles = %+v", or)
	}
}

func TestEqFiltersSortedBySelectivity(t *testing.T) {
	cat := testCatalog()
	// l_orderkey (very selective eq) and l_quantity (1/50): orderkey first.
	q, err := workload.NewQuery(cat, 0,
		"SELECT l_comment FROM lineitem WHERE l_quantity = 5 AND l_orderkey = 42")
	if err != nil {
		t.Fatal(err)
	}
	li := rolesForQuery(q)["lineitem"]
	if li.eqFilters[0].col != "l_orderkey" {
		t.Fatalf("most selective filter should lead: %+v", li.eqFilters)
	}
}

func TestCandidatesNoDuplicateKeys(t *testing.T) {
	cat := testCatalog()
	a := New(cost.NewOptimizer(cat), DefaultOptions())
	// l_shipdate is a filter AND the order-by column: combination rules must
	// not emit (l_shipdate, l_shipdate).
	q, err := workload.NewQuery(cat, 0,
		`SELECT l_suppkey FROM lineitem WHERE l_shipdate > '1996-01-01'
		 GROUP BY l_suppkey ORDER BY l_shipdate`)
	if err != nil {
		t.Fatal(err)
	}
	for _, ix := range a.syntacticCandidates(q) {
		seen := map[string]bool{}
		for _, k := range ix.Keys {
			lk := strings.ToLower(k)
			if seen[lk] {
				t.Fatalf("duplicate key in candidate %v", ix)
			}
			seen[lk] = true
		}
	}
}

func TestCandidatesValidateAgainstCatalog(t *testing.T) {
	cat := testCatalog()
	a := New(cost.NewOptimizer(cat), DefaultOptions())
	w := testWorkload(t, cat)
	for _, q := range w.Queries {
		for _, ix := range a.syntacticCandidates(q) {
			if err := ix.Validate(cat); err != nil {
				t.Fatalf("invalid candidate for %q: %v", q.Text, err)
			}
		}
	}
}

func TestDexterCandidatesShape(t *testing.T) {
	cat := testCatalog()
	a := New(cost.NewOptimizer(cat), DexterOptions())
	q, err := workload.NewQuery(cat, 0,
		`SELECT l_comment FROM lineitem WHERE l_quantity = 5 AND l_shipdate > '1996-01-01'
		 GROUP BY l_suppkey`)
	if err != nil {
		t.Fatal(err)
	}
	cands := a.dexterCandidates(q)
	if len(cands) == 0 {
		t.Fatal("no dexter candidates")
	}
	for _, ix := range cands {
		if len(ix.Includes) > 0 {
			t.Fatalf("dexter candidates must not include: %v", ix)
		}
		if len(ix.Keys) > 2 {
			t.Fatalf("dexter candidates capped at 2 keys: %v", ix)
		}
		// Group-by columns are not dexter candidates (filters/joins only).
		if strings.EqualFold(ix.LeadingKey(), "l_suppkey") {
			t.Fatalf("dexter should not index group-by columns: %v", ix)
		}
	}
}

func TestAppendUnique(t *testing.T) {
	got := appendUnique([]string{"a"}, "a")
	if len(got) != 1 {
		t.Fatal("duplicate appended")
	}
	got = appendUnique(got, "b")
	if len(got) != 2 {
		t.Fatal("append failed")
	}
}

func TestMergedBenefitAveraged(t *testing.T) {
	a := New(cost.NewOptimizer(testCatalog()), DefaultOptions())
	in := []scored{
		{ix: index.New("orders", "o_custkey"), benefit: 10},
		{ix: index.New("orders", "o_custkey", "o_orderdate"), benefit: 6},
	}
	out := a.addMerged(in)
	for _, s := range out[len(in):] {
		if s.benefit != 8 {
			t.Fatalf("merged benefit = %f, want average 8", s.benefit)
		}
	}
}
