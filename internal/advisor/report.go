package advisor

import (
	"fmt"
	"io"
	"sort"

	"isum/internal/cost"
	"isum/internal/index"
	"isum/internal/workload"
)

// QueryReport is the per-query drill-down commercial advisors report
// (Section 10): the before/after costs on the *input* workload and which
// recommended indexes each query's plan uses.
type QueryReport struct {
	ID             int
	Text           string
	Before, After  float64
	ImprovementPct float64
	IndexesUsed    []string
}

// WorkloadReport aggregates the drill-down for an entire workload.
type WorkloadReport struct {
	Queries        []QueryReport
	Before, After  float64
	ImprovementPct float64
	// IndexUsage counts how many queries use each recommended index.
	IndexUsage map[string]int
}

// Report evaluates cfg on every query of w and assembles the DTA-style
// drill-down. This is the step the paper notes can dominate tuning time for
// large input workloads — one optimizer call per query (Section 10).
func Report(o *cost.Optimizer, w *workload.Workload, cfg *index.Configuration) *WorkloadReport {
	rep := &WorkloadReport{IndexUsage: map[string]int{}}
	for _, q := range w.Queries {
		before := o.Cost(q, nil)
		after := o.Cost(q, cfg)
		qr := QueryReport{
			ID:     q.ID,
			Text:   q.Text,
			Before: before,
			After:  after,
		}
		if before > 0 {
			qr.ImprovementPct = (before - after) / before * 100
		}
		plan := o.Explain(q, cfg)
		qr.IndexesUsed = plan.IndexesUsed()
		for _, id := range qr.IndexesUsed {
			rep.IndexUsage[id]++
		}
		rep.Queries = append(rep.Queries, qr)
		rep.Before += before
		rep.After += after
	}
	if rep.Before > 0 {
		rep.ImprovementPct = (rep.Before - rep.After) / rep.Before * 100
	}
	return rep
}

// Write renders the report: the workload summary, the top improved queries,
// and per-index usage counts.
func (r *WorkloadReport) Write(w io.Writer, topN int) {
	fmt.Fprintf(w, "workload improvement: %.2f%% (cost %.0f -> %.0f, %d queries)\n",
		r.ImprovementPct, r.Before, r.After, len(r.Queries))

	sorted := append([]QueryReport{}, r.Queries...)
	sort.Slice(sorted, func(i, j int) bool {
		di, dj := sorted[i].Before-sorted[i].After, sorted[j].Before-sorted[j].After
		if di != dj {
			return di > dj
		}
		return sorted[i].ID < sorted[j].ID // total order: equal gains keep ID order
	})
	if topN > len(sorted) {
		topN = len(sorted)
	}
	fmt.Fprintf(w, "top %d improved queries:\n", topN)
	for _, qr := range sorted[:topN] {
		fmt.Fprintf(w, "  #%-4d %6.1f%%  (%.0f -> %.0f)  %.60s\n",
			qr.ID, qr.ImprovementPct, qr.Before, qr.After, qr.Text)
		for _, ix := range qr.IndexesUsed {
			fmt.Fprintf(w, "        uses %s\n", ix)
		}
	}

	type usage struct {
		id string
		n  int
	}
	var us []usage
	for id, n := range r.IndexUsage {
		us = append(us, usage{id, n})
	}
	sort.Slice(us, func(i, j int) bool {
		if us[i].n != us[j].n {
			return us[i].n > us[j].n
		}
		return us[i].id < us[j].id
	})
	fmt.Fprintln(w, "index usage:")
	for _, u := range us {
		fmt.Fprintf(w, "  %3d queries  %s\n", u.n, u.id)
	}
}
