package advisor

import (
	"sort"
	"strings"

	"isum/internal/index"
	"isum/internal/workload"
)

// tableRoles aggregates a query's indexable columns on one table, split by
// position, with selectivities for ordering.
type tableRoles struct {
	table      string
	eqFilters  []colSel // sargable equality/IN filters, most selective first
	rngFilters []colSel // range/LIKE filters, most selective first
	joins      []string
	groupBy    []string
	orderBy    []string
	needCols   []string // all columns of this table the query touches
	needAll    bool     // SELECT * somewhere over this table
}

type colSel struct {
	col string
	sel float64
}

// rolesForQuery collects per-table roles from a query's analysis.
func rolesForQuery(q *workload.Query) map[string]*tableRoles {
	out := map[string]*tableRoles{}
	if q.Info == nil {
		return out
	}
	get := func(t string) *tableRoles {
		r := out[t]
		if r == nil {
			r = &tableRoles{table: t}
			out[t] = r
		}
		return r
	}

	bestFilter := map[string]workload.FilterPredicate{}
	for _, f := range q.Info.Filters {
		key := f.Table + "." + strings.ToLower(f.Column)
		if cur, ok := bestFilter[key]; !ok || f.Selectivity < cur.Selectivity {
			bestFilter[key] = f
		}
	}
	for _, f := range bestFilter {
		r := get(f.Table)
		cs := colSel{col: strings.ToLower(f.Column), sel: f.Selectivity}
		if f.SargableEq {
			r.eqFilters = append(r.eqFilters, cs)
		} else {
			r.rngFilters = append(r.rngFilters, cs)
		}
	}
	for _, j := range q.Info.JoinColumns() {
		r := get(j.Table)
		r.joins = appendUnique(r.joins, strings.ToLower(j.Column))
	}
	for _, g := range q.Info.GroupByColumns() {
		r := get(g.Table)
		r.groupBy = appendUnique(r.groupBy, strings.ToLower(g.Column))
	}
	for _, o := range q.Info.OrderByColumns() {
		r := get(o.Table)
		r.orderBy = appendUnique(r.orderBy, strings.ToLower(o.Column))
	}

	// Needed columns and SELECT * detection, per block.
	for _, blk := range q.Info.Blocks {
		for _, tu := range blk.Tables {
			r := get(tu.Table)
			if blk.SelectStar {
				r.needAll = true
			}
		}
		addNeed := func(cu workload.ColumnUse) {
			if r, ok := out[cu.Table]; ok {
				r.needCols = appendUnique(r.needCols, strings.ToLower(cu.Column))
			}
		}
		for _, f := range blk.Filters {
			addNeed(f.ColumnUse)
		}
		for _, j := range blk.Joins {
			addNeed(j.Left)
			addNeed(j.Right)
		}
		for _, c := range blk.GroupBy {
			addNeed(c)
		}
		for _, c := range blk.OrderBy {
			addNeed(c)
		}
		for _, c := range blk.Projected {
			addNeed(c)
		}
	}

	// Tie-break equal selectivities by column name: the filters arrive in
	// map-iteration order and an unstable benefit-only sort would generate
	// different prefix candidates (and thus different candidate sets) from
	// run to run.
	bySel := func(cs []colSel) func(i, j int) bool {
		return func(i, j int) bool {
			if cs[i].sel != cs[j].sel {
				return cs[i].sel < cs[j].sel
			}
			return cs[i].col < cs[j].col
		}
	}
	for _, r := range out {
		sort.Slice(r.eqFilters, bySel(r.eqFilters))
		sort.Slice(r.rngFilters, bySel(r.rngFilters))
		sort.Strings(r.joins)
		sort.Strings(r.needCols)
	}
	return out
}

// syntacticCandidates generates the syntactically-relevant indexes for one
// query (step 1 of Fig. 1): per table, single-column indexes for every
// indexable column, multi-column combinations per the Table-1 rules
// (selection prefixes, selection+join both orders, order-by/group-by
// leading), and covering (INCLUDE) variants.
func (a *Advisor) syntacticCandidates(q *workload.Query) []index.Index {
	var out []index.Index
	seen := map[string]bool{}
	emit := func(ix index.Index) {
		if len(ix.Keys) == 0 || len(ix.Keys) > a.opts.MaxKeyColumns {
			return
		}
		// Reject duplicate key columns (a column can hold several roles,
		// e.g. filtered and grouped, and combination rules may repeat it).
		keySet := map[string]bool{}
		for _, k := range ix.Keys {
			lk := strings.ToLower(k)
			if keySet[lk] {
				return
			}
			keySet[lk] = true
		}
		id := ix.ID()
		if !seen[id] {
			seen[id] = true
			out = append(out, ix)
		}
	}

	for _, tr := range sortedRoles(rolesForQuery(q)) {
		t, r := tr.table, tr.roles
		// Singles.
		for _, f := range r.eqFilters {
			emit(index.New(t, f.col))
		}
		for _, f := range r.rngFilters {
			emit(index.New(t, f.col))
		}
		for _, j := range r.joins {
			emit(index.New(t, j))
		}
		for _, g := range r.groupBy {
			emit(index.New(t, g))
		}
		for _, o := range r.orderBy {
			emit(index.New(t, o))
		}

		// Equality prefixes (most selective first), optionally capped by one
		// range column.
		eqCols := colsOf(r.eqFilters)
		for n := 2; n <= len(eqCols) && n <= a.opts.MaxKeyColumns; n++ {
			emit(index.New(t, eqCols[:n]...))
		}
		if len(r.rngFilters) > 0 {
			rng := r.rngFilters[0].col
			for n := 1; n <= len(eqCols) && n < a.opts.MaxKeyColumns; n++ {
				emit(index.New(t, append(append([]string{}, eqCols[:n]...), rng)...))
			}
			if len(eqCols) == 0 {
				emit(index.New(t, rng))
			}
		}

		// Selection+join (R3) and join+selection (R4).
		firstSel := ""
		if len(eqCols) > 0 {
			firstSel = eqCols[0]
		} else if len(r.rngFilters) > 0 {
			firstSel = r.rngFilters[0].col
		}
		for _, j := range r.joins {
			if firstSel != "" && firstSel != j {
				emit(index.New(t, firstSel, j))
				emit(index.New(t, j, firstSel))
			}
		}

		// Group-by/order-by sets as leading keys (R5–R8 flavours).
		if len(r.groupBy) > 0 && len(r.groupBy) <= a.opts.MaxKeyColumns {
			emit(index.New(t, r.groupBy...))
			if firstSel != "" && len(r.groupBy) < a.opts.MaxKeyColumns {
				emit(index.New(t, append(append([]string{}, r.groupBy...), firstSel)...))
			}
		}
		if len(r.orderBy) > 0 && len(r.orderBy) <= a.opts.MaxKeyColumns {
			emit(index.New(t, r.orderBy...))
			if firstSel != "" && len(r.orderBy) < a.opts.MaxKeyColumns {
				emit(index.New(t, append(append([]string{}, r.orderBy...), firstSel)...))
			}
		}
	}

	// Covering variants.
	if a.opts.EnableIncludes {
		roles := rolesForQuery(q)
		base := out
		for _, ix := range base {
			r := roles[strings.ToLower(ix.Table)]
			if r == nil || r.needAll {
				continue
			}
			cov := ix.WithIncludes(r.needCols...)
			if len(cov.Includes) == 0 || len(cov.Includes) > a.opts.MaxIncludeColumns {
				continue
			}
			if !seen[cov.ID()] {
				seen[cov.ID()] = true
				out = append(out, cov)
			}
		}
	}
	return out
}

// tableRole pairs a table name with its roles for ordered iteration.
type tableRole struct {
	table string
	roles *tableRoles
}

// sortedRoles flattens the per-table role map into table-name order, so
// candidate emission is deterministic at the source instead of leaning
// on downstream tie-break sorts to undo map iteration order.
func sortedRoles(m map[string]*tableRoles) []tableRole {
	out := make([]tableRole, 0, len(m))
	for t, r := range m {
		out = append(out, tableRole{table: t, roles: r})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].table < out[j].table })
	return out
}

func colsOf(cs []colSel) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.col
	}
	return out
}

func appendUnique(list []string, s string) []string {
	for _, x := range list {
		if x == s {
			return list
		}
	}
	return append(list, s)
}
