package advisor

import (
	"strings"
	"testing"
	"time"

	"isum/internal/catalog"
	"isum/internal/cost"
	"isum/internal/index"
	"isum/internal/workload"
)

// testCatalog builds a TPC-H-flavoured catalog with histograms.
func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	dmin, _ := workload.ParseDateDays("1992-01-01")
	dmax, _ := workload.ParseDateDays("1998-12-31")

	li := catalog.NewTable("lineitem", 6000000)
	li.AddColumn(&catalog.Column{Name: "l_orderkey", Type: catalog.TypeInt, DistinctCount: 1500000, Min: 1, Max: 6000000,
		Hist: catalog.SyntheticHistogram(1, 6000000, 6000000, 1500000, 50, 0)})
	li.AddColumn(&catalog.Column{Name: "l_suppkey", Type: catalog.TypeInt, DistinctCount: 10000, Min: 1, Max: 10000,
		Hist: catalog.SyntheticHistogram(1, 10000, 6000000, 10000, 50, 0)})
	li.AddColumn(&catalog.Column{Name: "l_quantity", Type: catalog.TypeDecimal, DistinctCount: 50, Min: 1, Max: 50,
		Hist: catalog.SyntheticHistogram(1, 50, 6000000, 50, 25, 0)})
	li.AddColumn(&catalog.Column{Name: "l_extendedprice", Type: catalog.TypeDecimal, DistinctCount: 1000000, Min: 900, Max: 105000,
		Hist: catalog.SyntheticHistogram(900, 105000, 6000000, 1000000, 50, 0)})
	li.AddColumn(&catalog.Column{Name: "l_shipdate", Type: catalog.TypeDate, DistinctCount: 2526, Min: dmin, Max: dmax,
		Hist: catalog.SyntheticHistogram(dmin, dmax, 6000000, 2526, 50, 0)})
	li.AddColumn(&catalog.Column{Name: "l_comment", Type: catalog.TypeString, DistinctCount: 4500000, AvgWidth: 27})
	cat.AddTable(li)

	o := catalog.NewTable("orders", 1500000)
	o.AddColumn(&catalog.Column{Name: "o_orderkey", Type: catalog.TypeInt, DistinctCount: 1500000, Min: 1, Max: 6000000,
		Hist: catalog.SyntheticHistogram(1, 6000000, 1500000, 1500000, 50, 0)})
	o.AddColumn(&catalog.Column{Name: "o_custkey", Type: catalog.TypeInt, DistinctCount: 100000, Min: 1, Max: 150000,
		Hist: catalog.SyntheticHistogram(1, 150000, 1500000, 100000, 50, 0)})
	o.AddColumn(&catalog.Column{Name: "o_orderdate", Type: catalog.TypeDate, DistinctCount: 2406, Min: dmin, Max: dmax,
		Hist: catalog.SyntheticHistogram(dmin, dmax, 1500000, 2406, 50, 0)})
	o.AddColumn(&catalog.Column{Name: "o_totalprice", Type: catalog.TypeDecimal, DistinctCount: 1400000, Min: 800, Max: 600000,
		Hist: catalog.SyntheticHistogram(800, 600000, 1500000, 1400000, 50, 0)})
	cat.AddTable(o)

	c := catalog.NewTable("customer", 150000)
	c.AddColumn(&catalog.Column{Name: "c_custkey", Type: catalog.TypeInt, DistinctCount: 150000, Min: 1, Max: 150000,
		Hist: catalog.SyntheticHistogram(1, 150000, 150000, 150000, 20, 0)})
	c.AddColumn(&catalog.Column{Name: "c_mktsegment", Type: catalog.TypeString, DistinctCount: 5})
	c.AddColumn(&catalog.Column{Name: "c_nationkey", Type: catalog.TypeInt, DistinctCount: 25, Min: 0, Max: 24,
		Hist: catalog.SyntheticHistogram(0, 24, 150000, 25, 25, 0)})
	cat.AddTable(c)
	return cat
}

func testWorkload(t *testing.T, cat *catalog.Catalog) *workload.Workload {
	t.Helper()
	sqls := []string{
		"SELECT l_extendedprice FROM lineitem WHERE l_orderkey = 42",
		"SELECT l_extendedprice FROM lineitem WHERE l_suppkey = 77 AND l_shipdate >= '1995-01-01' AND l_shipdate < '1995-02-01'",
		"SELECT o_totalprice FROM customer, orders WHERE c_custkey = o_custkey AND c_nationkey = 7",
		"SELECT l_suppkey, SUM(l_extendedprice) FROM lineitem WHERE l_shipdate > '1998-09-01' GROUP BY l_suppkey",
		"SELECT o_orderdate FROM orders WHERE o_totalprice > 595000 ORDER BY o_orderdate",
	}
	w, err := workload.New(cat, sqls)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSyntacticCandidates(t *testing.T) {
	cat := testCatalog()
	a := New(cost.NewOptimizer(cat), DefaultOptions())
	q, err := workload.NewQuery(cat, 0,
		"SELECT l_extendedprice FROM lineitem WHERE l_suppkey = 77 AND l_shipdate > '1998-01-01' ORDER BY l_shipdate")
	if err != nil {
		t.Fatal(err)
	}
	cands := a.syntacticCandidates(q)
	if len(cands) < 4 {
		t.Fatalf("too few candidates: %v", cands)
	}
	var haveMulti, haveCovering bool
	for _, ix := range cands {
		if len(ix.Keys) >= 2 {
			haveMulti = true
		}
		if len(ix.Includes) > 0 {
			haveCovering = true
		}
		if len(ix.Keys) > 3 {
			t.Fatalf("key width exceeded: %v", ix)
		}
	}
	if !haveMulti || !haveCovering {
		t.Fatalf("expected multi-column and covering candidates: %v", cands)
	}
}

func TestSelectStarSuppressesCovering(t *testing.T) {
	cat := testCatalog()
	a := New(cost.NewOptimizer(cat), DefaultOptions())
	q, err := workload.NewQuery(cat, 0, "SELECT * FROM orders WHERE o_custkey = 42")
	if err != nil {
		t.Fatal(err)
	}
	for _, ix := range a.syntacticCandidates(q) {
		if len(ix.Includes) > 0 {
			t.Fatalf("SELECT * query should not get covering candidates: %v", ix)
		}
	}
}

func TestTuneImprovesWorkload(t *testing.T) {
	cat := testCatalog()
	o := cost.NewOptimizer(cat)
	w := testWorkload(t, cat)
	o.FillCosts(w)

	a := New(o, DefaultOptions())
	res := a.Tune(w)
	if res.Config.Len() == 0 {
		t.Fatal("no indexes recommended")
	}
	if res.FinalCost >= res.InitialCost {
		t.Fatalf("tuning did not improve: %f >= %f", res.FinalCost, res.InitialCost)
	}
	if res.ImprovementPercent() < 20 {
		t.Fatalf("expected substantial improvement, got %.1f%%", res.ImprovementPercent())
	}
	if res.OptimizerCalls == 0 || res.ConfigsExplored == 0 {
		t.Fatal("counters not populated")
	}
}

func TestMaxIndexesRespected(t *testing.T) {
	cat := testCatalog()
	o := cost.NewOptimizer(cat)
	w := testWorkload(t, cat)
	opts := DefaultOptions()
	opts.MaxIndexes = 2
	res := New(o, opts).Tune(w)
	if res.Config.Len() > 2 {
		t.Fatalf("config size %d exceeds limit", res.Config.Len())
	}
}

func TestStorageBudgetRespected(t *testing.T) {
	cat := testCatalog()
	o := cost.NewOptimizer(cat)
	w := testWorkload(t, cat)
	budget := int64(100 << 20) // 100 MiB: tight for 6M-row tables
	opts := DefaultOptions()
	opts.StorageBudget = budget
	res := New(o, opts).Tune(w)
	if got := res.Config.SizeBytes(cat); got > budget {
		t.Fatalf("config size %d exceeds budget %d", got, budget)
	}
	// A looser budget should never do worse.
	opts2 := DefaultOptions()
	opts2.StorageBudget = budget * 10
	res2 := New(o, opts2).Tune(w)
	if res2.FinalCost > res.FinalCost+1e-6 {
		t.Fatalf("bigger budget should not hurt: %f > %f", res2.FinalCost, res.FinalCost)
	}
}

func TestWeightsSteerTuning(t *testing.T) {
	cat := testCatalog()
	o := cost.NewOptimizer(cat)
	w, err := workload.New(cat, []string{
		"SELECT l_extendedprice FROM lineitem WHERE l_orderkey = 42",
		"SELECT o_totalprice FROM orders WHERE o_custkey = 99",
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxIndexes = 1

	// Heavily weight the second query: the single index must target orders.
	w.Queries[1].Weight = 10000
	res := New(o, opts).Tune(w)
	if res.Config.Len() != 1 {
		t.Fatalf("config = %v", res.Config.Indexes())
	}
	if got := res.Config.Indexes()[0].Table; !strings.EqualFold(got, "orders") {
		t.Fatalf("weighted tuning picked %s, want orders", got)
	}
}

func TestMergedCandidates(t *testing.T) {
	a := New(cost.NewOptimizer(testCatalog()), DefaultOptions())
	in := []scored{
		{ix: index.New("lineitem", "l_suppkey").WithIncludes("l_extendedprice"), benefit: 10},
		{ix: index.New("lineitem", "l_suppkey", "l_shipdate"), benefit: 8},
	}
	out := a.addMerged(in)
	if len(out) <= len(in) {
		t.Fatal("merge produced nothing")
	}
	var found bool
	for _, s := range out {
		if s.ix.HasKeyPrefix([]string{"l_suppkey", "l_shipdate"}) && s.ix.Covers([]string{"l_extendedprice"}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected merged covering index, got %+v", out)
	}
}

func TestMergeIndexLimits(t *testing.T) {
	A := index.New("t", "a", "b", "c")
	B := index.New("t", "a", "d")
	if mergeIndexes(A, B, 3, 8) != nil {
		t.Fatal("merge should respect key cap")
	}
	if m := mergeIndexes(A, B, 4, 8); m == nil || len(m.Keys) != 4 {
		t.Fatalf("merge = %v", m)
	}
}

func TestDexterModeSimplerAndWeaker(t *testing.T) {
	cat := testCatalog()
	o := cost.NewOptimizer(cat)
	w := testWorkload(t, cat)

	dta := New(o, DefaultOptions()).Tune(w)
	dex := New(o, DexterOptions()).Tune(w)
	if dex.ImprovementPercent() > dta.ImprovementPercent()+1e-6 {
		t.Fatalf("DEXTER should not beat DTA: %.1f%% > %.1f%%",
			dex.ImprovementPercent(), dta.ImprovementPercent())
	}
	for _, ix := range dex.Config.Indexes() {
		if len(ix.Includes) > 0 {
			t.Fatalf("DEXTER mode must not emit covering indexes: %v", ix)
		}
		if len(ix.Keys) > 2 {
			t.Fatalf("DEXTER mode key cap exceeded: %v", ix)
		}
	}
}

func TestEvaluateImprovement(t *testing.T) {
	cat := testCatalog()
	o := cost.NewOptimizer(cat)
	w := testWorkload(t, cat)
	res := New(o, DefaultOptions()).Tune(w)
	pct, base, final := EvaluateImprovement(o, w, res.Config)
	if pct <= 0 || base <= final {
		t.Fatalf("pct=%f base=%f final=%f", pct, base, final)
	}
	zero, _, _ := EvaluateImprovement(o, w, index.NewConfiguration())
	if zero != 0 {
		t.Fatalf("empty config improvement = %f", zero)
	}
}

func TestCompressedTuningTransfersToFullWorkload(t *testing.T) {
	// The paper's core premise: tuning a well-chosen subset yields indexes
	// that improve the full workload.
	cat := testCatalog()
	o := cost.NewOptimizer(cat)
	w := testWorkload(t, cat)
	o.FillCosts(w)

	sub := w.WeightedSubset([]int{0, 2}, []float64{1, 1})
	res := New(o, DefaultOptions()).Tune(sub)
	pct, _, _ := EvaluateImprovement(o, w, res.Config)
	if pct <= 0 {
		t.Fatalf("compressed tuning gave no improvement on full workload: %f", pct)
	}
}

func TestTimeBudgetAnytime(t *testing.T) {
	cat := testCatalog()
	o := cost.NewOptimizer(cat)
	w := testWorkload(t, cat)

	// A zero-ish budget still returns a valid (possibly empty) result fast.
	opts := DefaultOptions()
	opts.TimeBudget = time.Nanosecond
	res := New(o, opts).Tune(w)
	if res.Config == nil {
		t.Fatal("anytime tuning must return a configuration")
	}
	if res.FinalCost > res.InitialCost+1e-9 {
		t.Fatal("anytime tuning must not regress")
	}

	// A generous budget matches unbudgeted tuning.
	opts.TimeBudget = time.Minute
	budgeted := New(o, opts).Tune(w)
	free := New(o, DefaultOptions()).Tune(w)
	if budgeted.Config.Len() != free.Config.Len() {
		t.Fatalf("generous budget should match unbudgeted: %d vs %d",
			budgeted.Config.Len(), free.Config.Len())
	}
}
