package advisor

import (
	"context"

	"isum/internal/index"
	"isum/internal/parallel"
	"isum/internal/shard"
	"isum/internal/workload"
)

// workloadCostCtx computes the weighted workload cost, routing through
// the sharded path when Options.Shards > 1: queries are partitioned by
// the stable template hash (the same partition compression uses), each
// shard's weighted sum is reduced serially in ascending query order on
// one worker, and the per-shard sums are folded in fixed shard order.
// The fold order is deterministic at any parallelism, but the grouping
// changes the floating-point association, so sharded totals can differ
// from the unsharded path in the last ulps — which is why 0/1 keeps the
// optimizer's single-partition reduction bit-exact.
func (a *Advisor) workloadCostCtx(ctx context.Context, w *workload.Workload, cfg *index.Configuration) (float64, error) {
	if a.opts.Shards <= 1 {
		return a.o.WorkloadCostCtx(ctx, w, cfg, a.opts.Parallelism)
	}
	parts := shard.Partition(len(w.Queries), a.opts.Shards, func(i int) string {
		return w.Queries[i].TemplateID
	})
	type sc struct {
		v   float64
		err error
	}
	sums, err := parallel.Map(ctx, parallel.Workers(a.opts.Parallelism), len(parts), func(s int) sc {
		var total float64
		for _, i := range parts[s] {
			q := w.Queries[i]
			wt := q.Weight
			if wt <= 0 {
				wt = 1
			}
			c, err := a.o.CostContext(ctx, q, cfg)
			if err != nil {
				return sc{err: err}
			}
			total += wt * c
		}
		return sc{v: total}
	})
	if err != nil {
		return 0, err
	}
	var total float64
	for _, r := range sums {
		if r.err != nil {
			return 0, r.err
		}
		total += r.v
	}
	return total, nil
}
