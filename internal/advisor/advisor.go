// Package advisor implements index advisors over the what-if optimizer:
// a DTA-style advisor following the candidate-generation / candidate-
// selection / configuration-enumeration architecture of Fig. 1 [14], with
// index merging [16], index-count and storage-budget constraints, and
// weighted workloads; and a deliberately simpler DEXTER-style advisor [2]
// used to assess generalisation (Section 8.3).
package advisor

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"isum/internal/cost"
	"isum/internal/index"
	"isum/internal/parallel"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

// Mode selects the advisor flavour.
type Mode int

const (
	// DTA is the full advisor: multi-column candidates, covering indexes,
	// merging, greedy enumeration against the whole workload.
	DTA Mode = iota
	// Dexter is the simplified advisor: single/two-column candidates from
	// filters and joins only, per-query selection with a minimum-improvement
	// threshold, no merging.
	Dexter
)

// Options configure a tuning run.
type Options struct {
	// Mode selects DTA- or DEXTER-style behaviour.
	Mode Mode
	// MaxIndexes is the configuration-size constraint m (0 = unlimited).
	MaxIndexes int
	// StorageBudget bounds the total index size in bytes (0 = unlimited).
	// The paper's Fig. 10 expresses it as a multiple of the database size.
	StorageBudget int64
	// MaxKeyColumns caps index key width (default 3).
	MaxKeyColumns int
	// MaxIncludeColumns caps INCLUDE width for covering variants (default 8).
	MaxIncludeColumns int
	// EnableIncludes generates covering variants (default true for DTA).
	EnableIncludes bool
	// EnableMerging adds merged candidates (default true for DTA).
	EnableMerging bool
	// MinImprovement is the per-query fractional improvement a candidate
	// must achieve during candidate selection (DEXTER exposes this; the
	// paper sets it to 5%).
	MinImprovement float64
	// CandidatesPerQuery caps how many winning candidates each query
	// contributes (default 8).
	CandidatesPerQuery int
	// TimeBudget makes tuning anytime (DTA's -A mode [12], discussed in
	// Sections 1 and 10): candidate selection processes queries until the
	// budget is exhausted, and enumeration stops adding indexes past it.
	// Zero means no budget. The result is always a valid (possibly
	// truncated) recommendation.
	TimeBudget time.Duration
	// Parallelism bounds the worker goroutines used for per-query what-if
	// calls during candidate selection, enumeration probing, and workload
	// costing. 0 uses GOMAXPROCS; 1 forces the serial reference path. The
	// recommended configuration is identical at any setting: per-query
	// results are merged and weighted sums reduced in input order (see
	// DESIGN.md, "Concurrency model").
	Parallelism int
	// Shards, when > 1, partitions workload costing by the stable template
	// hash (shard.Partition) and fans the shards out across the
	// Parallelism workers, folding per-shard sums in fixed shard order.
	// Deterministic at any parallelism, but a different floating-point
	// association than the single-partition reduction — recommendations
	// may differ in the last ulps from the 0/1 path, which stays
	// bit-exact with previous releases.
	Shards int
	// Telemetry receives the advisor's metrics and phase spans (candidate
	// selection, merging, per-round enumeration — see DESIGN.md §8). nil,
	// the default, disables instrumentation; recommendations are identical
	// either way. Pass the optimizer's registry (or construct the
	// optimizer with NewOptimizerWithTelemetry on a shared one) to see
	// what-if call deltas attributed to each tuning phase.
	Telemetry *telemetry.Registry
	// Elide enables what-if call elision (DESIGN.md §16): candidate
	// selection and enumeration consult the optimizer's memoized atomic
	// costs and derived lower/upper cost bounds to skip what-if calls
	// whose outcome is already decided — memo-exact substitutions, queries
	// whose lower bound meets their current cost, and whole candidates
	// whose optimistic gain bound cannot beat an earlier candidate's
	// pessimistic gain. Elision is bitwise-invisible: the chosen
	// configuration, Initial/FinalCost, ConfigsExplored, and report output
	// are identical with it on or off (pinned by
	// TestElisionDoesNotChangeOutput); only OptimizerCalls shrinks.
	// DefaultOptions/DexterOptions enable it; the zero value is the
	// reference path. Requires the optimizer's elision layer
	// (cost.Optimizer.SetElision, on by default) — disabled there, this
	// flag is a no-op.
	Elide bool
	// Progress, when non-nil, receives streaming progress events while
	// tuning runs (DESIGN.md §13): per candidate-selection stride
	// ("advisor/candidates", emitted from worker goroutines — the
	// function must be safe for concurrent use) and per enumeration
	// round ("advisor/enumerate", with the configuration size and the
	// cumulative weighted gain). Observational only: recommendations
	// are identical with or without a sink, and nil costs a pointer
	// check per emission site.
	Progress telemetry.ProgressFunc
}

// DefaultOptions returns the standard DTA-style configuration.
func DefaultOptions() Options {
	return Options{
		Mode:               DTA,
		MaxKeyColumns:      3,
		MaxIncludeColumns:  8,
		EnableIncludes:     true,
		EnableMerging:      true,
		CandidatesPerQuery: 8,
		Elide:              true,
	}
}

// DexterOptions returns the DEXTER-style configuration with the paper's 5%
// minimum-improvement setting.
func DexterOptions() Options {
	return Options{
		Mode:               Dexter,
		MaxKeyColumns:      2,
		EnableIncludes:     false,
		EnableMerging:      false,
		MinImprovement:     0.05,
		CandidatesPerQuery: 4,
		Elide:              true,
	}
}

// Result reports a tuning run.
type Result struct {
	Config          *index.Configuration
	InitialCost     float64 // weighted workload cost before tuning
	FinalCost       float64 // weighted workload cost with Config
	OptimizerCalls  int64
	ConfigsExplored int64
	Elapsed         time.Duration

	// Partial marks an anytime result: the TimeBudget (or the caller's
	// context) expired mid-run and Config holds the best configuration
	// found so far — every index in it was a completed greedy choice, and
	// Initial/FinalCost are real workload costs. False means the run
	// finished.
	Partial bool
	// Rounds is the number of enumeration rounds that completed with an
	// index added to the configuration.
	Rounds int
}

// ImprovementPercent is the tuner-reported improvement on its input.
func (r *Result) ImprovementPercent() float64 {
	if r.InitialCost <= 0 {
		return 0
	}
	return (r.InitialCost - r.FinalCost) / r.InitialCost * 100
}

// Advisor tunes workloads.
type Advisor struct {
	o    *cost.Optimizer
	opts Options
}

// New returns an advisor over the optimizer. Zero-valued option fields are
// defaulted.
func New(o *cost.Optimizer, opts Options) *Advisor {
	if opts.MaxKeyColumns == 0 {
		opts.MaxKeyColumns = 3
	}
	if opts.MaxIncludeColumns == 0 {
		opts.MaxIncludeColumns = 8
	}
	if opts.CandidatesPerQuery == 0 {
		opts.CandidatesPerQuery = 8
	}
	return &Advisor{o: o, opts: opts}
}

// Tune runs the advisor on the workload and returns the recommended
// configuration. Query weights are honoured: the enumeration maximises the
// weighted improvement, which is how a compressed workload steers tuning.
func (a *Advisor) Tune(w *workload.Workload) *Result {
	res, err := a.TuneContext(context.Background(), w)
	if err != nil {
		panic(err)
	}
	return res
}

// TuneContext is Tune with the anytime contract (DESIGN.md §9): when ctx
// is cancelled or its deadline expires — Options.TimeBudget is folded into
// ctx as a deadline — candidate selection keeps the queries already
// processed and enumeration stops at its next round boundary, returning
// the configuration built so far as a valid Result with Partial set. The
// Initial/FinalCost of a Partial result are computed on a detached
// context, so they are always real workload costs. The error is reserved
// for real failures (a contained worker panic, or an injected what-if
// failure that survived the retry policy); cancellation is not an error.
func (a *Advisor) TuneContext(ctx context.Context, w *workload.Workload) (*Result, error) {
	start := time.Now() //lint:allow determinism Result.Elapsed timing only; recommendations never read the clock
	reg := a.opts.Telemetry
	root := reg.Start("advisor/tune")
	defer root.End()
	if reg != nil {
		root.SetAttr("queries", len(w.Queries))
		if a.opts.Mode == Dexter {
			root.SetAttr("mode", "dexter")
		} else {
			root.SetAttr("mode", "dta")
		}
	}

	if a.opts.TimeBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, start.Add(a.opts.TimeBudget))
		defer cancel()
	}
	callsBefore := a.o.Calls()
	res := &Result{}
	initial, err := a.costDetachedOnCancel(ctx, res, w, nil)
	if err != nil {
		return nil, err
	}
	res.InitialCost = initial

	sc := reg.Start("advisor/candidates")
	candidates, err := a.selectCandidates(ctx, w, res)
	sc.SetAttr("pooled", len(candidates))
	sc.End()
	if err != nil {
		return nil, err
	}
	if a.opts.EnableMerging {
		sm := reg.Start("advisor/merge")
		candidates = a.addMerged(candidates)
		sm.SetAttr("with-merged", len(candidates))
		sm.End()
	}
	se := reg.Start("advisor/enumerate")
	cfg, err := a.enumerate(ctx, w, candidates, res)
	if err != nil {
		se.End()
		return nil, err
	}
	se.SetAttr("indexes", cfg.Len())
	se.End()

	res.Config = cfg
	final, err := a.costDetachedOnCancel(ctx, res, w, cfg)
	if err != nil {
		return nil, err
	}
	res.FinalCost = final
	res.OptimizerCalls = a.o.Calls() - callsBefore
	res.Elapsed = time.Since(start)
	return res, nil
}

// costDetachedOnCancel computes the weighted workload cost under ctx;
// when ctx is (or becomes) cancelled it marks res Partial and recomputes
// on a detached context, so anytime results always carry real costs.
func (a *Advisor) costDetachedOnCancel(ctx context.Context, res *Result, w *workload.Workload, cfg *index.Configuration) (float64, error) {
	if res.Partial || ctx.Err() != nil {
		res.Partial = true
		ctx = context.Background() //lint:allow ctx deliberate detach: recost the partial result after cancellation (DESIGN.md §9)
	}
	c, err := a.workloadCostCtx(ctx, w, cfg)
	if err == nil {
		return c, nil
	}
	if !isCancel(err) {
		return 0, err
	}
	res.Partial = true
	//lint:allow ctx deliberate detach: recost the partial result after cancellation (DESIGN.md §9)
	return a.workloadCostCtx(context.Background(), w, cfg)
}

// isCancel reports whether err stems from context cancellation or deadline
// expiry — the anytime outcomes, as opposed to real failures.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// scored pairs a candidate index with its standalone benefit.
type scored struct {
	ix      index.Index
	benefit float64
}

// queryCandidates is one query's contribution to candidate selection: its
// winning candidates, how many configurations it probed, and the first
// real what-if failure it hit (nil otherwise).
type queryCandidates struct {
	local    []scored
	explored int64
	err      error
}

// selectCandidates runs per-query candidate selection: each query's
// syntactic candidates are what-if costed in isolation and the winners
// (positive improvement above the threshold) are pooled.
//
// Queries fan out across Options.Parallelism workers; per-query results
// are merged serially in input order, so the pooled benefits (ordered
// float sums) and the final ranking match the serial path exactly. When
// ctx is cancelled (the TimeBudget deadline), workers stop picking up
// queries and a query interrupted mid-probe is dropped whole, so the
// anytime pool holds only fully-processed queries and res is marked
// Partial. A real what-if failure (retries exhausted) or a contained
// panic aborts selection with the error.
//
// With Options.Elide on, the per-query base cost is served from the
// optimizer's atomic memo (populated by the initial workload costing),
// and a candidate is dropped without costing when the query's structural
// floor on the candidate's table proves even a perfect index fails the
// improvement threshold: the true gain is at most base − floor, so a
// pruned candidate is exactly one the reference path would drop after
// costing. Pruned candidates still count as probed/explored.
func (a *Advisor) selectCandidates(ctx context.Context, w *workload.Workload, res *Result) ([]scored, error) {
	// probed is bumped from worker closures — counters are atomics, so
	// this is the one advisor metric safely updated off the span path.
	probed := a.opts.Telemetry.Counter("advisor/candidates/probed")
	progress := a.opts.Progress
	elide := a.opts.Elide && a.o.ElisionEnabled()
	var processed atomic.Int64 // progress counter; workers emit, so Progress must be concurrency-safe
	perQuery, mapErr := parallel.Map(ctx, parallel.Workers(a.opts.Parallelism), len(w.Queries),
		func(i int) *queryCandidates {
			if progress != nil {
				defer func() {
					progress(telemetry.ProgressEvent{
						Phase: "advisor/candidates",
						Done:  int(processed.Add(1)), Total: len(w.Queries),
					})
				}()
			}
			q := w.Queries[i]
			var base float64
			baseKnown := false
			if elide {
				if b, ok := a.o.QueryBounds(q).BaseCost(); ok {
					base, baseKnown = b, true
					a.o.CountElidedCalls(1)
				}
			}
			if !baseKnown {
				var err error
				base, err = a.o.CostContext(ctx, q, nil)
				if err != nil {
					if isCancel(err) {
						return nil // anytime mode: keep what we have
					}
					return &queryCandidates{err: err}
				}
			}
			if base <= 0 {
				return nil
			}
			wt := q.Weight
			if wt <= 0 {
				wt = 1
			}
			qc := &queryCandidates{}
			for _, ix := range a.syntacticCandidatesForMode(q) {
				if elide {
					capGain := base - a.o.FloorCost(q, ix.Table)
					if capGain <= 0 || capGain < a.opts.MinImprovement*base {
						qc.explored++
						probed.Inc()
						a.o.CountBoundPrune()
						a.o.CountElidedCalls(1)
						continue
					}
				}
				c, err := a.o.CostContext(ctx, q, index.NewConfiguration(ix))
				if err != nil {
					if isCancel(err) {
						return nil // drop the half-probed query
					}
					return &queryCandidates{err: err}
				}
				qc.explored++
				probed.Inc()
				gain := base - c
				if gain <= 0 || gain < a.opts.MinImprovement*base {
					continue
				}
				qc.local = append(qc.local, scored{ix: ix, benefit: wt * gain})
			}
			// Tie-break by index ID: syntactic generation follows map
			// iteration order, so a benefit-only sort would truncate
			// equal-gain candidates nondeterministically.
			sort.Slice(qc.local, func(i, j int) bool {
				if qc.local[i].benefit != qc.local[j].benefit {
					return qc.local[i].benefit > qc.local[j].benefit
				}
				return qc.local[i].ix.ID() < qc.local[j].ix.ID()
			})
			if len(qc.local) > a.opts.CandidatesPerQuery {
				qc.local = qc.local[:a.opts.CandidatesPerQuery]
			}
			return qc
		})
	if mapErr != nil {
		if !isCancel(mapErr) {
			return nil, mapErr
		}
		res.Partial = true
	}

	pool := map[string]*scored{}
	for _, qc := range perQuery {
		if qc == nil {
			continue
		}
		if qc.err != nil {
			return nil, qc.err
		}
		res.ConfigsExplored += qc.explored
		for _, s := range qc.local {
			id := s.ix.ID()
			if cur, ok := pool[id]; ok {
				cur.benefit += s.benefit
			} else {
				sc := s
				pool[id] = &sc
			}
		}
	}
	out := make([]scored, 0, len(pool))
	for _, s := range pool {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].benefit != out[j].benefit {
			return out[i].benefit > out[j].benefit
		}
		return out[i].ix.ID() < out[j].ix.ID()
	})
	return out, nil
}

func (a *Advisor) syntacticCandidatesForMode(q *workload.Query) []index.Index {
	if a.opts.Mode == Dexter {
		return a.dexterCandidates(q)
	}
	return a.syntacticCandidates(q)
}

// addMerged extends the pool with pairwise merges of same-table candidates
// that share a leading key: keys of the first followed by the unseen keys of
// the second, includes unioned — the index-merging optimisation [16].
func (a *Advisor) addMerged(cands []scored) []scored {
	seen := map[string]bool{}
	for _, c := range cands {
		seen[c.ix.ID()] = true
	}
	byTable := map[string][]scored{}
	for _, c := range cands {
		byTable[c.ix.Table] = append(byTable[c.ix.Table], c)
	}
	tables := make([]string, 0, len(byTable))
	for t := range byTable {
		tables = append(tables, t)
	}
	// Deterministic merge order: map iteration would append merged
	// candidates in a different order each run, and the enumeration
	// argmax breaks ties by position.
	sort.Strings(tables)
	out := cands
	for _, t := range tables {
		list := byTable[t]
		for i := 0; i < len(list); i++ {
			for j := 0; j < len(list); j++ {
				if i == j {
					continue
				}
				A, B := list[i].ix, list[j].ix
				if A.LeadingKey() == "" || !equalFold(A.LeadingKey(), B.LeadingKey()) {
					continue
				}
				merged := mergeIndexes(A, B, a.opts.MaxKeyColumns, a.opts.MaxIncludeColumns)
				if merged == nil {
					continue
				}
				id := merged.ID()
				if !seen[id] {
					seen[id] = true
					out = append(out, scored{ix: *merged, benefit: (list[i].benefit + list[j].benefit) / 2})
				}
			}
		}
	}
	return out
}

// mergeIndexes merges B into A; returns nil when the result exceeds limits.
func mergeIndexes(A, B index.Index, maxKeys, maxIncludes int) *index.Index {
	keys := append([]string{}, A.Keys...)
	have := map[string]bool{}
	for _, k := range keys {
		have[lower(k)] = true
	}
	for _, k := range B.Keys {
		if !have[lower(k)] {
			keys = append(keys, k)
			have[lower(k)] = true
		}
	}
	if len(keys) > maxKeys {
		return nil
	}
	var includes []string
	for _, c := range append(append([]string{}, A.Includes...), B.Includes...) {
		if !have[lower(c)] {
			have[lower(c)] = true
			includes = append(includes, c)
		}
	}
	if len(includes) > maxIncludes {
		return nil
	}
	m := index.New(A.Table, keys...).WithIncludes(includes...)
	return &m
}

// enumerate greedily builds the configuration: at each step the candidate
// with the largest weighted workload improvement is added, until the
// count/storage constraints bind, no candidate improves the workload, or
// ctx is cancelled (the anytime path: res is marked Partial and the
// configuration built so far is returned — a round interrupted mid-probe
// is discarded whole, so every index in the result was a completed greedy
// choice). A real what-if failure or contained panic returns the error.
//
// Probing a candidate only re-costs the queries that reference the
// candidate's table — indexes cannot change other queries' plans — which is
// the same table-pruning commercial advisors use to bound what-if calls.
//
// With Options.Elide on, three further elisions apply (DESIGN.md §16),
// none of which can change the chosen index, the per-round cost updates,
// or ConfigsExplored:
//
//   - memo-exact: when the current configuration has no index on a
//     query's tables, the trial configuration's relevant set is exactly
//     the candidate, and the memoized atomic cost is bitwise the value a
//     real call would return;
//   - lower-bound skip: a query whose union lower bound already meets its
//     current cost cannot contribute gain, so its call is skipped;
//   - candidate pruning: a serial pre-pass in candidate order compares
//     each candidate's optimistic gain cap (Σ current − lower over its
//     table's queries) against the best pessimistic gain (via upper
//     bounds) of an earlier unpruned candidate. cap ≤ that floor proves
//     the earlier candidate's true gain is at least this one's, and the
//     argmax breaks ties toward the earlier position, so the pruned
//     candidate could never be chosen. Pruned probes report zero gain and
//     still count as explored, exactly as their costed probes would.
func (a *Advisor) enumerate(ctx context.Context, w *workload.Workload, cands []scored, res *Result) (*index.Configuration, error) {
	cfg := index.NewConfiguration()
	var used int64
	remaining := append([]scored{}, cands...)
	workers := parallel.Workers(a.opts.Parallelism)
	elide := a.opts.Elide && a.o.ElisionEnabled()

	// Per-query weights, shared by the probe loop and the elision bounds.
	wts := make([]float64, len(w.Queries))
	for i, q := range w.Queries {
		wts[i] = q.Weight
		if wts[i] <= 0 {
			wts[i] = 1
		}
	}

	// Current weighted per-query costs and a table → query-index map.
	type qcost struct {
		v   float64
		err error
	}
	baseCosts, mapErr := parallel.Map(ctx, workers, len(w.Queries), func(i int) qcost {
		q := w.Queries[i]
		wt := wts[i]
		if elide {
			if b, ok := a.o.QueryBounds(q).BaseCost(); ok {
				a.o.CountElidedCalls(1)
				return qcost{wt * b, nil}
			}
		}
		c, err := a.o.CostContext(ctx, q, cfg)
		return qcost{wt * c, err}
	})
	if mapErr != nil {
		if isCancel(mapErr) {
			res.Partial = true
			return cfg, nil
		}
		return nil, mapErr
	}
	curCost := make([]float64, len(baseCosts))
	for i, r := range baseCosts {
		if r.err != nil {
			if isCancel(r.err) {
				res.Partial = true
				return cfg, nil
			}
			return nil, r.err
		}
		curCost[i] = r.v
	}
	queriesByTable := map[string][]int{}
	for i, q := range w.Queries {
		if q.Info != nil {
			for _, t := range q.Info.Tables {
				queriesByTable[t] = append(queriesByTable[t], i)
			}
		}
	}

	// Elision set-up: one what-if call per query against the union of
	// every candidate primes a lower bound valid for every configuration
	// this enumeration can probe (all are subsets of the union); interned
	// candidate IDs and per-query bound handles keep the in-round lookups
	// allocation-free.
	var (
		bounds  []*cost.QueryBounds
		lbW     []float64 // weighted lower bound per query; −Inf when unknown
		candIDs []int32   // interned identity per remaining candidate
		cfgRel  []int     // per query: # configuration indexes on its tables
	)
	// Cross-round probe memo. A probe's cost depends only on the trial
	// configuration's indexes on the query's tables (the planner consults
	// ForTable per block — the same relevance invariant that lets the
	// probe loop re-cost only queriesByTable[cand.Table]), so the value
	// for (candidate, query) holds verbatim across rounds until a chosen
	// index lands on one of the query's tables. qVer tracks that: bumped
	// per query when its relevant set changes, it invalidates stale
	// entries without a sweep. Each candidate's map is touched only by
	// its own probe goroutine within a round, and rounds are separated by
	// the parallel.Map join, so the memo needs no locking.
	type probeMemo struct {
		ver int
		c   float64 // weighted trial cost, exactly as the real call computed it
	}
	var (
		candMemo []map[int]probeMemo // per remaining candidate: query → memoized probe
		qVer     []int               // per query: relevant-set version
		relQs    [][]int             // per remaining candidate: structurally relevant queries
	)
	if elide {
		union := index.NewConfiguration()
		for _, c := range remaining {
			union.Add(c.ix)
		}
		primed, mapErr := parallel.Map(ctx, workers, len(w.Queries), func(i int) error {
			return a.o.PrimeUnionBound(ctx, w.Queries[i], union)
		})
		if mapErr != nil {
			if isCancel(mapErr) {
				res.Partial = true
				return cfg, nil
			}
			return nil, mapErr
		}
		for _, err := range primed {
			if err != nil {
				if isCancel(err) {
					res.Partial = true
					return cfg, nil
				}
				return nil, err
			}
		}
		bounds = make([]*cost.QueryBounds, len(w.Queries))
		lbW = make([]float64, len(w.Queries))
		cfgRel = make([]int, len(w.Queries))
		for i, q := range w.Queries {
			bounds[i] = a.o.QueryBounds(q)
			if lb, ok := bounds[i].Lower(); ok {
				lbW[i] = wts[i] * lb
			} else {
				lbW[i] = math.Inf(-1)
			}
		}
		candIDs = make([]int32, len(remaining))
		for i := range remaining {
			candIDs[i] = a.o.InternIndexID(remaining[i].ix.ID())
		}
		candMemo = make([]map[int]probeMemo, len(remaining))
		qVer = make([]int, len(w.Queries))
		// Structural relevance: a candidate whose index the planner can
		// never consult for a query (cost.IndexRelevant) leaves that
		// query's cost bitwise unchanged, so the probe loop walks only the
		// relevant queries and the skipped pairs count as elided calls.
		relQs = make([][]int, len(remaining))
		for i := range remaining {
			all := queriesByTable[lower(remaining[i].ix.Table)]
			rel := make([]int, 0, len(all))
			for _, qi := range all {
				if cost.IndexRelevant(w.Queries[qi], remaining[i].ix) {
					rel = append(rel, qi)
				}
			}
			relQs[i] = rel
		}
	}

	// probe is one candidate's evaluation against the current
	// configuration; skipped candidates (over the storage budget) stay nil
	// in newCosts and count no exploration.
	type probe struct {
		gain     float64
		newCosts map[int]float64
		err      error
	}
	reg := a.opts.Telemetry
	roundsCtr := reg.Counter("advisor/enumerate/rounds")
	var gainSum float64
	for {
		if a.opts.MaxIndexes > 0 && cfg.Len() >= a.opts.MaxIndexes {
			break
		}
		if ctx.Err() != nil {
			res.Partial = true
			break // anytime mode: return the configuration built so far
		}
		rsp := reg.Start("advisor/enumerate/round")
		roundsCtr.Inc()
		// Bound-based candidate pruning: a serial scan in candidate order.
		// bStar is the best pessimistic gain of an earlier unpruned,
		// unskipped candidate — a gain some earlier probe is guaranteed to
		// reach — and capByTable caps any candidate-on-t's gain from
		// above. cap ≤ bStar means this candidate cannot out-gain that
		// earlier witness, and the argmax prefers the earlier position on
		// ties, so its probe is elided wholesale.
		var pruned []bool
		if elide {
			pruned = make([]bool, len(remaining))
			bStar := 0.0
			for i := range remaining {
				cand := remaining[i]
				if a.opts.StorageBudget > 0 {
					sz := cand.ix.SizeBytes(a.o.Catalog())
					if used+sz > a.opts.StorageBudget {
						continue // skipped, not probed: no witness, no prune
					}
				}
				// The candidate's gain accrues only on its structurally
				// relevant queries (irrelevant ones are bitwise
				// unchanged), so the optimistic cap sums over those.
				var gcap float64
				for _, qi := range relQs[i] {
					if d := curCost[qi] - lbW[qi]; d > 0 {
						gcap += d
					}
				}
				if gcap <= bStar {
					pruned[i] = true
					a.o.CountBoundPrune()
					a.o.CountElidedCalls(int64(len(queriesByTable[lower(cand.ix.Table)])))
					continue
				}
				var pess float64
				for _, qi := range relQs[i] {
					if ub, ok := bounds[qi].UpperWith(candIDs[i]); ok {
						if d := curCost[qi] - wts[qi]*ub; d > 0 {
							pess += d
						}
					}
				}
				if pess > bStar {
					bStar = pess
				}
			}
		}
		// Probe every remaining candidate in parallel: each probe re-costs
		// only the queries on the candidate's table against a private
		// cfg+candidate copy, reading cfg/curCost/queriesByTable without
		// mutation. The argmax below reduces serially in candidate order,
		// so the chosen index matches the serial scan exactly.
		probes, mapErr := parallel.Map(ctx, workers, len(remaining), func(i int) probe {
			cand := remaining[i]
			if a.opts.StorageBudget > 0 {
				sz := cand.ix.SizeBytes(a.o.Catalog())
				if used+sz > a.opts.StorageBudget {
					return probe{}
				}
			}
			p := probe{newCosts: map[int]float64{}}
			if pruned != nil && pruned[i] {
				// Elided probe: provably not the argmax; zero gain keeps it
				// out of contention while still counting as explored.
				return p
			}
			trial := cfg.With(cand.ix)
			qis := queriesByTable[lower(cand.ix.Table)]
			if elide {
				// Structurally irrelevant pairs cost bitwise the current
				// value: no gain, no call.
				a.o.CountElidedCalls(int64(len(qis) - len(relQs[i])))
				qis = relQs[i]
			}
			for _, qi := range qis {
				q := w.Queries[qi]
				wt := wts[qi]
				if elide {
					if lbW[qi] >= curCost[qi] {
						// The optimistic bound already meets the current
						// cost: this query cannot contribute gain.
						a.o.CountElidedCalls(1)
						continue
					}
					if cfgRel[qi] == 0 {
						if c0, ok := bounds[qi].AtomicCost(candIDs[i]); ok {
							a.o.CountElidedCalls(1)
							c0 *= wt
							if c0 < curCost[qi] {
								p.gain += curCost[qi] - c0
								p.newCosts[qi] = c0
							}
							continue
						}
					}
					if e, ok := candMemo[i][qi]; ok && e.ver == qVer[qi] {
						// Repeat probe: the query's relevant index set is
						// unchanged since this pair was last costed, so the
						// memoized value is the call's value verbatim.
						a.o.CountElidedCalls(1)
						if e.c < curCost[qi] {
							p.gain += curCost[qi] - e.c
							p.newCosts[qi] = e.c
						}
						continue
					}
				}
				c, err := a.o.CostContext(ctx, q, trial)
				if err != nil {
					return probe{err: err}
				}
				c *= wt
				if elide {
					if candMemo[i] == nil {
						candMemo[i] = make(map[int]probeMemo)
					}
					candMemo[i][qi] = probeMemo{ver: qVer[qi], c: c}
				}
				if c < curCost[qi] {
					p.gain += curCost[qi] - c
					p.newCosts[qi] = c
				}
			}
			return p
		})
		if mapErr != nil && !isCancel(mapErr) {
			rsp.End()
			return nil, mapErr
		}
		for _, p := range probes {
			if p.err != nil && !isCancel(p.err) {
				rsp.End()
				return nil, p.err
			}
		}
		if mapErr != nil {
			res.Partial = true
			rsp.SetAttr("outcome", "cancelled")
			rsp.End()
			break // discard the interrupted round's partial probes
		}
		bestIdx := -1
		bestGain := 0.0
		var bestCosts map[int]float64
		for i, p := range probes {
			if p.newCosts == nil {
				continue
			}
			res.ConfigsExplored++
			if p.gain > bestGain+1e-9 {
				bestGain, bestIdx, bestCosts = p.gain, i, p.newCosts
			}
		}
		if bestIdx < 0 {
			rsp.SetAttr("outcome", "no-gain")
			rsp.End()
			break
		}
		chosen := remaining[bestIdx]
		cfg.Add(chosen.ix)
		used += chosen.ix.SizeBytes(a.o.Catalog())
		for qi, c := range bestCosts {
			curCost[qi] = c
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		if elide {
			candIDs = append(candIDs[:bestIdx], candIDs[bestIdx+1:]...)
			candMemo = append(candMemo[:bestIdx], candMemo[bestIdx+1:]...)
			relQs = append(relQs[:bestIdx], relQs[bestIdx+1:]...)
			for _, qi := range queriesByTable[lower(chosen.ix.Table)] {
				cfgRel[qi]++
				qVer[qi]++
			}
		}
		res.Rounds++
		if a.opts.Progress != nil {
			gainSum += bestGain
			a.opts.Progress(telemetry.ProgressEvent{
				Phase: "advisor/enumerate", Round: res.Rounds,
				Done: cfg.Len(), Total: a.opts.MaxIndexes,
				Benefit: gainSum, Shards: a.opts.Shards,
			})
		}
		if reg != nil {
			rsp.SetAttr("chosen", chosen.ix.ID())
			rsp.SetAttr("gain", bestGain)
			rsp.SetAttr("probed", len(probes))
		}
		rsp.End()
	}
	return cfg, nil
}

// dexterCandidates builds the simplified DEXTER candidate set: single
// columns from filters and joins, plus filter+filter pairs.
func (a *Advisor) dexterCandidates(q *workload.Query) []index.Index {
	var out []index.Index
	seen := map[string]bool{}
	emit := func(ix index.Index) {
		if !seen[ix.ID()] {
			seen[ix.ID()] = true
			out = append(out, ix)
		}
	}
	for _, tr := range sortedRoles(rolesForQuery(q)) {
		t, r := tr.table, tr.roles
		eq := colsOf(r.eqFilters)
		rng := colsOf(r.rngFilters)
		for _, c := range eq {
			emit(index.New(t, c))
		}
		for _, c := range rng {
			emit(index.New(t, c))
		}
		for _, j := range r.joins {
			emit(index.New(t, j))
		}
		all := append(append([]string{}, eq...), rng...)
		if len(all) >= 2 && a.opts.MaxKeyColumns >= 2 {
			emit(index.New(t, all[0], all[1]))
		}
	}
	return out
}

// EvaluateImprovement computes the paper's evaluation metric (Section 8):
// the unweighted improvement % on workload w when using cfg, along with the
// before/after costs. Per-query what-if calls fan out across every core.
func EvaluateImprovement(o *cost.Optimizer, w *workload.Workload, cfg *index.Configuration) (pct, base, final float64) {
	return EvaluateImprovementN(o, w, cfg, 0)
}

// EvaluateImprovementN is EvaluateImprovement with an explicit parallelism
// (0 = GOMAXPROCS, 1 = serial). The before/after sums are reduced in input
// order, so the result is bit-identical at any parallelism.
func EvaluateImprovementN(o *cost.Optimizer, w *workload.Workload, cfg *index.Configuration, parallelism int) (pct, base, final float64) {
	pct, base, final, err := EvaluateImprovementContext(context.Background(), o, w, cfg, parallelism)
	if err != nil {
		panic(err)
	}
	return pct, base, final
}

// EvaluateImprovementContext is EvaluateImprovementN with cancellation and
// failure reporting: an interrupted or failed evaluation returns the error
// (there is no meaningful partial improvement metric).
func EvaluateImprovementContext(ctx context.Context, o *cost.Optimizer, w *workload.Workload, cfg *index.Configuration, parallelism int) (pct, base, final float64, err error) {
	type pair struct {
		base, final float64
		err         error
	}
	pairs, err := parallel.Map(ctx, parallel.Workers(parallelism), len(w.Queries), func(i int) pair {
		q := w.Queries[i]
		b, err := o.CostContext(ctx, q, nil)
		if err != nil {
			return pair{err: err}
		}
		f, err := o.CostContext(ctx, q, cfg)
		return pair{base: b, final: f, err: err}
	})
	if err != nil {
		return 0, 0, 0, err
	}
	for _, p := range pairs {
		if p.err != nil {
			return 0, 0, 0, p.err
		}
		base += p.base
		final += p.final
	}
	if base <= 0 {
		return 0, base, final, nil
	}
	return (base - final) / base * 100, base, final, nil
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

func equalFold(a, b string) bool { return lower(a) == lower(b) }
