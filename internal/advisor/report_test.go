package advisor

import (
	"bytes"
	"strings"
	"testing"

	"isum/internal/cost"
)

func TestReportDrillDown(t *testing.T) {
	cat := testCatalog()
	o := cost.NewOptimizer(cat)
	w := testWorkload(t, cat)
	o.FillCosts(w)
	res := New(o, DefaultOptions()).Tune(w)

	rep := Report(o, w, res.Config)
	if len(rep.Queries) != w.Len() {
		t.Fatalf("report rows = %d", len(rep.Queries))
	}
	if rep.ImprovementPct <= 0 {
		t.Fatalf("improvement = %f", rep.ImprovementPct)
	}
	// At least one query must actually use a recommended index.
	used := 0
	for _, qr := range rep.Queries {
		used += len(qr.IndexesUsed)
		if qr.After > qr.Before+1e-9 {
			t.Fatalf("query %d regressed: %f -> %f", qr.ID, qr.Before, qr.After)
		}
	}
	if used == 0 {
		t.Fatal("no query uses any recommended index")
	}
	if len(rep.IndexUsage) == 0 {
		t.Fatal("index usage empty")
	}

	var buf bytes.Buffer
	rep.Write(&buf, 3)
	out := buf.String()
	for _, want := range []string{"workload improvement", "top 3 improved queries", "index usage:", "uses"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainPlan(t *testing.T) {
	cat := testCatalog()
	o := cost.NewOptimizer(cat)
	w := testWorkload(t, cat)
	res := New(o, DefaultOptions()).Tune(w)

	q := w.Queries[0] // selective l_orderkey lookup
	planBare := o.Explain(q, nil)
	if len(planBare.IndexesUsed()) != 0 {
		t.Fatalf("bare plan should use no indexes: %v", planBare.IndexesUsed())
	}
	planTuned := o.Explain(q, res.Config)
	if len(planTuned.IndexesUsed()) == 0 {
		t.Fatalf("tuned plan should use an index:\n%s", planTuned)
	}
	if planTuned.Total > planBare.Total {
		t.Fatal("tuned plan should not cost more")
	}
	s := planTuned.String()
	if !strings.Contains(s, "cost ") || !strings.Contains(s, "lineitem") {
		t.Fatalf("plan string = %q", s)
	}
}
