package advisor

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"isum/internal/cost"
	"isum/internal/faults"
)

// countdownCtx reports cancellation after a fixed number of Err checks —
// deterministic mid-run cancellation without wall-clock timing. Once the
// budget is spent it stays cancelled (monotone, like a real context).
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
	done      chan struct{}
	once      sync.Once
}

func newCountdownCtx(budget int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background(), done: make(chan struct{})}
	c.remaining.Store(budget)
	return c
}

func (c *countdownCtx) expire() { c.once.Do(func() { close(c.done) }) }

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		c.expire()
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} {
	if c.remaining.Load() < 0 {
		c.expire()
	}
	return c.done
}

func serialOptions() Options {
	opts := DefaultOptions()
	opts.Parallelism = 1
	return opts
}

func TestTuneContextAlreadyCancelled(t *testing.T) {
	cat := testCatalog()
	w := testWorkload(t, cat)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := New(cost.NewOptimizer(cat), serialOptions()).TuneContext(ctx, w)
	if err != nil {
		t.Fatalf("cancellation must not be an error: %v", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("want Partial result, got %+v", res)
	}
	if res.Config == nil {
		t.Fatal("partial result must carry a (possibly empty) configuration")
	}
	// Initial/FinalCost are recomputed on a detached context so even a
	// fully cancelled run reports real workload costs.
	if res.InitialCost <= 0 || res.FinalCost <= 0 {
		t.Fatalf("partial costs not recomputed: initial=%v final=%v", res.InitialCost, res.FinalCost)
	}
}

// TestTuneContextAnytime sweeps cancellation budgets across the tuning run:
// every cut must yield a valid best-so-far result, never an error.
func TestTuneContextAnytime(t *testing.T) {
	cat := testCatalog()
	w := testWorkload(t, cat)

	full, err := New(cost.NewOptimizer(cat), serialOptions()).TuneContext(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatal("background tune must not be partial")
	}

	sawMidRun := false
	for budget := int64(0); budget <= 200; budget++ {
		res, err := New(cost.NewOptimizer(cat), serialOptions()).TuneContext(newCountdownCtx(budget), w)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if res == nil || res.Config == nil {
			t.Fatalf("budget %d: missing result or config", budget)
		}
		if res.InitialCost <= 0 {
			t.Fatalf("budget %d: initial cost %v", budget, res.InitialCost)
		}
		if res.FinalCost > res.InitialCost {
			t.Fatalf("budget %d: final cost %v above initial %v — best-so-far config made things worse", budget, res.FinalCost, res.InitialCost)
		}
		if !res.Partial {
			if res.Config.Len() != full.Config.Len() {
				t.Fatalf("budget %d: non-partial run found %d indexes, full run %d", budget, res.Config.Len(), full.Config.Len())
			}
		} else if res.Config.Len() > 0 {
			sawMidRun = true
		}
	}
	if !sawMidRun {
		t.Fatal("no budget produced a partial run with a non-empty configuration")
	}
}

func TestTuneContextEquivalence(t *testing.T) {
	cat := testCatalog()
	w := testWorkload(t, cat)

	compat := New(cost.NewOptimizer(cat), serialOptions()).Tune(w)
	ctxRes, err := New(cost.NewOptimizer(cat), serialOptions()).TuneContext(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if ctxRes.Partial {
		t.Fatal("background run marked partial")
	}
	if got, want := ctxRes.Config.Fingerprint(), compat.Config.Fingerprint(); got != want {
		t.Fatalf("Tune and TuneContext diverge: %q vs %q", got, want)
	}
	if ctxRes.InitialCost != compat.InitialCost || ctxRes.FinalCost != compat.FinalCost {
		t.Fatalf("costs diverge: (%v, %v) vs (%v, %v)",
			ctxRes.InitialCost, ctxRes.FinalCost, compat.InitialCost, compat.FinalCost)
	}
}

// TestTuneChaosDeterminism: a seeded error-injecting run with enough
// retries must recommend the identical configuration with bit-identical
// costs — transient faults are fully absorbed.
func TestTuneChaosDeterminism(t *testing.T) {
	cat := testCatalog()
	w := testWorkload(t, cat)

	plain, err := New(cost.NewOptimizer(cat), serialOptions()).TuneContext(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}

	o := cost.NewOptimizer(cat)
	o.SetInjector(faults.NewInjector(faults.Config{Seed: 11, ErrorRate: 0.3}))
	o.SetRetryPolicy(cost.RetryPolicy{MaxAttempts: 40, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond})
	chaos, err := New(o, serialOptions()).TuneContext(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := chaos.Config.Fingerprint(), plain.Config.Fingerprint(); got != want {
		t.Fatalf("chaos run recommends %q, fault-free run %q", got, want)
	}
	if chaos.InitialCost != plain.InitialCost || chaos.FinalCost != plain.FinalCost {
		t.Fatalf("chaos costs (%v, %v) differ from fault-free (%v, %v)",
			chaos.InitialCost, chaos.FinalCost, plain.InitialCost, plain.FinalCost)
	}
	if retries, _, _ := o.FaultStats(); retries == 0 {
		t.Fatal("chaos run took no retries — injector not consulted?")
	}
}
