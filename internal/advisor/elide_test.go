package advisor

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"isum/internal/benchmarks"
	"isum/internal/catalog"
	"isum/internal/cost"
	"isum/internal/faults"
	"isum/internal/workload"
)

// elideOracleWorkload builds a benchmark workload for the elision oracle.
func elideOracleWorkload(t *testing.T, genName string, n int) (*workload.Workload, *catalog.Catalog) {
	t.Helper()
	gen, err := benchmarks.FromName(genName, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gen.Workload(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return w, gen.Cat
}

// tuneOutput captures everything elision must leave untouched: the
// recommendation, the bitwise costs, the exploration count, and the
// rendered report.
type tuneOutput struct {
	fingerprint    string
	initial, final uint64
	explored       int64
	rounds         int
	optimizerCalls int64
	report         []byte
	elideHits      int64
	elidePrunes    int64
}

func runTune(t *testing.T, w *workload.Workload, cat *catalog.Catalog, opts Options, elide bool) tuneOutput {
	t.Helper()
	o := cost.NewOptimizer(cat)
	o.SetElision(elide)
	opts.Elide = elide
	res, err := New(o, opts).TuneContext(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Report(o, w, res.Config).Write(&buf, 5)
	hits, prunes, _ := o.ElideStats()
	return tuneOutput{
		fingerprint:    res.Config.Fingerprint(),
		initial:        math.Float64bits(res.InitialCost),
		final:          math.Float64bits(res.FinalCost),
		explored:       res.ConfigsExplored,
		rounds:         res.Rounds,
		optimizerCalls: res.OptimizerCalls,
		report:         buf.Bytes(),
		elideHits:      hits,
		elidePrunes:    prunes,
	}
}

// TestElisionDoesNotChangeOutput pins the elision layer's invisibility
// guarantee (DESIGN.md §16): across every generator, both advisor modes,
// and serial/parallel execution, the chosen configuration, the bitwise
// Initial/FinalCost, ConfigsExplored, and the rendered report are
// identical with elision on and off — while the elided runs issue
// strictly fewer what-if calls.
func TestElisionDoesNotChangeOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-generator oracle sweep")
	}
	const n = 48
	var totalHits int64
	for _, genName := range []string{"tpch", "tpcds", "dsb", "realm"} {
		w, cat := elideOracleWorkload(t, genName, n)
		for _, mode := range []struct {
			name string
			opts Options
		}{
			{"dta", DefaultOptions()},
			{"dexter", DexterOptions()},
		} {
			opts := mode.opts
			opts.MaxIndexes = 8
			opts.Parallelism = 1
			ref := runTune(t, w, cat, opts, false)
			for _, par := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%s/parallelism=%d", genName, mode.name, par), func(t *testing.T) {
					opts.Parallelism = par
					got := runTune(t, w, cat, opts, true)
					totalHits += got.elideHits
					if got.fingerprint != ref.fingerprint {
						t.Fatalf("elided run recommends %q, reference %q", got.fingerprint, ref.fingerprint)
					}
					if got.initial != ref.initial || got.final != ref.final {
						t.Fatalf("elided costs (%x, %x) differ from reference (%x, %x)",
							got.initial, got.final, ref.initial, ref.final)
					}
					if got.explored != ref.explored {
						t.Fatalf("elided run explored %d configs, reference %d", got.explored, ref.explored)
					}
					if got.rounds != ref.rounds {
						t.Fatalf("elided run took %d rounds, reference %d", got.rounds, ref.rounds)
					}
					if !bytes.Equal(got.report, ref.report) {
						t.Fatalf("report diverged:\nelided:\n%s\nreference:\n%s", got.report, ref.report)
					}
					if got.optimizerCalls >= ref.optimizerCalls {
						t.Fatalf("elided run issued %d optimizer calls, reference %d — nothing elided",
							got.optimizerCalls, ref.optimizerCalls)
					}
				})
			}
		}
	}
	if totalHits == 0 {
		t.Fatal("no what-if calls elided across the whole sweep")
	}
}

// TestElisionChaosByteIdentity pins the anytime/chaos contract on the
// elided path: a parallel elided tune under deterministic fault injection
// (absorbed by retries, with singleflight coalescing concurrent identical
// plans) recommends the identical configuration with bit-identical costs
// and report as the fault-free elided run.
func TestElisionChaosByteIdentity(t *testing.T) {
	w, cat := elideOracleWorkload(t, "tpch", 40)
	opts := DefaultOptions()
	opts.MaxIndexes = 6
	opts.Parallelism = 4

	run := func(inject bool) (tuneOutput, *cost.Optimizer) {
		o := cost.NewOptimizer(cat)
		if inject {
			o.SetInjector(faults.NewInjector(faults.Config{Seed: 11, ErrorRate: 0.3}))
			o.SetRetryPolicy(cost.RetryPolicy{MaxAttempts: 40, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond})
		}
		res, err := New(o, opts).TuneContext(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		Report(o, w, res.Config).Write(&buf, 5)
		return tuneOutput{
			fingerprint: res.Config.Fingerprint(),
			initial:     math.Float64bits(res.InitialCost),
			final:       math.Float64bits(res.FinalCost),
			explored:    res.ConfigsExplored,
			report:      buf.Bytes(),
		}, o
	}

	plain, _ := run(false)
	chaos, o := run(true)
	if chaos.fingerprint != plain.fingerprint {
		t.Fatalf("chaos run recommends %q, fault-free run %q", chaos.fingerprint, plain.fingerprint)
	}
	if chaos.initial != plain.initial || chaos.final != plain.final {
		t.Fatalf("chaos costs (%x, %x) differ from fault-free (%x, %x)",
			chaos.initial, chaos.final, plain.initial, plain.final)
	}
	if chaos.explored != plain.explored {
		t.Fatalf("chaos run explored %d configs, fault-free %d", chaos.explored, plain.explored)
	}
	if !bytes.Equal(chaos.report, plain.report) {
		t.Fatalf("report diverged:\nchaos:\n%s\nfault-free:\n%s", chaos.report, plain.report)
	}
	if retries, _, _ := o.FaultStats(); retries == 0 {
		t.Fatal("chaos run took no retries — injector not consulted?")
	}
}
