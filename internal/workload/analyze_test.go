package workload

import (
	"math"
	"testing"

	"isum/internal/catalog"
)

// tpchMiniCatalog builds a small TPC-H-flavoured catalog used across the
// workload tests.
func tpchMiniCatalog() *catalog.Catalog {
	cat := catalog.New()

	li := catalog.NewTable("lineitem", 6000000)
	li.AddColumn(&catalog.Column{Name: "l_orderkey", Type: catalog.TypeInt, DistinctCount: 1500000, Min: 1, Max: 6000000})
	li.AddColumn(&catalog.Column{Name: "l_suppkey", Type: catalog.TypeInt, DistinctCount: 10000, Min: 1, Max: 10000})
	li.AddColumn(&catalog.Column{Name: "l_quantity", Type: catalog.TypeDecimal, DistinctCount: 50, Min: 1, Max: 50})
	li.AddColumn(&catalog.Column{Name: "l_extendedprice", Type: catalog.TypeDecimal, DistinctCount: 1000000, Min: 900, Max: 105000})
	li.AddColumn(&catalog.Column{Name: "l_discount", Type: catalog.TypeDecimal, DistinctCount: 11, Min: 0, Max: 0.1})
	dmin, _ := ParseDateDays("1992-01-01")
	dmax, _ := ParseDateDays("1998-12-31")
	li.AddColumn(&catalog.Column{Name: "l_shipdate", Type: catalog.TypeDate, DistinctCount: 2526, Min: dmin, Max: dmax,
		Hist: catalog.SyntheticHistogram(dmin, dmax, 6000000, 2526, 50, 0)})
	li.AddColumn(&catalog.Column{Name: "l_returnflag", Type: catalog.TypeString, DistinctCount: 3})
	cat.AddTable(li)

	o := catalog.NewTable("orders", 1500000)
	o.AddColumn(&catalog.Column{Name: "o_orderkey", Type: catalog.TypeInt, DistinctCount: 1500000, Min: 1, Max: 6000000})
	o.AddColumn(&catalog.Column{Name: "o_custkey", Type: catalog.TypeInt, DistinctCount: 100000, Min: 1, Max: 150000})
	o.AddColumn(&catalog.Column{Name: "o_orderdate", Type: catalog.TypeDate, DistinctCount: 2406, Min: dmin, Max: dmax,
		Hist: catalog.SyntheticHistogram(dmin, dmax, 1500000, 2406, 50, 0)})
	o.AddColumn(&catalog.Column{Name: "o_totalprice", Type: catalog.TypeDecimal, DistinctCount: 1400000, Min: 800, Max: 600000})
	cat.AddTable(o)

	c := catalog.NewTable("customer", 150000)
	c.AddColumn(&catalog.Column{Name: "c_custkey", Type: catalog.TypeInt, DistinctCount: 150000, Min: 1, Max: 150000})
	c.AddColumn(&catalog.Column{Name: "c_mktsegment", Type: catalog.TypeString, DistinctCount: 5})
	c.AddColumn(&catalog.Column{Name: "c_nationkey", Type: catalog.TypeInt, DistinctCount: 25, Min: 0, Max: 24})
	cat.AddTable(c)

	return cat
}

func analyzeSQL(t *testing.T, sql string) *Info {
	t.Helper()
	q, err := NewQuery(tpchMiniCatalog(), 0, sql)
	if err != nil {
		t.Fatalf("analyze %q: %v", sql, err)
	}
	return q.Info
}

func TestAnalyzeSimpleFilter(t *testing.T) {
	info := analyzeSQL(t, "SELECT l_quantity FROM lineitem WHERE l_quantity = 10")
	if len(info.Tables) != 1 || info.Tables[0] != "lineitem" {
		t.Fatalf("tables = %v", info.Tables)
	}
	if len(info.Filters) != 1 {
		t.Fatalf("filters = %+v", info.Filters)
	}
	f := info.Filters[0]
	if f.Kind != PredEq || f.Column != "l_quantity" || !f.SargableEq {
		t.Fatalf("filter = %+v", f)
	}
	if math.Abs(f.Selectivity-0.02) > 0.001 { // 1/50 distinct
		t.Fatalf("selectivity = %f, want ~0.02", f.Selectivity)
	}
}

func TestAnalyzeAliasResolution(t *testing.T) {
	info := analyzeSQL(t, "SELECT o.o_totalprice FROM orders o WHERE o.o_custkey = 42")
	if len(info.Filters) != 1 || info.Filters[0].Table != "orders" {
		t.Fatalf("filters = %+v", info.Filters)
	}
}

func TestAnalyzeJoinExtraction(t *testing.T) {
	info := analyzeSQL(t, `SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND c_mktsegment = 'BUILDING'`)
	if len(info.Joins) != 1 {
		t.Fatalf("joins = %+v", info.Joins)
	}
	j := info.Joins[0]
	keys := j.Left.Key() + "|" + j.Right.Key()
	if keys != "customer.c_custkey|orders.o_custkey" && keys != "orders.o_custkey|customer.c_custkey" {
		t.Fatalf("join = %+v", j)
	}
	if math.Abs(j.Selectivity-1.0/150000) > 1e-9 {
		t.Fatalf("join selectivity = %g", j.Selectivity)
	}
	if len(info.Filters) != 1 || info.Filters[0].Kind != PredEq {
		t.Fatalf("filters = %+v", info.Filters)
	}
}

func TestAnalyzeExplicitJoinOn(t *testing.T) {
	info := analyzeSQL(t, `SELECT * FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey`)
	if len(info.Joins) != 1 {
		t.Fatalf("joins = %+v", info.Joins)
	}
}

func TestAnalyzeDatePredicates(t *testing.T) {
	info := analyzeSQL(t, `SELECT * FROM orders WHERE o_orderdate >= '1995-01-01' AND o_orderdate < '1996-01-01'`)
	if len(info.Filters) != 2 {
		t.Fatalf("filters = %+v", info.Filters)
	}
	// A one-year slice of a 7-year domain should be ~1/7 each way.
	for _, f := range info.Filters {
		if f.Selectivity <= 0.05 || f.Selectivity >= 0.95 {
			t.Fatalf("date range selectivity implausible: %+v", f)
		}
	}
}

func TestAnalyzeBetweenInLikeNull(t *testing.T) {
	info := analyzeSQL(t, `SELECT * FROM lineitem
		WHERE l_quantity BETWEEN 10 AND 20
		  AND l_returnflag IN ('A', 'R')
		  AND l_shipdate IS NOT NULL
		  AND l_returnflag LIKE 'A%'`)
	kinds := map[PredKind]int{}
	for _, f := range info.Filters {
		kinds[f.Kind]++
	}
	if kinds[PredRange] != 1 || kinds[PredIn] != 1 || kinds[PredNull] != 1 || kinds[PredLike] != 1 {
		t.Fatalf("kinds = %v filters=%+v", kinds, info.Filters)
	}
	for _, f := range info.Filters {
		if f.Kind == PredIn && math.Abs(f.Selectivity-2.0/3.0) > 0.01 {
			t.Fatalf("IN selectivity = %f, want ~0.667", f.Selectivity)
		}
	}
}

func TestAnalyzeGroupOrderBy(t *testing.T) {
	info := analyzeSQL(t, `SELECT l_returnflag, SUM(l_quantity) FROM lineitem
		GROUP BY l_returnflag ORDER BY l_returnflag`)
	if len(info.GroupByColumns()) != 1 || info.GroupByColumns()[0].Column != "l_returnflag" {
		t.Fatalf("group by = %+v", info.GroupBy)
	}
	if len(info.OrderByColumns()) != 1 {
		t.Fatalf("order by = %+v", info.OrderBy)
	}
	if !info.Blocks[0].HasAgg {
		t.Fatal("aggregate not detected")
	}
}

func TestAnalyzeSubqueryCorrelation(t *testing.T) {
	info := analyzeSQL(t, `SELECT * FROM orders WHERE EXISTS (
		SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey AND l_quantity > 45)`)
	if len(info.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(info.Blocks))
	}
	// The correlated predicate l_orderkey = o_orderkey resolves across scopes
	// and lands as a join.
	if len(info.Joins) != 1 {
		t.Fatalf("joins = %+v", info.Joins)
	}
	if len(info.Filters) != 1 || info.Filters[0].Column != "l_quantity" {
		t.Fatalf("filters = %+v", info.Filters)
	}
}

func TestAnalyzeScalarSubquery(t *testing.T) {
	info := analyzeSQL(t, `SELECT * FROM orders WHERE o_totalprice > (SELECT AVG(o_totalprice) FROM orders)`)
	if len(info.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(info.Blocks))
	}
	if len(info.Filters) != 1 || info.Filters[0].Kind != PredRange {
		t.Fatalf("filters = %+v", info.Filters)
	}
}

func TestAnalyzeCTENotBaseTable(t *testing.T) {
	info := analyzeSQL(t, `WITH big AS (SELECT o_custkey, SUM(o_totalprice) AS tp FROM orders GROUP BY o_custkey)
		SELECT * FROM big WHERE tp > 1000`)
	if len(info.Tables) != 1 || info.Tables[0] != "orders" {
		t.Fatalf("tables = %v", info.Tables)
	}
	// tp is a CTE output: no filter should be recorded for it.
	for _, f := range info.Filters {
		if f.Column == "tp" {
			t.Fatalf("CTE output column leaked: %+v", f)
		}
	}
}

func TestAnalyzeDerivedTable(t *testing.T) {
	info := analyzeSQL(t, `SELECT s.k FROM (SELECT o_custkey AS k FROM orders WHERE o_totalprice > 100000) s WHERE s.k > 5`)
	if len(info.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(info.Blocks))
	}
	if len(info.Filters) != 1 || info.Filters[0].Column != "o_totalprice" {
		t.Fatalf("filters = %+v", info.Filters)
	}
}

func TestAnalyzeOrSelectivity(t *testing.T) {
	info := analyzeSQL(t, `SELECT * FROM lineitem WHERE l_quantity = 1 OR l_quantity = 2`)
	if len(info.Filters) != 2 {
		t.Fatalf("filters = %+v", info.Filters)
	}
}

func TestAnalyzeExpressionFilter(t *testing.T) {
	// Arithmetic over a column still yields a filter on the lead column.
	info := analyzeSQL(t, `SELECT * FROM lineitem WHERE l_extendedprice * (1 - l_discount) > 1000`)
	if len(info.Filters) != 1 || info.Filters[0].Column != "l_extendedprice" {
		t.Fatalf("filters = %+v", info.Filters)
	}
}

func TestAnalyzeDateArithmetic(t *testing.T) {
	info := analyzeSQL(t, `SELECT * FROM orders WHERE o_orderdate < '1995-01-01' + INTERVAL '3' month`)
	if len(info.Filters) != 1 {
		t.Fatalf("filters = %+v", info.Filters)
	}
	f := info.Filters[0]
	if f.Selectivity <= 0 || f.Selectivity >= 1 {
		t.Fatalf("selectivity = %f", f.Selectivity)
	}
}

func TestAnalyzeAvgFilterJoinSelectivity(t *testing.T) {
	info := analyzeSQL(t, `SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND c_nationkey = 7`)
	s := info.AvgFilterJoinSelectivity()
	if s <= 0 || s >= 0.5 {
		t.Fatalf("avg selectivity = %f", s)
	}
	empty := analyzeSQL(t, "SELECT * FROM orders")
	if empty.AvgFilterJoinSelectivity() != 1 {
		t.Fatal("no-predicate query should have Sel=1")
	}
}

func TestAnalyzeUnion(t *testing.T) {
	info := analyzeSQL(t, `SELECT o_custkey FROM orders WHERE o_totalprice > 500000
		UNION ALL SELECT c_custkey FROM customer WHERE c_nationkey = 3`)
	if len(info.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(info.Blocks))
	}
	if len(info.Tables) != 2 {
		t.Fatalf("tables = %v", info.Tables)
	}
}

func TestAnalyzeUnknownTableIgnored(t *testing.T) {
	// Tables absent from the catalog are treated as non-base (external)
	// relations rather than failing: real logs reference temp tables.
	info := analyzeSQL(t, "SELECT * FROM sometable WHERE x = 1")
	if len(info.Tables) != 0 || len(info.Filters) != 0 {
		t.Fatalf("info = %+v", info)
	}
}

func TestAnalyzeQuantified(t *testing.T) {
	info := analyzeSQL(t, `SELECT * FROM orders WHERE o_totalprice > ALL (SELECT l_extendedprice FROM lineitem WHERE l_quantity = 1)`)
	if len(info.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(info.Blocks))
	}
	var found bool
	for _, f := range info.Filters {
		if f.Column == "o_totalprice" {
			found = true
		}
	}
	if !found {
		t.Fatalf("quantified filter missing: %+v", info.Filters)
	}
}

func TestParseDateDays(t *testing.T) {
	d, ok := ParseDateDays("1970-01-01")
	if !ok || d != 0 {
		t.Fatalf("epoch = %f, %v", d, ok)
	}
	d2, ok := ParseDateDays("1970-01-02")
	if !ok || d2 != 1 {
		t.Fatalf("epoch+1 = %f", d2)
	}
	d3, _ := ParseDateDays("1995-03-15")
	d4, _ := ParseDateDays("1996-03-15")
	if d4-d3 != 366 { // 1996 is a leap year
		t.Fatalf("leap-year diff = %f", d4-d3)
	}
	if _, ok := ParseDateDays("BUILDING"); ok {
		t.Fatal("non-date should not parse")
	}
	if _, ok := ParseDateDays("1995-13-01"); ok {
		t.Fatal("bad month should not parse")
	}
	if d, ok := ParseDateDays("1998-12-01 00:00:00"); !ok || d <= 0 {
		t.Fatal("datetime suffix should parse")
	}
}

func TestIntervalDays(t *testing.T) {
	cases := map[string]float64{
		"'90' day":    90,
		"'3' month":   91.32,
		"'1' year":    365.25,
		"'2' week":    14,
		"'1' quarter": 91.31,
	}
	for text, want := range cases {
		got, ok := IntervalDays(text)
		if !ok || math.Abs(got-want) > 0.5 {
			t.Fatalf("IntervalDays(%q) = %f, %v; want ~%f", text, got, ok, want)
		}
	}
	if _, ok := IntervalDays("'x' parsec"); ok {
		t.Fatal("unknown unit should fail")
	}
}
