package workload

import (
	"strings"
	"testing"
)

// TestAnalyzeAdversarialSQL feeds structurally hostile (but parseable) SQL
// through the full parse+bind pipeline and requires graceful handling —
// no panics, selectivities in range, no phantom columns.
func TestAnalyzeAdversarialSQL(t *testing.T) {
	cat := tpchMiniCatalog()
	cases := []string{
		// Deeply nested subqueries.
		`SELECT * FROM orders WHERE o_totalprice > (SELECT AVG(o_totalprice) FROM orders WHERE o_custkey IN (
			SELECT c_custkey FROM customer WHERE c_nationkey = (SELECT MAX(c_nationkey) FROM customer)))`,
		// Self-join with aliases.
		`SELECT a.o_orderkey FROM orders a, orders b WHERE a.o_custkey = b.o_custkey AND a.o_orderkey <> b.o_orderkey`,
		// Tautologies and contradictions.
		`SELECT * FROM orders WHERE 1 = 1`,
		`SELECT * FROM orders WHERE o_custkey = o_custkey`,
		`SELECT * FROM orders WHERE NOT (NOT (NOT (o_custkey = 5)))`,
		// Predicates on expressions of multiple columns.
		`SELECT * FROM lineitem WHERE l_extendedprice / l_quantity > 100`,
		// Empty IN via subquery, EXISTS of EXISTS.
		`SELECT * FROM orders WHERE EXISTS (SELECT 1 FROM customer WHERE EXISTS (
			SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey))`,
		// ORDER BY constant and expression.
		`SELECT o_custkey FROM orders ORDER BY 1`,
		`SELECT o_custkey FROM orders ORDER BY o_totalprice * -1 DESC`,
		// CASE everywhere.
		`SELECT CASE WHEN o_totalprice > 100 THEN 'hi' ELSE 'lo' END FROM orders
		 WHERE CASE WHEN o_custkey > 5 THEN 1 ELSE 0 END = 1`,
		// Huge IN list.
		"SELECT * FROM customer WHERE c_nationkey IN (" + nums(200) + ")",
		// Cross join, no predicates.
		`SELECT 1 FROM customer, orders, lineitem`,
		// GROUP BY expression over column.
		`SELECT COUNT(*) FROM orders GROUP BY o_totalprice / 1000`,
		// Reserved-adjacent identifiers via quoting.
		`SELECT "o_custkey" FROM orders WHERE [o_totalprice] > 5`,
		// Comparison of two constants.
		`SELECT * FROM orders WHERE 'a' = 'b'`,
		// Date arithmetic both sides.
		`SELECT * FROM orders WHERE o_orderdate + INTERVAL '1' month < '1995-06-01'`,
	}
	for _, sql := range cases {
		q, err := NewQuery(cat, 0, sql)
		if err != nil {
			t.Errorf("analyse %q: %v", sql, err)
			continue
		}
		for _, f := range q.Info.Filters {
			if f.Selectivity <= 0 || f.Selectivity > 1 {
				t.Errorf("%q: filter selectivity %f out of range", sql, f.Selectivity)
			}
			if f.Table == "" || f.Column == "" {
				t.Errorf("%q: phantom filter %+v", sql, f)
			}
		}
		for _, j := range q.Info.Joins {
			if j.Selectivity <= 0 || j.Selectivity > 1 {
				t.Errorf("%q: join selectivity %f out of range", sql, j.Selectivity)
			}
		}
	}
}

func nums(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("1")
		sb.WriteByte(byte('0' + i%10))
	}
	return sb.String()
}

// TestSelfJoinSharesPredicates documents the self-join approximation: both
// aliases map to the base table, so predicates merge per table.
func TestSelfJoinSharesPredicates(t *testing.T) {
	cat := tpchMiniCatalog()
	q, err := NewQuery(cat, 0,
		`SELECT a.o_orderkey FROM orders a, orders b
		 WHERE a.o_custkey = b.o_custkey AND b.o_totalprice > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Info.Joins) != 1 {
		t.Fatalf("joins = %+v", q.Info.Joins)
	}
	j := q.Info.Joins[0]
	if j.Left.Table != "orders" || j.Right.Table != "orders" {
		t.Fatalf("self-join tables = %+v", j)
	}
	// Both table occurrences appear in the block.
	if len(q.Info.Blocks[0].Tables) != 2 {
		t.Fatalf("table uses = %+v", q.Info.Blocks[0].Tables)
	}
}

// TestZeroAndNegativeCosts ensures downstream consumers tolerate degenerate
// cost inputs loaded from logs.
func TestZeroAndNegativeCosts(t *testing.T) {
	cat := tpchMiniCatalog()
	w, err := New(cat, []string{
		"SELECT * FROM orders WHERE o_custkey = 1",
		"SELECT * FROM orders WHERE o_custkey = 2",
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Queries[0].Cost = 0
	w.Queries[1].Cost = -5 // corrupted log entry
	if got := w.TotalCost(); got != -5 {
		t.Fatalf("total = %f", got)
	}
}
