// Package workload models SQL workloads for index tuning: queries with their
// optimizer-estimated costs, template fingerprints, and the bound analysis
// (tables, filter/join/group-by/order-by columns with selectivities) that
// both the cost model and ISUM's feature extraction consume.
//
// The paper assumes the input workload arrives with optimizer-estimated
// costs, e.g. harvested from SQL Server's Query Store (Section 2.2); the
// Load/Save functions in log.go mirror that contract with a JSON format.
package workload

import (
	"fmt"

	"isum/internal/catalog"
	"isum/internal/sqlparser"
)

// Query is one workload query.
type Query struct {
	// ID is the query's position in the workload (stable identifier).
	ID int
	// Text is the original SQL.
	Text string
	// Stmt is the parsed AST.
	Stmt *sqlparser.SelectStmt
	// Cost is the optimizer-estimated cost C(q) under the current physical
	// design, provided as part of the input workload (Section 2.2).
	Cost float64
	// TemplateID fingerprints the query modulo literal values; instances of
	// the same prepared statement share a TemplateID.
	TemplateID string
	// Info is the bound analysis against the catalog.
	Info *Info
	// Weight is the query's weight in a (compressed) workload; 1 by default.
	Weight float64
}

// Workload is an ordered collection of queries over one catalog.
type Workload struct {
	Queries []*Query
	Catalog *catalog.Catalog

	// tidx caches the per-template aggregation (counts and instance
	// groups); see templates.go. Lazily built, invalidated by Append and
	// by any length change to Queries.
	tidx *templateIndex
}

// New builds a workload by parsing and analysing each SQL string against the
// catalog. Costs are left zero; callers typically fill them via the what-if
// optimizer or load them from a log.
func New(cat *catalog.Catalog, sqls []string) (*Workload, error) {
	w := &Workload{Catalog: cat}
	for i, sql := range sqls {
		q, err := NewQuery(cat, i, sql)
		if err != nil {
			return nil, fmt.Errorf("workload: query %d: %w", i, err)
		}
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}

// NewQuery parses and analyses a single SQL string.
func NewQuery(cat *catalog.Catalog, id int, sql string) (*Query, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	info, err := Analyze(cat, stmt)
	if err != nil {
		return nil, err
	}
	return &Query{
		ID:         id,
		Text:       sql,
		Stmt:       stmt,
		TemplateID: Fingerprint(sql),
		Info:       info,
		Weight:     1,
	}, nil
}

// Len returns the number of queries.
func (w *Workload) Len() int { return len(w.Queries) }

// TotalCost returns C(W) = Σ C(q_i).
func (w *Workload) TotalCost() float64 {
	var c float64
	for _, q := range w.Queries {
		c += q.Cost
	}
	return c
}

// Subset returns a new workload containing copies of the queries at the
// given indices. The copies share the parsed AST and analysis (read-only)
// but have independent Weight/Cost fields, so weighting a compressed
// workload never mutates the input workload.
func (w *Workload) Subset(ids []int) *Workload {
	out := &Workload{Catalog: w.Catalog}
	for _, id := range ids {
		if id >= 0 && id < len(w.Queries) {
			cp := *w.Queries[id]
			out.Queries = append(out.Queries, &cp)
		}
	}
	return out
}

// WeightedSubset returns a new workload of query copies with the given
// weights — the shape a compression algorithm hands to the index tuner
// (Problem 1: k queries plus weights w_1..w_k).
func (w *Workload) WeightedSubset(ids []int, weights []float64) *Workload {
	out := w.Subset(ids)
	for i, q := range out.Queries {
		if i < len(weights) && weights[i] > 0 {
			q.Weight = weights[i]
		} else {
			q.Weight = 1
		}
	}
	return out
}

// TablesReferenced returns the number of distinct base tables referenced
// anywhere in the workload.
func (w *Workload) TablesReferenced() int {
	seen := map[string]bool{}
	for _, q := range w.Queries {
		if q.Info == nil {
			continue
		}
		for _, t := range q.Info.Tables {
			seen[t] = true
		}
	}
	return len(seen)
}
