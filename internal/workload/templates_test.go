package workload

import (
	"reflect"
	"testing"

	"isum/internal/telemetry"
)

func templateTestWorkload(t *testing.T) *Workload {
	t.Helper()
	// Queries 0, 2 and 4 share a template (same structure, different
	// literals); 1 and 3 are distinct.
	w, err := New(tpchMiniCatalog(), []string{
		"SELECT l_orderkey FROM lineitem WHERE l_suppkey = 1",
		"SELECT l_quantity FROM lineitem WHERE l_quantity > 5 ORDER BY l_quantity",
		"SELECT l_orderkey FROM lineitem WHERE l_suppkey = 7",
		"SELECT l_orderkey, l_quantity FROM lineitem WHERE l_suppkey < 3 AND l_quantity = 2",
		"SELECT l_orderkey FROM lineitem WHERE l_suppkey = 99",
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestTemplateGroupsOrderAndMembership(t *testing.T) {
	w := templateTestWorkload(t)
	groups := w.TemplateGroups()
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3: %+v", len(groups), groups)
	}
	// First-occurrence order with ascending instance positions.
	if !reflect.DeepEqual(groups[0].Indices, []int{0, 2, 4}) {
		t.Fatalf("group 0 indices %v, want [0 2 4]", groups[0].Indices)
	}
	if !reflect.DeepEqual(groups[1].Indices, []int{1}) || !reflect.DeepEqual(groups[2].Indices, []int{3}) {
		t.Fatalf("singleton groups wrong: %+v", groups[1:])
	}
	counts := w.TemplateCounts()
	if counts[groups[0].TemplateID] != 3 {
		t.Fatalf("shared template count %d, want 3", counts[groups[0].TemplateID])
	}
	if w.NumTemplates() != 3 {
		t.Fatalf("NumTemplates %d, want 3", w.NumTemplates())
	}
}

func TestTemplateIndexCached(t *testing.T) {
	w := templateTestWorkload(t)
	c1 := w.TemplateCounts()
	g1 := w.TemplateGroups()
	// Same backing data on repeat calls: the aggregation ran once.
	if &c1 != &c1 || reflect.ValueOf(w.TemplateCounts()).Pointer() != reflect.ValueOf(c1).Pointer() {
		t.Fatal("TemplateCounts rebuilt the map on a second call")
	}
	if len(g1) > 0 && &w.TemplateGroups()[0] != &g1[0] {
		t.Fatal("TemplateGroups rebuilt the slice on a second call")
	}
}

func TestAppendInvalidatesTemplateIndex(t *testing.T) {
	w := templateTestWorkload(t)
	if w.NumTemplates() != 3 {
		t.Fatalf("NumTemplates %d, want 3", w.NumTemplates())
	}
	// Append another instance of the shared template.
	w2, err := New(tpchMiniCatalog(), []string{"SELECT l_orderkey FROM lineitem WHERE l_suppkey = 123"})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(w2.Queries...)
	if w.NumTemplates() != 3 {
		t.Fatalf("after append: NumTemplates %d, want 3", w.NumTemplates())
	}
	groups := w.TemplateGroups()
	if !reflect.DeepEqual(groups[0].Indices, []int{0, 2, 4, 5}) {
		t.Fatalf("after append: group 0 indices %v, want [0 2 4 5]", groups[0].Indices)
	}
	counts := w.TemplateCounts()
	if counts[groups[0].TemplateID] != 4 {
		t.Fatalf("after append: shared template count %d, want 4", counts[groups[0].TemplateID])
	}
}

func TestDirectMutationRevalidatesOnLengthChange(t *testing.T) {
	w := templateTestWorkload(t)
	_ = w.TemplateGroups()
	// Legacy direct-append path: the cache re-validates against length.
	w.Queries = append(w.Queries, w.Queries[1])
	if got := w.TemplateCounts()[w.Queries[1].TemplateID]; got != 2 {
		t.Fatalf("after direct append: count %d, want 2", got)
	}
}

func TestRecordConsedTelemetry(t *testing.T) {
	reg := telemetry.New()
	SetTelemetry(reg)
	defer SetTelemetry(nil)

	RecordConsed(120, 880)
	RecordConsed(10, 0)

	snap := reg.Snapshot()
	if got := snap.Counters["workload/templates/consed"]; got != 130 {
		t.Fatalf("workload/templates/consed = %d, want 130", got)
	}
	if got := snap.Counters["workload/templates/deduped"]; got != 880 {
		t.Fatalf("workload/templates/deduped = %d, want 880", got)
	}

	SetTelemetry(nil)
	RecordConsed(1, 1) // must be a no-op, not a panic
}
