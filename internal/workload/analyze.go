package workload

import (
	"math"
	"strings"

	"isum/internal/catalog"
	"isum/internal/sqlparser"
)

// Analyze binds a parsed statement against the catalog and extracts the
// per-block tables, filter predicates with selectivities, join predicates,
// and grouping/ordering columns. This is the "plan feature extraction"
// substrate: everything ISUM needs that a commercial tool would read from
// the optimizer's plan (Query Store), derived here directly from the AST
// and catalog statistics.
//
// Unresolvable columns (CTE outputs, projection aliases, derived-table
// columns) are skipped rather than failing: they are not indexable base
// columns.
func Analyze(cat *catalog.Catalog, stmt *sqlparser.SelectStmt) (*Info, error) {
	a := &analyzer{cat: cat}
	info := &Info{}
	a.analyzeSelect(stmt, nil, info)
	info.flatten()
	return info, nil
}

// Floor for estimated selectivities: keeps utilities finite and mirrors the
// optimizer practice of never estimating zero rows.
const minSelectivity = 1e-5

type analyzer struct {
	cat *catalog.Catalog
}

// scope is the name-resolution environment of one SELECT block, linked to
// its enclosing block for correlated references.
type scope struct {
	parent *scope
	// aliases maps alias/table name -> base table name ("" for derived
	// tables and CTE references, which are not indexable).
	aliases map[string]string
	// ctes holds CTE names visible in this block.
	ctes map[string]bool
}

func (s *scope) lookupAlias(name string) (table string, found bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if t, ok := sc.aliases[name]; ok {
			return t, true
		}
	}
	return "", false
}

func (s *scope) isCTE(name string) bool {
	for sc := s; sc != nil; sc = sc.parent {
		if sc.ctes[name] {
			return true
		}
	}
	return false
}

// analyzeSelect analyses one SELECT block (and recursively its nested
// blocks), appending Block records to info.
func (a *analyzer) analyzeSelect(stmt *sqlparser.SelectStmt, parent *scope, info *Info) {
	if stmt == nil {
		return
	}
	sc := &scope{parent: parent, aliases: map[string]string{}, ctes: map[string]bool{}}

	// CTEs: analyse bodies as sibling blocks; names become non-base tables.
	for _, cte := range stmt.With {
		sc.ctes[strings.ToLower(cte.Name)] = true
		a.analyzeSelect(cte.Select, parent, info)
	}

	blk := &Block{Distinct: stmt.Distinct}
	if stmt.Limit != nil {
		blk.Limit = stmt.Limit
	} else if stmt.Top != nil {
		blk.Limit = stmt.Top
	}

	// FROM: register aliases, recurse into derived tables, collect ON
	// conditions.
	var onConds []sqlparser.Expr
	for _, tr := range stmt.From {
		a.bindTableRef(tr, sc, info, blk, &onConds)
	}

	// Conditions: WHERE plus JOIN ... ON.
	conds := onConds
	if stmt.Where != nil {
		conds = append(conds, stmt.Where)
	}
	for _, c := range conds {
		a.extractCondition(c, sc, blk, info)
	}

	// SELECT list.
	for _, item := range stmt.Items {
		if item.Star {
			blk.SelectStar = true
		}
		if item.Expr == nil {
			continue
		}
		for _, cu := range a.columnsIn(item.Expr, sc) {
			blk.Projected = append(blk.Projected, cu)
		}
		if hasAggregate(item.Expr) {
			blk.HasAgg = true
		}
		for _, sub := range sqlparser.ExprSubqueries(item.Expr) {
			a.analyzeSelect(sub, sc, info)
		}
	}

	// GROUP BY / HAVING / ORDER BY.
	for _, g := range stmt.GroupBy {
		blk.GroupBy = append(blk.GroupBy, a.columnsIn(g, sc)...)
	}
	if stmt.Having != nil {
		// HAVING predicates act post-aggregation; their columns are not
		// indexable filters, but subqueries inside must still be analysed.
		for _, sub := range sqlparser.ExprSubqueries(stmt.Having) {
			a.analyzeSelect(sub, sc, info)
		}
	}
	for _, o := range stmt.OrderBy {
		blk.OrderBy = append(blk.OrderBy, a.columnsIn(o.Expr, sc)...)
	}
	blk.GroupBy = dedupCols(blk.GroupBy)
	blk.OrderBy = dedupCols(blk.OrderBy)
	blk.Projected = dedupCols(blk.Projected)

	info.Blocks = append(info.Blocks, blk)

	if stmt.UnionAll != nil {
		a.analyzeSelect(stmt.UnionAll, parent, info)
	}
}

func (a *analyzer) bindTableRef(tr sqlparser.TableRef, sc *scope, info *Info, blk *Block, onConds *[]sqlparser.Expr) {
	switch t := tr.(type) {
	case *sqlparser.BaseTable:
		name := strings.ToLower(t.Name)
		alias := name
		if t.Alias != "" {
			alias = strings.ToLower(t.Alias)
		}
		if sc.isCTE(name) || a.cat.Table(name) == nil {
			sc.aliases[alias] = "" // non-base relation
			return
		}
		sc.aliases[alias] = name
		blk.Tables = append(blk.Tables, TableUse{Table: name, Alias: alias})
	case *sqlparser.JoinExpr:
		a.bindTableRef(t.Left, sc, info, blk, onConds)
		a.bindTableRef(t.Right, sc, info, blk, onConds)
		if t.On != nil {
			*onConds = append(*onConds, t.On)
		}
	case *sqlparser.SubqueryRef:
		if t.Alias != "" {
			sc.aliases[strings.ToLower(t.Alias)] = ""
		}
		a.analyzeSelect(t.Select, sc, info)
	}
}

// resolve maps a ColumnRef to a base-table column use, or ok=false for
// aliases/CTE outputs/unknown names.
func (a *analyzer) resolve(cr *sqlparser.ColumnRef, sc *scope) (ColumnUse, *catalog.Column, bool) {
	colName := strings.ToLower(cr.Name)
	if cr.Qualifier != "" {
		q := strings.ToLower(cr.Qualifier)
		table, found := sc.lookupAlias(q)
		if !found {
			// Qualifier might be a bare table name not in scope (rare).
			if t := a.cat.Table(q); t != nil && t.Column(colName) != nil {
				return ColumnUse{Table: q, Column: colName}, t.Column(colName), true
			}
			return ColumnUse{}, nil, false
		}
		if table == "" {
			return ColumnUse{}, nil, false // derived/CTE column
		}
		t := a.cat.Table(table)
		if t == nil {
			return ColumnUse{}, nil, false
		}
		c := t.Column(colName)
		if c == nil {
			return ColumnUse{}, nil, false
		}
		return ColumnUse{Table: table, Column: colName}, c, true
	}
	// Unqualified: search in-scope base tables, innermost block first.
	for s := sc; s != nil; s = s.parent {
		for _, table := range s.aliases {
			if table == "" {
				continue
			}
			t := a.cat.Table(table)
			if t == nil {
				continue
			}
			if c := t.Column(colName); c != nil {
				return ColumnUse{Table: table, Column: colName}, c, true
			}
		}
	}
	return ColumnUse{}, nil, false
}

// columnsIn returns the resolved base columns referenced by e (not
// descending into subqueries).
func (a *analyzer) columnsIn(e sqlparser.Expr, sc *scope) []ColumnUse {
	var out []ColumnUse
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if cr, ok := x.(*sqlparser.ColumnRef); ok {
			if cu, _, ok := a.resolve(cr, sc); ok {
				out = append(out, cu)
			}
		}
		return true
	})
	return out
}

// extractCondition estimates the selectivity of a boolean condition and
// appends filter/join predicates to blk. Returns the condition's estimated
// selectivity.
func (a *analyzer) extractCondition(e sqlparser.Expr, sc *scope, blk *Block, info *Info) float64 {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case "AND":
			s1 := a.extractCondition(x.L, sc, blk, info)
			s2 := a.extractCondition(x.R, sc, blk, info)
			return clamp(s1 * s2)
		case "OR":
			s1 := a.extractCondition(x.L, sc, blk, info)
			s2 := a.extractCondition(x.R, sc, blk, info)
			return clamp(1 - (1-s1)*(1-s2))
		case "=", "<", ">", "<=", ">=", "<>":
			return a.extractComparison(x, sc, blk, info)
		default:
			return 1 // arithmetic at boolean position: no estimate
		}
	case *sqlparser.UnaryExpr:
		if x.Op == "NOT" {
			s := a.extractCondition(x.X, sc, blk, info)
			return clamp(1 - s)
		}
		return 1
	case *sqlparser.InExpr:
		return a.extractIn(x, sc, blk, info)
	case *sqlparser.BetweenExpr:
		return a.extractBetween(x, sc, blk)
	case *sqlparser.LikeExpr:
		return a.extractLike(x, sc, blk)
	case *sqlparser.IsNullExpr:
		return a.extractIsNull(x, sc, blk)
	case *sqlparser.ExistsExpr:
		a.analyzeSelect(x.Subquery, sc, info)
		return 0.5
	case *sqlparser.QuantifiedExpr:
		a.analyzeSelect(x.Subquery, sc, info)
		if cu, col, ok := a.leadColumn(x.X, sc); ok {
			sel := catalog.DefaultRangeSelectivity
			blk.Filters = append(blk.Filters, FilterPredicate{
				ColumnUse: cu, Kind: PredRange, Selectivity: sel,
			})
			_ = col
			return sel
		}
		return catalog.DefaultRangeSelectivity
	case *sqlparser.SubqueryExpr:
		a.analyzeSelect(x.Select, sc, info)
		return 1
	default:
		return 1
	}
}

// extractComparison handles binary comparisons: column-vs-constant filters,
// column-vs-column joins, and comparisons against scalar subqueries.
func (a *analyzer) extractComparison(x *sqlparser.BinaryExpr, sc *scope, blk *Block, info *Info) float64 {
	// Analyse embedded scalar subqueries regardless of resolution.
	for _, sub := range sqlparser.ExprSubqueries(x.L) {
		a.analyzeSelect(sub, sc, info)
	}
	for _, sub := range sqlparser.ExprSubqueries(x.R) {
		a.analyzeSelect(sub, sc, info)
	}

	lcu, lcol, lok := a.leadColumn(x.L, sc)
	rcu, rcol, rok := a.leadColumn(x.R, sc)

	switch {
	case lok && rok && x.Op == "=":
		// Equi-join between two base columns (also covers correlated
		// predicates where one side resolves via an enclosing scope).
		sel := catalog.JoinSelectivity(lcol, rcol)
		blk.Joins = append(blk.Joins, JoinPredicate{Left: lcu, Right: rcu, Selectivity: sel})
		return sel
	case lok && rok:
		// Non-equi column comparison: treat both as range filters.
		sel := catalog.DefaultRangeSelectivity
		blk.Filters = append(blk.Filters,
			FilterPredicate{ColumnUse: lcu, Kind: PredRange, Selectivity: sel},
			FilterPredicate{ColumnUse: rcu, Kind: PredRange, Selectivity: sel})
		return sel
	case lok:
		return a.columnConstFilter(x.Op, lcu, lcol, x.R, sc, blk, false)
	case rok:
		return a.columnConstFilter(x.Op, rcu, rcol, x.L, sc, blk, true)
	default:
		return 1
	}
}

// columnConstFilter records a filter predicate col OP expr where expr is a
// constant (or opaque). flipped indicates the column was on the right.
func (a *analyzer) columnConstFilter(op string, cu ColumnUse, col *catalog.Column, val sqlparser.Expr, sc *scope, blk *Block, flipped bool) float64 {
	if flipped {
		switch op {
		case "<":
			op = ">"
		case ">":
			op = "<"
		case "<=":
			op = ">="
		case ">=":
			op = "<="
		}
	}
	v, known := a.evalConst(val, col)
	var sel float64
	kind := PredRange
	sargable := false
	switch op {
	case "=":
		kind = PredEq
		sargable = true
		if known {
			sel = col.EqSelectivity(v)
		} else {
			sel = unknownEq(col)
		}
	case "<>":
		kind = PredRange
		if known {
			sel = 1 - col.EqSelectivity(v)
		} else {
			sel = 1 - unknownEq(col)
		}
	case "<", "<=":
		if known {
			sel = col.RangeSelectivity(math.Inf(-1), v, true, op == "<=")
		} else {
			sel = catalog.DefaultRangeSelectivity
		}
	case ">", ">=":
		if known {
			sel = col.RangeSelectivity(v, math.Inf(1), op == ">=", true)
		} else {
			sel = catalog.DefaultRangeSelectivity
		}
	default:
		sel = catalog.DefaultRangeSelectivity
	}
	sel = clamp(sel)
	blk.Filters = append(blk.Filters, FilterPredicate{
		ColumnUse: cu, Kind: kind, Selectivity: sel, SargableEq: sargable,
	})
	return sel
}

func (a *analyzer) extractIn(x *sqlparser.InExpr, sc *scope, blk *Block, info *Info) float64 {
	if x.Subquery != nil {
		a.analyzeSelect(x.Subquery, sc, info)
	}
	cu, col, ok := a.leadColumn(x.X, sc)
	if !ok {
		return 0.5
	}
	var sel float64
	if x.Subquery != nil {
		sel = 0.3 // semi-join default
	} else {
		sel = col.InSelectivity(len(x.List))
	}
	if x.Not {
		sel = clamp(1 - sel)
	}
	blk.Filters = append(blk.Filters, FilterPredicate{
		ColumnUse: cu, Kind: PredIn, Selectivity: clamp(sel), SargableEq: !x.Not,
	})
	return clamp(sel)
}

func (a *analyzer) extractBetween(x *sqlparser.BetweenExpr, sc *scope, blk *Block) float64 {
	cu, col, ok := a.leadColumn(x.X, sc)
	if !ok {
		return catalog.DefaultRangeSelectivity
	}
	lo, lok := a.evalConst(x.Lo, col)
	hi, hok := a.evalConst(x.Hi, col)
	var sel float64
	if lok && hok {
		sel = col.RangeSelectivity(lo, hi, true, true)
	} else {
		sel = catalog.DefaultRangeSelectivity
	}
	if x.Not {
		sel = 1 - sel
	}
	sel = clamp(sel)
	blk.Filters = append(blk.Filters, FilterPredicate{ColumnUse: cu, Kind: PredRange, Selectivity: sel})
	return sel
}

func (a *analyzer) extractLike(x *sqlparser.LikeExpr, sc *scope, blk *Block) float64 {
	cu, _, ok := a.leadColumn(x.X, sc)
	if !ok {
		return catalog.DefaultLikeSelectivity
	}
	sel := catalog.DefaultLikeSelectivity
	if lit, isLit := x.Pattern.(*sqlparser.Literal); isLit && lit.Kind == sqlparser.LitString {
		p := lit.Str
		switch {
		case !strings.ContainsAny(p, "%_"):
			sel = 0.005 // effectively equality
		case !strings.HasPrefix(p, "%") && !strings.HasPrefix(p, "_"):
			sel = 0.03 // prefix match: seekable range
		default:
			sel = 0.1 // contains/suffix: scan
		}
	}
	if x.Not {
		sel = 1 - sel
	}
	sel = clamp(sel)
	blk.Filters = append(blk.Filters, FilterPredicate{ColumnUse: cu, Kind: PredLike, Selectivity: sel})
	return sel
}

func (a *analyzer) extractIsNull(x *sqlparser.IsNullExpr, sc *scope, blk *Block) float64 {
	cu, col, ok := a.leadColumn(x.X, sc)
	if !ok {
		return 0.5
	}
	sel := col.NullSelectivity()
	if x.Not {
		sel = 1 - sel
	}
	sel = clamp(sel)
	blk.Filters = append(blk.Filters, FilterPredicate{ColumnUse: cu, Kind: PredNull, Selectivity: sel})
	return sel
}

// leadColumn returns the first resolvable base column inside an expression
// (e.g. the l_extendedprice in l_extendedprice*(1-l_discount)), skipping
// subqueries.
func (a *analyzer) leadColumn(e sqlparser.Expr, sc *scope) (ColumnUse, *catalog.Column, bool) {
	var cu ColumnUse
	var col *catalog.Column
	found := false
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if found {
			return false
		}
		switch cr := x.(type) {
		case *sqlparser.ColumnRef:
			if u, c, ok := a.resolve(cr, sc); ok {
				cu, col, found = u, c, true
				return false
			}
		case *sqlparser.SubqueryExpr:
			return false
		}
		return true
	})
	return cu, col, found
}

// evalConst attempts to evaluate an expression to a numeric constant in the
// column's domain: numbers directly; date strings as day numbers for date
// columns; date arithmetic with intervals; CASTs transparently.
func (a *analyzer) evalConst(e sqlparser.Expr, col *catalog.Column) (float64, bool) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		switch x.Kind {
		case sqlparser.LitNumber:
			return x.Num, true
		case sqlparser.LitString:
			if d, ok := ParseDateDays(x.Str); ok {
				return d, true
			}
			return 0, false
		case sqlparser.LitInterval:
			if d, ok := IntervalDays(x.Str); ok {
				return d, true
			}
			return 0, false
		default:
			return 0, false
		}
	case *sqlparser.UnaryExpr:
		if x.Op == "-" {
			if v, ok := a.evalConst(x.X, col); ok {
				return -v, true
			}
		}
		return 0, false
	case *sqlparser.BinaryExpr:
		l, lok := a.evalConst(x.L, col)
		r, rok := a.evalConst(x.R, col)
		if !lok || !rok {
			return 0, false
		}
		switch x.Op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r == 0 {
				return 0, false
			}
			return l / r, true
		}
		return 0, false
	case *sqlparser.CastExpr:
		return a.evalConst(x.X, col)
	default:
		return 0, false
	}
}

// unknownEq is the equality selectivity when the comparison value is not a
// evaluable constant: fall back to density.
func unknownEq(col *catalog.Column) float64 {
	if col.DistinctCount > 0 {
		return clamp((1 - col.NullFraction) / float64(col.DistinctCount))
	}
	return catalog.DefaultEqSelectivity
}

func hasAggregate(e sqlparser.Expr) bool {
	agg := false
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if fc, ok := x.(*sqlparser.FuncCall); ok {
			switch fc.Name {
			case "SUM", "COUNT", "AVG", "MIN", "MAX", "STDDEV", "VAR":
				agg = true
				return false
			}
		}
		return true
	})
	return agg
}

func clamp(s float64) float64 {
	if math.IsNaN(s) || s < minSelectivity {
		return minSelectivity
	}
	if s > 1 {
		return 1
	}
	return s
}
