package workload

import (
	"strconv"
	"strings"
)

// ParseDateDays parses a 'YYYY-MM-DD' literal into a day number (days since
// 1970-01-01, negative before). Returns ok=false for non-date strings.
// Date columns store their min/max/histograms in this domain so date
// predicates get real selectivity estimates.
func ParseDateDays(s string) (float64, bool) {
	parts := strings.SplitN(strings.TrimSpace(s), "-", 3)
	if len(parts) != 3 {
		return 0, false
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	// Allow a trailing time component: '1998-12-01 00:00:00'.
	dayStr := parts[2]
	if i := strings.IndexByte(dayStr, ' '); i > 0 {
		dayStr = dayStr[:i]
	}
	d, err3 := strconv.Atoi(dayStr)
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, false
	}
	if y < 1 || m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, false
	}
	return float64(civilDays(y, m, d)), true
}

// civilDays converts a civil date to days since the Unix epoch using the
// standard days-from-civil algorithm (Howard Hinnant).
func civilDays(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	era := yy / 400
	if yy < 0 {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400
	mm := int64(m)
	var doy int64
	if mm > 2 {
		doy = (153*(mm-3)+2)/5 + int64(d) - 1
	} else {
		doy = (153*(mm+9)+2)/5 + int64(d) - 1
	}
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return era*146097 + doe - 719468
}

// IntervalDays converts an INTERVAL literal text like "'3' month" or
// "'90' day" into an approximate day count.
func IntervalDays(text string) (float64, bool) {
	t := strings.TrimSpace(text)
	t = strings.Trim(t, "'")
	fields := strings.Fields(strings.ReplaceAll(t, "'", " "))
	if len(fields) == 0 {
		return 0, false
	}
	n, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, false
	}
	unit := "day"
	if len(fields) > 1 {
		unit = strings.ToLower(strings.TrimSuffix(fields[1], "s"))
	}
	switch unit {
	case "day":
		return n, true
	case "week":
		return n * 7, true
	case "month":
		return n * 30.44, true
	case "quarter":
		return n * 91.31, true
	case "year":
		return n * 365.25, true
	default:
		return 0, false
	}
}
