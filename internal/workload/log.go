package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"isum/internal/catalog"
)

// LogEntry is the serialised form of one workload query, mirroring the
// contract in Section 2.2: query text plus its optimizer-estimated cost,
// as systems like Query Store would provide.
type LogEntry struct {
	SQL    string  `json:"sql"`
	Cost   float64 `json:"cost"`
	Weight float64 `json:"weight,omitempty"`
}

// Save writes the workload as a JSON array of log entries.
func (w *Workload) Save(out io.Writer) error {
	entries := make([]LogEntry, len(w.Queries))
	for i, q := range w.Queries {
		entries[i] = LogEntry{SQL: q.Text, Cost: q.Cost, Weight: q.Weight}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// LoadSQLScript reads a plain SQL script — statements separated by
// semicolons, with -- and /* */ comments — and analyses each statement.
// Costs are left zero (fill them with the optimizer); this is the format
// benchmarks and migration scripts usually ship in.
func LoadSQLScript(cat *catalog.Catalog, in io.Reader) (*Workload, error) {
	raw, err := io.ReadAll(in)
	if err != nil {
		return nil, fmt.Errorf("workload: reading script: %w", err)
	}
	stmts, err := SplitStatements(string(raw))
	if err != nil {
		return nil, err
	}
	return New(cat, stmts)
}

// SplitStatements splits SQL text on top-level semicolons, respecting
// string literals and comments. Empty statements are dropped.
func SplitStatements(script string) ([]string, error) {
	var stmts []string
	var cur []byte
	i := 0
	for i < len(script) {
		c := script[i]
		switch {
		case c == ';':
			if s := strings.TrimSpace(string(cur)); s != "" {
				stmts = append(stmts, s)
			}
			cur = cur[:0]
			i++
		case c == '\'':
			// Copy the string literal verbatim (with '' escapes).
			cur = append(cur, c)
			i++
			for i < len(script) {
				cur = append(cur, script[i])
				if script[i] == '\'' {
					if i+1 < len(script) && script[i+1] == '\'' {
						cur = append(cur, '\'')
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
		case c == '-' && i+1 < len(script) && script[i+1] == '-':
			for i < len(script) && script[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(script) && script[i+1] == '*':
			i += 2
			for i+1 < len(script) && !(script[i] == '*' && script[i+1] == '/') {
				i++
			}
			i += 2
			if i > len(script) {
				i = len(script)
			}
		default:
			cur = append(cur, c)
			i++
		}
	}
	if s := strings.TrimSpace(string(cur)); s != "" {
		stmts = append(stmts, s)
	}
	return stmts, nil
}

// Load reads a JSON workload log and analyses each query against the
// catalog. Entries with missing weights default to 1.
func Load(cat *catalog.Catalog, in io.Reader) (*Workload, error) {
	var entries []LogEntry
	if err := json.NewDecoder(in).Decode(&entries); err != nil {
		return nil, fmt.Errorf("workload: decoding log: %w", err)
	}
	w := &Workload{Catalog: cat}
	for i, e := range entries {
		q, err := NewQuery(cat, i, e.SQL)
		if err != nil {
			return nil, fmt.Errorf("workload: entry %d: %w", i, err)
		}
		q.Cost = e.Cost
		if e.Weight > 0 {
			q.Weight = e.Weight
		}
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}
