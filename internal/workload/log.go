package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"isum/internal/catalog"
)

// LogEntry is the serialised form of one workload query, mirroring the
// contract in Section 2.2: query text plus its optimizer-estimated cost,
// as systems like Query Store would provide.
type LogEntry struct {
	SQL    string  `json:"sql"`
	Cost   float64 `json:"cost"`
	Weight float64 `json:"weight,omitempty"`
}

// Save writes the workload as a JSON array of log entries.
func (w *Workload) Save(out io.Writer) error {
	entries := make([]LogEntry, len(w.Queries))
	for i, q := range w.Queries {
		entries[i] = LogEntry{SQL: q.Text, Cost: q.Cost, Weight: q.Weight}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// LoadSQLScript reads a plain SQL script — statements separated by
// semicolons, with -- and /* */ comments — and analyses each statement.
// Costs are left zero (fill them with the optimizer); this is the format
// benchmarks and migration scripts usually ship in.
func LoadSQLScript(cat *catalog.Catalog, in io.Reader) (*Workload, error) {
	raw, err := io.ReadAll(in)
	if err != nil {
		return nil, fmt.Errorf("workload: reading script: %w", err)
	}
	stmts, err := SplitStatements(string(raw))
	if err != nil {
		return nil, err
	}
	return New(cat, stmts)
}

// ScriptError reports a malformed construct in a SQL script: what was left
// unterminated and where it started, as a byte offset and 1-based
// line/column pair.
type ScriptError struct {
	Offset int    // byte offset of the construct's opening token
	Line   int    // 1-based line of the opening token
	Column int    // 1-based column (in bytes) of the opening token
	Msg    string // what is unterminated
}

func (e *ScriptError) Error() string {
	return fmt.Sprintf("workload: script line %d column %d (byte %d): %s",
		e.Line, e.Column, e.Offset, e.Msg)
}

// scriptErr builds a ScriptError for the construct opening at offset off.
func scriptErr(script string, off int, msg string) *ScriptError {
	line := 1 + strings.Count(script[:off], "\n")
	col := off - strings.LastIndexByte(script[:off], '\n')
	return &ScriptError{Offset: off, Line: line, Column: col, Msg: msg}
}

// SplitStatements splits SQL text on top-level semicolons, respecting
// string literals and comments. Empty statements are dropped. An
// unterminated string literal or block comment yields a *ScriptError
// carrying the position where the construct opened.
func SplitStatements(script string) ([]string, error) {
	var stmts []string
	var cur []byte
	i := 0
	for i < len(script) {
		c := script[i]
		switch {
		case c == ';':
			if s := strings.TrimSpace(string(cur)); s != "" {
				stmts = append(stmts, s)
			}
			cur = cur[:0]
			i++
		case c == '\'':
			// Copy the string literal verbatim (with '' escapes).
			start := i
			cur = append(cur, c)
			i++
			closed := false
			for i < len(script) {
				cur = append(cur, script[i])
				if script[i] == '\'' {
					if i+1 < len(script) && script[i+1] == '\'' {
						cur = append(cur, '\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				i++
			}
			if !closed {
				return nil, scriptErr(script, start, "unterminated string literal")
			}
		case c == '-' && i+1 < len(script) && script[i+1] == '-':
			for i < len(script) && script[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(script) && script[i+1] == '*':
			start := i
			i += 2
			closed := false
			for i+1 < len(script) {
				if script[i] == '*' && script[i+1] == '/' {
					closed = true
					break
				}
				i++
			}
			if !closed {
				return nil, scriptErr(script, start, "unterminated block comment")
			}
			i += 2
			// A comment separates tokens: drop a space in its place so the
			// surrounding text cannot paste into a new token ("a/**/b" is
			// "a b", and "//**/*" must not become "/*").
			cur = append(cur, ' ')
		default:
			cur = append(cur, c)
			i++
		}
	}
	if s := strings.TrimSpace(string(cur)); s != "" {
		stmts = append(stmts, s)
	}
	return stmts, nil
}

// Load reads a JSON workload log and analyses each query against the
// catalog. Entries with missing weights default to 1. Costs must be finite
// and non-negative, weights finite and non-negative (0 means "default");
// violations are rejected with the offending entry's index.
func Load(cat *catalog.Catalog, in io.Reader) (*Workload, error) {
	var entries []LogEntry
	if err := json.NewDecoder(in).Decode(&entries); err != nil {
		return nil, fmt.Errorf("workload: decoding log: %w", err)
	}
	w := &Workload{Catalog: cat}
	for i, e := range entries {
		if math.IsNaN(e.Cost) || math.IsInf(e.Cost, 0) || e.Cost < 0 {
			return nil, fmt.Errorf("workload: entry %d: invalid cost %v (must be finite and >= 0)", i, e.Cost)
		}
		if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) || e.Weight < 0 {
			return nil, fmt.Errorf("workload: entry %d: invalid weight %v (must be finite and >= 0)", i, e.Weight)
		}
		q, err := NewQuery(cat, i, e.SQL)
		if err != nil {
			return nil, fmt.Errorf("workload: entry %d: %w", i, err)
		}
		q.Cost = e.Cost
		if e.Weight > 0 {
			q.Weight = e.Weight
		}
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}
