package workload

import (
	"strings"

	"isum/internal/sqlparser"
)

// Fingerprint returns a canonical template identifier for a SQL string:
// literals are replaced by '?', identifiers are lower-cased, keywords
// upper-cased, and whitespace normalised. Two instances of the same prepared
// statement that differ only in parameter bindings share a fingerprint —
// the notion of "template" used throughout the paper (Sections 1, 7).
//
// Unparseable input falls back to a whitespace-normalised copy so callers
// can fingerprint raw log lines defensively.
func Fingerprint(sql string) string {
	toks, err := sqlparser.Tokenize(sql)
	if err != nil {
		return strings.Join(strings.Fields(sql), " ")
	}
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		switch t.Kind {
		case sqlparser.TokenNumber, sqlparser.TokenString, sqlparser.TokenParam:
			parts = append(parts, "?")
		case sqlparser.TokenIdent:
			parts = append(parts, strings.ToLower(t.Text))
		default:
			parts = append(parts, t.Text)
		}
	}
	return strings.Join(parts, " ")
}
