package workload

import (
	"sort"
	"strings"
)

// PredKind classifies filter predicates; it determines which Table-1 rule
// positions a column can occupy (internal/features) and how the cost model
// treats the predicate.
type PredKind int

const (
	// PredEq is an equality comparison with a constant.
	PredEq PredKind = iota
	// PredRange is a range comparison (<, <=, >, >=, BETWEEN).
	PredRange
	// PredIn is an IN-list or IN-subquery membership test.
	PredIn
	// PredLike is a LIKE pattern match.
	PredLike
	// PredNull is an IS [NOT] NULL test.
	PredNull
)

// String names the predicate kind.
func (k PredKind) String() string {
	switch k {
	case PredEq:
		return "eq"
	case PredRange:
		return "range"
	case PredIn:
		return "in"
	case PredLike:
		return "like"
	case PredNull:
		return "null"
	default:
		return "?"
	}
}

// ColumnUse is a resolved reference to a base-table column. Table is the
// base table name (not the alias), lower-cased.
type ColumnUse struct {
	Table  string
	Column string
}

// Key returns "table.column", the feature identity used throughout ISUM.
func (c ColumnUse) Key() string { return c.Table + "." + c.Column }

// TableUse is one base-table occurrence in a FROM clause.
type TableUse struct {
	Table string // base table name, lower-cased
	Alias string // alias or table name, lower-cased
}

// FilterPredicate is one single-table predicate with its estimated
// selectivity.
type FilterPredicate struct {
	ColumnUse
	Kind        PredKind
	Selectivity float64
	// SargableEq reports whether an index seek can directly apply the
	// predicate (equality/IN with constants); range and LIKE-prefix
	// predicates are sargable but only as the last seek column.
	SargableEq bool
}

// JoinPredicate is one equi-join predicate between two base-table columns
// (possibly across query blocks, for correlated subqueries).
type JoinPredicate struct {
	Left, Right ColumnUse
	Selectivity float64
}

// Block is the analysis of one SELECT block (the outer query or a
// subquery/CTE body): the unit the cost model plans independently.
type Block struct {
	Tables    []TableUse
	Filters   []FilterPredicate
	Joins     []JoinPredicate
	GroupBy   []ColumnUse
	OrderBy   []ColumnUse
	Projected []ColumnUse // base columns appearing in the SELECT list
	// SelectStar reports a '*' (or 't.*') projection: the block needs every
	// column, so no index can be covering for its tables.
	SelectStar bool
	Distinct   bool
	HasAgg     bool
	Limit      *int64
}

// Info is the full analysis of a query: its blocks plus flattened views used
// by feature extraction.
type Info struct {
	Blocks []*Block

	// Flattened, deduplicated views across all blocks.
	Tables  []string // distinct base tables, sorted
	Filters []FilterPredicate
	Joins   []JoinPredicate
	GroupBy []ColumnUse
	OrderBy []ColumnUse
}

// flatten fills the aggregate views from Blocks.
func (info *Info) flatten() {
	tset := map[string]bool{}
	for _, b := range info.Blocks {
		for _, t := range b.Tables {
			tset[t.Table] = true
		}
		info.Filters = append(info.Filters, b.Filters...)
		info.Joins = append(info.Joins, b.Joins...)
		info.GroupBy = append(info.GroupBy, b.GroupBy...)
		info.OrderBy = append(info.OrderBy, b.OrderBy...)
	}
	for t := range tset {
		info.Tables = append(info.Tables, t)
	}
	sort.Strings(info.Tables)
}

// FilterColumns returns the distinct filter columns across all blocks.
func (info *Info) FilterColumns() []ColumnUse { return dedupCols(filterCols(info.Filters)) }

// JoinColumns returns the distinct join columns (both sides) across blocks.
func (info *Info) JoinColumns() []ColumnUse {
	var cols []ColumnUse
	for _, j := range info.Joins {
		cols = append(cols, j.Left, j.Right)
	}
	return dedupCols(cols)
}

// GroupByColumns returns the distinct group-by columns.
func (info *Info) GroupByColumns() []ColumnUse { return dedupCols(info.GroupBy) }

// OrderByColumns returns the distinct order-by columns.
func (info *Info) OrderByColumns() []ColumnUse { return dedupCols(info.OrderBy) }

// AvgFilterJoinSelectivity returns Sel(q): the mean selectivity across the
// query's filter and join predicates, used by the utility estimate
// Δ(q) = (1 − Sel(q))·C(q) (Section 4.1). Returns 1 when the query has no
// such predicates (no potential for index-driven reduction).
func (info *Info) AvgFilterJoinSelectivity() float64 {
	var sum float64
	var n int
	for _, f := range info.Filters {
		sum += f.Selectivity
		n++
	}
	for _, j := range info.Joins {
		sum += j.Selectivity
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

func filterCols(fs []FilterPredicate) []ColumnUse {
	out := make([]ColumnUse, len(fs))
	for i, f := range fs {
		out[i] = f.ColumnUse
	}
	return out
}

func dedupCols(in []ColumnUse) []ColumnUse {
	seen := map[string]bool{}
	var out []ColumnUse
	for _, c := range in {
		k := strings.ToLower(c.Key())
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}
