package workload

import (
	"errors"
	"strings"
	"testing"
)

// FuzzSplitStatements checks the script splitter on arbitrary input: it
// must never panic, failures must carry an in-range position, and on
// success the statements must survive a join/re-split round trip.
func FuzzSplitStatements(f *testing.F) {
	seeds := []string{
		"SELECT * FROM orders WHERE o_custkey = 1;",
		"SELECT 'a;b' FROM t; -- c;d\nSELECT 2",
		"/* block; */ SELECT 1;\nSELECT 'it''s';",
		"SELECT '--' FROM t; SELECT '/*' FROM u;",
		";;;",
		"",
		"-- only a comment\n",
		"SELECT 'unterminated",
		"/* unterminated",
		"SELECT * FROM a; SELECT * FROM b;\r\nSELECT * FROM c",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, script string) {
		stmts, err := SplitStatements(script)
		if err != nil {
			var se *ScriptError
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *ScriptError", err)
			}
			if se.Offset < 0 || se.Offset >= len(script) {
				t.Fatalf("offset %d out of range for %d-byte script", se.Offset, len(script))
			}
			if se.Line < 1 || se.Column < 1 {
				t.Fatalf("position line %d col %d not 1-based", se.Line, se.Column)
			}
			return
		}
		for _, s := range stmts {
			if strings.TrimSpace(s) != s || s == "" {
				t.Fatalf("statement not trimmed: %q", s)
			}
		}
		// Join and re-split: comments are stripped and every literal closed,
		// so the statements themselves must round-trip exactly.
		again, err := SplitStatements(strings.Join(stmts, ";\n"))
		if err != nil {
			t.Fatalf("re-split failed: %v (stmts %q)", err, stmts)
		}
		if len(again) != len(stmts) {
			t.Fatalf("round trip changed count: %d -> %d (%q vs %q)", len(stmts), len(again), stmts, again)
		}
		for i := range stmts {
			if again[i] != stmts[i] {
				t.Fatalf("round trip changed statement %d: %q -> %q", i, stmts[i], again[i])
			}
		}
	})
}
