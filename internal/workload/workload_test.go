package workload

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestNewWorkloadAndStats(t *testing.T) {
	cat := tpchMiniCatalog()
	w, err := New(cat, []string{
		"SELECT * FROM orders WHERE o_custkey = 1",
		"SELECT * FROM orders WHERE o_custkey = 2",
		"SELECT * FROM customer WHERE c_nationkey = 7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("len = %d", w.Len())
	}
	if w.NumTemplates() != 2 {
		t.Fatalf("templates = %d", w.NumTemplates())
	}
	if w.TablesReferenced() != 2 {
		t.Fatalf("tables = %d", w.TablesReferenced())
	}
	counts := w.TemplateCounts()
	var maxCount int
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount != 2 {
		t.Fatalf("max template count = %d", maxCount)
	}
}

func TestNewWorkloadParseError(t *testing.T) {
	if _, err := New(tpchMiniCatalog(), []string{"NOT SQL"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestTotalCostAndSubset(t *testing.T) {
	cat := tpchMiniCatalog()
	w, err := New(cat, []string{
		"SELECT * FROM orders",
		"SELECT * FROM customer",
		"SELECT * FROM lineitem",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range w.Queries {
		q.Cost = float64((i + 1) * 100)
	}
	if w.TotalCost() != 600 {
		t.Fatalf("total = %f", w.TotalCost())
	}
	sub := w.Subset([]int{2, 0, 99})
	if sub.Len() != 2 || sub.Queries[0].ID != 2 {
		t.Fatalf("subset = %+v", sub.Queries)
	}
	if sub.TotalCost() != 400 {
		t.Fatalf("subset total = %f", sub.TotalCost())
	}
}

func TestFingerprintTemplates(t *testing.T) {
	a := Fingerprint("SELECT * FROM orders WHERE o_custkey = 17")
	b := Fingerprint("select  *  from ORDERS where O_CUSTKEY=42")
	if a != b {
		t.Fatalf("fingerprints differ:\n%q\n%q", a, b)
	}
	c := Fingerprint("SELECT * FROM orders WHERE o_custkey = 17 AND o_totalprice > 5")
	if a == c {
		t.Fatal("different shapes must differ")
	}
	d := Fingerprint("SELECT * FROM orders WHERE o_comment LIKE 'a%'")
	e := Fingerprint("SELECT * FROM orders WHERE o_comment LIKE 'zzz%'")
	if d != e {
		t.Fatal("string literals should normalise")
	}
	if !strings.Contains(Fingerprint("@@garbage@@"), "garbage") {
		t.Fatal("fallback fingerprint should preserve text")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cat := tpchMiniCatalog()
	w, err := New(cat, []string{
		"SELECT * FROM orders WHERE o_custkey = 1",
		"SELECT * FROM customer WHERE c_nationkey = 7",
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Queries[0].Cost = 123.5
	w.Queries[1].Cost = 7.25
	w.Queries[1].Weight = 3

	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := Load(cat, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Len() != 2 {
		t.Fatalf("len = %d", w2.Len())
	}
	if w2.Queries[0].Cost != 123.5 || w2.Queries[1].Cost != 7.25 {
		t.Fatal("costs lost")
	}
	if w2.Queries[0].Weight != 1 || w2.Queries[1].Weight != 3 {
		t.Fatalf("weights = %f, %f", w2.Queries[0].Weight, w2.Queries[1].Weight)
	}
	if w2.Queries[0].Info == nil || len(w2.Queries[0].Info.Filters) != 1 {
		t.Fatal("loaded queries must be analysed")
	}
}

func TestLoadBadJSON(t *testing.T) {
	if _, err := Load(tpchMiniCatalog(), strings.NewReader("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := Load(tpchMiniCatalog(), strings.NewReader(`[{"sql":"BROKEN","cost":1}]`)); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestPredKindString(t *testing.T) {
	kinds := []PredKind{PredEq, PredRange, PredIn, PredLike, PredNull}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "?" || seen[s] {
			t.Fatalf("bad kind string %q", s)
		}
		seen[s] = true
	}
	if PredKind(42).String() != "?" {
		t.Fatal("unknown kind should stringify to ?")
	}
}

func TestColumnUseKey(t *testing.T) {
	cu := ColumnUse{Table: "orders", Column: "o_custkey"}
	if cu.Key() != "orders.o_custkey" {
		t.Fatalf("key = %q", cu.Key())
	}
}

func TestSplitStatements(t *testing.T) {
	script := `
-- a comment; with a semicolon
SELECT * FROM orders WHERE o_custkey = 1;
/* block; comment */
SELECT 'a;b' FROM customer;  -- trailing
SELECT * FROM orders WHERE o_comment = 'it''s; fine';

SELECT 1`
	stmts, err := SplitStatements(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("stmts = %d: %q", len(stmts), stmts)
	}
	if !strings.Contains(stmts[1], "'a;b'") {
		t.Fatalf("semicolon in string split: %q", stmts[1])
	}
	if !strings.Contains(stmts[2], "it''s; fine") {
		t.Fatalf("escaped quote mishandled: %q", stmts[2])
	}
}

func TestSplitStatementsUnterminated(t *testing.T) {
	cases := []struct {
		script   string
		wantMsg  string
		wantLine int
		wantCol  int
	}{
		{"SELECT 'abc", "unterminated string literal", 1, 8},
		{"SELECT 1;\nSELECT 'it''s open", "unterminated string literal", 2, 8},
		{"SELECT 1; /* never closed", "unterminated block comment", 1, 11},
		{"SELECT 1;\n/* open\nacross lines", "unterminated block comment", 2, 1},
		{"SELECT '", "unterminated string literal", 1, 8},
		{"/*", "unterminated block comment", 1, 1},
		{"/**", "unterminated block comment", 1, 1},
	}
	for _, c := range cases {
		_, err := SplitStatements(c.script)
		if err == nil {
			t.Fatalf("%q: expected error", c.script)
		}
		var se *ScriptError
		if !errors.As(err, &se) {
			t.Fatalf("%q: error %v is not a *ScriptError", c.script, err)
		}
		if !strings.Contains(se.Msg, c.wantMsg) {
			t.Errorf("%q: msg = %q, want %q", c.script, se.Msg, c.wantMsg)
		}
		if se.Line != c.wantLine || se.Column != c.wantCol {
			t.Errorf("%q: position = line %d col %d, want line %d col %d",
				c.script, se.Line, se.Column, c.wantLine, c.wantCol)
		}
		if se.Offset < 0 || se.Offset >= len(c.script) {
			t.Errorf("%q: offset %d out of range", c.script, se.Offset)
		}
	}
}

func TestLoadRejectsInvalidNumbers(t *testing.T) {
	cat := tpchMiniCatalog()
	cases := []struct {
		name string
		json string
		want string
	}{
		{"negative cost", `[{"sql":"SELECT * FROM orders","cost":-1}]`, "entry 0"},
		{"negative weight", `[{"sql":"SELECT * FROM orders","cost":1},{"sql":"SELECT * FROM orders","cost":1,"weight":-2}]`, "entry 1"},
	}
	for _, c := range cases {
		_, err := Load(cat, strings.NewReader(c.json))
		if err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q should name %s", c.name, err, c.want)
		}
	}
	// Zero cost and zero weight stay legal (weight 0 defaults to 1).
	w, err := Load(cat, strings.NewReader(`[{"sql":"SELECT * FROM orders","cost":0}]`))
	if err != nil {
		t.Fatal(err)
	}
	if w.Queries[0].Weight != 1 {
		t.Fatalf("weight = %f", w.Queries[0].Weight)
	}
}

func TestLoadSQLScript(t *testing.T) {
	cat := tpchMiniCatalog()
	script := `SELECT * FROM orders WHERE o_custkey = 1;
		SELECT c_custkey FROM customer WHERE c_nationkey = 2;`
	w, err := LoadSQLScript(cat, strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}
	if w.Queries[0].Info == nil {
		t.Fatal("script queries must be analysed")
	}
	if _, err := LoadSQLScript(cat, strings.NewReader("NOT SQL;")); err == nil {
		t.Fatal("bad statement should fail")
	}
}
