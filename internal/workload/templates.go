package workload

import (
	"sync/atomic"

	"isum/internal/telemetry"
)

// TemplateGroup is one distinct template and the positions of its
// instances in the workload, in ascending order. Groups are listed in
// first-occurrence order, so the grouping is a pure function of the
// workload — no map-iteration randomness.
type TemplateGroup struct {
	// TemplateID is the shared fingerprint (see Fingerprint).
	TemplateID string
	// Indices are the instances' positions in Workload.Queries, ascending.
	Indices []int
}

// templateIndex is the cached per-workload template aggregation. It is
// (re)built lazily on first use and considered valid while the workload
// length is unchanged; Append invalidates it explicitly. The compression
// paths (template hash-consing, recalibrated weighing) query templates
// once per build, so caching turns repeated O(n) scans into one.
type templateIndex struct {
	built  int // len(Queries) when the index was built
	counts map[string]int
	groups []TemplateGroup
}

// templates returns the cached template index, rebuilding it when the
// workload has grown or shrunk since it was built. Not safe for
// concurrent first use: callers that share a workload across goroutines
// must touch TemplateCounts/TemplateGroups once before fanning out (the
// compression pipeline does this on the orchestration goroutine).
func (w *Workload) templates() *templateIndex {
	if w.tidx != nil && w.tidx.built == len(w.Queries) {
		return w.tidx
	}
	idx := &templateIndex{
		built:  len(w.Queries),
		counts: make(map[string]int),
	}
	pos := make(map[string]int)
	for i, q := range w.Queries {
		idx.counts[q.TemplateID]++
		g, ok := pos[q.TemplateID]
		if !ok {
			g = len(idx.groups)
			pos[q.TemplateID] = g
			idx.groups = append(idx.groups, TemplateGroup{TemplateID: q.TemplateID})
		}
		idx.groups[g].Indices = append(idx.groups[g].Indices, i)
	}
	w.tidx = idx
	return idx
}

// TemplateCounts returns the number of queries per template. The map is
// cached on the workload and shared between calls — treat it as
// read-only.
func (w *Workload) TemplateCounts() map[string]int {
	return w.templates().counts
}

// NumTemplates returns the number of distinct templates.
func (w *Workload) NumTemplates() int { return len(w.templates().counts) }

// TemplateGroups returns the distinct templates in first-occurrence
// order, each with its instances' positions ascending. The slice is
// cached on the workload and shared between calls — treat it as
// read-only. This is the grouping the hash-consing path collapses a
// workload by: one state per group, weights aggregated over
// group.Indices.
func (w *Workload) TemplateGroups() []TemplateGroup {
	return w.templates().groups
}

// Append adds queries to the workload and invalidates the cached
// template index. Mutating w.Queries directly is still possible (the
// cache re-validates against the length), but Append also invalidates
// on same-length replacement patterns and is the supported way to grow
// a workload that has already been template-indexed.
func (w *Workload) Append(qs ...*Query) {
	w.Queries = append(w.Queries, qs...)
	w.tidx = nil
}

// tmplMetrics are the package's registered telemetry handles; nil when
// telemetry is disabled (the default).
type tmplMetrics struct {
	consed  *telemetry.Counter // workload/templates/consed: distinct templates interned by hash-consing
	deduped *telemetry.Counter // workload/templates/deduped: duplicate-template queries collapsed away
}

var wtel atomic.Pointer[tmplMetrics]

// SetTelemetry registers the package's metrics on reg; nil disables
// them. Call once at startup, alongside parallel.SetTelemetry and
// features.SetTelemetry.
func SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		wtel.Store(nil)
		return
	}
	wtel.Store(&tmplMetrics{
		consed:  reg.Counter("workload/templates/consed"),
		deduped: reg.Counter("workload/templates/deduped"),
	})
}

// RecordConsed reports one hash-consing pass: `templates` distinct
// template states built and `deduped` duplicate queries collapsed into
// them. No-op while telemetry is disabled.
func RecordConsed(templates, deduped int) {
	if m := wtel.Load(); m != nil {
		m.consed.Add(int64(templates))
		m.deduped.Add(int64(deduped))
	}
}
