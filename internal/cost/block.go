package cost

import (
	"math"
	"sort"
	"strings"

	"isum/internal/catalog"
	"isum/internal/index"
	"isum/internal/workload"
)

// accessPlan is the chosen single-table access path.
type accessPlan struct {
	table    *catalog.Table
	use      workload.TableUse
	cost     float64
	outRows  float64 // rows after local filters
	idx      *index.Index
	seekSel  float64  // fraction of the table reached via the seek
	covering bool     // no base-table lookup needed
	order    []string // column order the access path delivers (lower-cased)
}

// blockPlanner plans one SELECT block against a configuration.
type blockPlanner struct {
	cat *catalog.Catalog
	cfg *index.Configuration
	blk *workload.Block
	par Params

	// floorTable, when non-empty (lower-cased), switches the planner into
	// the structural-floor mode used by the elision layer (elide.go): the
	// named table's access and index-nested-loop costs are replaced by
	// lower bounds that hold for *any* hypothetical index on it, so the
	// block total lower-bounds the cost under every configuration whose
	// indexes all live on that table. Empty (the default) leaves the
	// reference planner untouched.
	floorTable string

	// filtersByTable groups the block's filter predicates per base table,
	// keeping the most selective predicate per column for seek matching.
	filtersByTable map[string][]workload.FilterPredicate
}

func planBlock(cat *catalog.Catalog, cfg *index.Configuration, blk *workload.Block, par Params) float64 {
	total, _ := planBlockParts(cat, cfg, blk, par)
	return total
}

// planBlockParts is planBlock, additionally reporting the access+join
// subtotal ("aj") accumulated before the aggregation/sort tail. The total
// is computed by exactly the same operations in the same order as the
// original single-value planner, so callers that only use total are
// bitwise-unchanged; aj is read mid-accumulation, not re-summed. The
// elision layer builds configuration cost bounds from aj because it is
// monotone non-increasing in the configuration (more indexes can only
// cheapen access paths and join steps; the join order itself depends only
// on configuration-independent cardinalities), while the tail is not.
func planBlockParts(cat *catalog.Catalog, cfg *index.Configuration, blk *workload.Block, par Params) (float64, float64) {
	p := &blockPlanner{cat: cat, cfg: cfg, blk: blk, par: par}
	p.groupFilters()

	// Deduplicate table occurrences by name (self-joins cost the same access
	// path once per occurrence).
	var plans []*accessPlan
	for _, tu := range blk.Tables {
		t := cat.Table(tu.Table)
		if t == nil {
			continue
		}
		plans = append(plans, p.bestAccess(tu, t))
	}
	if len(plans) == 0 {
		return p.par.CPUTuple, p.par.CPUTuple // constant block, e.g. SELECT 1
	}

	total, rows, singleOrder := p.planJoins(plans)
	aj := total

	// Aggregation.
	groups := rows
	if len(blk.GroupBy) > 0 {
		groups = p.estimateGroups(rows)
		if len(plans) == 1 && orderCovers(singleOrder, blk.GroupBy) {
			total += p.par.streamAggCost(rows)
		} else {
			total += p.par.hashAggCost(rows, groups)
		}
		rows = groups
	} else if blk.HasAgg {
		total += rows * p.par.CPUOperator
		rows = 1
	}
	if blk.Distinct && len(blk.GroupBy) == 0 {
		total += p.par.hashAggCost(rows, rows)
	}

	// Ordering.
	if len(blk.OrderBy) > 0 {
		avoided := len(plans) == 1 && len(blk.GroupBy) == 0 && orderCovers(singleOrder, blk.OrderBy)
		if !avoided {
			total += p.par.sortCost(rows, p.outputWidth())
		}
	}
	return total, aj
}

// blockTailBounds bounds the aggregation/sort tail of a block across all
// possible configurations. The tail's term magnitudes are configuration-
// independent (join output rows and group estimates depend only on base
// statistics); only binary choices — stream vs hash aggregation, sort
// avoided vs paid — depend on the delivered order, so the bounds take the
// min/max over the reachable choices. Used by the elision layer; see
// DESIGN.md §16.
func blockTailBounds(cat *catalog.Catalog, blk *workload.Block, par Params) (minTail, maxTail float64) {
	p := &blockPlanner{cat: cat, cfg: nil, blk: blk, par: par}
	p.groupFilters()
	var plans []*accessPlan
	for _, tu := range blk.Tables {
		t := cat.Table(tu.Table)
		if t == nil {
			continue
		}
		plans = append(plans, p.bestAccess(tu, t))
	}
	if len(plans) == 0 {
		return 0, 0
	}
	_, rows, _ := p.planJoins(plans)
	single := len(plans) == 1

	if len(blk.GroupBy) > 0 {
		groups := p.estimateGroups(rows)
		hash := par.hashAggCost(rows, groups)
		if single {
			// A covering order can enable stream aggregation.
			stream := par.streamAggCost(rows)
			minTail += math.Min(stream, hash)
			maxTail += math.Max(stream, hash)
		} else {
			minTail += hash
			maxTail += hash
		}
		rows = groups
	} else if blk.HasAgg {
		c := rows * par.CPUOperator
		minTail += c
		maxTail += c
		rows = 1
	}
	if blk.Distinct && len(blk.GroupBy) == 0 {
		c := par.hashAggCost(rows, rows)
		minTail += c
		maxTail += c
	}
	if len(blk.OrderBy) > 0 {
		s := par.sortCost(rows, p.outputWidth())
		if !(single && len(blk.GroupBy) == 0) {
			// Sort can never be avoided: multi-table plans deliver no
			// order, and a group-by consumes the single-table order.
			minTail += s
		}
		maxTail += s
	}
	return minTail, maxTail
}

// floorBlockAJ is the structural access+join floor for a block: the
// access+join subtotal under the empty configuration, except that the
// named table's access and inner-join costs are replaced by bounds valid
// for ANY index on it. The result lower-bounds the block's access+join
// subtotal under every configuration whose indexes are all on that table
// (other tables keep their empty-configuration plans, which such
// configurations cannot change).
func floorBlockAJ(cat *catalog.Catalog, blk *workload.Block, par Params, floorTable string) float64 {
	p := &blockPlanner{cat: cat, cfg: nil, blk: blk, par: par, floorTable: floorTable}
	p.groupFilters()
	var plans []*accessPlan
	for _, tu := range blk.Tables {
		t := cat.Table(tu.Table)
		if t == nil {
			continue
		}
		plans = append(plans, p.bestAccess(tu, t))
	}
	if len(plans) == 0 {
		return p.par.CPUTuple
	}
	aj, _, _ := p.planJoins(plans)
	return aj
}

func (p *blockPlanner) groupFilters() {
	p.filtersByTable = make(map[string][]workload.FilterPredicate)
	for _, f := range p.blk.Filters {
		p.filtersByTable[f.Table] = append(p.filtersByTable[f.Table], f)
	}
}

// localSelectivity is the combined selectivity of a table's filters.
func localSelectivity(filters []workload.FilterPredicate) float64 {
	s := 1.0
	for _, f := range filters {
		s *= f.Selectivity
	}
	if s < 1e-9 {
		s = 1e-9
	}
	return s
}

// neededColumns returns the (lower-cased) columns of table needed anywhere in
// the block, and whether the block needs every column (SELECT *).
func (p *blockPlanner) neededColumns(table string) ([]string, bool) {
	return blockNeededColumns(p.blk, table)
}

// blockNeededColumns is neededColumns as a standalone function, shared
// with the elision layer's structural relevance test (IndexRelevant).
func blockNeededColumns(blk *workload.Block, table string) ([]string, bool) {
	if blk.SelectStar {
		return nil, true
	}
	seen := map[string]bool{}
	add := func(cu workload.ColumnUse) {
		if cu.Table == table {
			seen[strings.ToLower(cu.Column)] = true
		}
	}
	for _, f := range blk.Filters {
		add(f.ColumnUse)
	}
	for _, j := range blk.Joins {
		add(j.Left)
		add(j.Right)
	}
	for _, c := range blk.GroupBy {
		add(c)
	}
	for _, c := range blk.OrderBy {
		add(c)
	}
	for _, c := range blk.Projected {
		add(c)
	}
	cols := make([]string, 0, len(seen))
	for c := range seen {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols, false
}

// bestAccess picks the cheapest access path for one table occurrence.
func (p *blockPlanner) bestAccess(tu workload.TableUse, t *catalog.Table) *accessPlan {
	filters := p.filtersByTable[tu.Table]
	localSel := localSelectivity(filters)
	outRows := rowsAfter(float64(t.RowCount), localSel)

	if p.floorTable != "" && p.floorTable == strings.ToLower(tu.Table) {
		// Structural floor: cheaper than any reachable access path. A seek
		// costs at least leaf·seekSel·SeqPage + matchedRows·CPUTuple with
		// leaf ≥ 1, seekSel ≥ localSel and matchedRows ≥ outRows; a
		// covering scan at least SeqPage + RowCount·CPUTuple; a heap scan
		// exactly scanCost.
		c := localSel*p.par.SeqPage + outRows*p.par.CPUTuple
		if sc := p.par.scanCost(t); sc < c {
			c = sc
		}
		return &accessPlan{table: t, use: tu, cost: c, outRows: outRows}
	}

	best := &accessPlan{
		table:   t,
		use:     tu,
		cost:    p.par.scanCost(t),
		outRows: outRows,
	}
	needCols, needAll := p.neededColumns(tu.Table)

	// Most selective predicate per column, for seek matching.
	bestPred := map[string]workload.FilterPredicate{}
	for _, f := range filters {
		c := strings.ToLower(f.Column)
		if cur, ok := bestPred[c]; !ok || f.Selectivity < cur.Selectivity {
			bestPred[c] = f
		}
	}

	for _, ix := range p.cfg.ForTable(tu.Table) {
		ix := ix
		covering := !needAll && ix.Covers(needCols)
		leaf := leafPages(t, ix)

		// Match a seekable key prefix.
		seekSel := 1.0
		matched := 0
		for _, key := range ix.Keys {
			f, ok := bestPred[strings.ToLower(key)]
			if !ok {
				break
			}
			if f.SargableEq {
				seekSel *= f.Selectivity
				matched++
				continue
			}
			if f.Kind == workload.PredRange || f.Kind == workload.PredLike {
				seekSel *= f.Selectivity
				matched++
			}
			break // range terminates the seekable prefix
		}

		var c float64
		switch {
		case matched > 0:
			matchedRows := rowsAfter(float64(t.RowCount), seekSel)
			c = p.par.Seek + leaf*seekSel*p.par.SeqPage + matchedRows*p.par.CPUTuple
			if !covering {
				c += matchedRows * p.par.RandPage
			}
		case covering:
			// Covering scan of the (narrower) index.
			c = leaf*p.par.SeqPage + float64(t.RowCount)*p.par.CPUTuple
		default:
			continue // index is useless for this block
		}
		if c < best.cost {
			keys := make([]string, len(ix.Keys))
			for i, k := range ix.Keys {
				keys[i] = strings.ToLower(k)
			}
			best = &accessPlan{
				table: t, use: tu, cost: c, outRows: outRows,
				idx: &ix, seekSel: seekSel, covering: covering, order: keys,
			}
		}
	}
	return best
}

// leafPages estimates the number of leaf pages in an index on t.
func leafPages(t *catalog.Table, ix index.Index) float64 {
	entry := 8
	for _, name := range ix.AllColumns() {
		if c := t.Column(name); c != nil {
			entry += c.Width()
		} else {
			entry += 8
		}
	}
	perPage := catalog.PageSizeBytes / entry
	if perPage < 1 {
		perPage = 1
	}
	pages := float64(t.RowCount) / float64(perPage)
	if pages < 1 {
		pages = 1
	}
	return pages
}

// planJoins performs a greedy left-deep join over the access plans and
// returns (cost, output rows, delivered order when single-table).
func (p *blockPlanner) planJoins(plans []*accessPlan) (float64, float64, []string) {
	if len(plans) == 1 {
		return plans[0].cost, plans[0].outRows, plans[0].order
	}

	// Start from the smallest filtered input.
	sort.Slice(plans, func(i, j int) bool {
		if plans[i].outRows != plans[j].outRows {
			return plans[i].outRows < plans[j].outRows
		}
		// Total order: equal-cardinality inputs tie-break on table name so
		// the join order (and thus the plan cost) cannot drift.
		return plans[i].use.Table < plans[j].use.Table
	})
	joined := map[string]bool{plans[0].use.Table: true}
	total := plans[0].cost
	rows := plans[0].outRows
	remaining := plans[1:]

	for len(remaining) > 0 {
		// Prefer a connected table; among connected, the one minimising the
		// joined cardinality.
		bestIdx := -1
		bestRows := math.Inf(1)
		bestConnected := false
		for i, pl := range remaining {
			sel, connected := p.joinSelWith(joined, pl.use.Table)
			outRows := rowsAfter(rows*pl.outRows, sel)
			if connected && !bestConnected {
				bestIdx, bestRows, bestConnected = i, outRows, true
				continue
			}
			if connected == bestConnected && outRows < bestRows {
				bestIdx, bestRows = i, outRows
			}
		}
		pl := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		sel, connected := p.joinSelWith(joined, pl.use.Table)

		if connected {
			total += p.joinStepCost(rows, pl, sel)
		} else {
			// Cross join: materialise the smaller side.
			total += pl.cost + rows*pl.outRows*p.par.CPUOperator
		}
		rows = rowsAfter(rows*pl.outRows, sel)
		joined[pl.use.Table] = true
	}
	return total, rows, nil
}

// joinSelWith returns the combined selectivity of all join predicates
// connecting the joined set with table, and whether any exist.
func (p *blockPlanner) joinSelWith(joined map[string]bool, table string) (float64, bool) {
	sel := 1.0
	connected := false
	for _, j := range p.blk.Joins {
		lIn, rIn := joined[j.Left.Table], joined[j.Right.Table]
		if (lIn && j.Right.Table == table) || (rIn && j.Left.Table == table) {
			sel *= j.Selectivity
			connected = true
		}
	}
	return sel, connected
}

// joinStepCost chooses between hash join and index-nested-loop join for
// bringing pl into a joined set of `outerRows` rows.
func (p *blockPlanner) joinStepCost(outerRows float64, pl *accessPlan, joinSel float64) float64 {
	// Hash join: access the inner fully, build on the smaller side.
	buildRows := math.Min(outerRows, pl.outRows)
	probeRows := math.Max(outerRows, pl.outRows)
	hash := pl.cost + buildRows*p.par.CPUOperator*p.par.HashBuild + probeRows*p.par.CPUOperator

	if p.floorTable != "" && p.floorTable == strings.ToLower(pl.use.Table) {
		// Structural floor for the inner side: any index-nested-loop probe
		// pays at least one random page plus per-match CPU; hash already
		// rides on the floored access cost.
		localSel := localSelectivity(p.filtersByTable[pl.use.Table])
		matchPerProbe := rowsAfter(float64(pl.table.RowCount)*joinSel*localSel, 1)
		inlFloor := outerRows * (p.par.RandPage + matchPerProbe*p.par.CPUTuple)
		return math.Min(hash, inlFloor)
	}

	// Index nested loop: needs an index whose leading key is one of the
	// inner table's join columns.
	inl := math.Inf(1)
	joinCols := p.innerJoinColumns(pl.use.Table)
	needCols, needAll := p.neededColumns(pl.use.Table)
	localSel := localSelectivity(p.filtersByTable[pl.use.Table])
	for _, ix := range p.cfg.ForTable(pl.use.Table) {
		lead := strings.ToLower(ix.LeadingKey())
		if !joinCols[lead] {
			continue
		}
		covering := !needAll && ix.Covers(needCols)
		// Matches per probe after the inner's own filters.
		matchPerProbe := rowsAfter(float64(pl.table.RowCount)*joinSel*localSel, 1)
		perProbe := p.par.RandPage // descend (mostly cached interior) + leaf
		if covering {
			perProbe += matchPerProbe * p.par.CPUTuple
		} else {
			perProbe += matchPerProbe * (p.par.RandPage + p.par.CPUTuple)
		}
		if c := outerRows * perProbe; c < inl {
			inl = c
		}
	}
	return math.Min(hash, inl)
}

// innerJoinColumns returns the join columns on table (lower-cased) across
// the block's join predicates.
func (p *blockPlanner) innerJoinColumns(table string) map[string]bool {
	out := map[string]bool{}
	for _, j := range p.blk.Joins {
		if j.Left.Table == table {
			out[strings.ToLower(j.Left.Column)] = true
		}
		if j.Right.Table == table {
			out[strings.ToLower(j.Right.Column)] = true
		}
	}
	return out
}

// estimateGroups estimates the number of groups as the capped product of the
// group-by columns' distinct counts.
func (p *blockPlanner) estimateGroups(rows float64) float64 {
	groups := 1.0
	for _, g := range p.blk.GroupBy {
		t := p.cat.Table(g.Table)
		if t == nil {
			continue
		}
		if c := t.Column(g.Column); c != nil && c.DistinctCount > 0 {
			groups *= float64(c.DistinctCount)
		} else {
			groups *= 100
		}
		if groups > rows {
			return rows
		}
	}
	if groups > rows {
		groups = rows
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}

// outputWidth estimates the sort row width for the block.
func (p *blockPlanner) outputWidth() int {
	w := 0
	for _, cu := range p.blk.Projected {
		if t := p.cat.Table(cu.Table); t != nil {
			if c := t.Column(cu.Column); c != nil {
				w += c.Width()
			}
		}
	}
	if w == 0 {
		w = 32
	}
	return w
}

// orderCovers reports whether the delivered order's prefix covers the
// requested columns (order-insensitive on the requested side: any
// permutation of a key prefix still allows streaming for group-by, and we
// accept the same approximation for order-by).
func orderCovers(order []string, want []workload.ColumnUse) bool {
	if len(order) < len(want) || len(want) == 0 {
		return false
	}
	prefix := map[string]bool{}
	for _, c := range order[:len(want)] {
		prefix[c] = true
	}
	for _, cu := range want {
		if !prefix[strings.ToLower(cu.Column)] {
			return false
		}
	}
	return true
}
