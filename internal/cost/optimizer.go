package cost

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"isum/internal/catalog"
	"isum/internal/index"
	"isum/internal/parallel"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

// cacheShardCount is the number of what-if cache shards. Shards are picked
// by a hash of the query text, so concurrent Cost calls contend only when
// they hit the same shard; 32 keeps contention negligible far past the
// worker counts the pipeline spawns. Must be a power of two.
const cacheShardCount = 32

// cacheShard is one lock-striped slice of the what-if cache.
type cacheShard struct {
	mu sync.RWMutex
	// entries is keyed by query text, then by the relevant-configuration
	// fingerprint, so copies of a Query (e.g. weighted compressed-workload
	// entries) share cost entries.
	entries map[string]map[string]float64
	// hits/misses are this shard's cache counters, registered in the
	// optimizer's telemetry registry as cost/cache/shardNN/{hits,misses}.
	hits   *telemetry.Counter
	misses *telemetry.Counter
}

// Optimizer estimates query costs against hypothetical index configurations
// — the "what-if" API of Section 2.1. It caches (query, relevant-config)
// pairs and counts invocations so the advisor can report optimizer-call
// statistics (Fig. 2).
//
// All methods are safe for concurrent use. The cache is sharded by query
// text and the counters are atomics, so parallel callers only contend when
// two queries hash to the same shard. Cost values are pure functions of
// (query, configuration), so concurrent duplicate misses compute the same
// value; the only concurrency artefact is that Plans may count such a
// duplicate computation twice.
type Optimizer struct {
	cat *catalog.Catalog
	par Params
	reg *telemetry.Registry

	calls     *telemetry.Counter // cost/whatif/calls: invocations (hits included)
	plans     *telemetry.Counter // cost/whatif/plans: plan computations (misses)
	costNanos *telemetry.Counter // cost/whatif/cost_nanos (Fig. 2's optimizer share)

	shards [cacheShardCount]cacheShard
}

// NewOptimizer returns a what-if optimizer over the catalog.
func NewOptimizer(cat *catalog.Catalog) *Optimizer {
	return NewOptimizerWithParams(cat, DefaultParams())
}

// NewOptimizerWithParams returns an optimizer with custom cost-model
// constants — the ablation/calibration path.
func NewOptimizerWithParams(cat *catalog.Catalog, par Params) *Optimizer {
	return NewOptimizerWithTelemetry(cat, par, nil)
}

// NewOptimizerWithTelemetry registers the optimizer's metrics — what-if
// call/plan counters, cumulative cost time, per-shard cache hits/misses —
// in reg, so a pipeline-wide registry attributes what-if work to phases.
// A nil reg gives the optimizer a private registry: the counters behind
// Calls/Plans/CostTime are always live, at the cost of one atomic add
// each, exactly as the pre-telemetry fields were.
//
// Optimizers sharing a registry share these metrics; when per-optimizer
// attribution matters, give each its own registry.
func NewOptimizerWithTelemetry(cat *catalog.Catalog, par Params, reg *telemetry.Registry) *Optimizer {
	if reg == nil {
		reg = telemetry.New()
	}
	o := &Optimizer{
		cat:       cat,
		par:       par,
		reg:       reg,
		calls:     reg.Counter("cost/whatif/calls"),
		plans:     reg.Counter("cost/whatif/plans"),
		costNanos: reg.Counter("cost/whatif/cost_nanos"),
	}
	for i := range o.shards {
		o.shards[i].entries = make(map[string]map[string]float64)
		o.shards[i].hits = reg.Counter(fmt.Sprintf("cost/cache/shard%02d/hits", i))
		o.shards[i].misses = reg.Counter(fmt.Sprintf("cost/cache/shard%02d/misses", i))
	}
	return o
}

// Telemetry returns the registry holding the optimizer's metrics (never
// nil; private unless one was supplied at construction).
func (o *Optimizer) Telemetry() *telemetry.Registry { return o.reg }

// Params returns the optimizer's cost-model constants.
func (o *Optimizer) Params() Params { return o.par }

// Catalog returns the optimizer's catalog.
func (o *Optimizer) Catalog() *catalog.Catalog { return o.cat }

// shardFor picks the cache shard for a query text (FNV-1a).
func (o *Optimizer) shardFor(text string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(text); i++ {
		h ^= uint64(text[i])
		h *= prime64
	}
	return &o.shards[h&(cacheShardCount-1)]
}

// Cost returns the estimated cost of q under the given (hypothetical)
// configuration. A nil configuration means the current design (no secondary
// indexes). Safe for concurrent use.
func (o *Optimizer) Cost(q *workload.Query, cfg *index.Configuration) float64 {
	start := time.Now()
	defer func() {
		o.costNanos.Add(time.Since(start).Nanoseconds())
	}()
	key := o.relevantFingerprint(q, cfg)
	o.calls.Add(1)

	sh := o.shardFor(q.Text)
	sh.mu.RLock()
	if perQ, ok := sh.entries[q.Text]; ok {
		if c, ok := perQ[key]; ok {
			sh.mu.RUnlock()
			sh.hits.Inc()
			return c
		}
	}
	sh.mu.RUnlock()

	sh.misses.Inc()
	o.plans.Add(1)
	c := o.computeCost(q, cfg)

	sh.mu.Lock()
	perQ, ok := sh.entries[q.Text]
	if !ok {
		perQ = make(map[string]float64)
		sh.entries[q.Text] = perQ
	}
	perQ[key] = c
	sh.mu.Unlock()
	return c
}

// WorkloadCost returns the weighted cost Σ w(q)·C(q) of the workload under
// the configuration, fanning the per-query what-if calls across every core.
func (o *Optimizer) WorkloadCost(w *workload.Workload, cfg *index.Configuration) float64 {
	return o.WorkloadCostN(w, cfg, 0)
}

// WorkloadCostN is WorkloadCost with an explicit parallelism (0 =
// GOMAXPROCS, 1 = serial). The weighted sum is reduced in input order, so
// the result is bit-identical at any parallelism.
func (o *Optimizer) WorkloadCostN(w *workload.Workload, cfg *index.Configuration, parallelism int) float64 {
	return parallel.MapReduce(parallel.Workers(parallelism), len(w.Queries),
		func(i int) float64 {
			q := w.Queries[i]
			wt := q.Weight
			if wt <= 0 {
				wt = 1
			}
			return wt * o.Cost(q, cfg)
		},
		0.0,
		func(acc, v float64) float64 { return acc + v })
}

// FillCosts sets each query's Cost field to its cost under the current
// physical design (empty configuration) — producing the "input workload
// with optimizer estimated costs" the paper's problem statement assumes.
// The what-if calls fan out across every core.
func (o *Optimizer) FillCosts(w *workload.Workload) {
	o.FillCostsN(w, 0)
}

// FillCostsN is FillCosts with an explicit parallelism (0 = GOMAXPROCS,
// 1 = serial). Costs are computed in parallel but assigned serially, so
// workloads that alias the same *Query stay race-free.
func (o *Optimizer) FillCostsN(w *workload.Workload, parallelism int) {
	costs := parallel.Map(parallel.Workers(parallelism), len(w.Queries),
		func(i int) float64 { return o.Cost(w.Queries[i], nil) })
	for i, q := range w.Queries {
		q.Cost = costs[i]
	}
}

// Calls returns the number of what-if invocations so far.
func (o *Optimizer) Calls() int64 { return o.calls.Value() }

// Plans returns the number of cache-miss plan computations so far.
func (o *Optimizer) Plans() int64 { return o.plans.Value() }

// CostTime returns the cumulative wall time spent inside Cost — the
// "time on optimizer calls" series of Fig. 2a. Under concurrency this is
// summed per call, so it can exceed wall-clock time.
func (o *Optimizer) CostTime() time.Duration {
	return time.Duration(o.costNanos.Value())
}

// CacheStats sums the per-shard cache counters: hits are calls answered
// from the what-if cache, misses are plan computations.
func (o *Optimizer) CacheStats() (hits, misses int64) {
	for i := range o.shards {
		hits += o.shards[i].hits.Value()
		misses += o.shards[i].misses.Value()
	}
	return hits, misses
}

// ResetCounters zeroes the call counters, timers, and per-shard cache
// counters (the cache itself is retained) — the multi-run experiment
// hook, so harness invocations report per-run rather than cumulative
// what-if statistics. When the optimizer shares a registry, only its own
// metrics are reset; use Registry.Reset to clear everything.
func (o *Optimizer) ResetCounters() {
	o.calls.Reset()
	o.plans.Reset()
	o.costNanos.Reset()
	for i := range o.shards {
		o.shards[i].hits.Reset()
		o.shards[i].misses.Reset()
	}
}

// computeCost plans every block of the query and sums their costs.
func (o *Optimizer) computeCost(q *workload.Query, cfg *index.Configuration) float64 {
	if q.Info == nil {
		return 0
	}
	var total float64
	for _, blk := range q.Info.Blocks {
		total += planBlock(o.cat, cfg, blk, o.par)
	}
	if total <= 0 {
		total = o.par.CPUTuple
	}
	return total
}

// relevantFingerprint narrows the configuration to indexes on tables the
// query references, so cache entries are reused across configurations that
// differ only on irrelevant tables — the same trick commercial advisors use
// to suppress redundant what-if calls.
func (o *Optimizer) relevantFingerprint(q *workload.Query, cfg *index.Configuration) string {
	if cfg == nil || cfg.Len() == 0 || q.Info == nil {
		return ""
	}
	var ids []string
	for _, t := range q.Info.Tables {
		for _, ix := range cfg.ForTable(t) {
			ids = append(ids, ix.ID())
		}
	}
	if len(ids) == 0 {
		return ""
	}
	sort.Strings(ids)
	return strings.Join(ids, ";")
}
