package cost

import (
	"sort"
	"strings"
	"sync"
	"time"

	"isum/internal/catalog"
	"isum/internal/index"
	"isum/internal/workload"
)

// Optimizer estimates query costs against hypothetical index configurations
// — the "what-if" API of Section 2.1. It caches (query, relevant-config)
// pairs and counts invocations so the advisor can report optimizer-call
// statistics (Fig. 2).
type Optimizer struct {
	cat *catalog.Catalog
	par Params

	mu        sync.Mutex
	calls     int64 // what-if invocations (cache hits included)
	plans     int64 // actual plan computations (cache misses)
	costNanos int64 // wall time spent inside Cost (Fig. 2's optimizer share)
	// cache is keyed by query text, so copies of a Query (e.g. weighted
	// compressed-workload entries) share cost entries.
	cache map[string]map[string]float64
}

// NewOptimizer returns a what-if optimizer over the catalog.
func NewOptimizer(cat *catalog.Catalog) *Optimizer {
	return NewOptimizerWithParams(cat, DefaultParams())
}

// NewOptimizerWithParams returns an optimizer with custom cost-model
// constants — the ablation/calibration path.
func NewOptimizerWithParams(cat *catalog.Catalog, par Params) *Optimizer {
	return &Optimizer{
		cat:   cat,
		par:   par,
		cache: make(map[string]map[string]float64),
	}
}

// Params returns the optimizer's cost-model constants.
func (o *Optimizer) Params() Params { return o.par }

// Catalog returns the optimizer's catalog.
func (o *Optimizer) Catalog() *catalog.Catalog { return o.cat }

// Cost returns the estimated cost of q under the given (hypothetical)
// configuration. A nil configuration means the current design (no secondary
// indexes).
func (o *Optimizer) Cost(q *workload.Query, cfg *index.Configuration) float64 {
	start := time.Now()
	defer func() {
		o.mu.Lock()
		o.costNanos += time.Since(start).Nanoseconds()
		o.mu.Unlock()
	}()
	key := o.relevantFingerprint(q, cfg)

	o.mu.Lock()
	o.calls++
	if perQ, ok := o.cache[q.Text]; ok {
		if c, ok := perQ[key]; ok {
			o.mu.Unlock()
			return c
		}
	}
	o.plans++
	o.mu.Unlock()

	c := o.computeCost(q, cfg)

	o.mu.Lock()
	perQ, ok := o.cache[q.Text]
	if !ok {
		perQ = make(map[string]float64)
		o.cache[q.Text] = perQ
	}
	perQ[key] = c
	o.mu.Unlock()
	return c
}

// WorkloadCost returns the weighted cost Σ w(q)·C(q) of the workload under
// the configuration.
func (o *Optimizer) WorkloadCost(w *workload.Workload, cfg *index.Configuration) float64 {
	var total float64
	for _, q := range w.Queries {
		wt := q.Weight
		if wt <= 0 {
			wt = 1
		}
		total += wt * o.Cost(q, cfg)
	}
	return total
}

// FillCosts sets each query's Cost field to its cost under the current
// physical design (empty configuration) — producing the "input workload
// with optimizer estimated costs" the paper's problem statement assumes.
func (o *Optimizer) FillCosts(w *workload.Workload) {
	for _, q := range w.Queries {
		q.Cost = o.Cost(q, nil)
	}
}

// Calls returns the number of what-if invocations so far.
func (o *Optimizer) Calls() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.calls
}

// Plans returns the number of cache-miss plan computations so far.
func (o *Optimizer) Plans() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.plans
}

// CostTime returns the cumulative wall time spent inside Cost — the
// "time on optimizer calls" series of Fig. 2a.
func (o *Optimizer) CostTime() time.Duration {
	o.mu.Lock()
	defer o.mu.Unlock()
	return time.Duration(o.costNanos)
}

// ResetCounters zeroes the call counters and timers (the cache is
// retained).
func (o *Optimizer) ResetCounters() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.calls, o.plans, o.costNanos = 0, 0, 0
}

// computeCost plans every block of the query and sums their costs.
func (o *Optimizer) computeCost(q *workload.Query, cfg *index.Configuration) float64 {
	if q.Info == nil {
		return 0
	}
	var total float64
	for _, blk := range q.Info.Blocks {
		total += planBlock(o.cat, cfg, blk, o.par)
	}
	if total <= 0 {
		total = o.par.CPUTuple
	}
	return total
}

// relevantFingerprint narrows the configuration to indexes on tables the
// query references, so cache entries are reused across configurations that
// differ only on irrelevant tables — the same trick commercial advisors use
// to suppress redundant what-if calls.
func (o *Optimizer) relevantFingerprint(q *workload.Query, cfg *index.Configuration) string {
	if cfg == nil || cfg.Len() == 0 || q.Info == nil {
		return ""
	}
	var ids []string
	for _, t := range q.Info.Tables {
		for _, ix := range cfg.ForTable(t) {
			ids = append(ids, ix.ID())
		}
	}
	if len(ids) == 0 {
		return ""
	}
	sort.Strings(ids)
	return strings.Join(ids, ";")
}
