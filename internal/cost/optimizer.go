package cost

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"isum/internal/catalog"
	"isum/internal/index"
	"isum/internal/parallel"
	"isum/internal/telemetry"
	"isum/internal/workload"
)

// cacheShardCount is the number of what-if cache shards. Shards are picked
// by a hash of the query text, so concurrent Cost calls contend only when
// they hit the same shard; 32 keeps contention negligible far past the
// worker counts the pipeline spawns. Must be a power of two.
const cacheShardCount = 32

// cacheVal is one cached what-if result: the total plan cost (the value
// Cost returns) and the access+join subtotal the elision layer's bounds
// are derived from (elide.go). The subtotal is monotone non-increasing in
// the configuration; the total is not (tail operators may flip between
// stream/hash/sort strategies).
type cacheVal struct {
	c  float64
	aj float64
}

// flight is one in-progress plan computation. Concurrent identical
// (query, relevant-config) requests wait on done instead of duplicating
// the computation (singleflight); val/err are published before done is
// closed.
type flight struct {
	done chan struct{}
	val  cacheVal
	err  error
}

// cacheShard is one lock-striped slice of the what-if cache.
type cacheShard struct {
	mu sync.RWMutex
	// entries is keyed by query text, then by the relevant-configuration
	// fingerprint, so copies of a Query (e.g. weighted compressed-workload
	// entries) share cost entries.
	entries map[string]map[string]cacheVal
	// flights holds in-progress plan computations keyed by
	// text+"\x00"+fingerprint, used only when elision is enabled.
	flights map[string]*flight
	// hits/misses are this shard's cache counters, registered in the
	// optimizer's telemetry registry as cost/cache/shardNN/{hits,misses}.
	hits   *telemetry.Counter
	misses *telemetry.Counter
}

// Injector is the fault-injection hook of the what-if interface
// (DESIGN.md §9). It is consulted once per plan-computation attempt (cache
// misses only — cached costs never refetch). Returning a non-nil error
// simulates a transient what-if failure, which the optimizer's retry
// policy absorbs; the injector may also sleep (latency injection) or panic
// (crash injection, contained by the worker pool). Implementations must be
// safe for concurrent use. internal/faults provides the deterministic
// seeded implementation.
type Injector interface {
	PlanFault(queryText, configFingerprint string, attempt int) error
}

// RetryPolicy bounds the retries around transient what-if failures:
// MaxAttempts tries per plan (1 = no retry) with exponential backoff
// starting at BaseDelay and capped at MaxDelay. The backoff sleep honours
// context cancellation.
type RetryPolicy struct {
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
}

// DefaultRetryPolicy returns the standard policy: 3 attempts with
// 1ms → 2ms → … backoff capped at 50ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

// Optimizer estimates query costs against hypothetical index configurations
// — the "what-if" API of Section 2.1. It caches (query, relevant-config)
// pairs and counts invocations so the advisor can report optimizer-call
// statistics (Fig. 2).
//
// All methods are safe for concurrent use. The cache is sharded by query
// text and the counters are atomics, so parallel callers only contend when
// two queries hash to the same shard. Cost values are pure functions of
// (query, configuration), so concurrent duplicate misses compute the same
// value; the only concurrency artefact is that Plans may count such a
// duplicate computation twice.
//
// Failure model: with no injector installed the optimizer cannot fail and
// Cost never panics. Under fault injection (SetInjector) transient plan
// failures are retried per the RetryPolicy; CostContext returns an error
// when retries are exhausted or the context is cancelled mid-retry, and
// the faults/ counters (faults/retry/attempts, faults/retry/exhausted,
// faults/cancelled) record the outcomes.
type Optimizer struct {
	cat *catalog.Catalog
	par Params
	reg *telemetry.Registry

	// inj and retry configure the failure model. They are set once during
	// setup (SetInjector/SetRetryPolicy) before concurrent use.
	inj   Injector
	retry RetryPolicy

	calls     *telemetry.Counter // cost/whatif/calls: invocations (hits included)
	plans     *telemetry.Counter // cost/whatif/plans: plan computations (misses)
	costNanos *telemetry.Counter // cost/whatif/cost_nanos (Fig. 2's optimizer share)

	retryAttempts  *telemetry.Counter // faults/retry/attempts: backoff retries taken
	retryExhausted *telemetry.Counter // faults/retry/exhausted: plans failed after all attempts
	cancelled      *telemetry.Counter // faults/cancelled: plans aborted by ctx

	// Elision layer (elide.go, DESIGN.md §16). elideOn is set once during
	// setup (SetElision) before concurrent use; the memo maps are guarded
	// by elideMu.
	elideOn     bool
	elideMu     sync.Mutex
	elideBounds map[string]*QueryBounds // per query text
	elideIDs    map[string]int32        // interned index identities

	elideHits   *telemetry.Counter // cost/elide/hits: what-if calls elided
	elidePrunes *telemetry.Counter // cost/elide/bound_prunes: candidates pruned by bounds
	elideWaits  *telemetry.Counter // cost/elide/singleflight_waits: duplicate in-flight computations coalesced

	shards [cacheShardCount]cacheShard
}

// NewOptimizer returns a what-if optimizer over the catalog.
func NewOptimizer(cat *catalog.Catalog) *Optimizer {
	return NewOptimizerWithParams(cat, DefaultParams())
}

// NewOptimizerWithParams returns an optimizer with custom cost-model
// constants — the ablation/calibration path.
func NewOptimizerWithParams(cat *catalog.Catalog, par Params) *Optimizer {
	return NewOptimizerWithTelemetry(cat, par, nil)
}

// NewOptimizerWithTelemetry registers the optimizer's metrics — what-if
// call/plan counters, cumulative cost time, per-shard cache hits/misses,
// and the faults/ retry/cancellation counters — in reg, so a pipeline-wide
// registry attributes what-if work to phases.
// A nil reg gives the optimizer a private registry: the counters behind
// Calls/Plans/CostTime are always live, at the cost of one atomic add
// each, exactly as the pre-telemetry fields were.
//
// Optimizers sharing a registry share these metrics; when per-optimizer
// attribution matters, give each its own registry.
func NewOptimizerWithTelemetry(cat *catalog.Catalog, par Params, reg *telemetry.Registry) *Optimizer {
	if reg == nil {
		reg = telemetry.New()
	}
	o := &Optimizer{
		cat:            cat,
		par:            par,
		reg:            reg,
		retry:          DefaultRetryPolicy(),
		elideOn:        true,
		elideBounds:    make(map[string]*QueryBounds),
		elideIDs:       make(map[string]int32),
		calls:          reg.Counter("cost/whatif/calls"),
		plans:          reg.Counter("cost/whatif/plans"),
		costNanos:      reg.Counter("cost/whatif/cost_nanos"),
		retryAttempts:  reg.Counter("faults/retry/attempts"),
		retryExhausted: reg.Counter("faults/retry/exhausted"),
		cancelled:      reg.Counter("faults/cancelled"),
		elideHits:      reg.Counter("cost/elide/hits"),
		elidePrunes:    reg.Counter("cost/elide/bound_prunes"),
		elideWaits:     reg.Counter("cost/elide/singleflight_waits"),
	}
	for i := range o.shards {
		o.shards[i].entries = make(map[string]map[string]cacheVal)
		o.shards[i].flights = make(map[string]*flight)
		o.shards[i].hits = reg.Counter(fmt.Sprintf("cost/cache/shard%02d/hits", i))
		o.shards[i].misses = reg.Counter(fmt.Sprintf("cost/cache/shard%02d/misses", i))
	}
	return o
}

// SetInjector installs a fault injector on the what-if interface (nil
// removes it). Call during setup, before the optimizer is used
// concurrently.
func (o *Optimizer) SetInjector(inj Injector) { o.inj = inj }

// SetRetryPolicy replaces the transient-failure retry policy. Call during
// setup, before the optimizer is used concurrently.
func (o *Optimizer) SetRetryPolicy(p RetryPolicy) { o.retry = p }

// RetryPolicy returns the active retry policy.
func (o *Optimizer) RetryPolicy() RetryPolicy { return o.retry }

// Telemetry returns the registry holding the optimizer's metrics (never
// nil; private unless one was supplied at construction).
func (o *Optimizer) Telemetry() *telemetry.Registry { return o.reg }

// Params returns the optimizer's cost-model constants.
func (o *Optimizer) Params() Params { return o.par }

// Catalog returns the optimizer's catalog.
func (o *Optimizer) Catalog() *catalog.Catalog { return o.cat }

// shardFor picks the cache shard for a query text (FNV-1a).
func (o *Optimizer) shardFor(text string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(text); i++ {
		h ^= uint64(text[i])
		h *= prime64
	}
	return &o.shards[h&(cacheShardCount-1)]
}

// Cost returns the estimated cost of q under the given (hypothetical)
// configuration. A nil configuration means the current design (no secondary
// indexes). Safe for concurrent use.
//
// Cost cannot fail without a fault injector; under injection it panics when
// retries are exhausted (legacy surface — ctx-aware callers use
// CostContext, and the worker pool contains such panics as errors).
func (o *Optimizer) Cost(q *workload.Query, cfg *index.Configuration) float64 {
	c, err := o.CostContext(context.Background(), q, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// CostContext is Cost with cancellation and failure reporting: the ctx
// bounds retry backoff sleeps and aborts pending plan computations, and
// injected what-if failures that survive the retry policy surface as
// errors. Cache hits always succeed regardless of ctx.
func (o *Optimizer) CostContext(ctx context.Context, q *workload.Query, cfg *index.Configuration) (float64, error) {
	v, err := o.costParts(ctx, q, cfg)
	if err != nil {
		return 0, err
	}
	return v.c, nil
}

// costParts is the full what-if pipeline behind CostContext: counters,
// cache lookup, singleflight (elision on), plan computation with retry,
// cache store, and atomic-cost recording for the elision memo. It returns
// the cost together with the access+join subtotal the bound derivations
// need.
func (o *Optimizer) costParts(ctx context.Context, q *workload.Query, cfg *index.Configuration) (cacheVal, error) {
	start := time.Now() //lint:allow determinism what-if latency metric only; costs are computed from the plan, not the clock
	defer func() {
		o.costNanos.Add(time.Since(start).Nanoseconds())
	}()
	key := o.relevantFingerprint(q, cfg)
	o.calls.Add(1)

	sh := o.shardFor(q.Text)
	sh.mu.RLock()
	if perQ, ok := sh.entries[q.Text]; ok {
		if v, ok := perQ[key]; ok {
			sh.mu.RUnlock()
			sh.hits.Inc()
			return v, nil
		}
	}
	sh.mu.RUnlock()

	if o.elideOn {
		return o.costPartsFlight(ctx, q, cfg, key, sh)
	}

	sh.misses.Inc()
	v, err := o.planWithRetry(ctx, q, cfg, key)
	if err != nil {
		return cacheVal{}, err
	}

	sh.mu.Lock()
	perQ, ok := sh.entries[q.Text]
	if !ok {
		perQ = make(map[string]cacheVal)
		sh.entries[q.Text] = perQ
	}
	perQ[key] = v
	sh.mu.Unlock()
	return v, nil
}

// costPartsFlight resolves a cache miss under singleflight: concurrent
// identical (query text, fingerprint) misses elect one leader that
// computes the plan while the others wait on the flight, so parallel
// enumeration never computes the same probe twice. Cost values are pure
// functions of (query, configuration), so coalescing is invisible; only
// the plans/misses counters see fewer computations (already documented as
// a concurrency artefact).
func (o *Optimizer) costPartsFlight(ctx context.Context, q *workload.Query, cfg *index.Configuration, key string, sh *cacheShard) (cacheVal, error) {
	fkey := q.Text + "\x00" + key
	for {
		sh.mu.Lock()
		if perQ, ok := sh.entries[q.Text]; ok {
			if v, ok := perQ[key]; ok {
				sh.mu.Unlock()
				sh.hits.Inc()
				return v, nil
			}
		}
		if f, ok := sh.flights[fkey]; ok {
			sh.mu.Unlock()
			o.elideWaits.Inc()
			select {
			case <-ctx.Done():
				o.cancelled.Inc()
				return cacheVal{}, ctx.Err()
			case <-f.done:
			}
			if f.err != nil {
				// The leader failed. Retry as (potentially) a new leader:
				// with the deterministic injector our own attempt sequence
				// fails or succeeds exactly as it would have unshared, so
				// callers observe reference failure semantics.
				continue
			}
			return f.val, nil
		}
		f := &flight{done: make(chan struct{})}
		sh.flights[fkey] = f
		sh.mu.Unlock()
		sh.misses.Inc()
		return o.runFlight(ctx, q, cfg, key, sh, fkey, f)
	}
}

// runFlight executes a leader plan computation and publishes the result —
// to the cache, to any flight waiters, and (on success) to the elision
// memo. A panic out of the computation (crash injection) still fails the
// flight before propagating, so waiters never hang on a dead leader.
func (o *Optimizer) runFlight(ctx context.Context, q *workload.Query, cfg *index.Configuration, key string, sh *cacheShard, fkey string, f *flight) (v cacheVal, err error) {
	committed := false
	defer func() {
		if committed {
			return
		}
		sh.mu.Lock()
		delete(sh.flights, fkey)
		sh.mu.Unlock()
		f.err = fmt.Errorf("cost: what-if plan computation for query %d panicked", q.ID)
		close(f.done)
	}()
	v, err = o.planWithRetry(ctx, q, cfg, key)
	committed = true

	sh.mu.Lock()
	delete(sh.flights, fkey)
	if err == nil {
		perQ, ok := sh.entries[q.Text]
		if !ok {
			perQ = make(map[string]cacheVal)
			sh.entries[q.Text] = perQ
		}
		perQ[key] = v
	}
	sh.mu.Unlock()
	f.val, f.err = v, err
	close(f.done)
	if err != nil {
		return cacheVal{}, err
	}
	o.recordParts(q, key, v)
	return v, nil
}

// planWithRetry runs one plan computation under the injector and retry
// policy: transient injected failures back off exponentially (honouring
// ctx) and retry up to MaxAttempts times.
func (o *Optimizer) planWithRetry(ctx context.Context, q *workload.Query, cfg *index.Configuration, key string) (cacheVal, error) {
	attempts := o.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	delay := o.retry.BaseDelay
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			o.cancelled.Inc()
			return cacheVal{}, err
		}
		if attempt > 0 {
			o.retryAttempts.Inc()
			if delay > 0 {
				t := time.NewTimer(delay)
				select {
				case <-ctx.Done():
					t.Stop()
					o.cancelled.Inc()
					return cacheVal{}, ctx.Err()
				case <-t.C:
				}
				delay *= 2
				if o.retry.MaxDelay > 0 && delay > o.retry.MaxDelay {
					delay = o.retry.MaxDelay
				}
			}
		}
		if o.inj != nil {
			if err := o.inj.PlanFault(q.Text, key, attempt); err != nil {
				lastErr = err
				continue
			}
		}
		o.plans.Add(1)
		return o.computeCostParts(q, cfg), nil
	}
	o.retryExhausted.Inc()
	return cacheVal{}, fmt.Errorf("cost: what-if plan for query %d failed after %d attempts: %w", q.ID, attempts, lastErr)
}

// WorkloadCost returns the weighted cost Σ w(q)·C(q) of the workload under
// the configuration, fanning the per-query what-if calls across every core.
func (o *Optimizer) WorkloadCost(w *workload.Workload, cfg *index.Configuration) float64 {
	return o.WorkloadCostN(w, cfg, 0)
}

// WorkloadCostN is WorkloadCost with an explicit parallelism (0 =
// GOMAXPROCS, 1 = serial). The weighted sum is reduced in input order, so
// the result is bit-identical at any parallelism. Panics under fault
// injection when retries are exhausted; ctx-aware callers use
// WorkloadCostCtx.
func (o *Optimizer) WorkloadCostN(w *workload.Workload, cfg *index.Configuration, parallelism int) float64 {
	c, err := o.WorkloadCostCtx(context.Background(), w, cfg, parallelism)
	if err != nil {
		panic(err)
	}
	return c
}

// WorkloadCostCtx is WorkloadCostN with cancellation and failure
// reporting: the first what-if failure (retries exhausted) or a ctx
// cancellation aborts the scan and is returned.
func (o *Optimizer) WorkloadCostCtx(ctx context.Context, w *workload.Workload, cfg *index.Configuration, parallelism int) (float64, error) {
	type qc struct {
		v   float64
		err error
	}
	vals, err := parallel.Map(ctx, parallel.Workers(parallelism), len(w.Queries),
		func(i int) qc {
			q := w.Queries[i]
			wt := q.Weight
			if wt <= 0 {
				wt = 1
			}
			c, err := o.CostContext(ctx, q, cfg)
			return qc{wt * c, err}
		})
	if err != nil {
		return 0, err
	}
	var total float64
	for _, r := range vals {
		if r.err != nil {
			return 0, r.err
		}
		total += r.v
	}
	return total, nil
}

// FillCosts sets each query's Cost field to its cost under the current
// physical design (empty configuration) — producing the "input workload
// with optimizer estimated costs" the paper's problem statement assumes.
// The what-if calls fan out across every core.
func (o *Optimizer) FillCosts(w *workload.Workload) {
	o.FillCostsN(w, 0)
}

// FillCostsN is FillCosts with an explicit parallelism (0 = GOMAXPROCS,
// 1 = serial). Costs are computed in parallel but assigned serially, so
// workloads that alias the same *Query stay race-free.
func (o *Optimizer) FillCostsN(w *workload.Workload, parallelism int) {
	if err := o.FillCostsCtx(context.Background(), w, parallelism); err != nil {
		panic(err)
	}
}

// FillCostsCtx is FillCostsN with cancellation and failure reporting. On a
// non-nil error no Cost field has been assigned — the workload is left
// untouched rather than partially costed.
func (o *Optimizer) FillCostsCtx(ctx context.Context, w *workload.Workload, parallelism int) error {
	type qc struct {
		v   float64
		err error
	}
	costs, err := parallel.Map(ctx, parallel.Workers(parallelism), len(w.Queries),
		func(i int) qc {
			c, err := o.CostContext(ctx, w.Queries[i], nil)
			return qc{c, err}
		})
	if err != nil {
		return err
	}
	for _, r := range costs {
		if r.err != nil {
			return r.err
		}
	}
	for i, q := range w.Queries {
		q.Cost = costs[i].v
	}
	return nil
}

// Calls returns the number of what-if invocations so far.
func (o *Optimizer) Calls() int64 { return o.calls.Value() }

// Plans returns the number of cache-miss plan computations so far.
func (o *Optimizer) Plans() int64 { return o.plans.Value() }

// CostTime returns the cumulative wall time spent inside Cost — the
// "time on optimizer calls" series of Fig. 2a. Under concurrency this is
// summed per call, so it can exceed wall-clock time.
func (o *Optimizer) CostTime() time.Duration {
	return time.Duration(o.costNanos.Value())
}

// CacheStats sums the per-shard cache counters: hits are calls answered
// from the what-if cache, misses are plan computations.
func (o *Optimizer) CacheStats() (hits, misses int64) {
	for i := range o.shards {
		hits += o.shards[i].hits.Value()
		misses += o.shards[i].misses.Value()
	}
	return
}

// FaultStats reports the failure-model counters: backoff retries taken,
// plans that failed after exhausting the retry policy, and plans aborted
// by context cancellation.
func (o *Optimizer) FaultStats() (retries, exhausted, cancelled int64) {
	return o.retryAttempts.Value(), o.retryExhausted.Value(), o.cancelled.Value()
}

// ResetCounters zeroes the call counters, timers, per-shard cache
// counters, and faults counters (the cache itself is retained) — the
// multi-run experiment hook, so harness invocations report per-run rather
// than cumulative what-if statistics. When the optimizer shares a
// registry, only its own metrics are reset; use Registry.Reset to clear
// everything.
func (o *Optimizer) ResetCounters() {
	o.calls.Reset()
	o.plans.Reset()
	o.costNanos.Reset()
	o.retryAttempts.Reset()
	o.retryExhausted.Reset()
	o.cancelled.Reset()
	for i := range o.shards {
		o.shards[i].hits.Reset()
		o.shards[i].misses.Reset()
	}
	o.elideHits.Reset()
	o.elidePrunes.Reset()
	o.elideWaits.Reset()
}

// computeCostParts plans every block of the query and sums their costs,
// keeping the access+join subtotal alongside the total for the elision
// bounds. The total is exactly what computeCost historically returned.
func (o *Optimizer) computeCostParts(q *workload.Query, cfg *index.Configuration) cacheVal {
	if q.Info == nil {
		return cacheVal{}
	}
	var total, aj float64
	for _, blk := range q.Info.Blocks {
		t, a := planBlockParts(o.cat, cfg, blk, o.par)
		total += t
		aj += a
	}
	if total <= 0 {
		// Only reachable with zero blocks (every planned block costs at
		// least one CPU tuple), so the subtotal clamps with the total and
		// the derived bounds stay tight and sound.
		total = o.par.CPUTuple
		aj = total
	}
	return cacheVal{c: total, aj: aj}
}

// relevantFingerprint narrows the configuration to indexes on tables the
// query references, so cache entries are reused across configurations that
// differ only on irrelevant tables — the same trick commercial advisors use
// to suppress redundant what-if calls.
func (o *Optimizer) relevantFingerprint(q *workload.Query, cfg *index.Configuration) string {
	if cfg == nil || cfg.Len() == 0 || q.Info == nil {
		return ""
	}
	var ids []string
	for _, t := range q.Info.Tables {
		for _, ix := range cfg.ForTable(t) {
			ids = append(ids, ix.ID())
		}
	}
	if len(ids) == 0 {
		return ""
	}
	sort.Strings(ids)
	return strings.Join(ids, ";")
}
