package cost

import (
	"testing"

	"isum/internal/catalog"
	"isum/internal/index"
	"isum/internal/workload"
)

// testCatalog builds a TPC-H-flavoured catalog with real histograms so seek
// selectivities are meaningful.
func testCatalog() *catalog.Catalog {
	cat := catalog.New()

	dmin, _ := workload.ParseDateDays("1992-01-01")
	dmax, _ := workload.ParseDateDays("1998-12-31")

	li := catalog.NewTable("lineitem", 6000000)
	li.AddColumn(&catalog.Column{Name: "l_orderkey", Type: catalog.TypeInt, DistinctCount: 1500000, Min: 1, Max: 6000000,
		Hist: catalog.SyntheticHistogram(1, 6000000, 6000000, 1500000, 50, 0)})
	li.AddColumn(&catalog.Column{Name: "l_suppkey", Type: catalog.TypeInt, DistinctCount: 10000, Min: 1, Max: 10000,
		Hist: catalog.SyntheticHistogram(1, 10000, 6000000, 10000, 50, 0)})
	li.AddColumn(&catalog.Column{Name: "l_quantity", Type: catalog.TypeDecimal, DistinctCount: 50, Min: 1, Max: 50,
		Hist: catalog.SyntheticHistogram(1, 50, 6000000, 50, 25, 0)})
	li.AddColumn(&catalog.Column{Name: "l_extendedprice", Type: catalog.TypeDecimal, DistinctCount: 1000000, Min: 900, Max: 105000,
		Hist: catalog.SyntheticHistogram(900, 105000, 6000000, 1000000, 50, 0)})
	li.AddColumn(&catalog.Column{Name: "l_shipdate", Type: catalog.TypeDate, DistinctCount: 2526, Min: dmin, Max: dmax,
		Hist: catalog.SyntheticHistogram(dmin, dmax, 6000000, 2526, 50, 0)})
	li.AddColumn(&catalog.Column{Name: "l_comment", Type: catalog.TypeString, DistinctCount: 4500000, AvgWidth: 27})
	cat.AddTable(li)

	o := catalog.NewTable("orders", 1500000)
	o.AddColumn(&catalog.Column{Name: "o_orderkey", Type: catalog.TypeInt, DistinctCount: 1500000, Min: 1, Max: 6000000,
		Hist: catalog.SyntheticHistogram(1, 6000000, 1500000, 1500000, 50, 0)})
	o.AddColumn(&catalog.Column{Name: "o_custkey", Type: catalog.TypeInt, DistinctCount: 100000, Min: 1, Max: 150000,
		Hist: catalog.SyntheticHistogram(1, 150000, 1500000, 100000, 50, 0)})
	o.AddColumn(&catalog.Column{Name: "o_orderdate", Type: catalog.TypeDate, DistinctCount: 2406, Min: dmin, Max: dmax,
		Hist: catalog.SyntheticHistogram(dmin, dmax, 1500000, 2406, 50, 0)})
	o.AddColumn(&catalog.Column{Name: "o_totalprice", Type: catalog.TypeDecimal, DistinctCount: 1400000, Min: 800, Max: 600000,
		Hist: catalog.SyntheticHistogram(800, 600000, 1500000, 1400000, 50, 0)})
	cat.AddTable(o)

	c := catalog.NewTable("customer", 150000)
	c.AddColumn(&catalog.Column{Name: "c_custkey", Type: catalog.TypeInt, DistinctCount: 150000, Min: 1, Max: 150000,
		Hist: catalog.SyntheticHistogram(1, 150000, 150000, 150000, 20, 0)})
	c.AddColumn(&catalog.Column{Name: "c_mktsegment", Type: catalog.TypeString, DistinctCount: 5})
	c.AddColumn(&catalog.Column{Name: "c_nationkey", Type: catalog.TypeInt, DistinctCount: 25, Min: 0, Max: 24,
		Hist: catalog.SyntheticHistogram(0, 24, 150000, 25, 25, 0)})
	cat.AddTable(c)

	return cat
}

func mustQuery(t *testing.T, cat *catalog.Catalog, sql string) *workload.Query {
	t.Helper()
	q, err := workload.NewQuery(cat, 0, sql)
	if err != nil {
		t.Fatalf("parse/analyse %q: %v", sql, err)
	}
	return q
}

func TestScanCostBaseline(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, "SELECT l_comment FROM lineitem")
	c := o.Cost(q, nil)
	if c <= 0 {
		t.Fatalf("cost = %f", c)
	}
	// Full scan should cost at least the page count.
	if c < float64(cat.Table("lineitem").PageCount()) {
		t.Fatalf("scan cost %f below page count %d", c, cat.Table("lineitem").PageCount())
	}
}

func TestSelectiveSeekBeatsScans(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, "SELECT l_comment FROM lineitem WHERE l_orderkey = 12345")
	base := o.Cost(q, nil)
	withIx := o.Cost(q, index.NewConfiguration(index.New("lineitem", "l_orderkey")))
	if withIx >= base {
		t.Fatalf("selective seek should beat scan: %f >= %f", withIx, base)
	}
	if withIx > base*0.01 {
		t.Fatalf("point seek should be orders of magnitude cheaper: %f vs %f", withIx, base)
	}
}

func TestUnselectivePredicateKeepsScan(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	// ~98% of rows match: lookups would dominate, scan must win.
	q := mustQuery(t, cat, "SELECT l_comment FROM lineitem WHERE l_quantity > 1")
	base := o.Cost(q, nil)
	withIx := o.Cost(q, index.NewConfiguration(index.New("lineitem", "l_quantity")))
	if withIx < base*0.9 {
		t.Fatalf("unselective index should not help much: %f vs %f", withIx, base)
	}
}

func TestCoveringIndexBeatsNonCovering(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	// Moderate selectivity (~2%): non-covering lookups are expensive.
	q := mustQuery(t, cat, "SELECT l_extendedprice FROM lineitem WHERE l_quantity = 17")
	plain := o.Cost(q, index.NewConfiguration(index.New("lineitem", "l_quantity")))
	covering := o.Cost(q, index.NewConfiguration(
		index.New("lineitem", "l_quantity").WithIncludes("l_extendedprice")))
	if covering >= plain {
		t.Fatalf("covering should beat non-covering: %f >= %f", covering, plain)
	}
}

func TestMultiColumnSeek(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, "SELECT l_extendedprice FROM lineitem WHERE l_suppkey = 77 AND l_shipdate >= '1995-01-01' AND l_shipdate < '1995-04-01'")
	single := o.Cost(q, index.NewConfiguration(index.New("lineitem", "l_suppkey")))
	multi := o.Cost(q, index.NewConfiguration(index.New("lineitem", "l_suppkey", "l_shipdate")))
	if multi >= single {
		t.Fatalf("two-column seek should beat one-column: %f >= %f", multi, single)
	}
}

func TestRangeTerminatesSeekPrefix(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, "SELECT l_extendedprice FROM lineitem WHERE l_shipdate > '1998-06-01' AND l_suppkey = 77")
	// Range on the leading key blocks the equality behind it...
	rangeFirst := o.Cost(q, index.NewConfiguration(index.New("lineitem", "l_shipdate", "l_suppkey")))
	// ...while equality leading is fully seekable.
	eqFirst := o.Cost(q, index.NewConfiguration(index.New("lineitem", "l_suppkey", "l_shipdate")))
	if eqFirst >= rangeFirst {
		t.Fatalf("equality-leading index should win: %f >= %f", eqFirst, rangeFirst)
	}
}

func TestJoinIndexHelps(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, `SELECT o_totalprice FROM customer, orders
		WHERE c_custkey = o_custkey AND c_nationkey = 7 AND c_mktsegment = 'BUILDING'`)
	base := o.Cost(q, nil)
	// A covering join index enables a cheap index-nested-loop plan. (A bare,
	// non-covering join index realistically loses to hash join at this
	// cardinality because of random lookups.)
	covering := index.New("orders", "o_custkey").WithIncludes("o_totalprice")
	withJoinIx := o.Cost(q, index.NewConfiguration(covering))
	if withJoinIx >= base*0.8 {
		t.Fatalf("covering join index should help substantially: %f >= %f", withJoinIx, base)
	}
	bare := o.Cost(q, index.NewConfiguration(index.New("orders", "o_custkey")))
	if withJoinIx >= bare {
		t.Fatalf("covering should beat bare join index: %f >= %f", withJoinIx, bare)
	}
}

func TestGroupByIndexEnablesStreamAgg(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, "SELECT l_suppkey, SUM(l_extendedprice) FROM lineitem GROUP BY l_suppkey")
	base := o.Cost(q, nil)
	ix := index.New("lineitem", "l_suppkey").WithIncludes("l_extendedprice")
	withIx := o.Cost(q, index.NewConfiguration(ix))
	if withIx >= base {
		t.Fatalf("covering group-by index should help: %f >= %f", withIx, base)
	}
}

func TestOrderByIndexAvoidsSort(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, "SELECT o_orderdate FROM orders WHERE o_totalprice > 595000 ORDER BY o_orderdate")
	// Covering index on the sort column: scan in order, no sort.
	sortIx := index.New("orders", "o_orderdate").WithIncludes("o_totalprice")
	filterIx := index.New("orders", "o_totalprice").WithIncludes("o_orderdate")
	cSort := o.Cost(q, index.NewConfiguration(sortIx))
	cFilter := o.Cost(q, index.NewConfiguration(filterIx))
	base := o.Cost(q, nil)
	if cSort >= base && cFilter >= base {
		t.Fatalf("some index should help: base=%f sort=%f filter=%f", base, cSort, cFilter)
	}
}

func TestMoreIndexesNeverIncreaseCost(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	sqls := []string{
		"SELECT l_comment FROM lineitem WHERE l_orderkey = 5",
		"SELECT o_totalprice FROM customer, orders WHERE c_custkey = o_custkey AND c_nationkey = 3",
		"SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > '1998-01-01' GROUP BY l_suppkey ORDER BY l_suppkey",
	}
	cfgs := []*index.Configuration{
		index.NewConfiguration(),
		index.NewConfiguration(index.New("lineitem", "l_orderkey")),
		index.NewConfiguration(index.New("lineitem", "l_orderkey"), index.New("orders", "o_custkey")),
		index.NewConfiguration(index.New("lineitem", "l_orderkey"), index.New("orders", "o_custkey"),
			index.New("lineitem", "l_shipdate", "l_suppkey"), index.New("customer", "c_nationkey")),
	}
	for _, sql := range sqls {
		q := mustQuery(t, cat, sql)
		prev := o.Cost(q, cfgs[0])
		for _, cfg := range cfgs[1:] {
			c := o.Cost(q, cfg)
			if c > prev+1e-9 {
				t.Fatalf("adding indexes increased cost for %q: %f > %f", sql, c, prev)
			}
			prev = c
		}
	}
}

func TestSubqueryBlocksCosted(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	outer := mustQuery(t, cat, "SELECT o_totalprice FROM orders WHERE o_totalprice > 590000")
	withSub := mustQuery(t, cat, `SELECT o_totalprice FROM orders WHERE o_totalprice > 590000
		AND EXISTS (SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey)`)
	if o.Cost(withSub, nil) <= o.Cost(outer, nil) {
		t.Fatal("subquery block should add cost")
	}
}

func TestWorkloadCostWeights(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	w, err := workload.New(cat, []string{
		"SELECT c_nationkey FROM customer WHERE c_custkey = 5",
		"SELECT c_nationkey FROM customer WHERE c_custkey = 6",
	})
	if err != nil {
		t.Fatal(err)
	}
	base := o.WorkloadCost(w, nil)
	w.Queries[0].Weight = 3
	weighted := o.WorkloadCost(w, nil)
	if weighted <= base {
		t.Fatal("weight should scale workload cost")
	}
}

func TestFillCosts(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	w, _ := workload.New(cat, []string{"SELECT c_nationkey FROM customer"})
	o.FillCosts(w)
	if w.Queries[0].Cost <= 0 {
		t.Fatal("FillCosts did not set cost")
	}
}

func TestCallCountersAndCache(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, "SELECT c_nationkey FROM customer WHERE c_custkey = 5")
	cfgA := index.NewConfiguration(index.New("customer", "c_custkey"))
	// Same config extended with an irrelevant index: should hit the cache.
	cfgB := cfgA.With(index.New("orders", "o_custkey"))

	o.Cost(q, cfgA)
	o.Cost(q, cfgB)
	o.Cost(q, cfgA)
	if o.Calls() != 3 {
		t.Fatalf("calls = %d", o.Calls())
	}
	if o.Plans() != 1 {
		t.Fatalf("plans = %d (irrelevant-index probe should be cached)", o.Plans())
	}
	o.ResetCounters()
	if o.Calls() != 0 || o.Plans() != 0 {
		t.Fatal("reset failed")
	}
}

func TestConstantBlockCost(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, "SELECT 1")
	if c := o.Cost(q, nil); c <= 0 {
		t.Fatalf("constant query cost = %f", c)
	}
}

func TestCrossJoinCosted(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, "SELECT c_nationkey FROM customer, orders WHERE c_nationkey = 1")
	cj := o.Cost(q, nil)
	q2 := mustQuery(t, cat, "SELECT c_nationkey FROM customer WHERE c_nationkey = 1")
	if cj <= o.Cost(q2, nil) {
		t.Fatal("cross join should cost more than single table")
	}
}

func TestOptimizerCatalogAccessor(t *testing.T) {
	cat := testCatalog()
	if NewOptimizer(cat).Catalog() != cat {
		t.Fatal("catalog accessor broken")
	}
}

func TestLikePrefixSeekable(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	// A prefix LIKE on a high-cardinality string column should allow a seek
	// (the analyzer estimates ~3% selectivity for prefix patterns).
	q := mustQuery(t, cat, "SELECT l_comment FROM lineitem WHERE l_comment LIKE 'abc%'")
	base := o.Cost(q, nil)
	withIx := o.Cost(q, index.NewConfiguration(index.New("lineitem", "l_comment")))
	if withIx >= base {
		t.Fatalf("prefix LIKE should be seekable: %f >= %f", withIx, base)
	}
}

func TestInListSeekable(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, "SELECT l_comment FROM lineitem WHERE l_suppkey IN (1, 2, 3)")
	base := o.Cost(q, nil)
	withIx := o.Cost(q, index.NewConfiguration(index.New("lineitem", "l_suppkey")))
	if withIx >= base*0.5 {
		t.Fatalf("IN list should be seekable: %f vs %f", withIx, base)
	}
}
