// Package cost implements a cost-based query optimizer over the statistics
// catalog, with hypothetical-index ("what-if") support.
//
// It is the substrate that stands in for the commercial optimizer + what-if
// API the paper relies on [15]: given a query's bound analysis
// (workload.Info) and an index configuration, it picks access paths
// (scan / index seek / covering scan), a greedy left-deep join order with
// hash vs. index-nested-loop choice, and sort/aggregation costs, and returns
// an estimated cost in abstract page units. Indexes reduce cost exactly
// where the paper's intuition says they should: selective filters, join
// inners, and grouping/ordering.
package cost

import (
	"math"

	"isum/internal/catalog"
)

// Default cost-model constants, in units of one sequential page read.
// Relative magnitudes follow classic optimizer practice (random I/O ≈ 2-4×
// sequential, CPU per tuple orders of magnitude below a page read).
const (
	// SeqPageCost is the cost of reading one page sequentially.
	SeqPageCost = 1.0
	// RandPageCost is the cost of one random page access (index lookups).
	RandPageCost = 2.5
	// CPUTupleCost is the CPU cost of processing one row.
	CPUTupleCost = 0.01
	// CPUOperatorCost is the CPU cost of one comparison/hash operation.
	CPUOperatorCost = 0.0025
	// SeekCost is the fixed cost of descending a B-tree to a leaf.
	SeekCost = 3.0
	// HashBuildFactor scales the per-row cost of building a hash table.
	HashBuildFactor = 1.5
	// SortMemBudgetBytes is the nominal sort memory before spilling.
	SortMemBudgetBytes = 64 << 20
)

// Params are the tunable cost-model constants — the equivalent of an
// engine's cost GUCs. The zero value is not valid; start from
// DefaultParams.
type Params struct {
	SeqPage            float64
	RandPage           float64
	CPUTuple           float64
	CPUOperator        float64
	Seek               float64
	HashBuild          float64
	SortMemBudgetBytes int64
}

// DefaultParams returns the package defaults.
func DefaultParams() Params {
	return Params{
		SeqPage:            SeqPageCost,
		RandPage:           RandPageCost,
		CPUTuple:           CPUTupleCost,
		CPUOperator:        CPUOperatorCost,
		Seek:               SeekCost,
		HashBuild:          HashBuildFactor,
		SortMemBudgetBytes: SortMemBudgetBytes,
	}
}

// rowsAfter applies a selectivity to a row count with a floor of one row.
func rowsAfter(rows float64, sel float64) float64 {
	r := rows * sel
	if r < 1 {
		return 1
	}
	return r
}

// scanCost is the cost of a full sequential scan of a table.
func (p Params) scanCost(t *catalog.Table) float64 {
	return float64(t.PageCount())*p.SeqPage + float64(t.RowCount)*p.CPUTuple
}

// sortCost is the n·log n CPU cost of sorting rows, plus spill I/O when the
// data exceeds the memory budget.
func (p Params) sortCost(rows float64, rowWidth int) float64 {
	if rows < 2 {
		return 0
	}
	c := rows * math.Log2(rows) * p.CPUOperator * 2
	bytes := rows * float64(rowWidth)
	if bytes > float64(p.SortMemBudgetBytes) {
		spillPages := bytes / catalog.PageSizeBytes
		c += 2 * spillPages * p.SeqPage // write + read one spill pass
	}
	return c
}

// hashAggCost is the cost of hash aggregation over rows into groups.
func (p Params) hashAggCost(rows, groups float64) float64 {
	return rows*p.CPUOperator*p.HashBuild + groups*p.CPUTuple
}

// streamAggCost is the cost of aggregation over pre-ordered input.
func (p Params) streamAggCost(rows float64) float64 {
	return rows * p.CPUOperator
}
