package cost

import (
	"sync"
	"testing"

	"isum/internal/index"
	"isum/internal/workload"
)

// TestOptimizerConcurrentCost hammers the what-if cache from many
// goroutines; run with -race to validate the locking.
func TestOptimizerConcurrentCost(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	queries := []string{
		"SELECT l_comment FROM lineitem WHERE l_orderkey = 5",
		"SELECT o_totalprice FROM orders WHERE o_custkey = 9",
		"SELECT c_nationkey FROM customer WHERE c_custkey = 3",
	}
	cfgs := []*index.Configuration{
		nil,
		index.NewConfiguration(index.New("lineitem", "l_orderkey")),
		index.NewConfiguration(index.New("orders", "o_custkey"), index.New("customer", "c_custkey")),
	}
	// Pre-parse so goroutines never touch testing.T.
	parsed := make([]*workload.Query, len(queries))
	for i, sql := range queries {
		parsed[i] = mustQuery(t, cat, sql)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := parsed[(g+i)%len(parsed)]
				c := o.Cost(q, cfgs[i%len(cfgs)])
				if c <= 0 {
					errs <- "non-positive cost"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if o.Calls() != 8*200 {
		t.Fatalf("calls = %d, want %d", o.Calls(), 8*200)
	}
	if o.CostTime() <= 0 {
		t.Fatal("cost time not recorded")
	}
}
