package cost

import (
	"fmt"
	"sync"
	"testing"

	"isum/internal/catalog"
	"isum/internal/index"
	"isum/internal/workload"
)

func mustQueryf(t *testing.T, cat *catalog.Catalog, pat string, args ...any) *workload.Query {
	t.Helper()
	return mustQuery(t, cat, fmt.Sprintf(pat, args...))
}

// TestOptimizerConcurrentCost hammers the what-if cache from many
// goroutines; run with -race to validate the locking.
func TestOptimizerConcurrentCost(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	queries := []string{
		"SELECT l_comment FROM lineitem WHERE l_orderkey = 5",
		"SELECT o_totalprice FROM orders WHERE o_custkey = 9",
		"SELECT c_nationkey FROM customer WHERE c_custkey = 3",
	}
	cfgs := []*index.Configuration{
		nil,
		index.NewConfiguration(index.New("lineitem", "l_orderkey")),
		index.NewConfiguration(index.New("orders", "o_custkey"), index.New("customer", "c_custkey")),
	}
	// Pre-parse so goroutines never touch testing.T.
	parsed := make([]*workload.Query, len(queries))
	for i, sql := range queries {
		parsed[i] = mustQuery(t, cat, sql)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := parsed[(g+i)%len(parsed)]
				c := o.Cost(q, cfgs[i%len(cfgs)])
				if c <= 0 {
					errs <- "non-positive cost"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if o.Calls() != 8*200 {
		t.Fatalf("calls = %d, want %d", o.Calls(), 8*200)
	}
	if o.CostTime() <= 0 {
		t.Fatal("cost time not recorded")
	}
}

// TestOptimizerShardedCacheStress hammers a larger query/configuration
// cross product than shard count, reads the atomic counters *while* the
// cache is being hammered (the old mutex design deadlocked value here), and
// then checks the cache absorbed every repeat: a second identical hammer
// round must add zero plan computations.
func TestOptimizerShardedCacheStress(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)

	var queries []*workload.Query
	sqls := []string{
		"SELECT l_comment FROM lineitem WHERE l_orderkey = %d",
		"SELECT o_totalprice FROM orders WHERE o_custkey = %d",
		"SELECT c_nationkey FROM customer WHERE c_custkey = %d",
		"SELECT l_quantity FROM lineitem WHERE l_suppkey = %d",
	}
	for _, pat := range sqls {
		for v := 0; v < 24; v++ {
			queries = append(queries, mustQueryf(t, cat, pat, v))
		}
	}
	cfgs := []*index.Configuration{
		nil,
		index.NewConfiguration(index.New("lineitem", "l_orderkey")),
		index.NewConfiguration(index.New("lineitem", "l_suppkey", "l_orderkey")),
		index.NewConfiguration(index.New("orders", "o_custkey")),
		index.NewConfiguration(index.New("customer", "c_custkey"), index.New("orders", "o_custkey")),
	}

	hammer := func(rounds int) {
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					q := queries[(g*7+i)%len(queries)]
					o.Cost(q, cfgs[(g+i)%len(cfgs)])
				}
			}(g)
		}
		// Concurrent counter reads must not block or race with Cost.
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 100; i++ {
				if o.Plans() > o.Calls() {
					// Plans can transiently lag calls but never exceed them.
					t.Error("plans exceeded calls")
					return
				}
				_ = o.CostTime()
			}
		}()
		wg.Wait()
		<-done
	}

	hammer(200)
	if o.Calls() != 16*200 {
		t.Fatalf("calls = %d, want %d", o.Calls(), 16*200)
	}
	// Everything is cached now: replaying the same access pattern must be
	// pure cache hits.
	plansAfterWarm := o.Plans()
	if plansAfterWarm == 0 {
		t.Fatal("expected some plan computations during warm-up")
	}
	hammer(200)
	if o.Plans() != plansAfterWarm {
		t.Fatalf("plans grew from %d to %d on a fully-cached replay", plansAfterWarm, o.Plans())
	}

	o.ResetCounters()
	if o.Calls() != 0 || o.Plans() != 0 || o.CostTime() != 0 {
		t.Fatal("ResetCounters left residue")
	}
}

// TestWorkloadCostParallelDeterminism checks the ordered-reduction
// guarantee: WorkloadCostN returns bit-identical sums at any parallelism,
// and FillCostsN matches serial filling.
func TestWorkloadCostParallelDeterminism(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	w := &workload.Workload{Catalog: cat}
	for v := 0; v < 40; v++ {
		q := mustQueryf(t, cat, "SELECT o_totalprice FROM orders WHERE o_custkey = %d", v)
		q.Weight = 1 + float64(v%5)
		w.Queries = append(w.Queries, q)
	}
	cfg := index.NewConfiguration(index.New("orders", "o_custkey"))

	want := o.WorkloadCostN(w, cfg, 1)
	if want <= 0 {
		t.Fatal("non-positive workload cost")
	}
	for _, p := range []int{0, 2, 8} {
		if got := o.WorkloadCostN(w, cfg, p); got != want {
			t.Fatalf("parallelism %d: workload cost %v != serial %v", p, got, want)
		}
	}

	o.FillCostsN(w, 1)
	serial := make([]float64, len(w.Queries))
	for i, q := range w.Queries {
		serial[i] = q.Cost
	}
	o.FillCostsN(w, 8)
	for i, q := range w.Queries {
		if q.Cost != serial[i] {
			t.Fatalf("query %d: parallel fill %v != serial %v", i, q.Cost, serial[i])
		}
	}
}
