package cost

import (
	"fmt"
	"strings"

	"isum/internal/index"
	"isum/internal/workload"
)

// TableAccess describes the access path chosen for one table occurrence.
type TableAccess struct {
	Table string
	// Index is nil for a heap scan.
	Index *index.Index
	// Covering reports whether the index avoided base-table lookups.
	Covering bool
	// SeekSelectivity is the fraction of the index reached by the seek
	// (1 when the index is scanned or unused for seeking).
	SeekSelectivity float64
	// Cost is the access-path cost.
	Cost float64
	// OutRows is the estimated row count after local filters.
	OutRows float64
}

// String renders the access compactly.
func (ta TableAccess) String() string {
	if ta.Index == nil {
		return fmt.Sprintf("scan %s (%.0f rows)", ta.Table, ta.OutRows)
	}
	kind := "seek"
	if ta.SeekSelectivity >= 1 {
		kind = "scan"
	}
	cov := ""
	if ta.Covering {
		cov = ", covering"
	}
	return fmt.Sprintf("%s %s%s -> %s (%.0f rows)", kind, ta.Index, cov, ta.Table, ta.OutRows)
}

// Plan is the optimizer's explanation of one query under a configuration:
// the chosen access paths per block, plus the total cost. (Join order and
// method are chosen during costing but not materialised here.)
type Plan struct {
	Accesses []TableAccess
	Total    float64
}

// IndexesUsed returns the distinct index IDs the plan relies on.
func (p *Plan) IndexesUsed() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range p.Accesses {
		if a.Index != nil && !seen[a.Index.ID()] {
			seen[a.Index.ID()] = true
			out = append(out, a.Index.ID())
		}
	}
	return out
}

// String renders the plan as one line per access.
func (p *Plan) String() string {
	lines := make([]string, len(p.Accesses))
	for i, a := range p.Accesses {
		lines[i] = "  " + a.String()
	}
	return fmt.Sprintf("cost %.1f\n%s", p.Total, strings.Join(lines, "\n"))
}

// Explain returns the access-path choices for q under cfg. It bypasses the
// cost cache (explains are rare; costs stay cached).
func (o *Optimizer) Explain(q *workload.Query, cfg *index.Configuration) *Plan {
	p := &Plan{}
	if q.Info == nil {
		return p
	}
	for _, blk := range q.Info.Blocks {
		bp := &blockPlanner{cat: o.cat, cfg: cfg, blk: blk, par: o.par}
		bp.groupFilters()
		for _, tu := range blk.Tables {
			t := o.cat.Table(tu.Table)
			if t == nil {
				continue
			}
			ap := bp.bestAccess(tu, t)
			p.Accesses = append(p.Accesses, TableAccess{
				Table:           tu.Table,
				Index:           ap.idx,
				Covering:        ap.covering,
				SeekSelectivity: ap.seekSel,
				Cost:            ap.cost,
				OutRows:         ap.outRows,
			})
		}
	}
	p.Total = o.Cost(q, cfg)
	return p
}
