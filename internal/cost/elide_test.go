package cost

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"isum/internal/catalog"
	"isum/internal/index"
	"isum/internal/workload"
)

// sleepInjector injects pure latency into every plan attempt, keeping the
// leader in flight long enough for waiters to pile onto the flight.
type sleepInjector struct{ d time.Duration }

func (s sleepInjector) PlanFault(string, string, int) error {
	time.Sleep(s.d)
	return nil
}

// elideFixture is the shared workload/index pool for the bound tests and
// FuzzCostBounds: a mix of scans, seeks, joins, aggregates, and sorts over
// testCatalog, plus candidate indexes on every table (including ones
// irrelevant to most queries).
type elideFixture struct {
	cat  *catalog.Catalog
	o    *Optimizer
	qs   []*workload.Query
	pool []index.Index
}

var elideFix struct {
	once sync.Once
	fix  *elideFixture
	err  error
}

func loadElideFixture(t testing.TB) *elideFixture {
	t.Helper()
	elideFix.once.Do(func() {
		cat := testCatalog()
		sqls := []string{
			"SELECT l_comment FROM lineitem",
			"SELECT l_extendedprice FROM lineitem WHERE l_orderkey = 42",
			"SELECT l_extendedprice FROM lineitem WHERE l_suppkey = 77 AND l_shipdate > '1998-01-01' ORDER BY l_shipdate",
			"SELECT l_suppkey, SUM(l_extendedprice) FROM lineitem WHERE l_shipdate > '1998-09-01' GROUP BY l_suppkey",
			"SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > '1998-01-01' GROUP BY l_suppkey ORDER BY l_suppkey",
			"SELECT o_orderdate FROM orders WHERE o_totalprice > 595000 ORDER BY o_orderdate",
			"SELECT o_totalprice FROM customer, orders WHERE c_custkey = o_custkey AND c_nationkey = 7",
			"SELECT SUM(l_extendedprice) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate > '1998-06-01'",
			"SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment",
		}
		fix := &elideFixture{cat: cat, o: NewOptimizer(cat)}
		for i, sql := range sqls {
			q, err := workload.NewQuery(cat, i, sql)
			if err != nil {
				elideFix.err = err
				return
			}
			fix.qs = append(fix.qs, q)
		}
		fix.pool = []index.Index{
			index.New("lineitem", "l_orderkey"),
			index.New("lineitem", "l_suppkey", "l_shipdate"),
			index.New("lineitem", "l_shipdate").WithIncludes("l_extendedprice", "l_suppkey"),
			index.New("orders", "o_custkey"),
			index.New("orders", "o_orderdate"),
			index.New("orders", "o_orderkey", "o_totalprice"),
			index.New("customer", "c_custkey"),
			index.New("customer", "c_nationkey"),
		}
		// Prime the memo exactly as a tune does: base and single-index
		// atomic costs for every query, then the union lower bound.
		union := index.NewConfiguration(fix.pool...)
		for _, q := range fix.qs {
			fix.o.Cost(q, nil)
			for _, ix := range fix.pool {
				fix.o.Cost(q, index.NewConfiguration(ix))
			}
			if err := fix.o.PrimeUnionBound(context.Background(), q, union); err != nil {
				elideFix.err = err
				return
			}
		}
		elideFix.fix = fix
	})
	if elideFix.err != nil {
		t.Fatalf("elide fixture: %v", elideFix.err)
	}
	return elideFix.fix
}

// checkBounds asserts the elision soundness invariant for one
// (query, configuration) pair: lower ≤ true what-if cost ≤ every member
// upper bound, and the structural floor holds when the configuration
// lives on a single table.
func checkBounds(t *testing.T, fix *elideFixture, q *workload.Query, members []index.Index) {
	t.Helper()
	cfg := index.NewConfiguration(members...)
	c := fix.o.Cost(q, cfg)
	qb := fix.o.QueryBounds(q)

	lb, ok := qb.Lower()
	if !ok {
		t.Fatalf("query %q: lower bound not primed", q.Text)
	}
	if lb > c {
		t.Fatalf("query %q cfg %q: lower bound %v above true cost %v", q.Text, cfg.Fingerprint(), lb, c)
	}
	singleTable := ""
	for i, ix := range members {
		id := fix.o.InternIndexID(ix.ID())
		ub, ok := qb.UpperWith(id)
		if !ok {
			t.Fatalf("query %q: no upper bound for member %s", q.Text, ix.ID())
		}
		if c > ub {
			t.Fatalf("query %q cfg %q: true cost %v above member %s upper bound %v", q.Text, cfg.Fingerprint(), c, ix.ID(), ub)
		}
		if i == 0 {
			singleTable = ix.Table
		} else if !strings.EqualFold(singleTable, ix.Table) {
			singleTable = ""
		}
	}
	if singleTable != "" {
		if fl := fix.o.FloorCost(q, singleTable); fl > c {
			t.Fatalf("query %q cfg %q: structural floor %v on %s above true cost %v", q.Text, cfg.Fingerprint(), fl, singleTable, c)
		}
	}
	// Irrelevance exactness: adding a structurally irrelevant pool index
	// must leave the cost bitwise unchanged.
	for _, ix := range fix.pool {
		if cfg.Contains(ix) || IndexRelevant(q, ix) {
			continue
		}
		if got := fix.o.Cost(q, cfg.With(ix)); got != c {
			t.Fatalf("query %q cfg %q: irrelevant index %s changed cost %v -> %v",
				q.Text, cfg.Fingerprint(), ix.ID(), c, got)
		}
	}
}

// TestCostBoundsSound sweeps every query against every single index, every
// index pair, and the full pool — the deterministic companion to
// FuzzCostBounds.
func TestCostBoundsSound(t *testing.T) {
	fix := loadElideFixture(t)
	for _, q := range fix.qs {
		checkBounds(t, fix, q, nil)
		checkBounds(t, fix, q, fix.pool)
		for i := range fix.pool {
			checkBounds(t, fix, q, fix.pool[i:i+1])
			for j := i + 1; j < len(fix.pool); j++ {
				checkBounds(t, fix, q, []index.Index{fix.pool[i], fix.pool[j]})
			}
		}
	}
}

// FuzzCostBounds fuzzes the soundness invariant of the elision layer
// (DESIGN.md §16): for a random (query, configuration ⊆ pool) pair, the
// derived lower bound never exceeds the true what-if cost, and no member's
// upper bound falls below it. A failure here means elision could change a
// recommendation.
func FuzzCostBounds(f *testing.F) {
	f.Add(uint8(0), uint16(0))
	f.Add(uint8(1), uint16(1))
	f.Add(uint8(3), uint16(0b10110))
	f.Add(uint8(7), uint16(0xffff))
	f.Fuzz(func(t *testing.T, qi uint8, mask uint16) {
		fix := loadElideFixture(t)
		q := fix.qs[int(qi)%len(fix.qs)]
		var members []index.Index
		for i := range fix.pool {
			if mask&(1<<i) != 0 {
				members = append(members, fix.pool[i])
			}
		}
		checkBounds(t, fix, q, members)
	})
}

// TestIndexIrrelevanceExact pins IndexRelevant's contract directly: an
// index it reports irrelevant never changes a query's cost, bitwise,
// whether added to the empty configuration or to the rest of the pool —
// the equality that lets the advisor skip those probes wholesale. It also
// sanity-checks that the fixture exercises both outcomes.
func TestIndexIrrelevanceExact(t *testing.T) {
	fix := loadElideFixture(t)
	relevant, irrelevant := 0, 0
	for _, q := range fix.qs {
		base := fix.o.Cost(q, nil)
		for i, ix := range fix.pool {
			if IndexRelevant(q, ix) {
				relevant++
				continue
			}
			irrelevant++
			if got := fix.o.Cost(q, index.NewConfiguration(ix)); got != base {
				t.Errorf("query %q: irrelevant index %s changed base cost %v -> %v", q.Text, ix.ID(), base, got)
			}
			rest := append(append([]index.Index{}, fix.pool[:i]...), fix.pool[i+1:]...)
			c1 := fix.o.Cost(q, index.NewConfiguration(rest...))
			c2 := fix.o.Cost(q, index.NewConfiguration(fix.pool...))
			if c1 != c2 {
				t.Errorf("query %q: irrelevant index %s changed pool cost %v -> %v", q.Text, ix.ID(), c1, c2)
			}
		}
	}
	if relevant == 0 || irrelevant == 0 {
		t.Fatalf("fixture does not exercise both outcomes: %d relevant, %d irrelevant pairs", relevant, irrelevant)
	}
}

// TestElisionMemoExact pins that the memoized atomic costs are bitwise the
// values real what-if calls return — the property that makes memo-exact
// substitution invisible.
func TestElisionMemoExact(t *testing.T) {
	fix := loadElideFixture(t)
	for _, q := range fix.qs {
		qb := fix.o.QueryBounds(q)
		b, ok := qb.BaseCost()
		if !ok {
			t.Fatalf("query %q: base cost not memoized", q.Text)
		}
		if got := fix.o.Cost(q, nil); got != b {
			t.Fatalf("query %q: memoized base %v != Cost %v", q.Text, b, got)
		}
		for _, ix := range fix.pool {
			id := fix.o.InternIndexID(ix.ID())
			a, ok := qb.AtomicCost(id)
			if !ok {
				continue // index not relevant to q: never recorded
			}
			if got := fix.o.Cost(q, index.NewConfiguration(ix)); got != a {
				t.Fatalf("query %q index %s: memoized atomic %v != Cost %v", q.Text, ix.ID(), a, got)
			}
		}
	}
}

// TestSingleflightCoalesces pins the in-flight deduplication: concurrent
// identical costings under latency injection share one plan computation,
// and waiters record cost/elide/singleflight_waits.
func TestSingleflightCoalesces(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	o.SetInjector(sleepInjector{d: 100 * time.Millisecond})
	q, err := workload.NewQuery(cat, 0, "SELECT l_extendedprice FROM lineitem WHERE l_orderkey = 42")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	costs := make([]float64, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			costs[i], errs[i] = o.CostContext(context.Background(), q, nil)
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if costs[i] != costs[0] {
			t.Fatalf("worker %d cost %v != worker 0 cost %v", i, costs[i], costs[0])
		}
	}
	if plans := o.Plans(); plans != 1 {
		t.Fatalf("%d plan computations for %d identical concurrent calls, want 1", plans, workers)
	}
	if _, _, waits := o.ElideStats(); waits == 0 {
		t.Fatal("no singleflight waits recorded — duplicates not coalesced")
	}
	if calls := o.Calls(); calls != workers {
		t.Fatalf("Calls = %d, want %d (waiters still count as calls)", calls, workers)
	}
}

// TestKernelZeroAlloc pins that the elision bound lookups — consulted per
// (candidate, query) in the advisor's greedy inner loop — allocate
// nothing. The static twin is the isumlint alloc analyzer over the
// //lint:hotpath markers (see internal/analysis).
func TestKernelZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race instrumentation")
	}
	fix := loadElideFixture(t)
	q := fix.qs[2]
	qb := fix.o.QueryBounds(q)
	id := fix.o.InternIndexID(fix.pool[1].ID())

	check := func(name string, fn func()) {
		t.Helper()
		fn()
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
	check("QueryBounds.BaseCost", func() { _, _ = qb.BaseCost() })
	check("QueryBounds.AtomicCost", func() { _, _ = qb.AtomicCost(id) })
	check("QueryBounds.Lower", func() { _, _ = qb.Lower() })
	check("QueryBounds.UpperWith", func() { _, _ = qb.UpperWith(id) })
}
