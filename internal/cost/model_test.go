package cost

import (
	"math"
	"testing"

	"isum/internal/catalog"
	"isum/internal/index"
	"isum/internal/workload"
)

func TestRowsAfterFloor(t *testing.T) {
	if rowsAfter(1000, 0.5) != 500 {
		t.Fatal("basic scaling")
	}
	if rowsAfter(10, 1e-9) != 1 {
		t.Fatal("floor of one row")
	}
}

func TestScanCostComponents(t *testing.T) {
	tb := catalog.NewTable("t", 1000000)
	tb.AddColumn(&catalog.Column{Name: "x", Type: catalog.TypeInt})
	c := DefaultParams().scanCost(tb)
	if c < float64(tb.PageCount()) {
		t.Fatalf("scan cost %f below I/O floor %d", c, tb.PageCount())
	}
}

func TestSortCostMonotoneAndSpill(t *testing.T) {
	par := DefaultParams()
	if par.sortCost(1, 100) != 0 {
		t.Fatal("single row needs no sort")
	}
	small := par.sortCost(1000, 100)
	big := par.sortCost(100000, 100)
	if big <= small {
		t.Fatal("sort cost must grow")
	}
	// Past the memory budget, spill I/O kicks in: cost should grow faster
	// than n log n alone.
	inMem := par.sortCost(100_000, 100)
	spill := par.sortCost(10_000_000, 100)
	nlogn := spill / inMem
	if nlogn < 100*math.Log2(10_000_000)/math.Log2(100_000)*0.9 {
		t.Fatalf("spill not reflected: ratio %f", nlogn)
	}
}

func TestAggCosts(t *testing.T) {
	if DefaultParams().hashAggCost(1000, 10) <= DefaultParams().streamAggCost(1000) {
		t.Fatal("hash agg should cost more than stream agg")
	}
}

func TestOrderCovers(t *testing.T) {
	order := []string{"a", "b", "c"}
	cols := func(names ...string) []workload.ColumnUse {
		out := make([]workload.ColumnUse, len(names))
		for i, n := range names {
			out[i] = workload.ColumnUse{Table: "t", Column: n}
		}
		return out
	}
	if !orderCovers(order, cols("a")) {
		t.Fatal("prefix single")
	}
	if !orderCovers(order, cols("b", "a")) {
		t.Fatal("prefix permutation")
	}
	if orderCovers(order, cols("c")) {
		t.Fatal("non-prefix must fail")
	}
	if orderCovers(order, cols("a", "b", "c", "d")) {
		t.Fatal("too many columns")
	}
	if orderCovers(order, nil) {
		t.Fatal("empty want must fail")
	}
	if orderCovers(nil, cols("a")) {
		t.Fatal("no order must fail")
	}
}

func TestLeafPagesNarrowerIndexFewerPages(t *testing.T) {
	tb := catalog.NewTable("t", 1000000)
	tb.AddColumn(&catalog.Column{Name: "a", Type: catalog.TypeInt})
	tb.AddColumn(&catalog.Column{Name: "wide", Type: catalog.TypeString, AvgWidth: 100})
	narrow := leafPages(tb, index.New("t", "a"))
	wide := leafPages(tb, index.New("t", "a").WithIncludes("wide"))
	if wide <= narrow {
		t.Fatalf("wider index should need more pages: %f vs %f", wide, narrow)
	}
	if narrow < 1 {
		t.Fatal("page floor")
	}
}

func TestEstimateGroups(t *testing.T) {
	cat := testCatalog()
	p := &blockPlanner{cat: cat, par: DefaultParams(), blk: &workload.Block{
		GroupBy: []workload.ColumnUse{
			{Table: "customer", Column: "c_nationkey"},
		},
	}}
	g := p.estimateGroups(1e6)
	if g != 25 {
		t.Fatalf("groups = %f, want 25", g)
	}
	// Product capped by rows.
	p.blk.GroupBy = append(p.blk.GroupBy, workload.ColumnUse{Table: "customer", Column: "c_custkey"})
	if got := p.estimateGroups(1000); got != 1000 {
		t.Fatalf("groups should cap at rows: %f", got)
	}
	// Unknown column falls back.
	p.blk.GroupBy = []workload.ColumnUse{{Table: "customer", Column: "zzz"}}
	if got := p.estimateGroups(1e6); got != 100 {
		t.Fatalf("fallback groups = %f", got)
	}
}

func TestLocalSelectivityFloor(t *testing.T) {
	fs := []workload.FilterPredicate{
		{Selectivity: 1e-6}, {Selectivity: 1e-6},
	}
	if got := localSelectivity(fs); got < 1e-9 {
		t.Fatalf("selectivity floor violated: %g", got)
	}
	if localSelectivity(nil) != 1 {
		t.Fatal("no filters should give 1")
	}
}

func TestNeededColumnsSelectStar(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, "SELECT * FROM customer WHERE c_custkey = 5")
	blk := q.Info.Blocks[0]
	p := &blockPlanner{cat: cat, cfg: index.NewConfiguration(), blk: blk, par: DefaultParams()}
	p.groupFilters()
	_, needAll := p.neededColumns("customer")
	if !needAll {
		t.Fatal("SELECT * should need all columns")
	}
	_ = o
}

func TestAccessPathPrefersBestIndex(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, "SELECT c_nationkey FROM customer WHERE c_custkey = 5")
	// Among a useless index and a perfect one, the perfect one must win.
	useless := index.New("customer", "c_mktsegment")
	perfect := index.New("customer", "c_custkey").WithIncludes("c_nationkey")
	both := index.NewConfiguration(useless, perfect)
	only := index.NewConfiguration(perfect)
	if math.Abs(o.Cost(q, both)-o.Cost(q, only)) > 1e-9 {
		t.Fatal("best index choice should make useless index irrelevant")
	}
}

func TestIrrelevantIndexNoEffect(t *testing.T) {
	cat := testCatalog()
	o := NewOptimizer(cat)
	q := mustQuery(t, cat, "SELECT c_nationkey FROM customer WHERE c_custkey = 5")
	base := o.Cost(q, nil)
	other := o.Cost(q, index.NewConfiguration(index.New("lineitem", "l_orderkey")))
	if base != other {
		t.Fatalf("index on unrelated table changed cost: %f vs %f", base, other)
	}
}

// TestParamsChangePlanChoice proves the cost GUCs bite: with free random
// I/O, a non-covering seek wins at far lower selectivity thresholds than
// with expensive random I/O.
func TestParamsChangePlanChoice(t *testing.T) {
	cat := testCatalog()
	// ~2% selectivity seek with lookups.
	sql := "SELECT l_extendedprice FROM lineitem WHERE l_quantity = 17"
	cfg := index.NewConfiguration(index.New("lineitem", "l_quantity"))

	cheapRand := DefaultParams()
	cheapRand.RandPage = 0.01
	expensiveRand := DefaultParams()
	expensiveRand.RandPage = 50

	oCheap := NewOptimizerWithParams(cat, cheapRand)
	oDear := NewOptimizerWithParams(cat, expensiveRand)
	qc := mustQuery(t, cat, sql)

	cheapGain := oCheap.Cost(qc, nil) - oCheap.Cost(qc, cfg)
	dearGain := oDear.Cost(qc, nil) - oDear.Cost(qc, cfg)
	if cheapGain <= 0 {
		t.Fatal("cheap random I/O should make the seek attractive")
	}
	if dearGain >= cheapGain {
		t.Fatalf("expensive random I/O should reduce the seek's gain: %f >= %f", dearGain, cheapGain)
	}
	if got := oDear.Params().RandPage; got != 50 {
		t.Fatalf("params accessor = %f", got)
	}
}
