// What-if call elision (DESIGN.md §16). The optimizer memoizes per-query
// atomic costs — the empty configuration and each single-index
// configuration, keyed by interned index identity — and derives from the
// planner's access+join/tail decomposition (block.go) sound lower and
// upper bounds on the cost of any configuration:
//
//   - lower: the access+join subtotal is monotone non-increasing in the
//     configuration, so one what-if call against the union U of all
//     candidates gives LB(q, cfg) = AJ(q, U) + minTail(q) for every
//     cfg ⊆ U;
//   - upper: UB(q, cfg) = min(AJ(q, ∅), min over known member atomic AJ)
//   - maxTail(q).
//
// The advisor consults these bounds to skip what-if calls whose outcome
// is already decided (see internal/advisor), and FuzzCostBounds pins
// lower ≤ true cost ≤ upper. Bounds carry a relative slack of boundSlack
// so float re-association across the decomposition can never flip a
// comparison; memoized atomic costs are exact (the very float64 a real
// call returns), which is what makes elision bitwise-invisible.
package cost

import (
	"context"
	"math"
	"strings"
	"sync"

	"isum/internal/index"
	"isum/internal/workload"
)

// boundSlack is the relative safety margin on derived (re-associated)
// bounds. Bound sums reorder at most a few thousand positive terms, so
// their relative error is orders of magnitude below 1e-9.
const boundSlack = 1e-9

// slackDown widens a lower bound downward past float noise.
func slackDown(x float64) float64 { return x - math.Abs(x)*boundSlack }

// slackUp widens an upper bound upward past float noise.
func slackUp(x float64) float64 { return x + math.Abs(x)*boundSlack }

// QueryBounds is the per-query-text elision memo: exact atomic costs
// (empty and single-index configurations), configuration-independent
// tail bounds, the union-derived lower bound, and cached structural
// floors. Handles are obtained once per query via Optimizer.QueryBounds
// and then read lock-cheap and allocation-free from the advisor's greedy
// inner loop. Safe for concurrent use.
type QueryBounds struct {
	mu      sync.Mutex
	base    cacheVal // exact cost/AJ under the empty configuration
	baseOK  bool
	atomics map[int32]cacheVal // exact cost/AJ per interned single index

	minTail, maxTail float64 // Σ per-block tail bounds (blockTailBounds)
	tailsOK          bool

	lower   float64 // slacked AJ(q, U) + minTail; valid for any cfg ⊆ U
	lowerOK bool

	floors map[string]float64 // per lower-cased table: slacked structural floor
}

// ensureTails computes the tail bounds once per query. Callers hold b.mu.
func (b *QueryBounds) ensureTails(o *Optimizer, q *workload.Query) {
	if b.tailsOK {
		return
	}
	if q.Info != nil {
		for _, blk := range q.Info.Blocks {
			lo, hi := blockTailBounds(o.cat, blk, o.par)
			b.minTail += lo
			b.maxTail += hi
		}
	}
	b.tailsOK = true
}

// BaseCost returns the memoized exact cost under the empty configuration.
//
//lint:hotpath elision bound lookup in the greedy inner loop
func (b *QueryBounds) BaseCost() (float64, bool) {
	b.mu.Lock()
	v, ok := b.base.c, b.baseOK
	b.mu.Unlock()
	return v, ok
}

// AtomicCost returns the memoized exact cost under the single-index
// configuration identified by the interned id — bitwise the value a real
// what-if call returns, so substituting it is invisible.
//
//lint:hotpath elision bound lookup in the greedy inner loop
func (b *QueryBounds) AtomicCost(id int32) (float64, bool) {
	b.mu.Lock()
	v, ok := b.atomics[id]
	b.mu.Unlock()
	return v.c, ok
}

// Lower returns the lower bound on this query's cost under any
// configuration that is a subset of the union primed by PrimeUnionBound.
//
//lint:hotpath elision bound lookup in the greedy inner loop
func (b *QueryBounds) Lower() (float64, bool) {
	b.mu.Lock()
	v, ok := b.lower, b.lowerOK
	b.mu.Unlock()
	return v, ok
}

// UpperWith returns an upper bound on this query's cost under any
// configuration containing the index identified by id: the cheaper of the
// base and the member's atomic access+join subtotal, plus the worst-case
// tail.
//
//lint:hotpath elision bound lookup in the greedy inner loop
func (b *QueryBounds) UpperWith(id int32) (float64, bool) {
	b.mu.Lock()
	if !b.baseOK || !b.tailsOK {
		b.mu.Unlock()
		return 0, false
	}
	aj := b.base.aj
	if v, ok := b.atomics[id]; ok && v.aj < aj {
		aj = v.aj
	}
	u := aj + b.maxTail
	b.mu.Unlock()
	return u + math.Abs(u)*boundSlack, true
}

// QueryBounds returns the elision memo handle for q, creating it if
// needed. Handles are shared across queries with identical text (cost is
// a pure function of the text and the relevant configuration).
func (o *Optimizer) QueryBounds(q *workload.Query) *QueryBounds {
	return o.boundsFor(q.Text)
}

func (o *Optimizer) boundsFor(text string) *QueryBounds {
	o.elideMu.Lock()
	b, ok := o.elideBounds[text]
	if !ok {
		b = &QueryBounds{atomics: make(map[int32]cacheVal), floors: make(map[string]float64)}
		o.elideBounds[text] = b
	}
	o.elideMu.Unlock()
	return b
}

// InternIndexID maps a canonical index identity (index.Index.ID) to a
// small stable integer, so the hot bound lookups key on an int32 instead
// of a string. IDs are private to this optimizer.
func (o *Optimizer) InternIndexID(id string) int32 {
	o.elideMu.Lock()
	n, ok := o.elideIDs[id]
	if !ok {
		n = int32(len(o.elideIDs))
		o.elideIDs[id] = n
	}
	o.elideMu.Unlock()
	return n
}

// recordParts feeds the atomic-cost memo from cache-miss plan
// computations: the empty configuration and configurations with exactly
// one index relevant to the query (the fingerprint is then that index's
// identity). Multi-index fingerprints contain a separator and are not
// atomic.
func (o *Optimizer) recordParts(q *workload.Query, key string, v cacheVal) {
	if key != "" && strings.Contains(key, ";") {
		return
	}
	id := int32(-1)
	if key != "" {
		id = o.InternIndexID(key)
	}
	b := o.boundsFor(q.Text)
	b.mu.Lock()
	if id < 0 {
		b.base, b.baseOK = v, true
	} else {
		b.atomics[id] = v
	}
	b.mu.Unlock()
}

// PrimeUnionBound issues one real what-if call for q against the union of
// every candidate index and derives the query's lower bound, valid for
// all configurations the enumeration can probe (subsets of the union).
// Counted as a normal what-if call; a no-op when elision is disabled.
func (o *Optimizer) PrimeUnionBound(ctx context.Context, q *workload.Query, union *index.Configuration) error {
	if !o.elideOn {
		return nil
	}
	v, err := o.costParts(ctx, q, union)
	if err != nil {
		return err
	}
	b := o.boundsFor(q.Text)
	b.mu.Lock()
	b.ensureTails(o, q)
	lb := slackDown(v.aj + b.minTail)
	if lb < 0 {
		lb = 0
	}
	b.lower, b.lowerOK = lb, true
	b.mu.Unlock()
	return nil
}

// FloorCost returns a structural lower bound on q's cost under any
// configuration whose indexes all live on the named table — the
// "perfect index" floor used to prune candidates during selection
// without a what-if call. Cached per (query text, table); never a
// what-if call itself.
func (o *Optimizer) FloorCost(q *workload.Query, table string) float64 {
	if q.Info == nil {
		return 0
	}
	t := strings.ToLower(table)
	b := o.boundsFor(q.Text)
	b.mu.Lock()
	defer b.mu.Unlock()
	if f, ok := b.floors[t]; ok {
		return f
	}
	b.ensureTails(o, q)
	var aj float64
	for _, blk := range q.Info.Blocks {
		aj += floorBlockAJ(o.cat, blk, o.par, t)
	}
	f := slackDown(aj + b.minTail)
	if f < 0 {
		f = 0
	}
	b.floors[t] = f
	return f
}

// IndexRelevant reports whether the planner can consult ix anywhere in
// q's plan. The planner reads the configuration at exactly two decision
// points (block.go), both gated on structural, configuration-independent
// conditions: bestAccess considers an index only when its leading key is
// seekable (the table's most selective predicate on that column is an
// equality, range, or LIKE prefix) or the index covers the block's
// needed columns, and joinStepCost considers one only when its leading
// key is a join column of the table. When none of those holds for any
// block, every planner loop skips ix outright, so
// cost(q, cfg ∪ {ix}) == cost(q, cfg) bitwise for every configuration
// cfg — the advisor elides such probes wholesale
// (TestIndexIrrelevanceExact pins the equality).
func IndexRelevant(q *workload.Query, ix index.Index) bool {
	if q.Info == nil || len(ix.Keys) == 0 {
		return false
	}
	table := strings.ToLower(ix.Table)
	lead := strings.ToLower(ix.Keys[0])
	for _, blk := range q.Info.Blocks {
		uses := false
		for _, tu := range blk.Tables {
			if tu.Table == table {
				uses = true
				break
			}
		}
		if !uses {
			continue
		}
		// joinStepCost: index-nested-loop lookups need the leading key on
		// one of the table's join columns.
		for _, j := range blk.Joins {
			if (j.Left.Table == table && strings.ToLower(j.Left.Column) == lead) ||
				(j.Right.Table == table && strings.ToLower(j.Right.Column) == lead) {
				return true
			}
		}
		// bestAccess seek: the most selective predicate on the leading key
		// decides seekability, first one winning ties exactly as the
		// planner's bestPred map does.
		var best *workload.FilterPredicate
		for i := range blk.Filters {
			f := &blk.Filters[i]
			if f.Table != table || !strings.EqualFold(f.Column, ix.Keys[0]) {
				continue
			}
			if best == nil || f.Selectivity < best.Selectivity {
				best = f
			}
		}
		if best != nil && (best.SargableEq || best.Kind == workload.PredRange || best.Kind == workload.PredLike) {
			return true
		}
		// bestAccess covering scan.
		if !blk.SelectStar {
			cols, _ := blockNeededColumns(blk, table)
			if ix.Covers(cols) {
				return true
			}
		}
	}
	return false
}

// SetElision enables or disables the elision layer: the atomic-cost memo,
// the in-flight deduplication (singleflight) of identical plan
// computations, and the bound APIs the advisor consults. Elision is on by
// default and bitwise-invisible — it changes how many what-if calls are
// issued, never any cost value or recommendation. Call during setup,
// before the optimizer is used concurrently.
func (o *Optimizer) SetElision(on bool) { o.elideOn = on }

// ElisionEnabled reports whether the elision layer is active.
func (o *Optimizer) ElisionEnabled() bool { return o.elideOn }

// CountElidedCalls records n what-if calls answered from memoized values
// or bounds instead of being issued (cost/elide/hits).
func (o *Optimizer) CountElidedCalls(n int64) { o.elideHits.Add(n) }

// CountBoundPrune records one candidate pruned wholesale by a bound
// comparison (cost/elide/bound_prunes).
func (o *Optimizer) CountBoundPrune() { o.elidePrunes.Inc() }

// ElideStats reports the elision counters: what-if calls elided,
// candidates pruned by bounds, and plan computations that waited on an
// identical in-flight computation instead of duplicating it.
func (o *Optimizer) ElideStats() (hits, boundPrunes, singleflightWaits int64) {
	return o.elideHits.Value(), o.elidePrunes.Value(), o.elideWaits.Value()
}
