//go:build race

package cost

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation pins skip under -race, whose instrumentation allocates.
const raceEnabled = true
