package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// ApplyFixes applies the first suggested fix of each finding to the
// given sources (filename -> content, as in Package.Sources) and
// returns the rewritten files. Edits are applied back-to-front per
// file; a fix whose edits overlap one already scheduled is skipped
// (the next lint run re-derives it against the new text). The returned
// map contains only files that changed; skipped counts fixes dropped
// due to overlap or missing source.
func ApplyFixes(findings []Finding, sources map[string][]byte) (changed map[string][]byte, applied, skipped int) {
	type edit struct {
		TextEdit
		order int // tiebreak: earlier finding wins
	}
	perFile := make(map[string][]edit)
	for i, f := range findings {
		if len(f.Fixes) == 0 {
			continue
		}
		fix := f.Fixes[0]
		src, ok := sources[f.Pos.Filename]
		if !ok {
			skipped++
			continue
		}
		valid := true
		for _, e := range fix.Edits {
			if e.Start < 0 || e.End < e.Start || e.End > len(src) {
				valid = false
				break
			}
		}
		if !valid {
			skipped++
			continue
		}
		for _, e := range fix.Edits {
			perFile[f.Pos.Filename] = append(perFile[f.Pos.Filename], edit{e, i})
		}
	}

	changed = make(map[string][]byte)
	for name, edits := range perFile {
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			return edits[i].order < edits[j].order
		})
		// Drop overlapping edits (keep the earliest-finding one).
		kept := edits[:0]
		lastEnd := -1
		for _, e := range edits {
			if e.Start < lastEnd {
				skipped++
				continue
			}
			kept = append(kept, e)
			lastEnd = e.End
		}
		src := sources[name]
		var out []byte
		prev := 0
		for _, e := range kept {
			out = append(out, src[prev:e.Start]...)
			out = append(out, e.NewText...)
			prev = e.End
			applied++
		}
		out = append(out, src[prev:]...)
		if string(out) != string(src) {
			changed[name] = out
		}
	}
	return changed, applied, skipped
}

// Diff renders a unified-style diff between two versions of a file,
// used by the driver's -diff dry-run mode. It is a simple line-based
// LCS diff with n lines of context — small inputs only (lint fixes),
// not a general diff engine.
func Diff(name string, before, after []byte) string {
	a := splitLines(string(before))
	b := splitLines(string(after))
	ops := diffOps(a, b)
	if len(ops) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", name, name)

	const ctx = 2
	// Group ops into hunks: runs of changes with ctx lines of context.
	type hunk struct{ start, end int } // op index range [start, end)
	var hunks []hunk
	i := 0
	for i < len(ops) {
		if ops[i].kind == opEqual {
			i++
			continue
		}
		j := i
		for j < len(ops) {
			if ops[j].kind == opEqual {
				// End the hunk if the equal run is longer than 2*ctx.
				run := 0
				for j+run < len(ops) && ops[j+run].kind == opEqual {
					run++
				}
				if run > 2*ctx && j+run < len(ops) {
					break
				}
				if j+run == len(ops) {
					break
				}
				j += run
				continue
			}
			j++
		}
		hunks = append(hunks, hunk{i, j})
		i = j
	}

	for _, h := range hunks {
		start, end := h.start, h.end
		// Pull in leading/trailing context.
		lead := 0
		for start-1 >= 0 && ops[start-1].kind == opEqual && lead < ctx {
			start--
			lead++
		}
		trail := 0
		for end < len(ops) && ops[end].kind == opEqual && trail < ctx {
			end++
			trail++
		}
		aStart, bStart := ops[start].aLine, ops[start].bLine
		var aCount, bCount int
		for _, op := range ops[start:end] {
			if op.kind != opAdd {
				aCount++
			}
			if op.kind != opDelete {
				bCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart+1, aCount, bStart+1, bCount)
		for _, op := range ops[start:end] {
			switch op.kind {
			case opEqual:
				sb.WriteString(" " + op.text + "\n")
			case opDelete:
				sb.WriteString("-" + op.text + "\n")
			case opAdd:
				sb.WriteString("+" + op.text + "\n")
			}
		}
	}
	return sb.String()
}

type opKind uint8

const (
	opEqual opKind = iota
	opDelete
	opAdd
)

type diffOp struct {
	kind         opKind
	text         string
	aLine, bLine int // 0-based line numbers at which this op applies
}

// diffOps computes a line-level edit script via dynamic-programming LCS.
func diffOps(a, b []string) []diffOp {
	n, m := len(a), len(b)
	// lcs[i][j] = LCS length of a[i:], b[j:].
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	changes := false
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{opEqual, a[i], i, j})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{opDelete, a[i], i, j})
			changes = true
			i++
		default:
			ops = append(ops, diffOp{opAdd, b[j], i, j})
			changes = true
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{opDelete, a[i], i, j})
		changes = true
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{opAdd, b[j], i, j})
		changes = true
	}
	if !changes {
		return nil
	}
	return ops
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
