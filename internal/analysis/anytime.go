package analysis

import (
	"go/ast"
)

// AnytimeAnalyzer guards PR 3's anytime contract (DESIGN.md §9): in
// internal/core and internal/advisor, exported functions that take a
// context must never surface cancellation as an error — the contract is
// best-so-far results with Partial set, so returning a bare ctx.Err()
// (or context.Canceled / context.DeadlineExceeded) from the exported
// frame is a contract violation. Interior closures may return ctx.Err()
// to unwind worker loops; only the exported function's own return
// statements are checked.
var AnytimeAnalyzer = &Analyzer{
	ID:  "anytime",
	Doc: "exported ctx functions in internal/core and internal/advisor return best-so-far + Partial, never ctx.Err()",
	Run: runAnytime,
}

func runAnytime(pass *Pass) {
	if !pathHasSeq(pass.Path, "internal/core") && !pathHasSeq(pass.Path, "internal/advisor") {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !ast.IsExported(fd.Name.Name) {
				continue
			}
			if !hasCtxParam(pass, fd.Type) {
				continue
			}
			checkAnytimeReturns(pass, fd)
		}
	}
}

func checkAnytimeReturns(pass *Pass, fd *ast.FuncDecl) {
	inspectShallow(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			res = ast.Unparen(res)
			if call, ok := res.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Err" {
					if t := pass.TypeOf(sel.X); t != nil && isContextType(t) {
						pass.Reportf(res.Pos(), "anytime contract: return the best-so-far result with Partial set instead of ctx.Err()")
					}
				}
				continue
			}
			if sel, ok := res.(*ast.SelectorExpr); ok {
				if selIsPkgMember(pass.Info, sel, "context", "Canceled") ||
					selIsPkgMember(pass.Info, sel, "context", "DeadlineExceeded") {
					pass.Reportf(res.Pos(), "anytime contract: return the best-so-far result with Partial set instead of context.%s", sel.Sel.Name)
				}
			}
		}
		return true
	})
}
