package analysis

import (
	"path/filepath"
	"testing"
)

// TestHotpathCoversZeroAllocKernels pins the acceptance criterion that
// every kernel exercised by features.TestKernelZeroAlloc carries the
// //lint:hotpath marker, so the runtime pin and the static pin guard
// the same set. The core greedy inner-loop helpers ride on the same
// check.
func TestHotpathCoversZeroAllocKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	marked := map[string]map[string]bool{}
	for _, pkg := range pkgs {
		m := map[string]bool{}
		for _, name := range HotpathFuncNames(pkg) {
			m[name] = true
		}
		marked[pkg.Path] = m
	}

	// The TestKernelZeroAlloc set, by "Recv.Name" spelling.
	wantFeatures := []string{
		"SparseVec.WeightedJaccard", "SparseVec.Jaccard", "SummarySimilarity",
		"SparseVec.Sum", "SparseVec.SubClampedScaled", "SparseVec.ZeroShared",
		"SparseVec.AddScaled", "SparseVec.SharedWeights", "UpdateDelta",
		"SparseVec.Release",
	}
	feats := marked["isum/internal/features"]
	if feats == nil {
		t.Fatal("internal/features not loaded")
	}
	for _, name := range wantFeatures {
		if !feats[name] {
			t.Errorf("features kernel %s is exercised by TestKernelZeroAlloc but not marked //lint:hotpath", name)
		}
	}

	wantCore := []string{
		"QueryState.Similarity", "Influence", "BenefitAllPairs", "BenefitSummary",
	}
	core := marked["isum/internal/core"]
	if core == nil {
		t.Fatal("internal/core not loaded")
	}
	for _, name := range wantCore {
		if !core[name] {
			t.Errorf("core inner-loop helper %s is not marked //lint:hotpath", name)
		}
	}

	// The elision bound lookups of cost.TestKernelZeroAlloc — consulted
	// per (candidate, query) in the advisor's greedy inner loop.
	wantCost := []string{
		"QueryBounds.BaseCost", "QueryBounds.AtomicCost",
		"QueryBounds.Lower", "QueryBounds.UpperWith",
	}
	costPkg := marked["isum/internal/cost"]
	if costPkg == nil {
		t.Fatal("internal/cost not loaded")
	}
	for _, name := range wantCost {
		if !costPkg[name] {
			t.Errorf("cost bound lookup %s is exercised by TestKernelZeroAlloc but not marked //lint:hotpath", name)
		}
	}
}

// TestHotpathMarkerParsing pins the marker grammar: trailing notes are
// allowed, prefixes that merely share the spelling are not markers.
func TestHotpathMarkerParsing(t *testing.T) {
	cases := map[string]bool{
		"//lint:hotpath":                  true,
		"//lint:hotpath zero-alloc merge": true,
		"//lint:hotpath\tnote":            true,
		"//lint:hotpaths":                 false,
		"// lint:hotpath":                 false,
		"//lint:allow alloc reason":       false,
	}
	for text, want := range cases {
		if got := isHotpathMarker(text); got != want {
			t.Errorf("isHotpathMarker(%q) = %v, want %v", text, got, want)
		}
	}
}
