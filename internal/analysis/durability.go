package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// DurabilityAnalyzer guards PR 8's crash-safety ordering (DESIGN.md §14,
// §15) with three intra-function dataflow checks over the vfs seam:
//
//  1. fsync-before-rename — a Rename on an FS-shaped value must not be
//     reachable while any written file handle is still unsynced on some
//     path: rename publishes the file name, and a crash after an
//     unsynced publish can expose an empty or torn file behind a
//     fully-visible name (the write→fsync→rename discipline).
//  2. CRC framing — a frame written to a file handle (a buffer built
//     with binary length framing) must have a CRC32-C checksum folded
//     into it; an unchecksummed frame has no corruption oracle and
//     recovery cannot tell a torn tail from good data.
//  3. no write after poisoning — once a writer records an append/fsync
//     failure in its poison field (`failed`), no subsequent write to a
//     file handle may be reachable on that path: the failed record's
//     durability is ambiguous, so the only safe continuation is reopen.
//
// The checks are shape-typed, not import-typed: a "file handle" is any
// value whose method set has Write and Sync (vfs.File, *os.File, the
// fault injector's wrappers, fixture doubles), and an "FS" is anything
// with a Rename(string, string) method (vfs.FS, os.Rename). That keeps
// the analyzer honest on golden fixtures, which cannot import module
// packages, and catches code that bypasses the seam with os directly.
var DurabilityAnalyzer = &Analyzer{
	ID:  "durability",
	Doc: "fsync before rename on all paths; CRC32-C on every framed write; no write after writer poisoning",
	Run: runDurability,
}

func runDurability(pass *Pass) {
	for _, file := range pass.Files {
		forEachFunc(file, func(fs funcScope) {
			checkDurabilityFlow(pass, fs)
			checkFrameCRC(pass, fs)
		})
	}
}

// isFileHandleType reports whether t's method set contains both
// Write([]byte) (…) and Sync() — the durability-relevant file shape.
func isFileHandleType(t types.Type) bool {
	if t == nil {
		return false
	}
	return hasMethod(t, "Write") && hasMethod(t, "Sync")
}

// hasMethod reports whether name is in the method set of t or *t.
func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		ms = types.NewMethodSet(types.NewPointer(t))
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}

// isRenameCall reports whether call is a rename: the Rename method of an
// FS-shaped value (one that also has Create) or os.Rename itself.
func isRenameCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Rename" || len(call.Args) != 2 {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Path() == "os"
		}
	}
	t := pass.TypeOf(sel.X)
	return t != nil && hasMethod(t, "Create")
}

// fhState is the dataflow state of one tracked file-handle expression.
type fhState uint8

const (
	fhClean   fhState = iota // created/opened, nothing written
	fhSynced                 // written, then Sync()ed (nothing written since)
	fhWritten                // written since the last Sync (unsynced)
)

// durFact carries both dataflow problems: per-handle write/sync state
// (keyed by the handle expression's canonical spelling, so `w.f` and a
// local `f` each get their own slot) and the writer-poisoned bit.
type durFact struct {
	handles  map[string]fhState
	poisoned bool
}

type durFlow struct{ pass *Pass }

func (durFlow) entryFact() durFact { return durFact{} }

func (d durFlow) transfer(fact durFact, n ast.Node) durFact {
	// Poison assignments: any store to a field or variable named
	// "failed" of type error.
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if d.isPoisonTarget(lhs) {
				fact = fact.clone()
				fact.poisoned = true
			}
		}
	}
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recvT := d.pass.TypeOf(sel.X)
		if !isFileHandleType(recvT) {
			return true
		}
		key, ok := exprKey(sel.X)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteAt":
			fact = fact.clone()
			fact.handles[key] = fhWritten
		case "Sync":
			if fact.handles[key] == fhWritten {
				fact = fact.clone()
				fact.handles[key] = fhSynced
			}
		case "Close":
			// Close without sync keeps the unsynced state: close does not
			// make data durable. A synced-then-closed handle is done.
			if fact.handles[key] == fhSynced {
				fact = fact.clone()
				delete(fact.handles, key)
			}
		}
		return true
	})
	return fact
}

func (d durFlow) isPoisonTarget(lhs ast.Expr) bool {
	var name string
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.Ident:
		name = x.Name
	default:
		return false
	}
	if name != "failed" {
		return false
	}
	t := d.pass.TypeOf(lhs)
	return t != nil && isErrorType(t)
}

func (durFlow) merge(a, b durFact) durFact {
	out := durFact{handles: make(map[string]fhState, len(a.handles)+len(b.handles))}
	out.poisoned = a.poisoned || b.poisoned
	for k, s := range a.handles {
		out.handles[k] = s
	}
	for k, s := range b.handles {
		// Written (unsynced on some path) dominates synced dominates clean.
		if cur, ok := out.handles[k]; !ok || s > cur {
			out.handles[k] = s
		}
	}
	return out
}

func (durFlow) equal(a, b durFact) bool {
	if a.poisoned != b.poisoned || len(a.handles) != len(b.handles) {
		return false
	}
	for k, s := range a.handles {
		if b.handles[k] != s {
			return false
		}
	}
	return true
}

func (f durFact) clone() durFact {
	out := durFact{poisoned: f.poisoned, handles: make(map[string]fhState, len(f.handles)+1)}
	for k, s := range f.handles {
		out.handles[k] = s
	}
	return out
}

// exprKey canonicalises a simple ident/selector chain ("w.f", "fs") for
// use as a dataflow key; non-simple expressions are not tracked.
func exprKey(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	}
	return "", false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return t == types.Universe.Lookup("error").Type()
	}
	return named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// checkDurabilityFlow runs the write/sync/poison dataflow over one
// function and reports (a) renames reachable with an unsynced written
// handle and (b) file writes reachable after poisoning.
func checkDurabilityFlow(pass *Pass, fs funcScope) {
	relevant := false
	inspectShallow(fs.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Write", "WriteString", "Sync", "Rename":
					relevant = true
				}
			}
		}
		return !relevant
	})
	if !relevant {
		return
	}
	g := buildCFG(fs.body)
	d := durFlow{pass: pass}
	res := solveForward(g, d)

	type report struct {
		pos token.Pos
		msg string
	}
	var reports []report
	eachReachedBlock(g, res, func(blk *cfgBlock, fact durFact) {
		for _, n := range blk.nodes {
			// Check invariants against the fact *before* this node.
			inspectShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isRenameCall(pass, call) {
					for _, key := range sortedHandleKeys(fact.handles) {
						if fact.handles[key] == fhWritten {
							reports = append(reports, report{call.Pos(),
								"Rename is reachable while " + key + " has unsynced writes on some path; Sync the written file before renaming it into place (write->fsync->rename, DESIGN.md §14)"})
						}
					}
				}
				if fact.poisoned {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						if isWriteMethod(sel.Sel.Name) && isFileHandleType(pass.TypeOf(sel.X)) {
							reports = append(reports, report{call.Pos(),
								"write is reachable after the writer was poisoned (failed = err); a poisoned writer's LSN durability is ambiguous - return and force a reopen instead"})
						}
					}
				}
				return true
			})
			fact = d.transfer(fact, n)
		}
	})
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].pos != reports[j].pos {
			return reports[i].pos < reports[j].pos
		}
		return reports[i].msg < reports[j].msg
	})
	seen := map[string]bool{}
	for _, r := range reports {
		k := pass.Fset.Position(r.pos).String() + r.msg
		if seen[k] {
			continue
		}
		seen[k] = true
		pass.Reportf(r.pos, "%s", r.msg)
	}
}

// sortedHandleKeys returns the tracked handle keys in canonical order.
func sortedHandleKeys(handles map[string]fhState) []string {
	keys := make([]string, 0, len(handles))
	for k := range handles {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// crcCallPat matches callee names that fold a checksum into a buffer.
var crcCallPat = regexp.MustCompile(`(?i)(crc|checksum|sum32|adler)`)

// framingPat matches the binary length-framing helpers.
var framingPat = regexp.MustCompile(`^(AppendUint32|AppendUint64|PutUint32|PutUint64)$`)

// checkFrameCRC flags writes of framed buffers with no checksum: for
// every f.Write(buf) on a file handle, if buf's intra-function def chain
// contains a binary framing call but no CRC/checksum call, the frame has
// no corruption oracle.
func checkFrameCRC(pass *Pass, fs funcScope) {
	inspectShallow(fs.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Write" || len(call.Args) != 1 {
			return true
		}
		if !isFileHandleType(pass.TypeOf(sel.X)) {
			return true
		}
		root := rootObject(pass, call.Args[0])
		if root == nil {
			return true
		}
		framed, checksummed := defChainCalls(pass, fs.body, root)
		if framed && !checksummed {
			pass.Reportf(call.Pos(), "framed buffer %q is written without a CRC32-C checksum; recovery cannot detect a torn or corrupt record (DESIGN.md §14)", root.Name())
		}
		return true
	})
}

// defChainCalls scans every assignment to obj (or to aliases feeding it)
// in the function and reports whether the right-hand sides contain a
// binary framing call and a checksum call.
func defChainCalls(pass *Pass, body *ast.BlockStmt, obj types.Object) (framed, checksummed bool) {
	objs := map[types.Object]bool{obj: true}
	// One round of reverse aliasing: obj = f(x) pulls x's assignments in.
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			if o := pass.Info.ObjectOf(id); o != nil && objs[o] {
				ast.Inspect(as.Rhs[i], func(m ast.Node) bool {
					if rid, ok := m.(*ast.Ident); ok {
						if ro := pass.Info.ObjectOf(rid); ro != nil && ro != o {
							if _, isVar := ro.(*types.Var); isVar {
								objs[ro] = true
							}
						}
					}
					return true
				})
			}
		}
		return true
	})
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		touches := false
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if o := pass.Info.ObjectOf(id); o != nil && objs[o] {
					touches = true
				}
			}
		}
		if !touches {
			return true
		}
		for _, rhs := range as.Rhs {
			ast.Inspect(rhs, func(m ast.Node) bool {
				c, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(c)
				if framingPat.MatchString(name) {
					framed = true
				}
				if crcCallPat.MatchString(name) {
					checksummed = true
				}
				return true
			})
		}
		return true
	})
	return framed, checksummed
}

// isWriteMethod reports whether a method name writes file content.
func isWriteMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteAt":
		return true
	}
	return false
}
