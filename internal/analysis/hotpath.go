package analysis

import (
	"go/ast"
	"strings"
)

// The //lint:hotpath marker opts a function into the alloc analyzer's
// zero-allocation discipline (DESIGN.md §15). It lives in the function's
// doc comment:
//
//	// WeightedJaccard computes … allocation-free …
//	//lint:hotpath
//	func (a SparseVec) WeightedJaccard(b SparseVec) float64 { … }
//
// Optional trailing text after the marker is a note for readers; the
// analyzer ignores it. The marker is how PR 5's TestKernelZeroAlloc pins
// become statically enforced: the runtime test proves the steady state
// allocates nothing, the marker makes every future edit to a pinned
// kernel re-prove it at lint time.
const hotpathPrefix = "//lint:hotpath"

// isHotpathMarker reports whether a comment line is the marker.
func isHotpathMarker(text string) bool {
	if !strings.HasPrefix(text, hotpathPrefix) {
		return false
	}
	rest := strings.TrimPrefix(text, hotpathPrefix)
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// hotpathFuncs returns the function declarations in file carrying the
// marker in their doc comment.
func hotpathFuncs(file *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || fd.Body == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if isHotpathMarker(c.Text) {
				out = append(out, fd)
				break
			}
		}
	}
	return out
}

// HotpathFuncNames returns the names of the marked functions in a
// package ("Recv.Name" for methods), sorted by position. Tests use it to
// assert the markers cover the kernels that the zero-alloc runtime pins
// exercise.
func HotpathFuncNames(pkg *Package) []string {
	var names []string
	for _, file := range pkg.Files {
		for _, fd := range hotpathFuncs(file) {
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if t := recvTypeName(fd.Recv.List[0].Type); t != "" {
					name = t + "." + name
				}
			}
			names = append(names, name)
		}
	}
	return names
}

// recvTypeName renders a receiver type expression's base type name.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	}
	return ""
}
