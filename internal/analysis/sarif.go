package analysis

import (
	"encoding/json"
	"path/filepath"
	"sort"
)

// SARIF emits findings as a minimal SARIF 2.1.0 log — the subset CI
// annotation consumers need: one run, the analyzer suite as rules, one
// result per finding with a physical location. Paths are made relative
// to root (slash-separated) so the log is machine-portable.
func SARIF(findings []Finding, analyzers []*Analyzer, root string) ([]byte, error) {
	type sarifRule struct {
		ID   string `json:"id"`
		Desc struct {
			Text string `json:"text"`
		} `json:"shortDescription"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type sarifLocation struct {
		PhysicalLocation struct {
			ArtifactLocation struct {
				URI string `json:"uri"`
			} `json:"artifactLocation"`
			Region sarifRegion `json:"region"`
		} `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID  string `json:"ruleId"`
		Level   string `json:"level"`
		Message struct {
			Text string `json:"text"`
		} `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}

	var rules []sarifRule
	for _, a := range analyzers {
		r := sarifRule{ID: a.ID}
		r.Desc.Text = a.Doc
		rules = append(rules, r)
	}
	// The allow pseudo-analyzer produces findings too.
	ar := sarifRule{ID: "allow"}
	ar.Desc.Text = "//lint:allow directives must carry a reason and suppress a live finding"
	rules = append(rules, ar)
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		var r sarifResult
		r.RuleID = f.Analyzer
		r.Level = "error"
		r.Message.Text = f.Message
		var loc sarifLocation
		loc.PhysicalLocation.ArtifactLocation.URI = relSlash(root, f.Pos.Filename)
		loc.PhysicalLocation.Region = sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column}
		r.Locations = []sarifLocation{loc}
		results = append(results, r)
	}

	doc := map[string]any{
		"$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]any{{
			"tool": map[string]any{
				"driver": map[string]any{
					"name":           "isumlint",
					"informationUri": "DESIGN.md §15",
					"rules":          rules,
				},
			},
			"results": results,
		}},
	}
	return json.MarshalIndent(doc, "", "  ")
}

// relSlash renders path relative to root with forward slashes; when the
// path is outside root it is returned unchanged.
func relSlash(root, path string) string {
	if root == "" {
		return filepath.ToSlash(path)
	}
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
