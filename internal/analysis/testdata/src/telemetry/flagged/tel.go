// Package tel exercises the telemetry analyzer with a local mirror of
// the registry/span shape: leaked spans, discarded handles, and
// non-conforming metric names must be flagged.
package tel

// Registry is a minimal metrics registry (structural match: a named
// Registry type with Start/Counter methods).
type Registry struct{}

// Span is one phase; End closes it.
type Span struct{}

// Start opens a span.
func (r *Registry) Start(name string) *Span {
	_ = name
	return &Span{}
}

// End closes the span.
func (s *Span) End() {}

// Counter registers the named counter.
func (r *Registry) Counter(name string) int {
	_ = name
	return 0
}

// Leak starts a span and never ends it.
func Leak(r *Registry) *Span {
	sp := r.Start("area/sub/phase")
	return sp
}

// Discard throws the span handle away.
func Discard(r *Registry) {
	r.Start("area/sub/other")
}

// BadName registers a counter outside the area/sub/name convention.
func BadName(r *Registry) {
	r.Counter("TotalCalls")
}
