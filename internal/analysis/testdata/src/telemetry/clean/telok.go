// Package telok holds telemetry-hygienic code: spans end in the
// function that starts them and names follow area/sub/name. No findings
// expected.
package telok

// Registry is a minimal metrics registry.
type Registry struct{}

// Span is one phase; End closes it.
type Span struct{}

// Start opens a span.
func (r *Registry) Start(name string) *Span {
	_ = name
	return &Span{}
}

// End closes the span.
func (s *Span) End() {}

// Counter registers the named counter.
func (r *Registry) Counter(name string) int {
	_ = name
	return 0
}

// Deferred ends its span on the way out.
func Deferred(r *Registry) {
	sp := r.Start("core/compress")
	defer sp.End()
	r.Counter("core/greedy/rounds")
}

// Explicit ends its span on every path without defer.
func Explicit(r *Registry, fail bool) error {
	sp := r.Start("cost/whatif/probe")
	if fail {
		sp.End()
		return nil
	}
	sp.End()
	return nil
}
