// Package printallowed shows the escape hatch: a //lint:allow telemetry
// directive with a reason suppresses the bare-output finding, e.g. for a
// crash dump that must reach stderr even if the logger is wedged.
package printallowed

import (
	"fmt"
	"os"
)

// DumpPanic writes a last-gasp diagnostic straight to stderr.
func DumpPanic(v any) {
	fmt.Fprintf(os.Stderr, "panic state: %v\n", v) //lint:allow telemetry crash-path dump must not depend on a live logger
}
