// Package telemetry is loaded under fixture/internal/telemetry: the
// telemetry package implements the output sinks, so it may write to
// stderr directly and the bare-output check exempts it by path.
package telemetry

import (
	"fmt"
	"os"
)

// WriteTrace prints the span tree to stderr on -trace.
func WriteTrace(lines []string) {
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, l)
	}
}
