// Package printer exercises the bare-output check: loaded under
// fixture/internal/printer, so every direct stdout/stderr write must be
// flagged, while writes to caller-provided io.Writers stay legal.
package printer

import (
	"fmt"
	"io"
	"os"
)

// Announce prints straight to stdout.
func Announce(n int) {
	fmt.Println("selected", n)
}

// Complain prints formatted output to stderr.
func Complain(err error) {
	fmt.Fprintf(os.Stderr, "failed: %v\n", err)
}

// RawStderr bypasses fmt entirely.
func RawStderr(msg string) {
	os.Stderr.WriteString(msg)
}

// RawStdout writes bytes to stdout.
func RawStdout(b []byte) {
	os.Stdout.Write(b)
}

// Report writes to a caller-chosen writer — the legal pattern; not
// flagged even though it uses fmt.
func Report(w io.Writer, n int) {
	fmt.Fprintf(w, "selected %d\n", n)
}
