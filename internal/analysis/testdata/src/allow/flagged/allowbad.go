// Package allowbad exercises directive hygiene: a reasonless
// //lint:allow is a finding and suppresses nothing, and a directive
// that matches no finding is reported as unused.
package allowbad

import "time"

// Now carries a reasonless directive: both the directive and the
// underlying determinism finding are reported.
func Now() time.Time {
	return time.Now() //lint:allow determinism
}

// Later carries a directive that suppresses nothing.
func Later() int {
	//lint:allow concurrency nothing concurrent happens here
	return 1
}
