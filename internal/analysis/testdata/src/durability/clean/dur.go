// Package dur shows the crash-safe idioms the analyzer must accept:
// write→fsync→rename publication, CRC32-C framed records, and a writer
// that stops at the first poison.
package dur

import (
	"encoding/binary"
	"hash/crc32"
)

// FS is the filesystem seam shape (Create + Rename).
type FS interface {
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// File is the durability-relevant handle shape (Write + Sync).
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Publish writes, syncs, closes, then renames — the only safe order.
func Publish(fs FS, path string, payload []byte) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return fs.Rename(tmp, path)
}

// AppendFrame frames a record with its length and CRC32-C checksum.
func AppendFrame(f File, payload []byte) error {
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)
	_, err := f.Write(frame)
	return err
}

// Writer is a poisoning writer in the walWriter shape.
type Writer struct {
	f      File
	failed error
}

// Append returns immediately once poisoned; no write follows the
// failure record.
func (w *Writer) Append(rec []byte) error {
	if w.failed != nil {
		return w.failed
	}
	if _, err := w.f.Write(rec); err != nil {
		w.failed = err
		return err
	}
	return nil
}
