// Package dur exercises reasoned suppression of the durability rules:
// a scratch file renamed without fsync, deliberately — it is recreated
// from scratch on every boot, so a torn publish is harmless.
package dur

// FS is the filesystem seam shape (Create + Rename).
type FS interface {
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
}

// File is the durability-relevant handle shape (Write + Sync).
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// SwapScratch publishes a best-effort cache file; loss on crash is
// acceptable by design.
func SwapScratch(fs FS, path string, payload []byte) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, path) //lint:allow durability scratch cache, rebuilt on boot; torn publish is harmless
}
