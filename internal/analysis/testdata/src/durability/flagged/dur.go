// Package dur breaks each durability invariant once: rename before
// fsync, an unchecksummed framed write, and a write after the writer
// poisoned itself. The FS/File shapes mirror the vfs seam so the
// analyzer's duck typing engages without importing module packages.
package dur

import "encoding/binary"

// FS is the filesystem seam shape (Create + Rename).
type FS interface {
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// File is the durability-relevant handle shape (Write + Sync).
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// PublishUnsynced renames a written file into place without ever
// syncing it — a crash after the rename can expose a torn file behind
// a fully-visible name.
func PublishUnsynced(fs FS, path string, payload []byte) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, path)
}

// AppendFrame length-frames a record but never folds a checksum into
// it, so recovery has no corruption oracle for the tail.
func AppendFrame(f File, payload []byte) error {
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	_, err := f.Write(frame)
	return err
}

// Writer is a poisoning writer in the walWriter shape.
type Writer struct {
	f      File
	failed error
}

// Append keeps writing after recording a failure, even though the
// poisoned record's durability is ambiguous.
func (w *Writer) Append(rec []byte) error {
	if _, err := w.f.Write(rec); err != nil {
		w.failed = err
	}
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	return nil
}
