// Package clean holds determinism-safe variants of the flagged
// constructs: no findings expected.
package clean

import (
	"math/rand"
	"sort"
)

// Roll draws from an explicitly seeded generator.
func Roll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// SumWeights collects and sums in canonical order (the detSum pattern).
func SumWeights(m map[string]float64) float64 {
	vals := make([]float64, 0, len(m))
	for _, w := range m {
		vals = append(vals, w)
	}
	return detSum(vals)
}

func detSum(vals []float64) float64 {
	sort.Float64s(vals)
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

// Keys sorts the collected keys before returning them.
func Keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PerKey updates an iteration-local value per key: order-independent.
func PerKey(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		var local []float64
		local = append(local, vs...)
		sort.Float64s(local)
		out[k] = local[0]
	}
	return out
}
