// Package clean holds determinism-safe variants of the flagged
// constructs: no findings expected.
package clean

import (
	"math/rand"
	"sort"
)

// Roll draws from an explicitly seeded generator.
func Roll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// SumWeights collects and sums in canonical order (the detSum pattern).
func SumWeights(m map[string]float64) float64 {
	vals := make([]float64, 0, len(m))
	for _, w := range m {
		vals = append(vals, w)
	}
	return detSum(vals)
}

func detSum(vals []float64) float64 {
	sort.Float64s(vals)
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

// Keys sorts the collected keys before returning them.
func Keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PerKey updates an iteration-local value per key: order-independent.
func PerKey(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		var local []float64
		local = append(local, vs...)
		sort.Float64s(local)
		out[k] = local[0]
	}
	return out
}

// intVec mimics the SparseVec collect-into-struct idiom: parallel slices
// collected in map order, canonicalised by a sort method on the struct
// they flow into. One aliasing hop (vec := intVec{...}) plus the method
// receiver must count as canonicalisation.
type intVec struct {
	ids []uint32
	ws  []float64
}

func (v *intVec) sortByID() {
	sort.Slice(v.ids, func(i, j int) bool { return v.ids[i] < v.ids[j] })
}

// FromMap collects map entries into parallel slices and sorts them via
// the struct's method: the merge-join ascending-ID regime.
func FromMap(m map[uint32]float64) intVec {
	ids := make([]uint32, 0, len(m))
	ws := make([]float64, 0, len(m))
	for id, w := range m {
		ids = append(ids, id)
		ws = append(ws, w)
	}
	vec := intVec{ids: ids, ws: ws}
	vec.sortByID()
	return vec
}

// MergeSum accumulates over already-sorted parallel slices: ascending-ID
// iteration is canonical, no map range involved, never flagged.
func MergeSum(v intVec) float64 {
	var s float64
	for i := 0; i < len(v.ids); i++ {
		s += v.ws[i]
	}
	return s
}
