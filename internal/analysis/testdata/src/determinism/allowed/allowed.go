// Package allowed repeats the determinism violations behind reasoned
// //lint:allow directives: the expected finding set is empty.
package allowed

import "time"

// Stamp reads the wall clock for telemetry only.
func Stamp() time.Time {
	return time.Now() //lint:allow determinism elapsed-time telemetry only
}

// SumWeights is allowed by a standalone directive on the line above.
func SumWeights(m map[string]float64) float64 {
	var s float64
	for _, w := range m {
		//lint:allow determinism diagnostic-only sum, never compared across runs
		s += w
	}
	return s
}
