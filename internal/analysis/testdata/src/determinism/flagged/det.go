// Package det exercises the determinism analyzer: every construct in
// this file must be flagged.
package det

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now()
}

// Roll draws from the shared unseeded source.
func Roll() int {
	return rand.Intn(6)
}

// SumWeights accumulates a float in map-iteration order.
func SumWeights(m map[string]float64) float64 {
	var s float64
	for _, w := range m {
		s += w
	}
	return s
}

// Keys collects map keys and never sorts them.
func Keys(m map[string]float64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

type vec struct {
	ids []uint32
}

func (v *vec) use() {}

// Collect aliases the collected slice into a struct but only calls a
// non-canonicalising method on it: still flagged.
func Collect(m map[uint32]float64) vec {
	var ids []uint32
	for id := range m {
		ids = append(ids, id)
	}
	v := vec{ids: ids}
	v.use()
	return v
}
