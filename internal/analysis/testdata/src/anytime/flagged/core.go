// Package core is loaded under the import path fixture/internal/core,
// where the anytime contract applies: exported ctx functions must not
// surface cancellation as an error.
package core

import "context"

// Result is a best-so-far result.
type Result struct {
	Partial bool
	Rounds  int
}

// Run returns a bare ctx.Err() — an anytime-contract violation.
func Run(ctx context.Context) (*Result, error) {
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return &Result{}, nil
}

// Wait returns the cancellation sentinel directly.
func Wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return context.Canceled
	default:
	}
	return nil
}
