// Package coreok is loaded under fixture/internal/core and honours the
// anytime contract: cancellation yields best-so-far + Partial. Interior
// closures may unwind with ctx.Err(); only exported frames are checked.
package coreok

import "context"

// Result is a best-so-far result.
type Result struct {
	Partial bool
	Rounds  int
}

// Run keeps the partial result on cancellation.
func Run(ctx context.Context) (*Result, error) {
	res := &Result{}
	err := each(3, func(i int) error {
		if ctx.Err() != nil {
			return ctx.Err() // interior unwind, converted below
		}
		res.Rounds++
		return nil
	})
	if err != nil {
		res.Partial = true
	}
	return res, nil
}

// unexported frames are outside the contract's scope.
func drain(ctx context.Context) error {
	return ctx.Err()
}

func each(n int, f func(int) error) error {
	for i := 0; i < n; i++ {
		if err := f(i); err != nil {
			return err
		}
	}
	_ = drain
	return nil
}
