// Package alloc exercises the hotpath allocation discipline: every
// construct below heap-allocates inside a //lint:hotpath function, and
// the pool Get at the bottom can leak past a return.
package alloc

import (
	"fmt"
	"sync"
)

type buf struct {
	ids []uint32
	ws  []float64
}

var bufs = sync.Pool{New: func() any { return new(buf) }}

// sink keeps results alive so the fixture compiles without vet noise.
var sink any

// Grow makes and grows a fresh slice per call.
//
//lint:hotpath
func Grow(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Literals builds slice, map, and pointer composites.
//
//lint:hotpath
func Literals() {
	s := []int{1, 2, 3}
	m := map[string]int{"a": 1}
	p := &buf{}
	sink = s
	sink = m
	sink = p
}

// Strings concatenates and converts.
//
//lint:hotpath
func Strings(a, b string) int {
	joined := a + b
	raw := []byte(joined)
	return len(raw)
}

// Closure allocates its environment.
//
//lint:hotpath
func Closure(n int) func() int {
	return func() int { return n }
}

// Boxed passes a flat struct to an interface parameter.
//
//lint:hotpath
func Boxed(b buf) {
	sink = identity(b)
}

func identity(v any) any { return v }

// Format calls into fmt, which allocates its formatting state.
//
//lint:hotpath
func Format(n int) string {
	return fmt.Sprintf("%d", n)
}

// LeakyGet takes pooled scratch but skips the Put on the error path.
//
//lint:hotpath
func LeakyGet(fail bool) int {
	b := bufs.Get().(*buf)
	if fail {
		return -1
	}
	n := len(b.ids)
	bufs.Put(b)
	return n
}
