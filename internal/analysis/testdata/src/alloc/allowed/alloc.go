// Package alloc exercises reasoned suppression of the hotpath
// discipline: the one allocation below is deliberate (a cold init path
// inside an otherwise hot function) and carries an allow.
package alloc

// Tail returns the last n elements, copying only on the cold resize
// path.
//
//lint:hotpath
func Tail(src []int, n int) []int {
	if n > len(src) {
		out := make([]int, len(src)) //lint:allow alloc cold resize path, amortized by callers
		copy(out, src)
		return out
	}
	return src[len(src)-n:]
}
