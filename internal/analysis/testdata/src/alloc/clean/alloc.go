// Package alloc shows the allocation-free kernel idioms the analyzer
// must accept: pooled scratch with paired Get/Put, appends into pool-
// derived or caller-owned storage, and unrestricted allocation in
// unmarked functions.
package alloc

import "sync"

type buf struct {
	ids []uint32
	ws  []float64
}

var bufs = sync.Pool{New: func() any { return new(buf) }}

// Merge unions a into dst through pooled scratch — the SparseVec merge
// shape: Get, reslice to zero length, append, swap, Put.
//
//lint:hotpath
func Merge(dst, a []uint32) []uint32 {
	b := bufs.Get().(*buf)
	ids := b.ids[:0]
	ids = append(ids, dst...)
	ids = append(ids, a...)
	b.ids = ids
	bufs.Put(b)
	return dst
}

// Fill appends into the caller-provided buffer; its growth policy is
// the caller's to amortize.
//
//lint:hotpath
func Fill(dst []float64, n int) []float64 {
	for i := 0; i < n; i++ {
		dst = append(dst, float64(i))
	}
	return dst
}

// Build is unmarked: it may allocate freely.
func Build(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
