// Package errs shows the error-hygiene idioms the analyzer must
// accept: explicit discards, %w wrapping, errors.Is comparison, and
// the exempt never-failing writers.
package errs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteAll discards the error-path Close explicitly; the write error
// is already on its way out.
func WriteAll(path string, payload []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Parse wraps the underlying error so callers can unwrap it.
func Parse(raw string) (int, error) {
	var n int
	if _, err := fmt.Sscanf(raw, "%d", &n); err != nil {
		return 0, fmt.Errorf("errs: bad int %q: %w", raw, err)
	}
	return n, nil
}

// Drain matches the sentinel through any wrapping.
func Drain(r io.Reader, buf []byte) error {
	for {
		_, err := r.Read(buf)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// Describe uses the exempt infallible writers without ceremony.
func Describe(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}
