// Package errs is the representative pre-fix fixture for the error-
// hygiene rules: it keeps, in fixture form, the three bug classes that
// were live in the module before this analyzer landed — a silently
// discarded Close on an error path, a %v that severs the error chain,
// and a == sentinel comparison. Every finding here carries a fix; the
// .fixed golden alongside pins the -fix output byte-for-byte.
package errs

import (
	"fmt"
	"io"
	"os"
)

// WriteAll writes payload and discards the Close error on the error
// path.
func WriteAll(path string, payload []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Parse stringifies the underlying error, severing the chain for every
// caller's errors.Is/As.
func Parse(raw string) (int, error) {
	var n int
	if _, err := fmt.Sscanf(raw, "%d", &n); err != nil {
		return 0, fmt.Errorf("errs: bad int %q: %v", raw, err)
	}
	return n, nil
}

// Drain compares the sentinel with ==; a wrapped io.EOF never matches.
func Drain(r io.Reader, buf []byte) error {
	for {
		_, err := r.Read(buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}
