// Package ctxok holds context-hygienic code: no findings expected.
package ctxok

import "context"

// Run threads its leading ctx into the ctx-aware callee.
func Run(ctx context.Context, name string) error {
	helperContext(ctx, 1)
	_ = name
	return nil
}

// Derive passes a derived (still caller-rooted) context on.
func Derive(ctx context.Context) {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	helperContext(sub, 2)
}

// Plain has no ctx in scope, so calling the plain variant is fine.
func Plain() {
	helper(1)
}

func helper(n int) { _ = n }

func helperContext(ctx context.Context, n int) { _, _ = ctx, n }
