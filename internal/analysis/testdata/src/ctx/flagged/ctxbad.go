// Package ctxbad exercises the ctx analyzer: misplaced parameters,
// stored contexts, detached Backgrounds, and dropped ctx variants.
package ctxbad

import "context"

// Job stores a context in a struct field.
type Job struct {
	ctx context.Context
	n   int
}

// Run takes its context in the wrong position.
func Run(name string, ctx context.Context) error {
	_ = name
	_ = ctx
	return nil
}

// Detach holds a ctx but forges a fresh one for the callee.
func Detach(ctx context.Context) {
	helperContext(context.Background(), 1)
}

// Drop holds a ctx but calls the ctx-less variant of helper.
func Drop(ctx context.Context) {
	helper(1)
}

func helper(n int) { _ = n }

func helperContext(ctx context.Context, n int) { _, _ = ctx, n }
