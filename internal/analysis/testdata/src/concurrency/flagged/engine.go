// Package engine exercises the concurrency analyzer from a library
// import path (fixture/internal/engine): bare goroutines and locks by
// value must be flagged.
package engine

import "sync"

// Fire spawns a bare goroutine outside internal/parallel.
func Fire(ch chan int) {
	go func() { ch <- 1 }()
}

// Lock receives a mutex by value.
func Lock(mu sync.Mutex) {
	_ = mu
}

// Group returns a WaitGroup by value.
func Group() sync.WaitGroup {
	return sync.WaitGroup{}
}

// Guarded carries a lock.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Snapshot copies the lock through its value receiver.
func (g Guarded) Snapshot() int {
	return g.n
}
