// Package pool is loaded under the import path
// fixture/internal/parallel, where bare goroutines are the worker pool's
// own business; locks travel by pointer. No findings expected.
package pool

import "sync"

// Fan spawns workers — legal inside internal/parallel.
func Fan(n int, f func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

// Lock takes the mutex by pointer.
func Lock(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}
