// Package lock shows the lock and goroutine idioms the analyzer must
// accept: defer discipline, explicit release on every path, read locks,
// and joinable goroutines (WaitGroup and channel-handoff).
package lock

import "sync"

// Table is a mutex-guarded map in the registry shape.
type Table struct {
	mu sync.RWMutex
	m  map[string]int
}

// Bump holds the lock for the whole body via defer.
func (t *Table) Bump(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[key]++
}

// Get releases the read lock on both paths.
func (t *Table) Get(key string) (int, bool) {
	t.mu.RLock()
	v, ok := t.m[key]
	if !ok {
		t.mu.RUnlock()
		return 0, false
	}
	t.mu.RUnlock()
	return v, true
}

// Snapshot copies under the read lock, releases, then sends — the
// blocking operation happens lock-free.
func (t *Table) Snapshot(ch chan<- int, key string) {
	t.mu.RLock()
	v := t.m[key]
	t.mu.RUnlock()
	ch <- v
}

// FanOut joins its workers through a WaitGroup.
func FanOut(work []func()) {
	var wg sync.WaitGroup
	for _, fn := range work {
		wg.Add(1)
		fn := fn
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}

// Produce hands its goroutine's completion to the channel consumer.
func Produce(n int) <-chan int {
	ch := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			ch <- i
		}
		close(ch)
	}()
	return ch
}
