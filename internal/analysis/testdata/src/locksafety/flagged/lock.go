// Package lock breaks each lock-safety invariant once: a lock that can
// leak past a return, a double Lock, a channel send under the lock,
// and an unjoinable goroutine.
package lock

import "sync"

// Table is a mutex-guarded map in the registry shape.
type Table struct {
	mu sync.Mutex
	m  map[string]int
}

// Leak returns early with the lock still held.
func (t *Table) Leak(key string) int {
	t.mu.Lock()
	if v, ok := t.m[key]; ok {
		return v
	}
	t.mu.Unlock()
	return 0
}

// Double re-locks a mutex it may already hold.
func (t *Table) Double(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mu.Lock()
	t.m[key]++
	t.mu.Unlock()
}

// Notify sends on a channel while holding the lock; a slow consumer
// stalls every other user of t.mu.
func (t *Table) Notify(ch chan<- string, key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[key]++
	ch <- key
}

// Spawn launches a goroutine nothing can ever join.
func (t *Table) Spawn(key string) {
	go func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		t.m[key]++
	}()
}
