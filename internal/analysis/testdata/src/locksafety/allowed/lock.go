// Package lock exercises reasoned suppression of the goroutine-join
// rule: a process-lifetime background loop that by design outlives
// every caller.
package lock

import "time"

// StartJanitor runs a process-lifetime sweep loop; the process exit is
// its join.
func StartJanitor(sweep func()) {
	//lint:allow locksafety process-lifetime janitor; process exit is the join
	go func() {
		for {
			time.Sleep(time.Second)
			sweep()
		}
	}()
}
