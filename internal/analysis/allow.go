package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos     token.Position // of the comment itself
	line    int            // source line the directive applies to
	id      string         // analyzer id
	reason  string
	used    bool
	delEdit TextEdit // edit that removes the directive (for -prune-allows -fix)
}

// allowKey identifies the line a directive governs.
type allowKey struct {
	file string
	line int
}

const allowPrefix = "//lint:allow"

// parseAllows extracts every //lint:allow directive from the package's
// files. A directive applies to findings on its own line (end-of-line
// comment) or, when the comment starts its line, to the first line after
// the comment group ends. Malformed directives (missing analyzer id or
// reason) are returned as findings under the "allow" pseudo-analyzer.
func parseAllows(pkg *Package) (map[allowKey][]*allowDirective, []Finding) {
	allows := make(map[allowKey][]*allowDirective)
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowed — not ours
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{Pos: pos, Analyzer: "allow",
						Message: "//lint:allow needs an analyzer id and a reason: //lint:allow <id> <reason>"})
					continue
				}
				d := &allowDirective{
					pos:    pos,
					id:     fields[0],
					reason: strings.Join(fields[1:], " "),
				}
				// End-of-line directives govern their own line; standalone
				// ones govern the first line after the comment group.
				d.line = pos.Line
				standalone := startsLine(pkg, pos)
				if standalone {
					d.line = pkg.Fset.Position(cg.End()).Line + 1
				}
				d.delEdit = directiveDeletion(pkg, pos, pkg.Fset.Position(c.End()).Offset, standalone)
				key := allowKey{file: pos.Filename, line: d.line}
				allows[key] = append(allows[key], d)
			}
		}
	}
	return allows, bad
}

// directiveDeletion builds the edit that removes a directive cleanly: a
// standalone directive takes its whole line (including the newline);
// an end-of-line one takes the comment plus the whitespace separating it
// from the code it trails.
func directiveDeletion(pkg *Package, pos token.Position, endOff int, standalone bool) TextEdit {
	src := pkg.Sources[pos.Filename]
	if standalone {
		start := pos.Offset - (pos.Column - 1)
		if start < 0 {
			start = pos.Offset
		}
		end := endOff
		if end < len(src) && src[end] == '\n' {
			end++
		}
		return TextEdit{Start: start, End: end}
	}
	start := pos.Offset
	for start > 0 && (src[start-1] == ' ' || src[start-1] == '\t') {
		start--
	}
	return TextEdit{Start: start, End: endOff}
}

// startsLine reports whether only whitespace precedes the comment on its
// source line (i.e. the directive is standalone, not end-of-line).
func startsLine(pkg *Package, pos token.Position) bool {
	src, ok := pkg.Sources[pos.Filename]
	if !ok {
		return pos.Column == 1
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return pos.Column == 1
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}

// filterAllowed drops findings covered by a matching directive and marks
// those directives used.
func filterAllowed(fs []Finding, allows map[allowKey][]*allowDirective) []Finding {
	if len(allows) == 0 {
		return fs
	}
	var kept []Finding
	for _, f := range fs {
		key := allowKey{file: f.Pos.Filename, line: f.Pos.Line}
		matched := false
		for _, d := range allows[key] {
			if d.id == f.Analyzer {
				d.used = true
				matched = true
			}
		}
		if !matched {
			kept = append(kept, f)
		}
	}
	return kept
}

// unusedAllows reports directives that suppressed nothing — stale
// allowlist entries are findings so the escape hatch cannot rot.
func unusedAllows(allows map[allowKey][]*allowDirective) []Finding {
	var fs []Finding
	for _, ds := range allows {
		for _, d := range ds {
			if !d.used {
				fs = append(fs, Finding{Pos: d.pos, Analyzer: "allow",
					Message: "unused //lint:allow " + d.id + " directive (no matching finding on line " + strconv.Itoa(d.line) + ")",
					Fixes: []SuggestedFix{{
						Message: "remove the stale directive",
						Edits:   []TextEdit{d.delEdit},
					}}})
			}
		}
	}
	// The map walk above visits keys in randomized order; restore the
	// canonical position order before handing the findings on.
	sortFindings(fs)
	return fs
}

// PruneAllows runs the full suite over pkg and returns only the stale
// //lint:allow directives (as "allow" findings, each carrying a
// deletion fix). The driver's -prune-allows mode is built on this.
func PruneAllows(pkg *Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, f := range RunPackage(pkg, analyzers) {
		if f.Analyzer == "allow" && strings.HasPrefix(f.Message, "unused //lint:allow") {
			out = append(out, f)
		}
	}
	return out
}

// allowFindingsOnly re-checks directive well-formedness without running
// analyzers; the driver uses it for packages outside the lint scope so a
// reasonless directive anywhere in the module still fails CI.
func allowFindingsOnly(pkg *Package) []Finding {
	_, bad := parseAllows(pkg)
	return bad
}
