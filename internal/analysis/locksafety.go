package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockSafetyAnalyzer upgrades PR 4's syntactic concurrency bans to flow
// checks (DESIGN.md §7, §15):
//
//   - Lock/Unlock pairing — a sync.Mutex/RWMutex locked in a function
//     must be released on every path out of it, either by an explicit
//     Unlock before each return or by the defer discipline
//     (`mu.Lock(); defer mu.Unlock()`); re-locking a mutex that may
//     already be held on some path self-deadlocks.
//   - no lock across blocking waits — holding any lock across a channel
//     send/receive, a select, or a ctx.Done() wait turns a slow consumer
//     into a pipeline-wide stall (and can deadlock against the lock's
//     other users). The worker pool and the progress bus both emit from
//     under callers' goroutines, so this is the invariant that keeps the
//     telemetry registry safe to scrape mid-run.
//   - goroutine join — every `go` statement must hand its goroutine a
//     completion signal: a WaitGroup/errgroup Done with a matching Wait
//     in the launching function, a send into a channel (ownership
//     transferred to the channel's consumer), or a ctx.Done() select in
//     the body. A goroutine with none of these is unjoinable — nothing
//     can ever know it finished, which is how shutdown leaks workers.
var LockSafetyAnalyzer = &Analyzer{
	ID:  "locksafety",
	Doc: "locks released on every path, never held across channel/ctx waits; every goroutine joinable",
	Run: runLockSafety,
}

func runLockSafety(pass *Pass) {
	for _, file := range pass.Files {
		forEachFunc(file, func(fs funcScope) {
			checkLockFlow(pass, fs)
			checkGoroutineJoin(pass, fs)
		})
	}
}

// lockState tracks how one lock is held at a program point.
type lockState uint8

const (
	lockHeldDirect   lockState = iota // Lock()ed, no defer Unlock seen
	lockHeldDeferred                  // held now, released by defer at exit
)

// lockFact maps lock keys ("mu", "t.mu", "r.spanMu", with an "R" suffix
// for read locks) to their held state.
type lockFact map[string]lockState

type lockFlow struct{ pass *Pass }

func (lockFlow) entryFact() lockFact { return lockFact{} }

func (l lockFlow) transfer(fact lockFact, n ast.Node) lockFact {
	deferred := false
	if d, ok := n.(*ast.DeferStmt); ok {
		deferred = true
		n = d.Call
	}
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op := lockCallKey(l.pass, call)
		if key == "" {
			return true
		}
		switch op {
		case "Lock", "RLock":
			fact = cloneLockFact(fact)
			fact[key] = lockHeldDirect
		case "Unlock", "RUnlock":
			if deferred {
				if _, held := fact[key]; held {
					fact = cloneLockFact(fact)
					fact[key] = lockHeldDeferred
				}
			} else if _, held := fact[key]; held {
				fact = cloneLockFact(fact)
				delete(fact, key)
			}
		}
		return true
	})
	return fact
}

func (lockFlow) merge(a, b lockFact) lockFact {
	if len(a) == 0 && len(b) == 0 {
		return a
	}
	out := cloneLockFact(a)
	for k, s := range b {
		if cur, ok := out[k]; !ok || s < cur {
			// Direct (< deferred) dominates: a path that still owes an
			// explicit Unlock keeps the obligation through the join.
			out[k] = s
		}
	}
	return out
}

func (lockFlow) equal(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, s := range a {
		if bs, ok := b[k]; !ok || bs != s {
			return false
		}
	}
	return true
}

func cloneLockFact(f lockFact) lockFact {
	out := make(lockFact, len(f)+1)
	for k, s := range f {
		out[k] = s
	}
	return out
}

// lockCallKey resolves a call to (key, op) when it is a Lock/Unlock/
// RLock/RUnlock on a sync.Mutex/RWMutex (or sync.Locker) receiver with a
// trackable ident/selector spelling; key "" otherwise. Read locks get a
// distinct key so an RLock/RUnlock pair does not satisfy a Lock.
func lockCallKey(pass *Pass, call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	if !isSyncLockType(pass.TypeOf(sel.X)) {
		return "", ""
	}
	key, ok := exprKey(sel.X)
	if !ok {
		return "", ""
	}
	if op == "RLock" || op == "RUnlock" {
		key += "#R"
	}
	return key, op
}

// isSyncLockType reports whether t is sync.Mutex/RWMutex (possibly via
// pointer or embedding-free named wrapper) or the sync.Locker interface.
func isSyncLockType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "Locker":
		return true
	}
	return false
}

// checkLockFlow solves the lock dataflow and reports double locks, locks
// held across blocking operations, and locks still owed at exit.
func checkLockFlow(pass *Pass, fs funcScope) {
	hasLock := false
	inspectShallow(fs.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, op := lockCallKey(pass, call); key != "" && (op == "Lock" || op == "RLock") {
				hasLock = true
			}
		}
		return !hasLock
	})
	if !hasLock {
		return
	}
	g := buildCFG(fs.body)
	l := lockFlow{pass: pass}
	res := solveForward(g, l)

	type report struct {
		pos token.Pos
		msg string
	}
	var reports []report
	eachReachedBlock(g, res, func(blk *cfgBlock, fact lockFact) {
		for _, n := range blk.nodes {
			// Double lock: acquiring a lock that may already be held.
			inspectShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if key, op := lockCallKey(pass, call); key != "" && (op == "Lock" || op == "RLock") {
					if _, held := fact[key]; held {
						reports = append(reports, report{call.Pos(),
							op + " of " + lockDisplay(key) + " which may already be held on some path (self-deadlock)"})
					}
				}
				return true
			})
			// Blocking waits while holding any lock.
			if len(fact) > 0 {
				if pos, what := blockingOp(pass, n); pos.IsValid() {
					keys := sortedLockKeys(fact)
					reports = append(reports, report{pos,
						what + " while holding " + lockDisplay(keys[0]) + " blocks every other user of the lock; release it before waiting"})
				}
			}
			fact = l.transfer(fact, n)
		}
	})
	// Locks owed at exit: held directly (no defer) on some path.
	for key, st := range res.exit {
		if st == lockHeldDirect {
			reports = append(reports, report{lockPos(pass, fs.body, key),
				lockDisplay(key) + " can reach a return while still held with no defer Unlock; add `defer " + lockDisplay(key) + ".Unlock()` after the Lock or release it on every path"})
		}
	}

	sort.Slice(reports, func(i, j int) bool {
		if reports[i].pos != reports[j].pos {
			return reports[i].pos < reports[j].pos
		}
		return reports[i].msg < reports[j].msg
	})
	seen := map[string]bool{}
	for _, r := range reports {
		k := pass.Fset.Position(r.pos).String() + r.msg
		if seen[k] {
			continue
		}
		seen[k] = true
		pass.Reportf(r.pos, "%s", r.msg)
	}
}

// lockDisplay strips the read-lock suffix for messages.
func lockDisplay(key string) string {
	if len(key) > 2 && key[len(key)-2:] == "#R" {
		return key[:len(key)-2]
	}
	return key
}

func sortedLockKeys(f lockFact) []string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lockPos finds the first Lock call on key in the body, for anchoring
// the held-at-exit report.
func lockPos(pass *Pass, body *ast.BlockStmt, key string) token.Pos {
	pos := body.Pos()
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if k, op := lockCallKey(pass, call); k == key && (op == "Lock" || op == "RLock") {
				pos = call.Pos()
				found = true
				return false
			}
		}
		return true
	})
	return pos
}

// blockingOp reports whether node n is a potentially blocking channel or
// context wait: a send, a receive, a select with no default, or a
// range-over-channel.
func blockingOp(pass *Pass, n ast.Node) (token.Pos, string) {
	switch st := n.(type) {
	case *ast.SendStmt:
		return st.Arrow, "channel send"
	case *ast.SelectStmt:
		for _, cs := range st.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
				return token.NoPos, "" // has default: non-blocking
			}
		}
		return st.Select, "select"
	case *ast.RangeStmt:
		if t := pass.TypeOf(st.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return st.For, "range over channel"
			}
		}
	case *ast.UnaryExpr:
		if st.Op == token.ARROW {
			return st.OpPos, "channel receive"
		}
	case *ast.ExprStmt:
		return blockingOp(pass, st.X)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			if pos, what := blockingOp(pass, rhs); pos.IsValid() {
				return pos, what
			}
		}
	}
	return token.NoPos, ""
}

// checkGoroutineJoin flags go statements whose goroutine has no
// completion signal reaching the outside world.
func checkGoroutineJoin(pass *Pass, fs funcScope) {
	inspectShallow(fs.body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goroutineJoined(pass, fs.body, g) {
			return true
		}
		pass.Reportf(g.Pos(), "goroutine has no completion signal (WaitGroup Done + Wait, a channel send, or a ctx.Done select); an unjoinable goroutine leaks past shutdown")
		return true
	})
}

// goroutineJoined applies the join heuristics to one go statement.
func goroutineJoined(pass *Pass, body *ast.BlockStmt, g *ast.GoStmt) bool {
	var goroutineBody ast.Node
	if fl, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		goroutineBody = fl.Body
	} else {
		// go someFunc(args): the callee owns the completion protocol; a
		// WaitGroup or channel among the arguments counts as a signal.
		for _, arg := range g.Call.Args {
			if t := pass.TypeOf(arg); t != nil {
				if isWaitGroupish(t) {
					return waitsInBody(body)
				}
				if _, ok := t.Underlying().(*types.Chan); ok {
					return true
				}
			}
		}
		return false
	}
	signalled := false
	ast.Inspect(goroutineBody, func(m ast.Node) bool {
		if signalled {
			return false
		}
		switch x := m.(type) {
		case *ast.SendStmt:
			signalled = true // ownership handed to the channel's consumer
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Done":
					// wg.Done (WaitGroup-shaped) — require a Wait in the
					// launching function; ctx.Done() handled below.
					if isWaitGroupish(pass.TypeOf(sel.X)) {
						signalled = waitsInBody(body)
					} else if isContextType(pass.TypeOf(sel.X)) {
						signalled = true
					}
				}
			}
		}
		return !signalled
	})
	return signalled
}

// isWaitGroupish reports whether t is sync.WaitGroup or an
// errgroup-shaped type (has Done or Wait in its method-set namespace and
// is named *Group/WaitGroup).
func isWaitGroupish(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "WaitGroup" || name == "Group"
}

// waitsInBody reports whether the launching function calls a .Wait().
func waitsInBody(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && len(call.Args) == 0 {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
