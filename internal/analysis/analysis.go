// Package analysis is isumlint's engine: a stdlib-only static-analysis
// framework (go/parser, go/ast, go/types, go/importer in source mode —
// the module stays offline and dependency-free) plus the five analyzers
// that machine-check the pipeline's invariants:
//
//   - determinism  — no wall-clock or unseeded randomness on library
//     paths; no map-iteration-order float accumulation or unsorted
//     collection (the features.detSum bug class, DESIGN.md §9)
//   - ctx          — context.Context is the first parameter, never a
//     struct field, never dropped when a ctx-aware variant exists
//   - concurrency  — goroutines only via internal/parallel (or cmd/
//     mains); no locks passed or returned by value (DESIGN.md §7)
//   - telemetry    — spans started in a function are ended in that
//     function; metric and span name literals follow the area/sub/name
//     convention shared with scripts/metricscheck (DESIGN.md §8)
//   - anytime      — exported ctx-taking functions in internal/core and
//     internal/advisor never return a bare ctx.Err(): cancellation
//     yields best-so-far + Partial, never an error (DESIGN.md §9)
//
// plus four dataflow analyzers built on a per-function CFG and forward
// worklist solver (cfg.go, DESIGN.md §15):
//
//   - alloc       — no heap allocation inside //lint:hotpath functions
//     (the PR 5 zero-alloc kernel pins, statically enforced); pooled
//     scratch Put back on every path
//   - durability  — fsync before rename on all paths, CRC32-C folded
//     into every framed write, no write after writer poisoning (the
//     PR 8 write→fsync→rename discipline)
//   - locksafety  — locks released on every path out of a function,
//     never held across channel/ctx waits; every goroutine joinable
//   - errhygiene  — no silently discarded errors in internal/, wrap
//     with %w, compare sentinels with errors.Is
//
// Findings are machine-readable (file:line:col, analyzer id, message)
// and suppressible per line with a reasoned escape hatch:
//
//	//lint:allow <analyzer-id> <reason>
//
// A directive suppresses matching findings on its own line or, for a
// standalone comment, on the first line after the comment ends. A
// directive without a reason, or one that suppresses nothing, is itself
// a finding, so the allowlist cannot rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer hit. Pos is resolved (file, line, column);
// Analyzer is the stable id used by //lint:allow directives.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Fixes are optional machine-applicable corrections (applied by the
	// driver's -fix mode, previewed by -diff). Multiple fixes are
	// alternatives; ApplyFixes uses the first.
	Fixes []SuggestedFix
}

// SuggestedFix is one self-contained correction: a set of byte-range
// edits within a single file.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// TextEdit replaces the source bytes at [Start, End) with NewText.
// Offsets are file offsets (token.Position.Offset) in the file the
// finding points at; an insertion has Start == End.
type TextEdit struct {
	Start, End int
	NewText    string
}

// String renders the finding in the canonical machine-readable form
// shared by the driver output and the golden expectation files.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named invariant check run over a type-checked package.
type Analyzer struct {
	ID  string // stable id, used in findings and //lint:allow
	Doc string // one-line description of the guarded invariant
	Run func(*Pass)
}

// Analyzers returns the full suite in a fixed order: the five PR 4
// syntactic analyzers followed by the four dataflow analyzers
// (DESIGN.md §15).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		CtxAnalyzer,
		ConcurrencyAnalyzer,
		TelemetryAnalyzer,
		AnytimeAnalyzer,
		AllocAnalyzer,
		DurabilityAnalyzer,
		LockSafetyAnalyzer,
		ErrHygieneAnalyzer,
	}
}

// Pass is the per-package unit of work handed to each analyzer.
type Pass struct {
	Fset  *token.FileSet
	Path  string // package import path (e.g. "isum/internal/core")
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer string
	report   func(Finding)
}

// Reportf records a finding at pos under the running analyzer's id.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding carrying a machine-applicable fix. All
// edit offsets are within the finding's own file.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	p.report(Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// Offset resolves a token.Pos to its byte offset in its file.
func (p *Pass) Offset(pos token.Pos) int { return p.Fset.Position(pos).Offset }

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// RunPackage runs every analyzer over pkg, applies the package's
// //lint:allow directives, and returns the surviving findings sorted by
// position. Directive misuse (missing reason, unused directive) is
// appended as findings under the "allow" pseudo-analyzer.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	var raw []Finding
	pass := &Pass{
		Fset:  pkg.Fset,
		Path:  pkg.Path,
		Files: pkg.Files,
		Pkg:   pkg.Types,
		Info:  pkg.Info,
	}
	pass.report = func(f Finding) { raw = append(raw, f) }
	for _, a := range analyzers {
		pass.analyzer = a.ID
		a.Run(pass)
	}
	allows, bad := parseAllows(pkg)
	kept := filterAllowed(raw, allows)
	kept = append(kept, bad...)
	kept = append(kept, unusedAllows(allows)...)
	sortFindings(kept)
	return kept
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// pathHasSeq reports whether the slash-separated import path contains
// the given consecutive segment sequence (e.g. "internal/parallel").
func pathHasSeq(path, seq string) bool {
	segs := strings.Split(path, "/")
	want := strings.Split(seq, "/")
	for i := 0; i+len(want) <= len(segs); i++ {
		match := true
		for j := range want {
			if segs[i+j] != want[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// pathHasSegment reports whether one segment of the import path equals seg.
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// enclosingFuncs maps every node inside a file to the innermost function
// body it belongs to. Analyzers use funcFor to scope searches (e.g. "is
// this span ended in the same function").
type funcScope struct {
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt
}

// forEachFunc invokes fn for every function declaration and literal in
// the file that has a body.
func forEachFunc(file *ast.File, fn func(fs funcScope)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(funcScope{node: d, body: d.Body})
			}
		case *ast.FuncLit:
			fn(funcScope{node: d, body: d.Body})
		}
		return true
	})
}

// inspectShallow walks body but does not descend into nested function
// literals; analyzers that reason per-function use it so each FuncLit is
// analyzed exactly once, under its own scope.
func inspectShallow(body ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		return fn(n)
	})
}

// pkgFunc reports whether the call's callee resolves to the named
// package-level function of the package with import path pkgPath, using
// the type info (robust against package renames).
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return selIsPkgMember(info, sel, pkgPath, name)
}

// selIsPkgMember reports whether sel selects the named member of the
// package with the given import path.
func selIsPkgMember(info *types.Info, sel *ast.SelectorExpr, pkgPath, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// calleeFunc resolves the call's callee to its *types.Func (package
// functions and methods; nil for builtins, func-typed variables, and
// type conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
