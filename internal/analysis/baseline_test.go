package analysis

import (
	"strings"
	"testing"
)

func bl(analyzer, file, msg string, line int) Finding {
	return Finding{Pos: pos(file, line), Analyzer: analyzer, Message: msg}
}

// TestBaselineRoundTrip pins the on-disk format: format → parse is the
// identity, and keys are line-number-free so drifting line numbers do
// not churn the file.
func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		bl("alloc", "/repo/a.go", "make allocates", 10),
		bl("alloc", "/repo/a.go", "make allocates", 99), // same key, other line
		bl("errhygiene", "/repo/b.go", "discarded\tweird", 3),
	}
	b := NewBaseline(findings, "/repo")
	if len(b) != 2 {
		t.Fatalf("got %d keys, want 2 (line-free dedup)", len(b))
	}
	parsed, err := ParseBaseline(b.Format())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(b) {
		t.Fatalf("round trip lost keys: %d -> %d", len(b), len(parsed))
	}
	for k, v := range b {
		if parsed[k] != v {
			t.Errorf("key %+v: count %d -> %d", k, v, parsed[k])
		}
	}
}

// TestBaselineApply pins the CI semantics: covered findings are
// dropped up to their recorded count, extra occurrences are fresh, and
// entries with no surviving finding are reported stale.
func TestBaselineApply(t *testing.T) {
	recorded := []Finding{
		bl("alloc", "/repo/a.go", "make allocates", 10),
		bl("durability", "/repo/gone.go", "unsynced rename", 5),
	}
	b := NewBaseline(recorded, "/repo")

	now := []Finding{
		bl("alloc", "/repo/a.go", "make allocates", 12),  // covered (moved lines)
		bl("alloc", "/repo/a.go", "make allocates", 40),  // second occurrence: fresh
		bl("locksafety", "/repo/c.go", "lock leaked", 7), // new analyzer hit: fresh
	}
	fresh, stale := ApplyBaseline(now, b, "/repo")
	if len(fresh) != 2 {
		t.Fatalf("got %d fresh findings, want 2: %v", len(fresh), fresh)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "gone.go") {
		t.Fatalf("stale = %v, want the gone.go entry", stale)
	}
}

// TestBaselineNeverAbsorbsAllowFindings pins the escape-hatch rule:
// directive hygiene cannot be baselined away.
func TestBaselineNeverAbsorbsAllowFindings(t *testing.T) {
	af := bl("allow", "/repo/a.go", "unused //lint:allow alloc directive (no matching finding on line 3)", 3)
	b := NewBaseline([]Finding{af}, "/repo")
	if len(b) != 0 {
		t.Fatalf("allow finding entered the baseline: %v", b)
	}
	fresh, _ := ApplyBaseline([]Finding{af}, Baseline{}, "/repo")
	if len(fresh) != 1 {
		t.Fatal("allow finding was filtered without a baseline entry")
	}
}

func TestBaselineParseErrors(t *testing.T) {
	for _, bad := range []string{
		"alloc\tonly-three\tfields",
		"alloc\ta.go\tNaN\tmsg",
		"alloc\ta.go\t0\tmsg",
	} {
		if _, err := ParseBaseline([]byte(bad)); err == nil {
			t.Errorf("ParseBaseline(%q) accepted malformed input", bad)
		}
	}
	b, err := ParseBaseline([]byte("# comment\n\nalloc\ta.go\t2\tmsg with spaces\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 1 {
		t.Fatalf("got %d keys, want 1", len(b))
	}
}

// TestSARIFShape pins the minimal SARIF 2.1.0 contract CI consumers
// rely on: schema/version, the driver name, rule ids, and one result
// per finding with a relative URI.
func TestSARIFShape(t *testing.T) {
	findings := []Finding{
		bl("durability", "/repo/internal/durable/wal.go", "unsynced rename", 42),
	}
	out, err := SARIF(findings, Analyzers(), "/repo")
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		`"version": "2.1.0"`,
		`"name": "isumlint"`,
		`"ruleId": "durability"`,
		`"uri": "internal/durable/wal.go"`,
		`"startLine": 42`,
		`"id": "allow"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("SARIF output missing %q", want)
		}
	}
}
