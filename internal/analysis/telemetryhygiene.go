package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
)

// TelemetryAnalyzer guards PR 2's observability conventions (DESIGN.md
// §8): a span opened by a Start/StartSpan-style call must be ended in
// the same function (defer preferred; an explicit End on every path also
// counts — the check requires at least one End on the span variable),
// and metric/span name literals must follow the area/sub/name convention
// that scripts/metricscheck validates on exports, so names in code can
// never drift from names CI asserts on.
var TelemetryAnalyzer = &Analyzer{
	ID:  "telemetry",
	Doc: "spans ended in the function that starts them; metric names follow area/sub/name",
	Run: runTelemetry,
}

// MetricNamePattern is the shared naming convention: 2–4 slash-separated
// lowercase segments, e.g. "cost/whatif/calls", "core/greedy/argmax_nanos",
// "cost/cache/shard00/hits". scripts/metricscheck applies the same
// pattern to exported names at runtime.
const MetricNamePattern = `^[a-z][a-z0-9_-]*(/[a-z0-9_-]+){1,3}$`

var metricNameRe = regexp.MustCompile(MetricNamePattern)

// metricMethods are Registry methods whose first argument is a metric or
// span name.
var metricMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Start": true, "StartSpan": true,
}

func runTelemetry(pass *Pass) {
	for _, file := range pass.Files {
		forEachFunc(file, func(fs funcScope) { checkSpanPairing(pass, fs) })
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkMetricName(pass, call)
			return true
		})
	}
}

// checkMetricName validates string-literal names passed to Registry
// metric/span constructors (non-literal names are validated at runtime
// by scripts/metricscheck on the export).
func checkMetricName(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !metricMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	if !isRegistryRecv(pass, sel.X) {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !metricNameRe.MatchString(name) {
		pass.Reportf(lit.Pos(), "metric/span name %q does not match the area/sub/name convention (%s)", name, MetricNamePattern)
	}
}

// isRegistryRecv reports whether the expression's type is (a pointer to)
// a named type called Registry — the telemetry registry, matched
// structurally so fixtures can define their own.
func isRegistryRecv(pass *Pass, x ast.Expr) bool {
	t := pass.TypeOf(x)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// checkSpanPairing flags Start/StartSpan-style calls (a method returning
// a pointer to a type with an End() method) whose result is discarded or
// whose span variable has no End call in the same function.
func checkSpanPairing(pass *Pass, fs funcScope) {
	inspectShallow(fs.body, func(n ast.Node) bool {
		var call *ast.CallExpr
		var target *ast.Ident // span variable, nil when discarded

		switch st := n.(type) {
		case *ast.ExprStmt:
			c, ok := st.X.(*ast.CallExpr)
			if ok && isSpanStart(pass, c) {
				call = c
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				c, ok := rhs.(*ast.CallExpr)
				if !ok || !isSpanStart(pass, c) {
					continue
				}
				call = c
				if i < len(st.Lhs) {
					if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						target = id
					}
				}
			}
		}
		if call == nil {
			return true
		}
		if target == nil {
			pass.Reportf(call.Pos(), "span started but its handle is discarded; assign it and End it in this function")
			return true
		}
		obj := pass.Info.ObjectOf(target)
		if obj == nil {
			return true
		}
		if !hasEndCall(pass, fs.body, obj) {
			pass.Reportf(call.Pos(), "span %q is started but never ended in this function; add defer %s.End() (or End it on every path)", target.Name, target.Name)
		}
		return true
	})
}

// isSpanStart reports whether the call is a method named Start/StartSpan
// returning exactly one value: a pointer to a named type that has an
// End() method.
func isSpanStart(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Start" && sel.Sel.Name != "StartSpan") {
		return false
	}
	if _, isMethod := pass.Info.Selections[sel]; !isMethod {
		return false
	}
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	endObj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), "End")
	end, ok := endObj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := end.Type().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

// hasEndCall reports whether body contains v.End() (plain or deferred)
// on the given span object, including inside nested literals (a deferred
// closure that ends the span still ends it in this function).
func hasEndCall(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
