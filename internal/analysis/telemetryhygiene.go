package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
)

// TelemetryAnalyzer guards the observability conventions (DESIGN.md §8,
// §13): a span opened by a Start/StartSpan-style call must be ended in
// the same function (defer preferred; an explicit End on every path also
// counts — the check requires at least one End on the span variable),
// metric/span name literals must follow the area/sub/name convention
// that scripts/metricscheck validates on exports, and library packages
// under internal/ never print diagnostics directly — fmt.Print* and
// writes to os.Stderr/os.Stdout are reserved for cmd/ binaries (which
// own the slog logger) and internal/telemetry itself (which implements
// the sinks). Libraries report through metrics, spans, progress events,
// and errors.
var TelemetryAnalyzer = &Analyzer{
	ID:  "telemetry",
	Doc: "spans ended in the function that starts them; metric names follow area/sub/name; no bare fmt/os.Stderr output in internal/ libraries",
	Run: runTelemetry,
}

// MetricNamePattern is the shared naming convention: 2–4 slash-separated
// lowercase segments, e.g. "cost/whatif/calls", "core/greedy/argmax_nanos",
// "cost/cache/shard00/hits". scripts/metricscheck applies the same
// pattern to exported names at runtime.
const MetricNamePattern = `^[a-z][a-z0-9_-]*(/[a-z0-9_-]+){1,3}$`

var metricNameRe = regexp.MustCompile(MetricNamePattern)

// metricMethods are Registry methods whose first argument is a metric or
// span name.
var metricMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Start": true, "StartSpan": true,
}

func runTelemetry(pass *Pass) {
	// cmd/ mains own the process logger; internal/telemetry implements the
	// output sinks. Everything else under internal/ must stay silent.
	checkOutput := pathHasSegment(pass.Path, "internal") &&
		!pathHasSeq(pass.Path, "internal/telemetry")
	for _, file := range pass.Files {
		forEachFunc(file, func(fs funcScope) { checkSpanPairing(pass, fs) })
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkMetricName(pass, call)
			if checkOutput {
				checkBareOutput(pass, call)
			}
			return true
		})
	}
}

// fmtPrinters are the fmt functions that write to stdout unconditionally.
var fmtPrinters = map[string]bool{"Print": true, "Printf": true, "Println": true}

// fmtWriters are the fmt functions whose first argument selects the
// writer; they are flagged only when that argument is os.Stderr/os.Stdout.
var fmtWriters = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

// checkBareOutput flags direct process-output calls in internal/ library
// code: fmt.Print*, fmt.Fprint* targeting os.Stderr/os.Stdout, and
// os.Stderr/os.Stdout method calls (Write, WriteString). Diagnostics
// belong to the binaries' slog logger (telemetry.NewLogger); libraries
// emit progress events and metrics instead (DESIGN.md §13).
func checkBareOutput(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if fmtPrinters[sel.Sel.Name] && selIsPkgMember(pass.Info, sel, "fmt", sel.Sel.Name) {
		pass.Reportf(call.Pos(), "fmt.%s writes to stdout from library code; return an error or use the telemetry progress/logging plane (DESIGN.md §13)", sel.Sel.Name)
		return
	}
	if fmtWriters[sel.Sel.Name] && selIsPkgMember(pass.Info, sel, "fmt", sel.Sel.Name) && len(call.Args) > 0 {
		if stream := osStdStream(pass, call.Args[0]); stream != "" {
			pass.Reportf(call.Pos(), "fmt.%s to %s from library code; binaries own the logger (telemetry.NewLogger) — emit progress events or return an error instead", sel.Sel.Name, stream)
		}
		return
	}
	// os.Stderr.Write / os.Stdout.WriteString and friends.
	if stream := osStdStream(pass, sel.X); stream != "" {
		pass.Reportf(call.Pos(), "%s.%s from library code; binaries own the logger (telemetry.NewLogger) — emit progress events or return an error instead", stream, sel.Sel.Name)
	}
}

// osStdStream reports whether the expression denotes the os.Stderr or
// os.Stdout package variable, returning its name ("" otherwise).
func osStdStream(pass *Pass, x ast.Expr) string {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	for _, name := range []string{"Stderr", "Stdout"} {
		if selIsPkgMember(pass.Info, sel, "os", name) {
			return "os." + name
		}
	}
	return ""
}

// checkMetricName validates string-literal names passed to Registry
// metric/span constructors (non-literal names are validated at runtime
// by scripts/metricscheck on the export).
func checkMetricName(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !metricMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	if !isRegistryRecv(pass, sel.X) {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !metricNameRe.MatchString(name) {
		pass.Reportf(lit.Pos(), "metric/span name %q does not match the area/sub/name convention (%s)", name, MetricNamePattern)
	}
}

// isRegistryRecv reports whether the expression's type is (a pointer to)
// a named type called Registry — the telemetry registry, matched
// structurally so fixtures can define their own.
func isRegistryRecv(pass *Pass, x ast.Expr) bool {
	t := pass.TypeOf(x)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// checkSpanPairing flags Start/StartSpan-style calls (a method returning
// a pointer to a type with an End() method) whose result is discarded or
// whose span variable has no End call in the same function.
func checkSpanPairing(pass *Pass, fs funcScope) {
	inspectShallow(fs.body, func(n ast.Node) bool {
		var call *ast.CallExpr
		var target *ast.Ident // span variable, nil when discarded

		switch st := n.(type) {
		case *ast.ExprStmt:
			c, ok := st.X.(*ast.CallExpr)
			if ok && isSpanStart(pass, c) {
				call = c
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				c, ok := rhs.(*ast.CallExpr)
				if !ok || !isSpanStart(pass, c) {
					continue
				}
				call = c
				if i < len(st.Lhs) {
					if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						target = id
					}
				}
			}
		}
		if call == nil {
			return true
		}
		if target == nil {
			pass.Reportf(call.Pos(), "span started but its handle is discarded; assign it and End it in this function")
			return true
		}
		obj := pass.Info.ObjectOf(target)
		if obj == nil {
			return true
		}
		if !hasEndCall(pass, fs.body, obj) {
			pass.Reportf(call.Pos(), "span %q is started but never ended in this function; add defer %s.End() (or End it on every path)", target.Name, target.Name)
		}
		return true
	})
}

// isSpanStart reports whether the call is a method named Start/StartSpan
// returning exactly one value: a pointer to a named type that has an
// End() method.
func isSpanStart(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Start" && sel.Sel.Name != "StartSpan") {
		return false
	}
	if _, isMethod := pass.Info.Selections[sel]; !isMethod {
		return false
	}
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	endObj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), "End")
	end, ok := endObj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := end.Type().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

// hasEndCall reports whether body contains v.End() (plain or deferred)
// on the given span object, including inside nested literals (a deferred
// closure that ends the span still ends it in this function).
func hasEndCall(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
