package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxAnalyzer guards PR 3's context discipline: a context.Context is
// always the first parameter, never stored in a struct field, and never
// dropped on the floor — a function holding a ctx must pass it to
// callees that accept one (no fresh context.Background/TODO, no calling
// the ctx-less variant when a …Context/…Ctx sibling exists).
var CtxAnalyzer = &Analyzer{
	ID:  "ctx",
	Doc: "context.Context first parameter, never in struct fields, never dropped when a ctx variant exists",
	Run: runCtx,
}

func runCtx(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.FuncType:
				checkCtxFirst(pass, t)
			case *ast.StructType:
				checkNoCtxField(pass, t)
			}
			return true
		})
		forEachFunc(file, func(fs funcScope) { checkCtxUse(pass, fs) })
	}
}

// checkCtxFirst flags any context.Context parameter that is not the
// first parameter (receivers excluded; applies to funcs, methods,
// interface methods, and func types alike).
func checkCtxFirst(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		t := pass.TypeOf(field.Type)
		if t != nil && isContextType(t) && idx != 0 {
			pass.Reportf(field.Type.Pos(), "context.Context must be the first parameter")
		}
		idx += n
	}
}

// checkNoCtxField flags struct fields of type context.Context: contexts
// are request-scoped and flow through call frames, not object state.
func checkNoCtxField(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if t := pass.TypeOf(field.Type); t != nil && isContextType(t) {
			pass.Reportf(field.Type.Pos(), "context.Context stored in a struct field; pass it per call instead")
		}
	}
}

// checkCtxUse runs the drop-on-the-floor checks inside a function that
// has its own context parameter. Nested function literals without their
// own ctx parameter are scanned as part of the enclosing function (they
// capture the same ctx); literals with their own ctx are scoped to it.
func checkCtxUse(pass *Pass, fs funcScope) {
	var ft *ast.FuncType
	switch d := fs.node.(type) {
	case *ast.FuncDecl:
		ft = d.Type
	case *ast.FuncLit:
		ft = d.Type
	}
	if ft == nil || ft.Params == nil || !hasCtxParam(pass, ft) {
		return
	}
	ast.Inspect(fs.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && hasCtxParam(pass, lit.Type) {
			return false // analyzed under its own scope by forEachFunc
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgFunc(pass.Info, call, "context", "Background") || pkgFunc(pass.Info, call, "context", "TODO") {
			pass.Reportf(call.Pos(), "context.%s() inside a function that already has a ctx; thread the caller's ctx (or //lint:allow with the detachment reason)", calleeName(call))
			return true
		}
		checkDroppedVariant(pass, call)
		return true
	})
}

// checkDroppedVariant flags a call to a ctx-less function when a sibling
// …Context/…Ctx variant exists in the same scope or method set — calling
// the plain variant from ctx-holding code silently discards cancellation.
func checkDroppedVariant(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	name := fn.Name()
	if strings.HasSuffix(name, "Context") || strings.HasSuffix(name, "Ctx") || takesContext(fn) {
		return
	}
	for _, suffix := range []string{"Context", "Ctx"} {
		variant := lookupSibling(fn, name+suffix)
		if variant != nil && takesContext(variant) {
			pass.Reportf(call.Pos(), "call to %s drops the in-scope ctx; use %s", name, variant.Name())
			return
		}
	}
}

// lookupSibling finds a function or method named want alongside fn:
// in the receiver's method set for methods, in the defining package's
// scope for package functions.
func lookupSibling(fn *types.Func, want string) *types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), want)
		if m, ok := obj.(*types.Func); ok {
			return m
		}
		return nil
	}
	if fn.Pkg() == nil {
		return nil
	}
	if m, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok {
		return m
	}
	return nil
}

// takesContext reports whether the function's signature has a
// context.Context parameter.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// hasCtxParam reports whether the func type declares a context.Context
// parameter of its own.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := pass.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "?"
}
