package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// DeterminismAnalyzer guards the byte-identical-runs invariant (PR 1's
// serial/parallel equivalence, PR 3's chaos byte-identity): it flags
// wall-clock reads, draws from math/rand's shared unseeded source, and —
// the exact bug class fixed by features.DetSum — map-iteration-order
// float accumulation or map-order slice collection with no subsequent
// canonical ordering.
var DeterminismAnalyzer = &Analyzer{
	ID:  "determinism",
	Doc: "no time.Now, unseeded math/rand, or map-iteration-order accumulation on result paths",
	Run: runDeterminism,
}

// seededRandCtors are the math/rand members that construct or feed an
// explicitly seeded generator; everything else package-level draws from
// the shared global source, whose sequence is unseeded process state.
var seededRandCtors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// canonicalizerPat matches call names that impose a canonical order on a
// collected slice: the sort/slices packages, the repo's DetSum, and any
// helper advertising itself as sorting or canonicalising.
var canonicalizerPat = regexp.MustCompile(`(?i)(sort|canonical|detsum)`)

func runDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if selIsPkgMember(pass.Info, sel, "time", "Now") {
				pass.Reportf(sel.Pos(), "time.Now is wall-clock nondeterminism; confine it to telemetry/timing paths (//lint:allow with a reason) or inject a clock")
			}
			for _, randPath := range []string{"math/rand", "math/rand/v2"} {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == randPath {
						if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && obj.Type().(*types.Signature).Recv() == nil {
							if !seededRandCtors[sel.Sel.Name] {
								pass.Reportf(sel.Pos(), "%s.%s draws from the shared unseeded source; use rand.New(rand.NewSource(seed)) so runs reproduce", randPath, sel.Sel.Name)
							}
						}
					}
				}
			}
			return true
		})
		forEachFunc(file, func(fs funcScope) { checkMapRanges(pass, fs) })
	}
}

// checkMapRanges flags, inside each `for … range <map>` body of the
// function, (a) float accumulation — order-dependent in every case —
// and (b) appends whose collected slice is never passed to a sorting or
// canonicalising call later in the same function.
func checkMapRanges(pass *Pass, fs funcScope) {
	inspectShallow(fs.body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypeOf(rng.X); t == nil || !isMap(t) {
			return true
		}
		var appended []*ast.Ident // slice vars appended to in the body
		ast.Inspect(rng.Body, func(bn ast.Node) bool {
			as, ok := bn.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				// Only scalar accumulators are order-dependent: `m[k] += w`
				// keyed by the range key touches a distinct slot per
				// iteration and is safe.
				for _, lhs := range as.Lhs {
					if _, isIdent := lhs.(*ast.Ident); !isIdent {
						continue
					}
					if t := pass.TypeOf(lhs); t != nil && isFloat(t) {
						pass.Reportf(as.Pos(), "float accumulation inside a map-range loop sums in randomized iteration order; collect values and sum canonically (features.DetSum)")
					}
				}

			case token.ASSIGN, token.DEFINE:
				for i, rhs := range as.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(as.Lhs) {
						continue
					}
					if id, ok := as.Lhs[i].(*ast.Ident); ok {
						appended = append(appended, id)
					}
				}
			}
			return true
		})
		seen := make(map[types.Object]bool)
		for _, id := range appended {
			obj := pass.Info.ObjectOf(id)
			if obj == nil || seen[obj] {
				continue
			}
			seen[obj] = true
			// A slice declared inside the loop body is iteration-local:
			// its order does not depend on which key came first.
			if obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
				continue
			}
			if !canonicalizedAfter(pass, fs.body, rng.End(), obj) {
				pass.Reportf(id.Pos(), "slice %q collects map-range elements in randomized order and is never canonically sorted afterwards; sort it (or sum via features.DetSum) before it reaches results", id.Name)
			}
		}
		return true
	})
}

// canonicalizedAfter reports whether, after pos and within body, obj is
// passed to a call whose name matches canonicalizerPat (sort.*, slices
// sorting helpers, DetSum, canonical*). The object may reach the call as
// an argument or as the method receiver (sv.sortByID()), and one level
// of aliasing is followed: a variable assigned from an expression that
// mentions obj — the collect-into-struct idiom,
// sv := SparseVec{ids: ids, ws: ws} — counts as obj for both checks.
// Ascending-ID slice accumulation built this way is canonical and must
// not be flagged.
func canonicalizedAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	objs := map[types.Object]bool{obj: true}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || !mentionsObject(pass, rhs, obj) {
				continue
			}
			if o := pass.Info.ObjectOf(id); o != nil {
				objs[o] = true
			}
		}
		return true
	})
	mentionsAny := func(e ast.Expr) bool {
		for o := range objs {
			if mentionsObject(pass, e, o) {
				return true
			}
		}
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		name := ""
		var recv ast.Expr
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			recv = fun.X
			if id, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
					p := pn.Imported().Path()
					recv = nil
					if p == "sort" || p == "slices" {
						name = "sort" + name
					}
				}
			}
		}
		if !canonicalizerPat.MatchString(name) {
			return true
		}
		if recv != nil && mentionsAny(recv) {
			found = true
			return false
		}
		for _, arg := range call.Args {
			if mentionsAny(arg) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsObject reports whether the expression references obj.
func mentionsObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			hit = true
			return false
		}
		return !hit
	})
	return hit
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
