package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixCases are the fixtures whose findings carry fixes; each pins the
// -fix output byte-for-byte against a .fixed golden and re-lints the
// fixed text to prove the fixes actually clear the findings.
var fixCases = []struct {
	dir        string // under testdata/src
	importPath string
	refixPath  string // import path to re-lint the fixed output under
}{
	{"errhygiene/flagged", "fixture/internal/errs", "fixture/internal/errsfixed"},
}

func TestFixGoldens(t *testing.T) {
	loader := NewLoader("testdata")
	for _, tc := range fixCases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", filepath.FromSlash(tc.dir))
			pkg, err := loader.LoadDir(dir, tc.importPath)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			findings := RunPackage(pkg, Analyzers())
			if len(findings) == 0 {
				t.Fatal("flagged fixture produced no findings")
			}
			for _, f := range findings {
				if len(f.Fixes) == 0 {
					t.Errorf("finding has no fix: %s", f)
				}
			}
			changed, applied, skipped := ApplyFixes(findings, pkg.Sources)
			if skipped != 0 {
				t.Errorf("ApplyFixes skipped %d fixes", skipped)
			}
			if applied == 0 || len(changed) == 0 {
				t.Fatal("ApplyFixes changed nothing")
			}

			// Byte-identical against the .fixed goldens.
			tmp := t.TempDir()
			for name, got := range changed {
				golden := filepath.Join(dir, filepath.Base(name)+".fixed")
				if *update {
					if err := os.WriteFile(golden, got, 0o644); err != nil {
						t.Fatalf("update golden: %v", err)
					}
				} else {
					want, err := os.ReadFile(golden)
					if err != nil {
						t.Fatalf("missing golden (run go test -update): %v", err)
					}
					if string(got) != string(want) {
						t.Errorf("%s: fixed output differs from golden\n--- got ---\n%s", name, got)
					}
				}
				if err := os.WriteFile(filepath.Join(tmp, filepath.Base(name)), got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			// Unchanged files ride along so the fixed package still compiles.
			for name, src := range pkg.Sources {
				if _, ok := changed[name]; ok {
					continue
				}
				if err := os.WriteFile(filepath.Join(tmp, filepath.Base(name)), src, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			fixedPkg, err := loader.LoadDir(tmp, tc.refixPath)
			if err != nil {
				t.Fatalf("fixed output does not load: %v", err)
			}
			if fs := RunPackage(fixedPkg, Analyzers()); len(fs) != 0 {
				var lines []string
				for _, f := range fs {
					lines = append(lines, f.String())
				}
				t.Errorf("fixed output still has findings:\n%s", strings.Join(lines, "\n"))
			}
		})
	}
}

// TestPruneAllowsFix pins the -prune-allows -fix path: the stale
// directive in the allow fixture is deleted (whole line, it stands
// alone), the reasonless one is left for a human.
func TestPruneAllowsFix(t *testing.T) {
	loader := NewLoader("testdata")
	dir := filepath.Join("testdata", "src", "allow", "flagged")
	pkg, err := loader.LoadDir(dir, "fixture/allow/prune")
	if err != nil {
		t.Fatal(err)
	}
	stale := PruneAllows(pkg, Analyzers())
	if len(stale) != 1 {
		t.Fatalf("got %d stale directives, want 1: %v", len(stale), stale)
	}
	if len(stale[0].Fixes) != 1 {
		t.Fatalf("stale directive carries no deletion fix")
	}
	changed, applied, skipped := ApplyFixes(stale, pkg.Sources)
	if applied != 1 || skipped != 0 || len(changed) != 1 {
		t.Fatalf("applied=%d skipped=%d changed=%d, want 1/0/1", applied, skipped, len(changed))
	}
	for _, got := range changed {
		if strings.Contains(string(got), "//lint:allow concurrency") {
			t.Errorf("stale directive still present after fix:\n%s", got)
		}
		if !strings.Contains(string(got), "//lint:allow determinism") {
			t.Errorf("reasonless directive should be left in place (needs a human, not deletion)")
		}
		// The deleted standalone directive must not leave a blank line that
		// would detach the comment group.
		if strings.Contains(string(got), "\n\n\treturn 1") {
			t.Errorf("deletion left a hole:\n%s", got)
		}
	}
}

// TestApplyFixesOverlap pins the overlap policy: when two fixes touch
// the same bytes, the earlier finding wins and the other is skipped.
func TestApplyFixesOverlap(t *testing.T) {
	src := []byte("hello world")
	sources := map[string][]byte{"f.go": src}
	findings := []Finding{
		{Pos: pos("f.go", 1), Fixes: []SuggestedFix{{Edits: []TextEdit{{Start: 0, End: 5, NewText: "HELLO"}}}}},
		{Pos: pos("f.go", 1), Fixes: []SuggestedFix{{Edits: []TextEdit{{Start: 3, End: 8, NewText: "XXX"}}}}},
		{Pos: pos("f.go", 1), Fixes: []SuggestedFix{{Edits: []TextEdit{{Start: 6, End: 11, NewText: "WORLD"}}}}},
	}
	changed, applied, skipped := ApplyFixes(findings, sources)
	if applied != 2 || skipped != 1 {
		t.Fatalf("applied=%d skipped=%d, want 2/1", applied, skipped)
	}
	if got := string(changed["f.go"]); got != "HELLO WORLD" {
		t.Fatalf("got %q, want %q", got, "HELLO WORLD")
	}
}

// TestApplyFixesRejectsBadEdits pins the bounds check: an edit outside
// the file is skipped, not applied corruptly.
func TestApplyFixesRejectsBadEdits(t *testing.T) {
	sources := map[string][]byte{"f.go": []byte("abc")}
	findings := []Finding{
		{Pos: pos("f.go", 1), Fixes: []SuggestedFix{{Edits: []TextEdit{{Start: 2, End: 99, NewText: "x"}}}}},
		{Pos: pos("missing.go", 1), Fixes: []SuggestedFix{{Edits: []TextEdit{{Start: 0, End: 1, NewText: "x"}}}}},
	}
	changed, applied, skipped := ApplyFixes(findings, sources)
	if applied != 0 || skipped != 2 || len(changed) != 0 {
		t.Fatalf("applied=%d skipped=%d changed=%d, want 0/2/0", applied, skipped, len(changed))
	}
}

// TestDiffRendering sanity-checks the unified diff output shape.
func TestDiffRendering(t *testing.T) {
	before := []byte("a\nb\nc\nd\ne\n")
	after := []byte("a\nb\nC\nd\ne\n")
	d := Diff("f.go", before, after)
	for _, want := range []string{"--- f.go", "+++ f.go", "-c", "+C", " b", " d"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
	if d2 := Diff("f.go", before, before); d2 != "" {
		t.Errorf("identical inputs produced a diff:\n%s", d2)
	}
}

func pos(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1}
}
