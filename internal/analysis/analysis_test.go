package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata expect.txt goldens")

// fixtureCases maps each fixture directory to the import path it is
// loaded under — path-scoped analyzers (concurrency, anytime) key off
// the synthetic paths.
var fixtureCases = []struct {
	dir        string // under testdata/src
	importPath string
}{
	{"determinism/flagged", "fixture/determinism/flagged"},
	{"determinism/allowed", "fixture/determinism/allowed"},
	{"determinism/clean", "fixture/determinism/clean"},
	{"ctx/flagged", "fixture/ctx/flagged"},
	{"ctx/clean", "fixture/ctx/clean"},
	{"concurrency/flagged", "fixture/internal/engine"},
	{"concurrency/clean", "fixture/internal/parallel"},
	{"telemetry/flagged", "fixture/telemetry/flagged"},
	{"telemetry/clean", "fixture/telemetry/clean"},
	{"telemetry/printflagged", "fixture/internal/printer"},
	{"telemetry/printallowed", "fixture/internal/printallowed"},
	{"telemetry/printclean", "fixture/internal/telemetry"},
	{"anytime/flagged", "fixture/internal/core"},
	{"anytime/clean", "fixture/internal/core/clean"},
	{"allow/flagged", "fixture/allow/flagged"},
	{"alloc/flagged", "fixture/alloc/flagged"},
	{"alloc/allowed", "fixture/alloc/allowed"},
	{"alloc/clean", "fixture/alloc/clean"},
	{"durability/flagged", "fixture/durability/flagged"},
	{"durability/allowed", "fixture/durability/allowed"},
	{"durability/clean", "fixture/durability/clean"},
	// Loaded under cmd/ so the syntactic bare-go ban stays out of the
	// way of the flow-level goroutine-join findings.
	{"locksafety/flagged", "fixture/cmd/lockflagged"},
	{"locksafety/allowed", "fixture/cmd/lockallowed"},
	{"locksafety/clean", "fixture/cmd/lockclean"},
	// Loaded under internal/ because error hygiene is scoped to it.
	{"errhygiene/flagged", "fixture/internal/errs"},
	{"errhygiene/clean", "fixture/internal/errsclean"},
}

// TestFixtureGoldens runs the full analyzer suite over every fixture
// package and compares the findings against the expect.txt alongside it.
// Clean and allowed fixtures pin an empty expect.txt; flagged fixtures
// pin at least one finding per analyzer they exercise.
func TestFixtureGoldens(t *testing.T) {
	loader := NewLoader("testdata")
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", filepath.FromSlash(tc.dir))
			pkg, err := loader.LoadDir(dir, tc.importPath)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			got := renderFindings(pkg, RunPackage(pkg, Analyzers()))
			goldenPath := filepath.Join(dir, "expect.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run go test -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// renderFindings formats findings with basenames so goldens are
// machine-independent; an empty set renders as the empty string.
func renderFindings(pkg *Package, fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n",
			filepath.Base(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	return b.String()
}

// TestFlaggedFixturesCoverEveryAnalyzer asserts the acceptance
// criterion directly: each analyzer has at least one fixture finding it
// flags and at least one fixture it passes clean.
func TestFlaggedFixturesCoverEveryAnalyzer(t *testing.T) {
	loader := NewLoader("testdata")
	flagged := map[string]bool{}
	passedClean := map[string]bool{}
	for _, tc := range fixtureCases {
		dir := filepath.Join("testdata", "src", filepath.FromSlash(tc.dir))
		pkg, err := loader.LoadDir(dir, tc.importPath)
		if err != nil {
			t.Fatalf("%s: load: %v", tc.dir, err)
		}
		fs := RunPackage(pkg, Analyzers())
		hit := map[string]bool{}
		for _, f := range fs {
			hit[f.Analyzer] = true
			flagged[f.Analyzer] = true
		}
		for _, a := range Analyzers() {
			if !hit[a.ID] {
				passedClean[a.ID] = true
			}
		}
	}
	for _, a := range Analyzers() {
		if !flagged[a.ID] {
			t.Errorf("analyzer %s has no fixture it flags", a.ID)
		}
		if !passedClean[a.ID] {
			t.Errorf("analyzer %s has no fixture it passes", a.ID)
		}
	}
}

// TestModuleSelfCheck pins the acceptance criterion that isumlint runs
// clean over the real module: every invariant holds or carries a
// reasoned //lint:allow.
func TestModuleSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("LoadModule found only %d packages; loader lost the module", len(pkgs))
	}
	var all []string
	for _, pkg := range pkgs {
		for _, f := range RunPackage(pkg, Analyzers()) {
			all = append(all, f.String())
		}
	}
	if len(all) > 0 {
		t.Errorf("module has %d unallowed findings:\n%s", len(all), strings.Join(all, "\n"))
	}
}

// TestAllowDirectiveParsing covers the directive grammar corners that
// the fixtures do not: end-of-line vs standalone placement and the
// non-directive //lint:allowed prefix.
func TestAllowDirectiveParsing(t *testing.T) {
	loader := NewLoader("testdata")
	dir := filepath.Join("testdata", "src", "determinism", "allowed")
	pkg, err := loader.LoadDir(dir, "fixture/determinism/allowed2")
	if err != nil {
		t.Fatal(err)
	}
	allows, bad := parseAllows(pkg)
	if len(bad) != 0 {
		t.Fatalf("well-formed directives reported bad: %v", bad)
	}
	if len(allows) != 2 {
		t.Fatalf("got %d allow lines, want 2", len(allows))
	}
	for key, ds := range allows {
		for _, d := range ds {
			if d.id != "determinism" {
				t.Errorf("%v: id %q, want determinism", key, d.id)
			}
			if d.reason == "" {
				t.Errorf("%v: empty reason", key)
			}
		}
	}
}
