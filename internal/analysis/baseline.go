package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// The findings baseline (.lintbaseline at the repo root) lets CI adopt
// a new analyzer without first driving the existing-findings count to
// zero: known findings are recorded once, and CI fails only on NEW
// findings (and on baselined findings that have disappeared, so the
// file cannot rot). Keys are line-number-free — analyzer, relative
// file, message — so ordinary edits above a finding don't churn the
// baseline; identical findings in one file are disambiguated by count.
//
// Findings from the "allow" pseudo-analyzer are never baseline-
// eligible: a reasonless or stale //lint:allow is always a hard
// failure, because baselining the escape hatch would let suppressions
// rot invisibly.
//
// File format: one `analyzer\tfile\tcount\tmessage` line per key,
// sorted, with # comments and blank lines ignored.

// baselineKey identifies a finding independent of its line number.
type baselineKey struct {
	Analyzer string
	File     string // root-relative, slash-separated
	Message  string
}

// Baseline is a multiset of accepted findings.
type Baseline map[baselineKey]int

// baselineEligible reports whether a finding may be absorbed by the
// baseline.
func baselineEligible(f Finding) bool { return f.Analyzer != "allow" }

// NewBaseline builds a baseline from the given findings (ineligible
// ones are dropped).
func NewBaseline(findings []Finding, root string) Baseline {
	b := make(Baseline)
	for _, f := range findings {
		if !baselineEligible(f) {
			continue
		}
		b[baselineKey{f.Analyzer, relSlash(root, f.Pos.Filename), f.Message}]++
	}
	return b
}

// ParseBaseline reads the on-disk format.
func ParseBaseline(data []byte) (Baseline, error) {
	b := make(Baseline)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("baseline line %d: want analyzer\\tfile\\tcount\\tmessage, got %q", lineNo, line)
		}
		var count int
		if _, err := fmt.Sscanf(parts[2], "%d", &count); err != nil || count < 1 {
			return nil, fmt.Errorf("baseline line %d: bad count %q", lineNo, parts[2])
		}
		b[baselineKey{parts[0], parts[1], parts[3]}] += count
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Format renders the baseline in its canonical sorted on-disk form.
func (b Baseline) Format() []byte {
	keys := make([]baselineKey, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, c := keys[i], keys[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	var sb strings.Builder
	sb.WriteString("# isumlint findings baseline. CI fails on findings not listed here\n")
	sb.WriteString("# and on listed findings that no longer occur (regenerate with\n")
	sb.WriteString("# `go run ./cmd/isumlint -write-baseline .lintbaseline ./...`).\n")
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s\t%s\t%d\t%s\n", k.Analyzer, k.File, b[k], k.Message)
	}
	return []byte(sb.String())
}

// ApplyBaseline splits findings into those not covered by the baseline
// (new — CI-failing) and reports the stale baseline entries (accepted
// findings that no longer occur — also CI-failing, so the file tracks
// reality). The baseline itself is not mutated.
func ApplyBaseline(findings []Finding, b Baseline, root string) (fresh []Finding, stale []string) {
	remaining := make(Baseline, len(b))
	for k, v := range b {
		remaining[k] = v
	}
	for _, f := range findings {
		if !baselineEligible(f) {
			fresh = append(fresh, f)
			continue
		}
		k := baselineKey{f.Analyzer, relSlash(root, f.Pos.Filename), f.Message}
		if remaining[k] > 0 {
			remaining[k]--
			if remaining[k] == 0 {
				delete(remaining, k)
			}
			continue
		}
		fresh = append(fresh, f)
	}
	for k, v := range remaining {
		stale = append(stale, fmt.Sprintf("%s: [%s] %s (x%d)", k.File, k.Analyzer, k.Message, v))
	}
	sort.Strings(stale)
	return fresh, stale
}
