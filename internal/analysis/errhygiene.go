package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrHygieneAnalyzer enforces the module's error-handling discipline in
// internal/ packages (DESIGN.md §15):
//
//  1. no silent discards — a statement-level call whose results include
//     an error must not drop it implicitly. Handle it, or write `_ =`
//     so the discard is visible in review. fmt printing, and methods on
//     the never-failing strings.Builder / bytes.Buffer, are exempt
//     (matching errcheck's defaults).
//  2. wrap, don't stringify — fmt.Errorf with an error argument must
//     use %w, not %v/%s: stringifying severs the chain and breaks
//     errors.Is/As at every caller (the wrapped-sentinel contract that
//     durable.ErrCorrupt recovery depends on).
//  3. compare with errors.Is — ==/!= between two errors only sees the
//     outermost value; a sentinel wrapped once (by rule 2!) never
//     compares equal again.
//
// Rules 2 and 3 carry autofixes (-fix): the verb is rewritten to %w,
// and the comparison becomes errors.Is(err, sentinel), importing
// "errors" into a grouped import block when needed.
var ErrHygieneAnalyzer = &Analyzer{
	ID:  "errhygiene",
	Doc: "no discarded errors in internal/; wrap with %w across boundaries; compare sentinels with errors.Is",
	Run: runErrHygiene,
}

func runErrHygiene(pass *Pass) {
	if !pathHasSegment(pass.Path, "internal") {
		return
	}
	for _, file := range pass.Files {
		checkDiscardedErrors(pass, file)
		checkErrorfWrap(pass, file)
		checkSentinelCompare(pass, file)
	}
}

// errorIfaceOf returns the universe error interface.
func errorIface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

// implementsError reports whether t's value satisfies error.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorIface())
}

// --- rule 1: discarded errors -----------------------------------------

func checkDiscardedErrors(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		nres, hasErr := callResults(pass, call)
		if !hasErr || isDiscardExempt(pass, call) {
			return true
		}
		blanks := strings.Repeat("_, ", nres-1) + "_ = "
		fix := SuggestedFix{
			Message: "make the discard explicit with _ =",
			Edits:   []TextEdit{{Start: pass.Offset(call.Pos()), End: pass.Offset(call.Pos()), NewText: blanks}},
		}
		pass.ReportFix(call.Pos(), fix,
			"error result of %s is silently discarded; handle it or discard explicitly with _ =", callLabel(call))
		return true
	})
}

// callResults returns the call's result count and whether any result is
// the error type.
func callResults(pass *Pass, call *ast.CallExpr) (n int, hasErr bool) {
	t := pass.TypeOf(call)
	if t == nil {
		return 0, false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				hasErr = true
			}
		}
		return tup.Len(), hasErr
	}
	return 1, isErrorType(t)
}

// isDiscardExempt mirrors errcheck's default exemptions: fmt printing
// and the infallible stdlib writers.
func isDiscardExempt(pass *Pass, call *ast.CallExpr) bool {
	if f := calleeFunc(pass.Info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// callLabel renders a short human label for the call ("f.Close()").
func callLabel(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name + "()"
	case *ast.SelectorExpr:
		if base, ok := exprKey(fun.X); ok {
			return base + "." + fun.Sel.Name + "()"
		}
		return fun.Sel.Name + "()"
	}
	return "call"
}

// --- rule 2: %w wrapping ----------------------------------------------

// fmtVerb is one scanned format verb: its verb byte, the index of the
// argument it consumes (into call.Args; the first variadic arg is 1),
// and the offset of the verb byte within the raw string literal.
type fmtVerb struct {
	verb   byte
	argIdx int
	rawOff int
}

func checkErrorfWrap(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !pkgFunc(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		verbs, scanOK := scanVerbs(lit.Value)
		for _, v := range verbs {
			if v.verb == 'w' {
				return true // already wraps
			}
		}
		for _, v := range verbs {
			if (v.verb != 'v' && v.verb != 's') || v.argIdx >= len(call.Args) {
				continue
			}
			if !implementsError(pass.TypeOf(call.Args[v.argIdx])) {
				continue
			}
			msg := "fmt.Errorf formats an error with %%" + string(v.verb) +
				"; use %%w so callers can unwrap it with errors.Is/As"
			if scanOK {
				off := pass.Offset(lit.Pos()) + v.rawOff
				pass.ReportFix(call.Pos(), SuggestedFix{
					Message: "wrap with %w",
					Edits:   []TextEdit{{Start: off, End: off + 1, NewText: "w"}},
				}, msg)
			} else {
				pass.Reportf(call.Pos(), msg)
			}
			return true // one finding per Errorf is enough
		}
		return true
	})
}

// scanVerbs scans a raw (still-quoted) string literal for format verbs,
// tracking which argument each consumes. ok is false when the literal
// uses features the scanner cannot map to byte offsets safely (explicit
// argument indexes, numeric escapes); verbs are still returned for
// detection, but fixes must not rely on rawOff.
func scanVerbs(raw string) (verbs []fmtVerb, ok bool) {
	ok = true
	arg := 1
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		if c == '\\' && !strings.HasPrefix(raw, "`") {
			if i+1 < len(raw) {
				switch raw[i+1] {
				case 'x', 'u', 'U', '0', '1', '2', '3', '4', '5', '6', '7':
					ok = false // multi-byte escape: offsets past here unreliable
				}
			}
			i++
			continue
		}
		if c != '%' {
			continue
		}
		// Scan flags, width, precision.
		j := i + 1
		for j < len(raw) && strings.ContainsRune("+-# 0", rune(raw[j])) {
			j++
		}
		if j < len(raw) && raw[j] == '[' {
			ok = false // explicit arg index: bail on mapping
			i = j
			continue
		}
		for j < len(raw) && (raw[j] == '*' || (raw[j] >= '0' && raw[j] <= '9')) {
			if raw[j] == '*' {
				arg++
			}
			j++
		}
		if j < len(raw) && raw[j] == '.' {
			j++
			for j < len(raw) && (raw[j] == '*' || (raw[j] >= '0' && raw[j] <= '9')) {
				if raw[j] == '*' {
					arg++
				}
				j++
			}
		}
		if j >= len(raw) {
			break
		}
		if raw[j] == '%' {
			i = j
			continue
		}
		verbs = append(verbs, fmtVerb{verb: raw[j], argIdx: arg, rawOff: j})
		arg++
		i = j
	}
	return verbs, ok
}

// --- rule 3: sentinel comparison --------------------------------------

func checkSentinelCompare(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !implementsError(pass.TypeOf(be.X)) || !implementsError(pass.TypeOf(be.Y)) {
			return true
		}
		repl := "errors.Is(" + exprText(pass.Fset, be.X) + ", " + exprText(pass.Fset, be.Y) + ")"
		if be.Op == token.NEQ {
			repl = "!" + repl
		}
		edits := []TextEdit{{Start: pass.Offset(be.Pos()), End: pass.Offset(be.End()), NewText: repl}}
		if imp, fixable := ensureErrorsImport(pass, file); fixable {
			edits = append(edits, imp...)
			pass.ReportFix(be.Pos(), SuggestedFix{Message: "compare with errors.Is", Edits: edits},
				"errors compared with %s only match unwrapped; use errors.Is so wrapped sentinels still match", be.Op)
		} else {
			pass.Reportf(be.Pos(),
				"errors compared with %s only match unwrapped; use errors.Is so wrapped sentinels still match", be.Op)
		}
		return true
	})
}

// exprText renders an expression back to source.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// ensureErrorsImport returns the edits (possibly none) needed to make
// the errors package importable in file, or fixable=false when the
// import would need manual attention (renamed import, no grouped block).
func ensureErrorsImport(pass *Pass, file *ast.File) (edits []TextEdit, fixable bool) {
	for _, imp := range file.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		if path != "errors" {
			continue
		}
		if imp.Name == nil || imp.Name.Name == "errors" {
			return nil, true // already importable as errors.
		}
		return nil, false // renamed (or blank) import: don't fight it
	}
	// Insert into the first grouped import block, keeping sorted order.
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() {
			continue
		}
		for _, spec := range gd.Specs {
			is := spec.(*ast.ImportSpec)
			path, _ := strconv.Unquote(is.Path.Value)
			if path > "errors" {
				off := pass.Offset(is.Pos())
				return []TextEdit{{Start: off, End: off, NewText: "\"errors\"\n\t"}}, true
			}
		}
		if n := len(gd.Specs); n > 0 {
			off := pass.Offset(gd.Specs[n-1].End())
			return []TextEdit{{Start: off, End: off, NewText: "\n\t\"errors\""}}, true
		}
	}
	return nil, false
}
