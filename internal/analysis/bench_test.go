package analysis

import (
	"path/filepath"
	"testing"
)

// BenchmarkLintModule records the analyzer suite's wall time over the
// whole module — load + type-check + all nine analyzers — so CI's
// BENCH_lint.json catches analyzer slowdowns the same way BENCH.json
// catches kernel regressions. One iteration is a full cold run; the
// loader is not reused across iterations so the numbers stay
// comparable as packages are added.
func BenchmarkLintModule(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkgs, err := LoadModule(root)
		if err != nil {
			b.Fatalf("LoadModule: %v", err)
		}
		total := 0
		for _, pkg := range pkgs {
			total += len(RunPackage(pkg, Analyzers()))
		}
		if total != 0 {
			b.Fatalf("module has %d findings; lint must be clean before benchmarking", total)
		}
	}
}
