package analysis

import (
	"go/ast"
	"go/types"
)

// ConcurrencyAnalyzer guards PR 1's worker-pool discipline (DESIGN.md
// §7): every goroutine in library code is routed through
// internal/parallel so cancellation, panic containment, and pool sizing
// stay centralized — bare `go` statements are allowed only inside
// internal/parallel itself and in cmd/ mains. It also flags locks
// (sync.Mutex & friends) passed, returned, or received by value, beyond
// go vet's assignment-copy checks.
var ConcurrencyAnalyzer = &Analyzer{
	ID:  "concurrency",
	Doc: "goroutines only via internal/parallel (or cmd/); no locks by value in signatures",
	Run: runConcurrency,
}

func runConcurrency(pass *Pass) {
	allowGo := pathHasSeq(pass.Path, "internal/parallel") || pathHasSegment(pass.Path, "cmd")
	for _, file := range pass.Files {
		if !allowGo {
			ast.Inspect(file, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(), "bare go statement outside internal/parallel; route goroutines through the worker pool (parallel.ForEach/Map) so cancellation and panic containment hold")
				}
				return true
			})
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil {
					for _, field := range d.Recv.List {
						checkLockByValue(pass, field, "receiver")
					}
				}
				checkSigLocks(pass, d.Type)
			case *ast.FuncLit:
				checkSigLocks(pass, d.Type)
			case *ast.InterfaceType:
				for _, m := range d.Methods.List {
					if ft, ok := m.Type.(*ast.FuncType); ok {
						checkSigLocks(pass, ft)
					}
				}
			}
			return true
		})
	}
}

func checkSigLocks(pass *Pass, ft *ast.FuncType) {
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			checkLockByValue(pass, field, "parameter")
		}
	}
	if ft.Results != nil {
		for _, field := range ft.Results.List {
			checkLockByValue(pass, field, "result")
		}
	}
}

func checkLockByValue(pass *Pass, field *ast.Field, kind string) {
	t := pass.TypeOf(field.Type)
	if t == nil {
		return
	}
	if lock := containsLock(t, nil); lock != "" {
		pass.Reportf(field.Type.Pos(), "%s copies %s by value; pass a pointer so the lock state is shared", kind, lock)
	}
}

// lockTypes are the sync types whose values must never be copied.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// containsLock walks the value representation of t (structs, arrays,
// named underlyings — not pointers, which share state) and returns the
// name of the first embedded sync lock type, or "".
func containsLock(t types.Type, seen map[*types.Named]bool) string {
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
		if seen[u] {
			return ""
		}
		if seen == nil {
			seen = make(map[*types.Named]bool)
		}
		seen[u] = true
		return containsLock(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := containsLock(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return ""
}
