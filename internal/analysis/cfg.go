package analysis

import (
	"go/ast"
)

// This file is the dataflow core added for the deep analyzers (DESIGN.md
// §15): a statement-level control-flow graph per function body plus a
// small forward worklist solver. The PR 4 analyzers are syntactic; the
// alloc/durability/locksafety passes need "on all paths" and "on any
// path" questions (is every pooled buffer Put before return? may a
// Rename see an unsynced write?), which are answered by running a
// transfer function over this graph to a fixed point.
//
// The graph is deliberately modest: blocks hold statements (plus
// condition expressions wrapped as pseudo-statements so transfers see
// calls inside `if f.Sync() != nil`), and the builder covers the
// control flow the module actually uses — if/else, for/range,
// switch/type-switch, select, return, break/continue (with labels),
// defer (recorded per function, not as edges), and panic calls as
// exits. goto is handled conservatively by edging to the function exit.

// cfgBlock is one straight-line run of statements.
type cfgBlock struct {
	nodes []ast.Node // ast.Stmt, or ast.Expr for branch conditions
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock // virtual: every return/panic/fallthrough-out edges here
	blocks []*cfgBlock
	// defers lists the deferred calls in source order; analyses that
	// model "runs at every exit" semantics (defer mu.Unlock) consult it
	// directly rather than via edges.
	defers []*ast.DeferStmt
}

// cfgBuilder tracks the current insertion point and the break/continue
// targets of the enclosing loops and switches.
type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock
	// loopStack entries carry the targets a break/continue resolves to;
	// label is non-empty for labeled statements.
	loopStack []loopTargets
}

type loopTargets struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select (continue skips them)
}

// buildCFG constructs the graph for a function body. Nested function
// literals are opaque: their bodies get their own graphs when the
// analyzer visits them via forEachFunc.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	b.cur = g.entry
	b.stmts(body.List)
	b.edge(b.cur, g.exit)
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// startBlock seals cur with an edge to next and makes next current.
func (b *cfgBuilder) startBlock(next *cfgBlock) {
	b.edge(b.cur, next)
	b.cur = next
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement; label is the name of an enclosing
// LabeledStmt when s is its body.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmts(st.List)

	case *ast.LabeledStmt:
		b.stmt(st.Stmt, st.Label.Name)

	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		b.add(st.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		after := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmts(st.Body.List)
		b.edge(b.cur, after)
		if st.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(st.Else, "")
			b.edge(b.cur, after)
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.startBlock(head)
		if st.Cond != nil {
			b.add(st.Cond)
			b.edge(head, after) // cond false
		}
		// A cond-less `for {}` only leaves via break/return, so no
		// head→after edge.
		b.edge(head, body)
		b.loopStack = append(b.loopStack, loopTargets{label: label, breakTo: after, continueTo: post})
		b.cur = body
		b.stmts(st.Body.List)
		b.loopStack = b.loopStack[:len(b.loopStack)-1]
		b.edge(b.cur, post)
		b.cur = post
		if st.Post != nil {
			b.stmt(st.Post, "")
		}
		b.edge(b.cur, head)
		b.cur = after

	case *ast.RangeStmt:
		b.add(st.X)
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.startBlock(head)
		b.edge(head, body)
		b.edge(head, after) // empty collection
		b.loopStack = append(b.loopStack, loopTargets{label: label, breakTo: after, continueTo: head})
		b.cur = body
		if st.Key != nil || st.Value != nil {
			// The per-iteration assignment is implicit; expose the range
			// vars as part of the body's first block via the statement
			// itself so transfers can see the RangeStmt if they care.
			b.add(st)
		}
		b.stmts(st.Body.List)
		b.loopStack = b.loopStack[:len(b.loopStack)-1]
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var tag ast.Node
		var bodyList []ast.Stmt
		if sw, ok := st.(*ast.SwitchStmt); ok {
			init, tag, bodyList = sw.Init, sw.Tag, sw.Body.List
		} else {
			ts := st.(*ast.TypeSwitchStmt)
			init, tag, bodyList = ts.Init, ts.Assign, ts.Body.List
		}
		if init != nil {
			b.stmt(init, "")
		}
		if tag != nil {
			b.add(tag)
		}
		head := b.cur
		after := b.newBlock()
		b.loopStack = append(b.loopStack, loopTargets{label: label, breakTo: after})
		hasDefault := false
		var prevBody *cfgBlock // for fallthrough
		for _, cs := range bodyList {
			cc, ok := cs.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			caseBlk := b.newBlock()
			b.edge(head, caseBlk)
			if prevBody != nil {
				b.edge(prevBody, caseBlk) // fallthrough from previous case
			}
			prevBody = nil
			b.cur = caseBlk
			for _, e := range cc.List {
				b.add(e)
			}
			fallsThrough := false
			if n := len(cc.Body); n > 0 {
				if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
					fallsThrough = true
				}
			}
			b.stmts(cc.Body)
			if fallsThrough {
				prevBody = b.cur
			} else {
				b.edge(b.cur, after)
			}
		}
		if prevBody != nil {
			b.edge(prevBody, after)
		}
		b.loopStack = b.loopStack[:len(b.loopStack)-1]
		if !hasDefault {
			b.edge(head, after)
		}
		b.cur = after

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.loopStack = append(b.loopStack, loopTargets{label: label, breakTo: after})
		for _, cs := range st.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			caseBlk := b.newBlock()
			b.edge(head, caseBlk)
			b.cur = caseBlk
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmts(cc.Body)
			b.edge(b.cur, after)
		}
		b.loopStack = b.loopStack[:len(b.loopStack)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.add(st)
		b.edge(b.cur, b.g.exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		switch st.Tok.String() {
		case "break":
			b.branchTo(st.Label, true)
		case "continue":
			b.branchTo(st.Label, false)
		case "goto":
			// Conservative: treat as leaving the analyzable region.
			b.edge(b.cur, b.g.exit)
			b.cur = b.newBlock()
		case "fallthrough":
			// Edges handled by the switch lowering.
		}

	case *ast.DeferStmt:
		b.add(st)
		b.g.defers = append(b.g.defers, st)

	case *ast.ExprStmt:
		b.add(st)
		if isPanicCall(st.X) {
			b.edge(b.cur, b.g.exit)
			b.cur = b.newBlock()
		}

	default:
		b.add(st)
	}
}

// branchTo wires a break/continue to its loop target; break with
// isBreak=true, continue otherwise. Unknown labels fall back to the
// function exit (conservative).
func (b *cfgBuilder) branchTo(label *ast.Ident, isBreak bool) {
	name := ""
	if label != nil {
		name = label.Name
	}
	for i := len(b.loopStack) - 1; i >= 0; i-- {
		lt := b.loopStack[i]
		if name != "" && lt.label != name {
			continue
		}
		target := lt.breakTo
		if !isBreak {
			target = lt.continueTo
			if target == nil {
				continue // continue skips switch/select frames
			}
		}
		b.edge(b.cur, target)
		b.cur = b.newBlock()
		return
	}
	b.edge(b.cur, b.g.exit)
	b.cur = b.newBlock()
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// flowAnalysis is a forward dataflow problem over a funcCFG. transfer
// must be PURE — the worklist revisits blocks until the fixed point, so
// findings are reported in a separate pass over the solved facts (see
// solveForward's result). Facts are small copy-on-write maps.
type flowAnalysis[F any] interface {
	// entryFact is the fact at function entry.
	entryFact() F
	// transfer folds one node (statement or condition expression) into
	// the fact, returning the outgoing fact. Must not report findings.
	transfer(fact F, n ast.Node) F
	// merge joins two facts at a control-flow join.
	merge(a, b F) F
	// equal reports whether two facts are the same (fixed-point test).
	equal(a, b F) bool
}

// flowResult is the solved dataflow: the fact at entry to each reached
// block, plus the fact reaching the virtual exit. Analyzers do their
// reporting by re-walking blocks in source order with transfer, checking
// invariants node by node against these entry facts — one deterministic
// sweep, no duplicate reports from worklist revisits.
type flowResult[F any] struct {
	in   map[*cfgBlock]F
	exit F
}

// solveForward runs the analysis over the graph to a fixed point.
func solveForward[F any](g *funcCFG, a flowAnalysis[F]) flowResult[F] {
	in := make(map[*cfgBlock]F, len(g.blocks))
	out := make(map[*cfgBlock]F, len(g.blocks))
	haveIn := make(map[*cfgBlock]bool, len(g.blocks))
	haveOut := make(map[*cfgBlock]bool, len(g.blocks))

	in[g.entry] = a.entryFact()
	haveIn[g.entry] = true
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		fact := in[blk]
		for _, n := range blk.nodes {
			fact = a.transfer(fact, n)
		}
		if haveOut[blk] && a.equal(out[blk], fact) {
			continue
		}
		out[blk] = fact
		haveOut[blk] = true
		for _, succ := range blk.succs {
			next := fact
			if haveIn[succ] {
				next = a.merge(in[succ], fact)
				if a.equal(next, in[succ]) {
					continue
				}
			}
			in[succ] = next
			haveIn[succ] = true
			work = append(work, succ)
		}
	}
	res := flowResult[F]{in: in}
	if f, ok := in[g.exit]; ok {
		res.exit = f
	} else {
		res.exit = a.entryFact()
	}
	return res
}

// eachReachedBlock visits the graph's reached blocks in build (source)
// order, handing each its solved entry fact; unreached blocks (dead code
// after return) are skipped.
func eachReachedBlock[F any](g *funcCFG, res flowResult[F], fn func(blk *cfgBlock, entry F)) {
	for _, blk := range g.blocks {
		entry, ok := res.in[blk]
		if !ok {
			continue
		}
		fn(blk, entry)
	}
}
