package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path    string // import path
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Sources map[string][]byte // filename -> raw source (for directive parsing)
	Types   *types.Package
	Info    *types.Info

	imports []string // module-internal imports (loader bookkeeping)
}

// Loader parses and type-checks module packages using only the standard
// library: go/parser for syntax and go/importer in source mode for
// dependencies, so the module never needs export data or network access.
type Loader struct {
	fset *token.FileSet
	std  types.ImporterFrom
	// checked maps import path -> type-checked package, shared so module
	// packages can import each other and fixtures reuse stdlib work.
	checked map[string]*types.Package
	root    string
}

// NewLoader returns a loader rooted at dir (used as the source-importer
// resolution directory; the module root for real runs).
func NewLoader(dir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		checked: make(map[string]*types.Package),
		root:    dir,
	}
}

// Import implements types.Importer for the type-checker: module packages
// come from the already-checked set (guaranteed by topological order),
// everything else from the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if tp, ok := l.checked[path]; ok {
		return tp, nil
	}
	tp, err := l.std.ImportFrom(path, l.root, 0)
	if err == nil {
		l.checked[path] = tp
	}
	return tp, err
}

// LoadModule walks the module rooted at root (identified by its go.mod),
// parses every non-test package outside testdata/, and type-checks them
// in dependency order. The returned packages are sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := NewLoader(root)

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*Package, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.parseDir(dir, imp)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable files
		}
		for _, f := range pkg.Files {
			for _, is := range f.Imports {
				p, _ := strconv.Unquote(is.Path.Value)
				if p == modPath || strings.HasPrefix(p, modPath+"/") {
					pkg.imports = append(pkg.imports, p)
				}
			}
		}
		byPath[imp] = pkg
	}

	order, err := topoOrder(byPath)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, imp := range order {
		pkg := byPath[imp]
		if err := l.check(pkg); err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks a single directory as the given import
// path, resolving imports against the stdlib only. Golden-test fixtures
// use it with synthetic paths (e.g. "isum/internal/core") to exercise
// path-scoped analyzers.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	pkg, err := l.parseDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}
	if err := l.check(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// parseDir parses the non-test .go files of dir (nil if there are none).
func (l *Loader) parseDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Path:    importPath,
		Dir:     dir,
		Fset:    l.fset,
		Sources: make(map[string][]byte),
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(l.fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, file)
		pkg.Sources[path] = src
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// check type-checks pkg and registers it with the loader.
func (l *Loader) check(pkg *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tp, err := conf.Check(pkg.Path, l.fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tp
	pkg.Info = info
	l.checked[pkg.Path] = tp
	return nil
}

// packageDirs returns every directory under root that contains at least
// one non-test .go file, skipping VCS, testdata, and underscore/dot dirs.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// topoOrder returns the import paths of pkgs in dependency order
// (imported before importer). Unknown imports are ignored; cycles error.
func topoOrder(pkgs map[string]*Package) ([]string, error) {
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(imp string, stack []string) error
	visit = func(imp string, stack []string) error {
		pkg, ok := pkgs[imp]
		if !ok || state[imp] == 2 {
			return nil
		}
		if state[imp] == 1 {
			return fmt.Errorf("import cycle: %s", strings.Join(append(stack, imp), " -> "))
		}
		state[imp] = 1
		deps := append([]string(nil), pkg.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep, append(stack, imp)); err != nil {
				return err
			}
		}
		state[imp] = 2
		order = append(order, imp)
		return nil
	}
	paths := make([]string, 0, len(pkgs))
	for imp := range pkgs {
		paths = append(paths, imp)
	}
	sort.Strings(paths)
	for _, imp := range paths {
		if err := visit(imp, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}
