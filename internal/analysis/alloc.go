package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AllocAnalyzer statically enforces PR 5's zero-allocation kernel pins
// (DESIGN.md §11, §15): inside functions marked //lint:hotpath it flags
// every construct that heap-allocates — make/new, slice and map
// composite literals, closures, string concatenation and string/[]byte
// conversions, interface boxing at call sites, and calls into fmt — and
// flags appends except into pooled scratch or caller-owned storage. A
// CFG dataflow pass additionally checks the sync.Pool discipline: every
// pool.Get must be matched by a pool.Put on every path out of the
// function, otherwise the steady-state allocation-free cycle leaks its
// scratch buffer.
//
// The runtime twin is TestKernelZeroAlloc (AllocsPerRun = 0); the marker
// makes the pin survive edits the test's fixed inputs would not reach.
var AllocAnalyzer = &Analyzer{
	ID:  "alloc",
	Doc: "no heap allocation inside //lint:hotpath functions; pooled buffers Put on every path",
	Run: runAlloc,
}

func runAlloc(pass *Pass) {
	for _, file := range pass.Files {
		for _, fd := range hotpathFuncs(file) {
			checkHotpathFunc(pass, fd)
		}
	}
}

func checkHotpathFunc(pass *Pass, fd *ast.FuncDecl) {
	owned := callerOwnedObjects(pass, fd)
	pooled := poolDerivedObjects(pass, fd.Body, owned)

	inspectShallow(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkHotpathCall(pass, e, pooled, owned)
		case *ast.CompositeLit:
			switch pass.TypeOf(e).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(e.Pos(), "composite literal allocates on a //lint:hotpath function; hoist it or reuse a pooled buffer")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					pass.Reportf(e.Pos(), "&composite literal escapes to the heap on a //lint:hotpath function; reuse a pooled value")
				}
			}
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "function literal allocates its closure on a //lint:hotpath function; hoist it to a package-level func")
			return false
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if t := pass.TypeOf(e); t != nil && isStringType(t) {
					pass.Reportf(e.Pos(), "string concatenation allocates on a //lint:hotpath function")
				}
			}
		}
		return true
	})

	checkPoolPairing(pass, fd)
}

// checkHotpathCall flags the allocating call forms: make/new builtins,
// string/[]byte conversions, fmt calls, interface boxing of non-pointer
// arguments, and appends into storage that is neither pooled nor
// caller-owned.
func checkHotpathCall(pass *Pass, call *ast.CallExpr, pooled, owned map[types.Object]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make allocates on a //lint:hotpath function; preallocate or take a pooled buffer")
			case "new":
				pass.Reportf(call.Pos(), "new allocates on a //lint:hotpath function; reuse a pooled value")
			case "append":
				checkHotpathAppend(pass, call, pooled, owned)
			}
			return
		}
	}
	// Type conversions: string <-> []byte/[]rune copy their payload.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pass.TypeOf(call.Args[0])
		if from != nil && isStringByteConversion(from, to) {
			pass.Reportf(call.Pos(), "string/[]byte conversion copies its payload on a //lint:hotpath function")
		}
		return
	}
	if f := calleeFunc(pass.Info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates (formatting state and boxed arguments) on a //lint:hotpath function", f.Name())
		return
	}
	checkBoxedArgs(pass, call)
}

// checkHotpathAppend allows appends whose destination slice is pooled
// scratch (derived from a sync.Pool Get) or caller-owned (rooted in a
// parameter or the receiver — the caller chose and can amortize that
// storage); everything else may grow a fresh heap block per call.
func checkHotpathAppend(pass *Pass, call *ast.CallExpr, pooled, owned map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	root := rootObject(pass, call.Args[0])
	if root != nil && (pooled[root] || owned[root]) {
		return
	}
	pass.Reportf(call.Pos(), "append may grow a non-pooled slice on a //lint:hotpath function; append into sync.Pool scratch or a caller-provided buffer")
}

// checkBoxedArgs flags arguments converted to interface parameters when
// the argument's representation is not pointer-shaped — those conversions
// heap-allocate the boxed copy.
func checkBoxedArgs(pass *Pass, call *ast.CallExpr) {
	sigT := pass.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || isUntypedNil(at) || boxesWithoutAlloc(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes a %s into an interface parameter on a //lint:hotpath function", at.String())
	}
}

// boxesWithoutAlloc reports whether converting a value of type t to an
// interface stores it directly in the interface word (pointer-shaped
// types) instead of heap-allocating a copy.
func boxesWithoutAlloc(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringByteConversion(from, to types.Type) bool {
	return (isStringType(from) && isByteOrRuneSlice(to)) ||
		(isByteOrRuneSlice(from) && isStringType(to))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// callerOwnedObjects returns the parameter and receiver objects of fd —
// storage the caller handed in, whose growth policy is the caller's.
func callerOwnedObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return owned
}

// poolDerivedObjects computes, flow-insensitively to a fixed point, the
// set of local objects whose storage derives from a sync.Pool Get — the
// `b := pool.Get().(*buf); ids := b.ids[:0]; ids = append(ids, …)` chain
// the kernels use. Caller-owned roots also propagate (`shared :=
// (*buf)[:0]` style reslices of parameters stay caller-owned-derived).
func poolDerivedObjects(pass *Pass, body *ast.BlockStmt, owned map[types.Object]bool) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	for {
		changed := false
		inspectShallow(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil || derived[obj] {
					continue
				}
				if exprIsPoolDerived(pass, rhs, derived, owned) {
					derived[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			return derived
		}
	}
}

// exprIsPoolDerived reports whether e's storage comes from a pool Get or
// from an already-derived or caller-owned object.
func exprIsPoolDerived(pass *Pass, e ast.Expr, derived, owned map[types.Object]bool) bool {
	if isPoolGetCall(pass, e) {
		return true
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.TypeAssertExpr:
		return exprIsPoolDerived(pass, x.X, derived, owned)
	case *ast.CallExpr:
		// append(dst, …) keeps dst's provenance.
		if isBuiltinAppend(pass.Info, x) && len(x.Args) > 0 {
			return exprIsPoolDerived(pass, x.Args[0], derived, owned)
		}
	case *ast.SliceExpr, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.Ident, *ast.UnaryExpr:
		if root := rootObject(pass, e); root != nil {
			return derived[root] || owned[root]
		}
	}
	return false
}

// isPoolGetCall reports whether e is (possibly via a type assertion) a
// call to (*sync.Pool).Get.
func isPoolGetCall(pass *Pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.TypeAssertExpr:
		return isPoolGetCall(pass, x.X)
	case *ast.CallExpr:
		sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Get" {
			return false
		}
		return isSyncPoolType(pass.TypeOf(sel.X))
	}
	return false
}

func isSyncPoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// rootObject strips selectors, indexing, slicing, derefs, and parens
// down to the base identifier's object (nil when the base is not a
// simple identifier).
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.Info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ---- sync.Pool Get/Put pairing (CFG dataflow) ----

// poolFact maps each un-Put pool object to the position of its Get.
type poolFact map[types.Object]token.Pos

type poolPairing struct{ pass *Pass }

func (poolPairing) entryFact() poolFact { return poolFact{} }

func (p poolPairing) transfer(fact poolFact, n ast.Node) poolFact {
	switch st := n.(type) {
	case *ast.AssignStmt:
		for i, rhs := range st.Rhs {
			if i >= len(st.Lhs) || !isPoolGetCall(p.pass, rhs) {
				continue
			}
			if id, ok := st.Lhs[i].(*ast.Ident); ok {
				if obj := p.pass.Info.ObjectOf(id); obj != nil {
					fact = clonePoolFact(fact)
					fact[obj] = rhs.Pos()
				}
			}
		}
		return fact
	}
	// Put calls can appear in any statement; scan shallowly for them.
	// The range reads the pre-clone map while deletes land in the clone,
	// so clearing is safe mid-iteration (and order-independent).
	if stNode, ok := n.(ast.Stmt); ok {
		cloned := false
		inspectShallow(stNode, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || !isPoolPutCall(p.pass, call) || len(call.Args) != 1 {
				return true
			}
			for obj := range fact {
				if mentionsObject(p.pass, call.Args[0], obj) {
					if !cloned {
						fact = clonePoolFact(fact)
						cloned = true
					}
					delete(fact, obj)
				}
			}
			return true
		})
	}
	return fact
}

func (poolPairing) merge(a, b poolFact) poolFact {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := clonePoolFact(a)
	for obj, pos := range b {
		if _, ok := out[obj]; !ok {
			out[obj] = pos
		}
	}
	return out
}

func (poolPairing) equal(a, b poolFact) bool {
	if len(a) != len(b) {
		return false
	}
	for obj := range a {
		if _, ok := b[obj]; !ok {
			return false
		}
	}
	return true
}

func clonePoolFact(f poolFact) poolFact {
	out := make(poolFact, len(f)+1)
	for k, v := range f {
		out[k] = v
	}
	return out
}

func isPoolPutCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return false
	}
	return isSyncPoolType(pass.TypeOf(sel.X))
}

// checkPoolPairing reports every pool Get whose buffer can reach the
// function exit without a Put: on the steady-state path that leaks the
// scratch buffer and the next call allocates a fresh one, defeating the
// zero-alloc pin.
func checkPoolPairing(pass *Pass, fd *ast.FuncDecl) {
	g := buildCFG(fd.Body)
	res := solveForward(g, poolPairing{pass: pass})
	if len(res.exit) == 0 {
		return
	}
	positions := make([]token.Pos, 0, len(res.exit))
	for _, pos := range res.exit {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	for _, pos := range positions {
		pass.Reportf(pos, "sync.Pool Get result is not Put back on every path out of this //lint:hotpath function; the leaked scratch buffer defeats the zero-alloc pin")
	}
}
