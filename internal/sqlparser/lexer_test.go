package sqlparser

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasicSelect(t *testing.T) {
	toks, err := Tokenize("SELECT a, b FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SELECT", "a", ",", "b", "FROM", "t", "WHERE", "a", "=", "1"}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Text != w {
			t.Fatalf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestTokenizeKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("select From WhErE")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Kind != TokenKeyword {
			t.Fatalf("%q should be a keyword", tok.Text)
		}
	}
	if toks[0].Text != "SELECT" {
		t.Fatalf("keywords should be upper-cased, got %q", toks[0].Text)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []string{"42", "3.14", ".5", "1e10", "2.5E-3", "0.001"}
	for _, c := range cases {
		toks, err := Tokenize(c)
		if err != nil {
			t.Fatalf("%q: %v", c, err)
		}
		if len(toks) != 1 || toks[0].Kind != TokenNumber {
			t.Fatalf("%q should lex as one number, got %+v", c, toks)
		}
	}
}

func TestTokenizeStringsWithEscapes(t *testing.T) {
	toks, err := Tokenize("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "it's" {
		t.Fatalf("got %q", toks[0].Text)
	}
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Fatal("expected unterminated-string error")
	}
}

func TestTokenizeQuotedIdents(t *testing.T) {
	for _, src := range []string{`"My Col"`, "`My Col`", "[My Col]"} {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if len(toks) != 1 || toks[0].Kind != TokenIdent || toks[0].Text != "My Col" {
			t.Fatalf("%q lexed to %+v", src, toks)
		}
	}
	if _, err := Tokenize(`"unterminated`); err == nil {
		t.Fatal("expected unterminated-ident error")
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("SELECT -- line comment\n a /* block\ncomment */ FROM t")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	if strings.Join(texts, " ") != "SELECT a FROM t" {
		t.Fatalf("comments not skipped: %v", texts)
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("a <= b >= c <> d != e || f")
	if err != nil {
		t.Fatal(err)
	}
	ops := []string{}
	for _, tok := range toks {
		if tok.Kind == TokenOp {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<=", ">=", "<>", "!=", "||"}
	if strings.Join(ops, ",") != strings.Join(want, ",") {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
}

func TestTokenizeParamAndPunct(t *testing.T) {
	toks, err := Tokenize("f(?, a.b);")
	if err != nil {
		t.Fatal(err)
	}
	ks := kinds(toks)
	want := []TokenKind{TokenIdent, TokenPunct, TokenParam, TokenPunct, TokenIdent, TokenPunct, TokenIdent, TokenPunct, TokenPunct}
	if len(ks) != len(want) {
		t.Fatalf("kinds = %v", ks)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("token %d kind = %v, want %v", i, ks[i], want[i])
		}
	}
}

func TestTokenizeBadChar(t *testing.T) {
	if _, err := Tokenize("a @ b"); err == nil {
		t.Fatal("expected lex error for @")
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("ab cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 3 {
		t.Fatalf("positions = %d, %d", toks[0].Pos, toks[1].Pos)
	}
}
