package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a single SELECT statement (optionally terminated by ';').
func Parse(sql string) (*SelectStmt, error) {
	toks, err := Tokenize(sql)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: sql}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().Text)
	}
	return stmt, nil
}

// MustParse parses sql and panics on error; intended for statically-known
// template text in the benchmark generators and tests.
func MustParse(sql string) *SelectStmt {
	s, err := Parse(sql)
	if err != nil {
		panic(fmt.Sprintf("sqlparser.MustParse(%q): %v", sql, err))
	}
	return s
}

func (p *Parser) parseStatement() (*SelectStmt, error) {
	var ctes []CTE
	if p.acceptKeyword("WITH") {
		for {
			cte, err := p.parseCTE()
			if err != nil {
				return nil, err
			}
			ctes = append(ctes, cte)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.With = ctes
	return stmt, nil
}

func (p *Parser) parseCTE() (CTE, error) {
	name, err := p.expectIdent()
	if err != nil {
		return CTE{}, err
	}
	var cols []string
	if p.acceptPunct("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return CTE{}, err
			}
			cols = append(cols, c)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return CTE{}, err
		}
	}
	if !p.acceptKeyword("AS") {
		return CTE{}, p.errorf("expected AS in CTE definition")
	}
	if err := p.expectPunct("("); err != nil {
		return CTE{}, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return CTE{}, err
	}
	if err := p.expectPunct(")"); err != nil {
		return CTE{}, err
	}
	return CTE{Name: name, Columns: cols, Select: sel}, nil
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if !p.acceptKeyword("SELECT") {
		return nil, p.errorf("expected SELECT, got %q", p.peek().Text)
	}
	stmt := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		stmt.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	if p.acceptKeyword("TOP") {
		n, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		stmt.Top = &n
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, tr)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if !p.acceptKeyword("BY") {
			return nil, p.errorf("expected BY after GROUP")
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("UNION") {
		dedup := !p.acceptKeyword("ALL")
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.UnionAll = next
		stmt.UnionDedup = dedup
	}
	if p.acceptKeyword("ORDER") {
		if !p.acceptKeyword("BY") {
			return nil, p.errorf("expected BY after ORDER")
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		stmt.Limit = &n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		stmt.Offset = &n
	}
	return stmt, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// '*' or 't.*'
	if p.peekOp("*") {
		p.next()
		return SelectItem{Star: true}, nil
	}
	if p.peek().Kind == TokenIdent && p.peekAt(1).Text == "." && p.peekAt(2).Text == "*" {
		tbl := p.next().Text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, Table: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().Kind == TokenIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	left, err := p.parsePrimaryTableRef()
	if err != nil {
		return nil, err
	}
	for {
		jt, isJoin := p.peekJoin()
		if !isJoin {
			return left, nil
		}
		p.consumeJoinKeywords()
		right, err := p.parsePrimaryTableRef()
		if err != nil {
			return nil, err
		}
		join := &JoinExpr{Left: left, Right: right, Type: jt}
		if jt != JoinCross {
			if !p.acceptKeyword("ON") {
				return nil, p.errorf("expected ON after %s", jt)
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			join.On = cond
		}
		left = join
	}
}

// peekJoin reports whether the upcoming tokens start a join clause, and
// which kind.
func (p *Parser) peekJoin() (JoinType, bool) {
	t := p.peek()
	if t.Kind != TokenKeyword {
		return 0, false
	}
	switch t.Text {
	case "JOIN", "INNER":
		return JoinInner, true
	case "LEFT":
		return JoinLeft, true
	case "RIGHT":
		return JoinRight, true
	case "FULL":
		return JoinFull, true
	case "CROSS":
		return JoinCross, true
	}
	return 0, false
}

func (p *Parser) consumeJoinKeywords() {
	switch p.peek().Text {
	case "JOIN":
		p.next()
	case "INNER", "CROSS":
		p.next()
		p.acceptKeyword("JOIN")
	case "LEFT", "RIGHT", "FULL":
		p.next()
		p.acceptKeyword("OUTER")
		p.acceptKeyword("JOIN")
	}
}

func (p *Parser) parsePrimaryTableRef() (TableRef, error) {
	if p.acceptPunct("(") {
		// Derived table or parenthesised join tree.
		if p.peekKeyword("SELECT") || p.peekKeyword("WITH") {
			sel, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			alias := ""
			p.acceptKeyword("AS")
			if p.peek().Kind == TokenIdent {
				alias = p.next().Text
			}
			return &SubqueryRef{Select: sel, Alias: alias}, nil
		}
		inner, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	bt := &BaseTable{Name: name}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		bt.Alias = a
	} else if p.peek().Kind == TokenIdent {
		bt.Alias = p.next().Text
	}
	return bt, nil
}

// ---- expressions ----

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *Parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	not := p.acceptKeyword("NOT")
	switch {
	case p.acceptKeyword("IN"):
		return p.parseInTail(left, not)
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if !p.acceptKeyword("AND") {
			return nil, p.errorf("expected AND in BETWEEN")
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: left, Not: not, Lo: lo, Hi: hi}, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{X: left, Not: not, Pattern: pat}, nil
	case not:
		return nil, p.errorf("expected IN, BETWEEN, or LIKE after NOT")
	case p.acceptKeyword("IS"):
		n := p.acceptKeyword("NOT")
		if !p.acceptKeyword("NULL") {
			return nil, p.errorf("expected NULL after IS")
		}
		return &IsNullExpr{X: left, Not: n}, nil
	}
	if op, ok := p.peekComparison(); ok {
		p.next()
		// Quantified comparison: op ANY/ALL/SOME (subquery)
		if q := p.peek().Text; p.peek().Kind == TokenKeyword && (q == "ANY" || q == "ALL" || q == "SOME") {
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			sub, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &QuantifiedExpr{X: left, Op: op, Quantifier: q, Subquery: sub}, nil
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: left, R: right}, nil
	}
	return left, nil
}

func (p *Parser) parseInTail(left Expr, not bool) (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if p.peekKeyword("SELECT") || p.peekKeyword("WITH") {
		sub, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &InExpr{X: left, Not: not, Subquery: sub}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &InExpr{X: left, Not: not, List: list}, nil
}

func (p *Parser) peekComparison() (string, bool) {
	t := p.peek()
	if t.Kind != TokenOp {
		return "", false
	}
	switch t.Text {
	case "=", "<", ">", "<=", ">=", "<>", "!=":
		op := t.Text
		if op == "!=" {
			op = "<>"
		}
		return op, true
	}
	return "", false
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokenOp && (t.Text == "+" || t.Text == "-" || t.Text == "||") {
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokenOp && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokenOp && (t.Text == "-" || t.Text == "+") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.Text == "+" {
			return x, nil
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokenNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q: %v", t.Text, err)
		}
		return &Literal{Kind: LitNumber, Num: v}, nil
	case TokenString:
		p.next()
		return &Literal{Kind: LitString, Str: t.Text}, nil
	case TokenParam:
		p.next()
		return &Literal{Kind: LitParam}, nil
	case TokenKeyword:
		return p.parseKeywordPrimary()
	case TokenIdent:
		return p.parseIdentPrimary()
	case TokenPunct:
		if t.Text == "(" {
			p.next()
			if p.peekKeyword("SELECT") || p.peekKeyword("WITH") {
				sub, err := p.parseStatement()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Select: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}

func (p *Parser) parseKeywordPrimary() (Expr, error) {
	t := p.peek()
	switch t.Text {
	case "NULL":
		p.next()
		return &Literal{Kind: LitNull}, nil
	case "TRUE", "FALSE":
		p.next()
		return &Literal{Kind: LitBool, Bool: t.Text == "TRUE"}, nil
	case "EXISTS":
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		sub, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Subquery: sub}, nil
	case "NOT":
		p.next()
		x, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	case "CASE":
		return p.parseCase()
	case "CAST":
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.acceptKeyword("AS") {
			return nil, p.errorf("expected AS in CAST")
		}
		tn, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &CastExpr{X: x, TypeName: tn}, nil
	case "INTERVAL":
		p.next()
		lit := p.peek()
		if lit.Kind != TokenString && lit.Kind != TokenNumber {
			return nil, p.errorf("expected literal after INTERVAL")
		}
		p.next()
		unit := ""
		if p.peek().Kind == TokenIdent {
			unit = p.next().Text
		}
		text := "'" + lit.Text + "'"
		if unit != "" {
			text += " " + unit
		}
		return &Literal{Kind: LitInterval, Str: text}, nil
	case "SUBSTRING":
		p.next()
		return p.parseSubstring()
	case "EXTRACT":
		p.next()
		return p.parseExtract()
	}
	return nil, p.errorf("unexpected keyword %q in expression", t.Text)
}

// parseSubstring handles both SUBSTRING(x FROM a FOR b) and
// SUBSTRING(x, a, b).
func (p *Parser) parseSubstring() (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	args := []Expr{x}
	if p.acceptKeyword("FROM") {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.peek().Kind == TokenIdent && strings.EqualFold(p.peek().Text, "FOR") {
			p.next()
			b, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, b)
		}
	} else {
		for p.acceptPunct(",") {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &FuncCall{Name: "SUBSTRING", Args: args}, nil
}

// parseExtract handles EXTRACT(unit FROM expr).
func (p *Parser) parseExtract() (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	unitTok := p.peek()
	if unitTok.Kind != TokenIdent && unitTok.Kind != TokenKeyword {
		return nil, p.errorf("expected unit in EXTRACT")
	}
	p.next()
	if !p.acceptKeyword("FROM") {
		return nil, p.errorf("expected FROM in EXTRACT")
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &FuncCall{Name: "EXTRACT_" + strings.ToUpper(unitTok.Text), Args: []Expr{x}}, nil
}

func (p *Parser) parseCase() (Expr, error) {
	p.next() // CASE
	ce := &CaseExpr{}
	if !p.peekKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.acceptKeyword("THEN") {
			return nil, p.errorf("expected THEN in CASE")
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Result: res})
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if !p.acceptKeyword("END") {
		return nil, p.errorf("expected END in CASE")
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE with no WHEN clauses")
	}
	return ce, nil
}

func (p *Parser) parseTypeName() (string, error) {
	t := p.peek()
	if t.Kind != TokenIdent && t.Kind != TokenKeyword {
		return "", p.errorf("expected type name, got %q", t.Text)
	}
	p.next()
	name := t.Text
	if p.acceptPunct("(") {
		n, err := p.expectInt()
		if err != nil {
			return "", err
		}
		name += "(" + strconv.FormatInt(n, 10)
		if p.acceptPunct(",") {
			m, err := p.expectInt()
			if err != nil {
				return "", err
			}
			name += "," + strconv.FormatInt(m, 10)
		}
		if err := p.expectPunct(")"); err != nil {
			return "", err
		}
		name += ")"
	}
	return name, nil
}

func (p *Parser) parseIdentPrimary() (Expr, error) {
	name := p.next().Text
	// Function call?
	if p.peek().Text == "(" && p.peek().Kind == TokenPunct {
		p.next()
		fc := &FuncCall{Name: strings.ToUpper(name)}
		if p.peekOp("*") {
			p.next()
			fc.Star = true
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		if p.acceptKeyword("DISTINCT") {
			fc.Distinct = true
		}
		if !p.peekPunct(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, a)
				if !p.acceptPunct(",") {
					break
				}
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	// Qualified column?
	if p.peek().Kind == TokenPunct && p.peek().Text == "." {
		p.next()
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Qualifier: name, Name: col}, nil
	}
	return &ColumnRef{Name: name}, nil
}

// ---- token helpers ----

func (p *Parser) peek() Token { return p.peekAt(0) }

func (p *Parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return Token{Kind: TokenEOF, Pos: len(p.src)}
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *Parser) atEOF() bool { return p.peek().Kind == TokenEOF }

func (p *Parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokenKeyword && t.Text == kw
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) peekPunct(s string) bool {
	t := p.peek()
	return t.Kind == TokenPunct && t.Text == s
}

func (p *Parser) peekOp(s string) bool {
	t := p.peek()
	return t.Kind == TokenOp && t.Text == s
}

func (p *Parser) acceptPunct(s string) bool {
	if p.peekPunct(s) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errorf("expected %q, got %q", s, p.peek().Text)
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokenIdent {
		return "", p.errorf("expected identifier, got %q", t.Text)
	}
	p.next()
	return t.Text, nil
}

func (p *Parser) expectInt() (int64, error) {
	t := p.peek()
	if t.Kind != TokenNumber {
		return 0, p.errorf("expected integer, got %q", t.Text)
	}
	p.next()
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		f, ferr := strconv.ParseFloat(t.Text, 64)
		if ferr != nil {
			return 0, p.errorf("bad integer %q", t.Text)
		}
		n = int64(f)
	}
	return n, nil
}

func (p *Parser) errorf(format string, args ...any) error {
	pos := p.peek().Pos
	return fmt.Errorf("sqlparser: %s (at offset %d)", fmt.Sprintf(format, args...), pos)
}
