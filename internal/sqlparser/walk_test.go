package sqlparser

import "testing"

func TestWalkExprStopsDescent(t *testing.T) {
	stmt := MustParse("SELECT a + b * c FROM t WHERE x = 1 AND y = 2")
	total := 0
	WalkExpr(stmt.Where, func(Expr) bool { total++; return true })
	if total < 7 { // AND, two comparisons, two cols, two literals
		t.Fatalf("walked %d nodes", total)
	}
	stopped := 0
	WalkExpr(stmt.Where, func(e Expr) bool {
		stopped++
		_, isBin := e.(*BinaryExpr)
		return !isBin // stop below any binary node
	})
	if stopped != 1 {
		t.Fatalf("early stop visited %d nodes", stopped)
	}
}

func TestWalkExprNil(t *testing.T) {
	WalkExpr(nil, func(Expr) bool { t.Fatal("should not visit"); return true })
}

func TestExprSubqueriesKinds(t *testing.T) {
	stmt := MustParse(`SELECT (SELECT MAX(x) FROM u) FROM t
		WHERE a IN (SELECT b FROM v)
		  AND EXISTS (SELECT 1 FROM w)
		  AND c > ALL (SELECT d FROM z)`)
	count := 0
	for _, e := range TopLevelExprs(stmt) {
		count += len(ExprSubqueries(e))
	}
	if count != 4 {
		t.Fatalf("subqueries = %d, want 4", count)
	}
}

func TestExprSubqueriesDoesNotRecurse(t *testing.T) {
	stmt := MustParse(`SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE z IN (SELECT k FROM v))`)
	subs := ExprSubqueries(stmt.Where)
	if len(subs) != 1 {
		t.Fatalf("top-level subqueries = %d, want 1 (no recursion)", len(subs))
	}
}

func TestWalkStatementCountsAllBlocks(t *testing.T) {
	stmt := MustParse(`WITH c AS (SELECT x FROM a)
		SELECT (SELECT MAX(y) FROM b) FROM c, (SELECT z FROM d) dd
		WHERE EXISTS (SELECT 1 FROM e)
		UNION ALL SELECT q FROM f`)
	n := 0
	WalkStatement(stmt, func(*SelectStmt) { n++ })
	// outer + cte + scalar + derived + exists + union = 6
	if n != 6 {
		t.Fatalf("blocks = %d, want 6", n)
	}
}

func TestWalkStatementJoinOnSubquery(t *testing.T) {
	stmt := MustParse(`SELECT 1 FROM a JOIN b ON a.x = (SELECT MAX(y) FROM c)`)
	n := 0
	WalkStatement(stmt, func(*SelectStmt) { n++ })
	if n != 2 {
		t.Fatalf("blocks = %d, want 2", n)
	}
}

func TestBaseTablesDedupAndCTEExclusion(t *testing.T) {
	stmt := MustParse(`WITH c AS (SELECT x FROM base1)
		SELECT 1 FROM c, base2 b1, base2 b2 WHERE b1.k = b2.k`)
	bts := BaseTables(stmt)
	names := map[string]int{}
	for _, bt := range bts {
		names[lower(bt.Name)]++
	}
	if names["c"] != 0 {
		t.Fatal("CTE leaked into base tables")
	}
	if names["base1"] != 1 || names["base2"] != 2 {
		t.Fatalf("base tables = %v", names)
	}
}

func TestJoinTypeStrings(t *testing.T) {
	pairs := map[JoinType]string{
		JoinInner: "JOIN", JoinLeft: "LEFT JOIN", JoinRight: "RIGHT JOIN",
		JoinFull: "FULL JOIN", JoinCross: "CROSS JOIN", JoinType(9): "JOIN",
	}
	for jt, want := range pairs {
		if jt.String() != want {
			t.Fatalf("%v = %q, want %q", jt, jt.String(), want)
		}
	}
}

func TestSQLRenderingEdgeCases(t *testing.T) {
	cases := []string{
		"SELECT DISTINCT a FROM t",
		"SELECT * FROM (SELECT a FROM t) s",
		"SELECT a FROM t WHERE b IS NOT NULL",
		"SELECT -a FROM t",
		"SELECT a || b FROM t",
		"SELECT CAST(a AS INT) FROM t",
	}
	for _, sql := range cases {
		stmt := MustParse(sql)
		again := MustParse(stmt.SQL())
		if stmt.SQL() != again.SQL() {
			t.Fatalf("unstable round trip for %q", sql)
		}
	}
}
