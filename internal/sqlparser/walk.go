package sqlparser

// WalkExpr calls fn for e and every sub-expression (pre-order). Subqueries
// embedded in expressions are NOT descended into; use WalkStatement for
// whole-query traversal. Returning false from fn stops descent below that
// node.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *UnaryExpr:
		WalkExpr(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *InExpr:
		WalkExpr(x.X, fn)
		for _, a := range x.List {
			WalkExpr(a, fn)
		}
	case *BetweenExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *LikeExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Pattern, fn)
	case *IsNullExpr:
		WalkExpr(x.X, fn)
	case *QuantifiedExpr:
		WalkExpr(x.X, fn)
	case *CaseExpr:
		WalkExpr(x.Operand, fn)
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Result, fn)
		}
		WalkExpr(x.Else, fn)
	case *CastExpr:
		WalkExpr(x.X, fn)
	}
}

// ExprSubqueries returns all subqueries directly embedded in an expression
// tree (EXISTS, IN (SELECT ...), scalar subqueries, quantified comparisons),
// without recursing into the subqueries themselves.
func ExprSubqueries(e Expr) []*SelectStmt {
	var subs []*SelectStmt
	WalkExpr(e, func(x Expr) bool {
		switch s := x.(type) {
		case *ExistsExpr:
			subs = append(subs, s.Subquery)
		case *InExpr:
			if s.Subquery != nil {
				subs = append(subs, s.Subquery)
			}
		case *SubqueryExpr:
			subs = append(subs, s.Select)
		case *QuantifiedExpr:
			subs = append(subs, s.Subquery)
		}
		return true
	})
	return subs
}

// WalkStatement calls fn for stmt and every nested SELECT (CTEs, derived
// tables, expression subqueries, UNION branches), pre-order.
func WalkStatement(stmt *SelectStmt, fn func(*SelectStmt)) {
	if stmt == nil {
		return
	}
	fn(stmt)
	for _, cte := range stmt.With {
		WalkStatement(cte.Select, fn)
	}
	for _, tr := range stmt.From {
		walkTableRef(tr, fn)
	}
	for _, e := range statementExprs(stmt) {
		for _, sub := range ExprSubqueries(e) {
			WalkStatement(sub, fn)
		}
	}
	WalkStatement(stmt.UnionAll, fn)
}

func walkTableRef(tr TableRef, fn func(*SelectStmt)) {
	switch t := tr.(type) {
	case *JoinExpr:
		walkTableRef(t.Left, fn)
		walkTableRef(t.Right, fn)
		if t.On != nil {
			for _, sub := range ExprSubqueries(t.On) {
				WalkStatement(sub, fn)
			}
		}
	case *SubqueryRef:
		WalkStatement(t.Select, fn)
	}
}

// statementExprs returns the top-level expressions of a single SELECT block
// (no recursion into nested selects).
func statementExprs(stmt *SelectStmt) []Expr {
	var out []Expr
	for _, it := range stmt.Items {
		if it.Expr != nil {
			out = append(out, it.Expr)
		}
	}
	if stmt.Where != nil {
		out = append(out, stmt.Where)
	}
	out = append(out, stmt.GroupBy...)
	if stmt.Having != nil {
		out = append(out, stmt.Having)
	}
	for _, o := range stmt.OrderBy {
		out = append(out, o.Expr)
	}
	return out
}

// TopLevelExprs exposes statementExprs for analysis packages.
func TopLevelExprs(stmt *SelectStmt) []Expr { return statementExprs(stmt) }

// BaseTables returns every base table referenced anywhere in the statement,
// including nested queries, in first-appearance order. CTE names are
// excluded (they are not base tables) unless they shadow nothing.
func BaseTables(stmt *SelectStmt) []*BaseTable {
	cteNames := map[string]bool{}
	WalkStatement(stmt, func(s *SelectStmt) {
		for _, cte := range s.With {
			cteNames[lower(cte.Name)] = true
		}
	})
	var out []*BaseTable
	WalkStatement(stmt, func(s *SelectStmt) {
		for _, tr := range s.From {
			collectBaseTables(tr, cteNames, &out)
		}
	})
	return out
}

func collectBaseTables(tr TableRef, cteNames map[string]bool, out *[]*BaseTable) {
	switch t := tr.(type) {
	case *BaseTable:
		if !cteNames[lower(t.Name)] {
			*out = append(*out, t)
		}
	case *JoinExpr:
		collectBaseTables(t.Left, cteNames, out)
		collectBaseTables(t.Right, cteNames, out)
	case *SubqueryRef:
		// handled by WalkStatement
	}
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}
