// Package sqlparser implements a hand-written lexer and recursive-descent
// parser for the SQL subset used by the TPC-H-, TPC-DS-, DSB-, and
// Real-M-style workloads in this repository: SELECT queries with joins
// (explicit and comma syntax), WHERE predicates (AND/OR/NOT, comparison,
// IN, BETWEEN, LIKE, IS NULL, EXISTS), scalar and relational subqueries,
// CTEs, GROUP BY/HAVING, ORDER BY, and LIMIT/TOP.
//
// The parser produces an AST (ast.go) that the workload analyser binds
// against a catalog to extract indexable columns — the feature space of the
// ISUM paper (Section 4.2).
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokenKind classifies lexical tokens.
type TokenKind int

const (
	// TokenEOF marks the end of input.
	TokenEOF TokenKind = iota
	// TokenIdent is an identifier or non-reserved word.
	TokenIdent
	// TokenKeyword is a reserved word (SELECT, FROM, ...).
	TokenKeyword
	// TokenNumber is a numeric literal.
	TokenNumber
	// TokenString is a single-quoted string literal.
	TokenString
	// TokenOp is an operator (=, <>, <=, +, ...).
	TokenOp
	// TokenPunct is punctuation: ( ) , . ;
	TokenPunct
	// TokenParam is a positional parameter marker '?'.
	TokenParam
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int    // byte offset in the input
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "TOP": true,
	"AS": true, "ON": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"BETWEEN": true, "LIKE": true, "IS": true, "NULL": true, "EXISTS": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "CROSS": true, "DISTINCT": true, "ALL": true, "ANY": true,
	"SOME": true, "UNION": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "ASC": true, "DESC": true, "WITH": true,
	"TRUE": true, "FALSE": true, "CAST": true, "INTERVAL": true,
	"SUBSTRING": true, "EXTRACT": true,
}

// Lexer tokenises SQL text.
type Lexer struct {
	input string
	pos   int
}

// NewLexer returns a lexer over the given SQL text.
func NewLexer(input string) *Lexer { return &Lexer{input: input} }

// Tokenize consumes the entire input and returns all tokens (excluding EOF),
// or the first lexical error.
func Tokenize(input string) ([]Token, error) {
	lx := NewLexer(input)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if tok.Kind == TokenEOF {
			return out, nil
		}
		out = append(out, tok)
	}
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	if lx.pos >= len(lx.input) {
		return Token{Kind: TokenEOF, Pos: lx.pos}, nil
	}
	start := lx.pos
	ch := lx.input[lx.pos]
	r, rsize := utf8.DecodeRuneInString(lx.input[lx.pos:])

	switch {
	case isIdentStart(r) && validRune(r, rsize):
		lx.pos += rsize
		for lx.pos < len(lx.input) {
			r2, s2 := utf8.DecodeRuneInString(lx.input[lx.pos:])
			if !isIdentPart(r2) || !validRune(r2, s2) {
				break
			}
			lx.pos += s2
		}
		word := lx.input[start:lx.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return Token{Kind: TokenKeyword, Text: up, Pos: start}, nil
		}
		return Token{Kind: TokenIdent, Text: word, Pos: start}, nil

	case ch >= '0' && ch <= '9':
		return lx.lexNumber(start)

	case ch == '.':
		// Could be ".5" (number) or a qualifier dot.
		if lx.pos+1 < len(lx.input) && lx.input[lx.pos+1] >= '0' && lx.input[lx.pos+1] <= '9' {
			return lx.lexNumber(start)
		}
		lx.pos++
		return Token{Kind: TokenPunct, Text: ".", Pos: start}, nil

	case ch == '\'':
		return lx.lexString(start)

	case ch == '"' || ch == '`':
		return lx.lexQuotedIdent(start, ch)

	case ch == '[':
		return lx.lexQuotedIdent(start, ']') // SQL Server style [ident]

	case ch == '?':
		lx.pos++
		return Token{Kind: TokenParam, Text: "?", Pos: start}, nil

	case ch == '(' || ch == ')' || ch == ',' || ch == ';':
		lx.pos++
		return Token{Kind: TokenPunct, Text: string(ch), Pos: start}, nil

	default:
		return lx.lexOperator(start)
	}
}

func (lx *Lexer) lexNumber(start int) (Token, error) {
	seenDot, seenExp := false, false
	for lx.pos < len(lx.input) {
		c := lx.input[lx.pos]
		switch {
		case c >= '0' && c <= '9':
			lx.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			lx.pos++
		case (c == 'e' || c == 'E') && !seenExp && lx.pos > start:
			seenExp = true
			lx.pos++
			if lx.pos < len(lx.input) && (lx.input[lx.pos] == '+' || lx.input[lx.pos] == '-') {
				lx.pos++
			}
		default:
			return Token{Kind: TokenNumber, Text: lx.input[start:lx.pos], Pos: start}, nil
		}
	}
	return Token{Kind: TokenNumber, Text: lx.input[start:lx.pos], Pos: start}, nil
}

func (lx *Lexer) lexString(start int) (Token, error) {
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.input) {
		c := lx.input[lx.pos]
		if c == '\'' {
			if lx.pos+1 < len(lx.input) && lx.input[lx.pos+1] == '\'' {
				sb.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			return Token{Kind: TokenString, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return Token{}, fmt.Errorf("sqlparser: unterminated string literal at offset %d", start)
}

func (lx *Lexer) lexQuotedIdent(start int, closer byte) (Token, error) {
	open := lx.input[lx.pos]
	if open == '[' {
		closer = ']'
	} else {
		closer = open
	}
	lx.pos++
	idStart := lx.pos
	for lx.pos < len(lx.input) {
		if lx.input[lx.pos] == closer {
			text := lx.input[idStart:lx.pos]
			lx.pos++
			if text == "" {
				return Token{}, fmt.Errorf("sqlparser: empty quoted identifier at offset %d", start)
			}
			return Token{Kind: TokenIdent, Text: text, Pos: start}, nil
		}
		lx.pos++
	}
	return Token{}, fmt.Errorf("sqlparser: unterminated quoted identifier at offset %d", start)
}

// plainIdent reports whether s lexes bare as exactly one TokenIdent: a
// non-empty identifier that is not a keyword.
func plainIdent(s string) bool {
	return plainWord(s) && !keywords[strings.ToUpper(s)]
}

// plainWord reports whether s lexes bare as a single ident-or-keyword
// token (identifier characters only, valid UTF-8).
func plainWord(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		if !validRune(r, size) {
			return false
		}
		if i == 0 {
			if !isIdentStart(r) {
				return false
			}
		} else if !isIdentPart(r) {
			return false
		}
		i += size
	}
	return true
}

func (lx *Lexer) lexOperator(start int) (Token, error) {
	two := ""
	if lx.pos+2 <= len(lx.input) {
		two = lx.input[lx.pos : lx.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		lx.pos += 2
		return Token{Kind: TokenOp, Text: two, Pos: start}, nil
	}
	one := lx.input[lx.pos]
	switch one {
	case '=', '<', '>', '+', '-', '*', '/', '%':
		lx.pos++
		return Token{Kind: TokenOp, Text: string(one), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sqlparser: unexpected character %q at offset %d", one, start)
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.input) {
		c := lx.input[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.input) && lx.input[lx.pos+1] == '-':
			for lx.pos < len(lx.input) && lx.input[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.input) && lx.input[lx.pos+1] == '*':
			lx.pos += 2
			for lx.pos+1 < len(lx.input) && !(lx.input[lx.pos] == '*' && lx.input[lx.pos+1] == '/') {
				lx.pos++
			}
			lx.pos += 2
			if lx.pos > len(lx.input) {
				lx.pos = len(lx.input)
			}
		default:
			return
		}
	}
}

// validRune rejects bytes that are not valid UTF-8: DecodeRuneInString
// reports those as a RuneError of size 1. Treating them as Latin-1 letters
// would admit identifiers that no longer survive ToUpper or reprinting.
func validRune(r rune, size int) bool {
	return r != utf8.RuneError || size > 1
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$' || r == '#'
}
