package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is implemented by every AST node. SQL() renders the node back to
// valid SQL text (used for round-trip testing and template instantiation).
type Node interface {
	SQL() string
}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// SelectStmt is a full SELECT query (possibly with CTEs).
type SelectStmt struct {
	With       []CTE
	Distinct   bool
	Top        *int64 // SQL Server TOP n
	Items      []SelectItem
	From       []TableRef // comma-separated FROM items (each possibly a join tree)
	Where      Expr
	GroupBy    []Expr
	Having     Expr
	OrderBy    []OrderItem
	Limit      *int64
	Offset     *int64
	UnionAll   *SelectStmt // optional UNION ALL continuation
	UnionDedup bool        // true when UNION (distinct) rather than UNION ALL
}

// CTE is one common table expression in a WITH clause.
type CTE struct {
	Name    string
	Columns []string
	Select  *SelectStmt
}

// SelectItem is one projection in the SELECT list.
type SelectItem struct {
	Expr  Expr   // nil means '*'
	Star  bool   // SELECT * or t.*
	Table string // qualifier for t.*
	Alias string
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// JoinType enumerates join kinds.
type JoinType int

const (
	// JoinInner is an INNER JOIN.
	JoinInner JoinType = iota
	// JoinLeft is a LEFT OUTER JOIN.
	JoinLeft
	// JoinRight is a RIGHT OUTER JOIN.
	JoinRight
	// JoinFull is a FULL OUTER JOIN.
	JoinFull
	// JoinCross is a CROSS JOIN.
	JoinCross
)

// String returns the SQL keyword for the join type.
func (j JoinType) String() string {
	switch j {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	case JoinFull:
		return "FULL JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// TableRef is a FROM-clause item: a base table, a join tree, or a derived
// table.
type TableRef interface {
	Node
	tableRefNode()
}

// BaseTable references a named table with an optional alias.
type BaseTable struct {
	Name  string
	Alias string
}

// JoinExpr is an explicit join between two table references.
type JoinExpr struct {
	Left  TableRef
	Right TableRef
	Type  JoinType
	On    Expr // nil for CROSS JOIN
}

// SubqueryRef is a derived table: (SELECT ...) alias.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*BaseTable) tableRefNode()   {}
func (*JoinExpr) tableRefNode()    {}
func (*SubqueryRef) tableRefNode() {}

// LiteralKind classifies literal values.
type LiteralKind int

const (
	// LitNumber is a numeric literal.
	LitNumber LiteralKind = iota
	// LitString is a string literal.
	LitString
	// LitNull is NULL.
	LitNull
	// LitBool is TRUE or FALSE.
	LitBool
	// LitParam is a positional parameter '?'.
	LitParam
	// LitInterval is an INTERVAL 'n' UNIT literal.
	LitInterval
)

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct {
	Qualifier string // table name or alias, may be empty
	Name      string
}

// Literal is a constant value.
type Literal struct {
	Kind LiteralKind
	Num  float64
	Str  string // string value, or interval text
	Bool bool
}

// BinaryExpr is a binary operation: comparisons, arithmetic, AND/OR, ||.
type BinaryExpr struct {
	Op   string // upper-case operator or keyword: =, <>, <, AND, OR, +, ...
	L, R Expr
}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

// FuncCall is a function invocation, possibly with DISTINCT or '*'.
type FuncCall struct {
	Name     string // upper-cased
	Distinct bool
	Star     bool
	Args     []Expr
}

// InExpr is x [NOT] IN (list) or x [NOT] IN (subquery).
type InExpr struct {
	X        Expr
	Not      bool
	List     []Expr
	Subquery *SelectStmt
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X      Expr
	Not    bool
	Lo, Hi Expr
}

// LikeExpr is x [NOT] LIKE pattern.
type LikeExpr struct {
	X       Expr
	Not     bool
	Pattern Expr
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Not      bool
	Subquery *SelectStmt
}

// SubqueryExpr is a scalar subquery used as an expression.
type SubqueryExpr struct {
	Select *SelectStmt
}

// QuantifiedExpr is x op ANY/ALL/SOME (subquery).
type QuantifiedExpr struct {
	X          Expr
	Op         string // comparison operator
	Quantifier string // ANY, ALL, SOME
	Subquery   *SelectStmt
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

// WhenClause is one WHEN/THEN arm of a CASE expression.
type WhenClause struct {
	Cond, Result Expr
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X        Expr
	TypeName string
}

func (*ColumnRef) exprNode()      {}
func (*Literal) exprNode()        {}
func (*BinaryExpr) exprNode()     {}
func (*UnaryExpr) exprNode()      {}
func (*FuncCall) exprNode()       {}
func (*InExpr) exprNode()         {}
func (*BetweenExpr) exprNode()    {}
func (*LikeExpr) exprNode()       {}
func (*IsNullExpr) exprNode()     {}
func (*ExistsExpr) exprNode()     {}
func (*SubqueryExpr) exprNode()   {}
func (*QuantifiedExpr) exprNode() {}
func (*CaseExpr) exprNode()       {}
func (*CastExpr) exprNode()       {}

// ---- SQL rendering ----

// SQL renders the statement as SQL text.
// quoteIdent renders an identifier so it re-lexes as a single TokenIdent:
// plain identifiers print bare, anything else (spaces, punctuation,
// keyword collisions) gets quoted. A lexed identifier can never contain
// every quote character, so one of the three forms always applies.
func quoteIdent(s string) string {
	if plainIdent(s) {
		return s
	}
	return quoted(s)
}

func quoted(s string) string {
	switch {
	case !strings.Contains(s, `"`):
		return `"` + s + `"`
	case !strings.Contains(s, "`"):
		return "`" + s + "`"
	default:
		return "[" + s + "]"
	}
}

func quoteIdents(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = quoteIdent(n)
	}
	return out
}

func (s *SelectStmt) SQL() string {
	var sb strings.Builder
	if len(s.With) > 0 {
		sb.WriteString("WITH ")
		for i, cte := range s.With {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(quoteIdent(cte.Name))
			if len(cte.Columns) > 0 {
				sb.WriteString(" (")
				sb.WriteString(strings.Join(quoteIdents(cte.Columns), ", "))
				sb.WriteString(")")
			}
			sb.WriteString(" AS (")
			sb.WriteString(cte.Select.SQL())
			sb.WriteString(")")
		}
		sb.WriteString(" ")
	}
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if s.Top != nil {
		fmt.Fprintf(&sb, "TOP %d ", *s.Top)
	}
	for i, item := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(item.SQL())
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, tr := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(tr.SQL())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.SQL())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(s.Having.SQL())
	}
	if s.UnionAll != nil {
		if s.UnionDedup {
			sb.WriteString(" UNION ")
		} else {
			sb.WriteString(" UNION ALL ")
		}
		sb.WriteString(s.UnionAll.SQL())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.SQL())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&sb, " LIMIT %d", *s.Limit)
	}
	if s.Offset != nil {
		fmt.Fprintf(&sb, " OFFSET %d", *s.Offset)
	}
	return sb.String()
}

// SQL renders the projection item.
func (i SelectItem) SQL() string {
	var s string
	switch {
	case i.Star && i.Table != "":
		s = quoteIdent(i.Table) + ".*"
	case i.Star:
		s = "*"
	default:
		s = i.Expr.SQL()
	}
	if i.Alias != "" {
		s += " AS " + quoteIdent(i.Alias)
	}
	return s
}

// SQL renders the base table reference.
func (t *BaseTable) SQL() string {
	if t.Alias != "" {
		return quoteIdent(t.Name) + " " + quoteIdent(t.Alias)
	}
	return quoteIdent(t.Name)
}

// SQL renders the join tree.
func (j *JoinExpr) SQL() string {
	s := j.Left.SQL() + " " + j.Type.String() + " " + j.Right.SQL()
	if j.On != nil {
		s += " ON " + j.On.SQL()
	}
	return s
}

// SQL renders the derived table.
func (d *SubqueryRef) SQL() string {
	s := "(" + d.Select.SQL() + ")"
	if d.Alias != "" {
		s += " " + quoteIdent(d.Alias)
	}
	return s
}

// SQL renders the column reference.
func (c *ColumnRef) SQL() string {
	if c.Qualifier != "" {
		return quoteIdent(c.Qualifier) + "." + quoteIdent(c.Name)
	}
	return quoteIdent(c.Name)
}

// SQL renders the literal.
func (l *Literal) SQL() string {
	switch l.Kind {
	case LitNumber:
		return strconv.FormatFloat(l.Num, 'g', -1, 64)
	case LitString:
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	case LitNull:
		return "NULL"
	case LitBool:
		if l.Bool {
			return "TRUE"
		}
		return "FALSE"
	case LitParam:
		return "?"
	case LitInterval:
		return "INTERVAL " + l.Str
	default:
		return "NULL"
	}
}

// SQL renders the binary expression with minimal parentheses: operands that
// are themselves binary/unary get wrapped, which keeps round-trips stable.
func (b *BinaryExpr) SQL() string {
	return wrapOperand(b.L) + " " + b.Op + " " + wrapOperand(b.R)
}

func wrapOperand(e Expr) string {
	switch e.(type) {
	case *BinaryExpr, *UnaryExpr:
		return "(" + e.SQL() + ")"
	default:
		return e.SQL()
	}
}

// SQL renders the unary expression.
func (u *UnaryExpr) SQL() string {
	if u.Op == "NOT" {
		return "NOT " + wrapOperand(u.X)
	}
	return u.Op + wrapOperand(u.X)
}

// SQL renders the function call.
func (f *FuncCall) SQL() string {
	// Function names print bare when they re-lex as one word — keywords
	// included, so COUNT stays COUNT — and quoted otherwise ("a b"(x) is a
	// legal call with a quoted name).
	name := f.Name
	if !plainWord(name) {
		name = quoted(name)
	}
	if f.Star {
		return name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.SQL()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return name + "(" + d + strings.Join(args, ", ") + ")"
}

// SQL renders the IN expression.
func (in *InExpr) SQL() string {
	s := wrapOperand(in.X)
	if in.Not {
		s += " NOT"
	}
	s += " IN ("
	if in.Subquery != nil {
		s += in.Subquery.SQL()
	} else {
		parts := make([]string, len(in.List))
		for i, e := range in.List {
			parts[i] = e.SQL()
		}
		s += strings.Join(parts, ", ")
	}
	return s + ")"
}

// SQL renders the BETWEEN expression.
func (b *BetweenExpr) SQL() string {
	s := wrapOperand(b.X)
	if b.Not {
		s += " NOT"
	}
	return s + " BETWEEN " + wrapOperand(b.Lo) + " AND " + wrapOperand(b.Hi)
}

// SQL renders the LIKE expression.
func (l *LikeExpr) SQL() string {
	s := wrapOperand(l.X)
	if l.Not {
		s += " NOT"
	}
	return s + " LIKE " + l.Pattern.SQL()
}

// SQL renders the IS NULL expression.
func (n *IsNullExpr) SQL() string {
	s := wrapOperand(n.X) + " IS "
	if n.Not {
		s += "NOT "
	}
	return s + "NULL"
}

// SQL renders the EXISTS expression.
func (e *ExistsExpr) SQL() string {
	s := ""
	if e.Not {
		s = "NOT "
	}
	return s + "EXISTS (" + e.Subquery.SQL() + ")"
}

// SQL renders the scalar subquery.
func (s *SubqueryExpr) SQL() string { return "(" + s.Select.SQL() + ")" }

// SQL renders the quantified comparison.
func (q *QuantifiedExpr) SQL() string {
	return wrapOperand(q.X) + " " + q.Op + " " + q.Quantifier + " (" + q.Subquery.SQL() + ")"
}

// SQL renders the CASE expression.
func (c *CaseExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		sb.WriteString(" " + c.Operand.SQL())
	}
	for _, w := range c.Whens {
		sb.WriteString(" WHEN " + w.Cond.SQL() + " THEN " + w.Result.SQL())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.SQL())
	}
	sb.WriteString(" END")
	return sb.String()
}

// SQL renders the CAST expression.
func (c *CastExpr) SQL() string {
	return "CAST(" + c.X.SQL() + " AS " + c.TypeName + ")"
}
